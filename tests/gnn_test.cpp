#include <gtest/gtest.h>

#include "testutil.hpp"

#include "flow/experiment.hpp"
#include "gnn/adam.hpp"
#include "gnn/graph_cache.hpp"
#include "gnn/model.hpp"
#include "gnn/serialize.hpp"
#include "gnn/trainer.hpp"
#include "netlist/design_generator.hpp"
#include "place/placer.hpp"
#include "steiner/rsmt.hpp"

namespace tsteiner {
namespace {

const CellLibrary& lib() {
  static const CellLibrary l = CellLibrary::make_default();
  return l;
}

struct Tiny {
  Design design;
  SteinerForest forest;
  std::shared_ptr<const GraphCache> cache;
};

Tiny make_tiny(std::uint64_t seed = 71, int comb = 120) {
  GeneratorParams p;
  p.num_comb_cells = comb;
  p.num_registers = 14;
  p.num_primary_inputs = 4;
  p.num_primary_outputs = 4;
  p.seed = seed;
  Tiny t{generate_design(lib(), p), {}, nullptr};
  place_design(t.design);
  t.forest = build_forest(t.design);
  t.design.set_clock_period(1.0);
  t.cache = build_graph_cache(t.design, t.forest);
  return t;
}

TEST(GraphCache, SnodeCountsMatchForest) {
  const Tiny t = make_tiny();
  long long nodes = 0;
  for (const SteinerTree& tr : t.forest.trees) nodes += static_cast<long long>(tr.nodes.size());
  EXPECT_EQ(t.cache->num_snodes, nodes);
  EXPECT_EQ(static_cast<long long>(t.cache->movable_to_snode.size()),
            t.forest.num_steiner_nodes());
}

TEST(GraphCache, EveryConnectedPinHasSnode) {
  const Tiny t = make_tiny();
  for (const Pin& p : t.design.pins()) {
    if (p.net < 0) continue;
    EXPECT_GE(t.cache->pin_snode[static_cast<std::size_t>(p.id)], 0) << "pin " << p.id;
  }
}

TEST(GraphCache, TreeEdgesSortedByDepth) {
  const Tiny t = make_tiny();
  // each level slice references children whose parents were reached earlier
  std::vector<char> reached(static_cast<std::size_t>(t.cache->num_snodes), 0);
  for (double f : t.cache->feat_is_driver) {
    (void)f;
  }
  // drivers start reached
  for (std::size_t s = 0; s < reached.size(); ++s) {
    if (t.cache->feat_is_driver[s] > 0.5) reached[s] = 1;
  }
  for (std::size_t l = 0; l + 1 < t.cache->level_off.size(); ++l) {
    for (int e = t.cache->level_off[l]; e < t.cache->level_off[l + 1]; ++e) {
      EXPECT_TRUE(reached[static_cast<std::size_t>(t.cache->edge_pa[static_cast<std::size_t>(e)])])
          << "edge parent not yet reached at level " << l;
      reached[static_cast<std::size_t>(t.cache->edge_ch[static_cast<std::size_t>(e)])] = 1;
    }
  }
  for (char r : reached) EXPECT_TRUE(r);
}

TEST(GraphCache, NetArcCountMatchesSinks) {
  const Tiny t = make_tiny();
  long long sinks = 0;
  for (const Net& n : t.design.nets()) sinks += static_cast<long long>(n.sink_pins.size());
  EXPECT_EQ(static_cast<long long>(t.cache->net_arcs.size()), sinks);
  EXPECT_EQ(t.cache->net_arcs.size(), t.cache->net_arc_sink_snode.size());
}

TEST(GraphCache, CellArcSegmentsGroupByOutputPin) {
  const Tiny t = make_tiny();
  for (std::size_t l = 0; l + 1 < t.cache->cell_arc_off.size(); ++l) {
    const int lo = t.cache->cell_arc_off[l];
    const int hi = t.cache->cell_arc_off[l + 1];
    const int out_lo = t.cache->cell_out_off[l];
    for (int i = lo; i < hi; ++i) {
      const int seg = t.cache->cell_arc_seg[static_cast<std::size_t>(i)];
      EXPECT_EQ(t.cache->cell_out_pins[static_cast<std::size_t>(out_lo + seg)],
                t.cache->cell_arcs[static_cast<std::size_t>(i)].out_pin);
    }
  }
}

TEST(Model, ForwardShapeAndFiniteness) {
  const Tiny t = make_tiny();
  GnnConfig cfg;
  const TimingGnn model(cfg, lib().num_types());
  Tape tape;
  const auto bound = model.bind(tape);
  const Value xs = tape.leaf(Tensor::column(t.forest.gather_x()));
  const Value ys = tape.leaf(Tensor::column(t.forest.gather_y()));
  const Value out = model.forward(tape, *t.cache, bound, xs, ys);
  const Tensor& a = tape.value(out);
  EXPECT_EQ(a.rows(), t.design.pins().size());
  EXPECT_EQ(a.cols(), 1u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(std::isfinite(a[i])) << "pin " << i;
    EXPECT_GE(a[i], 0.0) << "arrival must be non-negative";
  }
}

TEST(Model, GradFlowsToSteinerCoordinates) {
  const Tiny t = make_tiny();
  ASSERT_GT(t.forest.num_movable(), 0u);
  GnnConfig cfg;
  const TimingGnn model(cfg, lib().num_types());
  Tape tape;
  const auto bound = model.bind(tape);
  const Value xs = tape.leaf(Tensor::column(t.forest.gather_x()), true);
  const Value ys = tape.leaf(Tensor::column(t.forest.gather_y()), true);
  const Value out = model.forward(tape, *t.cache, bound, xs, ys);
  const Value loss = tape.sum_all(out);
  tape.backward(loss);
  const Tensor& gx = tape.grad(xs);
  ASSERT_EQ(gx.size(), t.forest.num_movable());
  double norm = 0.0;
  for (std::size_t i = 0; i < gx.size(); ++i) norm += gx[i] * gx[i];
  EXPECT_GT(norm, 0.0) << "no gradient reached the Steiner coordinates";
}

TEST(Model, MovingSteinerPointsChangesPrediction) {
  const Tiny t = make_tiny();
  GnnConfig cfg;
  const TimingGnn model(cfg, lib().num_types());
  auto run = [&](double offset) {
    Tape tape;
    const auto bound = model.bind(tape);
    auto xv = t.forest.gather_x();
    for (double& x : xv) x += offset;
    const Value xs = tape.leaf(Tensor::column(xv));
    const Value ys = tape.leaf(Tensor::column(t.forest.gather_y()));
    const Value out = model.forward(tape, *t.cache, bound, xs, ys);
    double s = 0.0;
    for (std::size_t i = 0; i < tape.value(out).size(); ++i) s += tape.value(out)[i];
    return s;
  };
  EXPECT_NE(run(0.0), run(25.0));
}

TEST(Model, StretchingTreesRaisesPredictedArrival) {
  // The physics anchor (Elmore + R*C load) must dominate an untrained
  // model: pushing every Steiner point outward (longer edges, more wire
  // cap) has to raise the total predicted arrival.
  const Tiny t = make_tiny(74, 200);
  GnnConfig cfg;
  const TimingGnn model(cfg, lib().num_types());
  auto total_arrival = [&](double stretch) {
    Tape tape;
    const auto bound = model.bind(tape);
    auto xv = t.forest.gather_x();
    auto yv = t.forest.gather_y();
    const double cx = static_cast<double>(t.design.die().hi.x) / 2.0;
    const double cy = static_cast<double>(t.design.die().hi.y) / 2.0;
    for (std::size_t i = 0; i < xv.size(); ++i) {
      xv[i] = cx + (xv[i] - cx) * stretch;
      yv[i] = cy + (yv[i] - cy) * stretch;
    }
    const Value xs = tape.leaf(Tensor::column(xv));
    const Value ys = tape.leaf(Tensor::column(yv));
    const Value out = model.forward(tape, *t.cache, bound, xs, ys);
    double s = 0.0;
    for (std::size_t i = 0; i < tape.value(out).size(); ++i) s += tape.value(out)[i];
    return s;
  };
  EXPECT_GT(total_arrival(2.0), total_arrival(1.0));
  EXPECT_GT(total_arrival(4.0), total_arrival(2.0));
}

TEST(Trainer, EndpointWeightedLossIsFiniteAndTrains) {
  const Tiny t = make_tiny(75, 70);
  const StaResult sta = run_sta(t.design, t.forest, nullptr);
  TrainingSample s;
  s.cache = t.cache;
  s.xs = t.forest.gather_x();
  s.ys = t.forest.gather_y();
  s.arrival_label = sta.arrival;
  s.endpoint_pins = sta.endpoints;
  GnnConfig cfg;
  cfg.hidden = 6;
  TimingGnn model(cfg, lib().num_types());
  TrainOptions topt;
  topt.endpoint_loss_weight = 5.0;
  topt.lr = 3e-3;
  Trainer trainer(&model, topt);
  std::vector<TrainingSample> samples{s};
  const double first = trainer.train_epoch(samples);
  EXPECT_TRUE(std::isfinite(first));
  double last = first;
  for (int e = 0; e < 30; ++e) last = trainer.train_epoch(samples);
  EXPECT_LT(last, first);
}

TEST(Model, DeterministicForward) {
  const Tiny t = make_tiny();
  GnnConfig cfg;
  const TimingGnn model(cfg, lib().num_types());
  auto run = [&] {
    Tape tape;
    const auto bound = model.bind(tape);
    const Value xs = tape.leaf(Tensor::column(t.forest.gather_x()));
    const Value ys = tape.leaf(Tensor::column(t.forest.gather_y()));
    return tape.value(model.forward(tape, *t.cache, bound, xs, ys));
  };
  const Tensor a = run();
  const Tensor b = run();
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

TEST(GraphCache, NetArcsGroupedByDriverLevel) {
  const Tiny t = make_tiny(77, 140);
  const auto levels = t.design.pin_levels();
  for (std::size_t l = 0; l + 1 < t.cache->net_arc_off.size(); ++l) {
    for (int i = t.cache->net_arc_off[l]; i < t.cache->net_arc_off[l + 1]; ++i) {
      const auto& arc = t.cache->net_arcs[static_cast<std::size_t>(i)];
      EXPECT_EQ(levels[static_cast<std::size_t>(arc.driver_pin)], static_cast<int>(l))
          << "net arc " << i;
    }
  }
}

TEST(GraphCache, CellArcsGroupedByOutputLevel) {
  const Tiny t = make_tiny(78, 140);
  const auto levels = t.design.pin_levels();
  for (std::size_t l = 0; l + 1 < t.cache->cell_arc_off.size(); ++l) {
    for (int i = t.cache->cell_arc_off[l]; i < t.cache->cell_arc_off[l + 1]; ++i) {
      const auto& arc = t.cache->cell_arcs[static_cast<std::size_t>(i)];
      EXPECT_EQ(levels[static_cast<std::size_t>(arc.out_pin)], static_cast<int>(l))
          << "cell arc " << i;
    }
  }
}

TEST(GraphCache, PhysicalConstantsPopulated) {
  const Tiny t = make_tiny(79, 100);
  EXPECT_GT(t.cache->wire_res, 0.0);
  EXPECT_GT(t.cache->wire_cap, 0.0);
  ASSERT_EQ(t.cache->cell_arc_intrinsic.size(), t.cache->cell_arcs.size());
  for (double v : t.cache->cell_arc_intrinsic) EXPECT_GT(v, 0.0);
  ASSERT_EQ(t.cache->regq_intrinsic.size(), t.cache->regq_pins.size());
  for (double v : t.cache->regq_intrinsic) EXPECT_GT(v, 0.0);
  for (int s : t.cache->tree_driver_snode) EXPECT_GE(s, 0);
}

TEST(Serialize, SaveLoadRoundTrip) {
  GnnConfig cfg;
  cfg.hidden = 6;
  TimingGnn model(cfg, lib().num_types());
  // Nudge a weight so the file is not all-initializer values.
  model.parameters()[0].at(0, 0) = 0.123456789;
  const std::string path = testutil::test_tmp_dir() + "/tsteiner_model_test.txt";
  ASSERT_TRUE(save_model(model, path, "unit-test"));
  const auto loaded = load_model(path, cfg, lib().num_types(), "unit-test");
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->parameters().size(), model.parameters().size());
  for (std::size_t p = 0; p < model.parameters().size(); ++p) {
    const Tensor& a = model.parameters()[p];
    const Tensor& b = loaded->parameters()[p];
    ASSERT_TRUE(a.same_shape(b));
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]) << p << ":" << i;
  }
}

TEST(Serialize, RejectsMismatchedTagOrConfig) {
  GnnConfig cfg;
  cfg.hidden = 6;
  TimingGnn model(cfg, lib().num_types());
  const std::string path = testutil::test_tmp_dir() + "/tsteiner_model_test2.txt";
  ASSERT_TRUE(save_model(model, path, "tag-a"));
  EXPECT_FALSE(load_model(path, cfg, lib().num_types(), "tag-b").has_value());
  GnnConfig other = cfg;
  other.hidden = 8;
  EXPECT_FALSE(load_model(path, other, lib().num_types(), "tag-a").has_value());
  EXPECT_FALSE(load_model("/nonexistent/file", cfg, lib().num_types(), "tag-a").has_value());
}

TEST(Serialize, LoadedModelPredictsIdentically) {
  const Tiny t = make_tiny(76, 60);
  GnnConfig cfg;
  cfg.hidden = 6;
  TimingGnn model(cfg, lib().num_types());
  const std::string path = testutil::test_tmp_dir() + "/tsteiner_model_test3.txt";
  ASSERT_TRUE(save_model(model, path, "pred"));
  const auto loaded = load_model(path, cfg, lib().num_types(), "pred");
  ASSERT_TRUE(loaded.has_value());
  auto run = [&](const TimingGnn& m) {
    Tape tape;
    const auto bound = m.bind(tape);
    const Value xs = tape.leaf(Tensor::column(t.forest.gather_x()));
    const Value ys = tape.leaf(Tensor::column(t.forest.gather_y()));
    return tape.value(m.forward(tape, *t.cache, bound, xs, ys));
  };
  const Tensor a = run(model);
  const Tensor b = run(*loaded);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

TEST(Adam, ConvergesOnQuadratic) {
  // minimize (x - 3)^2 elementwise
  std::vector<Tensor> params{Tensor(4, 1, 0.0)};
  Adam adam(&params, 0.1);
  for (int i = 0; i < 500; ++i) {
    Tensor g(4, 1);
    for (std::size_t k = 0; k < 4; ++k) g[k] = 2.0 * (params[0][k] - 3.0);
    adam.step({g});
  }
  for (std::size_t k = 0; k < 4; ++k) EXPECT_NEAR(params[0][k], 3.0, 1e-2);
}

TEST(Adam, RejectsBadGradients) {
  std::vector<Tensor> params{Tensor(2, 2, 0.0)};
  Adam adam(&params, 0.1);
  EXPECT_THROW(adam.step({}), std::runtime_error);
  EXPECT_THROW(adam.step({Tensor(3, 3, 0.0)}), std::runtime_error);
}

TEST(Trainer, LossDecreasesOnTinyDesign) {
  const Tiny t = make_tiny(72, 80);
  // Label with the pre-routing STA (cheap, deterministic).
  const StaResult sta = run_sta(t.design, t.forest, nullptr);
  TrainingSample s;
  s.design_name = "tiny";
  s.cache = t.cache;
  s.xs = t.forest.gather_x();
  s.ys = t.forest.gather_y();
  s.arrival_label = sta.arrival;
  s.endpoint_pins = sta.endpoints;

  GnnConfig cfg;
  cfg.hidden = 8;
  TimingGnn model(cfg, lib().num_types());
  TrainOptions topt;
  topt.epochs = 1;
  topt.lr = 3e-3;
  Trainer trainer(&model, topt);
  std::vector<TrainingSample> samples{s};
  const double first = trainer.train_epoch(samples);
  double last = first;
  for (int e = 0; e < 40; ++e) last = trainer.train_epoch(samples);
  EXPECT_LT(last, first * 0.5) << "single-sample overfit should cut loss in half";
}

TEST(Trainer, EvaluateReportsR2) {
  const Tiny t = make_tiny(73, 60);
  const StaResult sta = run_sta(t.design, t.forest, nullptr);
  TrainingSample s;
  s.cache = t.cache;
  s.xs = t.forest.gather_x();
  s.ys = t.forest.gather_y();
  s.arrival_label = sta.arrival;
  s.endpoint_pins = sta.endpoints;
  GnnConfig cfg;
  cfg.hidden = 8;
  TimingGnn model(cfg, lib().num_types());
  TrainOptions topt;
  topt.epochs = 60;
  topt.lr = 3e-3;
  Trainer trainer(&model, topt);
  std::vector<TrainingSample> samples{s};
  trainer.fit(samples);
  const EvalMetrics m = trainer.evaluate(s);
  EXPECT_GT(m.r2_all, 0.5) << "overfit on a single tiny sample should track STA";
  EXPECT_LE(m.r2_all, 1.0 + 1e-9);
}

}  // namespace
}  // namespace tsteiner
