#include <gtest/gtest.h>

#include "droute/detailed_route.hpp"
#include "droute/track_assign.hpp"
#include "netlist/design_generator.hpp"
#include "place/placer.hpp"
#include "steiner/rsmt.hpp"

namespace tsteiner {
namespace {

const CellLibrary& lib() {
  static const CellLibrary l = CellLibrary::make_default();
  return l;
}

struct Prep {
  Design design;
  SteinerForest forest;
  GlobalRouteResult gr;
};

Prep prep(std::uint64_t seed, double cap_scale = 1.0) {
  GeneratorParams p;
  p.num_comb_cells = 250;
  p.num_registers = 25;
  p.num_primary_inputs = 6;
  p.num_primary_outputs = 6;
  p.seed = seed;
  Prep out{generate_design(lib(), p), {}, {}};
  place_design(out.design);
  out.forest = build_forest(out.design);
  RouterOptions ro;
  if (cap_scale != 1.0) {
    const GlobalRouteResult probe = global_route(out.design, out.forest, ro);
    ro.fixed_h_cap = probe.calibrated_h_cap * cap_scale;
    ro.fixed_v_cap = probe.calibrated_v_cap * cap_scale;
  }
  out.gr = global_route(out.design, out.forest, ro);
  return out;
}

TEST(DetailedRoute, ProducesPositiveMetrics) {
  const Prep p = prep(61);
  const DetailedRouteResult dr = detailed_route(p.design, p.forest, p.gr);
  EXPECT_GT(dr.wirelength_dbu, 0.0);
  EXPECT_GT(dr.num_vias, 0);
  EXPECT_GE(dr.num_drvs, 0);
}

TEST(DetailedRoute, WirelengthAboveGlobalRoute) {
  const Prep p = prep(62);
  const DetailedRouteResult dr = detailed_route(p.design, p.forest, p.gr);
  EXPECT_GE(dr.wirelength_dbu, p.gr.wirelength_dbu);
  EXPECT_LE(dr.wirelength_dbu, p.gr.wirelength_dbu * 1.25);
}

TEST(DetailedRoute, ViasCountBendsAndPinAccess) {
  const Prep p = prep(63);
  const DetailedRouteResult dr = detailed_route(p.design, p.forest, p.gr);
  long long min_vias = 2 * static_cast<long long>(p.gr.connections.size());
  EXPECT_GE(dr.num_vias, min_vias);
}

TEST(DetailedRoute, TighterCapacityMeansMoreDrvsAndWork) {
  const Prep roomy = prep(64, 2.0);
  const Prep tight = prep(64, 0.35);
  const DetailedRouteResult dr_roomy = detailed_route(roomy.design, roomy.forest, roomy.gr);
  const DetailedRouteResult dr_tight = detailed_route(tight.design, tight.forest, tight.gr);
  EXPECT_GE(dr_tight.num_drvs, dr_roomy.num_drvs);
  EXPECT_GE(dr_tight.repair_work, dr_roomy.repair_work);
}

TEST(DetailedRoute, CleanGrConvergesQuickly) {
  const Prep roomy = prep(65, 4.0);
  const DetailedRouteResult dr = detailed_route(roomy.design, roomy.forest, roomy.gr);
  EXPECT_LE(dr.repair_rounds_used, 4);
}

TEST(DetailedRoute, RepairReducesConflictsVsUnrepaired) {
  // The spill loop must strictly reduce DRVs versus skipping repair (the
  // pin-access term is identical on both sides).
  const Prep p = prep(67, 0.6);
  const TrackAssignResult ta = assign_tracks(p.gr);
  ASSERT_GT(ta.num_violations, 4) << "fixture must be congested enough to repair";
  DrouteOptions no_repair;
  no_repair.repair_rounds_max = 0;
  const DetailedRouteResult raw = detailed_route(p.design, p.forest, p.gr, no_repair);
  const DetailedRouteResult repaired = detailed_route(p.design, p.forest, p.gr);
  EXPECT_LT(repaired.num_drvs, raw.num_drvs)
      << "spilling into adjacent rows should repair some conflicts";
  EXPECT_EQ(raw.repair_rounds_used, 0);
  EXPECT_GT(repaired.repair_rounds_used, 0);
}

TEST(DetailedRoute, WorkScalesWithRounds) {
  const Prep tight = prep(68, 0.35);
  DrouteOptions few;
  few.repair_rounds_max = 2;
  DrouteOptions many;
  many.repair_rounds_max = 24;
  const DetailedRouteResult a = detailed_route(tight.design, tight.forest, tight.gr, few);
  const DetailedRouteResult b = detailed_route(tight.design, tight.forest, tight.gr, many);
  EXPECT_LE(a.repair_rounds_used, 2);
  EXPECT_GE(b.repair_work, a.repair_work);
  EXPECT_LE(b.num_drvs, a.num_drvs);
}

TEST(DetailedRoute, Deterministic) {
  const Prep a = prep(66);
  const Prep b = prep(66);
  const DetailedRouteResult da = detailed_route(a.design, a.forest, a.gr);
  const DetailedRouteResult db = detailed_route(b.design, b.forest, b.gr);
  EXPECT_DOUBLE_EQ(da.wirelength_dbu, db.wirelength_dbu);
  EXPECT_EQ(da.num_vias, db.num_vias);
  EXPECT_EQ(da.num_drvs, db.num_drvs);
}

}  // namespace
}  // namespace tsteiner
