// TSteinerDB container, codec, and snapshot-restore coverage: CRC vectors,
// byte-level round-trips, corruption/truncation rejection, and field-for-field
// equality of restored libraries, designs, forests, models and suites.
#include <gtest/gtest.h>

#include "testutil.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "db/bytes.hpp"
#include "db/codecs.hpp"
#include "db/container.hpp"
#include "db/crc32.hpp"
#include "flow/experiment.hpp"
#include "flow/snapshot.hpp"
#include "gnn/serialize.hpp"
#include "netlist/design_generator.hpp"
#include "place/placer.hpp"
#include "steiner/forest_io.hpp"
#include "steiner/rsmt.hpp"

namespace tsteiner {
namespace {

const CellLibrary& lib() {
  static const CellLibrary l = CellLibrary::make_default();
  return l;
}

Design make_design(std::uint64_t seed) {
  GeneratorParams p;
  p.num_comb_cells = 150;
  p.num_registers = 16;
  p.num_primary_inputs = 4;
  p.num_primary_outputs = 4;
  p.seed = seed;
  Design d = generate_design(lib(), p);
  place_design(d);
  d.set_clock_period(2.71828);
  return d;
}

std::string temp_path(const char* name) { return testutil::test_tmp_dir() + "/" + name; }

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

TEST(Crc32, MatchesKnownVector) {
  // The standard IEEE 802.3 check value, same as zlib's crc32().
  const char* msg = "123456789";
  EXPECT_EQ(db::crc32(reinterpret_cast<const std::uint8_t*>(msg), 9), 0xCBF43926u);
  EXPECT_EQ(db::crc32(nullptr, 0), 0u);
}

TEST(Bytes, RoundTripAllPrimitives) {
  db::ByteWriter w;
  w.u8(0xAB);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.i32(-42);
  w.i64(-1234567890123ll);
  w.f64(-0.1234567890123456789);
  w.str("hello");
  w.f64_vec({1.5, -2.5, 3.25});
  w.i32_vec({7, -8, 9});

  db::ByteReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.i64(), -1234567890123ll);
  EXPECT_DOUBLE_EQ(r.f64(), -0.1234567890123456789);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.f64_vec(), (std::vector<double>{1.5, -2.5, 3.25}));
  EXPECT_EQ(r.i32_vec(), (std::vector<int>{7, -8, 9}));
  EXPECT_TRUE(r.done());
}

TEST(Bytes, UnderrunLatchesNotOk) {
  db::ByteWriter w;
  w.u32(7);
  db::ByteReader r(w.bytes());
  EXPECT_EQ(r.u32(), 7u);
  EXPECT_EQ(r.u64(), 0u);  // past the end
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.u8(), 0u);  // stays latched
  EXPECT_FALSE(r.done());
}

TEST(Bytes, OversizedLengthPrefixRejectedBeforeAllocation) {
  db::ByteWriter w;
  w.u64(0xFFFFFFFFFFFFull);  // vector "length" far beyond the payload
  db::ByteReader r(w.bytes());
  EXPECT_TRUE(r.f64_vec().empty());
  EXPECT_FALSE(r.ok());
}

TEST(Container, WriteReadRoundTrip) {
  const std::string path = temp_path("container_rt.tsdb");
  db::DbWriter writer;
  ASSERT_TRUE(writer.open(path));
  ASSERT_TRUE(writer.add_chunk(db::kChunkMeta, {1, 2, 3}));
  ASSERT_TRUE(writer.add_chunk(db::kChunkForest, {}));
  ASSERT_TRUE(writer.add_chunk(db::kChunkForest, {9, 8, 7, 6}));
  ASSERT_TRUE(writer.finish());

  db::DbReader reader;
  std::string error;
  ASSERT_TRUE(reader.open(path, &error)) << error;
  EXPECT_EQ(reader.version(), db::kFormatVersion);
  ASSERT_EQ(reader.chunks().size(), 3u);
  const db::ChunkInfo* meta = reader.find(db::kChunkMeta);
  ASSERT_NE(meta, nullptr);
  EXPECT_EQ(meta->size, 3u);
  EXPECT_EQ(reader.payload(*meta)[2], 3);
  EXPECT_EQ(reader.find_all(db::kChunkForest).size(), 2u);
  EXPECT_EQ(reader.find(db::kChunkModel), nullptr);
}

TEST(Container, BitFlipTriggersCrcRejection) {
  const std::string path = temp_path("container_flip.tsdb");
  db::DbWriter writer;
  ASSERT_TRUE(writer.open(path));
  ASSERT_TRUE(writer.add_chunk(db::kChunkForest, {10, 20, 30, 40, 50}));
  ASSERT_TRUE(writer.finish());

  std::vector<std::uint8_t> bytes = read_file(path);
  // Flip one bit inside the payload (last 5 bytes before the FEND chunk
  // header are the payload).
  bytes[bytes.size() - 16 - 3] ^= 0x04;
  write_file(path, bytes);

  db::DbReader reader;
  std::string error;
  EXPECT_FALSE(reader.open(path, &error));
  EXPECT_NE(error.find("CRC mismatch"), std::string::npos) << error;
  EXPECT_NE(error.find("FRST"), std::string::npos) << error;
}

TEST(Container, TruncationFailsCleanly) {
  const std::string path = temp_path("container_trunc.tsdb");
  db::DbWriter writer;
  ASSERT_TRUE(writer.open(path));
  ASSERT_TRUE(writer.add_chunk(db::kChunkForest, {1, 2, 3, 4, 5, 6, 7, 8}));
  ASSERT_TRUE(writer.finish());
  const std::vector<std::uint8_t> bytes = read_file(path);

  // Every proper prefix must be rejected without crashing.
  for (std::size_t keep : {std::size_t{0}, std::size_t{3}, std::size_t{11},
                           std::size_t{20}, bytes.size() - 16, bytes.size() - 1}) {
    std::vector<std::uint8_t> cut(bytes.begin(), bytes.begin() + keep);
    write_file(path, cut);
    db::DbReader reader;
    std::string error;
    EXPECT_FALSE(reader.open(path, &error)) << "prefix of " << keep << " bytes";
    EXPECT_FALSE(error.empty());
  }
  // Truncating exactly at a chunk boundary (removing FEND) is also caught.
  std::vector<std::uint8_t> no_end(bytes.begin(), bytes.end() - 16);
  write_file(path, no_end);
  db::DbReader reader;
  std::string error;
  EXPECT_FALSE(reader.open(path, &error));
  EXPECT_NE(error.find("end chunk"), std::string::npos) << error;
}

TEST(Container, RejectsBadMagicAndVersion) {
  const std::string path = temp_path("container_magic.tsdb");
  write_file(path, {'N', 'O', 'P', 'E', 1, 0, 0, 0, 0, 0, 0, 0});
  db::DbReader reader;
  std::string error;
  EXPECT_FALSE(reader.open(path, &error));
  EXPECT_NE(error.find("magic"), std::string::npos) << error;

  write_file(path, {'T', 'S', 'D', 'B', 99, 0, 0, 0, 0, 0, 0, 0});
  EXPECT_FALSE(reader.open(path, &error));
  EXPECT_NE(error.find("version"), std::string::npos) << error;
}

TEST(Codecs, LibraryRoundTripFieldForField) {
  const std::vector<std::uint8_t> bytes = db::encode_library(lib());
  const auto loaded = db::decode_library(bytes.data(), bytes.size());
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->num_types(), lib().num_types());
  EXPECT_DOUBLE_EQ(loaded->wire_res_kohm_per_dbu(), lib().wire_res_kohm_per_dbu());
  EXPECT_DOUBLE_EQ(loaded->wire_cap_pf_per_dbu(), lib().wire_cap_pf_per_dbu());
  EXPECT_DOUBLE_EQ(loaded->via_res_kohm(), lib().via_res_kohm());
  for (int t = 0; t < lib().num_types(); ++t) {
    const CellType& a = lib().type(t);
    const CellType& b = loaded->type(t);
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.num_inputs, b.num_inputs);
    EXPECT_EQ(a.is_register, b.is_register);
    EXPECT_DOUBLE_EQ(a.area, b.area);
    ASSERT_EQ(a.arcs.size(), b.arcs.size());
    for (std::size_t i = 0; i < a.arcs.size(); ++i) {
      EXPECT_EQ(a.arcs[i].from_input, b.arcs[i].from_input);
      EXPECT_EQ(a.arcs[i].delay.values(), b.arcs[i].delay.values());
      EXPECT_EQ(a.arcs[i].out_slew.values(), b.arcs[i].out_slew.values());
    }
  }
  EXPECT_EQ(db::library_fingerprint(*loaded), db::library_fingerprint(lib()));
  // Any bit of payload damage must be caught by the decoder or change the
  // fingerprint.
  std::vector<std::uint8_t> bad = bytes;
  bad.resize(bad.size() / 2);
  EXPECT_FALSE(db::decode_library(bad.data(), bad.size()).has_value());
}

TEST(Codecs, DesignRoundTripFieldForField) {
  const Design d = make_design(91);
  BenchmarkSpec spec;
  spec.name = "db_test_design";
  spec.target_cells = 150;
  spec.endpoints = 20;
  spec.is_training = true;
  spec.seed = 91;
  const std::vector<std::uint8_t> bytes = db::encode_design(spec, d);
  const auto loaded = db::decode_design(bytes.data(), bytes.size(), lib());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->spec.name, spec.name);
  EXPECT_EQ(loaded->spec.target_cells, spec.target_cells);
  EXPECT_EQ(loaded->spec.endpoints, spec.endpoints);
  EXPECT_EQ(loaded->spec.is_training, spec.is_training);
  EXPECT_EQ(loaded->spec.seed, spec.seed);

  const Design& e = loaded->design;
  EXPECT_EQ(e.name(), d.name());
  EXPECT_EQ(e.die(), d.die());
  EXPECT_DOUBLE_EQ(e.clock_period(), d.clock_period());
  ASSERT_EQ(e.cells().size(), d.cells().size());
  ASSERT_EQ(e.pins().size(), d.pins().size());
  ASSERT_EQ(e.nets().size(), d.nets().size());
  for (std::size_t i = 0; i < d.cells().size(); ++i) {
    EXPECT_EQ(e.cells()[i].type, d.cells()[i].type);
    EXPECT_EQ(e.cells()[i].pos, d.cells()[i].pos);
  }
  for (std::size_t i = 0; i < d.pins().size(); ++i) {
    EXPECT_EQ(e.pins()[i].kind, d.pins()[i].kind);
    EXPECT_EQ(e.pins()[i].cell, d.pins()[i].cell);
    EXPECT_EQ(e.pins()[i].net, d.pins()[i].net);
    EXPECT_EQ(e.pins()[i].input_slot, d.pins()[i].input_slot);
    EXPECT_EQ(e.pins()[i].port_pos, d.pins()[i].port_pos);
  }
  for (std::size_t i = 0; i < d.nets().size(); ++i) {
    EXPECT_EQ(e.nets()[i].driver_pin, d.nets()[i].driver_pin);
    EXPECT_EQ(e.nets()[i].sink_pins, d.nets()[i].sink_pins);
  }
  // Truncated payloads are rejected, not crashed on.
  for (std::size_t keep : {bytes.size() / 4, bytes.size() / 2, bytes.size() - 1}) {
    EXPECT_FALSE(db::decode_design(bytes.data(), keep, lib()).has_value());
  }
}

TEST(Codecs, ForestRoundTripAndRejection) {
  const Design d = make_design(92);
  SteinerForest f = build_forest(d);
  for (SteinerTree& t : f.trees) {
    for (SteinerNode& n : t.nodes) {
      if (n.is_steiner()) n.pos.y += 0.987654321012345;
    }
  }
  const std::vector<std::uint8_t> bytes = db::encode_forest(f);
  const auto loaded = db::decode_forest(bytes.data(), bytes.size());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->net_to_tree, f.net_to_tree);
  EXPECT_EQ(loaded->num_movable(), f.num_movable());
  ASSERT_EQ(loaded->trees.size(), f.trees.size());
  for (std::size_t t = 0; t < f.trees.size(); ++t) {
    const SteinerTree& a = f.trees[t];
    const SteinerTree& b = loaded->trees[t];
    EXPECT_EQ(a.net, b.net);
    EXPECT_EQ(a.driver_node, b.driver_node);
    ASSERT_EQ(a.nodes.size(), b.nodes.size());
    ASSERT_EQ(a.edges.size(), b.edges.size());
    for (std::size_t n = 0; n < a.nodes.size(); ++n) {
      EXPECT_EQ(a.nodes[n].pin, b.nodes[n].pin);
      EXPECT_DOUBLE_EQ(a.nodes[n].pos.x, b.nodes[n].pos.x);
      EXPECT_DOUBLE_EQ(a.nodes[n].pos.y, b.nodes[n].pos.y);
    }
    for (std::size_t e = 0; e < a.edges.size(); ++e) {
      EXPECT_EQ(a.edges[e].a, b.edges[e].a);
      EXPECT_EQ(a.edges[e].b, b.edges[e].b);
    }
  }
  for (std::size_t keep : {std::size_t{0}, bytes.size() / 3, bytes.size() - 2}) {
    EXPECT_FALSE(db::decode_forest(bytes.data(), keep).has_value());
  }
}

TEST(ForestIo, TextReaderRejectsHostileInput) {
  // Non-finite coordinate.
  std::stringstream nan_coord(
      "tsteiner-forest-v1\nnets 1\ntrees 1\ntree 0 0 2 1\n0 nan 0\n1 5 5\n0 1\n");
  EXPECT_FALSE(read_forest(nan_coord).has_value());
  std::stringstream inf_coord(
      "tsteiner-forest-v1\nnets 1\ntrees 1\ntree 0 0 2 1\n0 inf 0\n1 5 5\n0 1\n");
  EXPECT_FALSE(read_forest(inf_coord).has_value());
  // Pin id below -1.
  std::stringstream bad_pin(
      "tsteiner-forest-v1\nnets 1\ntrees 1\ntree 0 0 2 1\n-7 0 0\n1 5 5\n0 1\n");
  EXPECT_FALSE(read_forest(bad_pin).has_value());
  // Driver node out of range.
  std::stringstream bad_driver(
      "tsteiner-forest-v1\nnets 1\ntrees 1\ntree 0 5 2 1\n0 0 0\n1 5 5\n0 1\n");
  EXPECT_FALSE(read_forest(bad_driver).has_value());
  // Absurd counts must fail before any large allocation.
  std::stringstream huge_nets("tsteiner-forest-v1\nnets 99999999999 trees 1\n");
  EXPECT_FALSE(read_forest(huge_nets).has_value());
  std::stringstream huge_nodes(
      "tsteiner-forest-v1\nnets 1\ntrees 1\ntree 0 0 99999999999 0\n");
  EXPECT_FALSE(read_forest(huge_nodes).has_value());
  // Two trees claiming the same net.
  std::stringstream dup_net(
      "tsteiner-forest-v1\nnets 1\ntrees 2\n"
      "tree 0 0 1 0\n0 0 0\n"
      "tree 0 0 1 0\n0 1 1\n");
  EXPECT_FALSE(read_forest(dup_net).has_value());
}

TEST(ModelSerialize, ContainerRoundTripAndMismatchRejection) {
  GnnConfig cfg;
  cfg.hidden = 12;
  cfg.type_embed = 6;
  TimingGnn model(cfg, lib().num_types());
  const std::string path = temp_path("model_rt.tsdb");
  ASSERT_TRUE(save_model(model, path, "tag-a"));

  const auto loaded = load_model(path, cfg, lib().num_types(), "tag-a");
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->parameters().size(), model.parameters().size());
  for (std::size_t p = 0; p < model.parameters().size(); ++p) {
    const Tensor& a = model.parameters()[p];
    const Tensor& b = loaded->parameters()[p];
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
  }

  // Wrong tag or wrong architecture must be rejected.
  EXPECT_FALSE(load_model(path, cfg, lib().num_types(), "tag-b").has_value());
  GnnConfig other = cfg;
  other.hidden = 16;
  EXPECT_FALSE(load_model(path, other, lib().num_types(), "tag-a").has_value());

  // Corrupt the file: the container CRC catches it.
  std::vector<std::uint8_t> bytes = read_file(path);
  bytes[bytes.size() / 2] ^= 0x10;
  write_file(path, bytes);
  EXPECT_FALSE(load_model(path, cfg, lib().num_types(), "tag-a").has_value());
}

TEST(ModelSerialize, LegacyTextFallbackStillLoads) {
  GnnConfig cfg;
  cfg.hidden = 10;
  TimingGnn model(cfg, lib().num_types());
  const std::string path = temp_path("model_legacy.txt");
  ASSERT_TRUE(save_model_text(model, path, "legacy-tag"));
  const auto loaded = load_model(path, cfg, lib().num_types(), "legacy-tag");
  ASSERT_TRUE(loaded.has_value());
  for (std::size_t p = 0; p < model.parameters().size(); ++p) {
    const Tensor& a = model.parameters()[p];
    const Tensor& b = loaded->parameters()[p];
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_NEAR(a[i], b[i], 1e-12);  // text round-trip, %.17g precision
    }
  }
  EXPECT_FALSE(load_model(path, cfg, lib().num_types(), "other-tag").has_value());
}

TEST(Snapshot, DesignSnapshotReproducesSignoffBitExactly) {
  BenchmarkSpec spec;
  spec.name = "snap_design";
  spec.target_cells = 400;
  spec.endpoints = 40;
  spec.seed = 7;
  const std::string path = temp_path("design_snap.tsdb");
  std::remove(path.c_str());

  FlowOptions fopts;
  PreparedDesign cold = prepare_design(lib(), spec, 1.0, fopts, path);
  ASSERT_NE(cold.design, nullptr);
  PreparedDesign warm = prepare_design(lib(), spec, 1.0, fopts, path);
  ASSERT_NE(warm.design, nullptr);

  EXPECT_EQ(warm.design->cells().size(), cold.design->cells().size());
  EXPECT_DOUBLE_EQ(warm.design->clock_period(), cold.design->clock_period());
  const FlowResult a = cold.flow->run_signoff(cold.flow->initial_forest());
  const FlowResult b = warm.flow->run_signoff(warm.flow->initial_forest());
  EXPECT_EQ(std::memcmp(&a.metrics, &b.metrics, sizeof(a.metrics)), 0);
  EXPECT_DOUBLE_EQ(a.sta.wns, b.sta.wns);
  EXPECT_DOUBLE_EQ(a.sta.tns, b.sta.tns);
}

TEST(Snapshot, SuiteRoundTripRestoresEverything) {
  SuiteOptions options;
  options.scale = 0.05;

  TrainedSuite suite;
  suite.lib = std::make_unique<CellLibrary>(CellLibrary::make_default());
  BenchmarkSpec spec;
  spec.name = "snap_suite_0";
  spec.target_cells = 300;
  spec.endpoints = 30;
  spec.is_training = true;
  spec.seed = 11;
  suite.designs.push_back(prepare_design(*suite.lib, spec, 1.0, options.flow));
  spec.name = "snap_suite_1";
  spec.seed = 12;
  suite.designs.push_back(prepare_design(*suite.lib, spec, 1.0, options.flow));
  for (PreparedDesign& pd : suite.designs) {
    suite.base_samples.push_back(make_training_sample(pd, pd.flow->initial_forest()));
  }
  suite.model = std::make_unique<TimingGnn>(options.gnn, suite.lib->num_types());
  suite.final_train_loss = 0.042;

  const std::string path = temp_path("suite_snap.tsdb");
  ASSERT_TRUE(save_suite_snapshot(suite, options, path));

  const auto warm = load_suite_snapshot(path, options);
  ASSERT_TRUE(warm.has_value());
  EXPECT_DOUBLE_EQ(warm->final_train_loss, suite.final_train_loss);
  ASSERT_EQ(warm->designs.size(), suite.designs.size());
  ASSERT_EQ(warm->base_samples.size(), suite.base_samples.size());
  ASSERT_NE(warm->model, nullptr);

  for (std::size_t i = 0; i < suite.designs.size(); ++i) {
    const PreparedDesign& a = suite.designs[i];
    const PreparedDesign& b = warm->designs[i];
    EXPECT_EQ(b.spec.name, a.spec.name);
    // Labels are bit-identical, not re-derived.
    EXPECT_EQ(warm->base_samples[i].arrival_label, suite.base_samples[i].arrival_label);
    EXPECT_EQ(warm->base_samples[i].xs, suite.base_samples[i].xs);
    EXPECT_EQ(warm->base_samples[i].endpoint_pins, suite.base_samples[i].endpoint_pins);
    // And sign-off on the restored flow reproduces cold metrics bit-exactly.
    const FlowResult ra = a.flow->run_signoff(a.flow->initial_forest());
    const FlowResult rb = b.flow->run_signoff(b.flow->initial_forest());
    EXPECT_EQ(std::memcmp(&ra.metrics, &rb.metrics, sizeof(ra.metrics)), 0);
  }
  for (std::size_t p = 0; p < suite.model->parameters().size(); ++p) {
    const Tensor& a = suite.model->parameters()[p];
    const Tensor& b = warm->model->parameters()[p];
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
  }

  // A different options fingerprint must reject the snapshot.
  SuiteOptions other = options;
  other.seed += 1;
  EXPECT_FALSE(load_suite_snapshot(path, other).has_value());

  // And payload corruption must reject it via the container CRC.
  std::vector<std::uint8_t> bytes = read_file(path);
  bytes[bytes.size() / 3] ^= 0x01;
  write_file(path, bytes);
  EXPECT_FALSE(load_suite_snapshot(path, options).has_value());
}

}  // namespace
}  // namespace tsteiner
