// Property-based sweeps (parameterized gtest): invariants that must hold for
// every seed / design size, exercised across a matrix of configurations.
#include <gtest/gtest.h>

#include "droute/detailed_route.hpp"
#include "flow/flow.hpp"
#include "netlist/design_generator.hpp"
#include "place/placer.hpp"
#include "route/global_router.hpp"
#include "sta/sta.hpp"
#include "steiner/rsmt.hpp"
#include "tsteiner/random_move.hpp"

namespace tsteiner {
namespace {

const CellLibrary& lib() {
  static const CellLibrary l = CellLibrary::make_default();
  return l;
}

// ---------------------------------------------------------------------------
// RSMT invariants over random nets.
// ---------------------------------------------------------------------------
class RsmtProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RsmtProperty, TreeInvariants) {
  Rng rng(GetParam());
  Design d("prop", &lib());
  d.set_die({{0, 0}, {256, 256}});
  const int drv = d.add_cell(lib().find("BUF_X1"));
  d.cell(drv).pos = {rng.uniform_int(0, 256), rng.uniform_int(0, 256)};
  const int net = d.add_net(d.cell(drv).output_pin);
  const int sinks = static_cast<int>(rng.uniform_int(1, 24));
  std::vector<PointF> pts{to_f(d.cell(drv).pos)};
  for (int i = 0; i < sinks; ++i) {
    const int c = d.add_cell(lib().find("INV_X1"));
    d.cell(c).pos = {rng.uniform_int(0, 256), rng.uniform_int(0, 256)};
    d.connect_sink(net, d.cell(c).input_pins[0]);
    pts.push_back(to_f(d.cell(c).pos));
  }
  const SteinerTree t = build_rsmt(d, net);
  // (1) structural validity
  EXPECT_TRUE(t.is_valid_tree());
  // (2) wirelength between the Steiner lower bound and the MST upper bound
  const double mst = mst_length(pts);
  EXPECT_LE(t.wirelength(), mst + 1e-9);
  EXPECT_GE(t.wirelength(), mst * 2.0 / 3.0 - 1e-9);
  // (3) every Steiner node is a real junction
  const auto adj = t.adjacency();
  for (std::size_t n = 0; n < t.nodes.size(); ++n) {
    if (t.nodes[n].is_steiner()) {
      const std::size_t degree = adj[n].size();
      EXPECT_GE(degree, 3u);
    }
  }
  // (4) every pin of the net appears exactly once
  std::size_t pin_nodes = 0;
  for (const SteinerNode& n : t.nodes) pin_nodes += n.is_steiner() ? 0 : 1;
  EXPECT_EQ(pin_nodes, static_cast<std::size_t>(sinks) + 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RsmtProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233));

// ---------------------------------------------------------------------------
// STA invariants over generated designs.
// ---------------------------------------------------------------------------
struct StaCase {
  std::uint64_t seed;
  int cells;
};

class StaProperty : public ::testing::TestWithParam<StaCase> {};

TEST_P(StaProperty, TimingInvariants) {
  GeneratorParams p;
  p.num_comb_cells = GetParam().cells;
  p.num_registers = std::max(8, GetParam().cells / 10);
  p.num_primary_inputs = 6;
  p.num_primary_outputs = 6;
  p.seed = GetParam().seed;
  Design d = generate_design(lib(), p);
  place_design(d);
  const SteinerForest f = build_forest(d);
  const StaResult r = run_sta(d, f, nullptr);

  // (1) arrivals non-negative and finite
  for (double a : r.arrival) {
    EXPECT_GE(a, 0.0);
    EXPECT_TRUE(std::isfinite(a));
  }
  // (2) every sink arrives no earlier than its net's driver
  for (const Net& n : d.nets()) {
    const double da = r.arrival[static_cast<std::size_t>(n.driver_pin)];
    for (int s : n.sink_pins) {
      EXPECT_GE(r.arrival[static_cast<std::size_t>(s)], da - 1e-12);
    }
  }
  // (3) cell outputs arrive strictly after each connected input
  for (const Cell& c : d.cells()) {
    if (d.is_register_cell(c.id)) continue;
    for (int ip : c.input_pins) {
      EXPECT_GT(r.arrival[static_cast<std::size_t>(c.output_pin)],
                r.arrival[static_cast<std::size_t>(ip)]);
    }
  }
  // (4) WNS/TNS/violations aggregate consistently
  double tns = 0.0, wns = 1e30;
  long long vios = 0;
  for (double s : r.endpoint_slack) {
    tns += std::min(0.0, s);
    wns = std::min(wns, s);
    vios += s < 0.0 ? 1 : 0;
  }
  EXPECT_NEAR(r.tns, tns, 1e-9);
  EXPECT_NEAR(r.wns, wns, 1e-12);
  EXPECT_EQ(r.num_violations, vios);
}

INSTANTIATE_TEST_SUITE_P(Cases, StaProperty,
                         ::testing::Values(StaCase{11, 80}, StaCase{12, 150},
                                           StaCase{13, 300}, StaCase{14, 500},
                                           StaCase{15, 150}, StaCase{16, 300}));

// ---------------------------------------------------------------------------
// Global-router conservation over seeds.
// ---------------------------------------------------------------------------
class RouterProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RouterProperty, UsageConservation) {
  GeneratorParams p;
  p.num_comb_cells = 220;
  p.num_registers = 24;
  p.num_primary_inputs = 6;
  p.num_primary_outputs = 6;
  p.seed = GetParam();
  Design d = generate_design(lib(), p);
  place_design(d);
  const SteinerForest f = build_forest(d);
  const GlobalRouteResult gr = global_route(d, f);

  // (1) one connection per tree edge, endpoints consistent
  std::size_t edges = 0;
  for (const SteinerTree& t : f.trees) edges += t.edges.size();
  EXPECT_EQ(gr.connections.size(), edges);
  // (2) total usage equals the sum of path steps
  double steps = 0.0;
  for (const RoutedConnection& c : gr.connections) {
    steps += static_cast<double>(c.path.size() - 1);
  }
  double usage = 0.0;
  for (int y = 0; y < gr.grid.ny(); ++y) {
    for (int x = 0; x + 1 < gr.grid.nx(); ++x) usage += gr.grid.h_usage(x, y);
  }
  for (int y = 0; y + 1 < gr.grid.ny(); ++y) {
    for (int x = 0; x < gr.grid.nx(); ++x) usage += gr.grid.v_usage(x, y);
  }
  EXPECT_NEAR(usage, steps, 1e-6);
  // (3) overflow is never negative, capacities positive
  EXPECT_GE(gr.total_overflow, 0.0);
  EXPECT_GT(gr.calibrated_h_cap, 0.0);
  EXPECT_GT(gr.calibrated_v_cap, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RouterProperty, ::testing::Range<std::uint64_t>(100, 108));

// ---------------------------------------------------------------------------
// Random disturbance: topology-preserving, bounded, pin-fixing over radii.
// ---------------------------------------------------------------------------
class DisturbProperty : public ::testing::TestWithParam<double> {};

TEST_P(DisturbProperty, BoundedTopologyPreserving) {
  GeneratorParams p;
  p.num_comb_cells = 150;
  p.num_registers = 16;
  p.num_primary_inputs = 4;
  p.num_primary_outputs = 4;
  p.seed = 42;
  Design d = generate_design(lib(), p);
  place_design(d);
  const SteinerForest f = build_forest(d);
  Rng rng(7);
  const double radius = GetParam();
  const SteinerForest moved = random_disturb(f, d.die(), radius, rng);
  ASSERT_EQ(moved.trees.size(), f.trees.size());
  for (std::size_t t = 0; t < f.trees.size(); ++t) {
    ASSERT_EQ(moved.trees[t].nodes.size(), f.trees[t].nodes.size());
    EXPECT_TRUE(moved.trees[t].is_valid_tree());
    for (std::size_t n = 0; n < f.trees[t].nodes.size(); ++n) {
      const SteinerNode& a = f.trees[t].nodes[n];
      const SteinerNode& b = moved.trees[t].nodes[n];
      if (a.is_steiner()) {
        EXPECT_LE(std::abs(a.pos.x - b.pos.x), radius + 1.0);
        EXPECT_LE(std::abs(a.pos.y - b.pos.y), radius + 1.0);
        EXPECT_TRUE(d.die().contains(b.pos));
      } else {
        EXPECT_EQ(a.pos, b.pos);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Radii, DisturbProperty, ::testing::Values(0.5, 2.0, 8.0, 32.0, 128.0));

// ---------------------------------------------------------------------------
// Flow end-to-end: metrics sane across seeds and with/without edge shifting.
// ---------------------------------------------------------------------------
struct FlowCase {
  std::uint64_t seed;
  bool edge_shift;
};

class FlowProperty : public ::testing::TestWithParam<FlowCase> {};

TEST_P(FlowProperty, SignoffMetricsSane) {
  GeneratorParams p;
  p.num_comb_cells = 240;
  p.num_registers = 26;
  p.num_primary_inputs = 6;
  p.num_primary_outputs = 6;
  p.seed = GetParam().seed;
  Design d = generate_design(lib(), p);
  place_design(d);
  FlowOptions fo;
  fo.edge_shifting = GetParam().edge_shift;
  const Flow flow(&d, fo);
  const FlowResult r = flow.run_signoff(flow.initial_forest());
  EXPECT_LT(r.metrics.wns_ns, 0.0);
  EXPECT_LE(r.metrics.tns_ns, r.metrics.wns_ns);
  EXPECT_GT(r.metrics.num_vios, 0);
  EXPECT_LE(r.metrics.num_vios, static_cast<long long>(d.endpoint_pins().size()));
  EXPECT_GT(r.metrics.wirelength_dbu, 0.0);
  EXPECT_GE(r.metrics.num_drvs, 0);
  EXPECT_GT(r.metrics.num_vias, 0);
}

INSTANTIATE_TEST_SUITE_P(Cases, FlowProperty,
                         ::testing::Values(FlowCase{201, true}, FlowCase{202, true},
                                           FlowCase{203, false}, FlowCase{204, false},
                                           FlowCase{205, true}));

}  // namespace
}  // namespace tsteiner
