#include <gtest/gtest.h>

#include "flow/flow.hpp"
#include "gnn/trainer.hpp"
#include "netlist/design_generator.hpp"
#include "place/placer.hpp"
#include "steiner/rsmt.hpp"
#include "tsteiner/gradient.hpp"
#include "tsteiner/optimizer.hpp"
#include "tsteiner/penalty.hpp"
#include "tsteiner/random_move.hpp"
#include "tsteiner/refine.hpp"

namespace tsteiner {
namespace {

const CellLibrary& lib() {
  static const CellLibrary l = CellLibrary::make_default();
  return l;
}

struct Fixture {
  Design design;
  SteinerForest forest;
  std::shared_ptr<const GraphCache> cache;
};

Fixture make_fixture(std::uint64_t seed = 81) {
  GeneratorParams p;
  p.num_comb_cells = 120;
  p.num_registers = 14;
  p.num_primary_inputs = 4;
  p.num_primary_outputs = 4;
  p.seed = seed;
  Fixture f{generate_design(lib(), p), {}, nullptr};
  place_design(f.design);
  f.forest = build_forest(f.design);
  // Tight clock so endpoints violate.
  const StaResult sta = run_sta(f.design, f.forest, nullptr);
  f.design.set_clock_period(0.6 * sta.max_arrival);
  f.cache = build_graph_cache(f.design, f.forest);
  return f;
}

TEST(Penalty, HardMetricsMatchManualComputation) {
  const Fixture f = make_fixture();
  GnnConfig cfg;
  cfg.hidden = 8;
  const TimingGnn model(cfg, lib().num_types());
  Tape tape;
  const auto bound = model.bind(tape);
  const Value xs = tape.leaf(Tensor::column(f.forest.gather_x()));
  const Value ys = tape.leaf(Tensor::column(f.forest.gather_y()));
  const Value arrival = model.forward(tape, *f.cache, bound, xs, ys);
  PenaltyWeights w;
  const PenaltyTerms terms = build_timing_penalty(tape, *f.cache, f.design, arrival, w);
  // Recompute hard WNS/TNS from arrivals by hand.
  const Tensor& a = tape.value(arrival);
  double wns = 1e30, tns = 0.0;
  for (int ep : f.design.endpoint_pins()) {
    double req = f.design.clock_period();
    const Pin& p = f.design.pin(ep);
    if (p.kind == PinKind::kCellInput) req -= f.design.cell_type(p.cell).setup_ns;
    const double slack = req - a[static_cast<std::size_t>(ep)] * f.cache->clock;
    wns = std::min(wns, slack);
    tns += std::min(0.0, slack);
  }
  EXPECT_NEAR(terms.hard_wns_ns, wns, 1e-9);
  EXPECT_NEAR(terms.hard_tns_ns, tns, 1e-9);
}

TEST(Penalty, SmoothWnsBoundsHardWns) {
  const Fixture f = make_fixture(82);
  GnnConfig cfg;
  cfg.hidden = 8;
  const TimingGnn model(cfg, lib().num_types());
  Tape tape;
  const auto bound = model.bind(tape);
  const Value xs = tape.leaf(Tensor::column(f.forest.gather_x()));
  const Value ys = tape.leaf(Tensor::column(f.forest.gather_y()));
  const Value arrival = model.forward(tape, *f.cache, bound, xs, ys);
  PenaltyWeights w;
  w.gamma_ns = 0.01;  // tight smoothing: LSE(min) <= hard min, close to it
  const PenaltyTerms terms = build_timing_penalty(tape, *f.cache, f.design, arrival, w);
  const double smooth_wns = tape.value(terms.smooth_wns)[0] * f.cache->clock;
  EXPECT_LE(smooth_wns, terms.hard_wns_ns + 1e-9);
  EXPECT_NEAR(smooth_wns, terms.hard_wns_ns, 0.05 * std::abs(terms.hard_wns_ns) + 0.05);
}

TEST(Penalty, GradientReachesAllEndpointsWithLargeGamma) {
  // With LSE smoothing the gradient must touch more than the single worst
  // path — that is the whole point of Eq. (5).
  const Fixture f = make_fixture(83);
  GnnConfig cfg;
  cfg.hidden = 8;
  const TimingGnn model(cfg, lib().num_types());
  Tape tape;
  const auto bound = model.bind(tape);
  const Value xs = tape.leaf(Tensor::column(f.forest.gather_x()), true);
  const Value ys = tape.leaf(Tensor::column(f.forest.gather_y()), true);
  const Value arrival = model.forward(tape, *f.cache, bound, xs, ys);
  PenaltyWeights w;  // gamma 10ns: very smooth
  const PenaltyTerms terms = build_timing_penalty(tape, *f.cache, f.design, arrival, w);
  tape.backward(terms.penalty);
  const Tensor& g = tape.grad(arrival);
  int touched = 0;
  for (int ep : f.design.endpoint_pins()) {
    if (g[static_cast<std::size_t>(ep)] != 0.0) ++touched;
  }
  EXPECT_GT(touched, 1) << "smoothing should spread gradient across endpoints";
}

TEST(Gradient, MatchesFiniteDifferenceOfPenalty) {
  const Fixture f = make_fixture(84);
  GnnConfig cfg;
  cfg.hidden = 6;
  const TimingGnn model(cfg, lib().num_types());
  PenaltyWeights w;
  auto xs = f.forest.gather_x();
  auto ys = f.forest.gather_y();
  const GradientResult g = compute_timing_gradients(model, *f.cache, f.design, xs, ys, w);
  ASSERT_EQ(g.grad_x.size(), xs.size());
  // Check a few coordinates with central differences.
  const double eps = 1e-4;
  int checked = 0;
  for (std::size_t i = 0; i < xs.size() && checked < 5; i += std::max<std::size_t>(1, xs.size() / 5)) {
    auto xp = xs;
    auto xm = xs;
    xp[i] += eps;
    xm[i] -= eps;
    const double fp = evaluate_timing(model, *f.cache, f.design, xp, ys, w).penalty;
    const double fm = evaluate_timing(model, *f.cache, f.design, xm, ys, w).penalty;
    const double numeric = (fp - fm) / (2.0 * eps);
    EXPECT_NEAR(g.grad_x[i], numeric, 1e-4 + 0.05 * std::abs(numeric)) << "coord " << i;
    ++checked;
  }
  EXPECT_GE(checked, 1);
}

TEST(SteinerOptimizer, MemorylessStepIsScaleInvariant) {
  // Eq. (7) without momentum: step magnitude ~ theta * (1-b1)/sqrt(1-b2)
  // regardless of gradient scale.
  SoOptions so;
  SteinerOptimizer opt(2, /*theta=*/1.0, so);
  std::vector<double> x{0.0, 0.0};
  opt.step(x, {1e-3, 1e3}, /*max_move=*/100.0);
  EXPECT_NEAR(x[0], x[1], 1e-2) << "both coordinates should move almost equally";
  EXPECT_LT(x[0], 0.0);
}

TEST(SteinerOptimizer, RespectsMaxMove) {
  SteinerOptimizer opt(1, /*theta=*/100.0);
  std::vector<double> x{0.0};
  opt.step(x, {5.0}, /*max_move=*/2.0);
  EXPECT_GE(x[0], -2.0);
}

TEST(SteinerOptimizer, ZeroGradientNoMove) {
  SteinerOptimizer opt(3, 1.0);
  std::vector<double> x{1.0, 2.0, 3.0};
  opt.step(x, {0.0, 0.0, 0.0}, 10.0);
  EXPECT_DOUBLE_EQ(x[0], 1.0);
  EXPECT_DOUBLE_EQ(x[1], 2.0);
  EXPECT_DOUBLE_EQ(x[2], 3.0);
}

TEST(Gradient, EvaluateAgreesWithComputeOnMetrics) {
  const Fixture f = make_fixture(93);
  GnnConfig cfg;
  cfg.hidden = 6;
  const TimingGnn model(cfg, lib().num_types());
  PenaltyWeights w;
  const auto xs = f.forest.gather_x();
  const auto ys = f.forest.gather_y();
  const GradientResult a = evaluate_timing(model, *f.cache, f.design, xs, ys, w);
  const GradientResult b = compute_timing_gradients(model, *f.cache, f.design, xs, ys, w);
  EXPECT_DOUBLE_EQ(a.eval_wns_ns, b.eval_wns_ns);
  EXPECT_DOUBLE_EQ(a.eval_tns_ns, b.eval_tns_ns);
  EXPECT_DOUBLE_EQ(a.penalty, b.penalty);
  EXPECT_TRUE(a.grad_x.empty());   // forward-only
  EXPECT_FALSE(b.grad_x.empty());  // backward pass ran
}

TEST(AdaptiveTheta, PositiveAndFinite) {
  const Fixture f = make_fixture(85);
  GnnConfig cfg;
  cfg.hidden = 6;
  const TimingGnn model(cfg, lib().num_types());
  PenaltyWeights w;
  const double theta = adaptive_theta(model, *f.cache, f.design, f.forest.gather_x(),
                                      f.forest.gather_y(), w, 5.0);
  EXPECT_GT(theta, 0.0);
  EXPECT_TRUE(std::isfinite(theta));
}

TEST(Refine, KeepsTopologyAndStaysInBounds) {
  const Fixture f = make_fixture(86);
  GnnConfig cfg;
  cfg.hidden = 6;
  const TimingGnn model(cfg, lib().num_types());
  RefineOptions opts;
  opts.max_iterations = 6;
  const RefineResult r = refine_steiner_points(f.design, f.forest, model, opts);
  ASSERT_EQ(r.forest.trees.size(), f.forest.trees.size());
  for (std::size_t t = 0; t < r.forest.trees.size(); ++t) {
    EXPECT_EQ(r.forest.trees[t].nodes.size(), f.forest.trees[t].nodes.size());
    EXPECT_EQ(r.forest.trees[t].edges.size(), f.forest.trees[t].edges.size());
    EXPECT_TRUE(r.forest.trees[t].is_valid_tree());
    for (const SteinerNode& n : r.forest.trees[t].nodes) {
      EXPECT_TRUE(f.design.die().contains(n.pos)) << "node escaped the die";
      if (n.is_steiner()) {
        // rounded post-processing
        EXPECT_DOUBLE_EQ(n.pos.x, std::round(n.pos.x));
        EXPECT_DOUBLE_EQ(n.pos.y, std::round(n.pos.y));
      }
    }
  }
  EXPECT_GT(r.iterations, 0);
  EXPECT_EQ(r.wns_trace.size(), static_cast<std::size_t>(r.iterations));
}

TEST(Refine, BestNeverWorseThanInit) {
  const Fixture f = make_fixture(87);
  GnnConfig cfg;
  cfg.hidden = 6;
  const TimingGnn model(cfg, lib().num_types());
  RefineOptions opts;
  opts.max_iterations = 8;
  const RefineResult r = refine_steiner_points(f.design, f.forest, model, opts);
  EXPECT_GE(r.best_wns, r.init_wns - 1e-9);
  EXPECT_GE(r.best_tns, r.init_tns - 1e-9);
}

TEST(Refine, PinsNeverMove) {
  const Fixture f = make_fixture(88);
  GnnConfig cfg;
  cfg.hidden = 6;
  const TimingGnn model(cfg, lib().num_types());
  RefineOptions opts;
  opts.max_iterations = 4;
  const RefineResult r = refine_steiner_points(f.design, f.forest, model, opts);
  for (std::size_t t = 0; t < r.forest.trees.size(); ++t) {
    for (std::size_t n = 0; n < r.forest.trees[t].nodes.size(); ++n) {
      if (!f.forest.trees[t].nodes[n].is_steiner()) {
        EXPECT_EQ(r.forest.trees[t].nodes[n].pos, f.forest.trees[t].nodes[n].pos);
      }
    }
  }
}

TEST(Refine, EmptyMovableSetIsNoop) {
  // chain design: all nets 2-pin -> no Steiner points
  Design d("chain", &lib());
  d.set_die({{0, 0}, {100, 100}});
  const int pi = d.add_primary_input({0, 50});
  const int inv = d.add_cell(lib().find("INV_X1"));
  d.cell(inv).pos = {50, 50};
  const int n1 = d.add_net(pi);
  d.connect_sink(n1, d.cell(inv).input_pins[0]);
  const int po = d.add_primary_output({100, 50});
  const int n2 = d.add_net(d.cell(inv).output_pin);
  d.connect_sink(n2, po);
  d.set_clock_period(0.05);
  const SteinerForest forest = build_forest(d);
  GnnConfig cfg;
  cfg.hidden = 4;
  const TimingGnn model(cfg, lib().num_types());
  const RefineResult r = refine_steiner_points(d, forest, model, {});
  EXPECT_EQ(r.iterations, 0);
}

TEST(Refine, HugeGateReturnsInitialForestExactly) {
  const Fixture f = make_fixture(90);
  GnnConfig cfg;
  cfg.hidden = 6;
  const TimingGnn model(cfg, lib().num_types());
  RefineOptions opts;
  opts.max_iterations = 5;
  opts.min_return_improvement = 0.99;  // nothing can clear this bar
  const RefineResult r = refine_steiner_points(f.design, f.forest, model, opts);
  for (std::size_t t = 0; t < r.forest.trees.size(); ++t) {
    for (std::size_t n = 0; n < r.forest.trees[t].nodes.size(); ++n) {
      const PointF& a = f.forest.trees[t].nodes[n].pos;
      const PointF& b = r.forest.trees[t].nodes[n].pos;
      // positions identical up to the final rounding post-process
      EXPECT_NEAR(a.x, b.x, 0.51);
      EXPECT_NEAR(a.y, b.y, 0.51);
    }
  }
  EXPECT_DOUBLE_EQ(r.best_wns, r.init_wns);
  EXPECT_DOUBLE_EQ(r.best_tns, r.init_tns);
}

TEST(Refine, PaperModeWithoutBacktrackingRuns) {
  const Fixture f = make_fixture(91);
  GnnConfig cfg;
  cfg.hidden = 6;
  const TimingGnn model(cfg, lib().num_types());
  RefineOptions opts;
  opts.max_iterations = 6;
  opts.theta_backtrack = 1.0;  // the paper's literal loop
  const RefineResult r = refine_steiner_points(f.design, f.forest, model, opts);
  EXPECT_GT(r.iterations, 0);
  EXPECT_GE(r.best_wns, r.init_wns - 1e-9);
}

TEST(Refine, GammaRelativeOverrideAccepted) {
  const Fixture f = make_fixture(92);
  GnnConfig cfg;
  cfg.hidden = 6;
  const TimingGnn model(cfg, lib().num_types());
  RefineOptions opts;
  opts.max_iterations = 3;
  opts.weights.gamma_relative = 0.5;
  const RefineResult r = refine_steiner_points(f.design, f.forest, model, opts);
  EXPECT_GE(r.iterations, 1);
  for (double w : r.wns_trace) EXPECT_TRUE(std::isfinite(w));
}

TEST(RandomMove, StaysInBoundsAndKeepsPins) {
  const Fixture f = make_fixture(89);
  Rng rng(5);
  const SteinerForest moved = random_disturb(f.forest, f.design.die(), 16.0, rng);
  ASSERT_EQ(moved.trees.size(), f.forest.trees.size());
  bool any_moved = false;
  for (std::size_t t = 0; t < moved.trees.size(); ++t) {
    for (std::size_t n = 0; n < moved.trees[t].nodes.size(); ++n) {
      const SteinerNode& a = f.forest.trees[t].nodes[n];
      const SteinerNode& b = moved.trees[t].nodes[n];
      if (a.is_steiner()) {
        EXPECT_TRUE(f.design.die().contains(b.pos));
        EXPECT_LE(std::abs(a.pos.x - b.pos.x), 17.0);  // +1 for rounding
        if (!(a.pos == b.pos)) any_moved = true;
      } else {
        EXPECT_EQ(a.pos, b.pos);
      }
    }
  }
  EXPECT_TRUE(any_moved);
}

}  // namespace
}  // namespace tsteiner
