#include <gtest/gtest.h>

#include "netlist/design_generator.hpp"
#include "place/placer.hpp"
#include "sta/incremental.hpp"
#include "steiner/rsmt.hpp"
#include "tsteiner/random_move.hpp"

namespace tsteiner {
namespace {

const CellLibrary& lib() {
  static const CellLibrary l = CellLibrary::make_default();
  return l;
}

struct Fixture {
  Design design;
  SteinerForest forest;
};

Fixture make(std::uint64_t seed, int comb = 300) {
  GeneratorParams p;
  p.num_comb_cells = comb;
  p.num_registers = comb / 10;
  p.num_primary_inputs = 6;
  p.num_primary_outputs = 6;
  p.seed = seed;
  Fixture f{generate_design(lib(), p), {}};
  place_design(f.design);
  f.forest = build_forest(f.design);
  f.design.set_clock_period(1.0);
  return f;
}

/// Move all Steiner points of one tree and return the net id.
int move_one_net(SteinerForest& forest, std::size_t tree_idx, double dx) {
  SteinerTree& t = forest.trees[tree_idx % forest.trees.size()];
  for (SteinerNode& n : t.nodes) {
    if (n.is_steiner()) n.pos.x += dx;
  }
  return t.net;
}

void expect_results_equal(const StaResult& a, const StaResult& b) {
  ASSERT_EQ(a.arrival.size(), b.arrival.size());
  for (std::size_t i = 0; i < a.arrival.size(); ++i) {
    EXPECT_NEAR(a.arrival[i], b.arrival[i], 1e-9) << "pin " << i;
    EXPECT_NEAR(a.slew[i], b.slew[i], 1e-9) << "pin " << i;
  }
  EXPECT_NEAR(a.wns, b.wns, 1e-9);
  EXPECT_NEAR(a.tns, b.tns, 1e-9);
  EXPECT_EQ(a.num_violations, b.num_violations);
  EXPECT_EQ(a.num_slew_violations, b.num_slew_violations);
  EXPECT_EQ(a.num_cap_violations, b.num_cap_violations);
}

TEST(IncrementalSta, AnalyzeMatchesFullSta) {
  const Fixture f = make(111);
  IncrementalSta inc(f.design);
  const StaResult& r = inc.analyze(f.forest, nullptr);
  const StaResult full = run_sta(f.design, f.forest, nullptr);
  expect_results_equal(r, full);
}

TEST(IncrementalSta, SingleNetUpdateMatchesFull) {
  const Fixture f = make(112);
  IncrementalSta inc(f.design);
  inc.analyze(f.forest, nullptr);

  SteinerForest moved = f.forest;
  // Find a tree with Steiner points.
  int dirty_net = -1;
  for (std::size_t t = 0; t < moved.trees.size(); ++t) {
    if (moved.trees[t].num_steiner_nodes() > 0) {
      dirty_net = move_one_net(moved, t, 15.0);
      break;
    }
  }
  ASSERT_GE(dirty_net, 0);
  const StaResult& r = inc.update(moved, nullptr, {dirty_net});
  const StaResult full = run_sta(f.design, moved, nullptr);
  expect_results_equal(r, full);
}

TEST(IncrementalSta, MultiNetUpdateMatchesFull) {
  const Fixture f = make(113);
  IncrementalSta inc(f.design);
  inc.analyze(f.forest, nullptr);

  SteinerForest moved = f.forest;
  std::vector<int> dirty;
  int count = 0;
  for (std::size_t t = 0; t < moved.trees.size() && count < 8; ++t) {
    if (moved.trees[t].num_steiner_nodes() > 0) {
      dirty.push_back(move_one_net(moved, t, 8.0 + static_cast<double>(t % 5)));
      ++count;
    }
  }
  ASSERT_GT(dirty.size(), 2u);
  const StaResult& r = inc.update(moved, nullptr, dirty);
  const StaResult full = run_sta(f.design, moved, nullptr);
  expect_results_equal(r, full);
}

TEST(IncrementalSta, UpdateTouchesFarFewerCellsThanFull) {
  const Fixture f = make(114, 600);
  IncrementalSta inc(f.design);
  inc.analyze(f.forest, nullptr);
  SteinerForest moved = f.forest;
  int dirty_net = -1;
  for (std::size_t t = 0; t < moved.trees.size(); ++t) {
    if (moved.trees[t].num_steiner_nodes() > 0) {
      dirty_net = move_one_net(moved, t, 4.0);
      break;
    }
  }
  ASSERT_GE(dirty_net, 0);
  inc.update(moved, nullptr, {dirty_net});
  EXPECT_LT(inc.last_update_cell_count(),
            static_cast<long long>(f.design.cells().size()) / 2)
      << "one net's cone should be a small fraction of the design";
}

TEST(IncrementalSta, RepeatedUpdatesStayExact) {
  const Fixture f = make(115);
  IncrementalSta inc(f.design);
  inc.analyze(f.forest, nullptr);
  SteinerForest moved = f.forest;
  Rng rng(9);
  for (int round = 0; round < 5; ++round) {
    std::vector<int> dirty;
    for (int k = 0; k < 3; ++k) {
      const std::size_t t = rng.index(moved.trees.size());
      if (moved.trees[t].num_steiner_nodes() == 0) continue;
      dirty.push_back(move_one_net(moved, t, rng.uniform(-6.0, 6.0)));
    }
    if (dirty.empty()) continue;
    inc.update(moved, nullptr, dirty);
  }
  const StaResult full = run_sta(f.design, moved, nullptr);
  expect_results_equal(inc.result(), full);
}

TEST(IncrementalSta, RegisterDrivenNetUpdates) {
  // Moving a register's output net changes its CK->Q delay via the load.
  const Fixture f = make(116);
  IncrementalSta inc(f.design);
  inc.analyze(f.forest, nullptr);
  SteinerForest moved = f.forest;
  int dirty_net = -1;
  for (const Cell& c : f.design.cells()) {
    if (!f.design.is_register_cell(c.id)) continue;
    const int net = f.design.pin(c.output_pin).net;
    if (net < 0) continue;
    const int t = moved.net_to_tree[static_cast<std::size_t>(net)];
    if (t < 0 || moved.trees[static_cast<std::size_t>(t)].num_steiner_nodes() == 0) continue;
    dirty_net = move_one_net(moved, static_cast<std::size_t>(t), 20.0);
    break;
  }
  if (dirty_net < 0) GTEST_SKIP() << "no register net with Steiner points in this seed";
  const StaResult& r = inc.update(moved, nullptr, {dirty_net});
  const StaResult full = run_sta(f.design, moved, nullptr);
  expect_results_equal(r, full);
}

TEST(IncrementalSta, DuplicateDirtyNetsAreDeduplicated) {
  const Fixture f = make(117);
  IncrementalSta inc(f.design);
  inc.analyze(f.forest, nullptr);

  SteinerForest moved = f.forest;
  int dirty_net = -1;
  for (std::size_t t = 0; t < moved.trees.size(); ++t) {
    if (moved.trees[t].num_steiner_nodes() > 0) {
      dirty_net = move_one_net(moved, t, 12.0);
      break;
    }
  }
  ASSERT_GE(dirty_net, 0);

  // A unique list establishes the baseline cost and result.
  IncrementalSta once(f.design);
  once.analyze(f.forest, nullptr);
  const StaResult unique_result = once.update(moved, nullptr, {dirty_net});
  const long long unique_cells = once.last_update_cell_count();

  // The same net listed five times must cost the same and match exactly —
  // re-extracting a net twice would double-propagate its cone.
  const StaResult& dup_result =
      inc.update(moved, nullptr, {dirty_net, dirty_net, dirty_net, dirty_net, dirty_net});
  expect_results_equal(dup_result, unique_result);
  EXPECT_EQ(inc.last_update_cell_count(), unique_cells)
      << "duplicate dirty entries must not be re-processed";
  expect_results_equal(dup_result, run_sta(f.design, moved, nullptr));
}

TEST(IncrementalSta, EmptyDirtyListIsAFreeExactNoOp) {
  const Fixture f = make(119);
  IncrementalSta inc(f.design);
  const StaResult baseline = inc.analyze(f.forest, nullptr);
  // Nothing moved, nothing declared dirty: the update must return the cached
  // result bit-for-bit without re-propagating a single cell.
  const StaResult& r = inc.update(f.forest, nullptr, {});
  EXPECT_EQ(inc.last_update_cell_count(), 0);
  ASSERT_EQ(r.arrival.size(), baseline.arrival.size());
  for (std::size_t i = 0; i < r.arrival.size(); ++i) {
    EXPECT_EQ(r.arrival[i], baseline.arrival[i]) << "pin " << i;
    EXPECT_EQ(r.slew[i], baseline.slew[i]) << "pin " << i;
  }
  EXPECT_EQ(r.wns, baseline.wns);
  EXPECT_EQ(r.tns, baseline.tns);
  EXPECT_EQ(r.max_arrival, baseline.max_arrival);
  EXPECT_EQ(r.num_violations, baseline.num_violations);
  // And a later real update still works from the untouched cached state.
  SteinerForest moved = f.forest;
  int dirty_net = -1;
  for (std::size_t t = 0; t < moved.trees.size(); ++t) {
    if (moved.trees[t].num_steiner_nodes() > 0) {
      dirty_net = move_one_net(moved, t, 9.0);
      break;
    }
  }
  ASSERT_GE(dirty_net, 0);
  expect_results_equal(inc.update(moved, nullptr, {dirty_net}),
                       run_sta(f.design, moved, nullptr));
}

TEST(IncrementalSta, ZeroSinkDirtyNetIsSkipped) {
  // A net with a driver but no sinks (a dangling output mid-edit) has no
  // tree and no timing contribution; listing it dirty must be a no-op, not
  // a crash or a stale-state source.
  GeneratorParams p;
  p.num_comb_cells = 60;
  p.num_registers = 6;
  p.num_primary_inputs = 4;
  p.num_primary_outputs = 4;
  p.seed = 118;
  Design design = generate_design(lib(), p);
  // Append one cell whose output net never gets a sink.
  const int extra_cell = design.add_cell(lib().combinational_types()[0]);
  const int sinkless_net = design.add_net(design.cell(extra_cell).output_pin);
  place_design(design);
  SteinerForest forest = build_forest(design);
  design.set_clock_period(1.0);
  ASSERT_EQ(forest.net_to_tree[static_cast<std::size_t>(sinkless_net)], -1);

  IncrementalSta inc(design);
  inc.analyze(forest, nullptr);
  SteinerForest moved = forest;
  int moved_net = -1;
  for (std::size_t t = 0; t < moved.trees.size(); ++t) {
    if (moved.trees[t].num_steiner_nodes() > 0) {
      moved_net = move_one_net(moved, t, 10.0);
      break;
    }
  }
  ASSERT_GE(moved_net, 0);
  const StaResult& r =
      inc.update(moved, nullptr, {sinkless_net, moved_net, sinkless_net});
  expect_results_equal(r, run_sta(design, moved, nullptr));
}

}  // namespace
}  // namespace tsteiner
