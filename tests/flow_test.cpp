#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "flow/experiment.hpp"
#include "flow/flow.hpp"
#include "flow/iterative.hpp"
#include "netlist/design_generator.hpp"
#include "place/placer.hpp"
#include "tsteiner/random_move.hpp"

namespace tsteiner {
namespace {

const CellLibrary& lib() {
  static const CellLibrary l = CellLibrary::make_default();
  return l;
}

Design make_design(std::uint64_t seed) {
  GeneratorParams p;
  p.num_comb_cells = 200;
  p.num_registers = 22;
  p.num_primary_inputs = 5;
  p.num_primary_outputs = 5;
  p.seed = seed;
  Design d = generate_design(lib(), p);
  place_design(d);
  return d;
}

TEST(Flow, PreparesWithNegativeSlackClock) {
  Design d = make_design(91);
  const Flow flow(&d);
  const FlowResult r = flow.run_signoff(flow.initial_forest());
  EXPECT_LT(r.metrics.wns_ns, 0.0) << "clock calibration should leave violations";
  EXPECT_LT(r.metrics.tns_ns, 0.0);
  EXPECT_GT(r.metrics.num_vios, 0);
  EXPECT_GT(r.metrics.wirelength_dbu, 0.0);
  EXPECT_GT(r.metrics.num_vias, 0);
}

TEST(Flow, RuntimeBreakdownPopulated) {
  Design d = make_design(92);
  const Flow flow(&d);
  const FlowResult r = flow.run_signoff(flow.initial_forest());
  EXPECT_GT(r.runtime.global_route_s(), 0.0);
  EXPECT_GT(r.runtime.detailed_route_s(), 0.0);
  EXPECT_GT(r.runtime.sta_s(), 0.0);
}

TEST(Flow, DeterministicSignoff) {
  Design d1 = make_design(93);
  Design d2 = make_design(93);
  const Flow f1(&d1);
  const Flow f2(&d2);
  const FlowResult r1 = f1.run_signoff(f1.initial_forest());
  const FlowResult r2 = f2.run_signoff(f2.initial_forest());
  EXPECT_DOUBLE_EQ(r1.metrics.wns_ns, r2.metrics.wns_ns);
  EXPECT_DOUBLE_EQ(r1.metrics.tns_ns, r2.metrics.tns_ns);
  EXPECT_EQ(r1.metrics.num_vias, r2.metrics.num_vias);
}

TEST(Flow, CapacitiesPinnedAcrossVariants) {
  Design d = make_design(94);
  const Flow flow(&d);
  Rng rng(3);
  const SteinerForest variant =
      random_disturb(flow.initial_forest(), d.die(), 10.0, rng);
  const FlowResult base = flow.run_signoff(flow.initial_forest());
  const FlowResult moved = flow.run_signoff(variant);
  EXPECT_DOUBLE_EQ(base.gr.grid.h_capacity(), moved.gr.grid.h_capacity());
  EXPECT_DOUBLE_EQ(base.gr.grid.v_capacity(), moved.gr.grid.v_capacity());
}

TEST(Flow, MovingSteinerPointsChangesSignoffTiming) {
  Design d = make_design(95);
  const Flow flow(&d);
  Rng rng(4);
  const SteinerForest variant =
      random_disturb(flow.initial_forest(), d.die(), 24.0, rng);
  const FlowResult base = flow.run_signoff(flow.initial_forest());
  const FlowResult moved = flow.run_signoff(variant);
  // The paper's Fig. 2 premise: disturbance shifts sign-off TNS.
  EXPECT_NE(base.metrics.tns_ns, moved.metrics.tns_ns);
}

TEST(Flow, PrerouteStaAvailable) {
  Design d = make_design(96);
  const Flow flow(&d);
  const StaResult pre = flow.run_preroute_sta(flow.initial_forest());
  EXPECT_GT(pre.max_arrival, 0.0);
}

TEST(Flow, ConcurrentConstructionIsSafeAndIdentical) {
  // Regression guard for the probe-route calibration cache: several threads
  // constructing Flows at once (as the serve session manager's tenants do)
  // must neither race on the process-wide cache nor diverge — same design,
  // same calibration, bit-identical sign-off, no matter who populated the
  // cache first. Plain std::thread on purpose: the deterministic pool
  // serializes jobs, so it cannot exercise this interleaving.
  Design baseline = make_design(97);
  const Flow ref(&baseline);
  const FlowResult want = ref.run_signoff(ref.initial_forest());

  constexpr int kThreads = 4;
  std::vector<FlowResult> got(kThreads);
  std::vector<double> clock_period(kThreads, 0.0);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Design d = make_design(97);  // same seed: identical design, shared cache key
      const Flow flow(&d);
      clock_period[t] = d.clock_period();
      got[t] = flow.run_signoff(flow.initial_forest());
    });
  }
  for (auto& w : workers) w.join();

  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(std::memcmp(&got[t].metrics.wns_ns, &want.metrics.wns_ns, sizeof(double)), 0)
        << "thread " << t;
    EXPECT_EQ(std::memcmp(&got[t].metrics.wirelength_dbu, &want.metrics.wirelength_dbu,
                          sizeof(double)),
              0)
        << "thread " << t;
    EXPECT_EQ(got[t].metrics.num_vios, want.metrics.num_vios) << "thread " << t;
    EXPECT_EQ(std::memcmp(&clock_period[t], &clock_period[0], sizeof(double)), 0)
        << "thread " << t;
  }
}

TEST(Experiment, PrepareDesignProducesConsistentScale) {
  const auto suite = benchmark_suite();
  const BenchmarkSpec& spm = suite[5];
  ASSERT_EQ(spm.name, "spm");
  const PreparedDesign pd = prepare_design(lib(), spm, 1.0);
  EXPECT_NEAR(static_cast<double>(pd.design->stats().num_cells),
              static_cast<double>(spm.target_cells), 0.15 * spm.target_cells);
  EXPECT_GT(pd.flow->initial_forest().num_steiner_nodes(), 0);
  EXPECT_EQ(pd.cache->num_pins, static_cast<int>(pd.design->pins().size()));
}

TEST(Experiment, MakeTrainingSampleLabelsEveryPin) {
  const auto suite = benchmark_suite();
  const PreparedDesign pd = prepare_design(lib(), suite[5], 1.0);
  const TrainingSample s = make_training_sample(pd, pd.flow->initial_forest());
  EXPECT_EQ(s.arrival_label.size(), pd.design->pins().size());
  EXPECT_EQ(s.xs.size(), pd.flow->initial_forest().num_movable());
  EXPECT_FALSE(s.endpoint_pins.empty());
}

TEST(Flow, ElectricalRuleChecksPopulated) {
  Design d = make_design(97);
  const Flow flow(&d);
  const FlowResult r = flow.run_signoff(flow.initial_forest());
  EXPECT_GT(r.sta.worst_slew_ns, 0.0);
  EXPECT_GT(r.sta.worst_cap_pf, 0.0);
  EXPECT_GE(r.sta.num_slew_violations, 0);
  EXPECT_GE(r.sta.num_cap_violations, 0);
  // Tight limits must flag more violations than loose ones.
  StaOptions tight;
  tight.max_slew_ns = 0.01;
  tight.max_cap_pf = 0.001;
  const StaResult strict = run_sta(d, flow.initial_forest(), &r.gr, tight);
  EXPECT_GE(strict.num_slew_violations, r.sta.num_slew_violations);
  EXPECT_GE(strict.num_cap_violations, r.sta.num_cap_violations);
  EXPECT_GT(strict.num_cap_violations, 0);
}

TEST(Iterative, ClosedLoopNeverWorseThanBaseline) {
  // A tiny design with a tiny model: the loop's keep-true-best guarantees
  // the returned forest is never worse than the initial one in sign-off.
  const auto suite_specs = benchmark_suite();
  PreparedDesign pd = prepare_design(lib(), suite_specs[5], 1.0);  // spm
  GnnConfig cfg;
  cfg.hidden = 6;
  TimingGnn model(cfg, lib().num_types());
  IterativeOptions iopts;
  iopts.rounds = 2;
  iopts.finetune_epochs = 4;
  iopts.refine.max_iterations = 5;
  iopts.refine.gcell_size = pd.flow->options().router.gcell_size;
  const IterativeResult r = iterative_refine(pd, &model, iopts);
  EXPECT_EQ(r.rounds_run, 2);
  EXPECT_EQ(r.wns_per_round.size(), 2u);
  EXPECT_GE(r.best.wns_ns, r.initial.wns_ns - 1e-9);
  EXPECT_GE(r.best.tns_ns, r.initial.tns_ns - 1e-9);
  // The returned forest reproduces the reported best metrics.
  const FlowResult check = pd.flow->run_signoff(r.forest);
  EXPECT_NEAR(check.metrics.wns_ns, r.best.wns_ns, 1e-9);
}

TEST(Experiment, EnvScaleDefaults) {
  // No env var set in tests: fallback applies (or a valid override).
  const double s = env_scale(0.2);
  EXPECT_GT(s, 0.0);
  EXPECT_LE(s, 1.0);
}

}  // namespace
}  // namespace tsteiner
