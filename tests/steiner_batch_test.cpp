// Batched learned Steiner construction: packing, prediction, stitch,
// fallback contract, bit-identity, codec.
#include <gtest/gtest.h>

#include <cstring>

#include "gnn/steiner_predictor.hpp"
#include "netlist/design_generator.hpp"
#include "place/placer.hpp"
#include "steiner/batch_builder.hpp"
#include "steiner/rsmt.hpp"
#include "util/parallel.hpp"
#include "verify/invariants.hpp"

namespace tsteiner {
namespace {

const CellLibrary& lib() {
  static const CellLibrary l = CellLibrary::make_default();
  return l;
}

Design make_design(std::uint64_t seed, int cells = 360) {
  GeneratorParams params;
  params.num_comb_cells = cells;
  params.num_registers = cells / 6;
  params.seed = seed;
  Design d = generate_design(lib(), params);
  place_design(d);  // pins sit at (0,0) until placement runs
  return d;
}

bool trees_identical(const SteinerTree& a, const SteinerTree& b) {
  if (a.net != b.net || a.driver_node != b.driver_node) return false;
  if (a.nodes.size() != b.nodes.size() || a.edges.size() != b.edges.size()) return false;
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    if (a.nodes[i].pin != b.nodes[i].pin) return false;
    if (std::memcmp(&a.nodes[i].pos.x, &b.nodes[i].pos.x, sizeof(double)) != 0) return false;
    if (std::memcmp(&a.nodes[i].pos.y, &b.nodes[i].pos.y, sizeof(double)) != 0) return false;
  }
  for (std::size_t i = 0; i < a.edges.size(); ++i) {
    if (a.edges[i].a != b.edges[i].a || a.edges[i].b != b.edges[i].b) return false;
  }
  return true;
}

bool forests_identical(const SteinerForest& a, const SteinerForest& b) {
  if (a.trees.size() != b.trees.size()) return false;
  if (a.net_to_tree != b.net_to_tree) return false;
  for (std::size_t i = 0; i < a.trees.size(); ++i) {
    if (!trees_identical(a.trees[i], b.trees[i])) return false;
  }
  return true;
}

TEST(HananBatch, PackingIsDeterministicAndSlotsOnlyLargeNets) {
  const Design design = make_design(11);
  const std::vector<std::vector<PointF>> pin_sets = routable_pin_sets(design);
  BatchBuildOptions opts;
  const HananBatch a = pack_hanan_batch(pin_sets, opts);
  const HananBatch b = pack_hanan_batch(pin_sets, opts);
  EXPECT_EQ(a.features, b.features);
  EXPECT_EQ(a.valid, b.valid);
  EXPECT_EQ(a.segments, b.segments);
  EXPECT_EQ(a.slots, b.slots);
  EXPECT_EQ(a.counts, b.counts);

  ASSERT_EQ(a.num_nets, pin_sets.size());
  ASSERT_EQ(a.slot_of.size(), pin_sets.size());
  for (std::size_t i = 0; i < pin_sets.size(); ++i) {
    if (static_cast<int>(pin_sets[i].size()) <= opts.small_net_pin_limit) {
      EXPECT_EQ(a.slot_of[i], -1) << "small net must not occupy a slot";
      EXPECT_EQ(a.counts[i], 0);
    }
    EXPECT_LE(a.counts[i], opts.max_hanan_per_net);
  }
  // Padding rows carry zero features so masked reductions add exact +0.0.
  for (std::size_t r = 0; r < a.rows(); ++r) {
    if (a.valid[r]) continue;
    for (int f = 0; f < kHananFeatures; ++f) {
      EXPECT_EQ(a.features[r * kHananFeatures + static_cast<std::size_t>(f)], 0.0);
    }
  }
}

TEST(HananBatch, PackingIsThreadWidthInvariant) {
  const Design design = make_design(12);
  const std::vector<std::vector<PointF>> pin_sets = routable_pin_sets(design);
  BatchBuildOptions one;
  one.threads = 1;
  BatchBuildOptions four;
  four.threads = 4;
  const HananBatch a = pack_hanan_batch(pin_sets, one);
  const HananBatch b = pack_hanan_batch(pin_sets, four);
  EXPECT_EQ(a.features, b.features);
  EXPECT_EQ(a.valid, b.valid);
  EXPECT_EQ(a.slots, b.slots);
}

TEST(SteinerPredictor, PredictIsBatchCompositionInvariant) {
  const Design design = make_design(13);
  const std::vector<std::vector<PointF>> pin_sets = routable_pin_sets(design);
  const auto predictor = SteinerPredictor::shared_pretrained();
  BatchBuildOptions opts;

  const HananBatch full = pack_hanan_batch(pin_sets, opts);
  const std::vector<double> full_probs = predictor->predict(full);

  // Every slotted net, predicted alone, must reproduce its batch rows
  // bit-for-bit (this is the property the steiner-batch oracle leans on).
  int checked = 0;
  for (std::size_t i = 0; i < pin_sets.size() && checked < 12; ++i) {
    if (full.slot_of[i] < 0) continue;
    ++checked;
    const std::vector<std::vector<PointF>> solo_set{pin_sets[i]};
    const HananBatch solo = pack_hanan_batch(solo_set, opts);
    ASSERT_EQ(solo.counts[0], full.counts[i]);
    const std::vector<double> solo_probs = predictor->predict(solo);
    const std::size_t full_base =
        static_cast<std::size_t>(full.slot_of[i]) * static_cast<std::size_t>(full.h_max);
    for (int j = 0; j < solo.counts[0]; ++j) {
      const double a = solo_probs[static_cast<std::size_t>(j)];
      const double b = full_probs[full_base + static_cast<std::size_t>(j)];
      EXPECT_EQ(std::memcmp(&a, &b, sizeof(double)), 0)
          << "net " << i << " candidate " << j << " differs across batch compositions";
    }
  }
  EXPECT_GT(checked, 0);
}

TEST(BuildForestBatched, BitIdenticalAcrossThreadWidths) {
  const Design design = make_design(14);
  const auto predictor = SteinerPredictor::shared_pretrained();
  BatchBuildOptions one;
  one.threads = 1;
  BatchBuildOptions four;
  four.threads = 4;
  const SteinerForest a = build_forest_batched(design, *predictor, one);
  const SteinerForest b = build_forest_batched(design, *predictor, four);
  EXPECT_TRUE(forests_identical(a, b));
}

TEST(BuildForestBatched, SmallNetsFallBackBitIdenticalToExact) {
  const Design design = make_design(15);
  const auto predictor = SteinerPredictor::shared_pretrained();
  BatchBuildOptions opts;
  std::vector<std::uint8_t> used_fallback;
  BatchBuildStats stats;
  const SteinerForest batched = build_forest_batched(design, *predictor, opts, &stats, &used_fallback);
  ASSERT_EQ(used_fallback.size(), batched.trees.size());

  int small_checked = 0;
  for (std::size_t i = 0; i < batched.trees.size(); ++i) {
    const SteinerTree& tree = batched.trees[i];
    const Net& net = design.net(tree.net);
    const auto pins = static_cast<int>(net.sink_pins.size()) + 1;
    if (pins <= opts.small_net_pin_limit) {
      EXPECT_TRUE(used_fallback[i]);
      const SteinerTree exact = build_rsmt(design, tree.net, opts.fallback);
      EXPECT_TRUE(trees_identical(tree, exact)) << "net " << tree.net;
      ++small_checked;
    }
  }
  EXPECT_GT(small_checked, 0);
  EXPECT_EQ(stats.num_nets, batched.trees.size());
  EXPECT_EQ(stats.num_predicted + stats.num_fallback(), stats.num_nets);
}

TEST(BuildForestBatched, SatisfiesForestInvariantsAndSmallNetOptimality) {
  const Design design = make_design(16);
  const auto predictor = SteinerPredictor::shared_pretrained();
  const SteinerForest forest = build_forest_batched(design, *predictor, {});
  EXPECT_EQ(verify::check_forest_invariants(design, forest, /*require_min_degree=*/true), "");
  int small = 0;
  for (const SteinerTree& tree : forest.trees) {
    int pins = 0;
    for (const SteinerNode& n : tree.nodes) pins += n.is_steiner() ? 0 : 1;
    if (pins <= 4 && small < 40) {
      EXPECT_EQ(verify::check_small_net_optimality(tree), "");
      ++small;
    }
  }
  EXPECT_GT(small, 0);
}

TEST(BuildForestBatched, WirelengthNeverExceedsPinMstAndStaysNearExact) {
  const Design design = make_design(17, 500);
  const auto predictor = SteinerPredictor::shared_pretrained();
  std::vector<int> net_ids;
  const std::vector<std::vector<PointF>> pin_sets = routable_pin_sets(design, &net_ids);
  const SteinerForest batched = build_forest_batched(design, *predictor, {});
  const SteinerForest exact = build_forest(design, {});

  double mst_total = 0.0;
  for (const std::vector<PointF>& pins : pin_sets) mst_total += mst_length(pins);
  for (std::size_t i = 0; i < batched.trees.size(); ++i) {
    EXPECT_LE(batched.trees[i].wirelength(), mst_length(pin_sets[i]) + 1e-6)
        << "stitch must never exceed the pin MST (net " << net_ids[i] << ")";
  }
  const double wl_batched = batched.total_wirelength();
  const double wl_exact = exact.total_wirelength();
  EXPECT_LE(wl_batched, mst_total + 1e-6);
  EXPECT_GE(wl_batched, wl_exact - 1e-6);  // exact construction is the floor
  // Acceptance-criterion-shaped bound: within 1% of the per-net baseline.
  EXPECT_LE(wl_batched, wl_exact * 1.01);
}

TEST(BuildBatchedTrees, MutationHookDropsAPredictedPointAndChangesTrees) {
  const Design design = make_design(18);
  const auto predictor = SteinerPredictor::shared_pretrained();
  const std::vector<std::vector<PointF>> pin_sets = routable_pin_sets(design);
  BatchBuildOptions opts;
  BatchBuildStats clean_stats;
  const std::vector<SteinerTree> clean =
      build_batched_trees(pin_sets, *predictor, opts, &clean_stats);
  opts.mutate_drop_first_candidate = true;
  BatchBuildStats mut_stats;
  const std::vector<SteinerTree> mutated =
      build_batched_trees(pin_sets, *predictor, opts, &mut_stats);
  ASSERT_EQ(clean.size(), mutated.size());
  ASSERT_GT(clean_stats.num_inserted_points, 0u)
      << "corpus must exercise the predicted path for the mutation to mean anything";
  bool any_diff = false;
  for (std::size_t i = 0; i < clean.size(); ++i) {
    if (!trees_identical(clean[i], mutated[i])) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(SteinerPredictor, PayloadCodecRoundTripsBitIdentical) {
  const auto predictor = SteinerPredictor::shared_pretrained();
  const std::vector<std::uint8_t> payload =
      encode_steiner_predictor_payload(*predictor, "unit-test-tag");
  std::string tag;
  const auto decoded =
      decode_steiner_predictor_payload_any(payload.data(), payload.size(), &tag);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(tag, "unit-test-tag");
  ASSERT_EQ(decoded->parameters().size(), predictor->parameters().size());
  for (std::size_t i = 0; i < decoded->parameters().size(); ++i) {
    const Tensor& a = decoded->parameters()[i];
    const Tensor& b = predictor->parameters()[i];
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(std::memcmp(a.data().data(), b.data().data(), a.size() * sizeof(double)), 0);
  }
  // A decoded predictor must reproduce predictions bit-for-bit.
  const Design design = make_design(19);
  const std::vector<std::vector<PointF>> pin_sets = routable_pin_sets(design);
  const HananBatch batch = pack_hanan_batch(pin_sets, {});
  const std::vector<double> p1 = predictor->predict(batch);
  const std::vector<double> p2 = decoded->predict(batch);
  ASSERT_EQ(p1.size(), p2.size());
  EXPECT_EQ(std::memcmp(p1.data(), p2.data(), p1.size() * sizeof(double)), 0);
}

TEST(SteinerPredictor, PayloadCodecRejectsTruncationAndCorruption) {
  const auto predictor = SteinerPredictor::shared_pretrained();
  const std::vector<std::uint8_t> payload =
      encode_steiner_predictor_payload(*predictor, "t");
  for (std::size_t cut : {std::size_t{0}, std::size_t{3}, payload.size() / 2, payload.size() - 1}) {
    EXPECT_FALSE(decode_steiner_predictor_payload_any(payload.data(), cut, nullptr).has_value())
        << "truncation at " << cut;
  }
  std::vector<std::uint8_t> extra = payload;
  extra.push_back(0);
  EXPECT_FALSE(decode_steiner_predictor_payload_any(extra.data(), extra.size(), nullptr).has_value())
      << "trailing bytes must be rejected";
}

TEST(EstimateWirelengths, MatchesStitchedTreeWirelengths) {
  const Design design = make_design(20);
  const auto predictor = SteinerPredictor::shared_pretrained();
  const std::vector<std::vector<PointF>> pin_sets = routable_pin_sets(design);
  const std::vector<double> wl = estimate_wirelengths(pin_sets, *predictor, {});
  const std::vector<SteinerTree> trees = build_batched_trees(pin_sets, *predictor, {});
  ASSERT_EQ(wl.size(), trees.size());
  for (std::size_t i = 0; i < trees.size(); ++i) {
    const double direct = trees[i].wirelength();
    EXPECT_EQ(std::memcmp(&wl[i], &direct, sizeof(double)), 0);
  }
}

}  // namespace
}  // namespace tsteiner
