// Shared test helpers.
#pragma once

#include <gtest/gtest.h>
#include <unistd.h>

#include <cctype>
#include <filesystem>
#include <string>

namespace tsteiner::testutil {

/// Unique scratch directory for the currently running test case:
/// <TempDir>/ts_<suite>_<test>_<pid>, created on first call. ctest runs every
/// discovered gtest case as its own process (and `ctest -j` runs them
/// concurrently), so file-writing tests must never share fixed file names —
/// deriving the directory from the test identity plus the pid makes
/// collisions impossible, including across repeated runs of the same test.
inline std::string test_tmp_dir() {
  std::string name = "ts_";
  if (const ::testing::TestInfo* info =
          ::testing::UnitTest::GetInstance()->current_test_info()) {
    name += std::string(info->test_suite_name()) + "_" + info->name();
  }
  name += "_" + std::to_string(static_cast<long long>(::getpid()));
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::create_directories(dir);
  return dir;
}

}  // namespace tsteiner::testutil
