#include <gtest/gtest.h>

#include "netlist/design_generator.hpp"
#include "place/placer.hpp"
#include "route/global_router.hpp"
#include "sta/rc.hpp"
#include "sta/report.hpp"
#include "sta/sta.hpp"
#include "steiner/rsmt.hpp"

namespace tsteiner {
namespace {

const CellLibrary& lib() {
  static const CellLibrary l = CellLibrary::make_default();
  return l;
}

Design make_chain(int n, std::int64_t spacing) {
  Design d("chain", &lib());
  d.set_die({{0, 0}, {spacing * (n + 2), 100}});
  const int pi = d.add_primary_input({0, 50});
  int prev = pi;
  for (int i = 0; i < n; ++i) {
    const int c = d.add_cell(lib().find("INV_X1"));
    d.cell(c).pos = {spacing * (i + 1), 50};
    const int net = d.add_net(prev);
    d.connect_sink(net, d.cell(c).input_pins[0]);
    prev = d.cell(c).output_pin;
  }
  const int po = d.add_primary_output({spacing * (n + 1), 50});
  const int net = d.add_net(prev);
  d.connect_sink(net, po);
  d.set_clock_period(1.0);
  return d;
}

TEST(RcExtraction, TwoPinNetElmore) {
  Design d = make_chain(1, 100);
  const SteinerForest f = build_forest(d);
  // net 0: PI -> inverter input, length 100 DBU
  const int t0 = f.net_to_tree[0];
  ASSERT_GE(t0, 0);
  const NetTiming nt =
      extract_net_timing(d, f.trees[static_cast<std::size_t>(t0)], nullptr, t0);
  const double r = lib().wire_res_kohm_per_dbu() * 100.0;
  const double cw = lib().wire_cap_pf_per_dbu() * 100.0;
  const double cpin = lib().type(lib().find("INV_X1")).input_cap_pf;
  EXPECT_NEAR(nt.total_cap_pf, cw + cpin, 1e-12);
  // Elmore with the pi model: R * (C_pin + C_wire / 2)
  EXPECT_NEAR(nt.sink_delay_ns[0], r * (cpin + cw / 2.0), 1e-12);
  EXPECT_GT(nt.sink_ramp_ns[0], 0.0);
}

TEST(RcExtraction, DelayGrowsWithDistance) {
  Design near = make_chain(1, 20);
  Design far = make_chain(1, 200);
  const SteinerForest fn = build_forest(near);
  const SteinerForest ff = build_forest(far);
  const NetTiming tn = extract_net_timing(near, fn.trees[0], nullptr, 0);
  const NetTiming tf = extract_net_timing(far, ff.trees[0], nullptr, 0);
  EXPECT_GT(tf.sink_delay_ns[0], tn.sink_delay_ns[0]);
  EXPECT_GT(tf.total_cap_pf, tn.total_cap_pf);
}

TEST(RcExtraction, MultiSinkSharedTrunk) {
  // Driver at origin, sinks on an L: nearer sink has smaller Elmore delay.
  Design d("fork", &lib());
  d.set_die({{0, 0}, {300, 300}});
  const int drv = d.add_cell(lib().find("BUF_X1"));
  d.cell(drv).pos = {0, 0};
  const int pi = d.add_primary_input({0, 0});
  const int nin = d.add_net(pi);
  d.connect_sink(nin, d.cell(drv).input_pins[0]);
  const int a = d.add_cell(lib().find("INV_X1"));
  d.cell(a).pos = {50, 0};
  const int b = d.add_cell(lib().find("INV_X1"));
  d.cell(b).pos = {250, 0};
  const int n = d.add_net(d.cell(drv).output_pin);
  d.connect_sink(n, d.cell(a).input_pins[0]);
  d.connect_sink(n, d.cell(b).input_pins[0]);
  const SteinerForest f = build_forest(d);
  const int t = f.net_to_tree[static_cast<std::size_t>(n)];
  const NetTiming nt = extract_net_timing(d, f.trees[static_cast<std::size_t>(t)], nullptr, t);
  EXPECT_LT(nt.sink_delay_ns[0], nt.sink_delay_ns[1]);
}

TEST(Sta, ChainArrivalMonotone) {
  Design d = make_chain(6, 50);
  const SteinerForest f = build_forest(d);
  const StaResult r = run_sta(d, f, nullptr);
  double prev = -1.0;
  for (const Cell& c : d.cells()) {
    const double a = r.arrival[static_cast<std::size_t>(c.output_pin)];
    EXPECT_GT(a, prev);
    prev = a;
  }
  EXPECT_EQ(r.endpoints.size(), 1u);
  EXPECT_GT(r.max_arrival, 0.0);
}

TEST(Sta, SlackConsistency) {
  Design d = make_chain(4, 40);
  d.set_clock_period(0.5);
  const SteinerForest f = build_forest(d);
  const StaResult r = run_sta(d, f, nullptr);
  for (std::size_t i = 0; i < r.endpoints.size(); ++i) {
    const double arrival = r.arrival[static_cast<std::size_t>(r.endpoints[i])];
    EXPECT_NEAR(r.endpoint_slack[i], 0.5 - arrival, 1e-12);
  }
}

TEST(Sta, WnsTnsViolationsCoherent) {
  GeneratorParams p;
  p.num_comb_cells = 200;
  p.num_registers = 24;
  p.num_primary_inputs = 6;
  p.num_primary_outputs = 6;
  p.seed = 51;
  Design d = generate_design(lib(), p);
  place_design(d);
  const SteinerForest f = build_forest(d);
  StaResult loose = run_sta(d, f, nullptr);
  // Set the clock to make some endpoints fail.
  d.set_clock_period(0.5 * loose.max_arrival);
  const StaResult r = run_sta(d, f, nullptr);
  EXPECT_LT(r.wns, 0.0);
  EXPECT_LT(r.tns, 0.0);
  EXPECT_GT(r.num_violations, 0);
  EXPECT_LE(r.tns, r.wns);  // TNS aggregates all violations
  double tns_check = 0.0;
  double wns_check = r.endpoint_slack[0];
  long long vios = 0;
  for (double s : r.endpoint_slack) {
    tns_check += std::min(0.0, s);
    wns_check = std::min(wns_check, s);
    vios += s < 0.0 ? 1 : 0;
  }
  EXPECT_NEAR(r.tns, tns_check, 1e-9);
  EXPECT_NEAR(r.wns, wns_check, 1e-12);
  EXPECT_EQ(r.num_violations, vios);
}

TEST(Sta, TighterClockIsWorse) {
  Design d = make_chain(5, 60);
  const SteinerForest f = build_forest(d);
  d.set_clock_period(2.0);
  const double slack_loose = run_sta(d, f, nullptr).wns;
  d.set_clock_period(0.2);
  const double slack_tight = run_sta(d, f, nullptr).wns;
  EXPECT_GT(slack_loose, slack_tight);
}

TEST(Sta, RegisterPathsUseSetupAndCk2q) {
  Design d("regs", &lib());
  d.set_die({{0, 0}, {200, 100}});
  const int r1 = d.add_cell(lib().register_type());
  d.cell(r1).pos = {10, 50};
  const int inv = d.add_cell(lib().find("INV_X1"));
  d.cell(inv).pos = {100, 50};
  const int r2 = d.add_cell(lib().register_type());
  d.cell(r2).pos = {190, 50};
  const int n1 = d.add_net(d.cell(r1).output_pin);
  d.connect_sink(n1, d.cell(inv).input_pins[0]);
  const int n2 = d.add_net(d.cell(inv).output_pin);
  d.connect_sink(n2, d.cell(r2).input_pins[0]);
  // r1's D must be driven for validate(); use a PI.
  const int pi = d.add_primary_input({0, 50});
  const int n0 = d.add_net(pi);
  d.connect_sink(n0, d.cell(r1).input_pins[0]);
  d.set_clock_period(10.0);
  d.validate();
  const SteinerForest f = build_forest(d);
  const StaResult r = run_sta(d, f, nullptr);
  // Q arrival is the CK->Q delay: strictly positive.
  EXPECT_GT(r.arrival[static_cast<std::size_t>(d.cell(r1).output_pin)], 0.05);
  // r2's D slack accounts for setup.
  const double d_arrival = r.arrival[static_cast<std::size_t>(d.cell(r2).input_pins[0])];
  const double setup = lib().type(lib().register_type()).setup_ns;
  EXPECT_NEAR(r.slack_of(d.cell(r2).input_pins[0]), 10.0 - setup - d_arrival, 1e-12);
}

TEST(Sta, RoutedModeDiffersFromPreroute) {
  GeneratorParams p;
  p.num_comb_cells = 200;
  p.num_registers = 20;
  p.num_primary_inputs = 6;
  p.num_primary_outputs = 6;
  p.seed = 52;
  Design d = generate_design(lib(), p);
  place_design(d);
  const SteinerForest f = build_forest(d);
  const StaResult pre = run_sta(d, f, nullptr);
  const GlobalRouteResult gr = global_route(d, f);
  const StaResult post = run_sta(d, f, &gr);
  // Routed lengths are gcell-quantized and may detour: max arrival differs.
  EXPECT_NE(pre.max_arrival, post.max_arrival);
  EXPECT_GT(post.max_arrival, 0.0);
}

TEST(Report, ChainPathBacktracksToStartpoint) {
  Design d = make_chain(5, 40);
  d.set_clock_period(0.2);
  const SteinerForest f = build_forest(d);
  const StaResult r = run_sta(d, f, nullptr);
  const auto paths = extract_critical_paths(d, f, nullptr, r, 1);
  ASSERT_EQ(paths.size(), 1u);
  const TimingPath& p = paths[0];
  EXPECT_DOUBLE_EQ(p.slack_ns, r.wns);
  ASSERT_GE(p.steps.size(), 2u);
  // starts at the primary input, ends at the endpoint
  EXPECT_EQ(d.pin(p.steps.front().pin).kind, PinKind::kPrimaryInput);
  EXPECT_EQ(p.steps.back().pin, p.endpoint);
  // arrivals monotone non-decreasing along the path; increments consistent
  for (std::size_t i = 1; i < p.steps.size(); ++i) {
    EXPECT_GE(p.steps[i].arrival_ns, p.steps[i - 1].arrival_ns - 1e-12);
    EXPECT_NEAR(p.steps[i].incr_ns,
                p.steps[i].arrival_ns - p.steps[i - 1].arrival_ns, 1e-12);
  }
  // chain of 5 inverters: PI + 5 x (input, output) + PO = 12 pins
  EXPECT_EQ(p.steps.size(), 12u);
  EXPECT_FALSE(format_path(d, p).empty());
}

TEST(Report, WorstPathsSortedBySlack) {
  GeneratorParams gp;
  gp.num_comb_cells = 200;
  gp.num_registers = 24;
  gp.num_primary_inputs = 6;
  gp.num_primary_outputs = 6;
  gp.seed = 55;
  Design d = generate_design(lib(), gp);
  place_design(d);
  const SteinerForest f = build_forest(d);
  StaResult loose = run_sta(d, f, nullptr);
  d.set_clock_period(0.55 * loose.max_arrival);
  const StaResult r = run_sta(d, f, nullptr);
  const auto paths = extract_critical_paths(d, f, nullptr, r, 5);
  ASSERT_EQ(paths.size(), 5u);
  EXPECT_DOUBLE_EQ(paths[0].slack_ns, r.wns);
  for (std::size_t i = 1; i < paths.size(); ++i) {
    EXPECT_LE(paths[i - 1].slack_ns, paths[i].slack_ns);
  }
  // every path's critical arc reconstruction must reproduce the endpoint
  // arrival from the startpoint arrival plus increments
  for (const TimingPath& p : paths) {
    double acc = p.steps.front().arrival_ns;
    for (std::size_t i = 1; i < p.steps.size(); ++i) acc += p.steps[i].incr_ns;
    EXPECT_NEAR(acc, p.steps.back().arrival_ns, 1e-9);
  }
}

TEST(Sta, SlackOfThrowsForNonEndpoint) {
  Design d = make_chain(2, 30);
  const SteinerForest f = build_forest(d);
  const StaResult r = run_sta(d, f, nullptr);
  EXPECT_THROW(r.slack_of(d.cells()[0].output_pin), std::runtime_error);
}

}  // namespace
}  // namespace tsteiner
