// Unit + integration tests for the shared deterministic thread pool
// (util/parallel.hpp) and the determinism contract of the parallel hot
// paths: refine + full STA must be bit-identical at any pool width.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <stdexcept>

#include "gnn/model.hpp"
#include "netlist/design_generator.hpp"
#include "place/placer.hpp"
#include "sta/sta.hpp"
#include "steiner/rsmt.hpp"
#include "tsteiner/refine.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

namespace tsteiner {
namespace {

const CellLibrary& lib() {
  static const CellLibrary l = CellLibrary::make_default();
  return l;
}

/// Restores the pool default width when a test that overrides it exits.
struct PoolWidthGuard {
  ~PoolWidthGuard() { set_parallel_threads(0); }
};

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  PoolWidthGuard guard;
  for (const std::size_t width : {std::size_t{1}, std::size_t{4}}) {
    set_parallel_threads(width);
    std::vector<int> hits(1013, 0);
    parallel_for(0, hits.size(), 7, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) ++hits[i];
    });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      ASSERT_EQ(hits[i], 1) << "index " << i << " at width " << width;
    }
  }
}

TEST(ParallelFor, EmptyAndSingleChunkRanges) {
  std::atomic<int> calls{0};
  parallel_for(5, 5, 4, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
  parallel_for(0, 3, 100, [&](std::size_t lo, std::size_t hi) {
    EXPECT_EQ(lo, 0u);
    EXPECT_EQ(hi, 3u);
    ++calls;
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ParallelFor, MaxThreadsOneIsSerial) {
  PoolWidthGuard guard;
  set_parallel_threads(4);
  // With max_threads=1 the whole range arrives as one chunk on the caller.
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  parallel_for(
      0, 100, 10, [&](std::size_t lo, std::size_t hi) { chunks.push_back({lo, hi}); }, 1);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0], (std::pair<std::size_t, std::size_t>{0, 100}));
}

TEST(ParallelFor, NestedCallsRunSerially) {
  PoolWidthGuard guard;
  set_parallel_threads(4);
  std::vector<int> hits(64, 0);
  parallel_for(0, 4, 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t outer = lo; outer < hi; ++outer) {
      parallel_for(0, 16, 2, [&](std::size_t ilo, std::size_t ihi) {
        for (std::size_t i = ilo; i < ihi; ++i) ++hits[outer * 16 + i];
      });
    }
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelFor, PropagatesExceptions) {
  PoolWidthGuard guard;
  set_parallel_threads(4);
  EXPECT_THROW(
      parallel_for(0, 100, 1,
                   [&](std::size_t lo, std::size_t) {
                     if (lo == 57) throw std::runtime_error("chunk 57 failed");
                   }),
      std::runtime_error);
  // The pool must still be usable afterwards.
  std::atomic<int> sum{0};
  parallel_for(0, 10, 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) sum += static_cast<int>(i);
  });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ParallelReduce, BitIdenticalAcrossWidths) {
  PoolWidthGuard guard;
  std::vector<double> xs(10007);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = std::sin(static_cast<double>(i) * 0.31) * 1e3;
  }
  auto reduce_sum = [&] {
    return parallel_reduce(
        0, xs.size(), 64, 0.0,
        [&](std::size_t lo, std::size_t hi) {
          double s = 0.0;
          for (std::size_t i = lo; i < hi; ++i) s += xs[i];
          return s;
        },
        [](double a, double b) { return a + b; });
  };
  set_parallel_threads(1);
  const double serial = reduce_sum();
  for (const std::size_t width : {std::size_t{2}, std::size_t{3}, std::size_t{4}}) {
    set_parallel_threads(width);
    const double parallel = reduce_sum();
    EXPECT_EQ(std::memcmp(&serial, &parallel, sizeof(double)), 0)
        << "width " << width << ": " << serial << " vs " << parallel;
  }
}

TEST(ParallelReduce, OrderedCombine) {
  // Non-commutative combine: concatenation must come out in chunk order.
  const std::string s = parallel_reduce(
      0, 10, 3, std::string(),
      [&](std::size_t lo, std::size_t hi) {
        std::string part;
        for (std::size_t i = lo; i < hi; ++i) part += static_cast<char>('a' + i);
        return part;
      },
      [](std::string a, std::string b) { return a + b; });
  EXPECT_EQ(s, "abcdefghij");
}

TEST(ThreadRequest, NegativeClampsToPoolDefault) {
  EXPECT_EQ(clamp_thread_request(-1), 0);
  EXPECT_EQ(clamp_thread_request(-100), 0);
  EXPECT_EQ(clamp_thread_request(0), 0);
  EXPECT_EQ(clamp_thread_request(1), 1);
  EXPECT_EQ(clamp_thread_request(8), 8);
}

TEST(ThreadRequest, RsmtNegativeThreadsBuildSameForest) {
  GeneratorParams p;
  p.num_comb_cells = 80;
  p.num_registers = 8;
  p.num_primary_inputs = 3;
  p.num_primary_outputs = 3;
  p.seed = 5;
  Design d = generate_design(lib(), p);
  place_design(d);
  RsmtOptions serial;
  serial.threads = 1;
  RsmtOptions negative;
  negative.threads = -7;  // clamps to 0 = pool default
  const SteinerForest a = build_forest(d, serial);
  const SteinerForest b = build_forest(d, negative);
  ASSERT_EQ(a.trees.size(), b.trees.size());
  EXPECT_EQ(a.net_to_tree, b.net_to_tree);
  for (std::size_t t = 0; t < a.trees.size(); ++t) {
    ASSERT_EQ(a.trees[t].nodes.size(), b.trees[t].nodes.size());
    for (std::size_t n = 0; n < a.trees[t].nodes.size(); ++n) {
      EXPECT_EQ(a.trees[t].nodes[n].pos, b.trees[t].nodes[n].pos);
    }
  }
}

TEST(PhaseStat, ScopedTimerAccumulatesWallAndBusy) {
  PhaseStat stat;
  {
    ScopedTimer timer(stat);
    parallel_for(0, 1000, 10, [&](std::size_t lo, std::size_t hi) {
      volatile double x = 0.0;
      for (std::size_t i = lo; i < hi; ++i) x = x + static_cast<double>(i);
    });
  }
  EXPECT_GT(stat.wall_s, 0.0);
  EXPECT_GE(stat.busy_s, stat.wall_s);  // busy includes the caller's wall time
  EXPECT_GE(stat.utilization(), 1.0);
}

/// Bit-exact equality of double vectors (memcmp, not EXPECT_DOUBLE_EQ).
void expect_bits_equal(const std::vector<double>& a, const std::vector<double>& b,
                       const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  if (!a.empty()) {
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(double)), 0) << what;
  }
}

struct SignoffSnapshot {
  double wns = 0.0;
  double tns = 0.0;
  std::vector<double> arrival;
  std::vector<double> xs;
  std::vector<double> ys;
};

/// Refine + full sign-off STA on a seeded design at the current pool width.
SignoffSnapshot run_refine_and_sta() {
  GeneratorParams p;
  p.num_comb_cells = 160;
  p.num_registers = 16;
  p.num_primary_inputs = 4;
  p.num_primary_outputs = 4;
  p.seed = 91;
  Design d = generate_design(lib(), p);
  place_design(d);
  SteinerForest forest = build_forest(d);
  const StaResult pre = run_sta(d, forest, nullptr);
  d.set_clock_period(0.6 * pre.max_arrival);

  GnnConfig cfg;
  cfg.hidden = 8;
  const TimingGnn model(cfg, lib().num_types());
  RefineOptions ropts;
  ropts.max_iterations = 4;
  const RefineResult refined = refine_steiner_points(d, forest, model, ropts);

  const StaResult sta = run_sta(d, refined.forest, nullptr);
  SignoffSnapshot snap;
  snap.wns = sta.wns;
  snap.tns = sta.tns;
  snap.arrival = sta.arrival;
  snap.xs = refined.forest.gather_x();
  snap.ys = refined.forest.gather_y();
  return snap;
}

TEST(Determinism, RefineAndStaBitIdenticalAtOneAndFourThreads) {
  PoolWidthGuard guard;
  set_parallel_threads(1);
  const SignoffSnapshot serial = run_refine_and_sta();
  set_parallel_threads(4);
  const SignoffSnapshot parallel = run_refine_and_sta();

  EXPECT_EQ(std::memcmp(&serial.wns, &parallel.wns, sizeof(double)), 0)
      << "WNS " << serial.wns << " vs " << parallel.wns;
  EXPECT_EQ(std::memcmp(&serial.tns, &parallel.tns, sizeof(double)), 0)
      << "TNS " << serial.tns << " vs " << parallel.tns;
  expect_bits_equal(serial.arrival, parallel.arrival, "arrival vector");
  expect_bits_equal(serial.xs, parallel.xs, "refined x coordinates");
  expect_bits_equal(serial.ys, parallel.ys, "refined y coordinates");
}

}  // namespace
}  // namespace tsteiner
