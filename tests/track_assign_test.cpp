#include <gtest/gtest.h>

#include "droute/track_assign.hpp"
#include "netlist/design_generator.hpp"
#include "place/placer.hpp"
#include "steiner/rsmt.hpp"

namespace tsteiner {
namespace {

const CellLibrary& lib() {
  static const CellLibrary l = CellLibrary::make_default();
  return l;
}

struct Prep {
  Design design;
  SteinerForest forest;
  GlobalRouteResult gr;
};

Prep prep(std::uint64_t seed) {
  GeneratorParams p;
  p.num_comb_cells = 250;
  p.num_registers = 25;
  p.num_primary_inputs = 6;
  p.num_primary_outputs = 6;
  p.seed = seed;
  Prep out{generate_design(lib(), p), {}, {}};
  place_design(out.design);
  out.forest = build_forest(out.design);
  out.gr = global_route(out.design, out.forest);
  return out;
}

TEST(TrackAssign, RunsCoverAllPathSteps) {
  const Prep p = prep(101);
  const TrackAssignResult ta = assign_tracks(p.gr);
  long long run_steps = 0;
  for (const WireRun& r : ta.runs) run_steps += r.hi - r.lo;
  long long path_steps = 0;
  for (const RoutedConnection& c : p.gr.connections) {
    path_steps += static_cast<long long>(c.path.size()) - 1;
  }
  EXPECT_EQ(run_steps, path_steps) << "run decomposition must cover every step exactly once";
}

TEST(TrackAssign, NoOverlapOnSameTrack) {
  const Prep p = prep(102);
  const TrackAssignResult ta = assign_tracks(p.gr);
  // Within one row, runs sharing a track must not overlap.
  for (std::size_t i = 0; i < ta.runs.size(); ++i) {
    for (std::size_t j = i + 1; j < ta.runs.size(); ++j) {
      const WireRun& a = ta.runs[i];
      const WireRun& b = ta.runs[j];
      if (a.horizontal != b.horizontal || a.row != b.row) continue;
      if (a.track < 0 || b.track < 0 || a.track != b.track) continue;
      const bool overlap = a.lo <= b.hi && b.lo <= a.hi;
      EXPECT_FALSE(overlap) << "row " << a.row << " track " << a.track;
    }
  }
}

TEST(TrackAssign, MoreTracksFewerViolations) {
  const Prep p = prep(103);
  const TrackAssignResult few = assign_tracks(p.gr, 2);
  const TrackAssignResult many = assign_tracks(p.gr, 64);
  EXPECT_GE(few.num_violations, many.num_violations);
  EXPECT_EQ(many.num_violations, 0) << "64 tracks must be enough for a 250-cell design";
}

TEST(TrackAssign, ViolationCountsMatchPerRowTallies) {
  const Prep p = prep(104);
  const TrackAssignResult ta = assign_tracks(p.gr, 3);
  long long tallied = 0;
  for (int v : ta.h_row_violations) tallied += v;
  for (int v : ta.v_col_violations) tallied += v;
  EXPECT_EQ(ta.num_violations, tallied);
  long long unassigned = 0;
  for (const WireRun& r : ta.runs) unassigned += r.track < 0 ? 1 : 0;
  EXPECT_EQ(ta.num_violations, unassigned);
}

TEST(TrackAssign, TracksWithinRange) {
  const Prep p = prep(105);
  const TrackAssignResult ta = assign_tracks(p.gr, 5);
  for (const WireRun& r : ta.runs) {
    EXPECT_LT(r.track, 5);
    EXPECT_GE(r.track, -1);
  }
}

TEST(TrackAssign, EmptyRouteHandled) {
  GlobalRouteResult empty;
  const TrackAssignResult ta = assign_tracks(empty, 4);
  EXPECT_TRUE(ta.runs.empty());
  EXPECT_EQ(ta.num_violations, 0);
}

}  // namespace
}  // namespace tsteiner
