#include <gtest/gtest.h>

#include "netlist/design_generator.hpp"
#include "place/placer.hpp"
#include "steiner/prim_dijkstra.hpp"
#include "steiner/rsmt.hpp"

namespace tsteiner {
namespace {

const CellLibrary& lib() {
  static const CellLibrary l = CellLibrary::make_default();
  return l;
}

Design make_star_net(const std::vector<PointI>& sink_positions, PointI driver_pos) {
  Design d("star", &lib());
  d.set_die({{0, 0}, {400, 400}});
  const int drv = d.add_cell(lib().find("BUF_X1"));
  d.cell(drv).pos = driver_pos;
  const int net = d.add_net(d.cell(drv).output_pin);
  for (const PointI& p : sink_positions) {
    const int c = d.add_cell(lib().find("INV_X1"));
    d.cell(c).pos = p;
    d.connect_sink(net, d.cell(c).input_pins[0]);
  }
  return d;
}

double max_sink_pathlength(const SteinerTree& t) {
  const auto dist = t.path_lengths_from_driver();
  double worst = 0.0;
  for (std::size_t n = 0; n < t.nodes.size(); ++n) {
    if (!t.nodes[n].is_steiner() && static_cast<int>(n) != t.driver_node) {
      worst = std::max(worst, dist[n]);
    }
  }
  return worst;
}

std::vector<PointI> random_sinks(int count, Rng& rng) {
  std::vector<PointI> sinks;
  for (int i = 0; i < count; ++i) {
    sinks.push_back({rng.uniform_int(0, 400), rng.uniform_int(0, 400)});
  }
  return sinks;
}

TEST(PrimDijkstra, AlphaZeroIsSpanningMst) {
  Rng rng(61);
  Design d = make_star_net(random_sinks(10, rng), {200, 200});
  PdOptions opts;
  opts.alpha = 0.0;
  opts.steinerize_corners = false;
  const SteinerTree t = build_pd_tree(d, 0, opts);
  EXPECT_TRUE(t.is_valid_tree());
  EXPECT_EQ(t.num_steiner_nodes(), 0);
  // alpha = 0 reduces to Prim: wirelength equals the pin MST length
  std::vector<PointF> pts;
  for (const SteinerNode& n : t.nodes) pts.push_back(n.pos);
  EXPECT_NEAR(t.wirelength(), mst_length(pts), 1e-9);
}

TEST(PrimDijkstra, AlphaOneIsShortestPathStar) {
  Rng rng(62);
  Design d = make_star_net(random_sinks(8, rng), {200, 200});
  PdOptions opts;
  opts.alpha = 1.0;
  opts.steinerize_corners = false;
  const SteinerTree t = build_pd_tree(d, 0, opts);
  // alpha = 1: every sink's path length equals its Manhattan distance from
  // the driver (shortest possible).
  const auto dist = t.path_lengths_from_driver();
  for (std::size_t n = 0; n < t.nodes.size(); ++n) {
    if (static_cast<int>(n) == t.driver_node) continue;
    const double direct = manhattan(t.nodes[static_cast<std::size_t>(t.driver_node)].pos,
                                    t.nodes[n].pos);
    EXPECT_NEAR(dist[n], direct, 1e-9);
  }
}

TEST(PrimDijkstra, TradeoffMonotone) {
  // Growing alpha must not lengthen source-sink paths, and must not shorten
  // wirelength (the classic PD tradeoff).
  Rng rng(63);
  for (int trial = 0; trial < 6; ++trial) {
    Design d = make_star_net(random_sinks(12, rng), {200, 200});
    PdOptions a0, a5, a10;
    a0.alpha = 0.0;
    a5.alpha = 0.5;
    a10.alpha = 1.0;
    a0.steinerize_corners = a5.steinerize_corners = a10.steinerize_corners = false;
    const SteinerTree t0 = build_pd_tree(d, 0, a0);
    const SteinerTree t5 = build_pd_tree(d, 0, a5);
    const SteinerTree t10 = build_pd_tree(d, 0, a10);
    EXPECT_LE(t0.wirelength(), t5.wirelength() + 1e-9);
    EXPECT_LE(t5.wirelength(), t10.wirelength() + 1e-9);
    EXPECT_GE(max_sink_pathlength(t0), max_sink_pathlength(t5) - 1e-9);
    EXPECT_GE(max_sink_pathlength(t5), max_sink_pathlength(t10) - 1e-9);
  }
}

TEST(PrimDijkstra, SteinerizeAddsMovableCorners) {
  Rng rng(64);
  Design d = make_star_net(random_sinks(9, rng), {0, 0});
  PdOptions opts;
  opts.alpha = 0.3;
  const SteinerTree t = build_pd_tree(d, 0, opts);
  EXPECT_TRUE(t.is_valid_tree());
  EXPECT_GT(t.num_steiner_nodes(), 0);
  // Corner insertion preserves wirelength exactly (corner sits on the L).
  PdOptions bare = opts;
  bare.steinerize_corners = false;
  const SteinerTree t_bare = build_pd_tree(d, 0, bare);
  EXPECT_NEAR(t.wirelength(), t_bare.wirelength(), 1e-9);
  // ... and path lengths.
  EXPECT_NEAR(max_sink_pathlength(t), max_sink_pathlength(t_bare), 1e-9);
}

TEST(PrimDijkstra, SteinerizeCornersOnExistingTree) {
  SteinerTree t;
  t.net = 0;
  t.nodes.push_back({{0.0, 0.0}, 0});
  t.nodes.push_back({{10.0, 10.0}, 1});  // diagonal edge -> gets a corner
  t.nodes.push_back({{20.0, 10.0}, 2});  // straight continuation -> no corner
  t.edges = {{0, 1}, {1, 2}};
  t.driver_node = 0;
  EXPECT_EQ(steinerize_corners(t), 1);
  EXPECT_EQ(t.nodes.size(), 4u);
  EXPECT_EQ(t.edges.size(), 3u);
  EXPECT_TRUE(t.is_valid_tree());
  EXPECT_EQ(t.nodes[3].pos, (PointF{10.0, 0.0}));
}

TEST(PrimDijkstra, ForestCoversNetsAndIndexesMovables) {
  GeneratorParams p;
  p.num_comb_cells = 150;
  p.num_registers = 16;
  p.num_primary_inputs = 4;
  p.num_primary_outputs = 4;
  p.seed = 19;
  Design d = generate_design(lib(), p);
  place_design(d);
  PdOptions opts;
  opts.alpha = 0.3;
  const SteinerForest f = build_pd_forest(d, opts);
  for (const Net& n : d.nets()) {
    if (!n.sink_pins.empty()) {
      EXPECT_GE(f.net_to_tree[static_cast<std::size_t>(n.id)], 0);
    }
  }
  for (const SteinerTree& t : f.trees) EXPECT_TRUE(t.is_valid_tree());
  // corner steinerization gives PD forests plenty of movable points
  EXPECT_GT(f.num_movable(), 0u);
  EXPECT_EQ(f.num_movable(), static_cast<std::size_t>(f.num_steiner_nodes()));
}

TEST(PrimDijkstra, RejectsBadAlpha) {
  Rng rng(65);
  Design d = make_star_net(random_sinks(3, rng), {0, 0});
  PdOptions opts;
  opts.alpha = -0.1;
  EXPECT_THROW(build_pd_tree(d, 0, opts), std::runtime_error);
  opts.alpha = 1.5;
  EXPECT_THROW(build_pd_tree(d, 0, opts), std::runtime_error);
}

}  // namespace
}  // namespace tsteiner
