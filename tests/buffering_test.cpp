#include <gtest/gtest.h>

#include "netlist/design_generator.hpp"
#include "opt/buffering.hpp"
#include "place/placer.hpp"
#include "sta/sta.hpp"
#include "steiner/rsmt.hpp"

namespace tsteiner {
namespace {

const CellLibrary& lib() {
  static const CellLibrary l = CellLibrary::make_default();
  return l;
}

/// Driver at origin, one far sink: the classic case where a buffer halves
/// the quadratic wire delay.
Design make_long_wire(std::int64_t length) {
  Design d("wire", &lib());
  d.set_die({{0, 0}, {length + 10, 100}});
  const int pi = d.add_primary_input({0, 50});
  const int drv = d.add_cell(lib().find("INV_X1"));
  d.cell(drv).pos = {5, 50};
  const int nin = d.add_net(pi);
  d.connect_sink(nin, d.cell(drv).input_pins[0]);
  const int snk = d.add_cell(lib().find("INV_X1"));
  d.cell(snk).pos = {length, 50};
  const int n = d.add_net(d.cell(drv).output_pin);
  d.connect_sink(n, d.cell(snk).input_pins[0]);
  const int po = d.add_primary_output({length + 10, 50});
  const int nout = d.add_net(d.cell(snk).output_pin);
  d.connect_sink(nout, po);
  return d;
}

TEST(Buffering, LongWireGetsBuffers) {
  Design d = make_long_wire(400);
  const SteinerForest f = build_forest(d);
  const int t = f.net_to_tree[1];  // the long net (net 0 is PI -> driver)
  ASSERT_GE(t, 0);
  const BufferingPlan plan = plan_buffering(d, f.trees[static_cast<std::size_t>(t)]);
  EXPECT_GT(plan.buffers.size(), 0u) << "a 400-DBU resistive wire must want buffers";
  EXPECT_LT(plan.delay_after_ns, plan.delay_before_ns * 0.8)
      << "buffering should cut the quadratic wire delay substantially";
}

TEST(Buffering, ShortWireNeedsNoBuffers) {
  Design d = make_long_wire(12);
  const SteinerForest f = build_forest(d);
  const int t = f.net_to_tree[1];
  const BufferingPlan plan = plan_buffering(d, f.trees[static_cast<std::size_t>(t)]);
  EXPECT_EQ(plan.buffers.size(), 0u);
  EXPECT_DOUBLE_EQ(plan.delay_after_ns, plan.delay_before_ns);
}

TEST(Buffering, ApplyRewiresAndValidates) {
  Design d = make_long_wire(400);
  const SteinerForest f = build_forest(d);
  const int t = f.net_to_tree[1];
  const SteinerTree tree = f.trees[static_cast<std::size_t>(t)];
  const BufferingPlan plan = plan_buffering(d, tree);
  ASSERT_GT(plan.buffers.size(), 0u);
  const std::size_t cells_before = d.cells().size();
  const auto inserted = apply_buffering(d, plan, tree);
  EXPECT_EQ(inserted.size(), plan.buffers.size());
  EXPECT_EQ(d.cells().size(), cells_before + inserted.size());
  EXPECT_NO_THROW(d.validate());
  // Every inserted buffer drives a net with at least one sink.
  for (int cell : inserted) {
    const int net = d.pin(d.cell(cell).output_pin).net;
    ASSERT_GE(net, 0);
    EXPECT_FALSE(d.net(net).sink_pins.empty());
  }
}

TEST(Buffering, ApplyImprovesStaTiming) {
  Design d = make_long_wire(400);
  d.set_clock_period(1.0);
  {
    const SteinerForest f = build_forest(d);
    const StaResult before = run_sta(d, f, nullptr);
    const int t = f.net_to_tree[1];
    const SteinerTree tree = f.trees[static_cast<std::size_t>(t)];
    const BufferingPlan plan = plan_buffering(d, tree);
    ASSERT_GT(plan.buffers.size(), 0u);
    apply_buffering(d, plan, tree);
    const SteinerForest f2 = build_forest(d);  // rebuild for the new netlist
    const StaResult after = run_sta(d, f2, nullptr);
    EXPECT_GT(after.wns, before.wns) << "golden STA must confirm the DP's improvement";
  }
}

TEST(Buffering, MultiSinkNetKeepsAllSinksConnected) {
  Design d("fanout", &lib());
  d.set_die({{0, 0}, {500, 500}});
  const int pi = d.add_primary_input({0, 0});
  const int drv = d.add_cell(lib().find("BUF_X1"));
  d.cell(drv).pos = {10, 10};
  const int nin = d.add_net(pi);
  d.connect_sink(nin, d.cell(drv).input_pins[0]);
  const int n = d.add_net(d.cell(drv).output_pin);
  Rng rng(5);
  std::vector<int> sinks;
  for (int i = 0; i < 9; ++i) {
    const int c = d.add_cell(lib().find("INV_X1"));
    d.cell(c).pos = {rng.uniform_int(100, 490), rng.uniform_int(100, 490)};
    d.connect_sink(n, d.cell(c).input_pins[0]);
    sinks.push_back(d.cell(c).input_pins[0]);
    const int po = d.add_primary_output({499, 10 * (i + 1)});
    const int no = d.add_net(d.cell(c).output_pin);
    d.connect_sink(no, po);
  }
  const SteinerForest f = build_forest(d);
  const int t = f.net_to_tree[static_cast<std::size_t>(n)];
  const SteinerTree tree = f.trees[static_cast<std::size_t>(t)];
  const BufferingPlan plan = plan_buffering(d, tree);
  apply_buffering(d, plan, tree);
  EXPECT_NO_THROW(d.validate());
  // Every original sink is still driven (possibly through buffers) and the
  // driver still reaches all of them through the buffer DAG.
  for (int sp : sinks) {
    EXPECT_GE(d.pin(sp).net, 0);
  }
}

TEST(Buffering, PlanDeterministic) {
  Design d = make_long_wire(300);
  const SteinerForest f = build_forest(d);
  const int t = f.net_to_tree[1];
  const SteinerTree& tree = f.trees[static_cast<std::size_t>(t)];
  const BufferingPlan a = plan_buffering(d, tree);
  const BufferingPlan b = plan_buffering(d, tree);
  ASSERT_EQ(a.buffers.size(), b.buffers.size());
  for (std::size_t i = 0; i < a.buffers.size(); ++i) {
    EXPECT_EQ(a.buffers[i].pos, b.buffers[i].pos);
  }
  EXPECT_DOUBLE_EQ(a.delay_after_ns, b.delay_after_ns);
}

TEST(Buffering, UnknownBufferTypeThrows) {
  Design d = make_long_wire(100);
  const SteinerForest f = build_forest(d);
  BufferingOptions opts;
  opts.buffer_type = "NOT_A_BUFFER";
  EXPECT_THROW(plan_buffering(d, f.trees[0], opts), std::runtime_error);
}

}  // namespace
}  // namespace tsteiner
