#include <gtest/gtest.h>

#include "netlist/design_generator.hpp"
#include "place/placer.hpp"
#include "steiner/edge_shift.hpp"
#include "steiner/rsmt.hpp"
#include "steiner/steiner_tree.hpp"

namespace tsteiner {
namespace {

const CellLibrary& lib() {
  static const CellLibrary l = CellLibrary::make_default();
  return l;
}

/// A small placed design with a single multi-pin net.
Design make_star_net(const std::vector<PointI>& sink_positions, PointI driver_pos) {
  Design d("star", &lib());
  d.set_die({{0, 0}, {200, 200}});
  const int drv = d.add_cell(lib().find("INV_X1"));
  d.cell(drv).pos = driver_pos;
  const int net = d.add_net(d.cell(drv).output_pin);
  for (const PointI& p : sink_positions) {
    const int c = d.add_cell(lib().find("INV_X1"));
    d.cell(c).pos = p;
    d.connect_sink(net, d.cell(c).input_pins[0]);
  }
  return d;
}

TEST(Rsmt, TwoPinNetIsSingleEdge) {
  Design d = make_star_net({{30, 40}}, {0, 0});
  const SteinerTree t = build_rsmt(d, 0);
  EXPECT_TRUE(t.is_valid_tree());
  EXPECT_EQ(t.nodes.size(), 2u);
  EXPECT_EQ(t.edges.size(), 1u);
  EXPECT_EQ(t.num_steiner_nodes(), 0);
  EXPECT_DOUBLE_EQ(t.wirelength(), 70.0);
}

TEST(Rsmt, LShapedThreePinGetsSteinerPoint) {
  // Classic case: 3 pins at corners — one Steiner point saves wirelength.
  Design d = make_star_net({{100, 0}, {50, 80}}, {0, 0});
  const SteinerTree t = build_rsmt(d, 0);
  EXPECT_TRUE(t.is_valid_tree());
  EXPECT_EQ(t.num_steiner_nodes(), 1);
  // optimal RSMT: x-span 100 + y-span 80 ... = 180
  EXPECT_DOUBLE_EQ(t.wirelength(), 180.0);
}

TEST(Rsmt, CollinearPinsNeedNoSteiner) {
  Design d = make_star_net({{50, 0}, {100, 0}}, {0, 0});
  const SteinerTree t = build_rsmt(d, 0);
  EXPECT_EQ(t.num_steiner_nodes(), 0);
  EXPECT_DOUBLE_EQ(t.wirelength(), 100.0);
}

TEST(Rsmt, NeverLongerThanMst) {
  Rng rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    const int k = static_cast<int>(rng.uniform_int(2, 9));
    std::vector<PointI> sinks;
    std::vector<PointF> pts{{0.0, 0.0}};
    for (int i = 0; i < k; ++i) {
      const PointI p{rng.uniform_int(0, 150), rng.uniform_int(0, 150)};
      sinks.push_back(p);
      pts.push_back(to_f(p));
    }
    Design d = make_star_net(sinks, {0, 0});
    const SteinerTree t = build_rsmt(d, 0);
    EXPECT_TRUE(t.is_valid_tree());
    EXPECT_LE(t.wirelength(), mst_length(pts) + 1e-9) << "trial " << trial;
    // Steiner ratio bound: RSMT >= 2/3 * MST for rectilinear metric
    EXPECT_GE(t.wirelength(), mst_length(pts) * 2.0 / 3.0 - 1e-9);
  }
}

TEST(Rsmt, SteinerNodesHaveDegreeAtLeastThree) {
  Rng rng(32);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<PointI> sinks;
    for (int i = 0; i < 7; ++i) {
      sinks.push_back({rng.uniform_int(0, 99), rng.uniform_int(0, 99)});
    }
    Design d = make_star_net(sinks, {50, 50});
    const SteinerTree t = build_rsmt(d, 0);
    const auto adj = t.adjacency();
    for (std::size_t n = 0; n < t.nodes.size(); ++n) {
      if (t.nodes[n].is_steiner()) {
        const std::size_t degree = adj[n].size();
        EXPECT_GE(degree, 3u);
      }
    }
  }
}

TEST(Rsmt, LargeNetUsesMstCandidates) {
  Rng rng(33);
  std::vector<PointI> sinks;
  for (int i = 0; i < 30; ++i) {
    sinks.push_back({rng.uniform_int(0, 180), rng.uniform_int(0, 180)});
  }
  Design d = make_star_net(sinks, {90, 90});
  const SteinerTree t = build_rsmt(d, 0);
  EXPECT_TRUE(t.is_valid_tree());
  EXPECT_EQ(t.nodes.size(), t.edges.size() + 1);
}

TEST(Rsmt, SinklessNetThrows) {
  Design d("empty", &lib());
  d.set_die({{0, 0}, {10, 10}});
  const int c = d.add_cell(lib().find("INV_X1"));
  d.add_net(d.cell(c).output_pin);
  EXPECT_THROW(build_rsmt(d, 0), std::runtime_error);
}

TEST(SteinerTree, PathLengthsFromDriver) {
  Design d = make_star_net({{10, 0}, {10, 10}}, {0, 0});
  const SteinerTree t = build_rsmt(d, 0);
  const auto dist = t.path_lengths_from_driver();
  EXPECT_DOUBLE_EQ(dist[static_cast<std::size_t>(t.driver_node)], 0.0);
  for (std::size_t n = 0; n < t.nodes.size(); ++n) {
    if (static_cast<int>(n) != t.driver_node) {
      const double from_driver = dist[n];
      EXPECT_GT(from_driver, 0.0);
    }
  }
}

TEST(SteinerTree, ValidityChecks) {
  SteinerTree t;
  EXPECT_FALSE(t.is_valid_tree());  // empty
  t.nodes.push_back({{0, 0}, 0});
  t.driver_node = 0;
  EXPECT_TRUE(t.is_valid_tree());  // single pin, no edges
  t.nodes.push_back({{1, 1}, 1});
  EXPECT_FALSE(t.is_valid_tree());  // disconnected
  t.edges.push_back({0, 1});
  EXPECT_TRUE(t.is_valid_tree());
}

TEST(Forest, MovableIndexGatherScatterRoundTrip) {
  GeneratorParams p;
  p.num_comb_cells = 150;
  p.num_registers = 16;
  p.num_primary_inputs = 4;
  p.num_primary_outputs = 4;
  p.seed = 8;
  Design d = generate_design(lib(), p);
  place_design(d);
  SteinerForest f = build_forest(d);
  ASSERT_GT(f.num_movable(), 0u);
  auto xs = f.gather_x();
  auto ys = f.gather_y();
  for (double& x : xs) x += 1.5;
  for (double& y : ys) y -= 0.5;
  f.scatter_xy(xs, ys);
  EXPECT_EQ(f.gather_x(), xs);
  EXPECT_EQ(f.gather_y(), ys);
}

TEST(Forest, ClampAndRound) {
  SteinerForest f;
  SteinerTree t;
  t.net = 0;
  t.nodes.push_back({{0.0, 0.0}, 0});
  t.nodes.push_back({{-3.7, 12.2}, -1});
  t.nodes.push_back({{5.0, 5.0}, 1});
  t.nodes.push_back({{2.0, 2.0}, 2});
  t.edges = {{0, 1}, {1, 2}, {1, 3}};
  t.driver_node = 0;
  f.trees.push_back(t);
  f.build_movable_index();
  f.clamp_steiner_points({{0, 0}, {10, 10}});
  EXPECT_DOUBLE_EQ(f.trees[0].nodes[1].pos.x, 0.0);
  EXPECT_DOUBLE_EQ(f.trees[0].nodes[1].pos.y, 10.0);
  f.trees[0].nodes[1].pos = {3.6, 4.4};
  f.round_steiner_points();
  EXPECT_DOUBLE_EQ(f.trees[0].nodes[1].pos.x, 4.0);
  EXPECT_DOUBLE_EQ(f.trees[0].nodes[1].pos.y, 4.0);
  // pin nodes untouched by clamp/round
  EXPECT_DOUBLE_EQ(f.trees[0].nodes[2].pos.x, 5.0);
}

TEST(Forest, BuildForestCoversAllSinkfulNets) {
  GeneratorParams p;
  p.num_comb_cells = 120;
  p.num_registers = 12;
  p.num_primary_inputs = 4;
  p.num_primary_outputs = 4;
  p.seed = 9;
  Design d = generate_design(lib(), p);
  place_design(d);
  const SteinerForest f = build_forest(d);
  for (const Net& n : d.nets()) {
    if (!n.sink_pins.empty()) {
      EXPECT_GE(f.net_to_tree[static_cast<std::size_t>(n.id)], 0);
    }
  }
  for (const SteinerTree& t : f.trees) EXPECT_TRUE(t.is_valid_tree());
}

TEST(Forest, ParallelConstructionMatchesSerial) {
  GeneratorParams p;
  p.num_comb_cells = 300;
  p.num_registers = 30;
  p.num_primary_inputs = 6;
  p.num_primary_outputs = 6;
  p.seed = 10;
  Design d = generate_design(lib(), p);
  place_design(d);
  RsmtOptions serial;
  serial.threads = 1;
  RsmtOptions parallel;
  parallel.threads = 4;
  const SteinerForest a = build_forest(d, serial);
  const SteinerForest b = build_forest(d, parallel);
  ASSERT_EQ(a.trees.size(), b.trees.size());
  EXPECT_EQ(a.net_to_tree, b.net_to_tree);
  for (std::size_t t = 0; t < a.trees.size(); ++t) {
    ASSERT_EQ(a.trees[t].nodes.size(), b.trees[t].nodes.size()) << "tree " << t;
    for (std::size_t n = 0; n < a.trees[t].nodes.size(); ++n) {
      EXPECT_EQ(a.trees[t].nodes[n].pin, b.trees[t].nodes[n].pin);
      EXPECT_EQ(a.trees[t].nodes[n].pos, b.trees[t].nodes[n].pos);
    }
  }
}

TEST(EdgeShift, ReducesCustomCost) {
  // Cost spikes for edges entering x > 50 — shifting should pull the
  // Steiner point left when wirelength allows.
  Design d = make_star_net({{100, 0}, {100, 80}}, {0, 40});
  SteinerTree t = build_rsmt(d, 0);
  ASSERT_EQ(t.num_steiner_nodes(), 1);
  const auto cost = [](const PointF& a, const PointF& b) {
    return manhattan(a, b) + (a.x > 50.0 ? 10.0 : 0.0) + (b.x > 50.0 ? 10.0 : 0.0);
  };
  double before = 0.0;
  for (const SteinerEdge& e : t.edges) {
    before += cost(t.nodes[static_cast<std::size_t>(e.a)].pos,
                   t.nodes[static_cast<std::size_t>(e.b)].pos);
  }
  edge_shift(t, cost);
  double after = 0.0;
  for (const SteinerEdge& e : t.edges) {
    after += cost(t.nodes[static_cast<std::size_t>(e.a)].pos,
                  t.nodes[static_cast<std::size_t>(e.b)].pos);
  }
  EXPECT_LE(after, before);
  EXPECT_TRUE(t.is_valid_tree());
}

TEST(EdgeShift, NoOpWhenCostIsWirelength) {
  Design d = make_star_net({{60, 0}, {30, 50}, {80, 70}}, {0, 0});
  SteinerTree t = build_rsmt(d, 0);
  const double wl_before = t.wirelength();
  edge_shift(t, [](const PointF& a, const PointF& b) { return manhattan(a, b); });
  // wirelength never increases beyond the slack tolerance
  EXPECT_LE(t.wirelength(), wl_before * 1.03);
}

TEST(EdgeShift, PreservesTopology) {
  Rng rng(44);
  std::vector<PointI> sinks;
  for (int i = 0; i < 12; ++i) {
    sinks.push_back({rng.uniform_int(0, 120), rng.uniform_int(0, 120)});
  }
  Design d = make_star_net(sinks, {60, 60});
  SteinerTree t = build_rsmt(d, 0);
  const std::size_t nodes_before = t.nodes.size();
  const std::size_t edges_before = t.edges.size();
  edge_shift(t, [&rng](const PointF& a, const PointF& b) {
    return manhattan(a, b) * (1.0 + 0.1 * std::sin(a.x + b.y));
  });
  EXPECT_EQ(t.nodes.size(), nodes_before);
  EXPECT_EQ(t.edges.size(), edges_before);
  EXPECT_TRUE(t.is_valid_tree());
}

}  // namespace
}  // namespace tsteiner
