// Exit-code contract of the tsteiner_db CLI: 0 = success, 1 = unreadable /
// corrupt / missing data, 2 = usage error. The binary path is injected by
// CMake as TSTEINER_DB_TOOL.
#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "testutil.hpp"
#include "verify/case_gen.hpp"

namespace tsteiner {
namespace {

int run_tool(const std::string& args) {
  const std::string cmd =
      std::string(TSTEINER_DB_TOOL) + " " + args + " >/dev/null 2>&1";
  const int status = std::system(cmd.c_str());
  EXPECT_TRUE(WIFEXITED(status)) << cmd;
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

std::vector<char> read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

void write_bytes(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// A small, fully valid snapshot container to probe against.
std::string make_snapshot(const std::string& dir) {
  const std::string path = dir + "/probe.tsdb";
  const verify::FuzzCase c = verify::make_case(101, "tiny");
  EXPECT_TRUE(verify::save_case_snapshot(c, path));
  return path;
}

TEST(DbTool, InfoAndVerifySucceedOnValidContainer) {
  const std::string dir = testutil::test_tmp_dir();
  const std::string path = make_snapshot(dir);
  EXPECT_EQ(run_tool("info " + path), 0);
  EXPECT_EQ(run_tool("verify " + path), 0);
}

TEST(DbTool, VerifyRejectsTruncatedContainer) {
  const std::string dir = testutil::test_tmp_dir();
  const std::string path = make_snapshot(dir);
  std::vector<char> bytes = read_bytes(path);
  ASSERT_GT(bytes.size(), 64u);
  bytes.resize(bytes.size() - 10);  // cut into the FEND trailer / last chunk
  const std::string cut = dir + "/cut.tsdb";
  write_bytes(cut, bytes);
  EXPECT_EQ(run_tool("verify " + cut), 1);
  EXPECT_EQ(run_tool("info " + cut), 1);
}

TEST(DbTool, VerifyRejectsBitFlippedPayload) {
  const std::string dir = testutil::test_tmp_dir();
  const std::string path = make_snapshot(dir);
  std::vector<char> bytes = read_bytes(path);
  ASSERT_GT(bytes.size(), 128u);
  bytes[bytes.size() / 2] ^= 0x01;  // lands inside some chunk payload; CRC must catch
  const std::string flipped = dir + "/flipped.tsdb";
  write_bytes(flipped, bytes);
  EXPECT_EQ(run_tool("verify " + flipped), 1);
}

TEST(DbTool, MissingFileFails) {
  const std::string dir = testutil::test_tmp_dir();
  EXPECT_EQ(run_tool("info " + dir + "/does_not_exist.tsdb"), 1);
  EXPECT_EQ(run_tool("verify " + dir + "/does_not_exist.tsdb"), 1);
}

TEST(DbTool, UsageErrorsExitTwo) {
  const std::string dir = testutil::test_tmp_dir();
  const std::string path = make_snapshot(dir);
  EXPECT_EQ(run_tool(""), 2);                    // no command
  EXPECT_EQ(run_tool("info"), 2);                // missing file argument
  EXPECT_EQ(run_tool("frobnicate " + path), 2);  // unknown command
  EXPECT_EQ(run_tool("extract " + path), 2);     // missing type/out arguments
  EXPECT_EQ(run_tool("extract " + path + " TOOLONGNAME " + dir + "/o"), 2);
}

TEST(DbTool, ExtractForestAndRawChunks) {
  const std::string dir = testutil::test_tmp_dir();
  const std::string path = make_snapshot(dir);
  const std::string forest_out = dir + "/forest.txt";
  EXPECT_EQ(run_tool("extract " + path + " FRST " + forest_out), 0);
  EXPECT_TRUE(std::filesystem::exists(forest_out));
  EXPECT_GT(std::filesystem::file_size(forest_out), 0u);

  const std::string raw_out = dir + "/meta.bin";
  EXPECT_EQ(run_tool("extract " + path + " META " + raw_out), 0);
  EXPECT_TRUE(std::filesystem::exists(raw_out));

  // Out-of-range chunk index and absent chunk type are data errors, not
  // usage errors.
  EXPECT_EQ(run_tool("extract " + path + " FRST " + dir + "/x 5"), 1);
  EXPECT_EQ(run_tool("extract " + path + " ZZZZ " + dir + "/y"), 1);
}

}  // namespace
}  // namespace tsteiner
