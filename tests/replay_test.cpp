// Retained-program (record/replay) correctness: replayed forward/backward
// must be bit-identical to a freshly recorded tape at any thread-pool
// width, steady-state replay must not allocate, and a program must reject
// inputs from a different topology instead of silently corrupting results.
#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "autodiff/program.hpp"
#include "flow/flow.hpp"
#include "netlist/design_generator.hpp"
#include "place/placer.hpp"
#include "search/topo_edits.hpp"
#include "steiner/rsmt.hpp"
#include "tsteiner/gradient.hpp"
#include "tsteiner/refine.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace tsteiner {
namespace {

const CellLibrary& lib() {
  static const CellLibrary l = CellLibrary::make_default();
  return l;
}

struct Fixture {
  Design design;
  SteinerForest forest;
  std::shared_ptr<const GraphCache> cache;
};

Fixture make_fixture(std::uint64_t seed = 81, int comb_cells = 120) {
  GeneratorParams p;
  p.num_comb_cells = comb_cells;
  p.num_registers = comb_cells / 8;
  p.num_primary_inputs = 4;
  p.num_primary_outputs = 4;
  p.seed = seed;
  Fixture f{generate_design(lib(), p), {}, nullptr};
  place_design(f.design);
  f.forest = build_forest(f.design);
  // Tight clock so endpoints violate.
  const StaResult sta = run_sta(f.design, f.forest, nullptr);
  f.design.set_clock_period(0.6 * sta.max_arrival);
  f.cache = build_graph_cache(f.design, f.forest);
  return f;
}

TimingGnn make_model() {
  GnnConfig cfg;
  cfg.hidden = 6;
  return TimingGnn(cfg, lib().num_types());
}

/// Deterministic coordinate disturbance, distinct per step.
void perturb(std::vector<double>& xs, std::vector<double>& ys, int step) {
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] += static_cast<double>((i + static_cast<std::size_t>(step)) % 7) - 3.0;
    ys[i] += static_cast<double>((i * 3 + static_cast<std::size_t>(step)) % 5) - 2.0;
  }
}

::testing::AssertionResult bits_equal(const std::vector<double>& a,
                                      const std::vector<double>& b) {
  if (a.size() != b.size()) return ::testing::AssertionFailure() << "size mismatch";
  if (!a.empty() &&
      std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) != 0) {
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (std::memcmp(&a[i], &b[i], sizeof(double)) != 0) {
        return ::testing::AssertionFailure()
               << "element " << i << ": " << a[i] << " vs " << b[i];
      }
    }
  }
  return ::testing::AssertionSuccess();
}

::testing::AssertionResult results_bit_equal(const GradientResult& a,
                                             const GradientResult& b) {
  if (std::memcmp(&a.penalty, &b.penalty, sizeof(double)) != 0) {
    return ::testing::AssertionFailure() << "penalty " << a.penalty << " vs " << b.penalty;
  }
  if (std::memcmp(&a.eval_wns_ns, &b.eval_wns_ns, sizeof(double)) != 0 ||
      std::memcmp(&a.eval_tns_ns, &b.eval_tns_ns, sizeof(double)) != 0) {
    return ::testing::AssertionFailure() << "WNS/TNS differ";
  }
  ::testing::AssertionResult gx = bits_equal(a.grad_x, b.grad_x);
  if (!gx) return gx;
  return bits_equal(a.grad_y, b.grad_y);
}

TEST(Replay, BitIdenticalToFreshTapeAcrossLeafUpdates) {
  const Fixture f = make_fixture(91);
  const TimingGnn model = make_model();
  PenaltyWeights w;
  auto xs = f.forest.gather_x();
  auto ys = f.forest.gather_y();
  ASSERT_GT(xs.size(), 0u);

  GradientEvaluator evaluator(model, *f.cache, f.design, xs, ys, w);
  for (int step = 0; step < 4; ++step) {
    if (step > 0) {
      perturb(xs, ys, step);
      // Exercise the mutable lambda leaves the way the refine schedule does.
      w.lambda_w *= 1.01;
      w.lambda_t *= 1.01;
    }
    const GradientResult fresh = compute_timing_gradients(model, *f.cache, f.design, xs, ys, w);
    const GradientResult replayed = evaluator.gradients(xs, ys, w);
    EXPECT_TRUE(results_bit_equal(fresh, replayed)) << "step " << step;
    ASSERT_EQ(replayed.grad_x.size(), xs.size());

    const GradientResult fresh_fwd = evaluate_timing(model, *f.cache, f.design, xs, ys, w);
    const GradientResult replayed_fwd = evaluator.evaluate(xs, ys, w);
    EXPECT_TRUE(results_bit_equal(fresh_fwd, replayed_fwd)) << "forward-only step " << step;
  }
}

TEST(Replay, BitIdenticalAcrossThreadWidths) {
  const Fixture f = make_fixture(92);
  const TimingGnn model = make_model();
  const auto xs0 = f.forest.gather_x();
  const auto ys0 = f.forest.gather_y();

  auto run_sequence = [&](std::size_t width) {
    set_parallel_threads(width);
    PenaltyWeights w;
    auto xs = xs0;
    auto ys = ys0;
    GradientEvaluator evaluator(model, *f.cache, f.design, xs, ys, w);
    std::vector<GradientResult> out;
    for (int step = 0; step < 3; ++step) {
      perturb(xs, ys, step);
      w.lambda_w *= 1.01;
      out.push_back(evaluator.gradients(xs, ys, w));
    }
    return out;
  };

  const std::vector<GradientResult> serial = run_sequence(1);
  const std::vector<GradientResult> wide = run_sequence(4);
  set_parallel_threads(0);  // restore TSTEINER_THREADS / hardware default
  ASSERT_EQ(serial.size(), wide.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(results_bit_equal(serial[i], wide[i])) << "step " << i;
  }
}

TEST(Replay, NumericGradientAgreesOnReplayedPenalty) {
  const Fixture f = make_fixture(84);
  const TimingGnn model = make_model();
  PenaltyWeights w;
  const auto xs = f.forest.gather_x();
  const auto ys = f.forest.gather_y();
  GradientEvaluator evaluator(model, *f.cache, f.design, xs, ys, w);
  const GradientResult g = evaluator.gradients(xs, ys, w);
  ASSERT_EQ(g.grad_x.size(), xs.size());

  const double eps = 1e-4;
  int checked = 0;
  for (std::size_t i = 0; i < xs.size() && checked < 5;
       i += std::max<std::size_t>(1, xs.size() / 5)) {
    auto xp = xs;
    auto xm = xs;
    xp[i] += eps;
    xm[i] -= eps;
    const double fp = evaluator.evaluate(xp, ys, w).penalty;
    const double fm = evaluator.evaluate(xm, ys, w).penalty;
    const double numeric = (fp - fm) / (2.0 * eps);
    EXPECT_NEAR(g.grad_x[i], numeric, 1e-4 + 0.05 * std::abs(numeric)) << "coord " << i;
    ++checked;
  }
  EXPECT_GE(checked, 1);
}

TEST(Replay, TopologyChangeRejected) {
  const Fixture f = make_fixture(93);
  const Fixture other = make_fixture(94, /*comb_cells=*/60);
  const TimingGnn model = make_model();
  PenaltyWeights w;
  GradientEvaluator evaluator(model, *f.cache, f.design, f.forest.gather_x(),
                              f.forest.gather_y(), w);

  // A different forest topology has a different movable-point count: the
  // program must refuse to replay it rather than corrupt the leaf arena.
  const auto xs_b = other.forest.gather_x();
  const auto ys_b = other.forest.gather_y();
  ASSERT_NE(xs_b.size(), f.forest.gather_x().size());
  EXPECT_THROW(evaluator.gradients(xs_b, ys_b, w), std::runtime_error);

  // Gamma is baked into the recorded nonlinearities; a weight set resolving
  // to a different temperature needs a new recording too.
  PenaltyWeights other_gamma = w;
  other_gamma.gamma_ns = 2.0 * w.gamma_ns;
  EXPECT_THROW(
      evaluator.gradients(f.forest.gather_x(), f.forest.gather_y(), other_gamma),
      std::runtime_error);

  // Lambda-only changes are the supported mutation and must NOT throw.
  PenaltyWeights grown = w;
  grown.lambda_w *= 1.05;
  grown.lambda_t *= 1.05;
  EXPECT_NO_THROW(evaluator.gradients(f.forest.gather_x(), f.forest.gather_y(), grown));
}

TEST(Replay, SteadyStateReplayDoesNotAllocate) {
  const Fixture f = make_fixture(95);
  const TimingGnn model = make_model();
  PenaltyWeights w;
  auto xs = f.forest.gather_x();
  auto ys = f.forest.gather_y();
  GradientEvaluator evaluator(model, *f.cache, f.design, xs, ys, w);

  // First replay warms the arena: gradient buffers and segment-max scratch
  // are allocated once here.
  (void)evaluator.gradients(xs, ys, w);
  const std::uint64_t warm = evaluator.program().allocation_count();
  for (int step = 1; step <= 3; ++step) {
    perturb(xs, ys, step);
    w.lambda_w *= 1.01;
    w.lambda_t *= 1.01;
    (void)evaluator.gradients(xs, ys, w);
    (void)evaluator.evaluate(xs, ys, w);
    EXPECT_EQ(evaluator.program().allocation_count(), warm) << "step " << step;
  }
}

TEST(Replay, FinalizedProgramRejectsRecordingAndForeignLeaves) {
  TapeProgram program;
  Tape& tape = program.tape();
  const Value x = tape.leaf(Tensor::column({1.0, 2.0, 3.0}), /*requires_grad=*/true);
  const Value c = tape.leaf(Tensor::column({2.0, 0.5, -1.0}));
  const Value root = tape.sum_all(tape.mul(x, c));
  program.finalize(root, {x}, {x});

  EXPECT_THROW(program.tape().scale(x, 2.0), std::runtime_error);      // frozen
  EXPECT_THROW(program.set_leaf(c, std::vector<double>{9.0, 9.0, 9.0}),
               std::runtime_error);  // not mutable
  EXPECT_THROW(program.set_leaf(x, std::vector<double>{1.0, 2.0}),
               std::runtime_error);  // shape change

  program.set_leaf(x, std::vector<double>{4.0, 5.0, 6.0});
  program.replay_forward();
  EXPECT_DOUBLE_EQ(program.value(root)[0], 4.0 * 2.0 + 5.0 * 0.5 + 6.0 * -1.0);
  program.replay_backward();
  const Tensor& gx = program.grad(x);
  ASSERT_EQ(gx.size(), 3u);
  EXPECT_DOUBLE_EQ(gx[0], 2.0);
  EXPECT_DOUBLE_EQ(gx[1], 0.5);
  EXPECT_DOUBLE_EQ(gx[2], -1.0);
}

TEST(Replay, TapeReserveAndStats) {
  Tape tape;
  tape.reserve(8);
  const Value a = tape.leaf(Tensor::column({1.0, -2.0, 3.0}), /*requires_grad=*/true);
  const Value b = tape.leaf(Tensor::column({0.5, 0.5, 0.5}));
  const Value root = tape.sum_all(tape.mul(tape.relu(a), b));
  const Tape::Stats cold = tape.stats();
  EXPECT_EQ(cold.num_nodes, 5u);
  EXPECT_EQ(cold.num_leaves, 2u);
  EXPECT_EQ(cold.value_doubles, 3u + 3u + 3u + 3u + 1u);
  EXPECT_EQ(cold.grad_doubles, 0u);
  EXPECT_GE(cold.allocations, cold.num_nodes);

  tape.backward(root);
  const Tape::Stats warm = tape.stats();
  EXPECT_EQ(warm.grad_doubles, warm.value_doubles);
  EXPECT_GT(warm.allocations, cold.allocations);
  // A second backward reuses every gradient buffer.
  tape.backward(root);
  EXPECT_EQ(tape.stats().allocations, warm.allocations);
}

TEST(Replay, RebindAfterTopologyEditsMatchesFreshTapeAndFiniteDifference) {
  Fixture f = make_fixture(96);
  f.forest.build_movable_index();
  const TimingGnn model = make_model();
  PenaltyWeights w;
  const RectI die = f.design.die();
  Rng rng(4242);

  auto xs = f.forest.gather_x();
  auto ys = f.forest.gather_y();
  ASSERT_GT(xs.size(), 0u);
  GradientEvaluator evaluator(model, *f.cache, f.design, xs, ys, w);
  std::size_t bound = xs.size();
  std::shared_ptr<const GraphCache> cache = f.cache;

  // Apply a handful of discrete topology edits (insert / delete / reshift /
  // swap as the enumeration offers them); after each accepted edit the tape
  // is rebuilt in place via rebind() and must match a fresh recording bit
  // for bit — and the finite-difference slope of the replayed penalty.
  int applied = 0;
  std::set<search::EditKind> kinds;
  for (int attempt = 0; attempt < 64 && applied < 4; ++attempt) {
    const int t = static_cast<int>(rng.index(f.forest.trees.size()));
    const SteinerTree& tree = f.forest.trees[static_cast<std::size_t>(t)];
    if (tree.num_steiner_nodes() == 0) continue;
    bool edited = false;
    search::TopologyEdit chosen;
    for (const auto& e : search::enumerate_edits(tree, die, rng)) {
      auto next = search::apply_edit(tree, die, e);
      if (!next.has_value()) continue;
      chosen = e;
      f.forest.replace_tree(t, std::move(*next));
      edited = true;
      break;
    }
    if (!edited) continue;
    ++applied;
    kinds.insert(chosen.kind);

    const auto xs2 = f.forest.gather_x();
    const auto ys2 = f.forest.gather_y();
    if (xs2.size() != bound) {
      // Stale program: a changed movable count must be rejected, never
      // silently replayed.
      EXPECT_THROW(evaluator.gradients(xs2, ys2, w), std::runtime_error);
    }
    cache = build_graph_cache(f.design, f.forest);
    evaluator.rebind(model, *cache, f.design, xs2, ys2, w);
    bound = xs2.size();

    const GradientResult fresh = compute_timing_gradients(model, *cache, f.design, xs2, ys2, w);
    const GradientResult replayed = evaluator.gradients(xs2, ys2, w);
    EXPECT_TRUE(results_bit_equal(fresh, replayed))
        << "edit " << applied << " kind " << static_cast<int>(chosen.kind);

    if (!xs2.empty()) {
      const double eps = 1e-4;
      const std::size_t i = xs2.size() / 2;
      auto xp = xs2;
      auto xm = xs2;
      xp[i] += eps;
      xm[i] -= eps;
      const double numeric =
          (evaluator.evaluate(xp, ys2, w).penalty - evaluator.evaluate(xm, ys2, w).penalty) /
          (2.0 * eps);
      EXPECT_NEAR(replayed.grad_x[i], numeric, 1e-4 + 0.05 * std::abs(numeric))
          << "edit " << applied;
    }
  }
  ASSERT_GE(applied, 2) << "edit enumeration never produced an applicable edit";
  EXPECT_GE(kinds.size(), 1u);
}

TEST(Replay, RefineUsesSharedInitialGradientAndReportsPhases) {
  const Fixture f = make_fixture(86);
  const TimingGnn model = make_model();
  RefineOptions opts;
  opts.max_iterations = 4;
  const RefineResult r = refine_steiner_points(f.design, f.forest, model, opts);
  // One recording, many replays: both phases must have been populated.
  EXPECT_GT(r.grad_record.wall_s, 0.0);
  EXPECT_GT(r.grad_replay.wall_s, 0.0);
}

}  // namespace
}  // namespace tsteiner
