#include <gtest/gtest.h>

#include <cmath>

#include "autodiff/tape.hpp"

namespace tsteiner {
namespace {

// Gradient check: compares the tape gradient of a scalar function against a
// central finite difference, elementwise.
void check_gradient(const std::function<Value(Tape&, Value)>& graph, const Tensor& x0,
                    double tol = 1e-6) {
  Tape tape;
  const Value x = tape.leaf(x0, /*requires_grad=*/true);
  const Value root = graph(tape, x);
  ASSERT_EQ(tape.value(root).size(), 1u);
  tape.backward(root);
  const Tensor& analytic = tape.grad(x);
  ASSERT_EQ(analytic.size(), x0.size());

  auto eval = [&graph](const Tensor& xv) {
    Tape t2;
    const Value xx = t2.leaf(xv, true);
    return t2.value(graph(t2, xx))[0];
  };
  for (std::size_t i = 0; i < x0.size(); ++i) {
    const double numeric = numeric_gradient(eval, x0, i);
    EXPECT_NEAR(analytic[i], numeric, tol) << "element " << i;
  }
}

Tensor make_input() {
  Rng rng(5);
  return Tensor::randn(rng, 4, 3, 1.0);
}

TEST(Tape, LeafValueRoundTrip) {
  Tape tape;
  Tensor t(2, 2);
  t.at(0, 0) = 1.0;
  t.at(1, 1) = -2.0;
  const Value v = tape.leaf(t);
  EXPECT_DOUBLE_EQ(tape.value(v).at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(tape.value(v).at(1, 1), -2.0);
}

TEST(TapeGrad, SumAll) {
  check_gradient([](Tape& t, Value x) { return t.sum_all(x); }, make_input());
}

TEST(TapeGrad, MeanAll) {
  check_gradient([](Tape& t, Value x) { return t.mean_all(x); }, make_input());
}

TEST(TapeGrad, ScaleAndAddScalar) {
  check_gradient(
      [](Tape& t, Value x) { return t.sum_all(t.add_scalar(t.scale(x, 2.5), -1.0)); },
      make_input());
}

TEST(TapeGrad, AddSubMulChain) {
  check_gradient(
      [](Tape& t, Value x) {
        const Value y = t.mul(x, x);       // x^2
        const Value z = t.sub(y, x);       // x^2 - x
        const Value w = t.add(z, y);       // 2x^2 - x
        return t.sum_all(w);
      },
      make_input());
}

TEST(TapeGrad, RowBroadcastAdd) {
  Rng rng(9);
  const Tensor bias = Tensor::randn(rng, 1, 3, 1.0);
  check_gradient(
      [bias](Tape& t, Value x) {
        const Value b = t.leaf(bias);
        return t.sum_all(t.mul(t.add(x, b), t.add(x, b)));
      },
      make_input());
}

TEST(TapeGrad, MatmulBothSides) {
  Rng rng(11);
  const Tensor w = Tensor::randn(rng, 3, 2, 1.0);
  // gradient w.r.t. left operand
  check_gradient(
      [w](Tape& t, Value x) { return t.sum_all(t.matmul(x, t.leaf(w))); }, make_input());
  // gradient w.r.t. right operand (x plays the role of W)
  const Tensor a = Tensor::randn(rng, 2, 4, 1.0);
  check_gradient(
      [a](Tape& t, Value x) { return t.sum_all(t.matmul(t.leaf(a), x)); }, make_input());
}

TEST(TapeGrad, Relu) {
  check_gradient([](Tape& t, Value x) { return t.sum_all(t.mul(t.relu(x), t.relu(x))); },
                 make_input(), 1e-5);
}

TEST(TapeGrad, Tanh) {
  check_gradient([](Tape& t, Value x) { return t.sum_all(t.tanh_op(x)); }, make_input());
}

TEST(TapeGrad, Sigmoid) {
  check_gradient([](Tape& t, Value x) { return t.sum_all(t.sigmoid(x)); }, make_input());
}

TEST(TapeGrad, Softplus) {
  check_gradient([](Tape& t, Value x) { return t.sum_all(t.softplus(x)); }, make_input());
}

TEST(TapeGrad, AbsAwayFromZero) {
  Tensor x0(3, 1);
  x0[0] = 1.5;
  x0[1] = -2.5;
  x0[2] = 0.75;
  check_gradient([](Tape& t, Value x) { return t.sum_all(t.mul(t.abs_op(x), t.abs_op(x))); },
                 x0);
}

TEST(TapeGrad, ConcatCols) {
  Rng rng(13);
  const Tensor other = Tensor::randn(rng, 4, 2, 1.0);
  check_gradient(
      [other](Tape& t, Value x) {
        const Value c = t.concat_cols({x, t.leaf(other)});
        return t.sum_all(t.mul(c, c));
      },
      make_input());
}

TEST(TapeGrad, GatherRows) {
  check_gradient(
      [](Tape& t, Value x) {
        const Value g = t.gather_rows(x, {0, 2, 2, 1});  // repeated row
        return t.sum_all(t.mul(g, g));
      },
      make_input());
}

TEST(TapeGrad, ScatterAddRows) {
  check_gradient(
      [](Tape& t, Value x) {
        const Value s = t.scatter_add_rows(x, {1, 0, 1, 2}, 3);  // collisions
        return t.sum_all(t.mul(s, s));
      },
      make_input());
}

TEST(TapeGrad, SegmentSum) {
  check_gradient(
      [](Tape& t, Value x) {
        const Value s = t.segment_sum(x, {0, 0, 1, 1}, 2);
        return t.sum_all(t.mul(s, s));
      },
      make_input());
}

TEST(TapeGrad, SegmentMax) {
  // distinct values so the argmax is stable under the finite-difference eps
  Tensor x0(4, 2);
  double v = 0.1;
  for (std::size_t i = 0; i < x0.size(); ++i) x0[i] = (v += 0.37);
  check_gradient(
      [](Tape& t, Value x) {
        const Value s = t.segment_max(x, {0, 1, 0, 1}, 2);
        return t.sum_all(t.mul(s, s));
      },
      x0);
}

TEST(Tape, SegmentMaxEmptySegmentGetsFill) {
  Tape tape;
  Tensor x(2, 1);
  x[0] = 5.0;
  x[1] = 3.0;
  const Value v = tape.leaf(x, true);
  const Value s = tape.segment_max(v, {0, 0}, 3, -7.0);
  EXPECT_DOUBLE_EQ(tape.value(s).at(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(tape.value(s).at(1, 0), -7.0);
  EXPECT_DOUBLE_EQ(tape.value(s).at(2, 0), -7.0);
}

TEST(TapeGrad, LogSumExp) {
  Tensor x0(5, 1);
  x0[0] = -1.0;
  x0[1] = 0.5;
  x0[2] = 2.0;
  x0[3] = -3.0;
  x0[4] = 1.0;
  check_gradient([](Tape& t, Value x) { return t.log_sum_exp(x, 0.7); }, x0);
}

TEST(Tape, LogSumExpApproachesMax) {
  // gamma -> 0 makes LSE converge to the hard maximum
  Tape tape;
  Tensor x(3, 1);
  x[0] = 1.0;
  x[1] = 4.0;
  x[2] = -2.0;
  const Value v = tape.leaf(x);
  EXPECT_NEAR(tape.value(tape.log_sum_exp(v, 1e-3))[0], 4.0, 1e-2);
  // and is an upper bound for any gamma
  EXPECT_GE(tape.value(tape.log_sum_exp(v, 10.0))[0], 4.0);
}

TEST(Tape, LogSumExpNumericallyStableForLargeInputs) {
  Tape tape;
  Tensor x(2, 1);
  x[0] = 1e6;
  x[1] = 1e6 - 1.0;
  const Value v = tape.leaf(x);
  const double out = tape.value(tape.log_sum_exp(v, 1.0))[0];
  EXPECT_TRUE(std::isfinite(out));
  EXPECT_NEAR(out, 1e6 + std::log(1.0 + std::exp(-1.0)), 1e-6);
}

TEST(TapeGrad, SoftMin0) {
  Tensor x0(4, 1);
  x0[0] = -2.0;
  x0[1] = -0.1;
  x0[2] = 0.1;
  x0[3] = 3.0;
  check_gradient([](Tape& t, Value x) { return t.sum_all(t.soft_min0(x, 0.5)); }, x0);
}

TEST(Tape, SoftMin0Limits) {
  Tape tape;
  Tensor x(2, 1);
  x[0] = -100.0;  // deep violation: ~identity
  x[1] = 100.0;   // large positive slack: ~0
  const Value v = tape.leaf(x);
  const Tensor& out = tape.value(tape.soft_min0(v, 1.0));
  EXPECT_NEAR(out[0], -100.0, 1e-6);
  EXPECT_NEAR(out[1], 0.0, 1e-6);
}

TEST(TapeGrad, SmoothAbs) {
  Tensor x0(4, 1);
  x0[0] = -6.0;
  x0[1] = -0.5;
  x0[2] = 0.0;
  x0[3] = 7.0;
  check_gradient([](Tape& t, Value x) { return t.sum_all(t.smooth_abs(x, 2.0)); }, x0);
}

TEST(Tape, SmoothAbsProperties) {
  Tape tape;
  Tensor x(3, 1);
  x[0] = 0.0;
  x[1] = 100.0;
  x[2] = -100.0;
  const Value v = tape.leaf(x, true);
  const Tensor& out = tape.value(tape.smooth_abs(v, 4.0));
  EXPECT_DOUBLE_EQ(out[0], 0.0);                 // exact zero at origin
  EXPECT_NEAR(out[1], 100.0 - 4.0 + 0.08, 0.1);  // |x| - delta in the tails
  EXPECT_DOUBLE_EQ(out[1], out[2]);              // even function
  // gradient vanishes at the origin (flat basin, unlike abs)
  Tape t2;
  Tensor zero(1, 1, 0.0);
  const Value z = t2.leaf(zero, true);
  const Value root = t2.sum_all(t2.smooth_abs(z, 4.0));
  t2.backward(root);
  EXPECT_DOUBLE_EQ(t2.grad(z)[0], 0.0);
}

TEST(Tape, SmoothAbsZeroDeltaFallsBackToAbs) {
  Tape tape;
  Tensor x(2, 1);
  x[0] = -3.0;
  x[1] = 2.0;
  const Value v = tape.leaf(x);
  const Tensor& out = tape.value(tape.smooth_abs(v, 0.0));
  EXPECT_DOUBLE_EQ(out[0], 3.0);
  EXPECT_DOUBLE_EQ(out[1], 2.0);
}

TEST(TapeGrad, Mse) {
  Tensor target(4, 3);
  for (std::size_t i = 0; i < target.size(); ++i) target[i] = 0.1 * static_cast<double>(i);
  check_gradient([target](Tape& t, Value x) { return t.mse(x, target); }, make_input());
}

TEST(Tape, BackwardOnlyReachesUsedLeaves) {
  Tape tape;
  const Value a = tape.leaf(Tensor(2, 1, 1.0), true);
  const Value b = tape.leaf(Tensor(2, 1, 2.0), true);
  const Value root = tape.sum_all(a);
  tape.backward(root);
  EXPECT_DOUBLE_EQ(tape.grad(a)[0], 1.0);
  // b untouched: zero grad
  const Tensor& gb = tape.grad(b);
  for (std::size_t i = 0; i < gb.size(); ++i) EXPECT_DOUBLE_EQ(gb[i], 0.0);
}

TEST(Tape, BackwardThrowsOnNonScalarRoot) {
  Tape tape;
  const Value a = tape.leaf(Tensor(2, 2, 1.0), true);
  EXPECT_THROW(tape.backward(a), std::runtime_error);
}

TEST(Tape, ShapeMismatchThrows) {
  Tape tape;
  const Value a = tape.leaf(Tensor(2, 2, 1.0));
  const Value b = tape.leaf(Tensor(3, 2, 1.0));
  EXPECT_THROW(tape.sub(a, b), std::runtime_error);
  EXPECT_THROW(tape.mul(a, b), std::runtime_error);
  EXPECT_THROW(tape.matmul(a, b), std::runtime_error);
}

TEST(TapeGrad, ComposedMlpBlock) {
  // A realistic block: relu(x W1 + b1) W2 summed — the delay-head pattern.
  Rng rng(21);
  const Tensor w1 = Tensor::randn(rng, 3, 5, 0.7);
  const Tensor b1 = Tensor::randn(rng, 1, 5, 0.3);
  const Tensor w2 = Tensor::randn(rng, 5, 1, 0.7);
  check_gradient(
      [&](Tape& t, Value x) {
        const Value hidden = t.relu(t.add(t.matmul(x, t.leaf(w1)), t.leaf(b1)));
        return t.sum_all(t.softplus(t.matmul(hidden, t.leaf(w2))));
      },
      make_input(), 1e-5);
}

}  // namespace
}  // namespace tsteiner
