#include <gtest/gtest.h>

#include "netlist/design_generator.hpp"
#include "place/placer.hpp"
#include "route/layer_assign.hpp"
#include "sta/sta.hpp"
#include "steiner/rsmt.hpp"

namespace tsteiner {
namespace {

const CellLibrary& lib() {
  static const CellLibrary l = CellLibrary::make_default();
  return l;
}

struct Prep {
  Design design;
  SteinerForest forest;
  GlobalRouteResult gr;
};

Prep prep(std::uint64_t seed) {
  GeneratorParams p;
  p.num_comb_cells = 300;
  p.num_registers = 32;
  p.num_primary_inputs = 6;
  p.num_primary_outputs = 6;
  p.seed = seed;
  Prep out{generate_design(lib(), p), {}, {}};
  place_design(out.design);
  out.forest = build_forest(out.design);
  out.gr = global_route(out.design, out.forest);
  return out;
}

TEST(LayerAssign, DefaultStackIsOrdered) {
  const auto stack = default_layer_stack();
  ASSERT_GE(stack.size(), 2u);
  for (std::size_t l = 1; l < stack.size(); ++l) {
    EXPECT_LT(stack[l].r_mult, stack[l - 1].r_mult) << "upper layers must be faster";
    EXPECT_LE(stack[l].capacity_share, stack[l - 1].capacity_share)
        << "upper layers must be scarcer";
  }
}

TEST(LayerAssign, CoversEveryConnection) {
  const Prep p = prep(71);
  const LayerAssignment la = assign_layers(p.forest, p.gr, LayerPolicy::kWirelength);
  ASSERT_EQ(la.layer_of_connection.size(), p.gr.connections.size());
  for (int l : la.layer_of_connection) {
    EXPECT_GE(l, 0);
    EXPECT_LT(l, static_cast<int>(la.stack.size()));
  }
}

TEST(LayerAssign, BudgetsRespected) {
  const Prep p = prep(72);
  const LayerAssignment la = assign_layers(p.forest, p.gr, LayerPolicy::kWirelength);
  // Measure assigned wirelength per layer pair against the share budgets.
  std::vector<double> used(la.stack.size(), 0.0);
  double total = 0.0;
  for (std::size_t c = 0; c < p.gr.connections.size(); ++c) {
    const RoutedConnection& conn = p.gr.connections[c];
    const SteinerTree& t = p.forest.trees[static_cast<std::size_t>(conn.tree)];
    const SteinerEdge& e = t.edges[static_cast<std::size_t>(conn.edge)];
    const double len =
        conn.length_dbu(p.gr.grid, t.nodes[static_cast<std::size_t>(e.a)].pos,
                        t.nodes[static_cast<std::size_t>(e.b)].pos);
    used[static_cast<std::size_t>(la.layer_of_connection[c])] += len;
    total += len;
  }
  for (std::size_t l = 1; l < la.stack.size(); ++l) {
    EXPECT_LE(used[l], la.stack[l].capacity_share * total + 1e-6);
  }
}

TEST(LayerAssign, WirelengthPolicyPromotesLongest) {
  const Prep p = prep(73);
  const LayerAssignment la = assign_layers(p.forest, p.gr, LayerPolicy::kWirelength);
  // The single longest connection must sit on a promoted layer (budget of
  // the fast pairs easily covers one connection).
  std::size_t longest = 0;
  double best = -1.0;
  for (std::size_t c = 0; c < p.gr.connections.size(); ++c) {
    const RoutedConnection& conn = p.gr.connections[c];
    const SteinerTree& t = p.forest.trees[static_cast<std::size_t>(conn.tree)];
    const SteinerEdge& e = t.edges[static_cast<std::size_t>(conn.edge)];
    const double len =
        conn.length_dbu(p.gr.grid, t.nodes[static_cast<std::size_t>(e.a)].pos,
                        t.nodes[static_cast<std::size_t>(e.b)].pos);
    if (len > best) {
      best = len;
      longest = c;
    }
  }
  EXPECT_GT(la.layer_of_connection[longest], 0);
}

TEST(LayerAssign, AnyAssignmentImprovesTiming) {
  const Prep p = prep(74);
  const StaResult base = run_sta(p.design, p.forest, &p.gr);
  const LayerAssignment la = assign_layers(p.forest, p.gr, LayerPolicy::kWirelength);
  const StaResult fast = run_sta(p.design, p.forest, &p.gr, {}, &la);
  // Promoting wire to lower-R layers can only reduce arrival times.
  EXPECT_GE(fast.wns, base.wns);
  EXPECT_GE(fast.tns, base.tns);
}

TEST(LayerAssign, TimingDrivenBeatsWirelengthOnWns) {
  // Averaged across seeds: prioritizing critical nets for fast layers should
  // produce equal-or-better WNS than the timing-blind policy.
  double wl_wns = 0.0, td_wns = 0.0;
  for (std::uint64_t seed : {75u, 76u, 77u, 78u}) {
    const Prep p = prep(seed);
    const StaResult base = run_sta(p.design, p.forest, &p.gr);
    const auto crit = connection_criticality(p.design, p.forest, p.gr, base.arrival);
    const LayerAssignment wl = assign_layers(p.forest, p.gr, LayerPolicy::kWirelength);
    const LayerAssignment td =
        assign_layers(p.forest, p.gr, LayerPolicy::kTimingDriven, &crit);
    wl_wns += run_sta(p.design, p.forest, &p.gr, {}, &wl).wns;
    td_wns += run_sta(p.design, p.forest, &p.gr, {}, &td).wns;
  }
  EXPECT_GE(td_wns, wl_wns - 1e-9);
}

TEST(LayerAssign, ViaAccountingMatchesPromotions) {
  const Prep p = prep(79);
  const LayerAssignment la = assign_layers(p.forest, p.gr, LayerPolicy::kWirelength);
  long long promotions = 0;
  for (int l : la.layer_of_connection) promotions += l > 0 ? 1 : 0;
  EXPECT_EQ(la.num_layer_vias, 2 * promotions);
}

TEST(LayerAssign, EmptyInputHandled) {
  SteinerForest empty_forest;
  GlobalRouteResult empty_gr;
  const LayerAssignment la =
      assign_layers(empty_forest, empty_gr, LayerPolicy::kWirelength);
  EXPECT_TRUE(la.layer_of_connection.empty());
  EXPECT_EQ(la.num_layer_vias, 0);
}

}  // namespace
}  // namespace tsteiner
