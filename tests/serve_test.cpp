// tsteiner_serve coverage: frame codec round-trips and strict rejection
// (truncation, oversize, bit flips), schema-v1 request parsing, the session
// LRU (byte-budget eviction, warm re-restore, fingerprint-mismatch
// rejection), and an end-to-end differential test pinning server responses
// bit-for-bit to the direct Flow / IncrementalSignoff API.
#include <gtest/gtest.h>

#include "testutil.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "flow/flow.hpp"
#include "flow/incremental_signoff.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"
#include "serve/client.hpp"
#include "serve/framing.hpp"
#include "serve/ops.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"
#include "tsteiner/refine.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "verify/case_gen.hpp"

namespace tsteiner {
namespace {

using serve::Frame;
using serve::FrameDecoder;
using serve::FrameKind;

std::string temp_path(const char* name) { return testutil::test_tmp_dir() + "/" + name; }

bool bits_eq(double a, double b) { return std::memcmp(&a, &b, sizeof(double)) == 0; }

/// Write a serve snapshot for fuzz case `seed` and return its path.
std::string write_snapshot(std::uint64_t seed, const char* name, bool with_model = false,
                           bool with_steiner = true) {
  const verify::FuzzCase c = verify::make_case(seed, "tiny");
  Design design = c.design;
  const Flow flow(&design);
  BenchmarkSpec spec;
  spec.name = c.params.name;
  spec.target_cells = static_cast<int>(c.num_cells());
  spec.endpoints = static_cast<int>(design.endpoint_pins().size());
  spec.seed = seed;
  GnnConfig cfg;
  cfg.hidden = 6;
  cfg.type_embed = 4;
  cfg.delay_hidden = 8;
  cfg.seed = Rng::mix(seed, 0x90de1);
  const TimingGnn model(cfg, verify::fuzz_library().num_types());
  const std::string path = temp_path(name);
  EXPECT_TRUE(serve::save_session_snapshot(
      spec, design, flow.calibration(), flow.initial_forest(), verify::fuzz_library(),
      with_model ? &model : nullptr,
      with_steiner ? SteinerPredictor::shared_pretrained().get() : nullptr, path));
  return path;
}

// --- framing ----------------------------------------------------------------

TEST(Framing, RoundTripAllKinds) {
  for (const FrameKind kind : {FrameKind::kRequest, FrameKind::kResponse,
                               FrameKind::kProgress, FrameKind::kError}) {
    const Frame in{kind, "{\"v\":1,\"id\":42}"};
    const std::vector<std::uint8_t> bytes = serve::encode_frame(in);
    ASSERT_EQ(bytes.size(), serve::kFrameHeaderBytes + in.payload.size());
    FrameDecoder dec;
    std::vector<Frame> out;
    ASSERT_TRUE(dec.feed(bytes.data(), bytes.size(), &out));
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].kind, kind);
    EXPECT_EQ(out[0].payload, in.payload);
  }
}

TEST(Framing, EmptyPayloadAndByteAtATime) {
  const std::vector<std::uint8_t> a = serve::encode_frame({FrameKind::kRequest, ""});
  const std::vector<std::uint8_t> b =
      serve::encode_frame({FrameKind::kResponse, std::string(10000, 'x')});
  std::vector<std::uint8_t> stream = a;
  stream.insert(stream.end(), b.begin(), b.end());
  FrameDecoder dec;
  std::vector<Frame> out;
  for (const std::uint8_t byte : stream) {
    ASSERT_TRUE(dec.feed(&byte, 1, &out));
  }
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].payload, "");
  EXPECT_EQ(out[1].payload.size(), 10000u);
  EXPECT_EQ(dec.pending_bytes(), 0u);
}

TEST(Framing, TruncationIsPendingNotError) {
  const std::vector<std::uint8_t> bytes =
      serve::encode_frame({FrameKind::kRequest, "{\"v\":1}"});
  FrameDecoder dec;
  std::vector<Frame> out;
  ASSERT_TRUE(dec.feed(bytes.data(), bytes.size() - 3, &out));
  EXPECT_TRUE(out.empty());
  EXPECT_FALSE(dec.poisoned());
  EXPECT_GT(dec.pending_bytes(), 0u);
}

TEST(Framing, BadMagicPoisons) {
  std::vector<std::uint8_t> bytes = serve::encode_frame({FrameKind::kRequest, "{}"});
  bytes[0] = 'X';
  FrameDecoder dec;
  std::vector<Frame> out;
  EXPECT_FALSE(dec.feed(bytes.data(), bytes.size(), &out));
  EXPECT_TRUE(dec.poisoned());
  EXPECT_NE(dec.error().find("magic"), std::string::npos);
  // Poisoned decoders reject even well-formed frames afterward.
  const std::vector<std::uint8_t> good = serve::encode_frame({FrameKind::kRequest, "{}"});
  EXPECT_FALSE(dec.feed(good.data(), good.size(), &out));
  EXPECT_TRUE(out.empty());
}

TEST(Framing, WrongVersionUnknownKindOversizePoison) {
  {
    std::vector<std::uint8_t> bytes = serve::encode_frame({FrameKind::kRequest, "{}"});
    bytes[4] = 99;  // version
    FrameDecoder dec;
    std::vector<Frame> out;
    EXPECT_FALSE(dec.feed(bytes.data(), bytes.size(), &out));
  }
  {
    std::vector<std::uint8_t> bytes = serve::encode_frame({FrameKind::kRequest, "{}"});
    bytes[8] = 77;  // kind
    FrameDecoder dec;
    std::vector<Frame> out;
    EXPECT_FALSE(dec.feed(bytes.data(), bytes.size(), &out));
  }
  {
    // A length above the configured cap must be rejected from the header
    // alone, before any allocation.
    std::vector<std::uint8_t> bytes = serve::encode_frame({FrameKind::kRequest, "{}"});
    const std::uint64_t huge = 1ull << 40;
    std::memcpy(&bytes[12], &huge, sizeof(huge));
    FrameDecoder dec(/*max_payload_bytes=*/1024);
    std::vector<Frame> out;
    EXPECT_FALSE(dec.feed(bytes.data(), bytes.size(), &out));
    EXPECT_NE(dec.error().find("payload"), std::string::npos);
  }
}

TEST(Framing, EveryPayloadBitFlipIsCaught) {
  const Frame in{FrameKind::kResponse, "{\"v\":1,\"id\":7,\"ok\":true}"};
  const std::vector<std::uint8_t> bytes = serve::encode_frame(in);
  for (std::size_t i = serve::kFrameHeaderBytes; i < bytes.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<std::uint8_t> corrupt = bytes;
      corrupt[i] ^= static_cast<std::uint8_t>(1u << bit);
      FrameDecoder dec;
      std::vector<Frame> out;
      EXPECT_FALSE(dec.feed(corrupt.data(), corrupt.size(), &out))
          << "flip at byte " << i << " bit " << bit << " not caught";
      EXPECT_NE(dec.error().find("CRC"), std::string::npos);
    }
  }
}

// --- protocol ---------------------------------------------------------------

TEST(Protocol, RequestRoundTrip) {
  serve::Request in;
  in.type = serve::RequestType::kWhatIf;
  in.id = 99;
  in.session = "s3";
  in.fingerprint = "DEADBEEF";
  in.moves.push_back({5, 1.25, -0.5});
  in.moves.push_back({7, 0.1, 0.2});  // 0.1/0.2 don't round-trip via decimal
  std::string error;
  const auto out = serve::parse_request(serve::encode_request(in), &error);
  ASSERT_TRUE(out.has_value()) << error;
  EXPECT_EQ(out->type, serve::RequestType::kWhatIf);
  EXPECT_EQ(out->id, 99u);
  EXPECT_EQ(out->session, "s3");
  EXPECT_EQ(out->fingerprint, "DEADBEEF");
  ASSERT_EQ(out->moves.size(), 2u);
  EXPECT_EQ(out->moves[1].net, 7);
  // The _bits fields carry exact coordinates across the wire.
  EXPECT_TRUE(bits_eq(out->moves[1].dx, 0.1));
  EXPECT_TRUE(bits_eq(out->moves[1].dy, 0.2));
}

TEST(Protocol, StrictParseRejections) {
  std::string error;
  EXPECT_FALSE(serve::parse_request("not json", &error).has_value());
  EXPECT_FALSE(serve::parse_request("{\"id\":1,\"type\":\"ping\"}", &error).has_value())
      << "missing v must be rejected";
  EXPECT_FALSE(
      serve::parse_request("{\"v\":2,\"id\":1,\"type\":\"ping\"}", &error).has_value())
      << "future schema version must be rejected";
  EXPECT_FALSE(
      serve::parse_request("{\"v\":1,\"id\":1,\"type\":\"frobnicate\"}", &error).has_value());
  EXPECT_FALSE(serve::parse_request("{\"v\":1,\"id\":1,\"type\":\"open\"}", &error)
                   .has_value())
      << "open without a snapshot path must be rejected";
  EXPECT_FALSE(serve::parse_request("{\"v\":1,\"id\":1,\"type\":\"whatif\"}", &error)
                   .has_value())
      << "session ops without session/fingerprint must be rejected";
}

TEST(Protocol, WirelengthRoundTripAndStrictness) {
  // Round trip: pin coordinates survive the wire exactly via _bits.
  serve::Request in;
  in.type = serve::RequestType::kWirelength;
  in.id = 17;
  in.session = "s1";
  in.fingerprint = "F00D";
  in.pin_sets.push_back({{0.1, 0.2}, {3.7, 4.9}});
  in.pin_sets.push_back({{10.0, 20.0}, {1.0 / 3.0, 2.0 / 7.0}, {5.5, -0.25}});
  std::string error;
  const auto out = serve::parse_request(serve::encode_request(in), &error);
  ASSERT_TRUE(out.has_value()) << error;
  EXPECT_EQ(out->type, serve::RequestType::kWirelength);
  ASSERT_EQ(out->pin_sets.size(), 2u);
  ASSERT_EQ(out->pin_sets[0].size(), 2u);
  ASSERT_EQ(out->pin_sets[1].size(), 3u);
  EXPECT_TRUE(bits_eq(out->pin_sets[0][0].x, 0.1));
  EXPECT_TRUE(bits_eq(out->pin_sets[0][0].y, 0.2));
  EXPECT_TRUE(bits_eq(out->pin_sets[1][1].x, 1.0 / 3.0));
  EXPECT_TRUE(bits_eq(out->pin_sets[1][1].y, 2.0 / 7.0));

  // Strict schema: each malformation gets a clean rejection, not a crash.
  const char* kBad[] = {
      // no nets array
      "{\"v\":1,\"id\":1,\"type\":\"wirelength\",\"session\":\"s\",\"fingerprint\":\"F\"}",
      // empty nets array
      "{\"v\":1,\"id\":1,\"type\":\"wirelength\",\"session\":\"s\",\"fingerprint\":\"F\","
      "\"nets\":[]}",
      // net entry is not an object
      "{\"v\":1,\"id\":1,\"type\":\"wirelength\",\"session\":\"s\",\"fingerprint\":\"F\","
      "\"nets\":[42]}",
      // net without pins
      "{\"v\":1,\"id\":1,\"type\":\"wirelength\",\"session\":\"s\",\"fingerprint\":\"F\","
      "\"nets\":[{}]}",
      // fewer than 2 pins
      "{\"v\":1,\"id\":1,\"type\":\"wirelength\",\"session\":\"s\",\"fingerprint\":\"F\","
      "\"nets\":[{\"pins\":[{\"x\":0,\"y\":0}]}]}",
      // pin is not an object
      "{\"v\":1,\"id\":1,\"type\":\"wirelength\",\"session\":\"s\",\"fingerprint\":\"F\","
      "\"nets\":[{\"pins\":[7,8]}]}",
      // pin missing a coordinate
      "{\"v\":1,\"id\":1,\"type\":\"wirelength\",\"session\":\"s\",\"fingerprint\":\"F\","
      "\"nets\":[{\"pins\":[{\"x\":0},{\"x\":1,\"y\":1}]}]}",
      // session ops without session/fingerprint
      "{\"v\":1,\"id\":1,\"type\":\"wirelength\",\"nets\":[{\"pins\":"
      "[{\"x\":0,\"y\":0},{\"x\":1,\"y\":1}]}]}",
  };
  for (const char* payload : kBad) {
    EXPECT_FALSE(serve::parse_request(payload, &error).has_value()) << payload;
  }
}

TEST(Protocol, RefineTopologyFlagRoundTripAndStrictness) {
  serve::Request in;
  in.type = serve::RequestType::kRefine;
  in.id = 21;
  in.session = "s9";
  in.fingerprint = "BEEF";
  in.iterations = 3;
  in.topology = true;
  std::string error;
  const auto on = serve::parse_request(serve::encode_request(in), &error);
  ASSERT_TRUE(on.has_value()) << error;
  EXPECT_TRUE(on->topology);

  // Absent flag parses to the off default (and the encoder omits it, so the
  // off-path wire bytes are unchanged from the pre-topology schema).
  in.topology = false;
  const std::string encoded = serve::encode_request(in);
  EXPECT_EQ(encoded.find("topology"), std::string::npos);
  const auto off = serve::parse_request(encoded, &error);
  ASSERT_TRUE(off.has_value()) << error;
  EXPECT_FALSE(off->topology);

  // Strict parse: a non-boolean topology field is a clean rejection.
  EXPECT_FALSE(serve::parse_request(
                   "{\"v\":1,\"id\":1,\"type\":\"refine\",\"session\":\"s\","
                   "\"fingerprint\":\"F\",\"topology\":1}",
                   &error)
                   .has_value());
  EXPECT_NE(error.find("topology"), std::string::npos) << error;
}

TEST(Protocol, DoubleBitsHexRoundTrip) {
  for (const double v : {0.0, -0.0, 1.0, -1.5, 0.1, 1e-300, 1e300}) {
    double back = 123.0;
    ASSERT_TRUE(serve::double_from_bits_hex(serve::double_bits_hex(v), &back));
    EXPECT_TRUE(bits_eq(v, back));
  }
  double back;
  EXPECT_FALSE(serve::double_from_bits_hex("XYZ", &back));
  EXPECT_FALSE(serve::double_from_bits_hex("3FF", &back));
}

// --- session LRU ------------------------------------------------------------

TEST(SessionManager, EvictionUnderByteBudgetAndWarmRerestore) {
  const std::string snap_a = write_snapshot(11, "a.tsdb");
  const std::string snap_b = write_snapshot(12, "b.tsdb");

  serve::SessionManager::Options opts;
  opts.budget_bytes = 1;  // everything but the MRU entry is over budget
  serve::SessionManager mgr(opts);

  std::string error;
  auto sa = mgr.open(snap_a, &error);
  ASSERT_NE(sa, nullptr) << error;
  const double wl_a = sa->forest.total_wirelength();
  EXPECT_EQ(mgr.stats().loads, 1u);
  EXPECT_EQ(mgr.stats().cached_designs, 1u);  // MRU survives any budget

  auto sb = mgr.open(snap_b, &error);
  ASSERT_NE(sb, nullptr) << error;
  EXPECT_EQ(mgr.stats().loads, 2u);
  EXPECT_GE(mgr.stats().evictions, 1u);
  EXPECT_EQ(mgr.stats().cached_designs, 1u);
  // Eviction never invalidates the live session that pins the design.
  EXPECT_EQ(sa->loaded->path, snap_a);

  // Re-open after eviction: a cold re-restore that must agree exactly with
  // the first restore.
  auto sa2 = mgr.open(snap_a, &error);
  ASSERT_NE(sa2, nullptr) << error;
  EXPECT_EQ(mgr.stats().loads, 3u);
  EXPECT_TRUE(bits_eq(sa2->forest.total_wirelength(), wl_a));
  EXPECT_EQ(sa2->loaded->fingerprint, sa->loaded->fingerprint);
}

TEST(SessionManager, CacheHitSharesTheLoadedDesign) {
  const std::string snap = write_snapshot(13, "c.tsdb");
  serve::SessionManager mgr({});
  std::string error;
  auto s1 = mgr.open(snap, &error);
  ASSERT_NE(s1, nullptr) << error;
  auto s2 = mgr.open(snap, &error);
  ASSERT_NE(s2, nullptr) << error;
  EXPECT_EQ(mgr.stats().loads, 1u);
  EXPECT_EQ(mgr.stats().cache_hits, 1u);
  EXPECT_EQ(s1->loaded.get(), s2->loaded.get());  // shared, not re-restored
  EXPECT_NE(s1->id, s2->id);
}

TEST(SessionManager, FingerprintMismatchRejection) {
  const std::string snap = write_snapshot(14, "d.tsdb");
  serve::SessionManager mgr({});
  std::string error;
  auto s = mgr.open(snap, &error);
  ASSERT_NE(s, nullptr) << error;

  EXPECT_NE(mgr.find(s->id, s->loaded->fingerprint, &error), nullptr);
  EXPECT_EQ(mgr.find(s->id, "00000000", &error), nullptr);
  EXPECT_NE(error.find("fingerprint"), std::string::npos) << error;
  EXPECT_EQ(mgr.find("s999", s->loaded->fingerprint, &error), nullptr);
}

TEST(SessionManager, StaleSnapshotFileIsReloaded) {
  // Rewriting the file under the same path must not serve the cached design.
  const std::string snap = write_snapshot(15, "e.tsdb");
  serve::SessionManager mgr({});
  std::string error;
  auto s1 = mgr.open(snap, &error);
  ASSERT_NE(s1, nullptr) << error;
  const std::string fp1 = s1->loaded->fingerprint;

  const verify::FuzzCase c = verify::make_case(16, "tiny");
  Design design = c.design;
  const Flow flow(&design);
  BenchmarkSpec spec;
  spec.seed = 16;
  ASSERT_TRUE(serve::save_session_snapshot(spec, design, flow.calibration(),
                                           flow.initial_forest(), verify::fuzz_library(),
                                           nullptr, nullptr, snap));
  auto s2 = mgr.open(snap, &error);
  ASSERT_NE(s2, nullptr) << error;
  EXPECT_NE(s2->loaded->fingerprint, fp1);
  EXPECT_EQ(mgr.stats().loads, 2u);
  // The first session still pins its (now stale) design and still validates
  // against the fingerprint it was opened with.
  EXPECT_NE(mgr.find(s1->id, fp1, &error), nullptr);
}

// --- end-to-end server ------------------------------------------------------

struct RawConn {
  int fd = -1;
  FrameDecoder decoder;
  std::vector<Frame> frames;

  explicit RawConn(int port) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd);
      fd = -1;
    }
  }
  ~RawConn() {
    if (fd >= 0) ::close(fd);
  }
  void send(const std::vector<std::uint8_t>& bytes) {
    ASSERT_EQ(::write(fd, bytes.data(), bytes.size()),
              static_cast<ssize_t>(bytes.size()));
  }
  /// Read until one more frame arrives or EOF; returns false on EOF.
  bool read_frame() {
    const std::size_t had = frames.size();
    std::uint8_t buf[4096];
    while (frames.size() == had) {
      const ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n <= 0) return false;
      if (!decoder.feed(buf, static_cast<std::size_t>(n), &frames)) return false;
    }
    return true;
  }
};

TEST(Server, MalformedRequestGetsErrorFrameConnectionSurvives) {
  serve::ServeOptions opts;
  opts.tcp_port = 0;
  serve::Server server(opts);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  RawConn conn(server.bound_tcp_port());
  ASSERT_GE(conn.fd, 0);
  // Well-formed frame, malformed request: clean kError, connection usable.
  conn.send(serve::encode_frame({FrameKind::kRequest, "{\"garbage\":true}"}));
  ASSERT_TRUE(conn.read_frame());
  EXPECT_EQ(conn.frames.back().kind, FrameKind::kError);
  // The same connection still serves a valid ping.
  serve::Request ping;
  ping.type = serve::RequestType::kPing;
  ping.id = 5;
  conn.send(serve::encode_frame({FrameKind::kRequest, serve::encode_request(ping)}));
  ASSERT_TRUE(conn.read_frame());
  EXPECT_EQ(conn.frames.back().kind, FrameKind::kResponse);
  server.stop();
}

TEST(Server, MalformedFrameClosesConnection) {
  serve::ServeOptions opts;
  opts.tcp_port = 0;
  serve::Server server(opts);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  RawConn conn(server.bound_tcp_port());
  ASSERT_GE(conn.fd, 0);
  std::vector<std::uint8_t> garbage(64, 0xAB);
  conn.send(garbage);
  // The server reports the violation once (kError, id 0), then hangs up —
  // framing is lost, the stream cannot be resynchronized.
  ASSERT_TRUE(conn.read_frame());
  EXPECT_EQ(conn.frames.back().kind, FrameKind::kError);
  EXPECT_NE(conn.frames.back().payload.find("malformed frame"), std::string::npos);
  EXPECT_FALSE(conn.read_frame());  // EOF
  server.stop();
}

TEST(Server, ResponsesBitIdenticalToDirectFlow) {
  const std::string snap = write_snapshot(21, "diff.tsdb");

  serve::ServeOptions opts;
  opts.tcp_port = 0;
  serve::Server server(opts);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  serve::ServeClient client;
  ASSERT_TRUE(client.connect_tcp(server.bound_tcp_port(), &error)) << error;
  const auto opened = client.open(snap);
  ASSERT_TRUE(opened.ok) << opened.error;
  const obs::JsonValue* session = opened.body.find_string("session");
  const obs::JsonValue* fingerprint = opened.body.find_string("fingerprint");
  ASSERT_NE(session, nullptr);
  ASSERT_NE(fingerprint, nullptr);

  // Direct side: same snapshot, same moves, direct API.
  auto loaded = serve::load_session_design(snap, FlowOptions{}, &error);
  ASSERT_NE(loaded, nullptr) << error;
  SteinerForest cur = loaded->flow->initial_forest();
  IncrementalSignoff inc(loaded->design.get(), loaded->flow->options());

  Rng rng(2026);
  std::vector<int> nets;
  for (const SteinerTree& tree : cur.trees) {
    if (tree.num_steiner_nodes() > 0) nets.push_back(tree.net);
  }
  ASSERT_FALSE(nets.empty());
  const double dist = static_cast<double>(loaded->design->die().width()) / 20.0;

  for (int round = 0; round < 3; ++round) {
    std::vector<serve::WhatIfMove> moves;
    for (int m = 0; m < 2; ++m) {
      moves.push_back({nets[rng.index(nets.size())], rng.uniform(-dist, dist),
                       rng.uniform(-dist, dist)});
    }
    serve::Request req;
    req.type = serve::RequestType::kWhatIf;
    req.session = session->str;
    req.fingerprint = fingerprint->str;
    req.moves = moves;
    const auto reply = client.call(req);
    ASSERT_TRUE(reply.ok) << reply.error;

    std::vector<int> dirty;
    serve::apply_whatif_moves(&cur, *loaded->design, moves, &dirty);
    const IncrementalSignoff::Result& ref = inc.update(cur, dirty);

    double got = 0.0;
    ASSERT_TRUE(serve::read_double_field(reply.body, "wns_ns", &got));
    EXPECT_TRUE(bits_eq(got, ref.metrics.wns_ns)) << "round " << round;
    ASSERT_TRUE(serve::read_double_field(reply.body, "tns_ns", &got));
    EXPECT_TRUE(bits_eq(got, ref.metrics.tns_ns)) << "round " << round;
    ASSERT_TRUE(serve::read_double_field(reply.body, "wirelength_dbu", &got));
    EXPECT_TRUE(bits_eq(got, ref.metrics.wirelength_dbu)) << "round " << round;
  }

  // Full sign-off request vs the golden full pipeline.
  serve::Request signoff;
  signoff.type = serve::RequestType::kSignoff;
  signoff.session = session->str;
  signoff.fingerprint = fingerprint->str;
  const auto reply = client.call(signoff);
  ASSERT_TRUE(reply.ok) << reply.error;
  const FlowResult golden = loaded->flow->run_signoff(cur);
  double got = 0.0;
  ASSERT_TRUE(serve::read_double_field(reply.body, "wns_ns", &got));
  EXPECT_TRUE(bits_eq(got, golden.metrics.wns_ns));
  ASSERT_TRUE(serve::read_double_field(reply.body, "wirelength_dbu", &got));
  EXPECT_TRUE(bits_eq(got, golden.metrics.wirelength_dbu));

  client.close_session(session->str);
  server.stop();
}

/// Deterministic mix of small (exact-fallback) and large (predicted) nets
/// for the wirelength op, driver first in each set.
std::vector<std::vector<PointF>> wirelength_pin_sets() {
  Rng rng(77);
  std::vector<std::vector<PointF>> sets;
  for (const int k : {2, 3, 4, 6, 9, 12}) {
    std::vector<PointF> pins;
    for (int i = 0; i < k; ++i) {
      pins.push_back({rng.uniform(0.0, 5000.0), rng.uniform(0.0, 5000.0)});
    }
    sets.push_back(std::move(pins));
  }
  return sets;
}

TEST(Server, WirelengthBitIdenticalToDirectEstimate) {
  const std::string snap = write_snapshot(31, "wl.tsdb");

  serve::ServeOptions opts;
  opts.tcp_port = 0;
  serve::Server server(opts);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  serve::ServeClient client;
  ASSERT_TRUE(client.connect_tcp(server.bound_tcp_port(), &error)) << error;
  const auto opened = client.open(snap);
  ASSERT_TRUE(opened.ok) << opened.error;
  const obs::JsonValue* session = opened.body.find_string("session");
  const obs::JsonValue* fingerprint = opened.body.find_string("fingerprint");
  ASSERT_NE(session, nullptr);
  ASSERT_NE(fingerprint, nullptr);

  const std::vector<std::vector<PointF>> pin_sets = wirelength_pin_sets();
  const auto reply = client.wirelength(session->str, fingerprint->str, pin_sets);
  ASSERT_TRUE(reply.ok) << reply.error;

  // Direct side: same snapshot, same batch options as the server handler.
  auto loaded = serve::load_session_design(snap, FlowOptions{}, &error);
  ASSERT_NE(loaded, nullptr) << error;
  ASSERT_NE(loaded->steiner_model, nullptr);
  const BatchBuildOptions batch =
      serve::wirelength_batch_options(loaded->flow->options());
  BatchBuildStats stats;
  std::vector<std::uint8_t> used_fallback;
  const std::vector<SteinerTree> trees = build_batched_trees(
      pin_sets, *loaded->steiner_model, batch, &stats, &used_fallback);
  const std::vector<double> wls =
      estimate_wirelengths(pin_sets, *loaded->steiner_model, batch);
  ASSERT_EQ(trees.size(), pin_sets.size());
  ASSERT_EQ(wls.size(), pin_sets.size());

  const obs::JsonValue* nets = reply.body.find_array("nets");
  ASSERT_NE(nets, nullptr);
  ASSERT_EQ(nets->array.size(), pin_sets.size());
  for (std::size_t i = 0; i < pin_sets.size(); ++i) {
    const obs::JsonValue& entry = nets->array[i];
    double wl = 0.0;
    ASSERT_TRUE(serve::read_double_field(entry, "wl", &wl)) << "net " << i;
    EXPECT_TRUE(bits_eq(wl, trees[i].wirelength())) << "net " << i;
    EXPECT_TRUE(bits_eq(wl, wls[i])) << "net " << i;
    const obs::JsonValue* fb = entry.find("fallback");
    ASSERT_NE(fb, nullptr);
    ASSERT_TRUE(fb->is_bool());
    EXPECT_EQ(fb->boolean, used_fallback[i] != 0) << "net " << i;
  }
  // The ≤4-pin nets must have taken the exact path.
  for (std::size_t i = 0; i < pin_sets.size(); ++i) {
    if (pin_sets[i].size() <= 4) {
      EXPECT_TRUE(nets->array[i].find("fallback")->boolean) << "net " << i;
    }
  }
  double got = 0.0;
  ASSERT_TRUE(serve::read_double_field(reply.body, "num_nets", &got));
  EXPECT_EQ(static_cast<std::size_t>(got), pin_sets.size());
  ASSERT_TRUE(serve::read_double_field(reply.body, "num_fallback", &got));
  EXPECT_EQ(static_cast<std::size_t>(got), stats.num_fallback());

  client.close_session(session->str);
  server.stop();
}

TEST(Server, WirelengthWithoutPredictorIsCleanError) {
  const std::string snap =
      write_snapshot(32, "nosteiner.tsdb", /*with_model=*/false, /*with_steiner=*/false);

  serve::ServeOptions opts;
  opts.tcp_port = 0;
  serve::Server server(opts);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  serve::ServeClient client;
  ASSERT_TRUE(client.connect_tcp(server.bound_tcp_port(), &error)) << error;
  const auto opened = client.open(snap);
  ASSERT_TRUE(opened.ok) << opened.error;
  const obs::JsonValue* session = opened.body.find_string("session");
  const obs::JsonValue* fingerprint = opened.body.find_string("fingerprint");
  ASSERT_NE(session, nullptr);
  ASSERT_NE(fingerprint, nullptr);

  const auto reply =
      client.wirelength(session->str, fingerprint->str, wirelength_pin_sets());
  EXPECT_FALSE(reply.ok);
  EXPECT_NE(reply.error.find("embeds no steiner predictor"), std::string::npos)
      << reply.error;

  // The error is per-request: the same connection and session stay usable.
  EXPECT_TRUE(client.ping().ok);
  serve::Request signoff;
  signoff.type = serve::RequestType::kSignoff;
  signoff.session = session->str;
  signoff.fingerprint = fingerprint->str;
  EXPECT_TRUE(client.call(signoff).ok);

  client.close_session(session->str);
  server.stop();
}

TEST(Server, RefineBitIdenticalToDirectLoopIncludingCommittedCoords) {
  const std::string snap = write_snapshot(22, "refine.tsdb", /*with_model=*/true);

  serve::ServeOptions opts;
  opts.tcp_port = 0;
  serve::Server server(opts);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  serve::ServeClient client;
  ASSERT_TRUE(client.connect_tcp(server.bound_tcp_port(), &error)) << error;
  const auto opened = client.open(snap);
  ASSERT_TRUE(opened.ok) << opened.error;
  const obs::JsonValue* session = opened.body.find_string("session");
  const obs::JsonValue* fingerprint = opened.body.find_string("fingerprint");
  ASSERT_NE(session, nullptr);
  ASSERT_NE(fingerprint, nullptr);
  const obs::JsonValue* has_model = opened.body.find("has_model");
  ASSERT_NE(has_model, nullptr);
  EXPECT_TRUE(has_model->is_bool() && has_model->boolean);

  serve::Request refine;
  refine.type = serve::RequestType::kRefine;
  refine.session = session->str;
  refine.fingerprint = fingerprint->str;
  refine.iterations = 4;
  refine.commit = true;
  const auto reply = client.call(refine);
  ASSERT_TRUE(reply.ok) << reply.error;
  EXPECT_EQ(reply.progress.size(), static_cast<std::size_t>(reply.body.number_or(
                                       "iterations", -1.0)))
      << "one progress frame per refine iteration";

  // Direct side: restore the same snapshot (model included) and run the
  // same refinement loop through the plain API.
  auto loaded = serve::load_session_design(snap, FlowOptions{}, &error);
  ASSERT_NE(loaded, nullptr) << error;
  ASSERT_NE(loaded->model, nullptr);
  RefineOptions ropts;
  ropts.gcell_size = loaded->flow->options().router.gcell_size;
  ropts.max_iterations = 4;
  const RefineResult want = refine_steiner_points(
      *loaded->design, loaded->flow->initial_forest(), *loaded->model, ropts);

  double got = 0.0;
  ASSERT_TRUE(serve::read_double_field(reply.body, "init_wns_ns", &got));
  EXPECT_TRUE(bits_eq(got, want.init_wns));
  ASSERT_TRUE(serve::read_double_field(reply.body, "best_wns_ns", &got));
  EXPECT_TRUE(bits_eq(got, want.best_wns));
  ASSERT_TRUE(serve::read_double_field(reply.body, "best_tns_ns", &got));
  EXPECT_TRUE(bits_eq(got, want.best_tns));

  // The committed working forest must carry the refined coordinates: a
  // sign-off through the session must match the golden pipeline on the
  // direct loop's refined forest bit for bit (wirelength is a function of
  // every coordinate, WNS of every arrival — a single diverging Steiner
  // point fails this).
  serve::Request signoff;
  signoff.type = serve::RequestType::kSignoff;
  signoff.session = session->str;
  signoff.fingerprint = fingerprint->str;
  const auto signoff_reply = client.call(signoff);
  ASSERT_TRUE(signoff_reply.ok) << signoff_reply.error;
  const FlowResult golden = loaded->flow->run_signoff(want.forest);
  ASSERT_TRUE(serve::read_double_field(signoff_reply.body, "wns_ns", &got));
  EXPECT_TRUE(bits_eq(got, golden.metrics.wns_ns));
  ASSERT_TRUE(serve::read_double_field(signoff_reply.body, "tns_ns", &got));
  EXPECT_TRUE(bits_eq(got, golden.metrics.tns_ns));
  ASSERT_TRUE(serve::read_double_field(signoff_reply.body, "wirelength_dbu", &got));
  EXPECT_TRUE(bits_eq(got, golden.metrics.wirelength_dbu));

  client.close_session(session->str);
  server.stop();
}

TEST(Server, TopologyRefineBitIdenticalAndEditedForestSnapshotRoundTrips) {
  const std::string snap = write_snapshot(23, "refine_topo.tsdb", /*with_model=*/true);

  serve::ServeOptions opts;
  opts.tcp_port = 0;
  serve::Server server(opts);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  serve::ServeClient client;
  ASSERT_TRUE(client.connect_tcp(server.bound_tcp_port(), &error)) << error;
  const auto opened = client.open(snap);
  ASSERT_TRUE(opened.ok) << opened.error;
  const obs::JsonValue* session = opened.body.find_string("session");
  const obs::JsonValue* fingerprint = opened.body.find_string("fingerprint");
  ASSERT_NE(session, nullptr);
  ASSERT_NE(fingerprint, nullptr);

  serve::Request refine;
  refine.type = serve::RequestType::kRefine;
  refine.session = session->str;
  refine.fingerprint = fingerprint->str;
  refine.iterations = 3;
  refine.commit = true;
  refine.topology = true;
  const auto reply = client.call(refine);
  ASSERT_TRUE(reply.ok) << reply.error;
  const obs::JsonValue* topo_field = reply.body.find("topology");
  ASSERT_NE(topo_field, nullptr);
  EXPECT_TRUE(topo_field->is_bool() && topo_field->boolean);

  // Direct side replicates handle_refine's topology wiring exactly: a fresh
  // request-local IncrementalSignoff for the episodic reward and the flow's
  // full sign-off as the keep-best anchor.
  auto loaded = serve::load_session_design(snap, FlowOptions{}, &error);
  ASSERT_NE(loaded, nullptr) << error;
  ASSERT_NE(loaded->model, nullptr);
  RefineOptions ropts;
  ropts.gcell_size = loaded->flow->options().router.gcell_size;
  ropts.max_iterations = 3;
  ropts.topology.enabled = true;
  IncrementalSignoff episodic(loaded->design.get(), loaded->flow->options());
  ropts.topology.episodic_signoff = [&](const SteinerForest& forest,
                                        const std::vector<int>& dirty) -> SignoffProbeResult {
    const IncrementalSignoff::Result& r = episodic.update(forest, dirty);
    return {r.metrics.wns_ns, r.metrics.tns_ns, r.incremental};
  };
  ropts.topology.full_signoff = [&](const SteinerForest& forest) -> SignoffProbeResult {
    const FlowResult r = loaded->flow->run_signoff(forest);
    return {r.metrics.wns_ns, r.metrics.tns_ns, false};
  };
  const RefineResult want = refine_steiner_points(
      *loaded->design, loaded->flow->initial_forest(), *loaded->model, ropts);

  double got = 0.0;
  ASSERT_TRUE(serve::read_double_field(reply.body, "init_wns_ns", &got));
  EXPECT_TRUE(bits_eq(got, want.init_wns));
  ASSERT_TRUE(serve::read_double_field(reply.body, "best_wns_ns", &got));
  EXPECT_TRUE(bits_eq(got, want.best_wns));
  ASSERT_TRUE(serve::read_double_field(reply.body, "best_tns_ns", &got));
  EXPECT_TRUE(bits_eq(got, want.best_tns));

  // The committed forest (possibly re-shaped by accepted edits) must drive
  // the session's sign-off to the direct result's golden numbers.
  serve::Request signoff;
  signoff.type = serve::RequestType::kSignoff;
  signoff.session = session->str;
  signoff.fingerprint = fingerprint->str;
  const auto signoff_reply = client.call(signoff);
  ASSERT_TRUE(signoff_reply.ok) << signoff_reply.error;
  const FlowResult golden = loaded->flow->run_signoff(want.forest);
  ASSERT_TRUE(serve::read_double_field(signoff_reply.body, "wns_ns", &got));
  EXPECT_TRUE(bits_eq(got, golden.metrics.wns_ns));
  ASSERT_TRUE(serve::read_double_field(signoff_reply.body, "tns_ns", &got));
  EXPECT_TRUE(bits_eq(got, golden.metrics.tns_ns));
  ASSERT_TRUE(serve::read_double_field(signoff_reply.body, "wirelength_dbu", &got));
  EXPECT_TRUE(bits_eq(got, golden.metrics.wirelength_dbu));

  // Edited forests round-trip through the TSteinerDB snapshot codec: save a
  // snapshot of the refined (topology-edited) forest, restore it, and
  // compare every node and edge bit for bit.
  const verify::FuzzCase c = verify::make_case(23, "tiny");
  Design design = c.design;
  const Flow flow(&design);
  BenchmarkSpec spec;
  spec.name = c.params.name;
  spec.target_cells = static_cast<int>(c.num_cells());
  spec.endpoints = static_cast<int>(design.endpoint_pins().size());
  spec.seed = 23;
  const std::string edited_snap = temp_path("refine_topo_edited.tsdb");
  ASSERT_TRUE(serve::save_session_snapshot(spec, design, flow.calibration(), want.forest,
                                           verify::fuzz_library(), loaded->model.get(),
                                           nullptr, edited_snap));
  auto restored = serve::load_session_design(edited_snap, FlowOptions{}, &error);
  ASSERT_NE(restored, nullptr) << error;
  const SteinerForest& back = restored->flow->initial_forest();
  ASSERT_EQ(back.trees.size(), want.forest.trees.size());
  for (std::size_t t = 0; t < back.trees.size(); ++t) {
    const SteinerTree& a = want.forest.trees[t];
    const SteinerTree& b = back.trees[t];
    ASSERT_EQ(a.nodes.size(), b.nodes.size()) << "tree " << t;
    ASSERT_EQ(a.edges.size(), b.edges.size()) << "tree " << t;
    EXPECT_EQ(a.driver_node, b.driver_node) << "tree " << t;
    for (std::size_t n = 0; n < a.nodes.size(); ++n) {
      EXPECT_TRUE(bits_eq(a.nodes[n].pos.x, b.nodes[n].pos.x)) << "tree " << t;
      EXPECT_TRUE(bits_eq(a.nodes[n].pos.y, b.nodes[n].pos.y)) << "tree " << t;
      EXPECT_EQ(a.nodes[n].pin, b.nodes[n].pin) << "tree " << t;
    }
    for (std::size_t e = 0; e < a.edges.size(); ++e) {
      EXPECT_EQ(a.edges[e].a, b.edges[e].a) << "tree " << t;
      EXPECT_EQ(a.edges[e].b, b.edges[e].b) << "tree " << t;
    }
  }

  client.close_session(session->str);
  server.stop();
}

TEST(Server, GracefulDrainFinishesQueuedRequests) {
  serve::ServeOptions opts;
  opts.tcp_port = 0;
  serve::Server server(opts);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  serve::ServeClient client;
  ASSERT_TRUE(client.connect_tcp(server.bound_tcp_port(), &error)) << error;
  const auto reply = client.shutdown_server();  // responds, then drains
  EXPECT_TRUE(reply.ok) << reply.error;
  server.stop();
  EXPECT_TRUE(server.draining());
  // A fresh server on the same object lifecycle is out of scope; a new
  // connection attempt must fail once the listener is gone.
  serve::ServeClient late;
  EXPECT_FALSE(late.connect_tcp(server.bound_tcp_port(), &error));
}

// --- serve telemetry --------------------------------------------------------

TEST(Protocol, TraceTagRoundTripAndStrictness) {
  serve::Request in;
  in.type = serve::RequestType::kPing;
  in.id = 4;
  in.trace = "abc-123";
  std::string error;
  const auto tagged = serve::parse_request(serve::encode_request(in), &error);
  ASSERT_TRUE(tagged.has_value()) << error;
  EXPECT_EQ(tagged->trace, "abc-123");

  // Absent tag: the encoder omits the field entirely, so untagged requests
  // are byte-identical to the pre-telemetry wire format.
  in.trace.clear();
  const std::string encoded = serve::encode_request(in);
  EXPECT_EQ(encoded.find("trace"), std::string::npos);
  const auto untagged = serve::parse_request(encoded, &error);
  ASSERT_TRUE(untagged.has_value()) << error;
  EXPECT_TRUE(untagged->trace.empty());

  // Strict parse: wrong type, empty string, and oversize are rejected.
  EXPECT_FALSE(
      serve::parse_request("{\"v\":1,\"id\":1,\"type\":\"ping\",\"trace\":7}", &error)
          .has_value());
  EXPECT_NE(error.find("trace"), std::string::npos) << error;
  EXPECT_FALSE(
      serve::parse_request("{\"v\":1,\"id\":1,\"type\":\"ping\",\"trace\":\"\"}", &error)
          .has_value());
  const std::string oversize(200, 'x');
  EXPECT_FALSE(serve::parse_request(
                   "{\"v\":1,\"id\":1,\"type\":\"ping\",\"trace\":\"" + oversize + "\"}",
                   &error)
                   .has_value());
  EXPECT_NE(error.find("128"), std::string::npos) << error;
}

TEST(Protocol, MetricsOpRoundTripNeedsNoSession) {
  serve::Request in;
  in.type = serve::RequestType::kMetrics;
  in.id = 6;
  std::string error;
  const auto out = serve::parse_request(serve::encode_request(in), &error);
  ASSERT_TRUE(out.has_value()) << error;
  EXPECT_EQ(out->type, serve::RequestType::kMetrics);
  EXPECT_TRUE(
      serve::parse_request("{\"v\":1,\"id\":1,\"type\":\"metrics\"}", &error).has_value())
      << error;
}

TEST(Server, EveryResponseEchoesTheServerRequestId) {
  serve::ServeOptions opts;
  opts.tcp_port = 0;
  serve::Server server(opts);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  serve::ServeClient client;
  ASSERT_TRUE(client.connect_tcp(server.bound_tcp_port(), &error)) << error;
  // Sequential traffic on a fresh server: uids count up from 1 regardless of
  // the obs mode (the echo must not depend on instrumentation).
  const auto first = client.ping();
  ASSERT_TRUE(first.ok) << first.error;
  EXPECT_EQ(first.body.number_or("req", 0.0), 1.0);
  const auto second = client.stats();
  ASSERT_TRUE(second.ok) << second.error;
  EXPECT_EQ(second.body.number_or("req", 0.0), 2.0);
  // Post-parse errors echo it too (the request was assigned a uid).
  serve::Request bad;
  bad.type = serve::RequestType::kSta;
  bad.session = "nope";
  bad.fingerprint = "FFFFFFFF";
  const auto failed = client.call(bad);
  EXPECT_FALSE(failed.ok);
  EXPECT_EQ(failed.body.number_or("req", 0.0), 3.0);
  server.stop();
}

TEST(Server, MetricsOpReturnsSchemaConsistentSnapshot) {
  serve::ServeOptions opts;
  opts.tcp_port = 0;
  serve::Server server(opts);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  serve::ServeClient client;
  ASSERT_TRUE(client.connect_tcp(server.bound_tcp_port(), &error)) << error;
  const auto reply = client.metrics();
  ASSERT_TRUE(reply.ok) << reply.error;
  const obs::JsonValue* enabled = reply.body.find("metrics_enabled");
  ASSERT_NE(enabled, nullptr);
  EXPECT_TRUE(enabled->is_bool());
  const obs::JsonValue* metrics = reply.body.find_object("metrics");
  ASSERT_NE(metrics, nullptr);
  ASSERT_NE(metrics->find_object("counters"), nullptr);
  ASSERT_NE(metrics->find_object("gauges"), nullptr);
  const obs::JsonValue* hists = metrics->find_object("histograms");
  ASSERT_NE(hists, nullptr);
  // Eager registration: the per-op latency histograms exist (zero-count)
  // before any traffic, so the snapshot layout is traffic-independent.
  const obs::JsonValue* ping_hist = hists->find_object("serve.latency_ms.ping");
  ASSERT_NE(ping_hist, nullptr);
  const obs::JsonValue* edges = ping_hist->find_array("edges");
  ASSERT_NE(edges, nullptr);
  const obs::JsonValue* buckets = ping_hist->find_array("buckets");
  ASSERT_NE(buckets, nullptr);
  EXPECT_EQ(edges->array.size(), buckets->array.size() + 1);
  ASSERT_NE(hists->find_object("serve.queue_wait_ms.metrics"), nullptr);
  server.stop();
}

/// Minimal span view for the serve-trace tests (async "b"/"e" events are
/// validated separately; only "X" spans participate in lane nesting).
struct TestSpan {
  std::string name, cat;
  double ts = 0.0, dur = 0.0;
  long long tid = 0;
  double req = 0.0;
};

void collect_serve_trace(const std::string& path, std::vector<TestSpan>* spans,
                         int* async_begins, int* async_ends) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream text;
  text << in.rdbuf();
  std::string error;
  const auto doc = obs::parse_json(text.str(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  const obs::JsonValue* events = doc->find_array("traceEvents");
  ASSERT_NE(events, nullptr);
  for (const obs::JsonValue& e : events->array) {
    const obs::JsonValue* ph = e.find_string("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->str == "M") continue;
    if (ph->str == "b" || ph->str == "e") {
      ASSERT_NE(e.find_string("id"), nullptr);
      (ph->str == "b" ? *async_begins : *async_ends) += 1;
      continue;
    }
    ASSERT_EQ(ph->str, "X");
    const obs::JsonValue* cat = e.find_string("cat");
    const obs::JsonValue* args = e.find_object("args");
    const obs::JsonValue* req =
        args != nullptr ? args->find_number("req") : nullptr;
    spans->push_back({e.find_string("name")->str, cat != nullptr ? cat->str : "",
                      e.find_number("ts")->number, e.find_number("dur")->number,
                      static_cast<long long>(e.find_number("tid")->number),
                      req != nullptr ? req->number : 0.0});
  }
}

void run_serve_trace_workload(int width) {
  const std::string snap =
      write_snapshot(31 + static_cast<std::uint64_t>(width), "trace_wl.tsdb");
  const std::string path =
      temp_path(("serve_trace_w" + std::to_string(width) + ".json").c_str());
  set_parallel_threads(width);
  obs::reset_trace();
  obs::enable_trace(path);
  {
    serve::ServeOptions opts;
    opts.tcp_port = 0;
    serve::Server server(opts);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;
    serve::ServeClient client;
    ASSERT_TRUE(client.connect_tcp(server.bound_tcp_port(), &error)) << error;
    ASSERT_TRUE(client.ping().ok);
    const auto opened = client.open(snap);
    ASSERT_TRUE(opened.ok) << opened.error;
    serve::Request sta;
    sta.type = serve::RequestType::kSta;
    sta.session = opened.body.find_string("session")->str;
    sta.fingerprint = opened.body.find_string("fingerprint")->str;
    sta.trace = "tag-w" + std::to_string(width);
    ASSERT_TRUE(client.call(sta).ok);
    ASSERT_TRUE(client.close_session(sta.session).ok);
    server.stop();
  }
  obs::disable_trace();
  set_parallel_threads(0);

  std::vector<TestSpan> spans;
  int async_begins = 0, async_ends = 0;
  ASSERT_NO_FATAL_FAILURE(collect_serve_trace(path, &spans, &async_begins, &async_ends));
  EXPECT_EQ(async_begins, 4);  // one queue-wait pair per request
  EXPECT_EQ(async_ends, 4);

  std::size_t serve_count = 0, handle_count = 0;
  bool tagged_sta = false, joined_sta = false;
  for (const TestSpan& s : spans) {
    if (s.cat != "serve") continue;
    ++serve_count;
    if (s.name == "serve.dispatch_batch") continue;
    EXPECT_GE(s.req, 1.0) << s.name << " lacks a request id";
    if (s.name.rfind("serve.handle.", 0) == 0) ++handle_count;
    if (s.name == "serve.handle.sta") {
      tagged_sta = true;
      // Request-id join: the sta handler's span encloses flow/sta work on
      // the same lane.
      for (const TestSpan& inner : spans) {
        if (inner.cat != "serve" && inner.tid == s.tid && inner.ts >= s.ts - 0.002 &&
            inner.ts + inner.dur <= s.ts + s.dur + 0.002) {
          joined_sta = true;
        }
      }
    }
  }
  EXPECT_GE(serve_count, 12u);  // 4 requests x (decode/handle/encode/write)
  EXPECT_EQ(handle_count, 4u);
  EXPECT_TRUE(tagged_sta);
  EXPECT_TRUE(joined_sta);

  // Scoped spans must still nest per lane with async queue waits excluded.
  std::stable_sort(spans.begin(), spans.end(), [](const TestSpan& a, const TestSpan& b) {
    if (a.tid != b.tid) return a.tid < b.tid;
    if (a.ts != b.ts) return a.ts < b.ts;
    return a.dur > b.dur;
  });
  std::vector<TestSpan> stack;
  long long lane = -1;
  const double slop = 0.002;
  for (const TestSpan& s : spans) {
    if (s.tid != lane) {
      lane = s.tid;
      stack.clear();
    }
    while (!stack.empty() && s.ts >= stack.back().ts + stack.back().dur - slop) {
      stack.pop_back();
    }
    if (!stack.empty()) {
      EXPECT_LE(s.ts + s.dur, stack.back().ts + stack.back().dur + slop)
          << s.name << " does not nest inside " << stack.back().name;
    }
    stack.push_back(s);
  }
  obs::reset_trace();
}

TEST(Server, ServeSpansNestAndCarryRequestIdsAtWidthOne) {
  ASSERT_NO_FATAL_FAILURE(run_serve_trace_workload(1));
}

TEST(Server, ServeSpansNestAndCarryRequestIdsAtWidthFour) {
  ASSERT_NO_FATAL_FAILURE(run_serve_trace_workload(4));
}

}  // namespace
}  // namespace tsteiner
