// Exit-code contract of the tsteiner_trace CLI: 0 = artifact valid, 1 =
// unreadable / malformed / invariant-violating data, 2 = usage error. The
// binary path is injected by CMake as TSTEINER_TRACE_TOOL. Artifacts are
// produced in-process through the same obs writers the flow uses, so the
// tool is tested against real output, not hand-written fixtures.
#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdlib>
#include <fstream>
#include <string>

#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "testutil.hpp"

namespace tsteiner {
namespace {

int run_tool(const std::string& args) {
  const std::string cmd =
      std::string(TSTEINER_TRACE_TOOL) + " " + args + " >/dev/null 2>&1";
  const int status = std::system(cmd.c_str());
  EXPECT_TRUE(WIFEXITED(status)) << cmd;
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

/// A real trace file: nested spans recorded by the production tracer.
std::string make_trace(const std::string& dir) {
  const std::string path = dir + "/trace.json";
  obs::reset_trace();
  obs::enable_trace(path);
  {
    TS_TRACE_SPAN("outer");
    { TS_TRACE_SPAN("inner"); }
    { TS_TRACE_SPAN_CAT("inner2", "test"); }
  }
  obs::disable_trace();
  obs::reset_trace();
  return path;
}

obs::RefineIterationRecord make_iter(int i, double best_wns) {
  obs::RefineIterationRecord rec;
  rec.iter = i;
  rec.wns = best_wns - 0.1;
  rec.tns = -5.0;
  rec.best_wns = best_wns;
  rec.best_tns = -5.0;
  rec.accepted = true;
  rec.theta = 0.5;
  rec.grad_norm = 1.0;
  rec.max_move = 2.0;
  rec.lambda_w = -200.0;
  rec.lambda_t = -2.0;
  rec.wall_s = 0.001;
  return rec;
}

/// A real run report: phases + one refine run with monotone keep-best.
std::string make_report(const std::string& dir, const std::string& file,
                        double wns0, double wns1) {
  const std::string path = dir + "/" + file;
  obs::RunReport report;
  report.set_option("suite_options", "scale=0.1");
  PhaseStat stat;
  stat.wall_s = 0.5;
  stat.busy_s = 1.0;
  report.add_phase("flow.global_route", stat);
  obs::RefineRunRecord run;
  run.design = "d1";
  run.iterations = 2;
  run.init_wns = wns0 - 0.1;
  run.init_tns = -5.0;
  run.best_wns = wns1;
  run.best_tns = -5.0;
  run.theta = 0.5;
  run.iters.push_back(make_iter(0, wns0));
  run.iters.push_back(make_iter(1, wns1));
  report.add_refine(run);
  EXPECT_TRUE(report.write(path));
  return path;
}

/// A real JSONL stream through the production per-line writer.
std::string make_jsonl(const std::string& dir, double wns0, double wns1) {
  const std::string path = dir + "/iters.jsonl";
  obs::set_iteration_log_path(path);
  obs::log_refine_iteration("d1", make_iter(0, wns0));
  obs::log_refine_iteration("d1", make_iter(1, wns1));
  obs::set_iteration_log_path("");
  return path;
}

TEST(TraceTool, VerifyAndSummarizeSucceedOnValidArtifacts) {
  const std::string dir = testutil::test_tmp_dir();
  const std::string trace = make_trace(dir);
  const std::string report = make_report(dir, "run.json", -1.2, -1.0);
  const std::string jsonl = make_jsonl(dir, -1.2, -1.0);
  EXPECT_EQ(run_tool("verify " + trace), 0);
  EXPECT_EQ(run_tool("summarize " + trace), 0);
  EXPECT_EQ(run_tool("verify " + report), 0);
  EXPECT_EQ(run_tool("summarize " + report), 0);
  EXPECT_EQ(run_tool("verify " + jsonl), 0);
  EXPECT_EQ(run_tool("summarize " + jsonl), 0);
}

TEST(TraceTool, TruncatedTraceFails) {
  const std::string dir = testutil::test_tmp_dir();
  const std::string trace = make_trace(dir);
  std::ifstream in(trace, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  ASSERT_GT(bytes.size(), 20u);
  const std::string cut = dir + "/cut.json";
  std::ofstream(cut, std::ios::binary) << bytes.substr(0, bytes.size() - 10);
  EXPECT_EQ(run_tool("verify " + cut), 1);
}

TEST(TraceTool, GarbageAndMissingFilesFail) {
  const std::string dir = testutil::test_tmp_dir();
  const std::string garbage = dir + "/garbage.json";
  std::ofstream(garbage) << "this is not json\n";
  EXPECT_EQ(run_tool("verify " + garbage), 1);
  EXPECT_EQ(run_tool("summarize " + garbage), 1);
  EXPECT_EQ(run_tool("verify " + dir + "/does_not_exist.json"), 1);
}

TEST(TraceTool, NonMonotoneKeepBestFailsVerify) {
  const std::string dir = testutil::test_tmp_dir();
  // best_wns regressing from -1.0 to -1.5 violates the keep-best invariant
  // both in the JSONL stream and inside the report's embedded iterations.
  const std::string jsonl = make_jsonl(dir, -1.0, -1.5);
  EXPECT_EQ(run_tool("verify " + jsonl), 1);
  const std::string report = make_report(dir, "bad.json", -1.0, -1.5);
  EXPECT_EQ(run_tool("verify " + report), 1);
}

TEST(TraceTool, SignoffProbeFieldsVerify) {
  const std::string dir = testutil::test_tmp_dir();
  const std::string path = dir + "/signoff_iters.jsonl";
  obs::set_iteration_log_path(path);
  obs::log_refine_iteration("d1", make_iter(0, -1.2));
  obs::RefineIterationRecord probed = make_iter(1, -1.1);
  probed.has_signoff = true;
  probed.signoff_wns = -1.3;
  probed.signoff_tns = -40.0;
  probed.signoff_dirty_frac = 0.04;
  probed.signoff_incremental = true;
  obs::log_refine_iteration("d1", probed);
  obs::set_iteration_log_path("");
  EXPECT_EQ(run_tool("verify " + path), 0);

  // An out-of-range dirty fraction must fail verification.
  std::ofstream bad(dir + "/bad_signoff.jsonl");
  bad << "{\"design\":\"d1\",\"iter\":0,\"wns\":-1,\"tns\":-1,\"best_wns\":-1,"
         "\"best_tns\":-1,\"accept\":true,\"theta\":0.5,\"grad_norm\":1,"
         "\"max_move\":1,\"lambda_w\":-200,\"lambda_t\":-2,\"wall_s\":0.001,"
         "\"signoff_wns\":-1,\"signoff_tns\":-1,\"signoff_dirty_frac\":1.5,"
         "\"signoff_incremental\":true}\n";
  bad.close();
  EXPECT_EQ(run_tool("verify " + dir + "/bad_signoff.jsonl"), 1);
}

TEST(TraceTool, DiffComparesTwoReports) {
  const std::string dir = testutil::test_tmp_dir();
  const std::string a = make_report(dir, "a.json", -1.2, -1.0);
  const std::string b = make_report(dir, "b.json", -1.4, -1.1);
  EXPECT_EQ(run_tool("diff " + a + " " + b), 0);
  // diff requires run reports on both sides.
  const std::string trace = make_trace(dir);
  EXPECT_EQ(run_tool("diff " + a + " " + trace), 1);
}

TEST(TraceTool, UsageErrorsExitTwo) {
  const std::string dir = testutil::test_tmp_dir();
  const std::string trace = make_trace(dir);
  EXPECT_EQ(run_tool(""), 2);                    // no command
  EXPECT_EQ(run_tool("verify"), 2);              // missing file argument
  EXPECT_EQ(run_tool("frobnicate " + trace), 2); // unknown command
  EXPECT_EQ(run_tool("diff " + trace), 2);       // diff needs two files
}

}  // namespace
}  // namespace tsteiner
