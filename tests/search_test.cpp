// Discrete topology search (src/search) and its refine integration:
//  * edit-op semantics per kind, invariant gating, stale-operand rejection;
//  * SteinerForest::replace_tree vs a from-scratch movable-index rebuild;
//  * MCTS determinism (bit-identical results across reruns);
//  * interleaved search+gradient refine: bit-identical WNS/TNS/forest at
//    pool widths 1 vs 4 and across back-to-back runs, keep-best
//    monotonicity with the full sign-off anchor wired, and byte-identity of
//    the classic loop when the topology knob stays off.
#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "flow/flow.hpp"
#include "flow/incremental_signoff.hpp"
#include "netlist/design_generator.hpp"
#include "place/placer.hpp"
#include "search/mcts.hpp"
#include "search/topo_edits.hpp"
#include "steiner/rsmt.hpp"
#include "tsteiner/refine.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "verify/invariants.hpp"

namespace tsteiner {
namespace {

const CellLibrary& lib() {
  static const CellLibrary l = CellLibrary::make_default();
  return l;
}

struct Fixture {
  Design design;
  SteinerForest forest;
};

Fixture make_fixture(std::uint64_t seed = 7, int comb_cells = 80) {
  GeneratorParams p;
  p.num_comb_cells = comb_cells;
  p.num_registers = comb_cells / 8;
  p.num_primary_inputs = 4;
  p.num_primary_outputs = 4;
  p.seed = seed;
  Fixture f{generate_design(lib(), p), {}};
  place_design(f.design);
  f.forest = build_forest(f.design);
  const StaResult sta = run_sta(f.design, f.forest, nullptr);
  f.design.set_clock_period(0.6 * sta.max_arrival);
  return f;
}

TimingGnn make_model() {
  GnnConfig cfg;
  cfg.hidden = 6;
  return TimingGnn(cfg, lib().num_types());
}

/// A hand-built valid tree: three pins joined through one Steiner hub.
///
///   p0 (driver, 10,10) --- s3 (20,20) --- p1 (30,30)
///                           |
///                          p2 (20,40)
SteinerTree make_star_tree() {
  SteinerTree t;
  t.net = 5;
  t.nodes = {{{10.0, 10.0}, 0}, {{30.0, 30.0}, 1}, {{20.0, 40.0}, 2}, {{20.0, 20.0}, -1}};
  t.edges = {{0, 3}, {1, 3}, {2, 3}};
  t.driver_node = 0;
  return t;
}

const RectI kDie{{0, 0}, {100, 100}};

::testing::AssertionResult forests_bit_equal(const SteinerForest& a, const SteinerForest& b) {
  if (a.trees.size() != b.trees.size()) {
    return ::testing::AssertionFailure() << "tree count differs";
  }
  for (std::size_t t = 0; t < a.trees.size(); ++t) {
    const SteinerTree& ta = a.trees[t];
    const SteinerTree& tb = b.trees[t];
    if (ta.nodes.size() != tb.nodes.size() || ta.edges.size() != tb.edges.size()) {
      return ::testing::AssertionFailure() << "tree " << t << " shape differs";
    }
    for (std::size_t n = 0; n < ta.nodes.size(); ++n) {
      if (std::memcmp(&ta.nodes[n].pos.x, &tb.nodes[n].pos.x, sizeof(double)) != 0 ||
          std::memcmp(&ta.nodes[n].pos.y, &tb.nodes[n].pos.y, sizeof(double)) != 0 ||
          ta.nodes[n].pin != tb.nodes[n].pin) {
        return ::testing::AssertionFailure() << "tree " << t << " node " << n << " differs";
      }
    }
    for (std::size_t e = 0; e < ta.edges.size(); ++e) {
      if (ta.edges[e].a != tb.edges[e].a || ta.edges[e].b != tb.edges[e].b) {
        return ::testing::AssertionFailure() << "tree " << t << " edge " << e << " differs";
      }
    }
  }
  return ::testing::AssertionSuccess();
}

// --- edit-op semantics ------------------------------------------------------

TEST(TopoEdits, InsertSplitsStarThroughMedianHananPoint) {
  // Degree-4 hub: detaching two neighbors leaves it at degree 3, so the new
  // Steiner node survives pruning.
  SteinerTree t;
  t.net = 5;
  t.nodes = {{{10.0, 10.0}, 0},
             {{30.0, 30.0}, 1},
             {{20.0, 40.0}, 2},
             {{5.0, 30.0}, 3},
             {{20.0, 20.0}, -1}};
  t.edges = {{0, 4}, {1, 4}, {2, 4}, {3, 4}};
  t.driver_node = 0;
  search::TopologyEdit e;
  e.kind = search::EditKind::kInsert;
  e.a = 4;  // hub
  e.b = 1;
  e.c = 2;
  e.pos = {20.0, 30.0};  // component-wise median of nodes 4, 1, 2
  const auto edited = search::apply_edit(t, kDie, e);
  ASSERT_TRUE(edited.has_value());
  EXPECT_TRUE(edited->is_valid_tree());
  EXPECT_EQ(edited->num_steiner_nodes(), 2);
  EXPECT_EQ(edited->nodes.size(), 6u);
  EXPECT_EQ(edited->edges.size(), 5u);
  EXPECT_TRUE(search::validate_edited_tree(t, *edited, kDie).empty());

  // On a degree-3 hub the same insert leaves the hub at degree 2, so the
  // pruning pass splices it straight back out: net effect is a no-op star.
  const SteinerTree star = make_star_tree();
  search::TopologyEdit collapse;
  collapse.kind = search::EditKind::kInsert;
  collapse.a = 3;
  collapse.b = 1;
  collapse.c = 2;
  collapse.pos = {20.0, 30.0};
  const auto pruned = search::apply_edit(star, kDie, collapse);
  ASSERT_TRUE(pruned.has_value());
  EXPECT_EQ(pruned->num_steiner_nodes(), 1);
  EXPECT_TRUE(search::validate_edited_tree(star, *pruned, kDie).empty());
}

TEST(TopoEdits, DeleteReconnectsNeighborsDeterministically) {
  const SteinerTree t = make_star_tree();
  search::TopologyEdit e;
  e.kind = search::EditKind::kDelete;
  e.a = 3;
  const auto edited = search::apply_edit(t, kDie, e);
  ASSERT_TRUE(edited.has_value());
  EXPECT_TRUE(edited->is_valid_tree());
  EXPECT_EQ(edited->num_steiner_nodes(), 0);
  EXPECT_EQ(edited->nodes.size(), 3u);
  EXPECT_EQ(edited->edges.size(), 2u);
  EXPECT_TRUE(search::validate_edited_tree(t, *edited, kDie).empty());
  // Deterministic: a second application produces the identical tree.
  const auto again = search::apply_edit(t, kDie, e);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(edited->edges.size(), again->edges.size());
  for (std::size_t i = 0; i < edited->edges.size(); ++i) {
    EXPECT_EQ(edited->edges[i].a, again->edges[i].a);
    EXPECT_EQ(edited->edges[i].b, again->edges[i].b);
  }
}

TEST(TopoEdits, ReshiftJumpsToHananPointAndIsShapePreserving) {
  const SteinerTree t = make_star_tree();
  search::TopologyEdit e;
  e.kind = search::EditKind::kReshift;
  e.a = 3;
  e.pos = {10.0, 40.0};  // x of neighbor p0, y of neighbor p2
  EXPECT_TRUE(search::shape_preserving(e));
  const auto edited = search::apply_edit(t, kDie, e);
  ASSERT_TRUE(edited.has_value());
  EXPECT_EQ(edited->nodes.size(), t.nodes.size());
  EXPECT_EQ(edited->edges.size(), t.edges.size());
  EXPECT_DOUBLE_EQ(edited->nodes[3].pos.x, 10.0);
  EXPECT_DOUBLE_EQ(edited->nodes[3].pos.y, 40.0);
  EXPECT_TRUE(search::validate_edited_tree(t, *edited, kDie).empty());
}

TEST(TopoEdits, SwapGateRejectsBrokenAttachmentsUnlessSkipped) {
  const SteinerTree t = make_star_tree();
  search::TopologyEdit bad;
  bad.kind = search::EditKind::kSwap;
  bad.a = t.edges[0].a;
  bad.b = t.edges[0].b;
  bad.c = bad.b;  // self-attachment: disconnects b's side
  std::string reason;
  EXPECT_FALSE(search::apply_edit(t, kDie, bad, {}, &reason).has_value());
  EXPECT_FALSE(reason.empty());

  // The mutation hook bypasses the gate — and the validator must then flag
  // the broken result (this is what the fuzz self-check relies on).
  search::EditOptions skip;
  skip.skip_validation = true;
  const auto broken = search::apply_edit(t, kDie, bad, skip);
  ASSERT_TRUE(broken.has_value());
  EXPECT_FALSE(search::validate_edited_tree(t, *broken, kDie).empty());
}

TEST(TopoEdits, StaleOrOutOfDieOperandsRejected) {
  const SteinerTree t = make_star_tree();
  search::TopologyEdit stale;
  stale.kind = search::EditKind::kDelete;
  stale.a = 99;  // out of range
  EXPECT_FALSE(search::apply_edit(t, kDie, stale).has_value());

  search::TopologyEdit pin;
  pin.kind = search::EditKind::kDelete;
  pin.a = 0;  // a pin, not a Steiner node
  EXPECT_FALSE(search::apply_edit(t, kDie, pin).has_value());

  search::TopologyEdit outside;
  outside.kind = search::EditKind::kReshift;
  outside.a = 3;
  outside.pos = {2000.0, 2000.0};
  EXPECT_FALSE(search::apply_edit(t, kDie, outside).has_value());
}

TEST(TopoEdits, EnumerateIsDeterministicInRngState) {
  const Fixture f = make_fixture(11);
  int checked = 0;
  for (const SteinerTree& tree : f.forest.trees) {
    if (tree.num_steiner_nodes() == 0) continue;
    Rng r1(42), r2(42);
    const auto a = search::enumerate_edits(tree, f.design.die(), r1);
    const auto b = search::enumerate_edits(tree, f.design.die(), r2);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].kind, b[i].kind);
      EXPECT_EQ(a[i].a, b[i].a);
      EXPECT_EQ(a[i].b, b[i].b);
      EXPECT_EQ(a[i].c, b[i].c);
    }
    if (++checked >= 5) break;
  }
  EXPECT_GE(checked, 1);
}

// --- replace_tree vs from-scratch rebuild -----------------------------------

TEST(ReplaceTree, MatchesFromScratchMovableIndex) {
  Fixture f = make_fixture(13);
  f.forest.build_movable_index();
  Rng rng(99);
  int applied = 0;
  for (int attempt = 0; attempt < 40 && applied < 6; ++attempt) {
    const int t = static_cast<int>(rng.index(f.forest.trees.size()));
    const SteinerTree& tree = f.forest.trees[static_cast<std::size_t>(t)];
    if (tree.num_steiner_nodes() == 0) continue;
    for (const auto& e : search::enumerate_edits(tree, f.design.die(), rng)) {
      auto next = search::apply_edit(tree, f.design.die(), e);
      if (!next.has_value()) continue;
      f.forest.replace_tree(t, std::move(*next));
      ++applied;
      break;
    }
    SteinerForest scratch;
    scratch.trees = f.forest.trees;
    scratch.net_to_tree = f.forest.net_to_tree;
    scratch.build_movable_index();
    ASSERT_EQ(f.forest.num_movable(), scratch.num_movable());
    for (std::size_t i = 0; i < scratch.movable().size(); ++i) {
      ASSERT_EQ(f.forest.movable()[i].tree, scratch.movable()[i].tree) << "ref " << i;
      ASSERT_EQ(f.forest.movable()[i].node, scratch.movable()[i].node) << "ref " << i;
    }
  }
  EXPECT_GE(applied, 1);
  EXPECT_TRUE(verify::check_forest_invariants(f.design, f.forest,
                                              /*require_min_degree=*/true)
                  .empty());
}

// --- MCTS determinism -------------------------------------------------------

TEST(Mcts, BitIdenticalAcrossReruns) {
  const Fixture f = make_fixture(17);
  // Pure deterministic score: wirelength saved by the candidate topology.
  int searched = 0;
  for (const SteinerTree& tree : f.forest.trees) {
    if (tree.num_steiner_nodes() == 0) continue;
    const double wl0 = tree.wirelength();
    const search::TopoScoreFn score = [&](const SteinerTree& cand, bool) {
      return wl0 - cand.wirelength();
    };
    search::MctsOptions opts;
    opts.rollouts = 8;
    opts.seed = 0xfeed;
    const auto a = search::search_tree_edits(tree, f.design.die(), 1, 2, score, opts);
    const auto b = search::search_tree_edits(tree, f.design.die(), 1, 2, score, opts);
    EXPECT_EQ(a.best_path.size(), b.best_path.size());
    EXPECT_EQ(std::memcmp(&a.best_score, &b.best_score, sizeof(double)), 0);
    EXPECT_EQ(a.stats.proposed, b.stats.proposed);
    EXPECT_EQ(a.stats.rejected, b.stats.rejected);
    EXPECT_EQ(a.stats.evaluated, b.stats.evaluated);
    if (!a.best_path.empty()) {
      EXPECT_TRUE(search::validate_edited_tree(tree, a.best_tree, f.design.die()).empty());
    }
    if (++searched >= 4) break;
  }
  EXPECT_GE(searched, 1);
}

// --- interleaved refine determinism & contracts -----------------------------

RefineOptions topo_options() {
  RefineOptions opts;
  opts.max_iterations = 6;
  opts.topology.enabled = true;
  opts.topology.rounds = 2;
  opts.topology.gradient_iterations = 3;
  opts.topology.nets_per_round = 2;
  opts.topology.rollouts = 6;
  opts.topology.max_depth = 2;
  opts.topology.max_candidates = 6;
  return opts;
}

TEST(TopologyRefine, BitIdenticalAcrossPoolWidthsAndReruns) {
  const Fixture f = make_fixture(19);
  const TimingGnn model = make_model();
  const std::size_t prev = parallel_threads();

  auto run = [&](std::size_t width) {
    set_parallel_threads(width);
    return refine_steiner_points(f.design, f.forest, model, topo_options());
  };
  const RefineResult serial = run(1);
  const RefineResult wide = run(4);
  const RefineResult again = run(4);
  set_parallel_threads(prev);

  EXPECT_EQ(std::memcmp(&serial.best_wns, &wide.best_wns, sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(&serial.best_tns, &wide.best_tns, sizeof(double)), 0);
  EXPECT_TRUE(forests_bit_equal(serial.forest, wide.forest));
  EXPECT_EQ(std::memcmp(&wide.best_wns, &again.best_wns, sizeof(double)), 0);
  EXPECT_TRUE(forests_bit_equal(wide.forest, again.forest));
  EXPECT_TRUE(verify::check_forest_invariants(f.design, serial.forest,
                                              /*require_min_degree=*/true)
                  .empty());
}

TEST(TopologyRefine, OffKnobKeepsClassicLoopBitIdentical) {
  const Fixture f = make_fixture(23);
  const TimingGnn model = make_model();
  RefineOptions classic;
  classic.max_iterations = 5;
  RefineOptions off = classic;
  off.topology.rounds = 7;  // non-default knobs must be inert while disabled
  off.topology.rollouts = 3;
  const RefineResult a = refine_steiner_points(f.design, f.forest, model, classic);
  const RefineResult b = refine_steiner_points(f.design, f.forest, model, off);
  EXPECT_EQ(std::memcmp(&a.best_wns, &b.best_wns, sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(&a.best_tns, &b.best_tns, sizeof(double)), 0);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_TRUE(forests_bit_equal(a.forest, b.forest));
}

TEST(TopologyRefine, KeepBestMonotoneWithSignoffAnchor) {
  Fixture f = make_fixture(29);
  const Flow flow(&f.design);
  const SteinerForest initial = flow.initial_forest();
  const TimingGnn model = make_model();

  RefineOptions opts = topo_options();
  IncrementalSignoff episodic(&f.design, flow.options());
  opts.topology.episodic_signoff = [&](const SteinerForest& forest,
                                       const std::vector<int>& dirty) -> SignoffProbeResult {
    const IncrementalSignoff::Result& r = episodic.update(forest, dirty);
    return {r.metrics.wns_ns, r.metrics.tns_ns, r.incremental};
  };
  opts.topology.full_signoff = [&](const SteinerForest& forest) -> SignoffProbeResult {
    const FlowResult r = flow.run_signoff(forest);
    return {r.metrics.wns_ns, r.metrics.tns_ns, false};
  };

  const FlowResult before = flow.run_signoff(initial);
  const RefineResult result = refine_steiner_points(f.design, initial, model, opts);
  const FlowResult after = flow.run_signoff(result.forest);

  // The full sign-off anchors keep-best: the returned forest is either the
  // untouched input (pass-through guard) or strictly better under the
  // normalized WNS+TNS improvement the driver maximizes.
  const bool passthrough = forests_bit_equal(result.forest, initial);
  const double sw = std::max(std::abs(before.metrics.wns_ns), 1e-9);
  const double st = std::max(std::abs(before.metrics.tns_ns), 1e-9);
  const double gain = (after.metrics.wns_ns - before.metrics.wns_ns) / sw +
                      (after.metrics.tns_ns - before.metrics.tns_ns) / st;
  EXPECT_TRUE(passthrough || gain > 0.0)
      << "anchored keep-best regressed: gain=" << gain;
  EXPECT_TRUE(verify::check_forest_invariants(f.design, result.forest,
                                              /*require_min_degree=*/true)
                  .empty());
}

}  // namespace
}  // namespace tsteiner
