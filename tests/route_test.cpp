#include <gtest/gtest.h>

#include "netlist/design_generator.hpp"
#include "place/placer.hpp"
#include "route/global_router.hpp"
#include "steiner/rsmt.hpp"

namespace tsteiner {
namespace {

const CellLibrary& lib() {
  static const CellLibrary l = CellLibrary::make_default();
  return l;
}

TEST(GridGraph, DimensionsFromDie) {
  GridGraph g({{0, 0}, {80, 40}}, 8);
  EXPECT_GE(g.nx(), 10);
  EXPECT_GE(g.ny(), 5);
  EXPECT_EQ(g.gcell_size(), 8);
}

TEST(GridGraph, GcellLookupClamped) {
  GridGraph g({{0, 0}, {80, 80}}, 8);
  EXPECT_EQ(g.gcell_at(PointI{0, 0}).x, 0);
  EXPECT_EQ(g.gcell_at(PointI{7, 7}).x, 0);
  EXPECT_EQ(g.gcell_at(PointI{8, 0}).x, 1);
  // outside the die clamps to boundary gcells
  const GCell far = g.gcell_at(PointI{1000, 1000});
  EXPECT_EQ(far.x, g.nx() - 1);
  EXPECT_EQ(far.y, g.ny() - 1);
}

TEST(GridGraph, UsageAndOverflowAccounting) {
  GridGraph g({{0, 0}, {40, 40}}, 8);
  g.set_capacities(2.0, 2.0);
  EXPECT_DOUBLE_EQ(g.total_overflow(), 0.0);
  g.add_h_usage(0, 0, 3.0);
  EXPECT_DOUBLE_EQ(g.total_overflow(), 1.0);
  EXPECT_DOUBLE_EQ(g.max_overflow(), 1.0);
  EXPECT_EQ(g.num_overflowed_edges(), 1);
  g.clear_usage();
  EXPECT_DOUBLE_EQ(g.total_overflow(), 0.0);
}

TEST(GridGraph, CongestionBetweenAdjacent) {
  GridGraph g({{0, 0}, {40, 40}}, 8);
  g.set_capacities(4.0, 4.0);
  g.add_h_usage(1, 2, 2.0);
  EXPECT_DOUBLE_EQ(g.congestion_between({1, 2}, {2, 2}), 0.5);
  EXPECT_DOUBLE_EQ(g.congestion_between({2, 2}, {1, 2}), 0.5);
  EXPECT_DOUBLE_EQ(g.congestion_between({1, 2}, {1, 2}), 0.0);
  EXPECT_THROW(g.congestion_between({0, 0}, {2, 2}), std::runtime_error);
}

struct RoutedDesign {
  Design design;
  SteinerForest forest;
  GlobalRouteResult gr;
};

RoutedDesign route_small(std::uint64_t seed, RouterOptions opts = {}) {
  GeneratorParams p;
  p.num_comb_cells = 250;
  p.num_registers = 25;
  p.num_primary_inputs = 6;
  p.num_primary_outputs = 6;
  p.seed = seed;
  RoutedDesign rd{generate_design(lib(), p), {}, {}};
  place_design(rd.design);
  rd.forest = build_forest(rd.design);
  rd.gr = global_route(rd.design, rd.forest, opts);
  return rd;
}

TEST(GlobalRouter, RoutesEveryTreeEdge) {
  const RoutedDesign rd = route_small(31);
  std::size_t expected = 0;
  for (const SteinerTree& t : rd.forest.trees) expected += t.edges.size();
  EXPECT_EQ(rd.gr.connections.size(), expected);
  for (const auto& per_tree : rd.gr.conn_of_edge) {
    for (int ci : per_tree) EXPECT_GE(ci, 0);
  }
}

TEST(GlobalRouter, PathsAreConnectedGcellWalks) {
  const RoutedDesign rd = route_small(32);
  for (const RoutedConnection& c : rd.gr.connections) {
    ASSERT_FALSE(c.path.empty());
    for (std::size_t i = 1; i < c.path.size(); ++i) {
      const int dx = std::abs(c.path[i].x - c.path[i - 1].x);
      const int dy = std::abs(c.path[i].y - c.path[i - 1].y);
      EXPECT_EQ(dx + dy, 1) << "non-adjacent step";
    }
  }
}

TEST(GlobalRouter, PathEndpointsMatchTreeEdge) {
  const RoutedDesign rd = route_small(33);
  for (const RoutedConnection& c : rd.gr.connections) {
    const SteinerTree& t = rd.forest.trees[static_cast<std::size_t>(c.tree)];
    const SteinerEdge& e = t.edges[static_cast<std::size_t>(c.edge)];
    const GCell ga = rd.gr.grid.gcell_at(t.nodes[static_cast<std::size_t>(e.a)].pos);
    const GCell gb = rd.gr.grid.gcell_at(t.nodes[static_cast<std::size_t>(e.b)].pos);
    EXPECT_EQ(c.path.front(), ga);
    EXPECT_EQ(c.path.back(), gb);
  }
}

TEST(GlobalRouter, UsageMatchesCommittedPaths) {
  const RoutedDesign rd = route_small(34);
  GridGraph check(rd.design.die(), 8);
  for (const RoutedConnection& c : rd.gr.connections) {
    for (std::size_t i = 1; i < c.path.size(); ++i) {
      const GCell& p = c.path[i - 1];
      const GCell& q = c.path[i];
      if (p.y == q.y) check.add_h_usage(std::min(p.x, q.x), p.y, 1.0);
      else check.add_v_usage(p.x, std::min(p.y, q.y), 1.0);
    }
  }
  for (int y = 0; y < check.ny(); ++y) {
    for (int x = 0; x + 1 < check.nx(); ++x) {
      EXPECT_DOUBLE_EQ(check.h_usage(x, y), rd.gr.grid.h_usage(x, y));
    }
  }
  for (int y = 0; y + 1 < check.ny(); ++y) {
    for (int x = 0; x < check.nx(); ++x) {
      EXPECT_DOUBLE_EQ(check.v_usage(x, y), rd.gr.grid.v_usage(x, y));
    }
  }
}

TEST(GlobalRouter, RrrReducesOverflow) {
  RouterOptions no_rrr;
  no_rrr.rrr_iterations = 0;
  const RoutedDesign before = route_small(35, no_rrr);
  RouterOptions with_rrr;
  with_rrr.rrr_iterations = 4;
  // pin the same capacities for a fair comparison
  with_rrr.fixed_h_cap = before.gr.calibrated_h_cap;
  with_rrr.fixed_v_cap = before.gr.calibrated_v_cap;
  const RoutedDesign after = route_small(35, with_rrr);
  EXPECT_LE(after.gr.total_overflow, before.gr.total_overflow);
}

TEST(GlobalRouter, FixedCapacitiesAreRespected) {
  RouterOptions opts;
  opts.fixed_h_cap = 7.5;
  opts.fixed_v_cap = 9.5;
  const RoutedDesign rd = route_small(36, opts);
  EXPECT_DOUBLE_EQ(rd.gr.grid.h_capacity(), 7.5);
  EXPECT_DOUBLE_EQ(rd.gr.grid.v_capacity(), 9.5);
  EXPECT_DOUBLE_EQ(rd.gr.calibrated_h_cap, 7.5);
}

TEST(GlobalRouter, WirelengthAtLeastManhattan) {
  const RoutedDesign rd = route_small(37);
  double manhattan_total = 0.0;
  for (const SteinerTree& t : rd.forest.trees) manhattan_total += t.wirelength();
  // gcell quantization makes routed length approximate; it must be within a
  // small factor of the geometric wirelength and never wildly below it.
  EXPECT_GT(rd.gr.wirelength_dbu, 0.5 * manhattan_total);
}

TEST(GlobalRouter, CongestionForcesDetours) {
  // Starve capacity: negotiation must push some connections off the direct
  // L-route, so at least one path exceeds its Manhattan gcell distance.
  RouterOptions opts;
  opts.fixed_h_cap = 2.0;
  opts.fixed_v_cap = 2.0;
  opts.rrr_iterations = 6;
  const RoutedDesign rd = route_small(38, opts);
  int detours = 0;
  for (const RoutedConnection& c : rd.gr.connections) {
    const int direct = std::abs(c.path.back().x - c.path.front().x) +
                       std::abs(c.path.back().y - c.path.front().y);
    if (static_cast<int>(c.path.size()) - 1 > direct) ++detours;
  }
  EXPECT_GT(detours, 0) << "starved capacity must force maze detours";
  // Detoured paths still connect the right endpoints (structural test above
  // covers it; re-assert cheaply here on the longest path).
  for (const RoutedConnection& c : rd.gr.connections) {
    ASSERT_FALSE(c.path.empty());
  }
}

TEST(GlobalRouter, HistoryAccumulatesOnOverflow) {
  RouterOptions opts;
  opts.fixed_h_cap = 2.0;
  opts.fixed_v_cap = 2.0;
  opts.rrr_iterations = 3;
  const RoutedDesign rd = route_small(39, opts);
  double hist = 0.0;
  for (int y = 0; y < rd.gr.grid.ny(); ++y) {
    for (int x = 0; x + 1 < rd.gr.grid.nx(); ++x) hist += rd.gr.grid.h_history(x, y);
  }
  for (int y = 0; y + 1 < rd.gr.grid.ny(); ++y) {
    for (int x = 0; x < rd.gr.grid.nx(); ++x) hist += rd.gr.grid.v_history(x, y);
  }
  EXPECT_GT(hist, 0.0) << "negotiation must have charged history on hotspots";
  EXPECT_GT(rd.gr.rrr_rounds_used, 0);
}

TEST(RoutedConnection, BendCounting) {
  RoutedConnection c;
  c.path = {{0, 0}, {1, 0}, {2, 0}, {2, 1}, {2, 2}, {3, 2}};
  EXPECT_EQ(c.num_bends(), 2);
  RoutedConnection straight;
  straight.path = {{0, 0}, {1, 0}, {2, 0}};
  EXPECT_EQ(straight.num_bends(), 0);
}

}  // namespace
}  // namespace tsteiner
