#include <gtest/gtest.h>

#include "testutil.hpp"

#include <fstream>
#include <sstream>

#include "flow/visualize.hpp"
#include "netlist/design_generator.hpp"
#include "place/placer.hpp"
#include "route/global_router.hpp"
#include "steiner/rsmt.hpp"
#include "util/svg.hpp"

namespace tsteiner {
namespace {

const CellLibrary& lib() {
  static const CellLibrary l = CellLibrary::make_default();
  return l;
}

TEST(Svg, ProducesWellFormedDocument) {
  SvgWriter svg(0, 0, 100, 50);
  svg.rect(1, 2, 10, 5, "#ffffff");
  svg.line(0, 0, 100, 50, "black", 1.0);
  svg.circle(50, 25, 3, "red");
  svg.text(5, 5, "hello");
  const std::string doc = svg.finish();
  EXPECT_NE(doc.find("<svg"), std::string::npos);
  EXPECT_NE(doc.find("</svg>"), std::string::npos);
  EXPECT_NE(doc.find("<rect"), std::string::npos);
  EXPECT_NE(doc.find("<line"), std::string::npos);
  EXPECT_NE(doc.find("<circle"), std::string::npos);
  EXPECT_NE(doc.find("hello"), std::string::npos);
}

TEST(Svg, YAxisFlipped) {
  SvgWriter svg(0, 0, 10, 10);
  svg.circle(0, 0, 1, "red");  // chip origin -> bottom-left -> svg y = 10
  const std::string doc = svg.finish();
  EXPECT_NE(doc.find("cy=\"10.000\""), std::string::npos);
}

TEST(Svg, HeatColorEndpoints) {
  EXPECT_EQ(SvgWriter::heat_color(0.0), "hsl(120,85%,50%)");  // green
  EXPECT_EQ(SvgWriter::heat_color(1.0), "hsl(0,85%,50%)");    // red
  EXPECT_EQ(SvgWriter::heat_color(5.0), "hsl(0,85%,50%)");    // clamped
}

TEST(Visualize, WritesSvgWithAllLayers) {
  GeneratorParams p;
  p.num_comb_cells = 120;
  p.num_registers = 12;
  p.num_primary_inputs = 4;
  p.num_primary_outputs = 4;
  p.seed = 91;
  Design d = generate_design(lib(), p);
  place_design(d);
  const SteinerForest f = build_forest(d);
  const GlobalRouteResult gr = global_route(d, f);

  // A "moved" reference: shift one Steiner point far away.
  SteinerForest ref = f;
  for (SteinerTree& t : ref.trees) {
    for (SteinerNode& n : t.nodes) {
      if (n.is_steiner()) {
        n.pos.x += 20.0;
        break;
      }
    }
  }

  const std::string path = testutil::test_tmp_dir() + "/viz_test.svg";
  ASSERT_TRUE(render_design_svg(d, f, &gr.grid, &ref, path));
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string doc = ss.str();
  EXPECT_NE(doc.find("<svg"), std::string::npos);
  EXPECT_NE(doc.find("</svg>"), std::string::npos);
  // cells + steiner nodes drawn
  EXPECT_NE(doc.find("#4472c4"), std::string::npos);
  EXPECT_NE(doc.find("#ed7d31"), std::string::npos);
  // the moved point is highlighted
  EXPECT_NE(doc.find("#e03030"), std::string::npos);
}

TEST(Visualize, OptionsDisableLayers) {
  GeneratorParams p;
  p.num_comb_cells = 80;
  p.num_registers = 10;
  p.num_primary_inputs = 4;
  p.num_primary_outputs = 4;
  p.seed = 92;
  Design d = generate_design(lib(), p);
  place_design(d);
  const SteinerForest f = build_forest(d);
  VisualizeOptions opts;
  opts.draw_cells = false;
  opts.draw_trees = false;
  opts.draw_congestion = false;
  const std::string path = testutil::test_tmp_dir() + "/viz_empty.svg";
  ASSERT_TRUE(render_design_svg(d, f, nullptr, nullptr, path, opts));
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str().find("#4472c4"), std::string::npos);
  EXPECT_EQ(ss.str().find("#ed7d31"), std::string::npos);
}

}  // namespace
}  // namespace tsteiner
