#include <gtest/gtest.h>

#include "testutil.hpp"

#include <sstream>

#include "netlist/design_generator.hpp"
#include "netlist/design_io.hpp"
#include "place/placer.hpp"
#include "sta/sta.hpp"
#include "steiner/forest_io.hpp"
#include "steiner/rsmt.hpp"

namespace tsteiner {
namespace {

const CellLibrary& lib() {
  static const CellLibrary l = CellLibrary::make_default();
  return l;
}

Design make_design(std::uint64_t seed) {
  GeneratorParams p;
  p.num_comb_cells = 180;
  p.num_registers = 20;
  p.num_primary_inputs = 5;
  p.num_primary_outputs = 5;
  p.seed = seed;
  Design d = generate_design(lib(), p);
  place_design(d);
  d.set_clock_period(3.14159);
  return d;
}

TEST(DesignIo, RoundTripPreservesStructure) {
  const Design d = make_design(81);
  std::stringstream ss;
  write_design(d, ss);
  const auto loaded = read_design(ss, lib());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->name(), d.name());
  EXPECT_EQ(loaded->die(), d.die());
  EXPECT_DOUBLE_EQ(loaded->clock_period(), d.clock_period());
  ASSERT_EQ(loaded->cells().size(), d.cells().size());
  ASSERT_EQ(loaded->pins().size(), d.pins().size());
  ASSERT_EQ(loaded->nets().size(), d.nets().size());
  for (std::size_t c = 0; c < d.cells().size(); ++c) {
    EXPECT_EQ(loaded->cells()[c].type, d.cells()[c].type);
    EXPECT_EQ(loaded->cells()[c].pos, d.cells()[c].pos);
  }
  for (std::size_t n = 0; n < d.nets().size(); ++n) {
    EXPECT_EQ(loaded->nets()[n].driver_pin, d.nets()[n].driver_pin);
    EXPECT_EQ(loaded->nets()[n].sink_pins, d.nets()[n].sink_pins);
  }
}

TEST(DesignIo, RoundTripPreservesTiming) {
  const Design d = make_design(82);
  std::stringstream ss;
  write_design(d, ss);
  const auto loaded = read_design(ss, lib());
  ASSERT_TRUE(loaded.has_value());
  const SteinerForest fa = build_forest(d);
  const SteinerForest fb = build_forest(*loaded);
  const StaResult ra = run_sta(d, fa, nullptr);
  const StaResult rb = run_sta(*loaded, fb, nullptr);
  EXPECT_DOUBLE_EQ(ra.wns, rb.wns);
  EXPECT_DOUBLE_EQ(ra.tns, rb.tns);
}

TEST(DesignIo, RejectsGarbage) {
  std::stringstream ss("not a design file\n");
  EXPECT_FALSE(read_design(ss, lib()).has_value());
  std::stringstream truncated("tsteiner-design-v1\nname x\ndie 0 0 10 10\n");
  EXPECT_FALSE(read_design(truncated, lib()).has_value());
}

TEST(DesignIo, RejectsUnknownCellType) {
  std::stringstream ss(
      "tsteiner-design-v1\nname x\ndie 0 0 10 10\nclock 1\nobjects\n"
      "cell BOGUS_CELL 1 1\nend_objects\nnets 0\n");
  EXPECT_FALSE(read_design(ss, lib()).has_value());
}

TEST(ForestIo, RoundTripExact) {
  const Design d = make_design(83);
  SteinerForest f = build_forest(d);
  // Nudge some Steiner points off-grid to exercise double round-tripping.
  for (SteinerTree& t : f.trees) {
    for (SteinerNode& n : t.nodes) {
      if (n.is_steiner()) n.pos.x += 0.1234567890123;
    }
  }
  std::stringstream ss;
  write_forest(f, ss);
  const auto loaded = read_forest(ss);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->trees.size(), f.trees.size());
  EXPECT_EQ(loaded->net_to_tree, f.net_to_tree);
  EXPECT_EQ(loaded->num_movable(), f.num_movable());
  for (std::size_t t = 0; t < f.trees.size(); ++t) {
    const SteinerTree& a = f.trees[t];
    const SteinerTree& b = loaded->trees[t];
    ASSERT_EQ(a.nodes.size(), b.nodes.size());
    EXPECT_EQ(a.driver_node, b.driver_node);
    for (std::size_t n = 0; n < a.nodes.size(); ++n) {
      EXPECT_EQ(a.nodes[n].pin, b.nodes[n].pin);
      EXPECT_DOUBLE_EQ(a.nodes[n].pos.x, b.nodes[n].pos.x);
      EXPECT_DOUBLE_EQ(a.nodes[n].pos.y, b.nodes[n].pos.y);
    }
  }
}

TEST(ForestIo, LoadedForestTimesIdentically) {
  const Design d = make_design(84);
  const SteinerForest f = build_forest(d);
  std::stringstream ss;
  write_forest(f, ss);
  const auto loaded = read_forest(ss);
  ASSERT_TRUE(loaded.has_value());
  const StaResult ra = run_sta(d, f, nullptr);
  const StaResult rb = run_sta(d, *loaded, nullptr);
  EXPECT_DOUBLE_EQ(ra.wns, rb.wns);
  EXPECT_DOUBLE_EQ(ra.tns, rb.tns);
}

TEST(ForestIo, RejectsCorruptTrees) {
  std::stringstream garbage("wrong header\n");
  EXPECT_FALSE(read_forest(garbage).has_value());
  // Disconnected tree (2 nodes, 0 edges) must be rejected.
  std::stringstream disconnected(
      "tsteiner-forest-v1\nnets 1\ntrees 1\ntree 0 0 2 0\n0 0 0\n1 5 5\n");
  EXPECT_FALSE(read_forest(disconnected).has_value());
  // Edge index out of range.
  std::stringstream bad_edge(
      "tsteiner-forest-v1\nnets 1\ntrees 1\ntree 0 0 2 1\n0 0 0\n1 5 5\n0 7\n");
  EXPECT_FALSE(read_forest(bad_edge).has_value());
}

TEST(DesignIo, FileApiWorks) {
  const Design d = make_design(85);
  const std::string path = testutil::test_tmp_dir() + "/design_io_test.txt";
  ASSERT_TRUE(write_design_file(d, path));
  const auto loaded = read_design_file(path, lib());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->stats().num_cells, d.stats().num_cells);
  EXPECT_FALSE(read_design_file("/nonexistent/file.txt", lib()).has_value());
}

}  // namespace
}  // namespace tsteiner
