#include <gtest/gtest.h>

#include <set>

#include "netlist/design_generator.hpp"
#include "place/placer.hpp"

namespace tsteiner {
namespace {

const CellLibrary& lib() {
  static const CellLibrary l = CellLibrary::make_default();
  return l;
}

Design make_design(int comb, int regs, std::uint64_t seed) {
  GeneratorParams p;
  p.num_comb_cells = comb;
  p.num_registers = regs;
  p.num_primary_inputs = 6;
  p.num_primary_outputs = 6;
  p.seed = seed;
  return generate_design(lib(), p);
}

TEST(Placer, AllCellsInsideDie) {
  Design d = make_design(300, 30, 21);
  place_design(d);
  for (const Cell& c : d.cells()) {
    EXPECT_TRUE(d.die().contains(c.pos)) << c.name;
  }
  EXPECT_NO_THROW(d.validate());
}

TEST(Placer, ImprovesHpwlOverRandom) {
  Design d = make_design(400, 40, 22);
  // Random-only baseline: 0 median iterations.
  Design d2 = make_design(400, 40, 22);
  PlacerOptions none;
  none.iterations = 0;
  place_design(d2, none);
  const double hpwl_random = total_hpwl(d2);
  place_design(d);
  const double hpwl_placed = total_hpwl(d);
  EXPECT_LT(hpwl_placed, hpwl_random * 0.8)
      << "median relaxation should clearly beat random placement";
}

TEST(Placer, DeterministicForSeed) {
  Design a = make_design(200, 20, 23);
  Design b = make_design(200, 20, 23);
  place_design(a);
  place_design(b);
  for (std::size_t i = 0; i < a.cells().size(); ++i) {
    EXPECT_EQ(a.cells()[i].pos, b.cells()[i].pos);
  }
}

TEST(Placer, RowsDoNotOverflowDie) {
  Design d = make_design(500, 50, 24);
  place_design(d);
  // Legalization packs cells into rows: each (x, y) start must be unique.
  std::set<std::pair<std::int64_t, std::int64_t>> seen;
  for (const Cell& c : d.cells()) {
    EXPECT_TRUE(seen.insert({c.pos.x, c.pos.y}).second)
        << "two cells share a site at " << c.pos;
  }
}

TEST(Placer, HpwlPositive) {
  Design d = make_design(100, 10, 25);
  place_design(d);
  EXPECT_GT(total_hpwl(d), 0.0);
}

TEST(Placer, WeightedHpwlMatchesUniform) {
  Design d = make_design(150, 15, 26);
  place_design(d);
  const std::vector<double> ones(d.nets().size(), 1.0);
  EXPECT_DOUBLE_EQ(total_hpwl(d), weighted_hpwl(d, ones));
  const std::vector<double> twos(d.nets().size(), 2.0);
  EXPECT_DOUBLE_EQ(2.0 * total_hpwl(d), weighted_hpwl(d, twos));
}

TEST(Placer, TimingNetWeightsInRange) {
  Design d = make_design(200, 20, 27);
  place_design(d);
  std::vector<double> arrival(d.pins().size(), 0.0);
  Rng rng(3);
  for (double& a : arrival) a = rng.uniform(0.0, 2.0);
  const auto w = timing_net_weights(d, arrival, /*clock=*/1.5, /*max_w=*/4.0);
  ASSERT_EQ(w.size(), d.nets().size());
  for (double x : w) {
    EXPECT_GE(x, 1.0);
    EXPECT_LE(x, 4.0);
  }
}

TEST(Placer, CriticalNetsGetLargerWeights) {
  Design d = make_design(120, 12, 28);
  place_design(d);
  std::vector<double> arrival(d.pins().size(), 0.0);
  // Make net 0's sinks very late, net 1's early.
  for (int s : d.nets()[0].sink_pins) arrival[static_cast<std::size_t>(s)] = 2.0;
  for (int s : d.nets()[1].sink_pins) arrival[static_cast<std::size_t>(s)] = 0.1;
  const auto w = timing_net_weights(d, arrival, /*clock=*/1.0);
  EXPECT_GT(w[0], w[1]);
  EXPECT_DOUBLE_EQ(w[1], 1.0);
}

TEST(Placer, NetWeightingPullsCriticalNetsTighter) {
  // Place twice: once uniform, once with one net heavily weighted; that
  // net's HPWL must not grow, and usually shrinks.
  Design a = make_design(250, 25, 29);
  Design b = make_design(250, 25, 29);
  place_design(a);
  // Pick a multi-sink net to weight.
  int target = -1;
  for (const Net& n : a.nets()) {
    if (n.sink_pins.size() >= 3) {
      target = n.id;
      break;
    }
  }
  ASSERT_GE(target, 0);
  PlacerOptions opts;
  opts.net_weights.assign(b.nets().size(), 1.0);
  opts.net_weights[static_cast<std::size_t>(target)] = 8.0;
  place_design(b, opts);
  auto net_hpwl = [](const Design& d, int net) {
    const Net& n = d.nets()[static_cast<std::size_t>(net)];
    RectI bb{d.pin_position(n.driver_pin), d.pin_position(n.driver_pin)};
    for (int s : n.sink_pins) bb.expand(d.pin_position(s));
    return static_cast<double>(bb.half_perimeter());
  };
  EXPECT_LE(net_hpwl(b, target), net_hpwl(a, target) * 1.05)
      << "an 8x-weighted net should not spread out";
}

}  // namespace
}  // namespace tsteiner
