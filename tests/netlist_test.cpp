#include <gtest/gtest.h>

#include "netlist/design_generator.hpp"
#include "netlist/liberty.hpp"
#include "netlist/netlist.hpp"

namespace tsteiner {
namespace {

const CellLibrary& lib() {
  static const CellLibrary l = CellLibrary::make_default();
  return l;
}

TEST(Lut2, ExactGridPoints) {
  Lut2 t({0.0, 1.0}, {0.0, 1.0}, {0.0, 1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(t.lookup(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(t.lookup(0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(t.lookup(1.0, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(t.lookup(1.0, 1.0), 3.0);
}

TEST(Lut2, BilinearInterpolation) {
  Lut2 t({0.0, 1.0}, {0.0, 1.0}, {0.0, 1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(t.lookup(0.5, 0.5), 1.5);
  EXPECT_DOUBLE_EQ(t.lookup(0.25, 0.75), 0.5 + 0.75);
}

TEST(Lut2, ClampedExtrapolation) {
  Lut2 t({0.0, 1.0}, {0.0, 1.0}, {0.0, 1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(t.lookup(-5.0, -5.0), 0.0);
  EXPECT_DOUBLE_EQ(t.lookup(10.0, 10.0), 3.0);
}

TEST(CellLibrary, HasExpectedTypes) {
  EXPECT_GE(lib().num_types(), 10);
  EXPECT_GE(lib().find("INV_X1"), 0);
  EXPECT_GE(lib().find("NAND2_X1"), 0);
  EXPECT_GE(lib().register_type(), 0);
  EXPECT_EQ(lib().find("NOT_A_CELL"), -1);
  EXPECT_TRUE(lib().type(lib().register_type()).is_register);
}

TEST(CellLibrary, DelayGrowsWithLoad) {
  const CellType& inv = lib().type(lib().find("INV_X1"));
  const double d_small = inv.arcs[0].delay.lookup(0.02, 0.002);
  const double d_large = inv.arcs[0].delay.lookup(0.02, 0.2);
  EXPECT_GT(d_large, d_small);
}

TEST(CellLibrary, StrongerDriveIsFasterUnderLoad) {
  const CellType& x1 = lib().type(lib().find("INV_X1"));
  const CellType& x4 = lib().type(lib().find("INV_X4"));
  EXPECT_LT(x4.arcs[0].delay.lookup(0.02, 0.1), x1.arcs[0].delay.lookup(0.02, 0.1));
}

Design make_inverter_chain(int n) {
  Design d("chain", &lib());
  d.set_die({{0, 0}, {100, 100}});
  const int pi = d.add_primary_input({0, 50});
  int prev_out = pi;
  for (int i = 0; i < n; ++i) {
    const int c = d.add_cell(lib().find("INV_X1"));
    d.cell(c).pos = {10 * (i + 1), 50};
    const int net = d.add_net(prev_out);
    d.connect_sink(net, d.cell(c).input_pins[0]);
    prev_out = d.cell(c).output_pin;
  }
  const int po = d.add_primary_output({100, 50});
  const int net = d.add_net(prev_out);
  d.connect_sink(net, po);
  return d;
}

TEST(Design, InverterChainValidates) {
  Design d = make_inverter_chain(5);
  EXPECT_NO_THROW(d.validate());
  EXPECT_EQ(d.cells().size(), 5u);
  EXPECT_EQ(d.nets().size(), 6u);
}

TEST(Design, TopoOrderRespectsDependencies) {
  Design d = make_inverter_chain(8);
  const auto order = d.combinational_topo_order();
  ASSERT_EQ(order.size(), 8u);
  for (std::size_t i = 0; i + 1 < order.size(); ++i) {
    EXPECT_LT(order[i], order[i + 1]);  // chain built in creation order
  }
}

TEST(Design, PinLevelsMonotoneAlongChain) {
  Design d = make_inverter_chain(4);
  const auto levels = d.pin_levels();
  for (const Cell& c : d.cells()) {
    const int in_level = levels[static_cast<std::size_t>(c.input_pins[0])];
    const int out_level = levels[static_cast<std::size_t>(c.output_pin)];
    EXPECT_EQ(out_level, in_level + 1);
  }
}

TEST(Design, EndpointsAndStartpoints) {
  Design d("seq", &lib());
  d.set_die({{0, 0}, {50, 50}});
  const int reg = d.add_cell(lib().register_type());
  d.cell(reg).pos = {10, 10};
  const int inv = d.add_cell(lib().find("INV_X1"));
  d.cell(inv).pos = {20, 10};
  // Q -> inv -> D (a self loop through combinational logic)
  const int n1 = d.add_net(d.cell(reg).output_pin);
  d.connect_sink(n1, d.cell(inv).input_pins[0]);
  const int n2 = d.add_net(d.cell(inv).output_pin);
  d.connect_sink(n2, d.cell(reg).input_pins[0]);
  d.validate();
  EXPECT_EQ(d.endpoint_pins().size(), 1u);  // register D
  EXPECT_EQ(d.startpoint_pins().size(), 1u);  // register Q
  EXPECT_EQ(d.endpoint_pins()[0], d.cell(reg).input_pins[0]);
}

TEST(Design, CycleDetection) {
  Design d("cyc", &lib());
  d.set_die({{0, 0}, {50, 50}});
  const int a = d.add_cell(lib().find("INV_X1"));
  const int b = d.add_cell(lib().find("INV_X1"));
  const int na = d.add_net(d.cell(a).output_pin);
  d.connect_sink(na, d.cell(b).input_pins[0]);
  const int nb = d.add_net(d.cell(b).output_pin);
  d.connect_sink(nb, d.cell(a).input_pins[0]);
  EXPECT_THROW(d.combinational_topo_order(), std::runtime_error);
}

TEST(Design, DoubleDriveThrows) {
  Design d("dd", &lib());
  const int pi = d.add_primary_input({0, 0});
  d.add_net(pi);
  EXPECT_THROW(d.add_net(pi), std::runtime_error);
}

TEST(Design, SinkCannotBeOutput) {
  Design d("so", &lib());
  const int a = d.add_cell(lib().find("INV_X1"));
  const int b = d.add_cell(lib().find("INV_X1"));
  const int n = d.add_net(d.cell(a).output_pin);
  EXPECT_THROW(d.connect_sink(n, d.cell(b).output_pin), std::runtime_error);
}

TEST(Lut2, SingleRowAndColumnTables) {
  // Degenerate axes must interpolate along the remaining axis only.
  Lut2 row({0.5}, {0.0, 1.0}, {2.0, 4.0});
  EXPECT_DOUBLE_EQ(row.lookup(0.0, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(row.lookup(9.0, 0.0), 2.0);
  Lut2 col({0.0, 1.0}, {0.5}, {2.0, 4.0});
  EXPECT_DOUBLE_EQ(col.lookup(0.5, 9.0), 3.0);
}

TEST(CellLibrary, RegisterArcAndSetup) {
  const CellType& dff = lib().type(lib().register_type());
  EXPECT_EQ(dff.num_inputs, 1);
  ASSERT_EQ(dff.arcs.size(), 1u);  // CK->Q
  EXPECT_GT(dff.setup_ns, 0.0);
  EXPECT_GT(dff.arcs[0].delay.lookup(0.05, 0.01), 0.0);
}

TEST(CellLibrary, WireParasiticsPositive) {
  EXPECT_GT(lib().wire_res_kohm_per_dbu(), 0.0);
  EXPECT_GT(lib().wire_cap_pf_per_dbu(), 0.0);
  EXPECT_GT(lib().via_res_kohm(), 0.0);
}

TEST(Design, DisconnectSinkDetaches) {
  Design d = make_inverter_chain(2);
  const Net& n = d.nets()[0];
  const int sink = n.sink_pins[0];
  d.disconnect_sink(n.id, sink);
  EXPECT_EQ(d.pin(sink).net, -1);
  EXPECT_TRUE(d.nets()[0].sink_pins.empty());
  // Reconnect restores validity.
  d.connect_sink(n.id, sink);
  EXPECT_NO_THROW(d.validate());
  // Detaching a pin from the wrong net throws.
  EXPECT_THROW(d.disconnect_sink(1, sink), std::runtime_error);
}

TEST(Generator, ProducesValidDesign) {
  GeneratorParams p;
  p.num_comb_cells = 400;
  p.num_registers = 40;
  p.num_primary_inputs = 8;
  p.num_primary_outputs = 8;
  p.seed = 3;
  const Design d = generate_design(lib(), p);
  EXPECT_NO_THROW(d.validate());
  EXPECT_EQ(d.cells().size(), 440u);
}

TEST(Generator, EveryNetHasSinks) {
  GeneratorParams p;
  p.num_comb_cells = 300;
  p.num_registers = 30;
  p.seed = 4;
  p.num_primary_inputs = 6;
  p.num_primary_outputs = 6;
  const Design d = generate_design(lib(), p);
  for (const Net& n : d.nets()) {
    EXPECT_FALSE(n.sink_pins.empty()) << "net " << n.name;
  }
}

TEST(Generator, DeterministicForSeed) {
  GeneratorParams p;
  p.num_comb_cells = 200;
  p.num_registers = 20;
  p.num_primary_inputs = 5;
  p.num_primary_outputs = 5;
  p.seed = 77;
  const Design a = generate_design(lib(), p);
  const Design b = generate_design(lib(), p);
  ASSERT_EQ(a.nets().size(), b.nets().size());
  for (std::size_t i = 0; i < a.nets().size(); ++i) {
    EXPECT_EQ(a.nets()[i].driver_pin, b.nets()[i].driver_pin);
    EXPECT_EQ(a.nets()[i].sink_pins, b.nets()[i].sink_pins);
  }
}

TEST(Generator, StatsScaleWithCellCount) {
  GeneratorParams p;
  p.num_comb_cells = 500;
  p.num_registers = 50;
  p.num_primary_inputs = 10;
  p.num_primary_outputs = 10;
  p.seed = 5;
  const Design d = generate_design(lib(), p);
  const DesignStats s = d.stats();
  EXPECT_EQ(s.num_cells, 550);
  // cell edges per cell should land near the Table-I ratio (~2.6 comb)
  EXPECT_GT(s.num_cell_edges, s.num_cells);
  EXPECT_LT(s.num_cell_edges, 4 * s.num_cells);
  // every cell edge implies a net edge; ports add more
  EXPECT_GE(s.num_net_edges, s.num_cell_edges);
  EXPECT_GT(s.num_endpoints, 50);
}

TEST(Generator, ControlNetsHaveHighFanout) {
  GeneratorParams p;
  p.num_comb_cells = 1200;
  p.num_registers = 120;
  p.num_primary_inputs = 10;
  p.num_primary_outputs = 10;
  p.num_control_sources = 2;
  p.control_pick_prob = 0.05;
  p.seed = 6;
  const Design d = generate_design(lib(), p);
  int max_fanout = 0;
  for (const Net& n : d.nets()) {
    max_fanout = std::max(max_fanout, static_cast<int>(n.sink_pins.size()));
  }
  // ~0.05 * 2.5 * 1200 / 2 control sinks per control net
  EXPECT_GT(max_fanout, 30) << "control nets should fan out widely";
}

TEST(Generator, NoControlSourcesDisablesHighFanout) {
  GeneratorParams p;
  p.num_comb_cells = 600;
  p.num_registers = 60;
  p.num_primary_inputs = 8;
  p.num_primary_outputs = 8;
  p.num_control_sources = 0;
  p.seed = 6;
  const Design d = generate_design(lib(), p);
  int max_fanout = 0;
  for (const Net& n : d.nets()) {
    max_fanout = std::max(max_fanout, static_cast<int>(n.sink_pins.size()));
  }
  EXPECT_LT(max_fanout, 40);
}

TEST(Generator, BenchmarkSuiteHasPaperSplit) {
  const auto suite = benchmark_suite();
  ASSERT_EQ(suite.size(), 10u);
  int train = 0;
  for (const auto& s : suite) train += s.is_training ? 1 : 0;
  EXPECT_EQ(train, 6);
  EXPECT_EQ(suite[0].name, "chacha");
  EXPECT_EQ(suite[9].name, "des3");
}

TEST(Generator, ScaleShrinksDesigns) {
  const auto suite = benchmark_suite();
  const GeneratorParams full = params_for(suite[0], 1.0);
  const GeneratorParams small = params_for(suite[0], 0.1);
  EXPECT_GT(full.num_comb_cells, 5 * small.num_comb_cells);
  EXPECT_THROW(params_for(suite[0], 0.0), std::runtime_error);
  EXPECT_THROW(params_for(suite[0], 1.5), std::runtime_error);
}

}  // namespace
}  // namespace tsteiner
