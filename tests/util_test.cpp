#include <gtest/gtest.h>

#include <thread>

#include "util/geometry.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace tsteiner {
namespace {

TEST(Geometry, ManhattanDistanceInt) {
  EXPECT_EQ(manhattan(PointI{0, 0}, PointI{3, 4}), 7);
  EXPECT_EQ(manhattan(PointI{-2, 5}, PointI{2, -5}), 14);
  EXPECT_EQ(manhattan(PointI{1, 1}, PointI{1, 1}), 0);
}

TEST(Geometry, ManhattanDistanceFloat) {
  EXPECT_DOUBLE_EQ(manhattan(PointF{0.5, 0.5}, PointF{1.5, 2.0}), 2.5);
}

TEST(Geometry, RoundToInteger) {
  EXPECT_EQ(round_to_i(PointF{1.4, 2.6}), (PointI{1, 3}));
  EXPECT_EQ(round_to_i(PointF{-1.5, 1.5}), (PointI{-2, 2}));
  EXPECT_EQ(round_to_i(PointF{0.0, 0.0}), (PointI{0, 0}));
}

TEST(Geometry, RectContainsAndExpand) {
  RectI r{{0, 0}, {10, 5}};
  EXPECT_TRUE(r.contains(PointI{0, 0}));
  EXPECT_TRUE(r.contains(PointI{10, 5}));
  EXPECT_FALSE(r.contains(PointI{11, 0}));
  EXPECT_TRUE(r.contains(PointF{9.999, 4.999}));
  r.expand({-3, 8});
  EXPECT_EQ(r.lo, (PointI{-3, 0}));
  EXPECT_EQ(r.hi, (PointI{10, 8}));
  EXPECT_EQ(r.half_perimeter(), 13 + 8);
}

TEST(Geometry, ClampIntoBox) {
  const RectI box{{0, 0}, {10, 10}};
  EXPECT_EQ(clamp_into({-5.0, 5.0}, box).x, 0.0);
  EXPECT_EQ(clamp_into({15.0, 5.0}, box).x, 10.0);
  EXPECT_EQ(clamp_into({5.0, 5.0}, box), (PointF{5.0, 5.0}));
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1000), b.uniform_int(0, 1000));
  }
}

TEST(Rng, UniformIntBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, FanoutAtLeastOne) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 2000; ++i) {
    const auto f = rng.fanout(2.5);
    EXPECT_GE(f, 1);
    sum += static_cast<double>(f);
  }
  // mean should be near the requested 2.5 (generous tolerance)
  EXPECT_NEAR(sum / 2000.0, 2.5, 0.5);
}

TEST(Rng, ForkIndependent) {
  Rng a(42);
  Rng child = a.fork();
  // fork advances the parent; child stream differs from parent's next draws
  EXPECT_NE(a.uniform_int(0, 1u << 30), child.uniform_int(0, 1u << 30));
}

TEST(Log, ScopedTagInstallsAndRestores) {
  EXPECT_EQ(log_tag(), "");
  {
    ScopedLogTag outer("sess=s1");
    EXPECT_EQ(log_tag(), "sess=s1");
    {
      ScopedLogTag inner("c4");
      EXPECT_EQ(log_tag(), "c4");
    }
    EXPECT_EQ(log_tag(), "sess=s1");
  }
  EXPECT_EQ(log_tag(), "");
}

TEST(Log, TagIsThreadLocal) {
  ScopedLogTag main_tag("main-tag");
  std::string seen_in_thread = "unset";
  std::thread t([&] {
    seen_in_thread = log_tag();  // fresh thread: no tag inherited
    set_log_tag("worker");
    EXPECT_EQ(log_tag(), "worker");
  });
  t.join();
  EXPECT_EQ(seen_in_thread, "");
  EXPECT_EQ(log_tag(), "main-tag");  // the worker's tag never leaked here
}

TEST(Stats, MeanAndStddev) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_NEAR(stddev(xs), 1.2909944, 1e-6);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(Stats, R2PerfectFit) {
  const std::vector<double> g{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(r2_score(g, g), 1.0);
}

TEST(Stats, R2MeanPredictorIsZero) {
  const std::vector<double> g{1.0, 2.0, 3.0};
  const std::vector<double> p{2.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(r2_score(g, p), 0.0);
}

TEST(Stats, R2WorseThanMeanIsNegative) {
  const std::vector<double> g{1.0, 2.0, 3.0};
  const std::vector<double> p{3.0, 2.0, 1.0};
  EXPECT_LT(r2_score(g, p), 0.0);
}

TEST(Stats, PearsonSigns) {
  const std::vector<double> x{1.0, 2.0, 3.0};
  const std::vector<double> up{2.0, 4.0, 6.0};
  const std::vector<double> down{6.0, 4.0, 2.0};
  EXPECT_NEAR(pearson(x, up), 1.0, 1e-12);
  EXPECT_NEAR(pearson(x, down), -1.0, 1e-12);
}

TEST(Stats, Percentile) {
  std::vector<double> xs{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 3.0);
}

TEST(Stats, HistogramBuckets) {
  Histogram h(0.0, 1.0, 4);
  h.add(0.1);   // bucket 0
  h.add(0.30);  // bucket 1
  h.add(0.99);  // bucket 3
  h.add(-5.0);  // clamped to bucket 0
  h.add(5.0);   // clamped to bucket 3
  EXPECT_EQ(h.counts[0], 2u);
  EXPECT_EQ(h.counts[1], 1u);
  EXPECT_EQ(h.counts[2], 0u);
  EXPECT_EQ(h.counts[3], 2u);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_DOUBLE_EQ(h.bucket_center(0), 0.125);
}

TEST(Stats, HistogramBucketEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bucket_edge(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_edge(2), 4.0);
  EXPECT_DOUBLE_EQ(h.bucket_edge(5), 10.0);  // upper edge of the last bucket
}

TEST(Stats, HistogramPercentile) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0);  // empty histogram
  h.add(5.0);  // lone sample: every percentile is its bucket's midpoint
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 5.0);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 5.0);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 5.0);
  for (double x : {1.0, 3.0, 7.0}) h.add(x);
  // Four samples at bucket midpoints 1/3/5/7: rank interpolation lands the
  // median on the shared edge of the two middle buckets.
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 4.0);
  EXPECT_DOUBLE_EQ(h.p50(), h.percentile(50.0));
  EXPECT_LE(h.percentile(99.0), 8.0);  // within the top occupied bucket
  EXPECT_GE(h.percentile(99.0), 6.0);
  // Monotone in q.
  double prev = -1.0;
  for (double q = 0.0; q <= 100.0; q += 5.0) {
    EXPECT_GE(h.percentile(q), prev);
    prev = h.percentile(q);
  }
}

TEST(Table, RendersAlignedRows) {
  Table t({"name", "value"});
  t.add_row({"a", Table::num(1.5, 2)});
  t.add_row({"bb", Table::num(10ll)});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("1.50"), std::string::npos);
  EXPECT_NE(s.find("10"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(Timer, MeasuresElapsed) {
  WallTimer timer;
  volatile double x = 0.0;
  for (int i = 0; i < 100000; ++i) x = x + 1.0;
  EXPECT_GE(timer.seconds(), 0.0);
}

TEST(Timer, RuntimeBreakdownTotal) {
  RuntimeBreakdown rb;
  rb.tsteiner.wall_s = 1.0;
  rb.global_route.wall_s = 2.0;
  rb.detailed_route.wall_s = 3.0;
  rb.sta.wall_s = 0.5;
  EXPECT_DOUBLE_EQ(rb.total(), 6.5);
  // The legacy *_s views read straight from the PhaseStat twins.
  EXPECT_DOUBLE_EQ(rb.tsteiner_s(), 1.0);
  EXPECT_DOUBLE_EQ(rb.global_route_s(), 2.0);
  EXPECT_DOUBLE_EQ(rb.detailed_route_s(), 3.0);
  EXPECT_DOUBLE_EQ(rb.sta_s(), 0.5);
}

}  // namespace
}  // namespace tsteiner
