// Observability subsystem: trace JSON validity and nesting at pool widths 1
// and 4, metrics-registry determinism, refine JSONL schema, run-report
// structure, and the zero-allocation guarantee of disabled instrumentation.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "flow/flow.hpp"
#include "netlist/design_generator.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/phase.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "place/placer.hpp"
#include "sta/sta.hpp"
#include "steiner/rsmt.hpp"
#include "testutil.hpp"
#include "tsteiner/refine.hpp"
#include "util/parallel.hpp"

// Global allocation counter: proves the disabled fast path performs no heap
// allocation. Counting is exact for this binary (every operator new lands
// here); tests only ever compare deltas across their own code.
static std::atomic<std::uint64_t> g_news{0};

void* operator new(std::size_t n) {
  ++g_news;
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) {
  ++g_news;
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace tsteiner {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

struct SpanView {
  std::string name;
  double ts = 0.0, dur = 0.0;
  long long tid = 0;
};

/// Parse a trace file, checking event structure, and collect the X spans.
void parse_trace(const std::string& path, std::vector<SpanView>* out) {
  out->clear();
  std::string error;
  const auto doc = obs::parse_json(slurp(path), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  const obs::JsonValue* events = doc->find_array("traceEvents");
  ASSERT_NE(events, nullptr);
  bool saw_thread_name = false;
  for (const obs::JsonValue& e : events->array) {
    const obs::JsonValue* ph = e.find_string("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->str == "M") {
      saw_thread_name = true;
      continue;
    }
    EXPECT_EQ(ph->str, "X");
    ASSERT_NE(e.find_string("name"), nullptr);
    ASSERT_NE(e.find_number("ts"), nullptr);
    ASSERT_NE(e.find_number("dur"), nullptr);
    ASSERT_NE(e.find_number("tid"), nullptr);
    ASSERT_NE(e.find_number("pid"), nullptr);
    out->push_back({e.find_string("name")->str, e.find_number("ts")->number,
                    e.find_number("dur")->number,
                    static_cast<long long>(e.find_number("tid")->number)});
  }
  EXPECT_TRUE(saw_thread_name) << "no thread_name metadata events";
}

/// Scoped spans on one lane must nest by time containment.
void expect_nesting(std::vector<SpanView> spans) {
  std::stable_sort(spans.begin(), spans.end(), [](const SpanView& a, const SpanView& b) {
    if (a.tid != b.tid) return a.tid < b.tid;
    if (a.ts != b.ts) return a.ts < b.ts;
    return a.dur > b.dur;
  });
  std::vector<SpanView> stack;
  long long lane = -1;
  const double slop = 0.002;  // µs rounding of the writer
  for (const SpanView& s : spans) {
    if (s.tid != lane) {
      lane = s.tid;
      stack.clear();
    }
    while (!stack.empty() && s.ts >= stack.back().ts + stack.back().dur - slop) {
      stack.pop_back();
    }
    if (!stack.empty()) {
      EXPECT_LE(s.ts + s.dur, stack.back().ts + stack.back().dur + slop)
          << s.name << " does not nest inside " << stack.back().name;
    }
    stack.push_back(s);
  }
}

void run_traced_workload(const std::string& path) {
  obs::reset_trace();
  obs::enable_trace(path);
  {
    TS_TRACE_SPAN("outer");
    {
      TS_TRACE_SPAN("inner");
      parallel_for(0, 64, 4, [&](std::size_t lo, std::size_t hi) {
        TS_TRACE_SPAN("chunk");
        volatile double x = 0.0;
        for (std::size_t i = lo; i < hi; ++i) x = x + static_cast<double>(i);
      });
    }
    TS_TRACE_SPAN_CAT("tail", "test");
  }
  obs::disable_trace();
}

TEST(Trace, ValidNestedJsonAtWidthOne) {
  const std::string path = testutil::test_tmp_dir() + "/trace1.json";
  set_parallel_threads(1);
  run_traced_workload(path);
  set_parallel_threads(0);
  std::vector<SpanView> spans;
  ASSERT_NO_FATAL_FAILURE(parse_trace(path, &spans));
  ASSERT_GE(spans.size(), 3u);  // outer, inner, tail + chunks
  expect_nesting(spans);
}

TEST(Trace, ValidNestedJsonAtWidthFour) {
  const std::string path = testutil::test_tmp_dir() + "/trace4.json";
  set_parallel_threads(4);
  run_traced_workload(path);
  set_parallel_threads(0);
  std::vector<SpanView> spans;
  ASSERT_NO_FATAL_FAILURE(parse_trace(path, &spans));
  ASSERT_GE(spans.size(), 3u);
  expect_nesting(spans);
  // The chunk spans from pool workers land on lanes other than the main
  // thread's; with width 4 at least the main lane exists.
  bool chunk_seen = false;
  for (const SpanView& s : spans) chunk_seen = chunk_seen || s.name == "chunk";
  EXPECT_TRUE(chunk_seen);
}

TEST(Trace, FlushMidRunKeepsFileValid) {
  const std::string path = testutil::test_tmp_dir() + "/trace_mid.json";
  obs::reset_trace();
  obs::enable_trace(path);
  { TS_TRACE_SPAN("first"); }
  ASSERT_TRUE(obs::flush_trace());
  std::vector<SpanView> spans;
  ASSERT_NO_FATAL_FAILURE(parse_trace(path, &spans));  // complete JSON mid-run
  EXPECT_EQ(spans.size(), 1u);
  { TS_TRACE_SPAN("second"); }
  obs::disable_trace();
  ASSERT_NO_FATAL_FAILURE(parse_trace(path, &spans));
  EXPECT_EQ(spans.size(), 2u);  // events accumulate across flushes
  obs::reset_trace();
}

TEST(Trace, DisabledSpansAllocateNothingAndRecordNothing) {
  obs::reset_trace();  // no path, tracing off
  { TS_TRACE_SPAN("warmup"); }  // fold in the one-time env check
  const std::uint64_t before = g_news.load();
  for (int i = 0; i < 1000; ++i) {
    TS_TRACE_SPAN("disabled");
  }
  EXPECT_EQ(g_news.load(), before) << "disabled TraceSpan allocated";
  EXPECT_EQ(obs::trace_event_count(), 0u);
}

TEST(Trace, EmitSpanCarriesReqAndTagArgsAndAsyncPairs) {
  const std::string path = testutil::test_tmp_dir() + "/trace_req.json";
  obs::reset_trace();
  obs::enable_trace(path);
  const std::uint64_t t0 = obs::trace_clock_ns();
  const std::uint64_t t1 = t0 + 1500;
  const std::string tag = "client-tag";
  obs::emit_span("serve.decode", "serve", t0, t1, /*req=*/7, &tag);
  obs::emit_async_span("serve.queue_wait", "serve", t0, t1, /*req=*/7);
  {
    TS_TRACE_SPAN_REQ("serve.handle.ping", "serve", 7);
  }
  {
    obs::TraceSpan span("serve.handle.sta", "serve");
    span.set_req(9);
    span.set_tag(tag);
  }
  obs::disable_trace();

  const auto doc = obs::parse_json(slurp(path));
  ASSERT_TRUE(doc.has_value());
  const obs::JsonValue* events = doc->find_array("traceEvents");
  ASSERT_NE(events, nullptr);
  std::size_t with_req = 0, with_tag = 0, begins = 0, ends = 0;
  for (const obs::JsonValue& e : events->array) {
    const obs::JsonValue* ph = e.find_string("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->str == "b" || ph->str == "e") {
      const obs::JsonValue* id = e.find_string("id");
      ASSERT_NE(id, nullptr);
      EXPECT_EQ(id->str, "r7");
      (ph->str == "b" ? begins : ends) += 1;
      continue;
    }
    if (ph->str != "X") continue;
    const obs::JsonValue* args = e.find_object("args");
    if (args == nullptr) continue;
    if (args->find_number("req") != nullptr) ++with_req;
    const obs::JsonValue* t = args->find_string("tag");
    if (t != nullptr) {
      EXPECT_EQ(t->str, "client-tag");
      ++with_tag;
    }
  }
  EXPECT_EQ(with_req, 3u);  // emit_span + TS_TRACE_SPAN_REQ + set_req
  EXPECT_EQ(with_tag, 2u);  // emit_span tag + set_tag
  EXPECT_EQ(begins, 1u);
  EXPECT_EQ(ends, 1u);
  obs::reset_trace();
}

TEST(Trace, DisabledRequestSpansAllocateNothing) {
  obs::reset_trace();  // no path, tracing off
  { TS_TRACE_SPAN("warmup"); }
  const std::string tag = "tag";  // built before counting: the span must not copy it
  const std::uint64_t before = g_news.load();
  for (int i = 0; i < 1000; ++i) {
    TS_TRACE_SPAN_REQ("disabled", "serve", 42);
  }
  for (int i = 0; i < 1000; ++i) {
    obs::TraceSpan span("disabled", "serve");
    span.set_req(42);
    span.set_tag(tag);
  }
  obs::emit_span("disabled", "serve", 0, 1, 42, &tag);
  obs::emit_async_span("disabled", "serve", 0, 1, 42);
  EXPECT_EQ(g_news.load(), before) << "disabled request-span path allocated";
  EXPECT_EQ(obs::trace_event_count(), 0u);
}

TEST(Metrics, HistogramPercentilesAndSnapshotEdges) {
  obs::set_metrics_enabled(true);
  obs::HistogramMetric& h = obs::metrics().histogram("pct.h", 0.0, 10.0, 5);
  h.reset();
  for (double x : {1.0, 3.0, 5.0, 7.0}) h.observe(x);
  // Rank interpolation: pos = q/100*(n-1), target = pos + 0.5, linear within
  // the bucket — the four samples sit at their buckets' midpoints.
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 4.0);
  EXPECT_DOUBLE_EQ(h.p99(), h.percentile(99.0));

  const auto doc = obs::parse_json(obs::metrics().to_json());
  ASSERT_TRUE(doc.has_value());
  const obs::JsonValue* hist = doc->find_object("histograms")->find_object("pct.h");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->number_or("count", 0.0), 4.0);
  EXPECT_EQ(hist->number_or("p50", 0.0), 4.0);
  ASSERT_NE(hist->find_number("p90"), nullptr);
  ASSERT_NE(hist->find_number("p99"), nullptr);
  const obs::JsonValue* edges = hist->find_array("edges");
  ASSERT_NE(edges, nullptr);
  ASSERT_EQ(edges->array.size(), 6u);  // bins + 1
  EXPECT_DOUBLE_EQ(edges->array.front().number, 0.0);
  EXPECT_DOUBLE_EQ(edges->array.back().number, 10.0);
  for (std::size_t i = 1; i < edges->array.size(); ++i) {
    EXPECT_GT(edges->array[i].number, edges->array[i - 1].number);
  }
  h.reset();
  obs::set_metrics_enabled(false);
}

TEST(Metrics, DisabledCounterAllocatesNothing) {
  obs::set_metrics_enabled(false);
  obs::Counter& c = obs::metrics().counter("test.disabled_counter");
  c.reset();
  const std::uint64_t before = g_news.load();
  for (int i = 0; i < 1000; ++i) c.add();
  EXPECT_EQ(g_news.load(), before);
  EXPECT_EQ(c.value(), 0u);  // gated off: nothing recorded
}

TEST(Metrics, RegistryIsDeterministic) {
  obs::set_metrics_enabled(true);
  const auto run_workload = [] {
    obs::metrics().counter("det.a").add(3);
    obs::metrics().counter("det.b").add();
    obs::metrics().gauge("det.g").set(2.5);
    obs::HistogramMetric& h = obs::metrics().histogram("det.h", 0.0, 10.0, 5);
    h.observe(1.0);
    h.observe(7.5);
    h.observe(42.0);  // clamps into the top bucket
  };
  run_workload();
  const std::string first = obs::metrics().to_json();
  obs::metrics().reset_values();
  run_workload();
  const std::string second = obs::metrics().to_json();
  EXPECT_EQ(first, second);

  const auto doc = obs::parse_json(first);
  ASSERT_TRUE(doc.has_value());
  const obs::JsonValue* counters = doc->find_object("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->number_or("det.a", 0.0), 3.0);
  EXPECT_EQ(counters->number_or("det.b", 0.0), 1.0);
  const obs::JsonValue* gauges = doc->find_object("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_EQ(gauges->number_or("det.g", 0.0), 2.5);
  const obs::JsonValue* hists = doc->find_object("histograms");
  ASSERT_NE(hists, nullptr);
  const obs::JsonValue* h = hists->find_object("det.h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->number_or("count", 0.0), 3.0);
  obs::metrics().reset_values();
  obs::set_metrics_enabled(false);
}

TEST(Metrics, KindMismatchThrows) {
  obs::metrics().counter("kind.test");
  EXPECT_THROW(obs::metrics().gauge("kind.test"), std::runtime_error);
  EXPECT_THROW(obs::metrics().histogram("kind.test", 0, 1, 2), std::runtime_error);
}

TEST(ScopedPhase, AccumulatesIntoPhaseStatAndReport) {
  obs::run_report().reset();
  obs::set_run_report_path(testutil::test_tmp_dir() + "/phase_report.json");
  PhaseStat stat;
  for (int i = 0; i < 2; ++i) {
    obs::ScopedPhase phase("test.phase", &stat);
    volatile double x = 0.0;
    for (int k = 0; k < 10000; ++k) x = x + 1.0;
  }
  EXPECT_GT(stat.wall_s, 0.0);
  EXPECT_GE(stat.busy_s, stat.wall_s);
  const auto doc = obs::parse_json(obs::run_report().to_json());
  ASSERT_TRUE(doc.has_value());
  const obs::JsonValue* phases = doc->find_array("phases");
  ASSERT_NE(phases, nullptr);
  bool found = false;
  for (const obs::JsonValue& p : phases->array) {
    const obs::JsonValue* name = p.find_string("name");
    if (name != nullptr && name->str == "test.phase") {
      found = true;
      EXPECT_EQ(p.number_or("count", 0.0), 2.0);
      EXPECT_GT(p.number_or("wall_s", 0.0), 0.0);
    }
  }
  EXPECT_TRUE(found);
  obs::set_run_report_path("");
  obs::run_report().reset();
}

/// The design holds a pointer to its library: keep one for the process.
const CellLibrary& lib() {
  static const CellLibrary l = CellLibrary::make_default();
  return l;
}

/// Tiny refine-ready design, bench_refine_replay style.
struct Prepared {
  Design design;
  SteinerForest forest;

  explicit Prepared(int comb) : design(make(comb)), forest(build_forest(design)) {
    const StaResult sta = run_sta(design, forest, nullptr);
    design.set_clock_period(0.6 * sta.max_arrival);
  }

 private:
  static Design make(int comb) {
    GeneratorParams p;
    p.num_comb_cells = comb;
    p.num_registers = comb / 10;
    p.num_primary_inputs = 8;
    p.num_primary_outputs = 8;
    p.seed = 12;
    Design d = generate_design(lib(), p);
    place_design(d);
    return d;
  }
};

TEST(RefineTelemetry, JsonlSchemaAndIterationLog) {
  const std::string dir = testutil::test_tmp_dir();
  const std::string jsonl = dir + "/iters.jsonl";
  const std::string report_path = dir + "/run.json";
  obs::run_report().reset();
  obs::set_iteration_log_path(jsonl);
  obs::set_run_report_path(report_path);

  Prepared p(150);
  const TimingGnn model(GnnConfig{}, lib().num_types());
  RefineOptions ropts;
  ropts.max_iterations = 4;
  const RefineResult r = refine_steiner_points(p.design, p.forest, model, ropts);

  obs::set_iteration_log_path("");
  ASSERT_TRUE(obs::flush_run_report());
  obs::set_run_report_path("");

  // In-memory log: one record per iteration, iter fields consecutive,
  // keep-best monotone.
  ASSERT_EQ(static_cast<int>(r.iteration_log.size()), r.iterations);
  double best = -1e30;
  for (std::size_t i = 0; i < r.iteration_log.size(); ++i) {
    const obs::RefineIterationRecord& rec = r.iteration_log[i];
    EXPECT_EQ(rec.iter, static_cast<int>(i));
    EXPECT_GE(rec.best_wns, best);
    best = rec.best_wns;
    EXPECT_GT(rec.theta, 0.0);
    EXPECT_GE(rec.wall_s, 0.0);
  }

  // JSONL stream: line-per-iteration, full schema.
  std::ifstream in(jsonl);
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::string error;
    const auto doc = obs::parse_json(line, &error);
    ASSERT_TRUE(doc.has_value()) << error;
    ASSERT_NE(doc->find_string("design"), nullptr);
    for (const char* key : {"iter", "wns", "tns", "best_wns", "best_tns", "theta",
                            "grad_norm", "max_move", "lambda_w", "lambda_t", "wall_s"}) {
      EXPECT_NE(doc->find_number(key), nullptr) << key;
    }
    const obs::JsonValue* accept = doc->find("accept");
    ASSERT_NE(accept, nullptr);
    EXPECT_TRUE(accept->is_bool());
    ++lines;
  }
  EXPECT_EQ(lines, r.iterations);

  // Run report embeds the same refine run.
  const auto report = obs::parse_json(slurp(report_path));
  ASSERT_TRUE(report.has_value());
  const obs::JsonValue* refines = report->find_array("refine");
  ASSERT_NE(refines, nullptr);
  ASSERT_EQ(refines->array.size(), 1u);
  EXPECT_EQ(refines->array[0].number_or("iterations", -1.0),
            static_cast<double>(r.iterations));
  const obs::JsonValue* iters = refines->array[0].find_array("iters");
  ASSERT_NE(iters, nullptr);
  EXPECT_EQ(iters->array.size(), r.iteration_log.size());
  EXPECT_NE(report->find_object("metrics"), nullptr);
  obs::run_report().reset();
}

TEST(RunReport, OptionsAndPhasesSerializeDeterministically) {
  obs::RunReport report;
  report.set_option("b_key", "two");
  report.set_option("a_key", "one");
  report.set_option("b_key", "three");  // overwrite, no duplicate
  PhaseStat stat;
  stat.wall_s = 1.0;
  stat.busy_s = 2.0;
  report.add_phase("p", stat);
  report.add_phase("p", stat);
  const auto doc = obs::parse_json(report.to_json());
  ASSERT_TRUE(doc.has_value());
  const obs::JsonValue* options = doc->find_object("options");
  ASSERT_NE(options, nullptr);
  ASSERT_EQ(options->object.size(), 2u);
  EXPECT_EQ(options->object[0].first, "b_key");  // insertion order
  EXPECT_EQ(options->object[0].second.str, "three");
  const obs::JsonValue* phases = doc->find_array("phases");
  ASSERT_NE(phases, nullptr);
  ASSERT_EQ(phases->array.size(), 1u);
  EXPECT_EQ(phases->array[0].number_or("wall_s", 0.0), 2.0);
  EXPECT_EQ(phases->array[0].number_or("busy_s", 0.0), 4.0);
  EXPECT_EQ(phases->array[0].number_or("count", 0.0), 2.0);
  EXPECT_EQ(phases->array[0].number_or("utilization", 0.0), 2.0);
}

TEST(Json, ParserHandlesEscapesAndRejectsGarbage) {
  const auto doc = obs::parse_json(R"({"aA":"x\ny","n":-1.5e2,"b":[true,null]})");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("aA")->str, "x\ny");
  EXPECT_EQ(doc->number_or("n", 0.0), -150.0);
  EXPECT_FALSE(obs::parse_json("{\"a\":1} trailing").has_value());
  EXPECT_FALSE(obs::parse_json("{\"a\":").has_value());
  EXPECT_FALSE(obs::parse_json("").has_value());
}

}  // namespace
}  // namespace tsteiner
