#include <gtest/gtest.h>

#include <filesystem>

#include "testutil.hpp"
#include "tsteiner/random_move.hpp"
#include "verify/case_gen.hpp"
#include "verify/diff_harness.hpp"
#include "verify/invariants.hpp"

namespace tsteiner::verify {
namespace {

TEST(CaseGen, PureFunctionOfSeed) {
  const FuzzCase a = make_case(42, "tiny");
  const FuzzCase b = make_case(42, "tiny");
  EXPECT_EQ(a.params.num_comb_cells, b.params.num_comb_cells);
  EXPECT_EQ(a.params.num_registers, b.params.num_registers);
  EXPECT_EQ(a.num_cells(), b.num_cells());
  EXPECT_EQ(a.design.clock_period(), b.design.clock_period());
  EXPECT_EQ(a.forest.gather_x(), b.forest.gather_x());
  EXPECT_EQ(a.forest.gather_y(), b.forest.gather_y());
}

TEST(CaseGen, DistinctSeedsProduceDistinctCases) {
  const FuzzCase a = make_case(1, "tiny");
  const FuzzCase b = make_case(2, "tiny");
  // The clock is a continuous function of the seeded design; a collision
  // would require two unrelated streams to agree to the last bit.
  EXPECT_NE(a.design.clock_period(), b.design.clock_period());
}

TEST(CaseGen, TinyScaleStaysSmall) {
  for (std::uint64_t seed : {7ull, 8ull, 9ull}) {
    const FuzzCase c = make_case(seed, "tiny");
    EXPECT_LE(c.params.num_comb_cells, 96);
    EXPECT_GE(c.params.num_comb_cells, 24);
    EXPECT_GT(c.forest.trees.size(), 0u);
  }
}

TEST(CaseGen, SnapshotRoundTripsThroughDb) {
  const FuzzCase c = make_case(11, "tiny");
  const std::string path = testutil::test_tmp_dir() + "/case.tsdb";
  ASSERT_TRUE(save_case_snapshot(c, path));
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_GT(std::filesystem::file_size(path), 0u);
}

TEST(RandomDisturb, SeededOverloadIsDeterministic) {
  const FuzzCase c = make_case(21, "tiny");
  const SteinerForest a = random_disturb(c.forest, c.design.die(), 10.0, 77);
  const SteinerForest b = random_disturb(c.forest, c.design.die(), 10.0, 77);
  EXPECT_EQ(a.gather_x(), b.gather_x());
  EXPECT_EQ(a.gather_y(), b.gather_y());
  if (c.forest.num_movable() > 0) {
    const SteinerForest other = random_disturb(c.forest, c.design.die(), 10.0, 78);
    EXPECT_NE(a.gather_x(), other.gather_x());
  }
}

TEST(Invariants, GeneratedForestsPass) {
  const FuzzCase c = make_case(31, "tiny");
  EXPECT_EQ(check_forest_invariants(c.design, c.forest, /*require_min_degree=*/true), "");
}

TEST(Invariants, DetectsDroppedEdge) {
  FuzzCase c = make_case(32, "tiny");
  for (SteinerTree& tree : c.forest.trees) {
    if (!tree.edges.empty()) {
      tree.edges.pop_back();
      break;
    }
  }
  EXPECT_NE(check_forest_invariants(c.design, c.forest, /*require_min_degree=*/false), "");
}

TEST(Invariants, DetectsOffGridSteinerPoint) {
  FuzzCase c = make_case(33, "tiny");
  bool nudged = false;
  for (SteinerTree& tree : c.forest.trees) {
    for (SteinerNode& node : tree.nodes) {
      if (node.is_steiner()) {
        node.pos.x += 0.25;
        nudged = true;
        break;
      }
    }
    if (nudged) break;
  }
  if (!nudged) GTEST_SKIP() << "no Steiner nodes in this seed";
  EXPECT_NE(check_forest_invariants(c.design, c.forest, /*require_min_degree=*/false,
                                    /*require_integral=*/true),
            "");
}

TEST(Invariants, LsePenaltyMathOnKnownVectors) {
  EXPECT_EQ(check_lse_penalty_properties({0.5, -0.2, 0.1}, 0.05), "");
  EXPECT_EQ(check_lse_penalty_properties({-1.0, -1.0, -1.0}, 1.0), "");
  EXPECT_NE(check_lse_penalty_properties({0.5}, -1.0), "");  // bad temperature
  EXPECT_NE(check_lse_penalty_properties({}, 0.1), "");      // no endpoints
}

TEST(Invariants, SmallNetBruteForceFlagsDetour) {
  // A 2-pin connection routed through a far-away Steiner point is provably
  // suboptimal; the Hanan brute force must say so.
  SteinerTree tree;
  tree.net = 0;
  tree.nodes = {{{0.0, 0.0}, 0}, {{10.0, 0.0}, 1}, {{5.0, 40.0}, -1}};
  tree.edges = {{0, 2}, {2, 1}};
  tree.driver_node = 0;
  EXPECT_NE(check_small_net_optimality(tree), "");
  // The direct connection is optimal.
  SteinerTree direct;
  direct.net = 0;
  direct.nodes = {{{0.0, 0.0}, 0}, {{10.0, 0.0}, 1}};
  direct.edges = {{0, 1}};
  direct.driver_node = 0;
  EXPECT_EQ(check_small_net_optimality(direct), "");
}

TEST(Shrinker, ReducesToFloorWhenEverythingFails) {
  const FuzzCase big = make_case(41, "tiny");
  const FuzzCase small =
      shrink_case(big, [](const FuzzCase&) { return true; });
  EXPECT_LE(small.num_cells(), 20);
  EXPECT_EQ(small.seed, big.seed);
}

TEST(Shrinker, KeepsOriginalWhenNothingSmallerFails) {
  const FuzzCase big = make_case(42, "tiny");
  const FuzzCase same = shrink_case(
      big, [&](const FuzzCase& cand) { return cand.num_cells() == big.num_cells(); });
  EXPECT_EQ(same.num_cells(), big.num_cells());
}

TEST(DiffHarness, CleanSweepPasses) {
  HarnessOptions opts;
  opts.cases = 3;
  opts.seed = 7;
  opts.work_dir = testutil::test_tmp_dir();
  const auto failures = DiffHarness::standard().run(opts);
  EXPECT_TRUE(failures.empty()) << failures.front().oracle << ": "
                                << failures.front().message;
}

TEST(DiffHarness, EveryMutationIsCaught) {
  // The mutation smoke test from the issue: each oracle carries a known
  // perturbation that must produce at least one failure — a silently
  // vacuous oracle cannot pass this.
  const DiffHarness harness = DiffHarness::standard();
  const std::string work = testutil::test_tmp_dir();
  for (const Oracle& oracle : harness.oracles()) {
    if (!oracle.supports_mutation) continue;
    HarnessOptions opts;
    opts.cases = 3;
    opts.seed = 5;
    opts.only = {oracle.name};
    opts.mutate_oracle = oracle.name;
    opts.shrink = false;
    opts.max_failures = 1;
    opts.work_dir = work;
    const auto failures = harness.run(opts);
    EXPECT_FALSE(failures.empty()) << "mutation of " << oracle.name << " went undetected";
  }
}

TEST(DiffHarness, FailurePrintsReproAndShrinksBelowTwentyCells) {
  HarnessOptions opts;
  opts.cases = 1;
  opts.seed = 9;
  opts.only = {"lse-penalty"};
  opts.mutate_oracle = "lse-penalty";
  opts.work_dir = testutil::test_tmp_dir();
  const auto failures = DiffHarness::standard().run(opts);
  ASSERT_FALSE(failures.empty());
  const OracleFailure& f = failures.front();
  EXPECT_EQ(f.oracle, "lse-penalty");
  EXPECT_NE(f.repro.find("tsteiner_fuzz"), std::string::npos);
  EXPECT_NE(f.repro.find("--replay " + std::to_string(f.seed)), std::string::npos);
  EXPECT_NE(f.repro.find("--oracle lse-penalty"), std::string::npos);
  EXPECT_LE(f.shrunk_cells, 20) << "greedy shrinking should reach the size floor";
  ASSERT_FALSE(f.snapshot_path.empty());
  EXPECT_TRUE(std::filesystem::exists(f.snapshot_path));
}

TEST(DiffHarness, ReplayReRunsTheExactCase) {
  // A failure's seed must reproduce standalone, independent of case index.
  HarnessOptions opts;
  opts.replay = true;
  opts.replay_seed = Rng::mix(5, 2);  // case 2 of run seed 5
  opts.only = {"forest-invariants"};
  opts.mutate_oracle = "forest-invariants";
  opts.shrink = false;
  opts.work_dir = testutil::test_tmp_dir();
  const auto failures = DiffHarness::standard().run(opts);
  ASSERT_FALSE(failures.empty());
  EXPECT_EQ(failures.front().seed, opts.replay_seed);
}

}  // namespace
}  // namespace tsteiner::verify
