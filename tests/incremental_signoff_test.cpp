// Bit-exactness of the incremental sign-off path against the full pipeline,
// layer by layer: global-route replay, detailed-route state, and the
// composed IncrementalSignoff versus Flow::run_signoff.
#include <gtest/gtest.h>

#include <cstring>

#include "flow/experiment.hpp"
#include "flow/flow.hpp"
#include "flow/incremental_signoff.hpp"
#include "netlist/design_generator.hpp"
#include "obs/metrics.hpp"
#include "place/placer.hpp"
#include "tsteiner/refine.hpp"
#include "util/rng.hpp"

namespace tsteiner {
namespace {

const CellLibrary& lib() {
  static const CellLibrary l = CellLibrary::make_default();
  return l;
}

Design make_design(std::uint64_t seed, int comb = 200) {
  GeneratorParams p;
  p.num_comb_cells = comb;
  p.num_registers = comb / 9;
  p.num_primary_inputs = 5;
  p.num_primary_outputs = 5;
  p.seed = seed;
  Design d = generate_design(lib(), p);
  place_design(d);
  return d;
}

/// Trees with at least one Steiner point, i.e. movable geometry.
std::vector<int> movable_trees(const SteinerForest& forest) {
  std::vector<int> out;
  for (std::size_t t = 0; t < forest.trees.size(); ++t) {
    if (forest.trees[t].num_steiner_nodes() > 0) out.push_back(static_cast<int>(t));
  }
  return out;
}

/// Move every Steiner point of one tree; returns the tree's net.
int nudge_tree(SteinerForest& forest, int t, double dx, double dy) {
  SteinerTree& tree = forest.trees[static_cast<std::size_t>(t)];
  for (SteinerNode& n : tree.nodes) {
    if (n.is_steiner()) {
      n.pos.x += dx;
      n.pos.y += dy;
    }
  }
  return tree.net;
}

void expect_gr_identical(const GlobalRouteResult& a, const GlobalRouteResult& b) {
  EXPECT_EQ(a.wirelength_dbu, b.wirelength_dbu);
  EXPECT_EQ(a.total_overflow, b.total_overflow);
  EXPECT_EQ(a.overflowed_edges, b.overflowed_edges);
  ASSERT_EQ(a.connections.size(), b.connections.size());
  for (std::size_t c = 0; c < a.connections.size(); ++c) {
    const auto& pa = a.connections[c].path;
    const auto& pb = b.connections[c].path;
    ASSERT_EQ(pa.size(), pb.size()) << "connection " << c;
    for (std::size_t i = 0; i < pa.size(); ++i) {
      EXPECT_EQ(pa[i].x, pb[i].x) << "connection " << c << " step " << i;
      EXPECT_EQ(pa[i].y, pb[i].y) << "connection " << c << " step " << i;
    }
  }
}

void expect_sta_identical(const StaResult& a, const StaResult& b) {
  ASSERT_EQ(a.arrival.size(), b.arrival.size());
  EXPECT_EQ(0, std::memcmp(a.arrival.data(), b.arrival.data(),
                           a.arrival.size() * sizeof(double)));
  EXPECT_EQ(0, std::memcmp(a.slew.data(), b.slew.data(), a.slew.size() * sizeof(double)));
  EXPECT_EQ(a.wns, b.wns);
  EXPECT_EQ(a.tns, b.tns);
  EXPECT_EQ(a.max_arrival, b.max_arrival);
  EXPECT_EQ(a.num_violations, b.num_violations);
  EXPECT_EQ(a.num_slew_violations, b.num_slew_violations);
  EXPECT_EQ(a.num_cap_violations, b.num_cap_violations);
}

void expect_signoff_identical(const IncrementalSignoff::Result& inc, const FlowResult& ref) {
  EXPECT_EQ(inc.metrics.wns_ns, ref.metrics.wns_ns);
  EXPECT_EQ(inc.metrics.tns_ns, ref.metrics.tns_ns);
  EXPECT_EQ(inc.metrics.num_vios, ref.metrics.num_vios);
  EXPECT_EQ(inc.metrics.wirelength_dbu, ref.metrics.wirelength_dbu);
  EXPECT_EQ(inc.metrics.num_vias, ref.metrics.num_vias);
  EXPECT_EQ(inc.metrics.num_drvs, ref.metrics.num_drvs);
  expect_gr_identical(*inc.gr, ref.gr);
  expect_sta_identical(*inc.sta, ref.sta);
}

TEST(GlobalRouterState, UpdateMatchesFreshRouteBitForBit) {
  Design d = make_design(201);
  const Flow flow(&d);
  GlobalRouterState state(&d, flow.options().router);
  state.route_full(flow.initial_forest());

  SteinerForest moved = flow.initial_forest();
  const std::vector<int> cand = movable_trees(moved);
  ASSERT_GE(cand.size(), 3u);
  std::vector<char> dirty(moved.trees.size(), 0);
  for (int k = 0; k < 3; ++k) {
    const int t = cand[static_cast<std::size_t>(k) * cand.size() / 3];
    nudge_tree(moved, t, 11.0 - 3.0 * k, -5.0 + 4.0 * k);
    dirty[static_cast<std::size_t>(t)] = 1;
  }
  const GlobalRouteResult& incremental = state.update(moved, dirty);
  const GlobalRouteResult fresh = global_route(d, moved, flow.options().router);
  expect_gr_identical(incremental, fresh);
}

TEST(GlobalRouterState, NoOpUpdateIsAHitAndIdentical) {
  Design d = make_design(202);
  const Flow flow(&d);
  GlobalRouterState state(&d, flow.options().router);
  const GlobalRouteResult full = state.route_full(flow.initial_forest());
  const double wl = full.wirelength_dbu;

  const std::vector<char> dirty(flow.initial_forest().trees.size(), 0);
  const GlobalRouteResult& again = state.update(flow.initial_forest(), dirty);
  EXPECT_TRUE(state.last_update_was_hit());
  EXPECT_EQ(again.wirelength_dbu, wl);
  EXPECT_GT(state.last_reused_mazes() + 1, state.last_total_mazes())
      << "a no-op update must reuse every cached maze";
}

// Maze-reuse regression: under structural congestion (RRR fires every run)
// a replay whose only change is one nudged tree in a die corner must serve
// most victim mazes from the cache — their windows are provably untouched.
// Guards the accounting bug where reused_mazes stayed 0 because the bench
// geometry never entered RRR at all (total_mazes was 0, making the metric
// vacuously zero rather than honestly zero).
TEST(GlobalRouterState, UntouchedWindowsReuseCachedMazes) {
  Design d = make_design(206, 300);
  FlowOptions fopts;
  fopts.router.gcell_size = 2;
  fopts.router.maze_margin = 2;
  fopts.router.capacity_factor = 1.0;  // tight caps: overflow + RRR guaranteed
  const Flow flow(&d, fopts);  // pins calibrated capacities into options()
  GlobalRouterState state(&d, flow.options().router);
  state.route_full(flow.initial_forest());

  SteinerForest moved = flow.initial_forest();
  const std::vector<int> cand = movable_trees(moved);
  ASSERT_FALSE(cand.empty());
  // The tree whose Steiner points sit closest to the lower-left die corner:
  // nudging it perturbs one corner window, leaving the rest of the die's
  // routing field bit-identical to the cached run.
  int corner_tree = cand.front();
  double best = 1e300;
  for (const int t : cand) {
    for (const SteinerNode& n : moved.trees[static_cast<std::size_t>(t)].nodes) {
      if (n.is_steiner() && n.pos.x + n.pos.y < best) {
        best = n.pos.x + n.pos.y;
        corner_tree = t;
      }
    }
  }
  nudge_tree(moved, corner_tree, 2.0, 2.0);
  std::vector<char> dirty(moved.trees.size(), 0);
  dirty[static_cast<std::size_t>(corner_tree)] = 1;
  const GlobalRouteResult& inc = state.update(moved, dirty);

  ASSERT_GT(state.last_total_mazes(), 0) << "no RRR mazes ran; the reuse check is vacuous";
  EXPECT_GT(state.last_reused_mazes(), 0)
      << "victims with untouched windows must be served from the maze cache";
  // Reuse must never cost exactness.
  const GlobalRouteResult fresh = global_route(d, moved, flow.options().router);
  expect_gr_identical(inc, fresh);
}

TEST(DetailedRouteState, UpdateMatchesFullSurrogateBitForBit) {
  Design d = make_design(203);
  const Flow flow(&d);
  GlobalRouterState router(&d, flow.options().router);
  router.route_full(flow.initial_forest());

  DetailedRouteState dr(&d, flow.options().droute);
  dr.full(router.result());

  SteinerForest moved = flow.initial_forest();
  const std::vector<int> cand = movable_trees(moved);
  ASSERT_GE(cand.size(), 2u);
  std::vector<char> dirty(moved.trees.size(), 0);
  nudge_tree(moved, cand.front(), 17.0, 9.0);
  nudge_tree(moved, cand.back(), -13.0, 6.0);
  dirty[static_cast<std::size_t>(cand.front())] = 1;
  dirty[static_cast<std::size_t>(cand.back())] = 1;
  const GlobalRouteResult& gr = router.update(moved, dirty);

  const DetailedRouteResult& inc = dr.update(gr, router.changed_connections());
  const DetailedRouteResult ref = detailed_route(d, moved, gr, flow.options().droute);
  EXPECT_EQ(inc.wirelength_dbu, ref.wirelength_dbu);
  EXPECT_EQ(inc.num_vias, ref.num_vias);
  EXPECT_EQ(inc.num_drvs, ref.num_drvs);
  EXPECT_EQ(inc.repair_rounds_used, ref.repair_rounds_used);
  EXPECT_EQ(inc.repair_work, ref.repair_work);
}

TEST(IncrementalSignoff, FullMatchesFlowRunSignoff) {
  Design d = make_design(204);
  const Flow flow(&d);
  IncrementalSignoff signoff(&d, flow.options());
  const IncrementalSignoff::Result& r = signoff.full(flow.initial_forest());
  const FlowResult ref = flow.run_signoff(flow.initial_forest());
  EXPECT_FALSE(r.incremental);
  expect_signoff_identical(r, ref);
}

TEST(IncrementalSignoff, UpdateRoundsMatchFullSignoffBitForBit) {
  Design d = make_design(205);
  const Flow flow(&d);
  IncrementalSignoff signoff(&d, flow.options());
  signoff.full(flow.initial_forest());

  SteinerForest moved = flow.initial_forest();
  Rng rng(7);
  for (int round = 0; round < 4; ++round) {
    const std::vector<int> cand = movable_trees(moved);
    ASSERT_FALSE(cand.empty());
    std::vector<int> dirty;
    const int picks = 1 + static_cast<int>(rng.index(3));
    for (int k = 0; k < picks; ++k) {
      const int t = cand[rng.index(cand.size())];
      dirty.push_back(nudge_tree(moved, t, rng.uniform(-14.0, 14.0), rng.uniform(-14.0, 14.0)));
    }
    // Duplicates must be tolerated (refine emits one entry per moved point).
    dirty.push_back(dirty.front());
    const IncrementalSignoff::Result& r = signoff.update(moved, dirty);
    EXPECT_TRUE(r.incremental);
    const FlowResult ref = flow.run_signoff(moved);
    expect_signoff_identical(r, ref);
  }
}

TEST(IncrementalSignoff, EmptyDirtyListIsAnExactHit) {
  Design d = make_design(206);
  const Flow flow(&d);
  IncrementalSignoff signoff(&d, flow.options());
  const SignoffMetrics base = signoff.full(flow.initial_forest()).metrics;
  const IncrementalSignoff::Result& r = signoff.update(flow.initial_forest(), {});
  EXPECT_TRUE(r.incremental);
  EXPECT_EQ(r.num_rerouted, 0u);
  EXPECT_EQ(r.metrics.wns_ns, base.wns_ns);
  EXPECT_EQ(r.metrics.tns_ns, base.tns_ns);
  EXPECT_EQ(r.metrics.wirelength_dbu, base.wirelength_dbu);
  EXPECT_EQ(r.metrics.num_drvs, base.num_drvs);
}

TEST(Flow, ProbeRouteIsCachedAcrossConstructions) {
  obs::set_metrics_enabled(true);
  obs::metrics().counter("flow.probe_cache_hits").reset();
  Design d1 = make_design(208);
  Design d2 = make_design(208);
  const Flow f1(&d1);
  const std::uint64_t hits_after_first = obs::metrics().counter("flow.probe_cache_hits").value();
  const Flow f2(&d2);
  obs::set_metrics_enabled(false);
  // Identical design/forest/options: the second construction must reuse the
  // first probe route...
  EXPECT_GT(obs::metrics().counter("flow.probe_cache_hits").value(), hits_after_first);
  // ...and land on the identical pinned calibration.
  EXPECT_EQ(f1.options().router.fixed_h_cap, f2.options().router.fixed_h_cap);
  EXPECT_EQ(f1.options().router.fixed_v_cap, f2.options().router.fixed_v_cap);
  const FlowResult r1 = f1.run_signoff(f1.initial_forest());
  const FlowResult r2 = f2.run_signoff(f2.initial_forest());
  EXPECT_EQ(r1.metrics.wns_ns, r2.metrics.wns_ns);
  EXPECT_EQ(r1.metrics.wirelength_dbu, r2.metrics.wirelength_dbu);
}

TEST(IncrementalSignoff, UpdateWithoutPriorFullRunsFull) {
  Design d = make_design(207);
  const Flow flow(&d);
  IncrementalSignoff signoff(&d, flow.options());
  const IncrementalSignoff::Result& r = signoff.update(flow.initial_forest(), {});
  EXPECT_FALSE(r.incremental);
  const FlowResult ref = flow.run_signoff(flow.initial_forest());
  expect_signoff_identical(r, ref);
}

TEST(RefineProbe, IncrementalProbesMatchFullSignoffBitForBit) {
  // Wire a probe into the real refine loop and check, at every probe point,
  // that the incremental sign-off agrees with a full Flow::run_signoff on
  // the exact probed forest — the telemetry the JSONL stream reports must be
  // the golden numbers, not an approximation.
  const auto suite = benchmark_suite();
  PreparedDesign pd = prepare_design(lib(), suite[5], 1.0);  // spm
  GnnConfig cfg;
  cfg.hidden = 6;
  TimingGnn model(cfg, lib().num_types());

  RefineOptions ropts;
  ropts.max_iterations = 6;
  ropts.gcell_size = pd.flow->options().router.gcell_size;
  ropts.signoff_probe_every = 2;
  IncrementalSignoff inc(pd.design.get(), pd.flow->options());
  int probes = 0;
  int incremental_probes = 0;
  ropts.signoff_probe = [&](const SteinerForest& f, const std::vector<int>& dirty) {
    const IncrementalSignoff::Result& r = inc.update(f, dirty);
    const FlowResult ref = pd.flow->run_signoff(f);
    expect_signoff_identical(r, ref);
    ++probes;
    if (r.incremental) ++incremental_probes;
    return SignoffProbeResult{r.metrics.wns_ns, r.metrics.tns_ns, r.incremental};
  };

  const RefineResult rr =
      refine_steiner_points(*pd.design, pd.flow->initial_forest(), model, ropts);
  EXPECT_GE(probes, 2);
  EXPECT_GE(incremental_probes, 1) << "all probes after the anchor take the update path";
  int logged = 0;
  for (const obs::RefineIterationRecord& rec : rr.iteration_log) {
    if (!rec.has_signoff) continue;
    ++logged;
    EXPECT_GE(rec.signoff_dirty_frac, 0.0);
    EXPECT_LE(rec.signoff_dirty_frac, 1.0);
  }
  EXPECT_EQ(logged, probes);
}

}  // namespace
}  // namespace tsteiner
