// Second property-based suite: invariants of the optimization and analysis
// subsystems added on top of the core flow (buffering, incremental STA,
// layer assignment, Prim-Dijkstra, autodiff fuzz).
#include <gtest/gtest.h>

#include "autodiff/tape.hpp"
#include "netlist/design_generator.hpp"
#include "opt/buffering.hpp"
#include "place/placer.hpp"
#include "route/layer_assign.hpp"
#include "sta/incremental.hpp"
#include "steiner/prim_dijkstra.hpp"
#include "steiner/rsmt.hpp"
#include "tsteiner/random_move.hpp"

namespace tsteiner {
namespace {

const CellLibrary& lib() {
  static const CellLibrary l = CellLibrary::make_default();
  return l;
}

Design make_design(std::uint64_t seed, int comb = 220) {
  GeneratorParams p;
  p.num_comb_cells = comb;
  p.num_registers = comb / 10;
  p.num_primary_inputs = 6;
  p.num_primary_outputs = 6;
  p.seed = seed;
  Design d = generate_design(lib(), p);
  place_design(d);
  d.set_clock_period(1.0);
  return d;
}

// ---------------------------------------------------------------------------
// Buffering never breaks the netlist and never hurts the buffered net.
// ---------------------------------------------------------------------------
class BufferingProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BufferingProperty, ApplyKeepsDesignValidAndHelps) {
  Design d = make_design(GetParam(), 260);
  const SteinerForest f = build_forest(d);
  const StaResult before = run_sta(d, f, nullptr);
  // Buffer the 5 nets with the largest total wirelength.
  std::vector<std::pair<double, int>> ranked;
  for (const SteinerTree& t : f.trees) ranked.push_back({-t.wirelength(), t.net});
  std::sort(ranked.begin(), ranked.end());
  int applied = 0;
  for (int k = 0; k < 5 && k < static_cast<int>(ranked.size()); ++k) {
    const int net = ranked[static_cast<std::size_t>(k)].second;
    const int t = f.net_to_tree[static_cast<std::size_t>(net)];
    const SteinerTree& tree = f.trees[static_cast<std::size_t>(t)];
    const BufferingPlan plan = plan_buffering(d, tree);
    EXPECT_LE(plan.delay_after_ns, plan.delay_before_ns + 1e-12);
    if (plan.buffers.empty()) continue;
    apply_buffering(d, plan, tree);
    ++applied;
  }
  EXPECT_NO_THROW(d.validate());
  if (applied > 0) {
    const SteinerForest f2 = build_forest(d);
    const StaResult after = run_sta(d, f2, nullptr);
    // Buffering the longest nets must not blow up global timing.
    EXPECT_GT(after.wns, before.wns - 0.25 * std::abs(before.wns));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BufferingProperty, ::testing::Values(301, 302, 303, 304, 305));

// ---------------------------------------------------------------------------
// Incremental STA stays exact under random multi-net updates.
// ---------------------------------------------------------------------------
class IncrementalProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IncrementalProperty, ExactAfterRandomUpdates) {
  Design d = make_design(GetParam(), 260);
  SteinerForest f = build_forest(d);
  IncrementalSta inc(d);
  inc.analyze(f, nullptr);
  Rng rng(GetParam() * 31 + 1);
  for (int round = 0; round < 3; ++round) {
    std::vector<int> dirty;
    for (int k = 0; k < 4; ++k) {
      const std::size_t t = rng.index(f.trees.size());
      SteinerTree& tree = f.trees[t];
      bool moved = false;
      for (SteinerNode& n : tree.nodes) {
        if (n.is_steiner()) {
          n.pos.x += rng.uniform(-5.0, 5.0);
          n.pos.y += rng.uniform(-5.0, 5.0);
          moved = true;
        }
      }
      if (moved) dirty.push_back(tree.net);
    }
    if (dirty.empty()) continue;
    inc.update(f, nullptr, dirty);
    const StaResult full = run_sta(d, f, nullptr);
    EXPECT_NEAR(inc.result().wns, full.wns, 1e-9) << "round " << round;
    EXPECT_NEAR(inc.result().tns, full.tns, 1e-9) << "round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalProperty,
                         ::testing::Values(311, 312, 313, 314, 315, 316));

// ---------------------------------------------------------------------------
// Layer assignment: faster layers can only help; budgets hold at any policy.
// ---------------------------------------------------------------------------
struct LayerCase {
  std::uint64_t seed;
  LayerPolicy policy;
};

class LayerProperty : public ::testing::TestWithParam<LayerCase> {};

TEST_P(LayerProperty, NeverHurtsTiming) {
  Design d = make_design(GetParam().seed, 240);
  const SteinerForest f = build_forest(d);
  const GlobalRouteResult gr = global_route(d, f);
  const StaResult base = run_sta(d, f, &gr);
  const auto crit = connection_criticality(d, f, gr, base.arrival);
  const LayerAssignment la = assign_layers(f, gr, GetParam().policy, &crit);
  const StaResult after = run_sta(d, f, &gr, {}, &la);
  EXPECT_GE(after.wns, base.wns - 1e-12);
  EXPECT_GE(after.tns, base.tns - 1e-9);
  EXPECT_EQ(la.layer_of_connection.size(), gr.connections.size());
}

INSTANTIATE_TEST_SUITE_P(
    Cases, LayerProperty,
    ::testing::Values(LayerCase{321, LayerPolicy::kWirelength},
                      LayerCase{322, LayerPolicy::kWirelength},
                      LayerCase{321, LayerPolicy::kTimingDriven},
                      LayerCase{322, LayerPolicy::kTimingDriven},
                      LayerCase{323, LayerPolicy::kTimingDriven}));

// ---------------------------------------------------------------------------
// Prim-Dijkstra: for every alpha, trees stay valid and the tradeoff bounds
// hold (WL <= alpha=1 WL, pathlength <= alpha=0 pathlength).
// ---------------------------------------------------------------------------
class PdAlphaProperty : public ::testing::TestWithParam<double> {};

TEST_P(PdAlphaProperty, BoundedByExtremes) {
  Design d = make_design(331, 200);
  PdOptions lo, mid, hi;
  lo.alpha = 0.0;
  mid.alpha = GetParam();
  hi.alpha = 1.0;
  lo.steinerize_corners = mid.steinerize_corners = hi.steinerize_corners = false;
  for (const Net& n : d.nets()) {
    if (n.sink_pins.size() < 2) continue;
    const SteinerTree t0 = build_pd_tree(d, n.id, lo);
    const SteinerTree tm = build_pd_tree(d, n.id, mid);
    const SteinerTree t1 = build_pd_tree(d, n.id, hi);
    EXPECT_TRUE(tm.is_valid_tree());
    EXPECT_LE(tm.wirelength(), t1.wirelength() + 1e-9);
    EXPECT_GE(tm.wirelength(), t0.wirelength() - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, PdAlphaProperty, ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.9));

// ---------------------------------------------------------------------------
// Autodiff fuzz: random small compositions of ops gradient-check cleanly.
// ---------------------------------------------------------------------------
class TapeFuzzProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TapeFuzzProperty, RandomCompositionGradChecks) {
  Rng rng(GetParam());
  const std::size_t rows = 3 + rng.index(3);
  const std::size_t cols = 1 + rng.index(3);
  const Tensor x0 = Tensor::randn(rng, rows, cols, 0.8);
  const Tensor w = Tensor::randn(rng, cols, 2, 0.8);
  const int variant = static_cast<int>(rng.index(4));

  auto graph = [&](Tape& t, Value x) {
    Value v = x;
    switch (variant) {
      case 0:
        v = t.tanh_op(t.scale(v, 1.3));
        v = t.matmul(v, t.leaf(w));
        break;
      case 1:
        v = t.softplus(t.mul(v, v));
        v = t.gather_rows(v, {0, 1, 1, 0});
        break;
      case 2:
        v = t.smooth_abs(v, 0.5);
        v = t.scatter_add_rows(v, std::vector<int>(rows, 0), 2);
        break;
      default:
        v = t.sigmoid(v);
        v = t.segment_sum(v, std::vector<int>(rows, static_cast<int>(rows) % 2), 2);
        break;
    }
    return t.mean_all(t.mul(v, v));
  };

  Tape tape;
  const Value x = tape.leaf(x0, true);
  const Value root = graph(tape, x);
  tape.backward(root);
  const Tensor& analytic = tape.grad(x);
  auto eval = [&](const Tensor& xv) {
    Tape t2;
    return t2.value(graph(t2, t2.leaf(xv, true)))[0];
  };
  for (std::size_t i = 0; i < x0.size(); ++i) {
    EXPECT_NEAR(analytic[i], numeric_gradient(eval, x0, i), 2e-5)
        << "variant " << variant << " element " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TapeFuzzProperty,
                         ::testing::Range<std::uint64_t>(400, 416));

}  // namespace
}  // namespace tsteiner
