// tsteiner_serve: refinement-as-a-service CLI.
//
// Subcommands:
//   mksnap   write a self-contained serve snapshot (deterministic fuzz-case
//            design + Flow calibration, optionally an embedded model)
//   serve    run the multi-tenant batch server until SIGTERM / a shutdown
//            request (graceful drain either way)
//   client   drive a running server from a JSONL request script
//   selftest in-process end-to-end gate: N concurrent sessions of mixed
//            requests, every response bit-compared against the direct
//            Flow / IncrementalSignoff API. Exit 0 iff all bits match.
//
// Typical invocations:
//   tsteiner_serve mksnap --out design.tsdb --seed 7 --model
//   tsteiner_serve serve --port 0
//   tsteiner_serve client --connect tcp:38200 --script requests.jsonl
//   tsteiner_serve selftest --sessions 8 --threads 4
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "flow/flow.hpp"
#include "flow/incremental_signoff.hpp"
#include "gnn/serialize.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/client.hpp"
#include "serve/ops.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "verify/case_gen.hpp"

namespace {

using namespace tsteiner;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <subcommand> [options]\n"
               "  mksnap --out PATH [--seed S] [--scale tiny|small] [--model]\n"
               "  serve [--port N | --socket PATH] [--budget-mb N]\n"
               "  client (--connect tcp:PORT|unix:PATH) --script FILE\n"
               "  selftest [--sessions N] [--threads N] [--snapshots N] [--seed S]\n"
               "           [--rounds N] [--keep-dir DIR] [--obs-gate DIR]\n",
               argv0);
  return 2;
}

const char* flag_value(int argc, char** argv, int* i, const char* flag) {
  if (*i + 1 >= argc) {
    std::fprintf(stderr, "missing value for %s\n", flag);
    std::exit(2);
  }
  return argv[++*i];
}

/// Deterministic untrained refine model for snapshots (mirrors the verify
/// harness's case model so serve smoke tests exercise the MODL path without
/// a training run).
TimingGnn snapshot_model(std::uint64_t seed) {
  GnnConfig cfg;
  cfg.hidden = 6;
  cfg.type_embed = 4;
  cfg.delay_hidden = 8;
  cfg.seed = Rng::mix(seed, 0x90de1);
  return TimingGnn(cfg, verify::fuzz_library().num_types());
}

/// Build the calibrated design for `seed` and write a serve snapshot.
bool write_snapshot(std::uint64_t seed, const std::string& scale, bool with_model,
                    const std::string& out) {
  const verify::FuzzCase c = verify::make_case(seed, scale);
  Design design = c.design;  // the Flow constructor recalibrates the clock
  const Flow flow(&design);
  BenchmarkSpec spec;
  spec.name = c.params.name;
  spec.target_cells = static_cast<int>(c.num_cells());
  spec.endpoints = static_cast<int>(design.endpoint_pins().size());
  spec.seed = seed;
  const TimingGnn model = snapshot_model(seed);
  return serve::save_session_snapshot(spec, design, flow.calibration(),
                                      flow.initial_forest(), verify::fuzz_library(),
                                      with_model ? &model : nullptr,
                                      SteinerPredictor::shared_pretrained().get(), out);
}

int cmd_mksnap(int argc, char** argv) {
  std::string out, scale = "tiny";
  std::uint64_t seed = 7;
  bool with_model = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out") {
      out = flag_value(argc, argv, &i, "--out");
    } else if (arg == "--seed") {
      seed = std::strtoull(flag_value(argc, argv, &i, "--seed"), nullptr, 10);
    } else if (arg == "--scale") {
      scale = flag_value(argc, argv, &i, "--scale");
    } else if (arg == "--model") {
      with_model = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (out.empty()) return usage(argv[0]);
  if (!write_snapshot(seed, scale, with_model, out)) {
    std::fprintf(stderr, "mksnap: failed to write %s\n", out.c_str());
    return 1;
  }
  std::printf("wrote %s (seed %llu, scale %s, fingerprint %s)\n", out.c_str(),
              static_cast<unsigned long long>(seed), scale.c_str(),
              serve::snapshot_fingerprint(out).c_str());
  return 0;
}

void on_sigterm(int) { serve::Server::notify_sigterm(); }

int cmd_serve(int argc, char** argv) {
  serve::ServeOptions opts;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--port") {
      opts.tcp_port = std::atoi(flag_value(argc, argv, &i, "--port"));
    } else if (arg == "--socket") {
      opts.unix_socket = flag_value(argc, argv, &i, "--socket");
    } else if (arg == "--budget-mb") {
      opts.cache_budget_bytes =
          static_cast<std::size_t>(std::atoll(flag_value(argc, argv, &i, "--budget-mb")))
          << 20;
    } else {
      return usage(argv[0]);
    }
  }
  serve::Server server(opts);
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "serve: %s\n", error.c_str());
    return 1;
  }
  std::signal(SIGTERM, on_sigterm);
  std::signal(SIGINT, on_sigterm);
  if (opts.unix_socket.empty()) {
    // Machine-readable for scripts that started us with --port 0.
    std::printf("listening port=%d\n", server.bound_tcp_port());
    std::fflush(stdout);
  }
  while (!server.draining()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  server.stop();
  return 0;
}

int cmd_client(int argc, char** argv) {
  std::string connect, script;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--connect") {
      connect = flag_value(argc, argv, &i, "--connect");
    } else if (arg == "--script") {
      script = flag_value(argc, argv, &i, "--script");
    } else {
      return usage(argv[0]);
    }
  }
  if (connect.empty() || script.empty()) return usage(argv[0]);

  serve::ServeClient client;
  std::string error;
  bool connected = false;
  if (connect.rfind("tcp:", 0) == 0) {
    connected = client.connect_tcp(std::atoi(connect.c_str() + 4), &error);
  } else if (connect.rfind("unix:", 0) == 0) {
    connected = client.connect_unix(connect.substr(5), &error);
  } else {
    std::fprintf(stderr, "client: --connect wants tcp:PORT or unix:PATH\n");
    return 2;
  }
  if (!connected) {
    std::fprintf(stderr, "client: %s\n", error.c_str());
    return 1;
  }

  std::ifstream in(script);
  if (!in) {
    std::fprintf(stderr, "client: cannot read script %s\n", script.c_str());
    return 1;
  }
  std::string line;
  int failures = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    auto request = serve::parse_request(line, &error);
    if (!request) {
      std::fprintf(stderr, "client: bad script line: %s\n", error.c_str());
      ++failures;
      continue;
    }
    const auto reply = client.call(*request);
    for (const auto& progress : reply.progress) {
      double iter = progress.number_or("iter", -1.0);
      std::printf("# progress id=%llu iter=%.0f\n",
                  static_cast<unsigned long long>(request->id), iter);
    }
    if (!reply.ok) {
      std::printf("{\"ok\":false,\"error\":\"%s\"}\n", reply.error.c_str());
      ++failures;
      continue;
    }
    // Echo the raw payload the server sent (it is already one JSON object).
    const obs::JsonValue* session = reply.body.find_string("session");
    const obs::JsonValue* fingerprint = reply.body.find_string("fingerprint");
    double wns = 0.0;
    const bool has_wns = serve::read_double_field(reply.body, "wns_ns", &wns);
    std::printf("ok id=%.0f%s%s%s%s%s\n", reply.body.number_or("id", -1.0),
                session != nullptr ? " session=" : "",
                session != nullptr ? session->str.c_str() : "",
                fingerprint != nullptr ? " fingerprint=" : "",
                fingerprint != nullptr ? fingerprint->str.c_str() : "",
                has_wns ? (" wns_bits=" + serve::double_bits_hex(wns)).c_str() : "");
  }
  return failures == 0 ? 0 : 1;
}

// --- selftest ---------------------------------------------------------------

struct SessionResult {
  std::vector<std::string> wns_bits;  ///< per round: whatif WNS bit patterns
  std::vector<std::string> wl_bits;   ///< per round: whatif DR wirelength bits
  std::string signoff_wns_bits;
  std::string error;
};

struct SessionPlan {
  int index = 0;
  std::string snapshot;
  std::vector<std::vector<serve::WhatIfMove>> rounds;
};

/// What-if rounds for one session, derived purely from (seed, session index)
/// so the server side and the direct reference generate identical traffic.
std::vector<std::vector<serve::WhatIfMove>> plan_rounds(const Design& design,
                                                        const SteinerForest& forest,
                                                        std::uint64_t seed, int session,
                                                        int rounds, double dist) {
  Rng rng(Rng::mix(seed, 0x5e55 + static_cast<std::uint64_t>(session)));
  std::vector<int> nets;
  for (const SteinerTree& tree : forest.trees) {
    if (tree.num_steiner_nodes() > 0) nets.push_back(tree.net);
  }
  std::vector<std::vector<serve::WhatIfMove>> plan;
  if (nets.empty()) return plan;
  for (int r = 0; r < rounds; ++r) {
    std::vector<serve::WhatIfMove> moves;
    const std::size_t k = 1 + rng.index(std::min<std::size_t>(3, nets.size()));
    for (std::size_t m = 0; m < k; ++m) {
      serve::WhatIfMove move;
      move.net = nets[rng.index(nets.size())];
      move.dx = rng.uniform(-dist, dist);
      move.dy = rng.uniform(-dist, dist);
      moves.push_back(move);
    }
    plan.push_back(std::move(moves));
  }
  (void)design;
  return plan;
}

SessionResult run_session_via_server(int port, const SessionPlan& plan) {
  SessionResult out;
  serve::ServeClient client;
  std::string error;
  if (!client.connect_tcp(port, &error)) {
    out.error = "connect: " + error;
    return out;
  }
  const auto opened = client.open(plan.snapshot);
  if (!opened.ok) {
    out.error = "open: " + opened.error;
    return out;
  }
  const obs::JsonValue* session = opened.body.find_string("session");
  const obs::JsonValue* fingerprint = opened.body.find_string("fingerprint");
  if (session == nullptr || fingerprint == nullptr) {
    out.error = "open response lacks session/fingerprint";
    return out;
  }
  for (const auto& moves : plan.rounds) {
    serve::Request req;
    req.type = serve::RequestType::kWhatIf;
    req.session = session->str;
    req.fingerprint = fingerprint->str;
    req.moves = moves;
    const auto reply = client.call(req);
    if (!reply.ok) {
      out.error = "whatif: " + reply.error;
      return out;
    }
    double wns = 0.0, wl = 0.0;
    if (!serve::read_double_field(reply.body, "wns_ns", &wns) ||
        !serve::read_double_field(reply.body, "wirelength_dbu", &wl)) {
      out.error = "whatif response lacks metric fields";
      return out;
    }
    out.wns_bits.push_back(serve::double_bits_hex(wns));
    out.wl_bits.push_back(serve::double_bits_hex(wl));
  }
  serve::Request signoff;
  signoff.type = serve::RequestType::kSignoff;
  signoff.session = session->str;
  signoff.fingerprint = fingerprint->str;
  const auto reply = client.call(signoff);
  if (!reply.ok) {
    out.error = "signoff: " + reply.error;
    return out;
  }
  double wns = 0.0;
  serve::read_double_field(reply.body, "wns_ns", &wns);
  out.signoff_wns_bits = serve::double_bits_hex(wns);
  client.close_session(session->str);
  return out;
}

SessionResult run_session_direct(const SessionPlan& plan, const FlowOptions& flow_options) {
  SessionResult out;
  std::string error;
  auto loaded = serve::load_session_design(plan.snapshot, flow_options, &error);
  if (loaded == nullptr) {
    out.error = "direct restore: " + error;
    return out;
  }
  SteinerForest cur = loaded->flow->initial_forest();
  IncrementalSignoff inc(loaded->design.get(), loaded->flow->options());
  for (const auto& moves : plan.rounds) {
    std::vector<int> dirty;
    serve::apply_whatif_moves(&cur, *loaded->design, moves, &dirty);
    const IncrementalSignoff::Result& r = inc.update(cur, dirty);
    out.wns_bits.push_back(serve::double_bits_hex(r.metrics.wns_ns));
    out.wl_bits.push_back(serve::double_bits_hex(r.metrics.wirelength_dbu));
  }
  const FlowResult golden = loaded->flow->run_signoff(cur);
  out.signoff_wns_bits = serve::double_bits_hex(golden.metrics.wns_ns);
  return out;
}

// --- selftest --obs-gate: telemetry must never change response bytes --------

/// One deterministic traffic run against a fresh in-process server: every op
/// once, single sequential client (request ids and server uids are then a
/// pure function of the script, independent of obs mode).
struct ObsTraffic {
  std::vector<std::pair<std::string, std::string>> responses;  ///< op -> payload bytes
  std::vector<std::string> progress_scrubbed;  ///< refine frames minus wall_s
  std::string metrics_raw;                     ///< metrics-op response payload
  std::string error;
};

/// Remove one `"key":value` member from a JSON object's raw bytes (the
/// refine progress wall_s field is the only wall-clock-dependent member of
/// an otherwise deterministic frame).
std::string scrub_json_field(std::string s, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = s.find(needle);
  if (at == std::string::npos) return s;
  std::size_t end = at + needle.size();
  while (end < s.size() && s[end] != ',' && s[end] != '}') ++end;
  std::size_t begin = at;
  if (begin > 0 && s[begin - 1] == ',') {
    --begin;
  } else if (end < s.size() && s[end] == ',') {
    ++end;
  }
  return s.erase(begin, end - begin);
}

ObsTraffic run_obs_traffic(int port, const std::string& snap,
                           const std::vector<serve::WhatIfMove>& moves) {
  ObsTraffic out;
  serve::ServeClient client;
  std::string error;
  if (!client.connect_tcp(port, &error)) {
    out.error = "connect: " + error;
    return out;
  }
  const auto push = [&out](const char* label, const serve::ServeClient::Reply& r) {
    if (!r.ok) {
      out.error = std::string(label) + ": " + r.error;
      return false;
    }
    out.responses.emplace_back(label, r.raw);
    return true;
  };
  if (!push("ping", client.ping())) return out;
  const auto opened = client.open(snap);
  if (!push("open", opened)) return out;
  const obs::JsonValue* session = opened.body.find_string("session");
  const obs::JsonValue* fingerprint = opened.body.find_string("fingerprint");
  if (session == nullptr || fingerprint == nullptr) {
    out.error = "open response lacks session/fingerprint";
    return out;
  }
  serve::Request base;
  base.session = session->str;
  base.fingerprint = fingerprint->str;

  serve::Request sta = base;
  sta.type = serve::RequestType::kSta;
  if (!push("sta", client.call(sta))) return out;

  serve::Request whatif = base;
  whatif.type = serve::RequestType::kWhatIf;
  whatif.moves = moves;
  if (!push("whatif", client.call(whatif))) return out;

  serve::Request signoff = base;
  signoff.type = serve::RequestType::kSignoff;
  if (!push("signoff", client.call(signoff))) return out;

  serve::Request refine = base;
  refine.type = serve::RequestType::kRefine;
  refine.iterations = 2;
  const auto refined = client.call(refine);
  if (!push("refine", refined)) return out;
  for (const std::string& frame : refined.progress_raw) {
    out.progress_scrubbed.push_back(scrub_json_field(frame, "wall_s"));
  }

  if (!push("wirelength",
            client.wirelength(base.session, base.fingerprint,
                              {{{1000.0, 1000.0}, {8000.0, 3000.0}, {4000.0, 9000.0}}}))) {
    return out;
  }

  // stats and metrics responses legitimately vary with the obs mode (latency
  // aggregates, instrument values): ok-checked, excluded from the byte gate.
  const auto stats = client.stats();
  if (!stats.ok) {
    out.error = "stats: " + stats.error;
    return out;
  }
  const auto metrics = client.metrics();
  if (!metrics.ok) {
    out.error = "metrics: " + metrics.error;
    return out;
  }
  out.metrics_raw = metrics.raw;
  if (!push("close", client.close_session(base.session))) return out;
  return out;
}

/// Run the deterministic script under off / metrics-only / full obs modes
/// plus a metrics-determinism rerun; gate that every response (and every
/// progress frame, minus wall_s) is byte-identical across modes, and write
/// the trace + two metrics snapshots for `tsteiner_trace serve`.
int run_obs_gate(const std::string& dir, std::uint64_t seed) {
  std::system(("mkdir -p " + dir).c_str());
  const std::string snap = dir + "/obs_design.tsdb";
  if (!write_snapshot(seed, "tiny", /*with_model=*/true, snap)) {
    std::fprintf(stderr, "obs-gate: cannot write snapshot %s\n", snap.c_str());
    return 1;
  }
  std::string error;
  auto loaded = serve::load_session_design(snap, FlowOptions{}, &error);
  if (loaded == nullptr) {
    std::fprintf(stderr, "obs-gate: restore failed: %s\n", error.c_str());
    return 1;
  }
  const double dist = static_cast<double>(loaded->design->die().width()) / 20.0;
  const auto rounds =
      plan_rounds(*loaded->design, loaded->flow->initial_forest(), seed, 0, 1, dist);
  loaded.reset();
  if (rounds.empty()) {
    std::fprintf(stderr, "obs-gate: snapshot has no movable nets\n");
    return 1;
  }

  const auto run_mode = [&](bool metrics_on, const char* trace_path) -> ObsTraffic {
    obs::reset_trace();
    if (trace_path != nullptr) obs::enable_trace(trace_path);
    obs::set_metrics_enabled(metrics_on);
    obs::metrics().reset_values();
    serve::ServeOptions so;
    so.tcp_port = 0;
    serve::Server server(so);
    std::string err;
    ObsTraffic t;
    if (!server.start(&err)) {
      t.error = "server start: " + err;
      return t;
    }
    t = run_obs_traffic(server.bound_tcp_port(), snap, rounds[0]);
    server.stop();
    if (trace_path != nullptr) obs::disable_trace();  // flushes the file
    return t;
  };

  const std::string trace_path = dir + "/serve_trace.json";
  const ObsTraffic off = run_mode(false, nullptr);
  const ObsTraffic metrics_only = run_mode(true, nullptr);
  const ObsTraffic full = run_mode(true, trace_path.c_str());
  const ObsTraffic rerun = run_mode(true, nullptr);  // metrics determinism
  obs::set_metrics_enabled(false);
  for (const auto* t : {&off, &metrics_only, &full, &rerun}) {
    if (!t->error.empty()) {
      std::fprintf(stderr, "obs-gate: traffic failed: %s\n", t->error.c_str());
      return 1;
    }
  }

  int failures = 0;
  const auto compare = [&failures](const char* mode, const ObsTraffic& a,
                                   const ObsTraffic& b) {
    if (a.responses.size() != b.responses.size()) {
      std::fprintf(stderr, "obs-gate: %s ran %zu ops vs %zu baseline\n", mode,
                   b.responses.size(), a.responses.size());
      ++failures;
      return;
    }
    for (std::size_t i = 0; i < a.responses.size(); ++i) {
      if (a.responses[i].second != b.responses[i].second) {
        std::fprintf(stderr, "obs-gate: op \"%s\" response differs under %s\n",
                     a.responses[i].first.c_str(), mode);
        ++failures;
      }
    }
    if (a.progress_scrubbed != b.progress_scrubbed) {
      std::fprintf(stderr, "obs-gate: refine progress frames differ under %s\n", mode);
      ++failures;
    }
  };
  compare("metrics-only", off, metrics_only);
  compare("full trace+metrics", off, full);

  const auto write_text = [](const std::string& path, const std::string& text) {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) return false;
    const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
    return std::fclose(f) == 0 && ok;
  };
  if (!write_text(dir + "/metrics_a.json", full.metrics_raw) ||
      !write_text(dir + "/metrics_b.json", rerun.metrics_raw)) {
    std::fprintf(stderr, "obs-gate: cannot write metrics snapshots under %s\n", dir.c_str());
    return 1;
  }
  std::printf("obs-gate: %d failure(s); artifacts: %s, %s/metrics_a.json, %s/metrics_b.json\n",
              failures, trace_path.c_str(), dir.c_str(), dir.c_str());
  return failures == 0 ? 0 : 1;
}

int cmd_selftest(int argc, char** argv) {
  int sessions = 8, threads = 4, num_snapshots = 2, rounds = 2;
  std::uint64_t seed = 7;
  std::string dir = "tsteiner_serve_selftest";
  std::string obs_dir;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--obs-gate") {
      obs_dir = flag_value(argc, argv, &i, "--obs-gate");
    } else if (arg == "--sessions") {
      sessions = std::atoi(flag_value(argc, argv, &i, "--sessions"));
    } else if (arg == "--threads") {
      threads = std::atoi(flag_value(argc, argv, &i, "--threads"));
    } else if (arg == "--snapshots") {
      num_snapshots = std::atoi(flag_value(argc, argv, &i, "--snapshots"));
    } else if (arg == "--rounds") {
      rounds = std::atoi(flag_value(argc, argv, &i, "--rounds"));
    } else if (arg == "--seed") {
      seed = std::strtoull(flag_value(argc, argv, &i, "--seed"), nullptr, 10);
    } else if (arg == "--keep-dir") {
      dir = flag_value(argc, argv, &i, "--keep-dir");
    } else {
      return usage(argv[0]);
    }
  }
  if (sessions < 1 || threads < 1 || num_snapshots < 1 || rounds < 1) return usage(argv[0]);
  if (!obs_dir.empty()) return run_obs_gate(obs_dir, seed);

  std::system(("mkdir -p " + dir).c_str());
  std::vector<std::string> snaps;
  for (int s = 0; s < num_snapshots; ++s) {
    const std::string path = dir + "/design_" + std::to_string(s) + ".tsdb";
    if (!write_snapshot(Rng::mix(seed, static_cast<std::uint64_t>(s)), "tiny",
                        /*with_model=*/false, path)) {
      std::fprintf(stderr, "selftest: cannot write snapshot %s\n", path.c_str());
      return 1;
    }
    snaps.push_back(path);
  }

  serve::ServeOptions serve_opts;
  serve_opts.tcp_port = 0;
  serve::Server server(serve_opts);
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "selftest: server start failed: %s\n", error.c_str());
    return 1;
  }
  const int port = server.bound_tcp_port();

  // Plans are derived from restored designs so both sides agree on the
  // movable-net universe.
  std::vector<SessionPlan> plans;
  for (int s = 0; s < sessions; ++s) {
    SessionPlan plan;
    plan.index = s;
    plan.snapshot = snaps[static_cast<std::size_t>(s) % snaps.size()];
    auto loaded = serve::load_session_design(plan.snapshot, FlowOptions{}, &error);
    if (loaded == nullptr) {
      std::fprintf(stderr, "selftest: restore failed: %s\n", error.c_str());
      return 1;
    }
    const double dist =
        static_cast<double>(loaded->design->die().width()) / 20.0;
    plan.rounds = plan_rounds(*loaded->design, loaded->flow->initial_forest(), seed, s,
                              rounds, dist);
    plans.push_back(std::move(plan));
  }

  // Server side: `threads` concurrent client threads, sessions round-robin.
  std::vector<SessionResult> via_server(plans.size());
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      for (std::size_t s = static_cast<std::size_t>(t); s < plans.size();
           s += static_cast<std::size_t>(threads)) {
        via_server[s] = run_session_via_server(port, plans[s]);
      }
    });
  }
  for (auto& w : workers) w.join();
  server.stop();

  // Direct reference, serial.
  int failures = 0;
  for (std::size_t s = 0; s < plans.size(); ++s) {
    if (!via_server[s].error.empty()) {
      std::fprintf(stderr, "selftest: session %zu failed: %s\n", s,
                   via_server[s].error.c_str());
      ++failures;
      continue;
    }
    const SessionResult direct = run_session_direct(plans[s], FlowOptions{});
    if (!direct.error.empty()) {
      std::fprintf(stderr, "selftest: session %zu direct side failed: %s\n", s,
                   direct.error.c_str());
      ++failures;
      continue;
    }
    if (via_server[s].wns_bits != direct.wns_bits ||
        via_server[s].wl_bits != direct.wl_bits ||
        via_server[s].signoff_wns_bits != direct.signoff_wns_bits) {
      std::fprintf(stderr, "selftest: session %zu NOT bit-identical to direct flow\n", s);
      ++failures;
    }
  }
  std::printf("selftest: %d session(s), %d thread(s), %d failure(s)\n", sessions, threads,
              failures);
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const std::string cmd = argv[1];
  if (cmd == "mksnap") return cmd_mksnap(argc, argv);
  if (cmd == "serve") return cmd_serve(argc, argv);
  if (cmd == "client") return cmd_client(argc, argv);
  if (cmd == "selftest") return cmd_selftest(argc, argv);
  return usage(argv[0]);
}
