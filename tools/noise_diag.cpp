// Localize what dominates the sign-off response to Steiner disturbance:
// smooth physics (pre-route STA) vs routing quantization/congestion.
#include <cstdio>
#include "flow/flow.hpp"
#include "netlist/design_generator.hpp"
#include "place/placer.hpp"
#include "tsteiner/random_move.hpp"

using namespace tsteiner;

int main() {
  const CellLibrary lib = CellLibrary::make_default();
  GeneratorParams params;
  params.num_comb_cells = 500;
  params.num_registers = 60;
  params.num_primary_inputs = 12;
  params.num_primary_outputs = 12;
  params.seed = 7;
  Design design = generate_design(lib, params);
  place_design(design);
  Flow flow(&design);
  const StaResult pre0 = flow.run_preroute_sta(flow.initial_forest());
  const FlowResult so0 = flow.run_signoff(flow.initial_forest());
  std::printf("base: preroute WNS %.3f TNS %.1f | signoff WNS %.3f TNS %.1f (overflow %.0f)\n",
              pre0.wns, pre0.tns, so0.metrics.wns_ns, so0.metrics.tns_ns, so0.gr.total_overflow);
  Rng rng(5);
  for (double dist : {4.0, 8.0, 16.0}) {
    for (int k = 0; k < 3; ++k) {
      Rng child = rng.fork();
      const SteinerForest f = random_disturb(flow.initial_forest(), design.die(), dist, child);
      const StaResult pre = flow.run_preroute_sta(f);
      const FlowResult so = flow.run_signoff(f);
      std::printf("dist %4.0f: preroute WNS %.3f TNS %.1f | signoff WNS %.3f TNS %.1f (ovf %.0f, WL %.0f vs %.0f)\n",
                  dist, pre.wns, pre.tns, so.metrics.wns_ns, so.metrics.tns_ns,
                  so.gr.total_overflow, so.gr.wirelength_dbu, so0.gr.wirelength_dbu);
    }
  }
  return 0;
}
