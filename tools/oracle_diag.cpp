// Oracle headroom probe: greedy TRUE-signoff coordinate search over the
// Steiner points of the most critical nets. Bounds what any refinement
// method could achieve on this substrate.
#include <cstdio>
#include <algorithm>
#include "flow/flow.hpp"
#include "netlist/design_generator.hpp"
#include "place/placer.hpp"

using namespace tsteiner;

int main(int argc, char** argv) {
  const int ncells = argc > 1 ? std::atoi(argv[1]) : 1500;
  const CellLibrary lib = CellLibrary::make_default();
  GeneratorParams params;
  params.num_comb_cells = ncells;
  params.num_registers = ncells / 8;
  params.num_primary_inputs = 16;
  params.num_primary_outputs = 16;
  params.seed = 7;
  Design design = generate_design(lib, params);
  place_design(design);
  Flow flow(&design);
  SteinerForest forest = flow.initial_forest();
  const FlowResult base = flow.run_signoff(forest);
  std::printf("cells %d, die %lldx%lld, baseline WNS %.3f TNS %.1f ovf %.0f\n", ncells,
              static_cast<long long>(design.die().width()),
              static_cast<long long>(design.die().height()), base.metrics.wns_ns,
              base.metrics.tns_ns, base.gr.total_overflow);

  // Rank movable points by criticality: endpoint slack of the worst sink
  // of their net (from baseline STA).
  forest.build_movable_index();
  std::vector<std::pair<double, std::size_t>> ranked;
  for (std::size_t m = 0; m < forest.movable().size(); ++m) {
    const MovableRef& r = forest.movable()[m];
    const SteinerTree& t = forest.trees[static_cast<std::size_t>(r.tree)];
    // criticality = max arrival over the net's sinks
    double worst = 0.0;
    for (int sp : design.net(t.net).sink_pins) {
      worst = std::max(worst, base.sta.arrival[static_cast<std::size_t>(sp)]);
    }
    ranked.push_back({-worst, m});
  }
  std::sort(ranked.begin(), ranked.end());

  double cur_wns = base.metrics.wns_ns;
  double cur_tns = base.metrics.tns_ns;
  int accepted = 0, tried = 0;
  const int top = std::min<std::size_t>(30, ranked.size());
  for (int pass = 0; pass < 2; ++pass) {
    for (int k = 0; k < top; ++k) {
      const std::size_t m = ranked[static_cast<std::size_t>(k)].second;
      const MovableRef& r = forest.movable()[m];
      SteinerNode& node =
          forest.trees[static_cast<std::size_t>(r.tree)].nodes[static_cast<std::size_t>(r.node)];
      const PointF orig = node.pos;
      PointF best_pos = orig;
      double best_wns = cur_wns, best_tns = cur_tns;
      for (const double dx : {-16.0, -8.0, 0.0, 8.0, 16.0}) {
        for (const double dy : {-16.0, -8.0, 0.0, 8.0, 16.0}) {
          if (dx == 0 && dy == 0) continue;
          node.pos = clamp_into({orig.x + dx, orig.y + dy}, design.die());
          const FlowResult fr = flow.run_signoff(forest);
          ++tried;
          if (fr.metrics.wns_ns > best_wns + 1e-9) {
            best_wns = fr.metrics.wns_ns;
            best_tns = fr.metrics.tns_ns;
            best_pos = node.pos;
          }
        }
      }
      node.pos = best_pos;
      if (!(best_pos == orig)) {
        ++accepted;
        cur_wns = best_wns;
        cur_tns = best_tns;
      }
    }
    std::printf("pass %d: WNS %.3f (%.1f%%), TNS %.1f (%.1f%%), %d/%d moves accepted\n",
                pass, cur_wns, 100.0 * (base.metrics.wns_ns - cur_wns) / base.metrics.wns_ns,
                cur_tns, 100.0 * (base.metrics.tns_ns - cur_tns) / base.metrics.tns_ns,
                accepted, tried);
  }
  return 0;
}
