// tsteiner_trace: inspect, verify and diff the observability artifacts the
// flow writes (docs/observability.md):
//
//   tsteiner_trace summarize <file>   human-readable digest
//   tsteiner_trace verify <file>      structural + schema validation
//   tsteiner_trace diff <a> <b>       compare two run reports' metrics/phases
//
// The file kind is auto-detected: a Chrome trace-event file (TSTEINER_TRACE),
// a run report (TSTEINER_RUN_REPORT), or a refine-iteration JSONL stream
// (TSTEINER_REFINE_LOG). verify exits nonzero on any problem — truncated
// JSON, malformed events, non-nesting spans within a lane, schema-violating
// report/JSONL lines, or a best-WNS trajectory that regresses — so CI can
// gate on artifact health the way tsteiner_db verify gates on snapshots.
#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace {

using tsteiner::obs::JsonValue;
using tsteiner::obs::parse_json;

std::optional<std::string> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  std::string out;
  char buf[65536];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!ok) return std::nullopt;
  return out;
}

enum class FileKind { kTrace, kReport, kJsonl, kUnknown };

/// Detect what artifact this is. A whole-file parse that yields an object is
/// a trace (has "traceEvents") or a run report (has "tsteiner_run_report");
/// otherwise, content starting with '{' that parses line-by-line is JSONL.
FileKind detect_kind(const std::string& text, std::optional<JsonValue>& doc) {
  doc = parse_json(text);
  if (doc && doc->is_object()) {
    if (doc->find("traceEvents") != nullptr) return FileKind::kTrace;
    if (doc->find("tsteiner_run_report") != nullptr) return FileKind::kReport;
    return FileKind::kUnknown;
  }
  doc.reset();
  // Multi-line JSONL never parses as one document; probe the first line.
  const std::size_t eol = text.find('\n');
  const std::string first = text.substr(0, eol);
  if (!first.empty() && first[0] == '{' && parse_json(first)) return FileKind::kJsonl;
  return FileKind::kUnknown;
}

int fail(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::fprintf(stderr, "FAIL: ");
  std::vfprintf(stderr, fmt, args);
  std::fputc('\n', stderr);
  va_end(args);
  return 1;
}

// --- trace-event files -------------------------------------------------------

struct SpanView {
  std::string name;
  double ts = 0.0;   // microseconds
  double dur = 0.0;  // microseconds
  long long tid = 0;
};

/// Extract and structurally check the X events. Returns nullopt (after
/// printing the reason) on malformed events.
std::optional<std::vector<SpanView>> collect_spans(const JsonValue& doc) {
  const JsonValue* events = doc.find_array("traceEvents");
  if (events == nullptr) {
    fail("no traceEvents array");
    return std::nullopt;
  }
  std::vector<SpanView> spans;
  for (std::size_t i = 0; i < events->array.size(); ++i) {
    const JsonValue& e = events->array[i];
    if (!e.is_object()) {
      fail("traceEvents[%zu] is not an object", i);
      return std::nullopt;
    }
    const JsonValue* ph = e.find_string("ph");
    if (ph == nullptr) {
      fail("traceEvents[%zu] lacks a \"ph\" string", i);
      return std::nullopt;
    }
    if (ph->str == "M") continue;  // thread-name metadata
    if (ph->str != "X") {
      fail("traceEvents[%zu] has unsupported phase \"%s\"", i, ph->str.c_str());
      return std::nullopt;
    }
    const JsonValue* name = e.find_string("name");
    const JsonValue* ts = e.find_number("ts");
    const JsonValue* dur = e.find_number("dur");
    const JsonValue* tid = e.find_number("tid");
    if (name == nullptr || ts == nullptr || dur == nullptr || tid == nullptr ||
        e.find_number("pid") == nullptr) {
      fail("traceEvents[%zu] lacks name/ts/dur/pid/tid", i);
      return std::nullopt;
    }
    if (ts->number < 0.0 || dur->number < 0.0) {
      fail("traceEvents[%zu] has a negative ts or dur", i);
      return std::nullopt;
    }
    spans.push_back({name->str, ts->number, dur->number,
                     static_cast<long long>(tid->number)});
  }
  return spans;
}

/// Spans on one lane come from scoped objects on one thread, so they must
/// nest by time containment: sorted by (ts, -dur), each span either fits
/// inside the enclosing open span or starts after it ends.
bool check_nesting(std::vector<SpanView> spans) {
  std::stable_sort(spans.begin(), spans.end(), [](const SpanView& a, const SpanView& b) {
    if (a.tid != b.tid) return a.tid < b.tid;
    if (a.ts != b.ts) return a.ts < b.ts;
    return a.dur > b.dur;
  });
  std::vector<const SpanView*> stack;
  long long lane = std::numeric_limits<long long>::min();
  const double slop = 0.002;  // µs; end timestamps round to 3 decimals
  for (const SpanView& s : spans) {
    if (s.tid != lane) {
      lane = s.tid;
      stack.clear();
    }
    while (!stack.empty() && s.ts >= stack.back()->ts + stack.back()->dur - slop) {
      stack.pop_back();
    }
    if (!stack.empty() &&
        s.ts + s.dur > stack.back()->ts + stack.back()->dur + slop) {
      fail("lane %lld: span \"%s\" [%.3f, %.3f] overlaps \"%s\" [%.3f, %.3f] without nesting",
           lane, s.name.c_str(), s.ts, s.ts + s.dur, stack.back()->name.c_str(),
           stack.back()->ts, stack.back()->ts + stack.back()->dur);
      return false;
    }
    stack.push_back(&s);
  }
  return true;
}

int verify_trace(const JsonValue& doc) {
  const auto spans = collect_spans(doc);
  if (!spans) return 1;
  if (!check_nesting(*spans)) return 1;
  std::printf("OK: trace file, %zu spans, nesting consistent\n", spans->size());
  return 0;
}

int summarize_trace(const JsonValue& doc) {
  const auto spans = collect_spans(doc);
  if (!spans) return 1;
  struct Agg {
    double total_us = 0.0;
    std::size_t count = 0;
  };
  std::map<std::string, Agg> by_name;
  std::map<long long, std::size_t> by_lane;
  for (const SpanView& s : *spans) {
    Agg& a = by_name[s.name];
    a.total_us += s.dur;
    ++a.count;
    ++by_lane[s.tid];
  }
  std::printf("%zu spans across %zu lanes\n\n", spans->size(), by_lane.size());
  std::printf("%-32s %10s %14s\n", "span", "count", "total ms");
  std::vector<std::pair<std::string, Agg>> rows(by_name.begin(), by_name.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.total_us > b.second.total_us;
  });
  for (const auto& [name, a] : rows) {
    std::printf("%-32s %10zu %14.3f\n", name.c_str(), a.count, a.total_us / 1000.0);
  }
  return 0;
}

// --- run reports -------------------------------------------------------------

int verify_report(const JsonValue& doc) {
  const JsonValue* version = doc.find_number("schema_version");
  if (version == nullptr) return fail("run report lacks schema_version");
  const JsonValue* phases = doc.find_array("phases");
  if (phases == nullptr) return fail("run report lacks a phases array");
  for (std::size_t i = 0; i < phases->array.size(); ++i) {
    const JsonValue& p = phases->array[i];
    if (p.find_string("name") == nullptr || p.find_number("wall_s") == nullptr ||
        p.find_number("busy_s") == nullptr || p.find_number("count") == nullptr) {
      return fail("phases[%zu] lacks name/wall_s/busy_s/count", i);
    }
    if (p.number_or("wall_s", -1.0) < 0.0 || p.number_or("count", 0.0) < 1.0) {
      return fail("phases[%zu] has a negative wall_s or zero count", i);
    }
  }
  const JsonValue* refines = doc.find_array("refine");
  if (refines == nullptr) return fail("run report lacks a refine array");
  for (std::size_t i = 0; i < refines->array.size(); ++i) {
    const JsonValue& r = refines->array[i];
    if (r.find_string("design") == nullptr || r.find_number("iterations") == nullptr ||
        r.find_array("iters") == nullptr) {
      return fail("refine[%zu] lacks design/iterations/iters", i);
    }
    const JsonValue* iters = r.find_array("iters");
    double best = -std::numeric_limits<double>::infinity();
    for (std::size_t k = 0; k < iters->array.size(); ++k) {
      const JsonValue& it = iters->array[k];
      if (it.find_number("iter") == nullptr || it.find_number("wns") == nullptr ||
          it.find_number("best_wns") == nullptr) {
        return fail("refine[%zu].iters[%zu] lacks iter/wns/best_wns", i, k);
      }
      const double b = it.number_or("best_wns", 0.0);
      if (b + 1e-12 < best) {
        return fail("refine[%zu].iters[%zu]: best_wns regressed (%.6f -> %.6f)", i, k,
                    best, b);
      }
      best = b;
    }
  }
  if (doc.find_object("metrics") == nullptr) {
    return fail("run report lacks a metrics object");
  }
  std::printf("OK: run report, %zu phases, %zu refine runs\n", phases->array.size(),
              refines->array.size());
  return 0;
}

int summarize_report(const JsonValue& doc) {
  if (const JsonValue* options = doc.find_object("options")) {
    for (const auto& [k, v] : options->object) {
      std::printf("option %s = %s\n", k.c_str(), v.str.c_str());
    }
  }
  if (const JsonValue* phases = doc.find_array("phases")) {
    std::printf("\n%-28s %10s %10s %8s %7s\n", "phase", "wall s", "busy s", "util",
                "count");
    for (const JsonValue& p : phases->array) {
      const JsonValue* name = p.find_string("name");
      std::printf("%-28s %10.3f %10.3f %8.2f %7.0f\n",
                  name != nullptr ? name->str.c_str() : "?", p.number_or("wall_s", 0.0),
                  p.number_or("busy_s", 0.0), p.number_or("utilization", 0.0),
                  p.number_or("count", 0.0));
    }
  }
  if (const JsonValue* refines = doc.find_array("refine")) {
    for (const JsonValue& r : refines->array) {
      const JsonValue* design = r.find_string("design");
      std::printf("\nrefine %s: %.0f iters%s, WNS %.3f -> %.3f, TNS %.1f -> %.1f\n",
                  design != nullptr ? design->str.c_str() : "?",
                  r.number_or("iterations", 0.0),
                  r.find("converged_by_ratio") != nullptr &&
                          r.find("converged_by_ratio")->boolean
                      ? " (converged)"
                      : "",
                  r.number_or("init_wns", 0.0), r.number_or("best_wns", 0.0),
                  r.number_or("init_tns", 0.0), r.number_or("best_tns", 0.0));
    }
  }
  if (const JsonValue* metrics = doc.find_object("metrics")) {
    if (const JsonValue* counters = metrics->find_object("counters")) {
      std::printf("\n%-32s %14s\n", "counter", "value");
      for (const auto& [name, v] : counters->object) {
        std::printf("%-32s %14.0f\n", name.c_str(), v.number);
      }
    }
  }
  return 0;
}

// --- refine JSONL ------------------------------------------------------------

struct JsonlStats {
  std::size_t lines = 0;
  std::map<std::string, std::pair<double, double>> design_range;  // init/best wns
};

/// Validate every line against the iteration schema and the keep-best
/// invariant (per-design best_wns/best_tns never regress). Populates `stats`
/// for summarize.
int verify_jsonl(const std::string& text, JsonlStats* stats) {
  static const char* const kNumberKeys[] = {"iter",      "wns",      "tns",
                                            "best_wns",  "best_tns", "theta",
                                            "grad_norm", "max_move", "lambda_w",
                                            "lambda_t",  "wall_s"};
  std::map<std::string, std::pair<double, double>> best;  // design -> wns/tns
  std::size_t line_no = 0, pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (line.empty()) continue;
    std::string err;
    const auto doc = parse_json(line, &err);
    if (!doc || !doc->is_object()) {
      return fail("line %zu does not parse as a JSON object (%s)", line_no, err.c_str());
    }
    const JsonValue* design = doc->find_string("design");
    if (design == nullptr) return fail("line %zu lacks a design string", line_no);
    for (const char* key : kNumberKeys) {
      if (doc->find_number(key) == nullptr) {
        return fail("line %zu lacks numeric \"%s\"", line_no, key);
      }
    }
    const JsonValue* accept = doc->find("accept");
    if (accept == nullptr || !accept->is_bool()) {
      return fail("line %zu lacks boolean \"accept\"", line_no);
    }
    // Optional sign-off probe fields: all-or-nothing per line, dirty
    // fraction a valid fraction, incremental flag a boolean.
    const JsonValue* so_wns = doc->find("signoff_wns");
    const JsonValue* so_tns = doc->find("signoff_tns");
    const JsonValue* so_frac = doc->find("signoff_dirty_frac");
    const JsonValue* so_inc = doc->find("signoff_incremental");
    const bool any_signoff = so_wns || so_tns || so_frac || so_inc;
    if (any_signoff) {
      if (so_wns == nullptr || !so_wns->is_number() || so_tns == nullptr ||
          !so_tns->is_number() || so_frac == nullptr || !so_frac->is_number()) {
        return fail("line %zu has a partial sign-off probe record", line_no);
      }
      if (so_inc == nullptr || !so_inc->is_bool()) {
        return fail("line %zu lacks boolean \"signoff_incremental\"", line_no);
      }
      const double frac = so_frac->number;
      if (!(frac >= 0.0 && frac <= 1.0)) {
        return fail("line %zu: signoff_dirty_frac %g outside [0,1]", line_no, frac);
      }
    }
    const double bw = doc->number_or("best_wns", 0.0);
    const double bt = doc->number_or("best_tns", 0.0);
    auto [it, fresh] = best.emplace(design->str, std::make_pair(bw, bt));
    if (!fresh) {
      if (bw + 1e-12 < it->second.first) {
        return fail("line %zu: best_wns for %s regressed (%.6f -> %.6f)", line_no,
                    design->str.c_str(), it->second.first, bw);
      }
      if (bt + 1e-12 < it->second.second) {
        return fail("line %zu: best_tns for %s regressed (%.6f -> %.6f)", line_no,
                    design->str.c_str(), it->second.second, bt);
      }
      it->second = {bw, bt};
    }
    if (stats != nullptr) {
      ++stats->lines;
      auto [sit, first] = stats->design_range.emplace(
          design->str, std::make_pair(doc->number_or("wns", 0.0), bw));
      if (!first) sit->second.second = bw;
    }
  }
  return 0;
}

int summarize_jsonl(const std::string& text) {
  JsonlStats stats;
  if (verify_jsonl(text, &stats) != 0) return 1;
  std::printf("%zu iteration records, %zu designs\n", stats.lines,
              stats.design_range.size());
  for (const auto& [design, range] : stats.design_range) {
    std::printf("  %-20s first WNS %10.4f   final best WNS %10.4f\n", design.c_str(),
                range.first, range.second);
  }
  return 0;
}

// --- diff --------------------------------------------------------------------

int diff_reports(const JsonValue& a, const JsonValue& b) {
  int differences = 0;
  const auto diff_section = [&](const char* section) {
    const JsonValue* ma = a.find_object("metrics");
    const JsonValue* mb = b.find_object("metrics");
    const JsonValue* sa = ma != nullptr ? ma->find_object(section) : nullptr;
    const JsonValue* sb = mb != nullptr ? mb->find_object(section) : nullptr;
    std::map<std::string, double> va, vb;
    if (sa != nullptr) {
      for (const auto& [k, v] : sa->object) {
        if (v.is_number()) va[k] = v.number;
      }
    }
    if (sb != nullptr) {
      for (const auto& [k, v] : sb->object) {
        if (v.is_number()) vb[k] = v.number;
      }
    }
    for (const auto& [k, x] : va) {
      const auto it = vb.find(k);
      if (it == vb.end()) {
        std::printf("- %s.%s = %g (only in first)\n", section, k.c_str(), x);
        ++differences;
      } else if (it->second != x) {
        std::printf("~ %s.%s: %g -> %g\n", section, k.c_str(), x, it->second);
        ++differences;
      }
    }
    for (const auto& [k, x] : vb) {
      if (va.find(k) == va.end()) {
        std::printf("+ %s.%s = %g (only in second)\n", section, k.c_str(), x);
        ++differences;
      }
    }
  };
  diff_section("counters");
  diff_section("gauges");

  // Phase wall times, side by side (informational, never a "difference").
  const JsonValue* pa = a.find_array("phases");
  const JsonValue* pb = b.find_array("phases");
  if (pa != nullptr && pb != nullptr) {
    std::map<std::string, double> walls;
    for (const JsonValue& p : pb->array) {
      if (const JsonValue* n = p.find_string("name")) {
        walls[n->str] = p.number_or("wall_s", 0.0);
      }
    }
    for (const JsonValue& p : pa->array) {
      const JsonValue* n = p.find_string("name");
      if (n == nullptr) continue;
      const auto it = walls.find(n->str);
      if (it != walls.end()) {
        std::printf("  phase %-28s %10.3fs vs %10.3fs\n", n->str.c_str(),
                    p.number_or("wall_s", 0.0), it->second);
      }
    }
  }
  std::printf("%d metric difference(s)\n", differences);
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: tsteiner_trace summarize <file>\n"
               "       tsteiner_trace verify <file>\n"
               "       tsteiner_trace diff <report-a> <report-b>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string cmd = argv[1];

  if (cmd == "diff") {
    if (argc < 4) return usage();
    const auto ta = read_file(argv[2]);
    const auto tb = read_file(argv[3]);
    if (!ta) return fail("cannot read %s", argv[2]);
    if (!tb) return fail("cannot read %s", argv[3]);
    std::optional<JsonValue> da, db;
    if (detect_kind(*ta, da) != FileKind::kReport) {
      return fail("%s is not a run report", argv[2]);
    }
    if (detect_kind(*tb, db) != FileKind::kReport) {
      return fail("%s is not a run report", argv[3]);
    }
    return diff_reports(*da, *db);
  }

  if (cmd != "summarize" && cmd != "verify") return usage();
  const std::string path = argv[2];
  const auto text = read_file(path);
  if (!text) return fail("cannot read %s", path.c_str());
  std::optional<JsonValue> doc;
  const FileKind kind = detect_kind(*text, doc);
  switch (kind) {
    case FileKind::kTrace:
      return cmd == "verify" ? verify_trace(*doc) : summarize_trace(*doc);
    case FileKind::kReport:
      return cmd == "verify" ? verify_report(*doc) : summarize_report(*doc);
    case FileKind::kJsonl: {
      if (cmd == "summarize") return summarize_jsonl(*text);
      JsonlStats stats;
      const int rc = verify_jsonl(*text, &stats);
      if (rc == 0) {
        std::printf("OK: refine JSONL, %zu records, keep-best monotone\n", stats.lines);
      }
      return rc;
    }
    case FileKind::kUnknown:
      return fail("%s is not a recognized observability artifact", path.c_str());
  }
  return 1;
}
