// tsteiner_trace: inspect, verify and diff the observability artifacts the
// flow writes (docs/observability.md):
//
//   tsteiner_trace summarize <file>   human-readable digest
//   tsteiner_trace verify <file>      structural + schema validation
//   tsteiner_trace diff <a> <b>       compare two run reports' metrics/phases
//   tsteiner_trace serve <trace> [<metrics> [<metrics-b>]]
//                                     validate a serve-layer trace: request-id
//                                     presence, span nesting, serve<->flow
//                                     joins, per-op latency percentiles and
//                                     queue-wait attribution; optionally
//                                     schema-check a metrics-op snapshot and
//                                     compare two snapshots' deterministic
//                                     subset (counter values, histogram counts)
//
// The file kind is auto-detected: a Chrome trace-event file (TSTEINER_TRACE),
// a run report (TSTEINER_RUN_REPORT), or a refine-iteration JSONL stream
// (TSTEINER_REFINE_LOG). verify exits nonzero on any problem — truncated
// JSON, malformed events, non-nesting spans within a lane, schema-violating
// report/JSONL lines, or a best-WNS trajectory that regresses — so CI can
// gate on artifact health the way tsteiner_db verify gates on snapshots.
#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "util/stats.hpp"

namespace {

using tsteiner::obs::JsonValue;
using tsteiner::obs::parse_json;

std::optional<std::string> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  std::string out;
  char buf[65536];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!ok) return std::nullopt;
  return out;
}

enum class FileKind { kTrace, kReport, kJsonl, kUnknown };

/// Detect what artifact this is. A whole-file parse that yields an object is
/// a trace (has "traceEvents") or a run report (has "tsteiner_run_report");
/// otherwise, content starting with '{' that parses line-by-line is JSONL.
FileKind detect_kind(const std::string& text, std::optional<JsonValue>& doc) {
  doc = parse_json(text);
  if (doc && doc->is_object()) {
    if (doc->find("traceEvents") != nullptr) return FileKind::kTrace;
    if (doc->find("tsteiner_run_report") != nullptr) return FileKind::kReport;
    return FileKind::kUnknown;
  }
  doc.reset();
  // Multi-line JSONL never parses as one document; probe the first line.
  const std::size_t eol = text.find('\n');
  const std::string first = text.substr(0, eol);
  if (!first.empty() && first[0] == '{' && parse_json(first)) return FileKind::kJsonl;
  return FileKind::kUnknown;
}

int fail(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::fprintf(stderr, "FAIL: ");
  std::vfprintf(stderr, fmt, args);
  std::fputc('\n', stderr);
  va_end(args);
  return 1;
}

// --- trace-event files -------------------------------------------------------

struct SpanView {
  std::string name;
  std::string cat;
  double ts = 0.0;   // microseconds
  double dur = 0.0;  // microseconds
  long long tid = 0;
  unsigned long long req = 0;  // args.req request correlation id, 0 = absent
};

/// One side of an async nestable pair ("b"/"e"), used by the serve-layer
/// queue-wait spans: overlapping by design, exempt from lane nesting.
struct AsyncView {
  std::string name;
  std::string id;  // pairing key, e.g. "r7"
  double ts = 0.0;
  long long tid = 0;
  unsigned long long req = 0;
  bool begin = false;
};

/// Extract and structurally check the trace events: scoped "X" spans are
/// returned; async "b"/"e" pairs (the serve queue-wait spans) are collected
/// into `async` when provided and merely validated otherwise. Returns nullopt
/// (after printing the reason) on malformed events.
std::optional<std::vector<SpanView>> collect_spans(const JsonValue& doc,
                                                   std::vector<AsyncView>* async = nullptr) {
  const JsonValue* events = doc.find_array("traceEvents");
  if (events == nullptr) {
    fail("no traceEvents array");
    return std::nullopt;
  }
  std::vector<SpanView> spans;
  for (std::size_t i = 0; i < events->array.size(); ++i) {
    const JsonValue& e = events->array[i];
    if (!e.is_object()) {
      fail("traceEvents[%zu] is not an object", i);
      return std::nullopt;
    }
    const JsonValue* ph = e.find_string("ph");
    if (ph == nullptr) {
      fail("traceEvents[%zu] lacks a \"ph\" string", i);
      return std::nullopt;
    }
    if (ph->str == "M") continue;  // thread-name metadata
    const auto arg_req = [&e]() -> unsigned long long {
      const JsonValue* args = e.find_object("args");
      const JsonValue* req = args != nullptr ? args->find_number("req") : nullptr;
      return req != nullptr && req->number > 0.0
                 ? static_cast<unsigned long long>(req->number)
                 : 0ull;
    };
    if (ph->str == "b" || ph->str == "e") {
      const JsonValue* name = e.find_string("name");
      const JsonValue* id = e.find_string("id");
      const JsonValue* ts = e.find_number("ts");
      const JsonValue* tid = e.find_number("tid");
      if (name == nullptr || id == nullptr || ts == nullptr || tid == nullptr ||
          e.find_number("pid") == nullptr) {
        fail("traceEvents[%zu] lacks name/id/ts/pid/tid", i);
        return std::nullopt;
      }
      if (ts->number < 0.0) {
        fail("traceEvents[%zu] has a negative ts", i);
        return std::nullopt;
      }
      if (async != nullptr) {
        async->push_back({name->str, id->str, ts->number,
                          static_cast<long long>(tid->number), arg_req(),
                          ph->str == "b"});
      }
      continue;
    }
    if (ph->str != "X") {
      fail("traceEvents[%zu] has unsupported phase \"%s\"", i, ph->str.c_str());
      return std::nullopt;
    }
    const JsonValue* name = e.find_string("name");
    const JsonValue* ts = e.find_number("ts");
    const JsonValue* dur = e.find_number("dur");
    const JsonValue* tid = e.find_number("tid");
    if (name == nullptr || ts == nullptr || dur == nullptr || tid == nullptr ||
        e.find_number("pid") == nullptr) {
      fail("traceEvents[%zu] lacks name/ts/dur/pid/tid", i);
      return std::nullopt;
    }
    if (ts->number < 0.0 || dur->number < 0.0) {
      fail("traceEvents[%zu] has a negative ts or dur", i);
      return std::nullopt;
    }
    const JsonValue* cat = e.find_string("cat");
    spans.push_back({name->str, cat != nullptr ? cat->str : std::string(), ts->number,
                     dur->number, static_cast<long long>(tid->number), arg_req()});
  }
  return spans;
}

/// Spans on one lane come from scoped objects on one thread, so they must
/// nest by time containment: sorted by (ts, -dur), each span either fits
/// inside the enclosing open span or starts after it ends.
bool check_nesting(std::vector<SpanView> spans) {
  std::stable_sort(spans.begin(), spans.end(), [](const SpanView& a, const SpanView& b) {
    if (a.tid != b.tid) return a.tid < b.tid;
    if (a.ts != b.ts) return a.ts < b.ts;
    return a.dur > b.dur;
  });
  std::vector<const SpanView*> stack;
  long long lane = std::numeric_limits<long long>::min();
  const double slop = 0.002;  // µs; end timestamps round to 3 decimals
  for (const SpanView& s : spans) {
    if (s.tid != lane) {
      lane = s.tid;
      stack.clear();
    }
    while (!stack.empty() && s.ts >= stack.back()->ts + stack.back()->dur - slop) {
      stack.pop_back();
    }
    if (!stack.empty() &&
        s.ts + s.dur > stack.back()->ts + stack.back()->dur + slop) {
      fail("lane %lld: span \"%s\" [%.3f, %.3f] overlaps \"%s\" [%.3f, %.3f] without nesting",
           lane, s.name.c_str(), s.ts, s.ts + s.dur, stack.back()->name.c_str(),
           stack.back()->ts, stack.back()->ts + stack.back()->dur);
      return false;
    }
    stack.push_back(&s);
  }
  return true;
}

int verify_trace(const JsonValue& doc) {
  const auto spans = collect_spans(doc);
  if (!spans) return 1;
  if (!check_nesting(*spans)) return 1;
  std::printf("OK: trace file, %zu spans, nesting consistent\n", spans->size());
  return 0;
}

int summarize_trace(const JsonValue& doc) {
  const auto spans = collect_spans(doc);
  if (!spans) return 1;
  struct Agg {
    double total_us = 0.0;
    std::size_t count = 0;
  };
  std::map<std::string, Agg> by_name;
  std::map<long long, std::size_t> by_lane;
  for (const SpanView& s : *spans) {
    Agg& a = by_name[s.name];
    a.total_us += s.dur;
    ++a.count;
    ++by_lane[s.tid];
  }
  std::printf("%zu spans across %zu lanes\n\n", spans->size(), by_lane.size());
  std::printf("%-32s %10s %14s\n", "span", "count", "total ms");
  std::vector<std::pair<std::string, Agg>> rows(by_name.begin(), by_name.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.total_us > b.second.total_us;
  });
  for (const auto& [name, a] : rows) {
    std::printf("%-32s %10zu %14.3f\n", name.c_str(), a.count, a.total_us / 1000.0);
  }
  return 0;
}

// --- serve traces ------------------------------------------------------------

/// Ops whose handlers run a sign-off (full or incremental); their handle
/// spans must contain at least one non-"serve" span — the request-id join
/// proving serve spans and flow/sta/tsteiner spans share one timeline.
bool is_signoff_bearing(const std::string& op) {
  return op == "sta" || op == "signoff" || op == "whatif" || op == "refine";
}

struct ReqView {
  std::size_t decode = 0, handle = 0, encode = 0, write = 0;
  std::string op;             // suffix of the serve.handle.<op> span
  double handle_us = 0.0;     // handler duration
  double queue_us = -1.0;     // matched queue-wait async pair, <0 = none
};

int serve_trace_report(const JsonValue& doc) {
  std::vector<AsyncView> async;
  const auto spans = collect_spans(doc, &async);
  if (!spans) return 1;
  if (!check_nesting(*spans)) return 1;

  std::map<unsigned long long, ReqView> reqs;
  std::size_t serve_spans = 0;
  for (const SpanView& s : *spans) {
    if (s.cat != "serve") continue;
    ++serve_spans;
    // Every serve span is attributable to one request, except the
    // batch-level dispatch span that covers many.
    if (s.name == "serve.dispatch_batch") continue;
    if (s.req == 0) {
      return fail("serve span \"%s\" at ts %.3f lacks a request id (args.req)",
                  s.name.c_str(), s.ts);
    }
    ReqView& r = reqs[s.req];
    if (s.name == "serve.decode") {
      ++r.decode;
    } else if (s.name.rfind("serve.handle.", 0) == 0) {
      ++r.handle;
      r.op = s.name.substr(std::strlen("serve.handle."));
      r.handle_us = s.dur;
    } else if (s.name == "serve.encode") {
      ++r.encode;
    } else if (s.name == "serve.write") {
      ++r.write;
    } else {
      return fail("unknown serve span \"%s\" (req %llu)", s.name.c_str(), s.req);
    }
  }
  if (serve_spans == 0) return fail("trace contains no serve-category spans");

  // Pair the async queue-wait events by id; each request has exactly one.
  std::map<std::string, const AsyncView*> open_async;
  for (const AsyncView& a : async) {
    if (a.name != "serve.queue_wait") {
      return fail("unknown async span \"%s\"", a.name.c_str());
    }
    if (a.begin) {
      if (!open_async.emplace(a.id, &a).second) {
        return fail("async id %s begins twice", a.id.c_str());
      }
      continue;
    }
    const auto it = open_async.find(a.id);
    if (it == open_async.end()) return fail("async id %s ends without a begin", a.id.c_str());
    const AsyncView& b = *it->second;
    open_async.erase(it);
    if (b.req == 0) return fail("queue-wait %s lacks a request id", a.id.c_str());
    ReqView& r = reqs[b.req];
    if (r.queue_us >= 0.0) return fail("request %llu has two queue-wait pairs", b.req);
    r.queue_us = a.ts - b.ts;
    if (r.queue_us < 0.0) return fail("queue-wait %s ends before it begins", a.id.c_str());
  }
  if (!open_async.empty()) {
    return fail("async id %s never ends", open_async.begin()->first.c_str());
  }

  // Per-request shape: one decode, one handler, at least one encoded +
  // written frame (refine also streams progress frames), one queue wait.
  for (const auto& [req, r] : reqs) {
    if (r.decode != 1) {
      return fail("request %llu has %zu serve.decode spans (want 1)", req, r.decode);
    }
    if (r.handle != 1) {
      return fail("request %llu has %zu serve.handle.* spans (want 1)", req, r.handle);
    }
    if (r.encode == 0 || r.write == 0) {
      return fail("request %llu lacks encode/write spans (%zu/%zu)", req, r.encode, r.write);
    }
    if (r.queue_us < 0.0) return fail("request %llu lacks a queue-wait pair", req);
  }

  // Request-id join: a sign-off-bearing handler must enclose flow work, i.e.
  // at least one non-serve span inside the handle span on the same lane.
  const double slop = 0.002;  // µs, matches check_nesting
  for (const SpanView& s : *spans) {
    if (s.cat != "serve" || s.name.rfind("serve.handle.", 0) != 0) continue;
    const std::string op = s.name.substr(std::strlen("serve.handle."));
    if (!is_signoff_bearing(op)) continue;
    bool joined = false;
    for (const SpanView& inner : *spans) {
      if (inner.cat == "serve" || inner.tid != s.tid) continue;
      if (inner.ts >= s.ts - slop && inner.ts + inner.dur <= s.ts + s.dur + slop) {
        joined = true;
        break;
      }
    }
    if (!joined) {
      return fail("request %llu: %s encloses no flow span (serve<->flow join broken)",
                  s.req, s.name.c_str());
    }
  }

  // Per-op latency and queue-wait percentiles from the per-request samples.
  std::map<std::string, std::vector<double>> lat_by_op, queue_by_op;
  double total_handle_us = 0.0, total_queue_us = 0.0;
  for (const auto& [req, r] : reqs) {
    lat_by_op[r.op].push_back(r.handle_us / 1000.0);
    queue_by_op[r.op].push_back(r.queue_us / 1000.0);
    total_handle_us += r.handle_us;
    total_queue_us += r.queue_us;
  }
  std::printf("OK: serve trace, %zu requests, %zu serve spans, joins + nesting consistent\n\n",
              reqs.size(), serve_spans);
  std::printf("%-12s %7s %28s %28s\n", "", "", "handler latency ms", "queue wait ms");
  std::printf("%-12s %7s %9s %9s %9s %9s %9s %9s\n", "op", "count", "p50", "p90", "p99",
              "p50", "p90", "p99");
  for (const auto& [op, lat] : lat_by_op) {
    const std::vector<double>& queue = queue_by_op[op];
    std::printf("%-12s %7zu %9.3f %9.3f %9.3f %9.3f %9.3f %9.3f\n", op.c_str(), lat.size(),
                tsteiner::percentile(lat, 50.0), tsteiner::percentile(lat, 90.0),
                tsteiner::percentile(lat, 99.0), tsteiner::percentile(queue, 50.0),
                tsteiner::percentile(queue, 90.0), tsteiner::percentile(queue, 99.0));
  }
  const double busy = total_handle_us + total_queue_us;
  std::printf("\nqueue-wait attribution: %.3f ms waiting vs %.3f ms handling (%.1f%% of %.3f ms)\n",
              total_queue_us / 1000.0, total_handle_us / 1000.0,
              busy > 0.0 ? 100.0 * total_queue_us / busy : 0.0, busy / 1000.0);
  return 0;
}

/// Schema-check one metrics-op snapshot (the "metrics" object of the
/// response, i.e. MetricsRegistry::to_json): three sections, numeric
/// counters/gauges, and internally consistent histograms (edges bracket
/// [lo, hi], buckets sum to count, percentiles present).
int validate_metrics_snapshot(const JsonValue& m, const char* path) {
  const JsonValue* counters = m.find_object("counters");
  const JsonValue* gauges = m.find_object("gauges");
  const JsonValue* histograms = m.find_object("histograms");
  if (counters == nullptr || gauges == nullptr || histograms == nullptr) {
    return fail("%s lacks counters/gauges/histograms objects", path);
  }
  for (const auto& [name, v] : counters->object) {
    if (!v.is_number() || v.number < 0.0) {
      return fail("%s: counter \"%s\" is not a non-negative number", path, name.c_str());
    }
  }
  for (const auto& [name, v] : gauges->object) {
    if (!v.is_number() && !v.is_null()) {
      return fail("%s: gauge \"%s\" is not a number", path, name.c_str());
    }
  }
  for (const auto& [name, h] : histograms->object) {
    const JsonValue* lo = h.find_number("lo");
    const JsonValue* hi = h.find_number("hi");
    const JsonValue* count = h.find_number("count");
    const JsonValue* buckets = h.find_array("buckets");
    const JsonValue* edges = h.find_array("edges");
    if (lo == nullptr || hi == nullptr || count == nullptr || h.find_number("sum") == nullptr ||
        h.find_number("p50") == nullptr || h.find_number("p90") == nullptr ||
        h.find_number("p99") == nullptr || buckets == nullptr || edges == nullptr) {
      return fail("%s: histogram \"%s\" lacks lo/hi/count/sum/p50/p90/p99/buckets/edges",
                  path, name.c_str());
    }
    if (edges->array.size() != buckets->array.size() + 1) {
      return fail("%s: histogram \"%s\" has %zu edges for %zu buckets", path, name.c_str(),
                  edges->array.size(), buckets->array.size());
    }
    double bucket_sum = 0.0;
    for (const JsonValue& b : buckets->array) bucket_sum += b.number;
    if (bucket_sum != count->number) {
      return fail("%s: histogram \"%s\" buckets sum to %.0f, count says %.0f", path,
                  name.c_str(), bucket_sum, count->number);
    }
    const double width = hi->number - lo->number;
    const double tol = 1e-9 * std::max(1.0, std::fabs(width));
    if (std::fabs(edges->array.front().number - lo->number) > tol ||
        std::fabs(edges->array.back().number - hi->number) > tol) {
      return fail("%s: histogram \"%s\" edges do not bracket [lo, hi]", path, name.c_str());
    }
    for (std::size_t i = 1; i < edges->array.size(); ++i) {
      if (edges->array[i].number < edges->array[i - 1].number) {
        return fail("%s: histogram \"%s\" edges are not monotone", path, name.c_str());
      }
    }
  }
  return 0;
}

/// Compare two snapshots' deterministic subset: instrument names, counter
/// values, and histogram observation counts must match exactly. Gauges,
/// sums and percentiles are wall-clock-dependent and deliberately excluded.
int compare_metrics_snapshots(const JsonValue& a, const JsonValue& b, const char* path_a,
                              const char* path_b) {
  const auto names = [](const JsonValue& m, const char* section) {
    std::vector<std::string> out;
    if (const JsonValue* s = m.find_object(section)) {
      for (const auto& [k, v] : s->object) out.push_back(k);
    }
    std::sort(out.begin(), out.end());
    return out;
  };
  for (const char* section : {"counters", "gauges", "histograms"}) {
    if (names(a, section) != names(b, section)) {
      return fail("%s and %s disagree on %s names", path_a, path_b, section);
    }
  }
  const JsonValue* ca = a.find_object("counters");
  for (const auto& [name, v] : ca->object) {
    // Response bytes embed wall-clock digits (stats latency aggregates), so
    // the outbound byte count is legitimately run-dependent.
    if (name == "serve.bytes_out") continue;
    const JsonValue* w = b.find_object("counters")->find_number(name);
    if (w == nullptr || w->number != v.number) {
      return fail("counter \"%s\": %.0f in %s vs %.0f in %s", name.c_str(), v.number,
                  path_a, w != nullptr ? w->number : -1.0, path_b);
    }
  }
  const JsonValue* ha = a.find_object("histograms");
  for (const auto& [name, v] : ha->object) {
    const JsonValue* w = b.find_object("histograms")->find_object(name);
    const double count_a = v.number_or("count", -1.0);
    const double count_b = w != nullptr ? w->number_or("count", -2.0) : -2.0;
    if (count_a != count_b) {
      return fail("histogram \"%s\": count %.0f in %s vs %.0f in %s", name.c_str(), count_a,
                  path_a, count_b, path_b);
    }
  }
  return 0;
}

/// Load a metrics snapshot file: either a raw MetricsRegistry::to_json
/// object, or a full metrics-op response ({"metrics": {...}} wrapper).
std::optional<JsonValue> load_metrics_snapshot(const char* path) {
  const auto text = read_file(path);
  if (!text) {
    fail("cannot read %s", path);
    return std::nullopt;
  }
  std::string err;
  auto doc = parse_json(*text, &err);
  if (!doc || !doc->is_object()) {
    fail("%s does not parse as a JSON object (%s)", path, err.c_str());
    return std::nullopt;
  }
  if (const JsonValue* inner = doc->find_object("metrics")) return *inner;
  return doc;
}

// --- run reports -------------------------------------------------------------

int verify_report(const JsonValue& doc) {
  const JsonValue* version = doc.find_number("schema_version");
  if (version == nullptr) return fail("run report lacks schema_version");
  const JsonValue* phases = doc.find_array("phases");
  if (phases == nullptr) return fail("run report lacks a phases array");
  for (std::size_t i = 0; i < phases->array.size(); ++i) {
    const JsonValue& p = phases->array[i];
    if (p.find_string("name") == nullptr || p.find_number("wall_s") == nullptr ||
        p.find_number("busy_s") == nullptr || p.find_number("count") == nullptr) {
      return fail("phases[%zu] lacks name/wall_s/busy_s/count", i);
    }
    if (p.number_or("wall_s", -1.0) < 0.0 || p.number_or("count", 0.0) < 1.0) {
      return fail("phases[%zu] has a negative wall_s or zero count", i);
    }
  }
  const JsonValue* refines = doc.find_array("refine");
  if (refines == nullptr) return fail("run report lacks a refine array");
  for (std::size_t i = 0; i < refines->array.size(); ++i) {
    const JsonValue& r = refines->array[i];
    if (r.find_string("design") == nullptr || r.find_number("iterations") == nullptr ||
        r.find_array("iters") == nullptr) {
      return fail("refine[%zu] lacks design/iterations/iters", i);
    }
    const JsonValue* iters = r.find_array("iters");
    double best = -std::numeric_limits<double>::infinity();
    for (std::size_t k = 0; k < iters->array.size(); ++k) {
      const JsonValue& it = iters->array[k];
      if (it.find_number("iter") == nullptr || it.find_number("wns") == nullptr ||
          it.find_number("best_wns") == nullptr) {
        return fail("refine[%zu].iters[%zu] lacks iter/wns/best_wns", i, k);
      }
      const double b = it.number_or("best_wns", 0.0);
      if (b + 1e-12 < best) {
        return fail("refine[%zu].iters[%zu]: best_wns regressed (%.6f -> %.6f)", i, k,
                    best, b);
      }
      best = b;
    }
  }
  if (doc.find_object("metrics") == nullptr) {
    return fail("run report lacks a metrics object");
  }
  std::printf("OK: run report, %zu phases, %zu refine runs\n", phases->array.size(),
              refines->array.size());
  return 0;
}

int summarize_report(const JsonValue& doc) {
  if (const JsonValue* options = doc.find_object("options")) {
    for (const auto& [k, v] : options->object) {
      std::printf("option %s = %s\n", k.c_str(), v.str.c_str());
    }
  }
  if (const JsonValue* phases = doc.find_array("phases")) {
    std::printf("\n%-28s %10s %10s %8s %7s\n", "phase", "wall s", "busy s", "util",
                "count");
    for (const JsonValue& p : phases->array) {
      const JsonValue* name = p.find_string("name");
      std::printf("%-28s %10.3f %10.3f %8.2f %7.0f\n",
                  name != nullptr ? name->str.c_str() : "?", p.number_or("wall_s", 0.0),
                  p.number_or("busy_s", 0.0), p.number_or("utilization", 0.0),
                  p.number_or("count", 0.0));
    }
  }
  if (const JsonValue* refines = doc.find_array("refine")) {
    for (const JsonValue& r : refines->array) {
      const JsonValue* design = r.find_string("design");
      std::printf("\nrefine %s: %.0f iters%s, WNS %.3f -> %.3f, TNS %.1f -> %.1f\n",
                  design != nullptr ? design->str.c_str() : "?",
                  r.number_or("iterations", 0.0),
                  r.find("converged_by_ratio") != nullptr &&
                          r.find("converged_by_ratio")->boolean
                      ? " (converged)"
                      : "",
                  r.number_or("init_wns", 0.0), r.number_or("best_wns", 0.0),
                  r.number_or("init_tns", 0.0), r.number_or("best_tns", 0.0));
    }
  }
  if (const JsonValue* metrics = doc.find_object("metrics")) {
    if (const JsonValue* counters = metrics->find_object("counters")) {
      std::printf("\n%-32s %14s\n", "counter", "value");
      for (const auto& [name, v] : counters->object) {
        std::printf("%-32s %14.0f\n", name.c_str(), v.number);
      }
    }
  }
  return 0;
}

// --- refine JSONL ------------------------------------------------------------

struct JsonlStats {
  std::size_t lines = 0;
  std::map<std::string, std::pair<double, double>> design_range;  // init/best wns
};

/// Validate every line against the iteration schema and the keep-best
/// invariant (per-design best_wns/best_tns never regress). Populates `stats`
/// for summarize.
int verify_jsonl(const std::string& text, JsonlStats* stats) {
  static const char* const kNumberKeys[] = {"iter",      "wns",      "tns",
                                            "best_wns",  "best_tns", "theta",
                                            "grad_norm", "max_move", "lambda_w",
                                            "lambda_t",  "wall_s"};
  std::map<std::string, std::pair<double, double>> best;  // design -> wns/tns
  std::size_t line_no = 0, pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (line.empty()) continue;
    std::string err;
    const auto doc = parse_json(line, &err);
    if (!doc || !doc->is_object()) {
      return fail("line %zu does not parse as a JSON object (%s)", line_no, err.c_str());
    }
    const JsonValue* design = doc->find_string("design");
    if (design == nullptr) return fail("line %zu lacks a design string", line_no);
    for (const char* key : kNumberKeys) {
      if (doc->find_number(key) == nullptr) {
        return fail("line %zu lacks numeric \"%s\"", line_no, key);
      }
    }
    const JsonValue* accept = doc->find("accept");
    if (accept == nullptr || !accept->is_bool()) {
      return fail("line %zu lacks boolean \"accept\"", line_no);
    }
    // Optional sign-off probe fields: all-or-nothing per line, dirty
    // fraction a valid fraction, incremental flag a boolean.
    const JsonValue* so_wns = doc->find("signoff_wns");
    const JsonValue* so_tns = doc->find("signoff_tns");
    const JsonValue* so_frac = doc->find("signoff_dirty_frac");
    const JsonValue* so_inc = doc->find("signoff_incremental");
    const bool any_signoff = so_wns || so_tns || so_frac || so_inc;
    if (any_signoff) {
      if (so_wns == nullptr || !so_wns->is_number() || so_tns == nullptr ||
          !so_tns->is_number() || so_frac == nullptr || !so_frac->is_number()) {
        return fail("line %zu has a partial sign-off probe record", line_no);
      }
      if (so_inc == nullptr || !so_inc->is_bool()) {
        return fail("line %zu lacks boolean \"signoff_incremental\"", line_no);
      }
      const double frac = so_frac->number;
      if (!(frac >= 0.0 && frac <= 1.0)) {
        return fail("line %zu: signoff_dirty_frac %g outside [0,1]", line_no, frac);
      }
    }
    const double bw = doc->number_or("best_wns", 0.0);
    const double bt = doc->number_or("best_tns", 0.0);
    auto [it, fresh] = best.emplace(design->str, std::make_pair(bw, bt));
    if (!fresh) {
      if (bw + 1e-12 < it->second.first) {
        return fail("line %zu: best_wns for %s regressed (%.6f -> %.6f)", line_no,
                    design->str.c_str(), it->second.first, bw);
      }
      if (bt + 1e-12 < it->second.second) {
        return fail("line %zu: best_tns for %s regressed (%.6f -> %.6f)", line_no,
                    design->str.c_str(), it->second.second, bt);
      }
      it->second = {bw, bt};
    }
    if (stats != nullptr) {
      ++stats->lines;
      auto [sit, first] = stats->design_range.emplace(
          design->str, std::make_pair(doc->number_or("wns", 0.0), bw));
      if (!first) sit->second.second = bw;
    }
  }
  return 0;
}

int summarize_jsonl(const std::string& text) {
  JsonlStats stats;
  if (verify_jsonl(text, &stats) != 0) return 1;
  std::printf("%zu iteration records, %zu designs\n", stats.lines,
              stats.design_range.size());
  for (const auto& [design, range] : stats.design_range) {
    std::printf("  %-20s first WNS %10.4f   final best WNS %10.4f\n", design.c_str(),
                range.first, range.second);
  }
  return 0;
}

// --- diff --------------------------------------------------------------------

int diff_reports(const JsonValue& a, const JsonValue& b) {
  int differences = 0;
  const auto diff_section = [&](const char* section) {
    const JsonValue* ma = a.find_object("metrics");
    const JsonValue* mb = b.find_object("metrics");
    const JsonValue* sa = ma != nullptr ? ma->find_object(section) : nullptr;
    const JsonValue* sb = mb != nullptr ? mb->find_object(section) : nullptr;
    std::map<std::string, double> va, vb;
    if (sa != nullptr) {
      for (const auto& [k, v] : sa->object) {
        if (v.is_number()) va[k] = v.number;
      }
    }
    if (sb != nullptr) {
      for (const auto& [k, v] : sb->object) {
        if (v.is_number()) vb[k] = v.number;
      }
    }
    for (const auto& [k, x] : va) {
      const auto it = vb.find(k);
      if (it == vb.end()) {
        std::printf("- %s.%s = %g (only in first)\n", section, k.c_str(), x);
        ++differences;
      } else if (it->second != x) {
        std::printf("~ %s.%s: %g -> %g\n", section, k.c_str(), x, it->second);
        ++differences;
      }
    }
    for (const auto& [k, x] : vb) {
      if (va.find(k) == va.end()) {
        std::printf("+ %s.%s = %g (only in second)\n", section, k.c_str(), x);
        ++differences;
      }
    }
  };
  diff_section("counters");
  diff_section("gauges");

  // Phase wall times, side by side (informational, never a "difference").
  const JsonValue* pa = a.find_array("phases");
  const JsonValue* pb = b.find_array("phases");
  if (pa != nullptr && pb != nullptr) {
    std::map<std::string, double> walls;
    for (const JsonValue& p : pb->array) {
      if (const JsonValue* n = p.find_string("name")) {
        walls[n->str] = p.number_or("wall_s", 0.0);
      }
    }
    for (const JsonValue& p : pa->array) {
      const JsonValue* n = p.find_string("name");
      if (n == nullptr) continue;
      const auto it = walls.find(n->str);
      if (it != walls.end()) {
        std::printf("  phase %-28s %10.3fs vs %10.3fs\n", n->str.c_str(),
                    p.number_or("wall_s", 0.0), it->second);
      }
    }
  }
  std::printf("%d metric difference(s)\n", differences);
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: tsteiner_trace summarize <file>\n"
               "       tsteiner_trace verify <file>\n"
               "       tsteiner_trace diff <report-a> <report-b>\n"
               "       tsteiner_trace serve <trace> [<metrics> [<metrics-b>]]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string cmd = argv[1];

  if (cmd == "diff") {
    if (argc < 4) return usage();
    const auto ta = read_file(argv[2]);
    const auto tb = read_file(argv[3]);
    if (!ta) return fail("cannot read %s", argv[2]);
    if (!tb) return fail("cannot read %s", argv[3]);
    std::optional<JsonValue> da, db;
    if (detect_kind(*ta, da) != FileKind::kReport) {
      return fail("%s is not a run report", argv[2]);
    }
    if (detect_kind(*tb, db) != FileKind::kReport) {
      return fail("%s is not a run report", argv[3]);
    }
    return diff_reports(*da, *db);
  }

  if (cmd == "serve") {
    if (argc > 5) return usage();
    const auto text = read_file(argv[2]);
    if (!text) return fail("cannot read %s", argv[2]);
    std::optional<JsonValue> doc;
    if (detect_kind(*text, doc) != FileKind::kTrace) {
      return fail("%s is not a trace-event file", argv[2]);
    }
    const int rc = serve_trace_report(*doc);
    if (rc != 0) return rc;
    if (argc < 4) return 0;
    const auto ma = load_metrics_snapshot(argv[3]);
    if (!ma) return 1;
    if (const int mrc = validate_metrics_snapshot(*ma, argv[3]); mrc != 0) return mrc;
    std::printf("OK: metrics snapshot %s is schema-consistent\n", argv[3]);
    if (argc < 5) return 0;
    const auto mb = load_metrics_snapshot(argv[4]);
    if (!mb) return 1;
    if (const int mrc = validate_metrics_snapshot(*mb, argv[4]); mrc != 0) return mrc;
    if (const int crc = compare_metrics_snapshots(*ma, *mb, argv[3], argv[4]); crc != 0) {
      return crc;
    }
    std::printf("OK: deterministic subset matches between %s and %s\n", argv[3], argv[4]);
    return 0;
  }

  if (cmd != "summarize" && cmd != "verify") return usage();
  const std::string path = argv[2];
  const auto text = read_file(path);
  if (!text) return fail("cannot read %s", path.c_str());
  std::optional<JsonValue> doc;
  const FileKind kind = detect_kind(*text, doc);
  switch (kind) {
    case FileKind::kTrace:
      return cmd == "verify" ? verify_trace(*doc) : summarize_trace(*doc);
    case FileKind::kReport:
      return cmd == "verify" ? verify_report(*doc) : summarize_report(*doc);
    case FileKind::kJsonl: {
      if (cmd == "summarize") return summarize_jsonl(*text);
      JsonlStats stats;
      const int rc = verify_jsonl(*text, &stats);
      if (rc == 0) {
        std::printf("OK: refine JSONL, %zu records, keep-best monotone\n", stats.lines);
      }
      return rc;
    }
    case FileKind::kUnknown:
      return fail("%s is not a recognized observability artifact", path.c_str());
  }
  return 1;
}
