// tsteiner_fuzz: seeded differential-oracle and property-fuzz driver.
//
// Sweeps randomized fuzz cases through the src/verify oracle suite. Every
// case is a pure function of (run seed, case index), so any failure prints a
// standalone repro line plus a shrunken .tsdb snapshot. Exit codes: 0 = all
// oracles held (or, with --expect-fail, the mutated oracle was caught);
// 1 = a failure the run did not expect; 2 = usage error.
//
// Typical invocations:
//   tsteiner_fuzz --cases 200 --seed 1
//   tsteiner_fuzz --oracle sta-incremental --scale tiny --replay 123456789
//   tsteiner_fuzz --cases 3 --mutate db-roundtrip --expect-fail
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "verify/diff_harness.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [options]\n"
               "  --cases N        number of fuzz cases (default 50)\n"
               "  --seed S         run seed; case k uses mix(S, k) (default 1)\n"
               "  --scale tiny|small\n"
               "  --oracle NAME    run only this oracle (repeatable)\n"
               "  --replay SEED    run exactly one case with this case seed\n"
               "  --mutate NAME    inject NAME's known perturbation (oracle must fail)\n"
               "  --expect-fail    exit 0 iff at least one failure was reported\n"
               "  --no-shrink      skip greedy shrinking of failing cases\n"
               "  --workdir DIR    scratch/snapshot directory (default tsteiner_fuzz_tmp)\n"
               "  --max-failures N stop after N failures (default 3)\n"
               "  --verbose        per-case progress\n"
               "  --list           print oracle names and exit\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using tsteiner::verify::DiffHarness;
  tsteiner::verify::HarnessOptions opts;
  bool expect_fail = false;
  bool list = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: missing value for %s\n", argv[0], flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--cases") {
      opts.cases = std::atoi(value("--cases"));
    } else if (arg == "--seed") {
      opts.seed = std::strtoull(value("--seed"), nullptr, 10);
    } else if (arg == "--scale") {
      opts.scale = value("--scale");
    } else if (arg == "--oracle") {
      opts.only.push_back(value("--oracle"));
    } else if (arg == "--replay") {
      opts.replay_seed = std::strtoull(value("--replay"), nullptr, 10);
      opts.replay = true;
    } else if (arg == "--mutate") {
      opts.mutate_oracle = value("--mutate");
    } else if (arg == "--expect-fail") {
      expect_fail = true;
    } else if (arg == "--no-shrink") {
      opts.shrink = false;
    } else if (arg == "--workdir") {
      opts.work_dir = value("--workdir");
    } else if (arg == "--max-failures") {
      opts.max_failures = std::atoi(value("--max-failures"));
    } else if (arg == "--verbose") {
      opts.verbose = true;
    } else if (arg == "--list") {
      list = true;
    } else {
      std::fprintf(stderr, "%s: unknown option %s\n", argv[0], arg.c_str());
      return usage(argv[0]);
    }
  }
  if (opts.cases <= 0 && !opts.replay) return usage(argv[0]);
  if (opts.scale != "tiny" && opts.scale != "small") {
    std::fprintf(stderr, "%s: unknown scale '%s'\n", argv[0], opts.scale.c_str());
    return 2;
  }

  const DiffHarness harness = DiffHarness::standard();
  if (list) {
    for (const auto& oracle : harness.oracles()) {
      std::printf("%s%s\n", oracle.name.c_str(),
                  oracle.supports_mutation ? "" : " (no mutation mode)");
    }
    return 0;
  }
  auto known = [&](const std::string& name) {
    for (const auto& oracle : harness.oracles()) {
      if (oracle.name == name) return true;
    }
    return false;
  };
  for (const std::string& name : opts.only) {
    if (!known(name)) {
      std::fprintf(stderr, "%s: unknown oracle '%s' (try --list)\n", argv[0], name.c_str());
      return 2;
    }
  }
  if (!opts.mutate_oracle.empty()) {
    if (!known(opts.mutate_oracle)) {
      std::fprintf(stderr, "%s: unknown oracle '%s' (try --list)\n", argv[0],
                   opts.mutate_oracle.c_str());
      return 2;
    }
    // Mutation runs want the mutated oracle exercised on every case.
    if (opts.only.empty()) opts.only.push_back(opts.mutate_oracle);
  }

  const auto failures = harness.run(opts);
  std::fprintf(stderr, "tsteiner_fuzz: %zu failure(s) over %d case(s), seed %llu\n",
               failures.size(), opts.replay ? 1 : opts.cases,
               static_cast<unsigned long long>(opts.replay ? opts.replay_seed : opts.seed));
  if (expect_fail) {
    if (failures.empty()) {
      std::fprintf(stderr,
                   "tsteiner_fuzz: expected the mutated oracle to fail, but every case "
                   "passed — the oracle is vacuous\n");
      return 1;
    }
    return 0;
  }
  return failures.empty() ? 0 : 1;
}
