// tsteiner_db: inspect, verify and unpack TSteinerDB snapshot containers.
//
//   tsteiner_db info <file>                 header + chunk table + meta summary
//   tsteiner_db verify <file>               structure, CRCs, and decode probes
//   tsteiner_db extract <file> <TYPE> <out> [n]
//                                           nth chunk of TYPE (default 0):
//                                           FRST decodes to the text forest
//                                           format, everything else dumps the
//                                           raw payload bytes
//
// verify exits nonzero on any problem, so CI can gate on snapshot health.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "db/bytes.hpp"
#include "db/codecs.hpp"
#include "db/container.hpp"
#include "steiner/forest_io.hpp"

namespace {

using tsteiner::db::ByteReader;
using tsteiner::db::ChunkInfo;
using tsteiner::db::DbReader;

struct MetaView {
  std::string kind;
  std::string tag;
  std::uint32_t design_count = 0;
  bool has_model = false;
  double final_train_loss = 0.0;
  std::uint32_t library_fingerprint = 0;
  bool ok = false;
};

// Mirrors the META layout written by flow/snapshot (kind, tag, design count,
// model flag, final loss, library fingerprint).
MetaView parse_meta(const std::uint8_t* data, std::size_t size) {
  ByteReader r(data, size);
  MetaView m;
  m.kind = r.str();
  m.tag = r.str();
  m.design_count = r.u32();
  m.has_model = r.u8() != 0;
  m.final_train_loss = r.f64();
  m.library_fingerprint = r.u32();
  m.ok = r.done();
  return m;
}

int cmd_info(const std::string& path) {
  DbReader reader;
  std::string error;
  if (!reader.open(path, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  std::printf("%s: TSteinerDB format version %u, %zu chunks\n", path.c_str(),
              reader.version(), reader.chunks().size());
  std::printf("%-6s %12s %12s %10s\n", "type", "offset", "size", "crc32");
  for (const ChunkInfo& c : reader.chunks()) {
    std::printf("%-6s %12llu %12llu   %08X\n", tsteiner::db::fourcc_name(c.type).c_str(),
                static_cast<unsigned long long>(c.offset),
                static_cast<unsigned long long>(c.size), c.crc);
  }
  if (const ChunkInfo* meta_chunk = reader.find(tsteiner::db::kChunkMeta)) {
    const MetaView m =
        parse_meta(reader.payload(*meta_chunk), static_cast<std::size_t>(meta_chunk->size));
    if (m.ok) {
      std::printf("meta: kind=%s designs=%u model=%s loss=%.6f libfp=%08X\n", m.kind.c_str(),
                  m.design_count, m.has_model ? "yes" : "no", m.final_train_loss,
                  m.library_fingerprint);
      if (!m.tag.empty()) std::printf("tag:  %s\n", m.tag.c_str());
    } else {
      std::printf("meta: (unparseable)\n");
    }
  }
  return 0;
}

// Decode every chunk whose payload is self-contained. Chunks that need
// external context to decode (MODL wants the GnnConfig, DSGN wants the cell
// library when none is embedded) are only CRC/structure-checked by open().
int cmd_verify(const std::string& path) {
  DbReader reader;
  std::string error;
  if (!reader.open(path, &error)) {
    std::fprintf(stderr, "FAIL: %s\n", error.c_str());
    return 1;
  }
  int failures = 0;
  auto fail = [&failures](const char* what) {
    std::fprintf(stderr, "FAIL: %s\n", what);
    ++failures;
  };

  const ChunkInfo* meta_chunk = reader.find(tsteiner::db::kChunkMeta);
  MetaView meta;
  if (meta_chunk == nullptr) {
    fail("missing META chunk");
  } else {
    meta = parse_meta(reader.payload(*meta_chunk), static_cast<std::size_t>(meta_chunk->size));
    if (!meta.ok) fail("META chunk does not parse");
  }

  std::optional<tsteiner::CellLibrary> lib;
  if (const ChunkInfo* c = reader.find(tsteiner::db::kChunkLibrary)) {
    lib = tsteiner::db::decode_library(reader.payload(*c), static_cast<std::size_t>(c->size));
    if (!lib) fail("LIBR chunk does not decode");
  }

  for (const ChunkInfo* c : reader.find_all(tsteiner::db::kChunkForest)) {
    if (c->size < 4) {
      fail("FRST chunk shorter than its index prefix");
      continue;
    }
    if (!tsteiner::db::decode_forest(reader.payload(*c) + 4,
                                     static_cast<std::size_t>(c->size) - 4)) {
      fail("FRST chunk does not decode to a valid forest");
    }
  }
  for (const ChunkInfo* c : reader.find_all(tsteiner::db::kChunkDesign)) {
    if (c->size < 4) {
      fail("DSGN chunk shorter than its index prefix");
      continue;
    }
    if (lib && !tsteiner::db::decode_design(reader.payload(*c) + 4,
                                            static_cast<std::size_t>(c->size) - 4, *lib)) {
      fail("DSGN chunk does not decode against the embedded library");
    }
  }
  for (const ChunkInfo* c : reader.find_all(tsteiner::db::kChunkFlowCal)) {
    ByteReader r(reader.payload(*c), static_cast<std::size_t>(c->size));
    r.u32();  // index
    r.f64();  // clock period
    r.f64();  // fixed H capacity
    r.f64();  // fixed V capacity
    if (!r.done()) fail("FCAL chunk has the wrong size");
  }
  for (const ChunkInfo* c : reader.find_all(tsteiner::db::kChunkSample)) {
    ByteReader r(reader.payload(*c), static_cast<std::size_t>(c->size));
    r.u32();  // index
    r.str();  // design name
    const std::size_t nx = r.f64_vec().size();
    const std::size_t ny = r.f64_vec().size();
    r.f64_vec();  // arrival labels
    r.i32_vec();  // endpoint pins
    if (!r.done() || nx != ny) fail("SMPL chunk does not parse");
  }

  if (failures == 0) {
    std::printf("OK: %s (%zu chunks, all CRCs and decode probes pass)\n", path.c_str(),
                reader.chunks().size());
    return 0;
  }
  return 1;
}

int cmd_extract(const std::string& path, const std::string& type_name,
                const std::string& out_path, int nth) {
  if (type_name.size() != 4) {
    std::fprintf(stderr, "error: chunk type must be 4 characters (e.g. FRST)\n");
    return 2;
  }
  char name[5] = {type_name[0], type_name[1], type_name[2], type_name[3], '\0'};
  const std::uint32_t type = tsteiner::db::fourcc(name);

  DbReader reader;
  std::string error;
  if (!reader.open(path, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  const std::vector<const ChunkInfo*> matches = reader.find_all(type);
  if (nth < 0 || static_cast<std::size_t>(nth) >= matches.size()) {
    std::fprintf(stderr, "error: %s has %zu %s chunk(s), index %d out of range\n",
                 path.c_str(), matches.size(), type_name.c_str(), nth);
    return 1;
  }
  const ChunkInfo& chunk = *matches[static_cast<std::size_t>(nth)];

  if (type == tsteiner::db::kChunkForest) {
    if (chunk.size < 4) {
      std::fprintf(stderr, "error: FRST chunk shorter than its index prefix\n");
      return 1;
    }
    auto forest = tsteiner::db::decode_forest(reader.payload(chunk) + 4,
                                              static_cast<std::size_t>(chunk.size) - 4);
    if (!forest) {
      std::fprintf(stderr, "error: FRST chunk does not decode\n");
      return 1;
    }
    if (!tsteiner::write_forest_file(*forest, out_path)) {
      std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::printf("wrote %s (text forest, %zu trees)\n", out_path.c_str(),
                forest->trees.size());
    return 0;
  }

  std::FILE* out = std::fopen(out_path.c_str(), "wb");
  if (out == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  const std::size_t written =
      std::fwrite(reader.payload(chunk), 1, static_cast<std::size_t>(chunk.size), out);
  const bool ok = written == chunk.size && std::fclose(out) == 0;
  if (!ok) {
    std::fprintf(stderr, "error: short write to %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s (%llu raw payload bytes)\n", out_path.c_str(),
              static_cast<unsigned long long>(chunk.size));
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: tsteiner_db info <file>\n"
               "       tsteiner_db verify <file>\n"
               "       tsteiner_db extract <file> <TYPE> <out> [n]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string cmd = argv[1];
  const std::string path = argv[2];
  if (cmd == "info") return cmd_info(path);
  if (cmd == "verify") return cmd_verify(path);
  if (cmd == "extract") {
    if (argc < 5) return usage();
    const int nth = argc > 5 ? std::atoi(argv[5]) : 0;
    return cmd_extract(path, argv[3], argv[4], nth);
  }
  return usage();
}
