// Per-design transfer diagnostic: model-claimed refinement improvement vs
// true sign-off improvement. Uses the suite model cache when present.
#include <cstdio>
#include "flow/experiment.hpp"
#include "tsteiner/refine.hpp"

using namespace tsteiner;

int main() {
  SuiteOptions opts;
  opts.scale = env_scale(0.12);
  opts.perturb_per_design = 3;
  opts.train.epochs = env_epochs(40);
  opts.train.lr = 1e-3;
  TrainedSuite suite = build_and_train_suite(opts);
  std::printf("%-14s %10s %10s %10s | %10s %10s %10s %10s\n", "design", "mWNS0", "mWNSb",
              "mGain%", "tWNS0", "tWNS1", "tGain%", "movable");
  for (PreparedDesign& pd : suite.designs) {
    const FlowResult base = pd.flow->run_signoff(pd.flow->initial_forest());
    RefineOptions ropts;
    ropts.gcell_size = pd.flow->options().router.gcell_size;
    ropts.max_iterations = 60;
    const RefineResult rr =
        refine_steiner_points(*pd.design, pd.flow->initial_forest(), *suite.model, ropts);
    const FlowResult opt = pd.flow->run_signoff(rr.forest);
    const double mgain = rr.init_wns < 0 ? 100.0 * (rr.init_wns - rr.best_wns) / rr.init_wns : 0.0;
    const double tgain = base.metrics.wns_ns < 0
                             ? 100.0 * (base.metrics.wns_ns - opt.metrics.wns_ns) / base.metrics.wns_ns
                             : 0.0;
    std::printf("%-14s %10.3f %10.3f %9.2f%% | %10.3f %10.3f %9.2f%% %10zu\n",
                pd.spec.name.c_str(), rr.init_wns, rr.best_wns, mgain, base.metrics.wns_ns,
                opt.metrics.wns_ns, tgain, pd.flow->initial_forest().num_movable());
  }
  return 0;
}
