// Diagnostic: does the learned gradient direction beat random directions in
// TRUE sign-off timing, and at what move scale? Not part of the shipped
// benches; used to calibrate RefineOptions defaults.
#include <cstdio>

#include "flow/experiment.hpp"
#include "flow/flow.hpp"
#include "tsteiner/gradient.hpp"
#include "tsteiner/random_move.hpp"
#include "tsteiner/refine.hpp"

using namespace tsteiner;

int main(int argc, char** argv) {
  const int ncells = argc > 1 ? std::atoi(argv[1]) : 500;
  const CellLibrary lib = CellLibrary::make_default();
  GeneratorParams params;
  params.num_comb_cells = ncells;
  params.num_registers = ncells / 8;
  params.num_primary_inputs = 12;
  params.num_primary_outputs = 12;
  params.seed = 7;
  Design design = generate_design(lib, params);
  place_design(design);
  Flow flow(&design);
  const FlowResult base = flow.run_signoff(flow.initial_forest());
  std::printf("baseline: WNS %.3f TNS %.1f\n", base.metrics.wns_ns, base.metrics.tns_ns);

  auto cache = build_graph_cache(design, flow.initial_forest());
  std::vector<TrainingSample> samples;
  Rng rng(11);
  auto label = [&](const SteinerForest& forest) {
    TrainingSample s;
    s.cache = cache;
    s.xs = forest.gather_x();
    s.ys = forest.gather_y();
    const FlowResult fr = flow.run_signoff(forest);
    s.arrival_label = fr.sta.arrival;
    s.endpoint_pins = fr.sta.endpoints;
    return s;
  };
  samples.push_back(label(flow.initial_forest()));
  for (double dist : {16.0, 4.0, 8.0, 16.0, 4.0, 8.0}) {
    Rng child = rng.fork();
    samples.push_back(label(random_disturb(flow.initial_forest(), design.die(), dist, child)));
  }
  GnnConfig gnn;
  TimingGnn model(gnn, lib.num_types());
  TrainOptions topt;
  topt.epochs = 80;
  topt.lr = 2e-3;
  Trainer trainer(&model, topt);
  trainer.fit(samples);
  printf("R2 base: %.4f\n", trainer.evaluate(samples[0]).r2_all);

  PenaltyWeights w;
  const auto xs0 = flow.initial_forest().gather_x();
  const auto ys0 = flow.initial_forest().gather_y();
  // One retained program serves every model query below: the disturbed
  // variants share the initial forest's topology, so they replay in place.
  GradientEvaluator evaluator(model, *cache, design, xs0, ys0, w);
  const GradientResult g = evaluator.gradients(xs0, ys0, w);
  printf("model init eval: WNS %.3f TNS %.1f\n", g.eval_wns_ns, g.eval_tns_ns);

  // Normalized descent direction: sign(g) (SO-like step shape), moving only
  // coordinates whose |g| is above the q-th percentile over all coords.
  std::vector<double> mags;
  for (std::size_t i = 0; i < xs0.size(); ++i) {
    mags.push_back(std::abs(g.grad_x[i]));
    mags.push_back(std::abs(g.grad_y[i]));
  }
  auto move_along = [&](double step, double quantile) {
    std::vector<double> sorted = mags;
    std::sort(sorted.begin(), sorted.end());
    const double thr =
        sorted[static_cast<std::size_t>(quantile * static_cast<double>(sorted.size() - 1))];
    SteinerForest f = flow.initial_forest();
    auto xs = xs0;
    auto ys = ys0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      if (std::abs(g.grad_x[i]) >= thr) {
        xs[i] -= step * (g.grad_x[i] > 0 ? 1.0 : -1.0);
      }
      if (std::abs(g.grad_y[i]) >= thr) {
        ys[i] -= step * (g.grad_y[i] > 0 ? 1.0 : -1.0);
      }
    }
    f.scatter_xy(xs, ys);
    f.clamp_steiner_points(design.die());
    f.round_steiner_points();
    return f;
  };

  std::printf("\n%-6s %-6s %-12s %-12s %-14s %-14s\n", "step", "quant", "trueWNS", "trueTNS",
              "evalWNS", "evalTNS");
  for (double quantile : {0.0, 0.9, 0.99}) {
    for (double step : {4.0, 16.0}) {
      SteinerForest f = move_along(step, quantile);
      const FlowResult fr = flow.run_signoff(f);
      const GradientResult ev = evaluator.evaluate(f.gather_x(), f.gather_y(), w);
      std::printf("%-6.0f %-6.2f %-12.3f %-12.1f %-14.3f %-14.1f\n", step, quantile,
                  fr.metrics.wns_ns, fr.metrics.tns_ns, ev.eval_wns_ns, ev.eval_tns_ns);
    }
  }
  // Full Algorithm 1 loop with the production options.
  {
    RefineOptions ropts;
    ropts.max_iterations = 30;
    const RefineResult rr = refine_steiner_points(design, flow.initial_forest(), model, ropts);
    const FlowResult fr = flow.run_signoff(rr.forest);
    std::printf("\nrefine: %d iters, theta %.4f, model WNS %.3f -> %.3f, TNS %.1f -> %.1f\n",
                rr.iterations, rr.theta, rr.init_wns, rr.best_wns, rr.init_tns, rr.best_tns);
    double moved = 0.0; {
      const auto rx = rr.forest.gather_x(); const auto ry = rr.forest.gather_y();
      for (std::size_t i = 0; i < rx.size(); ++i) moved += std::abs(rx[i]-xs0[i]) + std::abs(ry[i]-ys0[i]);
      moved /= std::max<std::size_t>(1, rx.size());
    }
    std::printf("refine avg |move| per point: %.2f DBU\n", moved);
    std::printf("refine true signoff: WNS %.3f TNS %.1f (baseline %.3f / %.1f)\n",
                fr.metrics.wns_ns, fr.metrics.tns_ns, base.metrics.wns_ns,
                base.metrics.tns_ns);
  }

  // Random directions at the same scales, 5 trials each.
  Rng rr(99);
  for (double step : {8.0, 16.0, 32.0}) {
    double wns_sum = 0, tns_sum = 0, wns_best = -1e30;
    for (int k = 0; k < 5; ++k) {
      Rng child = rr.fork();
      const SteinerForest f = random_disturb(flow.initial_forest(), design.die(), step, child);
      const FlowResult fr = flow.run_signoff(f);
      wns_sum += fr.metrics.wns_ns;
      tns_sum += fr.metrics.tns_ns;
      wns_best = std::max(wns_best, fr.metrics.wns_ns);
    }
    std::printf("rand %-5.0f %-12.3f %-12.1f (mean of 5, best WNS %.3f)\n", step, wns_sum / 5,
                tns_sum / 5, wns_best);
  }
  return 0;
}
