// Sign-off analysis walkthrough: runs the golden flow on one design and
// exercises the analysis/optimization toolkit around it — critical-path
// reports, electrical rule checks, metal-layer assignment, van Ginneken
// buffering, and incremental STA for fast what-if probing.
#include <cstdio>

#include "flow/flow.hpp"
#include "netlist/design_generator.hpp"
#include "opt/buffering.hpp"
#include "place/placer.hpp"
#include "route/layer_assign.hpp"
#include "sta/incremental.hpp"
#include "sta/report.hpp"
#include "steiner/rsmt.hpp"
#include "util/timer.hpp"

using namespace tsteiner;

int main() {
  const CellLibrary lib = CellLibrary::make_default();
  GeneratorParams params;
  params.name = "signoff_demo";
  params.num_comb_cells = 1500;
  params.num_registers = 180;
  params.num_primary_inputs = 16;
  params.num_primary_outputs = 16;
  params.seed = 21;
  Design design = generate_design(lib, params);
  place_design(design);
  Flow flow(&design);
  const FlowResult fr = flow.run_signoff(flow.initial_forest());
  std::printf("sign-off: WNS %.3f ns, TNS %.1f ns, %lld violations of %zu endpoints\n",
              fr.metrics.wns_ns, fr.metrics.tns_ns, fr.metrics.num_vios,
              design.endpoint_pins().size());
  std::printf("electrical: %lld slew / %lld cap violations (worst %.3f ns / %.4f pF)\n\n",
              fr.sta.num_slew_violations, fr.sta.num_cap_violations, fr.sta.worst_slew_ns,
              fr.sta.worst_cap_pf);

  // 1. Report the two worst paths.
  const auto paths =
      extract_critical_paths(design, flow.initial_forest(), &fr.gr, fr.sta, 2);
  for (const TimingPath& p : paths) {
    std::printf("%s\n", format_path(design, p).c_str());
  }

  // 2. Metal-layer assignment: how much does the layer stack buy?
  const auto crit = connection_criticality(design, flow.initial_forest(), fr.gr,
                                           fr.sta.arrival);
  const LayerAssignment wl_pol =
      assign_layers(flow.initial_forest(), fr.gr, LayerPolicy::kWirelength);
  const LayerAssignment td_pol =
      assign_layers(flow.initial_forest(), fr.gr, LayerPolicy::kTimingDriven, &crit);
  const StaResult sta_wl = run_sta(design, flow.initial_forest(), &fr.gr, {}, &wl_pol);
  const StaResult sta_td = run_sta(design, flow.initial_forest(), &fr.gr, {}, &td_pol);
  std::printf("layer assignment: single-layer WNS %.3f | WL-driven %.3f | "
              "timing-driven %.3f (ns)\n\n",
              fr.sta.wns, sta_wl.wns, sta_td.wns);

  // 3. Buffer the worst path's nets (van Ginneken).
  long long buffers = 0;
  if (!paths.empty()) {
    for (const PathStep& step : paths[0].steps) {
      if (!step.through_net) continue;
      const int net = design.pin(step.pin).net;
      if (net < 0) continue;
      const int t = flow.initial_forest().net_to_tree[static_cast<std::size_t>(net)];
      if (t < 0) continue;
      const SteinerTree& tree = flow.initial_forest().trees[static_cast<std::size_t>(t)];
      const BufferingPlan plan = plan_buffering(design, tree);
      if (plan.buffers.empty()) continue;
      buffers += static_cast<long long>(apply_buffering(design, plan, tree).size());
      break;  // buffer the first improvable net of the worst path
    }
  }
  if (buffers > 0) {
    const SteinerForest f2 = build_forest(design);
    const StaResult after = run_sta(design, f2, nullptr);
    std::printf("buffered the worst path's net with %lld buffers: preroute WNS %.3f ns\n\n",
                buffers, after.wns);
  }

  // 4. Incremental STA: probe "what if this net's Steiner point moved" at a
  //    fraction of a full analysis.
  SteinerForest probe = flow.initial_forest();
  IncrementalSta inc(design);
  WallTimer full_timer;
  inc.analyze(probe, nullptr);
  const double full_s = full_timer.seconds();
  int moved_net = -1;
  for (SteinerTree& t : probe.trees) {
    for (SteinerNode& n : t.nodes) {
      if (n.is_steiner()) {
        n.pos.x += 10.0;
        moved_net = t.net;
        break;
      }
    }
    if (moved_net >= 0) break;
  }
  WallTimer inc_timer;
  inc.update(probe, nullptr, {moved_net});
  const double inc_s = inc_timer.seconds();
  std::printf("incremental STA: full analysis %.1f ms, single-net what-if %.2f ms "
              "(%lld cells re-evaluated)\n",
              full_s * 1e3, inc_s * 1e3, inc.last_update_cell_count());
  return 0;
}
