// Sign-off timing evaluator training demo: trains the customized GNN on a
// few small designs, evaluates arrival-time prediction quality (R^2, as in
// Table III) on a held-out design, and shows where the model's gradients
// point for a sample Steiner point.
#include <cstdio>

#include "flow/experiment.hpp"
#include "tsteiner/gradient.hpp"
#include "tsteiner/penalty.hpp"
#include "tsteiner/random_move.hpp"
#include "util/stats.hpp"

using namespace tsteiner;

int main() {
  const CellLibrary lib = CellLibrary::make_default();
  const double scale = env_scale(0.5);

  // Train on three small designs, hold out a fourth.
  std::vector<BenchmarkSpec> specs = {
      {"spm", 238, 129, true, 106},
      {"cic_decimator", 781, 130, true, 102},
      {"usb_cdc_core", 1642, 626, true, 109},
      {"APU", 2897, 427, false, 103},  // held out
  };
  std::vector<PreparedDesign> designs;
  std::vector<TrainingSample> train_samples;
  std::vector<TrainingSample> base_samples;
  Rng rng(2024);
  for (const BenchmarkSpec& spec : specs) {
    std::printf("preparing %s ...\n", spec.name.c_str());
    designs.push_back(prepare_design(lib, spec, scale));
    const PreparedDesign& pd = designs.back();
    base_samples.push_back(make_training_sample(pd, pd.flow->initial_forest()));
    if (!spec.is_training) continue;
    train_samples.push_back(base_samples.back());
    for (int k = 0; k < 3; ++k) {
      Rng child = rng.fork();
      const SteinerForest variant = random_disturb(
          pd.flow->initial_forest(), pd.design->die(), 16.0, child);
      train_samples.push_back(make_training_sample(pd, variant));
    }
  }

  GnnConfig cfg;
  TimingGnn model(cfg, lib.num_types());
  TrainOptions topt;
  topt.epochs = env_epochs(40);
  topt.lr = 1e-3;
  Trainer trainer(&model, topt);
  std::printf("training on %zu samples ...\n", train_samples.size());
  const double loss = trainer.fit(train_samples);
  std::printf("final loss: %.6f\n\n", loss);

  std::printf("%-16s %-8s %-12s %-12s\n", "design", "split", "R2(all)", "R2(ends)");
  for (std::size_t i = 0; i < designs.size(); ++i) {
    const EvalMetrics m = trainer.evaluate(base_samples[i]);
    std::printf("%-16s %-8s %-12.4f %-12.4f\n", specs[i].name.c_str(),
                specs[i].is_training ? "train" : "test", m.r2_all, m.r2_ends);
  }

  // Gradient inspection on the held-out design: the direction the smoothed
  // penalty pushes the first few Steiner points.
  const PreparedDesign& held = designs.back();
  PenaltyWeights w;
  const GradientResult g = compute_timing_gradients(
      model, *held.cache, *held.design, held.flow->initial_forest().gather_x(),
      held.flow->initial_forest().gather_y(), w);
  std::printf("\npenalty %.4f, eval WNS %.3f ns, eval TNS %.1f ns\n", g.penalty,
              g.eval_wns_ns, g.eval_tns_ns);
  for (std::size_t i = 0; i < std::min<std::size_t>(5, g.grad_x.size()); ++i) {
    std::printf("steiner point %zu: dP/dx = %+.5f  dP/dy = %+.5f\n", i, g.grad_x[i],
                g.grad_y[i]);
  }
  return 0;
}
