// Quickstart: the minimal TSteiner loop on one synthetic design.
//
//   1. generate + place a small design
//   2. build initial Steiner trees and calibrate the flow
//   3. train the timing evaluator on sign-off labels of a few Steiner
//      position variants of this design
//   4. run Algorithm 1 (concurrent Steiner point refinement)
//   5. compare sign-off WNS/TNS with and without TSteiner
//
// Build:  cmake -B build -G Ninja && cmake --build build --target quickstart
// Run:    ./build/examples/quickstart
#include <cstdio>

#include "flow/experiment.hpp"
#include "flow/flow.hpp"
#include "netlist/design_generator.hpp"
#include "place/placer.hpp"
#include "tsteiner/random_move.hpp"
#include "flow/visualize.hpp"
#include "tsteiner/refine.hpp"

using namespace tsteiner;

int main() {
  // 1. A small design: ~2.5k cells, register-bounded random logic.
  const CellLibrary lib = CellLibrary::make_default();
  GeneratorParams params;
  params.name = "quickstart";
  params.num_comb_cells = 2200;   // large enough for the timing signal to
  params.num_registers = 260;     // dominate routing-quantization noise
  params.num_primary_inputs = 16;
  params.num_primary_outputs = 16;
  params.seed = 7;
  Design design = generate_design(lib, params);
  place_design(design);
  std::printf("design: %lld cells, %zu nets, %zu endpoints\n", design.stats().num_cells,
              design.nets().size(), design.endpoint_pins().size());

  // 2. Flow setup: initial RSMT + edge shifting, clock + capacity calibration.
  Flow flow(&design);
  std::printf("clock period: %.3f ns, steiner points: %lld\n", design.clock_period(),
              flow.initial_forest().num_steiner_nodes());
  const FlowResult baseline = flow.run_signoff(flow.initial_forest());
  std::printf("baseline  sign-off: WNS %.3f ns, TNS %.1f ns, vios %lld\n",
              baseline.metrics.wns_ns, baseline.metrics.tns_ns, baseline.metrics.num_vios);

  // 3. Train the evaluator on this design: base + 6 perturbed variants.
  auto cache = build_graph_cache(design, flow.initial_forest());
  std::vector<TrainingSample> samples;
  Rng rng(11);
  auto label = [&](const SteinerForest& forest) {
    TrainingSample s;
    s.design_name = "quickstart";
    s.cache = cache;
    s.xs = forest.gather_x();
    s.ys = forest.gather_y();
    const FlowResult fr = flow.run_signoff(forest);
    s.arrival_label = fr.sta.arrival;
    s.endpoint_pins = fr.sta.endpoints;
    return s;
  };
  samples.push_back(label(flow.initial_forest()));
  const double dists[] = {16.0, 4.0, 8.0, 12.0, 2.0, 20.0};
  for (double dist : dists) {
    Rng child = rng.fork();
    samples.push_back(
        label(random_disturb(flow.initial_forest(), design.die(), dist, child)));
  }
  GnnConfig gnn;
  TimingGnn model(gnn, lib.num_types());
  TrainOptions topt;
  topt.epochs = 80;
  topt.lr = 2e-3;
  Trainer trainer(&model, topt);
  const double loss = trainer.fit(samples);
  const EvalMetrics ev = trainer.evaluate(samples[0]);
  std::printf("evaluator trained: loss %.5f, R2(all pins) %.4f\n", loss, ev.r2_all);

  // 4. Concurrent Steiner point refinement (Algorithm 1).
  RefineOptions ropts;
  ropts.max_iterations = 60;
  const RefineResult refined = refine_steiner_points(design, flow.initial_forest(), model, ropts);
  std::printf("TSteiner: %d iterations, model-evaluated WNS %.3f -> %.3f ns\n",
              refined.iterations, refined.init_wns, refined.best_wns);

  // 5. Sign-off comparison.
  const FlowResult optimized = flow.run_signoff(refined.forest);
  std::printf("TSteiner  sign-off: WNS %.3f ns, TNS %.1f ns, vios %lld\n",
              optimized.metrics.wns_ns, optimized.metrics.tns_ns,
              optimized.metrics.num_vios);
  const double wns_gain =
      (baseline.metrics.wns_ns - optimized.metrics.wns_ns) / baseline.metrics.wns_ns;
  std::printf("WNS improvement: %.1f%%\n", -wns_gain * 100.0);

  // 6. Visual diff: refined Steiner points highlighted in red over the
  //    congestion heatmap.
  if (render_design_svg(design, refined.forest, &optimized.gr.grid,
                        &flow.initial_forest(), "quickstart_refined.svg")) {
    std::printf("wrote quickstart_refined.svg\n");
  }
  return 0;
}
