// Routing-substrate study: shows how the grid-graph router, capacity
// calibration, negotiated rip-up-and-reroute and congestion-driven edge
// shifting interact — the machinery TSteiner's sign-off labels run through.
#include <cstdio>

#include "droute/detailed_route.hpp"
#include "netlist/design_generator.hpp"
#include "place/placer.hpp"
#include "route/global_router.hpp"
#include "steiner/edge_shift.hpp"
#include "steiner/rsmt.hpp"

using namespace tsteiner;

int main() {
  const CellLibrary lib = CellLibrary::make_default();
  GeneratorParams params;
  params.name = "congestion_study";
  params.num_comb_cells = 1200;
  params.num_registers = 120;
  params.num_primary_inputs = 16;
  params.num_primary_outputs = 16;
  params.seed = 13;
  Design design = generate_design(lib, params);
  place_design(design);
  SteinerForest forest = build_forest(design);
  std::printf("design %s: %lld cells, %zu trees, %lld steiner points\n",
              design.name().c_str(), design.stats().num_cells, forest.trees.size(),
              forest.num_steiner_nodes());

  // Pattern routing only (no negotiation) to expose raw congestion.
  RouterOptions no_rrr;
  no_rrr.rrr_iterations = 0;
  const GlobalRouteResult raw = global_route(design, forest, no_rrr);
  std::printf("\npattern route:    overflow %.1f over %lld edges (caps H %.1f / V %.1f)\n",
              raw.total_overflow, raw.overflowed_edges, raw.calibrated_h_cap,
              raw.calibrated_v_cap);

  // Full negotiated RRR with the same capacities.
  RouterOptions with_rrr;
  with_rrr.fixed_h_cap = raw.calibrated_h_cap;
  with_rrr.fixed_v_cap = raw.calibrated_v_cap;
  const GlobalRouteResult negotiated = global_route(design, forest, with_rrr);
  std::printf("negotiated route: overflow %.1f over %lld edges, %d RRR rounds\n",
              negotiated.total_overflow, negotiated.overflowed_edges,
              negotiated.rrr_rounds_used);

  // Edge shifting against the congestion map, then reroute.
  const GridGraph& grid = raw.grid;  // shift against raw congestion (pre-negotiation)
  const int moves = edge_shift_forest(forest, [&grid](const PointF& a, const PointF& b) {
    GCell ga = grid.gcell_at(a);
    const GCell gb = grid.gcell_at(b);
    double cost = 0.0;
    while (ga.x != gb.x) {
      const GCell next{ga.x + (gb.x > ga.x ? 1 : -1), ga.y};
      cost += std::max(0.0, grid.congestion_between(ga, next) - 0.7);
      ga = next;
    }
    while (ga.y != gb.y) {
      const GCell next{ga.x, ga.y + (gb.y > ga.y ? 1 : -1)};
      cost += std::max(0.0, grid.congestion_between(ga, next) - 0.7);
      ga = next;
    }
    return cost;
  });
  const GlobalRouteResult shifted = global_route(design, forest, with_rrr);
  std::printf("after edge shift: overflow %.1f over %lld edges (%d points moved)\n",
              shifted.total_overflow, shifted.overflowed_edges, moves);

  // Detailed-routing surrogate on both.
  const DetailedRouteResult dr_before = detailed_route(design, forest, negotiated);
  const DetailedRouteResult dr_after = detailed_route(design, forest, shifted);
  std::printf("\nDR surrogate:  DRVs %lld -> %lld, repair rounds %d -> %d\n",
              dr_before.num_drvs, dr_after.num_drvs, dr_before.repair_rounds_used,
              dr_after.repair_rounds_used);
  std::printf("wirelength %.0f -> %.0f DBU, vias %lld -> %lld\n", dr_before.wirelength_dbu,
              dr_after.wirelength_dbu, dr_before.num_vias, dr_after.num_vias);
  return 0;
}
