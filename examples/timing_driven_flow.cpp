// Timing-driven flow on a Table-I benchmark: runs the full paper pipeline
// (suite preparation, evaluator training across the six training designs,
// then TSteiner refinement) for one chosen design and prints a Table-II
// style before/after row.
//
// Usage: timing_driven_flow [design-name] [scale]
//        defaults: picorv32a (a held-out test design), TSTEINER_SCALE or 0.12
#include <cstdio>
#include <cstring>

#include "flow/experiment.hpp"
#include "tsteiner/refine.hpp"
#include "util/table.hpp"

using namespace tsteiner;

int main(int argc, char** argv) {
  const char* target = argc > 1 ? argv[1] : "picorv32a";
  SuiteOptions opts;
  opts.scale = argc > 2 ? std::atof(argv[2]) : env_scale(0.12);
  opts.perturb_per_design = 3;
  opts.train.epochs = env_epochs(40);

  std::printf("building suite at scale %.2f and training the evaluator ...\n", opts.scale);
  TrainedSuite suite = build_and_train_suite(opts);

  const PreparedDesign* pd = nullptr;
  for (const PreparedDesign& d : suite.designs) {
    if (d.spec.name == target) pd = &d;
  }
  if (pd == nullptr) {
    std::fprintf(stderr, "unknown design '%s'\n", target);
    return 1;
  }

  std::printf("running baseline flow on %s ...\n", target);
  const FlowResult base = pd->flow->run_signoff(pd->flow->initial_forest());

  std::printf("running TSteiner + flow ...\n");
  RefineOptions ropts;
  ropts.gcell_size = pd->flow->options().router.gcell_size;
  const RefineResult refined =
      refine_steiner_points(*pd->design, pd->flow->initial_forest(), *suite.model, ropts);
  const FlowResult opt = pd->flow->run_signoff(refined.forest);

  Table t({"flow", "WNS (ns)", "TNS (ns)", "# Vios", "WL", "# Vias", "# DRV"});
  t.add_row({"CUGR-like + DR", Table::num(base.metrics.wns_ns), Table::num(base.metrics.tns_ns, 1),
             Table::num(base.metrics.num_vios), Table::num(base.metrics.wirelength_dbu, 0),
             Table::num(base.metrics.num_vias), Table::num(base.metrics.num_drvs)});
  t.add_row({"TSteiner + flow", Table::num(opt.metrics.wns_ns), Table::num(opt.metrics.tns_ns, 1),
             Table::num(opt.metrics.num_vios), Table::num(opt.metrics.wirelength_dbu, 0),
             Table::num(opt.metrics.num_vias), Table::num(opt.metrics.num_drvs)});
  t.print();
  std::printf("refinement used %d iterations (theta %.4f)%s\n", refined.iterations,
              refined.theta, refined.converged_by_ratio ? ", converged by ratio" : "");
  return 0;
}
