#include "netlist/design_generator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tsteiner {

namespace {

/// Weighted combinational type mix; tuned so the average inputs/cell lands
/// near the 2.6 cell-edges-per-cell ratio of Table I.
struct TypeMix {
  std::vector<int> type_ids;
  std::vector<double> cumulative;

  TypeMix(const CellLibrary& lib) {
    const std::vector<std::pair<const char*, double>> weights = {
        {"INV_X1", 0.05}, {"INV_X2", 0.03}, {"INV_X4", 0.02}, {"BUF_X1", 0.03},
        {"BUF_X2", 0.02}, {"NAND2_X1", 0.16}, {"NOR2_X1", 0.10}, {"AND2_X1", 0.08},
        {"OR2_X1", 0.06}, {"XOR2_X1", 0.09}, {"AOI21_X1", 0.14}, {"OAI21_X1", 0.12},
        {"MUX2_X1", 0.10}};
    double acc = 0.0;
    for (const auto& [name, w] : weights) {
      const int id = lib.find(name);
      if (id < 0) throw std::runtime_error(std::string("missing cell type ") + name);
      acc += w;
      type_ids.push_back(id);
      cumulative.push_back(acc);
    }
  }

  int sample(Rng& rng) const {
    const double r = rng.uniform(0.0, cumulative.back());
    const auto it = std::lower_bound(cumulative.begin(), cumulative.end(), r);
    return type_ids[static_cast<std::size_t>(it - cumulative.begin())];
  }
};

}  // namespace

Design generate_design(const CellLibrary& lib, const GeneratorParams& params) {
  if (params.num_comb_cells < 4 || params.num_registers < 1 ||
      params.num_primary_inputs < 1 || params.num_primary_outputs < 1) {
    throw std::runtime_error("generator parameters too small");
  }
  Rng rng(params.seed);
  Design d(params.name, &lib);
  const TypeMix mix(lib);

  // Die sized from total cell area and target utilization, square aspect.
  double total_area = 0.0;
  {
    // Expected area: sample the mix once to estimate, then add registers.
    for (int i = 0; i < 256; ++i) total_area += lib.type(mix.sample(rng)).area;
    total_area = total_area / 256.0 * params.num_comb_cells;
    total_area += lib.type(lib.register_type()).area * params.num_registers;
  }
  const auto side = static_cast<std::int64_t>(
      std::ceil(std::sqrt(total_area / params.placement_utilization)));
  d.set_die({{0, 0}, {std::max<std::int64_t>(side, 8), std::max<std::int64_t>(side, 8)}});

  // Ports along the die boundary (PIs on the left edge, POs on the right).
  std::vector<int> pi_pins;
  std::vector<int> po_pins;
  for (int i = 0; i < params.num_primary_inputs; ++i) {
    const std::int64_t y = d.die().lo.y + (d.die().height() * (i + 1)) /
                                              (params.num_primary_inputs + 1);
    pi_pins.push_back(d.add_primary_input({d.die().lo.x, y}));
  }
  for (int i = 0; i < params.num_primary_outputs; ++i) {
    const std::int64_t y = d.die().lo.y + (d.die().height() * (i + 1)) /
                                              (params.num_primary_outputs + 1);
    po_pins.push_back(d.add_primary_output({d.die().hi.x, y}));
  }

  // Registers first: their Q pins seed the source pool at timing level 0.
  std::vector<int> reg_cells;
  reg_cells.reserve(static_cast<std::size_t>(params.num_registers));
  for (int i = 0; i < params.num_registers; ++i) {
    reg_cells.push_back(d.add_cell(lib.register_type()));
  }

  // Source pool: pins that can drive combinational inputs, in creation
  // order. `net_of_source` is created lazily, `fanout` tracks use so the
  // generator can steer drivers toward unused outputs first.
  struct Source {
    int pin = -1;
    int net = -1;
    int fanout = 0;
  };
  std::vector<Source> sources;
  auto add_source = [&](int pin_id) { sources.push_back({pin_id, -1, 0}); };
  for (int p : pi_pins) add_source(p);
  for (int c : reg_cells) add_source(d.cell(c).output_pin);

  std::vector<std::size_t> unused;  // indices into `sources` with fanout == 0
  for (std::size_t i = 0; i < sources.size(); ++i) unused.push_back(i);

  // Control sources (reset/enable style): a few register outputs that fan
  // out across the design.
  std::vector<std::size_t> control;
  for (int i = 0; i < params.num_control_sources && i < params.num_registers; ++i) {
    control.push_back(static_cast<std::size_t>(pi_pins.size()) + static_cast<std::size_t>(i));
  }

  auto connect_from_source = [&](std::size_t src_idx, int sink_pin) {
    Source& s = sources[src_idx];
    if (s.net < 0) s.net = d.add_net(s.pin);
    d.connect_sink(s.net, sink_pin);
    ++s.fanout;
  };

  auto sample_source = [&](std::size_t exclude_after) -> std::size_t {
    // Sample among sources created before `exclude_after` (prevents cycles:
    // a cell may only read pins created before its own output).
    const auto n = static_cast<std::int64_t>(exclude_after);
    if (n <= 0) throw std::runtime_error("no sources available");
    if (!control.empty() && rng.bernoulli(params.control_pick_prob)) {
      const std::size_t c = control[rng.index(control.size())];
      if (c < exclude_after) return c;
    }
    // Prefer unused sources half the time so few outputs dangle.
    if (!unused.empty() && rng.bernoulli(0.5)) {
      // Pop a random unused entry that is in range; tolerate stale ones.
      for (int tries = 0; tries < 4 && !unused.empty(); ++tries) {
        const std::size_t k = rng.index(unused.size());
        const std::size_t idx = unused[k];
        unused[k] = unused.back();
        unused.pop_back();
        if (idx < exclude_after && sources[idx].fanout == 0) return idx;
      }
    }
    if (rng.bernoulli(params.global_pick_prob)) {
      return static_cast<std::size_t>(rng.uniform_int(0, n - 1));
    }
    const auto window = std::max<std::int64_t>(
        8, static_cast<std::int64_t>(params.locality_window_frac * static_cast<double>(n)));
    const std::int64_t lo = std::max<std::int64_t>(0, n - window);
    return static_cast<std::size_t>(rng.uniform_int(lo, n - 1));
  };

  // Combinational cells in creation order == topological order.
  for (int i = 0; i < params.num_comb_cells; ++i) {
    const int type_id = mix.sample(rng);
    const int cid = d.add_cell(type_id);
    const Cell& c = d.cell(cid);
    const std::size_t limit = sources.size();
    for (int in_pin : c.input_pins) {
      connect_from_source(sample_source(limit), in_pin);
    }
    add_source(c.output_pin);
    unused.push_back(sources.size() - 1);
  }

  // Register D inputs close the sequential loop; bias toward late sources so
  // paths span the full combinational depth.
  for (int rc : reg_cells) {
    const std::size_t n = sources.size();
    std::size_t idx;
    if (rng.bernoulli(0.7)) {
      const auto lo = static_cast<std::int64_t>(n / 2);
      idx = static_cast<std::size_t>(rng.uniform_int(lo, static_cast<std::int64_t>(n) - 1));
    } else {
      idx = sample_source(n);
    }
    connect_from_source(idx, d.cell(rc).input_pins[0]);
  }

  // Primary outputs.
  for (int po : po_pins) {
    const std::size_t n = sources.size();
    const auto lo = static_cast<std::int64_t>((3 * n) / 4);
    const auto idx =
        static_cast<std::size_t>(rng.uniform_int(lo, static_cast<std::int64_t>(n) - 1));
    connect_from_source(idx, po);
  }

  // Tie any still-dangling combinational outputs to freshly added POs so
  // every net has at least one sink (dangling logic would be swept in a real
  // flow; here we keep it live to preserve the target cell count).
  for (std::size_t i = 0; i < sources.size(); ++i) {
    Source& s = sources[i];
    if (s.fanout > 0) continue;
    const Pin& p = d.pin(s.pin);
    if (p.kind == PinKind::kPrimaryInput) continue;  // unused PI is harmless
    const std::int64_t y =
        d.die().lo.y + rng.uniform_int(0, d.die().height());
    const int po = d.add_primary_output({d.die().hi.x, y});
    connect_from_source(i, po);
  }

  // Provisional clock: refined by the flow after the first sign-off run.
  d.set_clock_period(1.0);
  d.validate();
  return d;
}

std::vector<BenchmarkSpec> benchmark_suite() {
  // Cell and endpoint counts from Table I; the upper six train, lower four
  // test (paper's split).
  return {
      {"chacha", 15700, 1972, true, 101},
      {"cic_decimator", 781, 130, true, 102},
      {"APU", 2897, 427, true, 103},
      {"des", 14652, 2048, true, 104},
      {"jpeg_encoder", 55264, 4420, true, 105},
      {"spm", 238, 129, true, 106},
      {"aes_cipher", 11532, 659, false, 107},
      {"picorv32a", 13622, 1879, false, 108},
      {"usb_cdc_core", 1642, 626, false, 109},
      {"des3", 47410, 8872, false, 110},
  };
}

GeneratorParams params_for(const BenchmarkSpec& spec, double scale) {
  if (scale <= 0.0 || scale > 1.0) throw std::runtime_error("scale must be in (0, 1]");
  GeneratorParams p;
  p.name = spec.name;
  const auto scaled = [&](int v, int lo) {
    return std::max(lo, static_cast<int>(std::lround(v * scale)));
  };
  const int endpoints = scaled(spec.endpoints, 12);
  p.num_comb_cells = scaled(spec.target_cells, 64);
  p.num_registers = std::max(8, (endpoints * 9) / 10);
  p.num_comb_cells = std::max(32, p.num_comb_cells - p.num_registers);
  p.num_primary_outputs = std::max(4, endpoints - p.num_registers);
  p.num_primary_inputs = std::max(4, p.num_primary_outputs);
  p.num_control_sources =
      std::clamp(p.num_comb_cells / 1200, 1, 6);
  p.seed = spec.seed;
  return p;
}

}  // namespace tsteiner
