// A compact liberty-like standard-cell library with NLDM-style lookup
// tables.
//
// The paper signs off with Cadence Innovus on the SkyWater 130nm PDK; this
// reproduction substitutes a programmatically generated library whose delay
// and slew tables have the same shape (2-D lookup over input slew x output
// load, bilinearly interpolated, clamped extrapolation). Units: ns, pF, kOhm,
// distances in DBU (1 DBU ~ one placement site).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tsteiner {

/// 2-D NLDM table indexed by (input slew, output load). Bilinear
/// interpolation inside the grid; clamped at the boundary like commercial
/// timers do when extrapolation is disabled.
class Lut2 {
 public:
  Lut2() = default;
  Lut2(std::vector<double> slew_axis, std::vector<double> load_axis,
       std::vector<double> values);  // values row-major: [slew][load]

  double lookup(double slew, double load) const;

  const std::vector<double>& slew_axis() const { return slew_axis_; }
  const std::vector<double>& load_axis() const { return load_axis_; }
  const std::vector<double>& values() const { return values_; }

 private:
  std::vector<double> slew_axis_;
  std::vector<double> load_axis_;
  std::vector<double> values_;
};

/// One timing arc: from an input pin of the cell to its output pin.
struct TimingArc {
  int from_input = 0;  ///< index among the cell's input pins
  Lut2 delay;          ///< arc delay (ns)
  Lut2 out_slew;       ///< output transition (ns)
};

/// A cell type (one output pin; registers expose D->setup and CK->Q arcs).
struct CellType {
  std::string name;
  int num_inputs = 0;
  bool is_register = false;
  double input_cap_pf = 0.002;   ///< per input pin
  double drive_res_kohm = 1.0;   ///< characteristic output resistance
  double area = 1.0;             ///< in placement sites
  std::vector<TimingArc> arcs;   ///< combinational: one per input;
                                 ///< register: arcs[0] = CK->Q
  double setup_ns = 0.0;         ///< registers only
};

class CellLibrary {
 public:
  /// Build the default synthetic 130nm-flavoured library (inverters and
  /// buffers in 3 drive strengths, NAND/NOR/AND/OR/XOR/AOI/OAI/MUX, DFF).
  static CellLibrary make_default();

  /// Reassemble a library from explicit parts (the snapshot-restore path).
  /// Type ids equal positions in `types`; combinational/register groupings
  /// are re-derived, so a restored library answers every query identically
  /// to the one that was saved.
  static CellLibrary from_parts(std::vector<CellType> types, double wire_res_kohm_per_dbu,
                                double wire_cap_pf_per_dbu, double via_res_kohm);

  int find(const std::string& name) const;  ///< -1 if absent
  const CellType& type(int id) const { return types_[static_cast<std::size_t>(id)]; }
  int num_types() const { return static_cast<int>(types_.size()); }

  /// Ids of combinational types, grouped for the design generator.
  const std::vector<int>& combinational_types() const { return comb_types_; }
  int register_type() const { return register_type_; }

  /// Wire parasitics of the synthetic technology.
  double wire_res_kohm_per_dbu() const { return wire_res_; }
  double wire_cap_pf_per_dbu() const { return wire_cap_; }
  double via_res_kohm() const { return via_res_; }

 private:
  int add(CellType t);

  std::vector<CellType> types_;
  std::vector<int> comb_types_;
  int register_type_ = -1;
  // Wire resistance is deliberately on the resistive side (thin-metal,
  // older-node regime): path resistance must matter relative to driver
  // resistance for Steiner topology to carry timing leverage — the regime
  // the timing-driven Steiner-tree literature (paper refs [3], [4]) targets.
  double wire_res_ = 6.0e-2;  ///< kOhm per DBU
  double wire_cap_ = 2.0e-4;  ///< pF per DBU
  double via_res_ = 5.0e-3;   ///< kOhm per via
};

}  // namespace tsteiner
