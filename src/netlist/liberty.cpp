#include "netlist/liberty.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace tsteiner {

Lut2::Lut2(std::vector<double> slew_axis, std::vector<double> load_axis,
           std::vector<double> values)
    : slew_axis_(std::move(slew_axis)),
      load_axis_(std::move(load_axis)),
      values_(std::move(values)) {
  assert(!slew_axis_.empty() && !load_axis_.empty());
  assert(values_.size() == slew_axis_.size() * load_axis_.size());
  assert(std::is_sorted(slew_axis_.begin(), slew_axis_.end()));
  assert(std::is_sorted(load_axis_.begin(), load_axis_.end()));
}

namespace {

/// Locate x on a sorted axis; returns (lower index, interpolation fraction),
/// clamped to the table boundary.
std::pair<std::size_t, double> locate(const std::vector<double>& axis, double x) {
  if (axis.size() == 1 || x <= axis.front()) return {0, 0.0};
  if (x >= axis.back()) return {axis.size() - 2, 1.0};
  const auto it = std::upper_bound(axis.begin(), axis.end(), x);
  const std::size_t hi = static_cast<std::size_t>(it - axis.begin());
  const std::size_t lo = hi - 1;
  const double frac = (x - axis[lo]) / (axis[hi] - axis[lo]);
  return {lo, frac};
}

}  // namespace

double Lut2::lookup(double slew, double load) const {
  const auto [si, sf] = locate(slew_axis_, slew);
  const auto [li, lf] = locate(load_axis_, load);
  const std::size_t cols = load_axis_.size();
  const std::size_t si1 = std::min(si + 1, slew_axis_.size() - 1);
  const std::size_t li1 = std::min(li + 1, cols - 1);
  const double v00 = values_[si * cols + li];
  const double v01 = values_[si * cols + li1];
  const double v10 = values_[si1 * cols + li];
  const double v11 = values_[si1 * cols + li1];
  const double v0 = v00 * (1.0 - lf) + v01 * lf;
  const double v1 = v10 * (1.0 - lf) + v11 * lf;
  return v0 * (1.0 - sf) + v1 * sf;
}

namespace {

// Characterization model used to fill the NLDM grids. Mirrors the usual
// first-order gate model: delay = intrinsic + R_drive * C_load + k_s * slew.
Lut2 make_delay_table(double intrinsic_ns, double r_kohm, double slew_coeff) {
  const std::vector<double> slews = {0.005, 0.02, 0.06, 0.15, 0.40};
  const std::vector<double> loads = {0.001, 0.004, 0.012, 0.035, 0.10, 0.25};
  std::vector<double> v;
  v.reserve(slews.size() * loads.size());
  for (double s : slews) {
    for (double c : loads) {
      v.push_back(intrinsic_ns + r_kohm * c + slew_coeff * s);
    }
  }
  return Lut2(slews, loads, std::move(v));
}

// Output slew = base + R * C * k, mildly dependent on input slew.
Lut2 make_slew_table(double base_ns, double r_kohm) {
  const std::vector<double> slews = {0.005, 0.02, 0.06, 0.15, 0.40};
  const std::vector<double> loads = {0.001, 0.004, 0.012, 0.035, 0.10, 0.25};
  std::vector<double> v;
  v.reserve(slews.size() * loads.size());
  for (double s : slews) {
    for (double c : loads) {
      v.push_back(base_ns + 1.6 * r_kohm * c + 0.1 * s);
    }
  }
  return Lut2(slews, loads, std::move(v));
}

CellType make_comb(const std::string& name, int inputs, double intrinsic, double r_kohm,
                   double in_cap, double area) {
  CellType t;
  t.name = name;
  t.num_inputs = inputs;
  t.input_cap_pf = in_cap;
  t.drive_res_kohm = r_kohm;
  t.area = area;
  for (int i = 0; i < inputs; ++i) {
    TimingArc arc;
    arc.from_input = i;
    // Later inputs of multi-input gates are slightly faster (closer to the
    // output stack), like real libraries.
    const double adj = 1.0 - 0.06 * static_cast<double>(i);
    arc.delay = make_delay_table(intrinsic * adj, r_kohm, 0.35);
    arc.out_slew = make_slew_table(0.006, r_kohm);
    t.arcs.push_back(std::move(arc));
  }
  return t;
}

}  // namespace

int CellLibrary::add(CellType t) {
  types_.push_back(std::move(t));
  return static_cast<int>(types_.size()) - 1;
}

CellLibrary CellLibrary::make_default() {
  CellLibrary lib;
  // name, #in, intrinsic (ns), drive R (kOhm), input cap (pF), area
  auto add_comb = [&lib](const std::string& n, int in, double d, double r, double c,
                         double a) {
    const int id = lib.add(make_comb(n, in, d, r, c, a));
    lib.comb_types_.push_back(id);
  };
  add_comb("INV_X1", 1, 0.020, 2.2, 0.0018, 1.0);
  add_comb("INV_X2", 1, 0.018, 1.2, 0.0034, 1.5);
  add_comb("INV_X4", 1, 0.016, 0.7, 0.0062, 2.5);
  add_comb("BUF_X1", 1, 0.042, 1.8, 0.0016, 2.0);
  add_comb("BUF_X2", 1, 0.038, 1.0, 0.0030, 3.0);
  add_comb("NAND2_X1", 2, 0.028, 2.4, 0.0021, 2.0);
  add_comb("NOR2_X1", 2, 0.034, 2.8, 0.0021, 2.0);
  add_comb("AND2_X1", 2, 0.052, 2.0, 0.0019, 2.5);
  add_comb("OR2_X1", 2, 0.056, 2.0, 0.0019, 2.5);
  add_comb("XOR2_X1", 2, 0.068, 2.6, 0.0042, 3.5);
  add_comb("AOI21_X1", 3, 0.044, 2.9, 0.0023, 3.0);
  add_comb("OAI21_X1", 3, 0.046, 2.9, 0.0023, 3.0);
  add_comb("MUX2_X1", 3, 0.060, 2.3, 0.0030, 4.0);

  CellType dff;
  dff.name = "DFF_X1";
  dff.num_inputs = 1;  // D only; the clock is ideal in this reproduction
  dff.is_register = true;
  dff.input_cap_pf = 0.0026;
  dff.drive_res_kohm = 1.4;
  dff.area = 6.0;
  dff.setup_ns = 0.055;
  TimingArc ck2q;  // stored as arcs[0]: clock-to-Q
  ck2q.from_input = 0;
  ck2q.delay = make_delay_table(0.110, 1.4, 0.0);
  ck2q.out_slew = make_slew_table(0.010, 1.4);
  dff.arcs.push_back(std::move(ck2q));
  lib.register_type_ = lib.add(std::move(dff));

  return lib;
}

CellLibrary CellLibrary::from_parts(std::vector<CellType> types, double wire_res_kohm_per_dbu,
                                    double wire_cap_pf_per_dbu, double via_res_kohm) {
  CellLibrary lib;
  lib.wire_res_ = wire_res_kohm_per_dbu;
  lib.wire_cap_ = wire_cap_pf_per_dbu;
  lib.via_res_ = via_res_kohm;
  for (CellType& t : types) {
    const bool is_register = t.is_register;
    const int id = lib.add(std::move(t));
    if (is_register) {
      lib.register_type_ = id;
    } else {
      lib.comb_types_.push_back(id);
    }
  }
  return lib;
}

int CellLibrary::find(const std::string& name) const {
  for (std::size_t i = 0; i < types_.size(); ++i) {
    if (types_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace tsteiner
