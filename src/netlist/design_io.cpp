#include "netlist/design_io.hpp"

#include <fstream>
#include <sstream>

namespace tsteiner {

void write_design(const Design& design, std::ostream& out) {
  out << "tsteiner-design-v1\n";
  out << "name " << design.name() << '\n';
  out << "die " << design.die().lo.x << ' ' << design.die().lo.y << ' ' << design.die().hi.x
      << ' ' << design.die().hi.y << '\n';
  out.precision(17);
  out << "clock " << design.clock_period() << '\n';

  // Objects in pin-creation order: cells appear at their first pin, ports at
  // their own pin.
  out << "objects\n";
  int last_cell = -1;
  for (const Pin& p : design.pins()) {
    if (p.cell >= 0) {
      if (p.cell == last_cell) continue;
      last_cell = p.cell;
      const Cell& c = design.cell(p.cell);
      out << "cell " << design.library().type(c.type).name << ' ' << c.pos.x << ' '
          << c.pos.y << '\n';
    } else if (p.kind == PinKind::kPrimaryInput) {
      out << "pi " << p.port_pos.x << ' ' << p.port_pos.y << '\n';
    } else {
      out << "po " << p.port_pos.x << ' ' << p.port_pos.y << '\n';
    }
  }
  out << "end_objects\n";

  out << "nets " << design.nets().size() << '\n';
  for (const Net& n : design.nets()) {
    out << n.driver_pin << ' ' << n.sink_pins.size();
    for (int s : n.sink_pins) out << ' ' << s;
    out << '\n';
  }
}

bool write_design_file(const Design& design, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  write_design(design, out);
  return static_cast<bool>(out);
}

std::optional<Design> read_design(std::istream& in, const CellLibrary& library) {
  std::string line;
  if (!std::getline(in, line) || line != "tsteiner-design-v1") return std::nullopt;
  std::string key, name;
  if (!(in >> key >> name) || key != "name") return std::nullopt;

  Design d(name, &library);
  RectI die;
  if (!(in >> key >> die.lo.x >> die.lo.y >> die.hi.x >> die.hi.y) || key != "die") {
    return std::nullopt;
  }
  d.set_die(die);
  double clock = 1.0;
  if (!(in >> key >> clock) || key != "clock") return std::nullopt;
  d.set_clock_period(clock);

  if (!(in >> key) || key != "objects") return std::nullopt;
  while (in >> key && key != "end_objects") {
    if (key == "cell") {
      std::string type_name;
      PointI pos;
      if (!(in >> type_name >> pos.x >> pos.y)) return std::nullopt;
      const int type_id = library.find(type_name);
      if (type_id < 0) return std::nullopt;
      const int cid = d.add_cell(type_id);
      d.cell(cid).pos = pos;
    } else if (key == "pi" || key == "po") {
      PointI pos;
      if (!(in >> pos.x >> pos.y)) return std::nullopt;
      if (key == "pi") {
        d.add_primary_input(pos);
      } else {
        d.add_primary_output(pos);
      }
    } else {
      return std::nullopt;
    }
  }
  if (key != "end_objects") return std::nullopt;

  std::size_t num_nets = 0;
  if (!(in >> key >> num_nets) || key != "nets") return std::nullopt;
  for (std::size_t i = 0; i < num_nets; ++i) {
    int driver = -1;
    std::size_t sinks = 0;
    if (!(in >> driver >> sinks)) return std::nullopt;
    if (driver < 0 || driver >= static_cast<int>(d.pins().size())) return std::nullopt;
    int net = -1;
    try {
      net = d.add_net(driver);
      for (std::size_t s = 0; s < sinks; ++s) {
        int sink = -1;
        if (!(in >> sink)) return std::nullopt;
        d.connect_sink(net, sink);
      }
    } catch (const std::exception&) {
      return std::nullopt;
    }
  }
  try {
    d.validate();
  } catch (const std::exception&) {
    return std::nullopt;
  }
  return d;
}

std::optional<Design> read_design_file(const std::string& path, const CellLibrary& library) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  return read_design(in, library);
}

}  // namespace tsteiner
