// Netlist data model: cells, pins, nets, ports, and the timing-graph
// topology queries used by STA, feature extraction and the benches.
//
// Conventions:
//  * Every net has exactly one driver pin (a cell output, or a primary
//    input port) and zero or more sink pins.
//  * The clock is ideal: register CK pins are not modeled; a register's D
//    pin is a timing endpoint and its Q pin a timing startpoint.
//  * Pin positions equal their owner cell's placed position (ports carry
//    their own position on the die boundary). Cell geometry is a single
//    site; this matches the granularity at which Steiner trees see pins.
#pragma once

#include <cassert>
#include <string>
#include <vector>

#include "netlist/liberty.hpp"
#include "util/geometry.hpp"

namespace tsteiner {

enum class PinDir { kInput, kOutput };

/// What the pin is attached to.
enum class PinKind {
  kCellInput,     ///< input pin of a cell (D pin for registers)
  kCellOutput,    ///< output pin of a cell (Q pin for registers)
  kPrimaryInput,  ///< design port driving a net
  kPrimaryOutput  ///< design port sinking a net
};

struct Pin {
  int id = -1;
  PinKind kind = PinKind::kCellInput;
  int cell = -1;            ///< owner cell, or -1 for ports
  int net = -1;             ///< connected net, or -1 while unconnected
  int input_slot = -1;      ///< which input of the cell (kCellInput only)
  PointI port_pos;          ///< position for ports (cells carry their own)

  bool is_output() const {
    return kind == PinKind::kCellOutput || kind == PinKind::kPrimaryInput;
  }
};

struct Cell {
  int id = -1;
  int type = -1;  ///< CellLibrary type id
  PointI pos;
  std::vector<int> input_pins;
  int output_pin = -1;
  std::string name;
};

struct Net {
  int id = -1;
  int driver_pin = -1;
  std::vector<int> sink_pins;
  std::string name;

  int degree() const { return 1 + static_cast<int>(sink_pins.size()); }
};

/// Aggregate counts reported in Table I.
struct DesignStats {
  long long num_cells = 0;
  long long num_net_edges = 0;   ///< driver->sink pairs over all nets
  long long num_cell_edges = 0;  ///< input-pin -> output-pin arcs over all cells
  long long num_endpoints = 0;   ///< register D pins + primary outputs
};

/// Defined by the snapshot codec (src/db/codecs.cpp): restores a Design's
/// object vectors verbatim, bypassing the incremental construction API so
/// pin/net/cell ids round-trip bit-exactly. Restorers must call validate().
struct DesignSnapshotAccess;

class Design {
 public:
  Design(std::string name, const CellLibrary* library)
      : name_(std::move(name)), library_(library) {
    assert(library != nullptr);
  }

  // -- construction -------------------------------------------------------
  int add_cell(int type_id, const std::string& name = {});
  int add_primary_input(PointI pos, const std::string& name = {});
  int add_primary_output(PointI pos, const std::string& name = {});
  /// Create a net driven by `driver_pin`; returns net id.
  int add_net(int driver_pin, const std::string& name = {});
  void connect_sink(int net_id, int sink_pin);
  /// Detach a sink from its net (used by netlist transformations such as
  /// buffer insertion). The pin becomes unconnected.
  void disconnect_sink(int net_id, int sink_pin);

  void set_die(RectI die) { die_ = die; }
  void set_clock_period(double ns) { clock_period_ns_ = ns; }

  // -- access --------------------------------------------------------------
  const std::string& name() const { return name_; }
  const CellLibrary& library() const { return *library_; }
  const RectI& die() const { return die_; }
  double clock_period() const { return clock_period_ns_; }

  const std::vector<Cell>& cells() const { return cells_; }
  const std::vector<Pin>& pins() const { return pins_; }
  const std::vector<Net>& nets() const { return nets_; }
  Cell& cell(int id) { return cells_[static_cast<std::size_t>(id)]; }
  const Cell& cell(int id) const { return cells_[static_cast<std::size_t>(id)]; }
  const Pin& pin(int id) const { return pins_[static_cast<std::size_t>(id)]; }
  const Net& net(int id) const { return nets_[static_cast<std::size_t>(id)]; }

  const CellType& cell_type(int cell_id) const {
    return library_->type(cell(cell_id).type);
  }
  bool is_register_cell(int cell_id) const { return cell_type(cell_id).is_register; }

  PointI pin_position(int pin_id) const {
    const Pin& p = pin(pin_id);
    return p.cell >= 0 ? cell(p.cell).pos : p.port_pos;
  }
  double pin_cap(int pin_id) const;

  /// Timing endpoints: register D pins and primary-output ports.
  std::vector<int> endpoint_pins() const;
  /// Timing startpoints: register Q pins and primary-input ports.
  std::vector<int> startpoint_pins() const;

  /// Combinational cells in topological order (registers excluded; their Q
  /// pins act as sources, D pins as sinks). Throws std::runtime_error on a
  /// combinational cycle.
  std::vector<int> combinational_topo_order() const;

  /// Pin-level topological levels for the full timing graph: level 0 for
  /// startpoints, sink level = driver level, comb output level =
  /// max(input levels) + 1.
  std::vector<int> pin_levels() const;

  DesignStats stats() const;

  /// Structural sanity: every net driven, pin/net cross references agree,
  /// no combinational cycle. Throws std::runtime_error with a description.
  void validate() const;

 private:
  friend struct DesignSnapshotAccess;

  int add_pin(Pin p);

  std::string name_;
  const CellLibrary* library_;
  std::vector<Cell> cells_;
  std::vector<Pin> pins_;
  std::vector<Net> nets_;
  RectI die_{{0, 0}, {1, 1}};
  double clock_period_ns_ = 1.0;
};

}  // namespace tsteiner
