// Plain-text design serialization (a DEF/Verilog stand-in).
//
// Round-trips everything the flow consumes: cell types and placements, port
// positions, net connectivity, die and clock. The on-disk format preserves
// object creation order so pin ids — which every other artifact (forests,
// STA labels) references — are identical after a load.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "netlist/netlist.hpp"

namespace tsteiner {

void write_design(const Design& design, std::ostream& out);
bool write_design_file(const Design& design, const std::string& path);

/// Returns nullopt on malformed input; the library must contain every cell
/// type named in the file.
std::optional<Design> read_design(std::istream& in, const CellLibrary& library);
std::optional<Design> read_design_file(const std::string& path, const CellLibrary& library);

}  // namespace tsteiner
