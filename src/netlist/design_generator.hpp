// Synthetic design generation.
//
// The paper evaluates on ten OpenCores designs synthesized with the SkyWater
// 130nm PDK and placed by Cadence Innovus. Those artifacts are proprietary /
// unavailable offline, so this reproduction substitutes randomly generated
// sequential netlists whose scale profile (cell count, edge counts, endpoint
// count; Table I) matches the paper's benchmarks. The generator produces
// DAG-structured combinational logic between register boundaries with a
// locality-window sampling scheme that yields realistic logic depth, fanout
// distribution and reconvergence.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "util/rng.hpp"

namespace tsteiner {

struct GeneratorParams {
  std::string name = "synthetic";
  int num_comb_cells = 1000;
  int num_registers = 120;
  int num_primary_inputs = 24;
  int num_primary_outputs = 24;
  /// Fraction of already-created sources that forms the "recent" sampling
  /// window; smaller -> deeper logic.
  double locality_window_frac = 0.05;
  /// Probability of sampling an input uniformly over all sources instead of
  /// the recent window (creates reconvergent fanout and high-fanout nets).
  double global_pick_prob = 0.30;
  /// Number of high-fanout "control" sources (reset / enable style nets).
  /// Real designs always carry a few nets with fanout in the tens-to-
  /// hundreds; their WL-minimal Steiner trees snake, which is where
  /// timing-driven refinement has the most leverage (paper refs [3], [4]).
  int num_control_sources = 2;
  /// Probability that a combinational input taps a control source.
  double control_pick_prob = 0.04;
  double placement_utilization = 0.55;
  std::uint64_t seed = 1;
};

/// Build a validated, unplaced design (cells carry no meaningful positions
/// yet; run a placer from src/place before physical steps).
Design generate_design(const CellLibrary& lib, const GeneratorParams& params);

/// One entry of the reproduction's benchmark suite.
struct BenchmarkSpec {
  std::string name;
  int target_cells = 0;   ///< cell count from Table I
  int endpoints = 0;      ///< endpoint count from Table I (drives #regs/#POs)
  bool is_training = false;
  std::uint64_t seed = 0;
};

/// The ten Table-I benchmarks. `scale` in (0, 1] shrinks every design
/// proportionally so the full evaluation pipeline fits a workstation budget
/// (scale = 1 reproduces the paper's sizes).
std::vector<BenchmarkSpec> benchmark_suite();

GeneratorParams params_for(const BenchmarkSpec& spec, double scale);

}  // namespace tsteiner
