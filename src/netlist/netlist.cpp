#include "netlist/netlist.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace tsteiner {

int Design::add_pin(Pin p) {
  p.id = static_cast<int>(pins_.size());
  pins_.push_back(std::move(p));
  return pins_.back().id;
}

int Design::add_cell(int type_id, const std::string& name) {
  const CellType& t = library_->type(type_id);
  Cell c;
  c.id = static_cast<int>(cells_.size());
  c.type = type_id;
  c.name = name.empty() ? t.name + "_" + std::to_string(c.id) : name;
  for (int i = 0; i < t.num_inputs; ++i) {
    Pin p;
    p.kind = PinKind::kCellInput;
    p.cell = c.id;
    p.input_slot = i;
    c.input_pins.push_back(add_pin(p));
  }
  Pin out;
  out.kind = PinKind::kCellOutput;
  out.cell = c.id;
  c.output_pin = add_pin(out);
  cells_.push_back(std::move(c));
  return cells_.back().id;
}

int Design::add_primary_input(PointI pos, const std::string& name) {
  Pin p;
  p.kind = PinKind::kPrimaryInput;
  p.port_pos = pos;
  (void)name;
  return add_pin(p);
}

int Design::add_primary_output(PointI pos, const std::string& name) {
  Pin p;
  p.kind = PinKind::kPrimaryOutput;
  p.port_pos = pos;
  (void)name;
  return add_pin(p);
}

int Design::add_net(int driver_pin, const std::string& name) {
  Pin& d = pins_[static_cast<std::size_t>(driver_pin)];
  if (!d.is_output()) throw std::runtime_error("net driver must be an output pin or PI");
  if (d.net != -1) throw std::runtime_error("driver pin already drives a net");
  Net n;
  n.id = static_cast<int>(nets_.size());
  n.driver_pin = driver_pin;
  n.name = name.empty() ? "net_" + std::to_string(n.id) : name;
  d.net = n.id;
  nets_.push_back(std::move(n));
  return nets_.back().id;
}

void Design::connect_sink(int net_id, int sink_pin) {
  Pin& s = pins_[static_cast<std::size_t>(sink_pin)];
  if (s.is_output()) throw std::runtime_error("net sink must be an input pin or PO");
  if (s.net != -1) throw std::runtime_error("sink pin already connected");
  s.net = net_id;
  nets_[static_cast<std::size_t>(net_id)].sink_pins.push_back(sink_pin);
}

void Design::disconnect_sink(int net_id, int sink_pin) {
  Pin& s = pins_[static_cast<std::size_t>(sink_pin)];
  if (s.net != net_id) throw std::runtime_error("pin is not a sink of this net");
  Net& n = nets_[static_cast<std::size_t>(net_id)];
  const auto it = std::find(n.sink_pins.begin(), n.sink_pins.end(), sink_pin);
  if (it == n.sink_pins.end()) throw std::runtime_error("sink missing from net");
  n.sink_pins.erase(it);
  s.net = -1;
}

double Design::pin_cap(int pin_id) const {
  const Pin& p = pin(pin_id);
  switch (p.kind) {
    case PinKind::kCellInput:
      return cell_type(p.cell).input_cap_pf;
    case PinKind::kPrimaryOutput:
      return 0.004;  // output pad load
    default:
      return 0.0;  // outputs / PIs contribute no sink load
  }
}

std::vector<int> Design::endpoint_pins() const {
  std::vector<int> eps;
  for (const Pin& p : pins_) {
    if (p.kind == PinKind::kPrimaryOutput) {
      eps.push_back(p.id);
    } else if (p.kind == PinKind::kCellInput && is_register_cell(p.cell)) {
      eps.push_back(p.id);
    }
  }
  return eps;
}

std::vector<int> Design::startpoint_pins() const {
  std::vector<int> sps;
  for (const Pin& p : pins_) {
    if (p.kind == PinKind::kPrimaryInput) {
      sps.push_back(p.id);
    } else if (p.kind == PinKind::kCellOutput && is_register_cell(p.cell)) {
      sps.push_back(p.id);
    }
  }
  return sps;
}

std::vector<int> Design::combinational_topo_order() const {
  // Kahn's algorithm over combinational cells; an edge exists from cell A to
  // cell B when A's output net has one of B's input pins as a sink.
  std::vector<int> indeg(cells_.size(), 0);
  for (const Cell& c : cells_) {
    if (is_register_cell(c.id)) continue;
    for (int in_pin : c.input_pins) {
      const int net_id = pin(in_pin).net;
      if (net_id < 0) continue;
      const Pin& drv = pin(net(net_id).driver_pin);
      if (drv.cell >= 0 && !is_register_cell(drv.cell)) ++indeg[static_cast<std::size_t>(c.id)];
    }
  }
  std::queue<int> q;
  for (const Cell& c : cells_) {
    if (!is_register_cell(c.id) && indeg[static_cast<std::size_t>(c.id)] == 0) q.push(c.id);
  }
  std::vector<int> order;
  order.reserve(cells_.size());
  while (!q.empty()) {
    const int cid = q.front();
    q.pop();
    order.push_back(cid);
    const int out_net = pin(cell(cid).output_pin).net;
    if (out_net < 0) continue;
    for (int sink : net(out_net).sink_pins) {
      const Pin& sp = pin(sink);
      if (sp.cell < 0 || is_register_cell(sp.cell)) continue;
      if (--indeg[static_cast<std::size_t>(sp.cell)] == 0) q.push(sp.cell);
    }
  }
  std::size_t comb_count = 0;
  for (const Cell& c : cells_) {
    if (!is_register_cell(c.id)) ++comb_count;
  }
  if (order.size() != comb_count) throw std::runtime_error("combinational cycle detected");
  return order;
}

std::vector<int> Design::pin_levels() const {
  std::vector<int> level(pins_.size(), 0);
  const std::vector<int> order = combinational_topo_order();
  auto net_drive_level = [&](int net_id) {
    return level[static_cast<std::size_t>(net(net_id).driver_pin)];
  };
  // Startpoints stay at level 0; propagate along topological cell order.
  for (int cid : order) {
    const Cell& c = cells_[static_cast<std::size_t>(cid)];
    int out_level = 0;
    for (int in_pin : c.input_pins) {
      const int net_id = pin(in_pin).net;
      if (net_id < 0) continue;
      level[static_cast<std::size_t>(in_pin)] = net_drive_level(net_id);
      out_level = std::max(out_level, level[static_cast<std::size_t>(in_pin)] + 1);
    }
    level[static_cast<std::size_t>(c.output_pin)] = out_level;
  }
  // Endpoint sinks (register D, POs) inherit their driver's level.
  for (const Pin& p : pins_) {
    if (p.net < 0 || p.is_output()) continue;
    const bool is_endpoint = p.kind == PinKind::kPrimaryOutput ||
                             (p.cell >= 0 && is_register_cell(p.cell));
    if (is_endpoint) level[static_cast<std::size_t>(p.id)] = net_drive_level(p.net);
  }
  return level;
}

DesignStats Design::stats() const {
  DesignStats s;
  s.num_cells = static_cast<long long>(cells_.size());
  for (const Net& n : nets_) s.num_net_edges += static_cast<long long>(n.sink_pins.size());
  for (const Cell& c : cells_) {
    if (!is_register_cell(c.id)) s.num_cell_edges += static_cast<long long>(c.input_pins.size());
    else s.num_cell_edges += 1;  // CK->Q arc counted once
  }
  s.num_endpoints = static_cast<long long>(endpoint_pins().size());
  return s;
}

void Design::validate() const {
  for (const Net& n : nets_) {
    if (n.driver_pin < 0) throw std::runtime_error("net without driver: " + n.name);
    if (pin(n.driver_pin).net != n.id) throw std::runtime_error("driver/net mismatch: " + n.name);
    for (int s : n.sink_pins) {
      if (pin(s).net != n.id) throw std::runtime_error("sink/net mismatch: " + n.name);
      if (pin(s).is_output()) throw std::runtime_error("output pin used as sink: " + n.name);
    }
  }
  for (const Cell& c : cells_) {
    for (int in_pin : c.input_pins) {
      if (pin(in_pin).net < 0) throw std::runtime_error("unconnected input on " + c.name);
    }
    if (!die_.contains(c.pos)) throw std::runtime_error("cell outside die: " + c.name);
  }
  (void)combinational_topo_order();  // throws on cycles
}

}  // namespace tsteiner
