// Prim-Dijkstra tradeoff trees (Alpert et al. — the paper's refs [3], [4]).
//
// The classical timing-driven alternative to WL-minimal Steiner trees: grow
// a spanning tree from the driver where attaching sink v to tree node u
// costs  alpha * pathlength(driver -> u) + dist(u, v).
//   alpha = 0   -> Prim / MST (minimum wirelength, arbitrary path lengths)
//   alpha = 1   -> Dijkstra / shortest-path tree (minimum source-sink paths,
//                  maximum wirelength)
// Intermediate alpha trades a little wirelength for much shorter critical
// paths ("timing-driven Steiner trees are practically free").
//
// Each bent tree edge is then steinerized with an explicit L-corner Steiner
// node, giving TSteiner a movable point per bend — PD trees therefore expose
// strictly more refinement freedom than junction-only RSMTs.
#pragma once

#include "netlist/netlist.hpp"
#include "steiner/steiner_tree.hpp"

namespace tsteiner {

struct PdOptions {
  /// Pathlength-vs-wirelength tradeoff in [0, 1].
  double alpha = 0.3;
  /// Insert an L-corner Steiner node on every bent edge.
  bool steinerize_corners = true;
};

SteinerTree build_pd_tree(const Design& design, int net_id, const PdOptions& options = {});

SteinerForest build_pd_forest(const Design& design, const PdOptions& options = {});

/// Insert an L-corner Steiner node (degree 2, movable) on every edge of
/// `tree` whose endpoints differ in both coordinates. Corners are placed on
/// the driver-side horizontal-first bend. Returns the number added.
int steinerize_corners(SteinerTree& tree);

}  // namespace tsteiner
