#include "steiner/rsmt.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "util/parallel.hpp"

namespace tsteiner {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Prim MST over points; returns (length, edges). O(k^2), fine for net-sized
/// point sets.
std::pair<double, std::vector<SteinerEdge>> prim(const std::vector<PointF>& pts) {
  const std::size_t k = pts.size();
  std::vector<SteinerEdge> edges;
  if (k <= 1) return {0.0, edges};
  std::vector<double> best(k, kInf);
  std::vector<int> from(k, -1);
  std::vector<char> used(k, 0);
  best[0] = 0.0;
  double total = 0.0;
  for (std::size_t it = 0; it < k; ++it) {
    std::size_t u = k;
    double bu = kInf;
    for (std::size_t i = 0; i < k; ++i) {
      if (!used[i] && best[i] < bu) {
        bu = best[i];
        u = i;
      }
    }
    used[u] = 1;
    total += bu;
    if (from[u] >= 0) edges.push_back({from[u], static_cast<int>(u)});
    for (std::size_t v = 0; v < k; ++v) {
      if (used[v]) continue;
      const double w = manhattan(pts[u], pts[v]);
      if (w < best[v]) {
        best[v] = w;
        from[v] = static_cast<int>(u);
      }
    }
  }
  return {total, edges};
}

/// MST length if `cand` were appended to pts. O(k^2).
double prim_length_with(const std::vector<PointF>& pts, const PointF& cand) {
  std::vector<PointF> aug = pts;
  aug.push_back(cand);
  return prim(aug).first;
}

}  // namespace

double mst_length(const std::vector<PointF>& points) { return prim(points).first; }

std::vector<SteinerEdge> mst_edges(const std::vector<PointF>& points) {
  return prim(points).second;
}

void prune_low_degree_steiner(SteinerTree& tree) {
  // Prune Steiner nodes that ended with degree <= 2: degree-2 nodes are
  // spliced (neighbors connected directly), lower degrees removed. Iterate
  // to a fixed point, then compact node indices.
  bool changed = true;
  std::vector<char> removed(tree.nodes.size(), 0);
  while (changed) {
    changed = false;
    std::vector<int> degree(tree.nodes.size(), 0);
    for (const SteinerEdge& e : tree.edges) {
      ++degree[static_cast<std::size_t>(e.a)];
      ++degree[static_cast<std::size_t>(e.b)];
    }
    for (std::size_t i = 0; i < tree.nodes.size(); ++i) {
      if (removed[i] || !tree.nodes[i].is_steiner()) continue;
      if (degree[i] >= 3) continue;
      changed = true;
      removed[i] = 1;
      std::vector<int> nbrs;
      std::vector<SteinerEdge> kept;
      kept.reserve(tree.edges.size());
      for (const SteinerEdge& e : tree.edges) {
        if (e.a == static_cast<int>(i)) {
          nbrs.push_back(e.b);
        } else if (e.b == static_cast<int>(i)) {
          nbrs.push_back(e.a);
        } else {
          kept.push_back(e);
        }
      }
      if (nbrs.size() == 2) kept.push_back({nbrs[0], nbrs[1]});
      tree.edges = std::move(kept);
    }
  }
  // Compact.
  std::vector<int> remap(tree.nodes.size(), -1);
  std::vector<SteinerNode> compact;
  compact.reserve(tree.nodes.size());
  for (std::size_t i = 0; i < tree.nodes.size(); ++i) {
    if (removed[i]) continue;
    remap[i] = static_cast<int>(compact.size());
    compact.push_back(tree.nodes[i]);
  }
  for (SteinerEdge& e : tree.edges) {
    e.a = remap[static_cast<std::size_t>(e.a)];
    e.b = remap[static_cast<std::size_t>(e.b)];
  }
  tree.nodes = std::move(compact);
  tree.driver_node = remap[static_cast<std::size_t>(tree.driver_node)];
}

SteinerTree build_rsmt_points(const std::vector<PointF>& pts_in, const RsmtOptions& options) {
  if (pts_in.size() < 2) throw std::runtime_error("build_rsmt_points needs >= 2 points");

  SteinerTree tree;
  std::vector<PointF> pts = pts_in;
  tree.nodes.reserve(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    tree.nodes.push_back({pts[i], static_cast<int>(i)});
  }
  tree.driver_node = 0;
  const std::size_t num_pins = pts.size();

  // Iterated 1-Steiner.
  int added = 0;
  while (added < options.max_steiner_per_net) {
    const auto [cur_len, cur_edges] = prim(pts);
    // Candidate Hanan points.
    std::vector<PointF> cands;
    if (static_cast<int>(num_pins) <= options.exact_pin_limit &&
        pts.size() <= 2 * num_pins) {
      for (std::size_t i = 0; i < pts.size(); ++i) {
        for (std::size_t j = 0; j < pts.size(); ++j) {
          if (i == j) continue;
          if (pts[i].x == pts[j].x || pts[i].y == pts[j].y) continue;
          cands.push_back({pts[i].x, pts[j].y});
        }
      }
    } else {
      for (const SteinerEdge& e : cur_edges) {
        const PointF& a = pts[static_cast<std::size_t>(e.a)];
        const PointF& b = pts[static_cast<std::size_t>(e.b)];
        if (a.x == b.x || a.y == b.y) continue;
        cands.push_back({a.x, b.y});
        cands.push_back({b.x, a.y});
      }
    }
    double best_gain = 1e-9;
    PointF best_cand;
    bool found = false;
    for (const PointF& c : cands) {
      const double gain = cur_len - prim_length_with(pts, c);
      if (gain > best_gain) {
        best_gain = gain;
        best_cand = c;
        found = true;
      }
    }
    if (!found) break;
    pts.push_back(best_cand);
    tree.nodes.push_back({best_cand, -1});
    ++added;
  }

  tree.edges = prim(pts).second;
  prune_low_degree_steiner(tree);
  return tree;
}

SteinerTree build_rsmt(const Design& design, int net_id, const RsmtOptions& options) {
  const Net& net = design.net(net_id);
  if (net.sink_pins.empty()) throw std::runtime_error("cannot build tree for sinkless net");

  // Pin positions: driver first, then sinks (duplicates by position are fine;
  // they contribute zero-length MST edges).
  std::vector<PointF> pts;
  std::vector<int> pin_ids;
  pts.push_back(to_f(design.pin_position(net.driver_pin)));
  pin_ids.push_back(net.driver_pin);
  for (int s : net.sink_pins) {
    pts.push_back(to_f(design.pin_position(s)));
    pin_ids.push_back(s);
  }

  SteinerTree tree = build_rsmt_points(pts, options);
  tree.net = net_id;
  // The point-set core stamps pin-node `pin` fields with indices into `pts`;
  // translate to design pin ids.
  for (SteinerNode& n : tree.nodes) {
    if (!n.is_steiner()) n.pin = pin_ids[static_cast<std::size_t>(n.pin)];
  }
  return tree;
}

SteinerForest build_forest(const Design& design, const RsmtOptions& options) {
  SteinerForest forest;
  forest.net_to_tree.assign(design.nets().size(), -1);
  std::vector<int> routable;
  for (const Net& n : design.nets()) {
    if (n.sink_pins.empty()) continue;
    forest.net_to_tree[static_cast<std::size_t>(n.id)] = static_cast<int>(routable.size());
    routable.push_back(n.id);
  }
  forest.trees.resize(routable.size());

  // Nets are independent; each chunk writes only its own tree slots, so the
  // forest is identical for any thread count. options.threads acts as a
  // pool-width cap for this call (0 = pool default, 1 = serial; negative
  // requests clamp to the pool default).
  const int threads = clamp_thread_request(options.threads);
  parallel_for(
      0, routable.size(), 4,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          forest.trees[i] = build_rsmt(design, routable[i], options);
        }
      },
      threads);
  forest.build_movable_index();
  return forest;
}

}  // namespace tsteiner
