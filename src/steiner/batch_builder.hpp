// Batched Steiner construction: packing and stitching.
//
// The per-net iterated-1-Steiner construction in rsmt.cpp evaluates every
// Hanan candidate of a net by a full O(k^2) MST probe, per iteration, per
// net. The batched path (ROADMAP item 3; GAT-Steiner / NeuroSteiner in
// PAPERS.md) splits that work in two:
//
//   1. *Packing* (this file): every routable net contributes up to H_max
//      Hanan-grid candidate points, each described by kHananFeatures cheap
//      per-candidate features. Nets are padded to a common H_max so the
//      whole design becomes one `{net, hanan-node, feature}` tensor of
//      shape (num_nets * H_max) x kHananFeatures plus a validity mask and
//      a row->net segment map.
//   2. *Prediction* (gnn/steiner_predictor): one forward over the padded
//      batch yields a Steiner-point probability per candidate row.
//   3. *Stitching* (this file): per net, candidates above the probability
//      threshold are greedily inserted in descending-probability order,
//      each gated by an exact MST-gain probe (so wirelength never exceeds
//      the pin MST), then the final MST is pruned to degree-3 Steiner
//      discipline and clamped into the pin bounding box.
//
// Nets with <= small_net_pin_limit pins, and any net whose stitched tree
// fails the structural invariants, fall back to the exact per-net path
// (build_rsmt_points), so the verify-subsystem RSMT-optimality invariant
// for small nets remains a hard guard.
//
// Everything here is deliberately netlist-light: packing and stitching
// operate on raw pin clouds so the serve-side wirelength estimator can use
// them without a Design. Determinism: packing is a pure function of the
// pin sets + options; stitching is a pure function of (pins, probabilities,
// options); nets are processed over the deterministic pool with per-net
// writes only, so results are bit-identical at any thread width and
// independent of batch composition.
#pragma once

#include <cstdint>
#include <vector>

#include "steiner/rsmt.hpp"
#include "steiner/steiner_tree.hpp"

namespace tsteiner {

class Design;

/// Features per packed Hanan candidate row (all O(pins) to compute, all in
/// [0, 1]-ish normalized units; see pack_hanan_batch for the exact list).
inline constexpr int kHananFeatures = 10;

struct BatchBuildOptions {
  /// Padding cap: at most this many Hanan candidates are packed per net
  /// (nearest-to-pins candidates win; deterministic tie-breaks).
  int max_hanan_per_net = 48;
  /// Probability cutoff: rows at or below it are never stitched.
  double threshold = 0.35;
  /// At most this many above-threshold candidates are offered to the
  /// stitch, in descending-probability order (stable w.r.t. packing order).
  int max_candidates_per_net = 12;
  /// Nets with at most this many pins bypass prediction and use the exact
  /// per-net construction (keeps the <=4-pin RSMT-optimality invariant).
  int small_net_pin_limit = 4;
  /// Options for the exact fallback path (build_rsmt_points).
  RsmtOptions fallback;
  /// Pool-width cap for packing/stitching (same contract as
  /// RsmtOptions::threads: 0 = pool default, 1 = serial).
  int threads = 0;
  /// Test hook for the fuzz mutation self-check: when true, the first
  /// above-threshold candidate of every net is silently dropped before
  /// stitching. The steiner-batch differential oracle must catch this.
  bool mutate_drop_first_candidate = false;
};

/// Padded candidate batch. Only nets that actually reach the predictor —
/// more pins than small_net_pin_limit and at least one Hanan candidate —
/// occupy a slot; slot s owns rows [s*h_max, (s+1)*h_max). Rows with
/// valid[r] == 0 are padding (all-zero features, so a masked forward
/// contributes exact +0.0 to every per-slot reduction; see
/// docs/steiner_batch.md for the bit-identity argument). Small/fallback
/// nets carry no rows at all, which keeps the tensor proportional to the
/// predicted-net count rather than the design's net count.
struct HananBatch {
  int h_max = 0;
  std::size_t num_nets = 0;  ///< size of the input pin_sets, slotted or not
  /// slot -> net index (ascending net order).
  std::vector<int> slots;
  /// net index -> slot, or -1 when the net packs no candidates.
  std::vector<int> slot_of;
  /// (num_slots * h_max) x kHananFeatures, row-major.
  std::vector<double> features;
  /// Candidate position per row (0,0 on padding rows).
  std::vector<PointF> points;
  std::vector<std::uint8_t> valid;
  /// Row -> slot (defined on padding rows too).
  std::vector<int> segments;
  /// Real (unpadded) candidate count per net (0 for unslotted nets).
  std::vector<int> counts;

  std::size_t num_slots() const { return slots.size(); }
  std::size_t rows() const { return slots.size() * static_cast<std::size_t>(h_max); }
};

/// Per-batch construction accounting.
struct BatchBuildStats {
  std::size_t num_nets = 0;
  std::size_t num_predicted = 0;         ///< stitched from predicted candidates
  std::size_t num_fallback_small = 0;    ///< <= small_net_pin_limit pins
  std::size_t num_fallback_invalid = 0;  ///< stitched tree failed invariants
  std::size_t num_candidate_rows = 0;    ///< packed (valid) candidate rows
  std::size_t num_offered_points = 0;    ///< above-threshold candidates offered
  std::size_t num_inserted_points = 0;   ///< candidates that survived the gain gate

  std::size_t num_fallback() const { return num_fallback_small + num_fallback_invalid; }
};

/// Pack pin sets (driver first per net) into a padded candidate batch.
/// Nets at or below small_net_pin_limit pack zero candidates (they never
/// reach the predictor). Pure function of (pin_sets, options).
HananBatch pack_hanan_batch(const std::vector<std::vector<PointF>>& pin_sets,
                            const BatchBuildOptions& options);

/// Stitch every net from its pins + predicted candidate probabilities
/// (aligned with `batch` rows, as produced by SteinerPredictor::predict).
/// Trees come back in pin_sets order with `net` = -1 and pin-node `pin`
/// fields holding indices into the net's pin set (same convention as
/// build_rsmt_points). `used_fallback`, when non-null, is resized to one
/// flag per net.
std::vector<SteinerTree> stitch_batch(const std::vector<std::vector<PointF>>& pin_sets,
                                      const HananBatch& batch,
                                      const std::vector<double>& probabilities,
                                      const BatchBuildOptions& options,
                                      BatchBuildStats* stats = nullptr,
                                      std::vector<std::uint8_t>* used_fallback = nullptr);

/// Pin positions (driver first) for every net with at least one sink, in
/// net-id order; `net_ids`, when non-null, receives the matching net ids.
std::vector<std::vector<PointF>> routable_pin_sets(const Design& design,
                                                   std::vector<int>* net_ids = nullptr);

}  // namespace tsteiner
