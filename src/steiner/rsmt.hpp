// Rectilinear Steiner minimal tree construction.
//
// The paper seeds TSteiner with FLUTE [16] trees; FLUTE's lookup tables are
// not available offline, so this reproduction uses the classic iterated
// 1-Steiner heuristic (Kahng–Robins): repeatedly add the Hanan-grid point
// that most reduces the Manhattan MST length. For small nets the candidate
// set is the full Hanan grid (near-optimal); for large nets candidates are
// restricted to Hanan points of MST-adjacent node pairs (Borah-style), which
// keeps construction near-linear in practice. Both provide the same
// interface FLUTE would: a wirelength-minimal tree whose junctions become
// movable Steiner points.
//
// Two layers: the point-set core (build_rsmt_points) operates on raw pin
// clouds with no netlist attached — the batched builder's exact fallback and
// the serve wirelength estimator run on it directly — and the Design-level
// wrappers (build_rsmt / build_forest) gather pin positions and stamp design
// pin ids onto the resulting nodes.
#pragma once

#include "netlist/netlist.hpp"
#include "steiner/steiner_tree.hpp"

namespace tsteiner {

struct RsmtOptions {
  /// Use the full Hanan candidate grid for nets with at most this many pins.
  int exact_pin_limit = 10;
  /// Upper bound on Steiner points added per net.
  int max_steiner_per_net = 64;
  /// Pool-width cap for forest construction (nets are independent, built on
  /// the shared pool from util/parallel.hpp): 0 uses the pool default
  /// (TSTEINER_THREADS / hardware concurrency), 1 forces serial, and
  /// negative values clamp to 0. Results are bit-identical regardless of
  /// thread count.
  int threads = 0;
};

/// Point-set core of build_rsmt: `pts[0]` is the driver, the rest are sinks
/// (>= 1 required). Pin nodes carry their index into `pts` in the `pin`
/// field (the Design wrapper remaps them to design pin ids); Steiner nodes
/// have pin = -1 and degree >= 3. `net` is left at -1.
SteinerTree build_rsmt_points(const std::vector<PointF>& pts, const RsmtOptions& options = {});

/// Build a Steiner tree for one net (requires >= 1 sink). The resulting
/// tree has pin nodes for the driver and every sink, and Steiner nodes for
/// all junctions; every Steiner node has degree >= 3.
SteinerTree build_rsmt(const Design& design, int net_id, const RsmtOptions& options = {});

/// Build trees for every net with at least one sink.
SteinerForest build_forest(const Design& design, const RsmtOptions& options = {});

/// Manhattan MST length over a point set (Prim); exposed for testing and
/// for wirelength comparisons in the benches.
double mst_length(const std::vector<PointF>& points);

/// Manhattan MST edges over a point set (Prim, deterministic tie-breaks);
/// the stitch step of the batched builder spans pins + predicted points
/// with exactly this tree.
std::vector<SteinerEdge> mst_edges(const std::vector<PointF>& points);

/// Splice out Steiner nodes that ended with degree <= 2 (degree-2 nodes
/// connect their neighbors directly, lower degrees are removed), iterate to
/// a fixed point, then compact node indices. Pin nodes are never touched.
/// Shared by the iterated-1-Steiner construction and the batched stitch, so
/// both emit trees under the same degree-3 discipline.
void prune_low_degree_steiner(SteinerTree& tree);

}  // namespace tsteiner
