#include "steiner/steiner_tree.hpp"

#include <algorithm>
#include <numeric>
#include <queue>

namespace tsteiner {

int SteinerTree::num_steiner_nodes() const {
  int n = 0;
  for (const SteinerNode& node : nodes) n += node.is_steiner() ? 1 : 0;
  return n;
}

double SteinerTree::wirelength() const {
  double wl = 0.0;
  for (const SteinerEdge& e : edges) {
    wl += manhattan(nodes[static_cast<std::size_t>(e.a)].pos,
                    nodes[static_cast<std::size_t>(e.b)].pos);
  }
  return wl;
}

std::vector<std::vector<int>> SteinerTree::adjacency() const {
  std::vector<std::vector<int>> adj(nodes.size());
  for (const SteinerEdge& e : edges) {
    adj[static_cast<std::size_t>(e.a)].push_back(e.b);
    adj[static_cast<std::size_t>(e.b)].push_back(e.a);
  }
  return adj;
}

std::vector<int> SteinerTree::parents_from_driver() const {
  std::vector<int> parent(nodes.size(), -2);
  if (driver_node < 0) return parent;
  const auto adj = adjacency();
  std::queue<int> q;
  parent[static_cast<std::size_t>(driver_node)] = -1;
  q.push(driver_node);
  while (!q.empty()) {
    const int u = q.front();
    q.pop();
    for (int v : adj[static_cast<std::size_t>(u)]) {
      if (parent[static_cast<std::size_t>(v)] != -2) continue;
      parent[static_cast<std::size_t>(v)] = u;
      q.push(v);
    }
  }
  return parent;
}

std::vector<double> SteinerTree::path_lengths_from_driver() const {
  std::vector<double> dist(nodes.size(), 0.0);
  const auto adj = adjacency();
  std::vector<char> seen(nodes.size(), 0);
  std::queue<int> q;
  if (driver_node < 0) return dist;
  seen[static_cast<std::size_t>(driver_node)] = 1;
  q.push(driver_node);
  while (!q.empty()) {
    const int u = q.front();
    q.pop();
    for (int v : adj[static_cast<std::size_t>(u)]) {
      if (seen[static_cast<std::size_t>(v)]) continue;
      seen[static_cast<std::size_t>(v)] = 1;
      dist[static_cast<std::size_t>(v)] =
          dist[static_cast<std::size_t>(u)] +
          manhattan(nodes[static_cast<std::size_t>(u)].pos,
                    nodes[static_cast<std::size_t>(v)].pos);
      q.push(v);
    }
  }
  return dist;
}

bool SteinerTree::is_valid_tree() const {
  if (nodes.empty()) return false;
  if (driver_node < 0 || driver_node >= static_cast<int>(nodes.size())) return false;
  if (nodes[static_cast<std::size_t>(driver_node)].is_steiner()) return false;
  if (edges.size() + 1 != nodes.size()) return false;
  const auto parent = parents_from_driver();
  for (int p : parent) {
    if (p == -2) return false;  // unreachable node -> disconnected (or cycle)
  }
  return true;
}

void SteinerForest::build_movable_index() {
  movable_.clear();
  for (std::size_t t = 0; t < trees.size(); ++t) {
    const SteinerTree& tree = trees[t];
    for (std::size_t n = 0; n < tree.nodes.size(); ++n) {
      if (tree.nodes[n].is_steiner()) {
        movable_.push_back({static_cast<int>(t), static_cast<int>(n)});
      }
    }
  }
}

void SteinerForest::replace_tree(int tree_index, SteinerTree tree) {
  const auto before = [](const MovableRef& r, int t) { return r.tree < t; };
  const auto lo = std::lower_bound(movable_.begin(), movable_.end(), tree_index, before);
  auto hi = lo;
  while (hi != movable_.end() && hi->tree == tree_index) ++hi;
  std::vector<MovableRef> fresh;
  for (std::size_t n = 0; n < tree.nodes.size(); ++n) {
    if (tree.nodes[n].is_steiner()) fresh.push_back({tree_index, static_cast<int>(n)});
  }
  const auto at = movable_.erase(lo, hi);
  movable_.insert(at, fresh.begin(), fresh.end());
  trees[static_cast<std::size_t>(tree_index)] = std::move(tree);
}

std::vector<double> SteinerForest::gather_x() const {
  std::vector<double> xs(movable_.size());
  for (std::size_t i = 0; i < movable_.size(); ++i) {
    const MovableRef& r = movable_[i];
    xs[i] = trees[static_cast<std::size_t>(r.tree)]
                .nodes[static_cast<std::size_t>(r.node)]
                .pos.x;
  }
  return xs;
}

std::vector<double> SteinerForest::gather_y() const {
  std::vector<double> ys(movable_.size());
  for (std::size_t i = 0; i < movable_.size(); ++i) {
    const MovableRef& r = movable_[i];
    ys[i] = trees[static_cast<std::size_t>(r.tree)]
                .nodes[static_cast<std::size_t>(r.node)]
                .pos.y;
  }
  return ys;
}

void SteinerForest::scatter_xy(const std::vector<double>& xs, const std::vector<double>& ys) {
  for (std::size_t i = 0; i < movable_.size(); ++i) {
    const MovableRef& r = movable_[i];
    SteinerNode& n =
        trees[static_cast<std::size_t>(r.tree)].nodes[static_cast<std::size_t>(r.node)];
    n.pos.x = xs[i];
    n.pos.y = ys[i];
  }
}

long long SteinerForest::num_steiner_nodes() const {
  long long n = 0;
  for (const SteinerTree& t : trees) n += t.num_steiner_nodes();
  return n;
}

double SteinerForest::total_wirelength() const {
  double wl = 0.0;
  for (const SteinerTree& t : trees) wl += t.wirelength();
  return wl;
}

void SteinerForest::clamp_steiner_points(const RectI& box) {
  for (SteinerTree& t : trees) {
    for (SteinerNode& n : t.nodes) {
      if (n.is_steiner()) n.pos = clamp_into(n.pos, box);
    }
  }
}

void SteinerForest::round_steiner_points() {
  for (SteinerTree& t : trees) {
    for (SteinerNode& n : t.nodes) {
      if (n.is_steiner()) n.pos = to_f(round_to_i(n.pos));
    }
  }
}

}  // namespace tsteiner
