// Plain-text Steiner-forest serialization: persists a tree set (e.g. a
// TSteiner-refined solution) against a design whose pin ids it references.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "steiner/steiner_tree.hpp"

namespace tsteiner {

void write_forest(const SteinerForest& forest, std::ostream& out);
bool write_forest_file(const SteinerForest& forest, const std::string& path);

/// Returns nullopt on malformed input. The movable index is rebuilt.
std::optional<SteinerForest> read_forest(std::istream& in);
std::optional<SteinerForest> read_forest_file(const std::string& path);

}  // namespace tsteiner
