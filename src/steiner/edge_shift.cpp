#include "steiner/edge_shift.hpp"

#include <limits>
#include <numeric>

#include "util/parallel.hpp"

namespace tsteiner {

int edge_shift(SteinerTree& tree, const EdgeCostFn& cost, const EdgeShiftOptions& options) {
  int moves = 0;
  for (int pass = 0; pass < options.passes; ++pass) {
    const auto adj = tree.adjacency();
    bool any = false;
    for (std::size_t i = 0; i < tree.nodes.size(); ++i) {
      SteinerNode& node = tree.nodes[i];
      if (!node.is_steiner()) continue;
      const auto& nbrs = adj[i];
      if (nbrs.size() < 2) continue;

      auto star_cost = [&](const PointF& p) {
        double c = 0.0;
        for (int v : nbrs) c += cost(p, tree.nodes[static_cast<std::size_t>(v)].pos);
        return c;
      };
      auto star_len = [&](const PointF& p) {
        double l = 0.0;
        for (int v : nbrs) l += manhattan(p, tree.nodes[static_cast<std::size_t>(v)].pos);
        return l;
      };

      const double cur_cost = star_cost(node.pos);
      const double cur_len = star_len(node.pos);
      double best_cost = cur_cost;
      PointF best_pos = node.pos;
      for (int va : nbrs) {
        for (int vb : nbrs) {
          if (va == vb) continue;
          const PointF cand{tree.nodes[static_cast<std::size_t>(va)].pos.x,
                            tree.nodes[static_cast<std::size_t>(vb)].pos.y};
          if (cand == node.pos) continue;
          if (star_len(cand) > cur_len * (1.0 + options.wirelength_slack)) continue;
          const double c = star_cost(cand);
          if (c + 1e-12 < best_cost) {
            best_cost = c;
            best_pos = cand;
          }
        }
      }
      if (!(best_pos == node.pos)) {
        node.pos = best_pos;
        ++moves;
        any = true;
      }
    }
    if (!any) break;
  }
  return moves;
}

int edge_shift_forest(SteinerForest& forest, const EdgeCostFn& cost,
                      const EdgeShiftOptions& options) {
  // Trees are independent; per-tree move counts land in distinct slots and
  // are folded serially, so the total matches the serial loop exactly. The
  // cost functor must be safe to call concurrently (all in-tree callers pass
  // read-only congestion-map lookups).
  std::vector<int> moves(forest.trees.size(), 0);
  parallel_for(0, forest.trees.size(), 4, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t t = lo; t < hi; ++t) {
      moves[t] = edge_shift(forest.trees[t], cost, options);
    }
  });
  return std::accumulate(moves.begin(), moves.end(), 0);
}

}  // namespace tsteiner
