// Steiner tree data structures.
//
// A SteinerTree decomposes one multi-pin net into two-pin edges through
// auxiliary Steiner nodes (Definition 1 of the paper). Pin nodes are fixed
// at their placed positions; Steiner nodes carry continuous coordinates and
// are the variables TSteiner optimizes. A SteinerForest is the per-design
// tree set S_T = {T^1 .. T^n} plus a flat index over all movable points so
// the optimizer can gather/scatter (X_s, Y_s) as dense vectors.
#pragma once

#include <vector>

#include "netlist/netlist.hpp"
#include "util/geometry.hpp"

namespace tsteiner {

struct SteinerNode {
  PointF pos;
  int pin = -1;  ///< design pin id for pin nodes; -1 for movable Steiner nodes

  bool is_steiner() const { return pin < 0; }
};

struct SteinerEdge {
  int a = -1;
  int b = -1;
};

class SteinerTree {
 public:
  int net = -1;
  std::vector<SteinerNode> nodes;
  std::vector<SteinerEdge> edges;
  int driver_node = -1;  ///< node index of the net's driver pin

  int num_steiner_nodes() const;
  /// Manhattan wirelength over all edges (continuous positions).
  double wirelength() const;

  /// Adjacency lists (rebuilt on demand; trees are small).
  std::vector<std::vector<int>> adjacency() const;

  /// Parent of each node in the tree rooted at the driver (-1 for root).
  /// Exists for every node iff the tree is connected.
  std::vector<int> parents_from_driver() const;

  /// Manhattan path length from the driver to every node along tree edges.
  std::vector<double> path_lengths_from_driver() const;

  /// True iff edges form a single connected acyclic component spanning all
  /// nodes and the driver node is a valid pin node.
  bool is_valid_tree() const;
};

/// Reference to one movable Steiner point inside a forest.
struct MovableRef {
  int tree = -1;
  int node = -1;
};

class SteinerForest {
 public:
  std::vector<SteinerTree> trees;

  /// net id -> tree index (or -1); sized to the design's net count.
  std::vector<int> net_to_tree;

  /// Rebuild the flat movable-point index; invalidated by any structural
  /// edit of `trees`.
  void build_movable_index();

  /// Structural single-tree replacement: swap in `tree` (same net) and patch
  /// the movable index in place — the old tree's span is spliced out and the
  /// replacement's Steiner nodes inserted at the same position, leaving the
  /// index identical to a build_movable_index() from scratch (the
  /// topology-search oracle diffs the two). Requires a current index.
  void replace_tree(int tree_index, SteinerTree tree);
  const std::vector<MovableRef>& movable() const { return movable_; }
  std::size_t num_movable() const { return movable_.size(); }

  /// Dense views of Steiner coordinates, in movable-index order.
  std::vector<double> gather_x() const;
  std::vector<double> gather_y() const;
  void scatter_xy(const std::vector<double>& xs, const std::vector<double>& ys);

  long long num_steiner_nodes() const;
  double total_wirelength() const;

  /// Clamp every Steiner node into `box` (grid-graph boundary).
  void clamp_steiner_points(const RectI& box);
  /// Round every Steiner node to integer coordinates (post-processing).
  void round_steiner_points();

 private:
  std::vector<MovableRef> movable_;
};

}  // namespace tsteiner
