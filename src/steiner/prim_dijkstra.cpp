#include "steiner/prim_dijkstra.hpp"

#include <limits>
#include <stdexcept>

namespace tsteiner {

SteinerTree build_pd_tree(const Design& design, int net_id, const PdOptions& options) {
  const Net& net = design.net(net_id);
  if (net.sink_pins.empty()) throw std::runtime_error("cannot build tree for sinkless net");
  if (options.alpha < 0.0 || options.alpha > 1.0) {
    throw std::runtime_error("PD alpha must be in [0, 1]");
  }

  SteinerTree tree;
  tree.net = net_id;
  tree.nodes.push_back({to_f(design.pin_position(net.driver_pin)), net.driver_pin});
  for (int s : net.sink_pins) {
    tree.nodes.push_back({to_f(design.pin_position(s)), s});
  }
  tree.driver_node = 0;

  const std::size_t k = tree.nodes.size();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<char> in_tree(k, 0);
  std::vector<double> plen(k, 0.0);   // driver -> node path length (attached nodes)
  std::vector<double> best(k, kInf);  // attachment cost
  std::vector<int> from(k, -1);
  in_tree[0] = 1;
  for (std::size_t v = 1; v < k; ++v) {
    best[v] = manhattan(tree.nodes[0].pos, tree.nodes[v].pos);
    from[v] = 0;
  }
  for (std::size_t it = 1; it < k; ++it) {
    std::size_t v_min = k;
    double c_min = kInf;
    for (std::size_t v = 1; v < k; ++v) {
      if (!in_tree[v] && best[v] < c_min) {
        c_min = best[v];
        v_min = v;
      }
    }
    if (v_min == k) throw std::runtime_error("PD tree construction failed");
    in_tree[v_min] = 1;
    const int u = from[v_min];
    tree.edges.push_back({u, static_cast<int>(v_min)});
    plen[v_min] = plen[static_cast<std::size_t>(u)] +
                  manhattan(tree.nodes[static_cast<std::size_t>(u)].pos, tree.nodes[v_min].pos);
    // Relax remaining sinks through the newly attached node.
    for (std::size_t v = 1; v < k; ++v) {
      if (in_tree[v]) continue;
      const double c = options.alpha * plen[v_min] +
                       manhattan(tree.nodes[v_min].pos, tree.nodes[v].pos);
      if (c < best[v]) {
        best[v] = c;
        from[v] = static_cast<int>(v_min);
      }
    }
  }

  if (options.steinerize_corners) steinerize_corners(tree);
  return tree;
}

int steinerize_corners(SteinerTree& tree) {
  int added = 0;
  std::vector<SteinerEdge> new_edges;
  new_edges.reserve(tree.edges.size() * 2);
  for (const SteinerEdge& e : tree.edges) {
    const PointF& a = tree.nodes[static_cast<std::size_t>(e.a)].pos;
    const PointF& b = tree.nodes[static_cast<std::size_t>(e.b)].pos;
    if (a.x == b.x || a.y == b.y) {
      new_edges.push_back(e);
      continue;
    }
    // Horizontal-first from a: corner at (b.x, a.y).
    const int corner = static_cast<int>(tree.nodes.size());
    tree.nodes.push_back({{b.x, a.y}, -1});
    new_edges.push_back({e.a, corner});
    new_edges.push_back({corner, e.b});
    ++added;
  }
  tree.edges = std::move(new_edges);
  return added;
}

SteinerForest build_pd_forest(const Design& design, const PdOptions& options) {
  SteinerForest forest;
  forest.net_to_tree.assign(design.nets().size(), -1);
  for (const Net& n : design.nets()) {
    if (n.sink_pins.empty()) continue;
    forest.net_to_tree[static_cast<std::size_t>(n.id)] =
        static_cast<int>(forest.trees.size());
    forest.trees.push_back(build_pd_tree(design, n.id, options));
  }
  forest.build_movable_index();
  return forest;
}

}  // namespace tsteiner
