#include "steiner/batch_builder.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "netlist/netlist.hpp"
#include "util/parallel.hpp"

namespace tsteiner {

namespace {

struct NetCandidates {
  std::vector<PointF> points;
  std::vector<double> dmin;  ///< min Manhattan distance to any pin
};

/// Hanan cross-product candidates for one net: every (x_i, y_j) that is not
/// itself a pin position, deduped. When the grid exceeds the per-net cap,
/// the candidates nearest to the pins win (ties broken by x then y), which
/// keeps the set deterministic and biased toward useful junctions.
NetCandidates net_candidates(const std::vector<PointF>& pins, int cap) {
  NetCandidates out;
  std::vector<PointF> grid;
  for (const PointF& a : pins) {
    for (const PointF& b : pins) {
      if (a.x == b.x || a.y == b.y) continue;
      grid.push_back({a.x, b.y});
    }
  }
  std::sort(grid.begin(), grid.end(), [](const PointF& p, const PointF& q) {
    if (p.x != q.x) return p.x < q.x;
    return p.y < q.y;
  });
  grid.erase(std::unique(grid.begin(), grid.end(),
                         [](const PointF& p, const PointF& q) { return p.x == q.x && p.y == q.y; }),
             grid.end());
  // Drop candidates that coincide with a pin: inserting them can never
  // shorten the MST.
  std::vector<PointF> filtered;
  filtered.reserve(grid.size());
  for (const PointF& c : grid) {
    bool on_pin = false;
    for (const PointF& p : pins) {
      if (p.x == c.x && p.y == c.y) {
        on_pin = true;
        break;
      }
    }
    if (!on_pin) filtered.push_back(c);
  }

  std::vector<double> dmin(filtered.size(), 0.0);
  for (std::size_t i = 0; i < filtered.size(); ++i) {
    double d = std::numeric_limits<double>::infinity();
    for (const PointF& p : pins) d = std::min(d, manhattan(filtered[i], p));
    dmin[i] = d;
  }
  std::vector<std::size_t> order(filtered.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (dmin[a] != dmin[b]) return dmin[a] < dmin[b];
    if (filtered[a].x != filtered[b].x) return filtered[a].x < filtered[b].x;
    return filtered[a].y < filtered[b].y;
  });
  const std::size_t take = std::min<std::size_t>(order.size(), static_cast<std::size_t>(std::max(cap, 0)));
  out.points.reserve(take);
  out.dmin.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    out.points.push_back(filtered[order[i]]);
    out.dmin.push_back(dmin[order[i]]);
  }
  return out;
}

void fill_features(const std::vector<PointF>& pins, const PointF& c, double dmin, double* f) {
  double xmin = pins[0].x, xmax = pins[0].x, ymin = pins[0].y, ymax = pins[0].y;
  double sx = 0.0, sy = 0.0;
  for (const PointF& p : pins) {
    xmin = std::min(xmin, p.x);
    xmax = std::max(xmax, p.x);
    ymin = std::min(ymin, p.y);
    ymax = std::max(ymax, p.y);
    sx += p.x;
    sy += p.y;
  }
  const double k = static_cast<double>(pins.size());
  const double w = std::max(xmax - xmin, 1.0);
  const double h = std::max(ymax - ymin, 1.0);
  const double scale = w + h;
  double dsum = 0.0;
  double align_x = 0.0, align_y = 0.0;
  for (const PointF& p : pins) {
    dsum += manhattan(c, p);
    if (p.x == c.x) align_x += 1.0;
    if (p.y == c.y) align_y += 1.0;
  }
  f[0] = (c.x - xmin) / w;
  f[1] = (c.y - ymin) / h;
  f[2] = std::min(k, 32.0) / 32.0;
  f[3] = (sx / k - xmin) / w;
  f[4] = (sy / k - ymin) / h;
  f[5] = dmin / scale;
  f[6] = dsum / (k * scale);
  f[7] = align_x / k;
  f[8] = align_y / k;
  f[9] = w / scale;
}

/// MST length over `pts` with `cand` appended (pts itself is not modified).
double mst_length_with(std::vector<PointF>& pts, const PointF& cand) {
  pts.push_back(cand);
  const double len = mst_length(pts);
  pts.pop_back();
  return len;
}

/// Structural acceptance for a stitched tree: valid spanning tree, every
/// Steiner node degree >= 3, every Steiner node inside the pin bounding box.
bool stitched_tree_ok(const SteinerTree& tree, const std::vector<PointF>& pins) {
  if (!tree.is_valid_tree()) return false;
  double xmin = pins[0].x, xmax = pins[0].x, ymin = pins[0].y, ymax = pins[0].y;
  for (const PointF& p : pins) {
    xmin = std::min(xmin, p.x);
    xmax = std::max(xmax, p.x);
    ymin = std::min(ymin, p.y);
    ymax = std::max(ymax, p.y);
  }
  std::vector<int> degree(tree.nodes.size(), 0);
  for (const SteinerEdge& e : tree.edges) {
    ++degree[static_cast<std::size_t>(e.a)];
    ++degree[static_cast<std::size_t>(e.b)];
  }
  for (std::size_t i = 0; i < tree.nodes.size(); ++i) {
    const SteinerNode& n = tree.nodes[i];
    if (!n.is_steiner()) continue;
    if (degree[i] < 3) return false;
    if (n.pos.x < xmin || n.pos.x > xmax || n.pos.y < ymin || n.pos.y > ymax) return false;
  }
  return true;
}

}  // namespace

HananBatch pack_hanan_batch(const std::vector<std::vector<PointF>>& pin_sets,
                            const BatchBuildOptions& options) {
  HananBatch batch;
  batch.num_nets = pin_sets.size();
  batch.counts.assign(pin_sets.size(), 0);
  for (const std::vector<PointF>& pins : pin_sets) {
    if (pins.size() < 2) throw std::runtime_error("pack_hanan_batch: net with < 2 pins");
  }

  std::vector<NetCandidates> cands(pin_sets.size());
  const int threads = clamp_thread_request(options.threads);
  parallel_for(
      0, pin_sets.size(), 4,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          const std::vector<PointF>& pins = pin_sets[i];
          if (static_cast<int>(pins.size()) <= options.small_net_pin_limit) continue;
          cands[i] = net_candidates(pins, options.max_hanan_per_net);
        }
      },
      threads);

  int h_max = 0;
  batch.slot_of.assign(pin_sets.size(), -1);
  for (std::size_t i = 0; i < cands.size(); ++i) {
    batch.counts[i] = static_cast<int>(cands[i].points.size());
    if (batch.counts[i] > 0) {
      batch.slot_of[i] = static_cast<int>(batch.slots.size());
      batch.slots.push_back(static_cast<int>(i));
      h_max = std::max(h_max, batch.counts[i]);
    }
  }
  batch.h_max = h_max;
  const std::size_t rows = batch.rows();
  batch.features.assign(rows * kHananFeatures, 0.0);
  batch.points.assign(rows, PointF{0.0, 0.0});
  batch.valid.assign(rows, 0);
  batch.segments.assign(rows, 0);
  for (std::size_t r = 0; r < rows; ++r) {
    batch.segments[r] = static_cast<int>(r / static_cast<std::size_t>(std::max(h_max, 1)));
  }
  if (rows == 0) return batch;

  parallel_for(
      0, batch.slots.size(), 4,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t s = lo; s < hi; ++s) {
          const auto net = static_cast<std::size_t>(batch.slots[s]);
          const NetCandidates& nc = cands[net];
          const std::size_t base = s * static_cast<std::size_t>(h_max);
          for (std::size_t j = 0; j < nc.points.size(); ++j) {
            const std::size_t r = base + j;
            batch.points[r] = nc.points[j];
            batch.valid[r] = 1;
            fill_features(pin_sets[net], nc.points[j], nc.dmin[j],
                          batch.features.data() + r * kHananFeatures);
          }
        }
      },
      threads);
  return batch;
}

std::vector<SteinerTree> stitch_batch(const std::vector<std::vector<PointF>>& pin_sets,
                                      const HananBatch& batch,
                                      const std::vector<double>& probabilities,
                                      const BatchBuildOptions& options,
                                      BatchBuildStats* stats,
                                      std::vector<std::uint8_t>* used_fallback) {
  if (batch.num_nets != pin_sets.size()) {
    throw std::runtime_error("stitch_batch: batch/pin_sets size mismatch");
  }
  if (probabilities.size() != batch.rows()) {
    throw std::runtime_error("stitch_batch: probabilities/rows size mismatch");
  }

  std::vector<SteinerTree> trees(pin_sets.size());
  // Per-net accounting slots; reduced serially below so the stats are
  // deterministic and the parallel loop writes disjoint slots only.
  std::vector<std::uint8_t> fb_small(pin_sets.size(), 0);
  std::vector<std::uint8_t> fb_invalid(pin_sets.size(), 0);
  std::vector<int> offered_counts(pin_sets.size(), 0);
  std::vector<int> inserted_counts(pin_sets.size(), 0);

  const int threads = clamp_thread_request(options.threads);
  parallel_for(
      0, pin_sets.size(), 4,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          const std::vector<PointF>& pins = pin_sets[i];
          if (static_cast<int>(pins.size()) <= options.small_net_pin_limit) {
            trees[i] = build_rsmt_points(pins, options.fallback);
            fb_small[i] = 1;
            continue;
          }

          // Above-threshold candidates, in descending-probability order
          // (stable w.r.t. packing order so ties are deterministic).
          struct Offer {
            PointF pos;
            double prob;
          };
          std::vector<Offer> offered;
          const int slot = batch.slot_of[i];
          const int count = batch.counts[i];
          const std::size_t base =
              slot >= 0 ? static_cast<std::size_t>(slot) * static_cast<std::size_t>(batch.h_max) : 0;
          for (int j = 0; slot >= 0 && j < count; ++j) {
            const std::size_t r = base + static_cast<std::size_t>(j);
            if (probabilities[r] > options.threshold) offered.push_back({batch.points[r], probabilities[r]});
          }
          std::stable_sort(offered.begin(), offered.end(),
                           [](const Offer& a, const Offer& b) { return a.prob > b.prob; });
          if (offered.size() > static_cast<std::size_t>(std::max(options.max_candidates_per_net, 0))) {
            offered.resize(static_cast<std::size_t>(std::max(options.max_candidates_per_net, 0)));
          }
          if (options.mutate_drop_first_candidate && !offered.empty()) {
            offered.erase(offered.begin());
          }
          offered_counts[i] = static_cast<int>(offered.size());

          // Greedy gain-gated insertion: every accepted candidate strictly
          // shortens the running MST, so the stitched wirelength never
          // exceeds the pin-only MST.
          std::vector<PointF> pts = pins;
          double cur_len = mst_length(pts);
          int inserted = 0;
          for (const Offer& o : offered) {
            const double aug = mst_length_with(pts, o.pos);
            if (cur_len - aug > 1e-9) {
              pts.push_back(o.pos);
              cur_len = aug;
              ++inserted;
            }
          }
          inserted_counts[i] = inserted;

          SteinerTree tree;
          tree.nodes.reserve(pts.size());
          for (std::size_t p = 0; p < pins.size(); ++p) {
            tree.nodes.push_back({pins[p], static_cast<int>(p)});
          }
          for (std::size_t p = pins.size(); p < pts.size(); ++p) {
            tree.nodes.push_back({pts[p], -1});
          }
          tree.driver_node = 0;
          tree.edges = mst_edges(pts);
          prune_low_degree_steiner(tree);

          if (stitched_tree_ok(tree, pins)) {
            trees[i] = std::move(tree);
          } else {
            trees[i] = build_rsmt_points(pins, options.fallback);
            fb_invalid[i] = 1;
          }
        }
      },
      threads);

  if (used_fallback != nullptr) {
    used_fallback->assign(pin_sets.size(), 0);
    for (std::size_t i = 0; i < pin_sets.size(); ++i) {
      (*used_fallback)[i] = static_cast<std::uint8_t>(fb_small[i] | fb_invalid[i]);
    }
  }
  if (stats != nullptr) {
    *stats = BatchBuildStats{};
    stats->num_nets = pin_sets.size();
    for (std::size_t i = 0; i < pin_sets.size(); ++i) {
      stats->num_fallback_small += fb_small[i];
      stats->num_fallback_invalid += fb_invalid[i];
      if (!fb_small[i] && !fb_invalid[i]) ++stats->num_predicted;
      stats->num_candidate_rows += static_cast<std::size_t>(batch.counts[i]);
      stats->num_offered_points += static_cast<std::size_t>(offered_counts[i]);
      stats->num_inserted_points += static_cast<std::size_t>(inserted_counts[i]);
    }
  }
  return trees;
}

std::vector<std::vector<PointF>> routable_pin_sets(const Design& design, std::vector<int>* net_ids) {
  std::vector<std::vector<PointF>> pin_sets;
  if (net_ids != nullptr) net_ids->clear();
  for (const Net& n : design.nets()) {
    if (n.sink_pins.empty()) continue;
    std::vector<PointF> pins;
    pins.reserve(n.sink_pins.size() + 1);
    pins.push_back(to_f(design.pin_position(n.driver_pin)));
    for (int s : n.sink_pins) pins.push_back(to_f(design.pin_position(s)));
    pin_sets.push_back(std::move(pins));
    if (net_ids != nullptr) net_ids->push_back(n.id);
  }
  return pin_sets;
}

}  // namespace tsteiner
