#include "steiner/forest_io.hpp"

#include <cmath>
#include <fstream>

namespace tsteiner {

namespace {
// Upper bound on any count read from a forest file. Generous for real designs
// (the paper's largest has ~2M nets) while keeping a corrupted or malicious
// count from driving a multi-gigabyte reserve before parsing fails.
constexpr std::size_t kMaxForestCount = 50'000'000;
}  // namespace

void write_forest(const SteinerForest& forest, std::ostream& out) {
  out << "tsteiner-forest-v1\n";
  out.precision(17);
  out << "nets " << forest.net_to_tree.size() << '\n';
  out << "trees " << forest.trees.size() << '\n';
  for (const SteinerTree& t : forest.trees) {
    out << "tree " << t.net << ' ' << t.driver_node << ' ' << t.nodes.size() << ' '
        << t.edges.size() << '\n';
    for (const SteinerNode& n : t.nodes) {
      out << n.pin << ' ' << n.pos.x << ' ' << n.pos.y << '\n';
    }
    for (const SteinerEdge& e : t.edges) {
      out << e.a << ' ' << e.b << '\n';
    }
  }
}

bool write_forest_file(const SteinerForest& forest, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  write_forest(forest, out);
  return static_cast<bool>(out);
}

std::optional<SteinerForest> read_forest(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line != "tsteiner-forest-v1") return std::nullopt;
  std::string key;
  std::size_t num_nets = 0, num_trees = 0;
  if (!(in >> key >> num_nets) || key != "nets") return std::nullopt;
  if (!(in >> key >> num_trees) || key != "trees") return std::nullopt;
  if (num_nets > kMaxForestCount || num_trees > num_nets) return std::nullopt;

  SteinerForest f;
  f.net_to_tree.assign(num_nets, -1);
  f.trees.reserve(num_trees);
  for (std::size_t t = 0; t < num_trees; ++t) {
    int net = -1, driver = -1;
    std::size_t nodes = 0, edges = 0;
    if (!(in >> key >> net >> driver >> nodes >> edges) || key != "tree") return std::nullopt;
    if (net < 0 || net >= static_cast<int>(num_nets)) return std::nullopt;
    if (f.net_to_tree[static_cast<std::size_t>(net)] != -1) return std::nullopt;
    if (nodes > kMaxForestCount || edges > kMaxForestCount) return std::nullopt;
    if (driver < 0 || driver >= static_cast<int>(nodes)) return std::nullopt;
    SteinerTree tree;
    tree.net = net;
    tree.driver_node = driver;
    tree.nodes.reserve(nodes);
    for (std::size_t n = 0; n < nodes; ++n) {
      SteinerNode node;
      if (!(in >> node.pin >> node.pos.x >> node.pos.y)) return std::nullopt;
      if (node.pin < -1) return std::nullopt;
      if (!std::isfinite(node.pos.x) || !std::isfinite(node.pos.y)) return std::nullopt;
      tree.nodes.push_back(node);
    }
    tree.edges.reserve(edges);
    for (std::size_t e = 0; e < edges; ++e) {
      SteinerEdge edge;
      if (!(in >> edge.a >> edge.b)) return std::nullopt;
      if (edge.a < 0 || edge.b < 0 || edge.a >= static_cast<int>(nodes) ||
          edge.b >= static_cast<int>(nodes)) {
        return std::nullopt;
      }
      tree.edges.push_back(edge);
    }
    if (!tree.is_valid_tree()) return std::nullopt;
    f.net_to_tree[static_cast<std::size_t>(net)] = static_cast<int>(f.trees.size());
    f.trees.push_back(std::move(tree));
  }
  f.build_movable_index();
  return f;
}

std::optional<SteinerForest> read_forest_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  return read_forest(in);
}

}  // namespace tsteiner
