#include "autodiff/tape.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "util/parallel.hpp"

namespace tsteiner {

namespace {

// Parallelization policy for the dense kernels. Every loop below writes
// disjoint slots per parallel index (rows for matmul/gather, columns for
// scatter-style accumulation), and within each slot iterates in the same
// order as the serial code — so results are bit-identical for any pool
// width. Scalar whole-tensor folds (sum_all, log_sum_exp, mse) stay serial:
// they are O(n) with a tiny constant and exact parity with the historical
// element order matters more than their share of the runtime.

/// Elements per chunk for pointwise map kernels.
constexpr std::size_t kPointwiseGrain = 4096;

/// Rows per chunk for row-parallel kernels, targeting ~8k inner ops/chunk.
std::size_t row_grain(std::size_t work_per_row) {
  return std::max<std::size_t>(1, 8192 / std::max<std::size_t>(1, work_per_row));
}

template <class Fn>
void pointwise(std::size_t n, Fn&& fn) {
  parallel_for(0, n, kPointwiseGrain, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) fn(i);
  });
}

/// Gradient accumulation dst[k] += expr(k). `fresh` marks a logically-zero
/// first-touch destination: that path writes `0.0 + expr(k)` without reading
/// dst — bit-identical to accumulating onto an explicitly zeroed buffer
/// (signed zeros normalize the same way under strict IEEE). The loops are
/// split so neither carries a per-element branch.
template <class Expr>
void accumulate_pointwise(bool fresh, Tensor& dst, std::size_t n, Expr&& expr) {
  if (fresh) {
    pointwise(n, [&](std::size_t k) { dst[k] = 0.0 + expr(k); });
  } else {
    pointwise(n, [&](std::size_t k) { dst[k] += expr(k); });
  }
}

}  // namespace

Value Tape::leaf(Tensor value, bool requires_grad) {
  check_recordable();
  Node n;
  n.value = std::move(value);
  n.requires_grad = requires_grad;
  nodes_.push_back(std::move(n));
  ops_.push_back(OpRecord{});  // OpCode::kLeaf
  ++allocations_;              // the moved-in buffer joins the arena
  return Value{static_cast<int>(nodes_.size()) - 1};
}

Value Tape::push(std::size_t rows, std::size_t cols, OpRecord op) {
  check_recordable();
  Node n;
  n.value = Tensor(rows, cols);
  ++allocations_;
  nodes_.push_back(std::move(n));
  ops_.push_back(std::move(op));
  const Value v{static_cast<int>(nodes_.size()) - 1};
  run_forward(static_cast<std::size_t>(v.id));
  return v;
}

void Tape::check_recordable() const {
  if (frozen_) {
    throw std::runtime_error(
        "Tape: frozen by TapeProgram::finalize — recording requires a new program");
  }
}

const Tensor& Tape::value(Value v) const {
  return nodes_[static_cast<std::size_t>(v.id)].value;
}

const Tensor& Tape::grad(Value v) const {
  const Node& n = nodes_[static_cast<std::size_t>(v.id)];
  static const Tensor kEmpty;
  return n.grad.size() == n.value.size() ? n.grad : kEmpty;
}

void Tape::ensure_grad(Value v) {
  Node& n = nodes_[static_cast<std::size_t>(v.id)];
  if (n.grad.size() != n.value.size()) {
    n.grad = Tensor::zeros(n.value.rows(), n.value.cols());
    ++allocations_;
  }
}

void Tape::reserve(std::size_t num_nodes) {
  nodes_.reserve(num_nodes);
  ops_.reserve(num_nodes);
}

Tape::Stats Tape::stats() const {
  Stats s;
  s.num_nodes = nodes_.size();
  s.allocations = allocations_;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (ops_[i].code == OpCode::kLeaf) ++s.num_leaves;
    s.value_doubles += nodes_[i].value.size();
    s.grad_doubles += nodes_[i].grad.size();
  }
  return s;
}

bool Tape::set_leaf(Value v, const Tensor& t) {
  Node& n = nodes_[static_cast<std::size_t>(v.id)];
  if (ops_[static_cast<std::size_t>(v.id)].code != OpCode::kLeaf) {
    throw std::runtime_error("set_leaf: node is not a leaf");
  }
  if (!n.value.same_shape(t)) {
    throw std::runtime_error(
        "set_leaf: shape mismatch — graph topology changed, re-record the program");
  }
  if (t.size() != 0 && std::memcmp(n.value.data().data(), t.data().data(),
                                   t.size() * sizeof(double)) == 0) {
    return false;
  }
  std::copy(t.data().begin(), t.data().end(), n.value.data().begin());
  return true;
}

bool Tape::set_leaf(Value v, const std::vector<double>& column) {
  Node& n = nodes_[static_cast<std::size_t>(v.id)];
  if (ops_[static_cast<std::size_t>(v.id)].code != OpCode::kLeaf) {
    throw std::runtime_error("set_leaf: node is not a leaf");
  }
  if (n.value.rows() != column.size() || n.value.cols() != 1) {
    throw std::runtime_error(
        "set_leaf: shape mismatch — graph topology changed, re-record the program");
  }
  if (!column.empty() && std::memcmp(n.value.data().data(), column.data(),
                                     column.size() * sizeof(double)) == 0) {
    return false;
  }
  std::copy(column.begin(), column.end(), n.value.data().begin());
  return true;
}

// --- op builders: validate shapes, append a record, execute it eagerly -----

Value Tape::add(Value a, Value b) {
  const Tensor& ta = value(a);
  const Tensor& tb = value(b);
  OpRecord op;
  op.a = a.id;
  op.b = b.id;
  if (tb.same_shape(ta)) {
    op.code = OpCode::kAdd;
  } else if (tb.rows() == 1 && tb.cols() == ta.cols()) {
    op.code = OpCode::kAddBroadcast;
  } else {
    throw std::runtime_error("add: incompatible shapes");
  }
  const std::size_t rows = ta.rows(), cols = ta.cols();
  return push(rows, cols, std::move(op));
}

Value Tape::sub(Value a, Value b) {
  const Tensor& ta = value(a);
  if (!ta.same_shape(value(b))) throw std::runtime_error("sub: shape mismatch");
  OpRecord op;
  op.code = OpCode::kSub;
  op.a = a.id;
  op.b = b.id;
  const std::size_t rows = ta.rows(), cols = ta.cols();
  return push(rows, cols, std::move(op));
}

Value Tape::mul(Value a, Value b) {
  const Tensor& ta = value(a);
  if (!ta.same_shape(value(b))) throw std::runtime_error("mul: shape mismatch");
  OpRecord op;
  op.code = OpCode::kMul;
  op.a = a.id;
  op.b = b.id;
  const std::size_t rows = ta.rows(), cols = ta.cols();
  return push(rows, cols, std::move(op));
}

Value Tape::scale(Value a, double s) {
  const Tensor& ta = value(a);
  OpRecord op;
  op.code = OpCode::kScale;
  op.a = a.id;
  op.s0 = s;
  const std::size_t rows = ta.rows(), cols = ta.cols();
  return push(rows, cols, std::move(op));
}

Value Tape::add_scalar(Value a, double s) {
  const Tensor& ta = value(a);
  OpRecord op;
  op.code = OpCode::kAddScalar;
  op.a = a.id;
  op.s0 = s;
  const std::size_t rows = ta.rows(), cols = ta.cols();
  return push(rows, cols, std::move(op));
}

Value Tape::matmul(Value a, Value b) {
  const Tensor& ta = value(a);
  const Tensor& tb = value(b);
  if (ta.cols() != tb.rows()) throw std::runtime_error("matmul: inner dims differ");
  OpRecord op;
  op.code = OpCode::kMatmul;
  op.a = a.id;
  op.b = b.id;
  const std::size_t rows = ta.rows(), cols = tb.cols();
  return push(rows, cols, std::move(op));
}

Value Tape::relu(Value a) {
  const Tensor& ta = value(a);
  OpRecord op;
  op.code = OpCode::kRelu;
  op.a = a.id;
  const std::size_t rows = ta.rows(), cols = ta.cols();
  return push(rows, cols, std::move(op));
}

Value Tape::tanh_op(Value a) {
  const Tensor& ta = value(a);
  OpRecord op;
  op.code = OpCode::kTanh;
  op.a = a.id;
  const std::size_t rows = ta.rows(), cols = ta.cols();
  return push(rows, cols, std::move(op));
}

Value Tape::sigmoid(Value a) {
  const Tensor& ta = value(a);
  OpRecord op;
  op.code = OpCode::kSigmoid;
  op.a = a.id;
  const std::size_t rows = ta.rows(), cols = ta.cols();
  return push(rows, cols, std::move(op));
}

Value Tape::abs_op(Value a) {
  const Tensor& ta = value(a);
  OpRecord op;
  op.code = OpCode::kAbs;
  op.a = a.id;
  const std::size_t rows = ta.rows(), cols = ta.cols();
  return push(rows, cols, std::move(op));
}

Value Tape::smooth_abs(Value a, double delta) {
  if (delta <= 0.0) return abs_op(a);
  const Tensor& ta = value(a);
  OpRecord op;
  op.code = OpCode::kSmoothAbs;
  op.a = a.id;
  op.s0 = delta;
  const std::size_t rows = ta.rows(), cols = ta.cols();
  return push(rows, cols, std::move(op));
}

Value Tape::softplus(Value a) {
  const Tensor& ta = value(a);
  OpRecord op;
  op.code = OpCode::kSoftplus;
  op.a = a.id;
  const std::size_t rows = ta.rows(), cols = ta.cols();
  return push(rows, cols, std::move(op));
}

Value Tape::concat_cols(const std::vector<Value>& parts) {
  if (parts.empty()) throw std::runtime_error("concat_cols: empty");
  const std::size_t rows = value(parts[0]).rows();
  std::size_t cols = 0;
  for (Value p : parts) {
    if (value(p).rows() != rows) throw std::runtime_error("concat_cols: row mismatch");
    cols += value(p).cols();
  }
  OpRecord op;
  op.code = OpCode::kConcatCols;
  op.inputs.reserve(parts.size());
  for (Value p : parts) op.inputs.push_back(p.id);
  return push(rows, cols, std::move(op));
}

Value Tape::gather_rows(Value a, std::vector<int> indices) {
  const Tensor& ta = value(a);
  OpRecord op;
  op.code = OpCode::kGatherRows;
  op.a = a.id;
  op.indices = std::move(indices);
  const std::size_t rows = op.indices.size(), cols = ta.cols();
  return push(rows, cols, std::move(op));
}

Value Tape::scatter_add_rows(Value a, std::vector<int> indices, std::size_t out_rows) {
  const Tensor& ta = value(a);
  if (indices.size() != ta.rows()) throw std::runtime_error("scatter_add: index count");
  OpRecord op;
  op.code = OpCode::kScatterAddRows;
  op.a = a.id;
  op.indices = std::move(indices);
  op.dim0 = out_rows;
  const std::size_t cols = ta.cols();
  return push(out_rows, cols, std::move(op));
}

Value Tape::segment_max(Value a, std::vector<int> segments, std::size_t num_segments,
                        double empty_fill) {
  const Tensor& ta = value(a);
  if (segments.size() != ta.rows()) throw std::runtime_error("segment_max: index count");
  OpRecord op;
  op.code = OpCode::kSegmentMax;
  op.a = a.id;
  op.indices = std::move(segments);
  op.dim0 = num_segments;
  op.s0 = empty_fill;
  const std::size_t cols = ta.cols();
  return push(num_segments, cols, std::move(op));
}

Value Tape::segment_sum(Value a, std::vector<int> segments, std::size_t num_segments) {
  return scatter_add_rows(a, std::move(segments), num_segments);
}

Value Tape::sum_all(Value a) {
  OpRecord op;
  op.code = OpCode::kSumAll;
  op.a = a.id;
  return push(1, 1, std::move(op));
}

Value Tape::mean_all(Value a) {
  const auto n = static_cast<double>(value(a).size());
  return scale(sum_all(a), 1.0 / n);
}

Value Tape::log_sum_exp(Value a, double gamma) {
  if (gamma <= 0.0) throw std::runtime_error("log_sum_exp: gamma must be positive");
  if (value(a).size() == 0) throw std::runtime_error("log_sum_exp: empty input");
  OpRecord op;
  op.code = OpCode::kLogSumExp;
  op.a = a.id;
  op.s0 = gamma;
  return push(1, 1, std::move(op));
}

Value Tape::soft_min0(Value a, double gamma) {
  if (gamma <= 0.0) throw std::runtime_error("soft_min0: gamma must be positive");
  const Tensor& ta = value(a);
  OpRecord op;
  op.code = OpCode::kSoftMin0;
  op.a = a.id;
  op.s0 = gamma;
  const std::size_t rows = ta.rows(), cols = ta.cols();
  return push(rows, cols, std::move(op));
}

Value Tape::mse(Value prediction, const Tensor& target) {
  if (!value(prediction).same_shape(target)) throw std::runtime_error("mse: shape mismatch");
  OpRecord op;
  op.code = OpCode::kMse;
  op.a = prediction.id;
  op.constant = target;
  return push(1, 1, std::move(op));
}

// --- forward executor ------------------------------------------------------
//
// One kernel per opcode, shared by eager recording and TapeProgram replay:
// whatever path triggers the execution, the arithmetic, iteration order and
// parallel chunking are the same, so results are bit-identical.

void Tape::run_forward(std::size_t i) {
  OpRecord& r = ops_[i];
  Tensor& vo = nodes_[i].value;
  switch (r.code) {
    case OpCode::kLeaf:
      return;
    case OpCode::kAdd: {
      const Tensor& ta = nodes_[static_cast<std::size_t>(r.a)].value;
      const Tensor& tb = nodes_[static_cast<std::size_t>(r.b)].value;
      pointwise(vo.size(), [&](std::size_t k) { vo[k] = ta[k] + tb[k]; });
      return;
    }
    case OpCode::kAddBroadcast: {
      const Tensor& ta = nodes_[static_cast<std::size_t>(r.a)].value;
      const Tensor& tb = nodes_[static_cast<std::size_t>(r.b)].value;
      parallel_for(0, ta.rows(), row_grain(ta.cols()), [&](std::size_t lo, std::size_t hi) {
        for (std::size_t row = lo; row < hi; ++row) {
          for (std::size_t c = 0; c < ta.cols(); ++c) vo.at(row, c) = ta.at(row, c) + tb.at(0, c);
        }
      });
      return;
    }
    case OpCode::kSub: {
      const Tensor& ta = nodes_[static_cast<std::size_t>(r.a)].value;
      const Tensor& tb = nodes_[static_cast<std::size_t>(r.b)].value;
      pointwise(vo.size(), [&](std::size_t k) { vo[k] = ta[k] - tb[k]; });
      return;
    }
    case OpCode::kMul: {
      const Tensor& ta = nodes_[static_cast<std::size_t>(r.a)].value;
      const Tensor& tb = nodes_[static_cast<std::size_t>(r.b)].value;
      pointwise(vo.size(), [&](std::size_t k) { vo[k] = ta[k] * tb[k]; });
      return;
    }
    case OpCode::kScale: {
      const Tensor& ta = nodes_[static_cast<std::size_t>(r.a)].value;
      const double s = r.s0;
      pointwise(vo.size(), [&](std::size_t k) { vo[k] = ta[k] * s; });
      return;
    }
    case OpCode::kAddScalar: {
      const Tensor& ta = nodes_[static_cast<std::size_t>(r.a)].value;
      const double s = r.s0;
      pointwise(vo.size(), [&](std::size_t k) { vo[k] = ta[k] + s; });
      return;
    }
    case OpCode::kMatmul: {
      const Tensor& ta = nodes_[static_cast<std::size_t>(r.a)].value;
      const Tensor& tb = nodes_[static_cast<std::size_t>(r.b)].value;
      std::fill(vo.data().begin(), vo.data().end(), 0.0);
      parallel_for(0, ta.rows(), row_grain(ta.cols() * tb.cols()),
                   [&](std::size_t lo, std::size_t hi) {
                     for (std::size_t row = lo; row < hi; ++row) {
                       for (std::size_t k = 0; k < ta.cols(); ++k) {
                         const double av = ta.at(row, k);
                         if (av == 0.0) continue;
                         for (std::size_t c = 0; c < tb.cols(); ++c) {
                           vo.at(row, c) += av * tb.at(k, c);
                         }
                       }
                     }
                   });
      return;
    }
    case OpCode::kRelu: {
      const Tensor& ta = nodes_[static_cast<std::size_t>(r.a)].value;
      pointwise(vo.size(), [&](std::size_t k) { vo[k] = std::max(0.0, ta[k]); });
      return;
    }
    case OpCode::kTanh: {
      const Tensor& ta = nodes_[static_cast<std::size_t>(r.a)].value;
      pointwise(vo.size(), [&](std::size_t k) { vo[k] = std::tanh(ta[k]); });
      return;
    }
    case OpCode::kSigmoid: {
      const Tensor& ta = nodes_[static_cast<std::size_t>(r.a)].value;
      pointwise(vo.size(), [&](std::size_t k) { vo[k] = 1.0 / (1.0 + std::exp(-ta[k])); });
      return;
    }
    case OpCode::kAbs: {
      const Tensor& ta = nodes_[static_cast<std::size_t>(r.a)].value;
      pointwise(vo.size(), [&](std::size_t k) { vo[k] = std::fabs(ta[k]); });
      return;
    }
    case OpCode::kSmoothAbs: {
      const Tensor& ta = nodes_[static_cast<std::size_t>(r.a)].value;
      const double delta = r.s0;
      pointwise(vo.size(), [&](std::size_t k) {
        const double x = ta[k];
        vo[k] = std::sqrt(x * x + delta * delta) - delta;
      });
      return;
    }
    case OpCode::kSoftplus: {
      const Tensor& ta = nodes_[static_cast<std::size_t>(r.a)].value;
      pointwise(vo.size(), [&](std::size_t k) {
        const double x = ta[k];
        vo[k] = std::log1p(std::exp(-std::fabs(x))) + std::max(x, 0.0);
      });
      return;
    }
    case OpCode::kConcatCols: {
      std::size_t off = 0;
      for (int pid : r.inputs) {
        const Tensor& tp = nodes_[static_cast<std::size_t>(pid)].value;
        parallel_for(0, tp.rows(), row_grain(tp.cols()), [&](std::size_t lo, std::size_t hi) {
          for (std::size_t row = lo; row < hi; ++row) {
            for (std::size_t c = 0; c < tp.cols(); ++c) vo.at(row, off + c) = tp.at(row, c);
          }
        });
        off += tp.cols();
      }
      return;
    }
    case OpCode::kGatherRows: {
      const Tensor& ta = nodes_[static_cast<std::size_t>(r.a)].value;
      const std::vector<int>& idx = r.indices;
      parallel_for(0, idx.size(), row_grain(ta.cols()), [&](std::size_t lo, std::size_t hi) {
        for (std::size_t k = lo; k < hi; ++k) {
          const auto src = static_cast<std::size_t>(idx[k]);
          for (std::size_t c = 0; c < ta.cols(); ++c) vo.at(k, c) = ta.at(src, c);
        }
      });
      return;
    }
    case OpCode::kScatterAddRows: {
      const Tensor& ta = nodes_[static_cast<std::size_t>(r.a)].value;
      const std::vector<int>& idx = r.indices;
      std::fill(vo.data().begin(), vo.data().end(), 0.0);
      parallel_for(0, ta.cols(), 1, [&](std::size_t clo, std::size_t chi) {
        for (std::size_t k = 0; k < idx.size(); ++k) {
          const auto dst = static_cast<std::size_t>(idx[k]);
          for (std::size_t c = clo; c < chi; ++c) vo.at(dst, c) += ta.at(k, c);
        }
      });
      return;
    }
    case OpCode::kSegmentMax: {
      const Tensor& ta = nodes_[static_cast<std::size_t>(r.a)].value;
      const std::vector<int>& seg = r.indices;
      std::fill(vo.data().begin(), vo.data().end(), r.s0);
      const std::size_t scratch = r.dim0 * ta.cols();
      if (r.argmax.size() != scratch) {
        r.argmax.assign(scratch, -1);
        ++allocations_;
      } else {
        std::fill(r.argmax.begin(), r.argmax.end(), -1);
      }
      // argmax row per (segment, col) for the backward pass. Column-parallel:
      // each (s, c) cell is owned by exactly one column chunk, and rows are
      // visited in serial order, so ties resolve identically to the serial
      // code.
      std::vector<int>& am = r.argmax;
      parallel_for(0, ta.cols(), 1, [&](std::size_t clo, std::size_t chi) {
        for (std::size_t k = 0; k < seg.size(); ++k) {
          const auto s = static_cast<std::size_t>(seg[k]);
          for (std::size_t c = clo; c < chi; ++c) {
            const std::size_t cell = s * ta.cols() + c;
            if (am[cell] < 0 || ta.at(k, c) > vo.at(s, c)) {
              vo.at(s, c) = ta.at(k, c);
              am[cell] = static_cast<int>(k);
            }
          }
        }
      });
      return;
    }
    case OpCode::kSumAll: {
      const Tensor& ta = nodes_[static_cast<std::size_t>(r.a)].value;
      double s = 0.0;
      for (double x : ta.data()) s += x;
      vo[0] = s;
      return;
    }
    case OpCode::kLogSumExp: {
      const Tensor& ta = nodes_[static_cast<std::size_t>(r.a)].value;
      const double gamma = r.s0;
      double m = ta[0];
      for (double x : ta.data()) m = std::max(m, x);
      double z = 0.0;
      for (double x : ta.data()) z += std::exp((x - m) / gamma);
      vo[0] = m + gamma * std::log(z);
      r.m = m;
      r.z = z;
      return;
    }
    case OpCode::kSoftMin0: {
      const Tensor& ta = nodes_[static_cast<std::size_t>(r.a)].value;
      const double gamma = r.s0;
      pointwise(vo.size(), [&](std::size_t k) {
        const double t = -ta[k] / gamma;
        // -gamma * softplus(-x/gamma), with stable softplus.
        const double sp = std::log1p(std::exp(-std::fabs(t))) + std::max(t, 0.0);
        vo[k] = -gamma * sp;
      });
      return;
    }
    case OpCode::kMse: {
      const Tensor& ta = nodes_[static_cast<std::size_t>(r.a)].value;
      double s = 0.0;
      for (std::size_t k = 0; k < ta.size(); ++k) {
        const double d = ta[k] - r.constant[k];
        s += d * d;
      }
      vo[0] = s / static_cast<double>(ta.size());
      return;
    }
  }
}

// --- backward executor -----------------------------------------------------

void Tape::run_backward(std::size_t i, const std::vector<std::uint8_t>* need,
                        const std::vector<std::uint8_t>* fresh, int grad_from) {
  const OpRecord& r = ops_[i];
  const auto needed = [need](int id) {
    return need == nullptr || (*need)[static_cast<std::size_t>(id)] != 0;
  };
  // First accumulation into a logically-zero slot: write `0.0 + x` without
  // reading the destination. The literal 0.0 term keeps the result
  // bit-identical to zero-then-accumulate (signed zeros normalize the same
  // way); strict IEEE semantics (no -ffast-math) keep it from folding away.
  const auto fresh_dst = [fresh](int id) {
    return fresh != nullptr && (*fresh)[static_cast<std::size_t>(id)] != 0;
  };
  const Tensor& g = nodes_[grad_from < 0 ? i : static_cast<std::size_t>(grad_from)].grad;
  const Value va_v{r.a};
  const Value vb_v{r.b};
  switch (r.code) {
    case OpCode::kLeaf:
      return;
    case OpCode::kAdd: {
      if (needed(r.a)) {
        ensure_grad(va_v);
        Tensor& ga = grad_ref(va_v);
        accumulate_pointwise(fresh_dst(r.a), ga, g.size(),
                             [&](std::size_t k) { return g[k]; });
      }
      if (needed(r.b)) {
        ensure_grad(vb_v);
        Tensor& gb = grad_ref(vb_v);
        accumulate_pointwise(fresh_dst(r.b), gb, g.size(),
                             [&](std::size_t k) { return g[k]; });
      }
      return;
    }
    case OpCode::kAddBroadcast: {
      if (needed(r.a)) {
        ensure_grad(va_v);
        Tensor& ga = grad_ref(va_v);
        accumulate_pointwise(fresh_dst(r.a), ga, g.size(),
                             [&](std::size_t k) { return g[k]; });
      }
      if (needed(r.b)) {
        ensure_grad(vb_v);
        Tensor& gb = grad_ref(vb_v);
        const bool fb = fresh_dst(r.b);
        // Column-parallel so each gb slot accumulates rows in serial order.
        parallel_for(0, g.cols(), 1, [&](std::size_t clo, std::size_t chi) {
          for (std::size_t c = clo; c < chi; ++c) {
            if (fb) gb.at(0, c) = 0.0;
            for (std::size_t row = 0; row < g.rows(); ++row) gb.at(0, c) += g.at(row, c);
          }
        });
      }
      return;
    }
    case OpCode::kSub: {
      const bool na = needed(r.a), nb = needed(r.b);
      if (na) ensure_grad(va_v);
      if (nb) ensure_grad(vb_v);
      if (na) {
        Tensor& ga = grad_ref(va_v);
        accumulate_pointwise(fresh_dst(r.a), ga, g.size(),
                             [&](std::size_t k) { return g[k]; });
      }
      if (nb) {
        // x - y == x + (-y) exactly, so the shared accumulate helper applies.
        Tensor& gb = grad_ref(vb_v);
        accumulate_pointwise(fresh_dst(r.b), gb, g.size(),
                             [&](std::size_t k) { return -g[k]; });
      }
      return;
    }
    case OpCode::kMul: {
      const bool na = needed(r.a), nb = needed(r.b);
      if (na) ensure_grad(va_v);
      if (nb) ensure_grad(vb_v);
      const Tensor& ta = nodes_[static_cast<std::size_t>(r.a)].value;
      const Tensor& tb = nodes_[static_cast<std::size_t>(r.b)].value;
      if (na) {
        Tensor& ga = grad_ref(va_v);
        accumulate_pointwise(fresh_dst(r.a), ga, g.size(),
                             [&](std::size_t k) { return g[k] * tb[k]; });
      }
      if (nb) {
        Tensor& gb = grad_ref(vb_v);
        accumulate_pointwise(fresh_dst(r.b), gb, g.size(),
                             [&](std::size_t k) { return g[k] * ta[k]; });
      }
      return;
    }
    case OpCode::kScale: {
      if (!needed(r.a)) return;
      ensure_grad(va_v);
      Tensor& ga = grad_ref(va_v);
      const double s = r.s0;
      accumulate_pointwise(fresh_dst(r.a), ga, g.size(),
                           [&](std::size_t k) { return g[k] * s; });
      return;
    }
    case OpCode::kAddScalar: {
      if (!needed(r.a)) return;
      ensure_grad(va_v);
      Tensor& ga = grad_ref(va_v);
      accumulate_pointwise(fresh_dst(r.a), ga, g.size(),
                           [&](std::size_t k) { return g[k]; });
      return;
    }
    case OpCode::kMatmul: {
      const Tensor& ta = nodes_[static_cast<std::size_t>(r.a)].value;
      const Tensor& tb = nodes_[static_cast<std::size_t>(r.b)].value;
      if (needed(r.a)) {
        ensure_grad(va_v);
        Tensor& ga = grad_ref(va_v);
        const bool fa = fresh_dst(r.a);
        // dA = dOut * B^T, row-parallel over A's rows. Four independent
        // accumulator chains keep the dot off the FP-add latency chain; the
        // combine order is fixed, so the result is deterministic (and
        // identical at every thread width — chunking is by row).
        const std::size_t nc = tb.cols();
        parallel_for(0, ta.rows(), row_grain(ta.cols() * nc),
                     [&](std::size_t lo, std::size_t hi) {
                       for (std::size_t row = lo; row < hi; ++row) {
                         const double* gr = g.data().data() + row * nc;
                         for (std::size_t k = 0; k < ta.cols(); ++k) {
                           const double* br = tb.data().data() + k * nc;
                           double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
                           std::size_t c = 0;
                           for (; c + 4 <= nc; c += 4) {
                             s0 += gr[c] * br[c];
                             s1 += gr[c + 1] * br[c + 1];
                             s2 += gr[c + 2] * br[c + 2];
                             s3 += gr[c + 3] * br[c + 3];
                           }
                           double s = (s0 + s1) + (s2 + s3);
                           for (; c < nc; ++c) s += gr[c] * br[c];
                           ga.at(row, k) = (fa ? 0.0 : ga.at(row, k)) + s;
                         }
                       }
                     });
      }
      if (needed(r.b)) {
        ensure_grad(vb_v);
        Tensor& gb = grad_ref(vb_v);
        const bool fb = fresh_dst(r.b);
        // dB = A^T * dOut, row-parallel over B's rows.
        parallel_for(0, tb.rows(), row_grain(ta.rows() * tb.cols()),
                     [&](std::size_t lo, std::size_t hi) {
                       for (std::size_t k = lo; k < hi; ++k) {
                         for (std::size_t c = 0; c < tb.cols(); ++c) {
                           double s = 0.0;
                           for (std::size_t row = 0; row < ta.rows(); ++row) {
                             s += ta.at(row, k) * g.at(row, c);
                           }
                           gb.at(k, c) = (fb ? 0.0 : gb.at(k, c)) + s;
                         }
                       }
                     });
      }
      return;
    }
    case OpCode::kRelu: {
      if (!needed(r.a)) return;
      ensure_grad(va_v);
      const Tensor& ta = nodes_[static_cast<std::size_t>(r.a)].value;
      Tensor& ga = grad_ref(va_v);
      pointwise(g.size(), [&](std::size_t k) {
        if (ta[k] > 0.0) ga[k] += g[k];
      });
      return;
    }
    case OpCode::kTanh: {
      if (!needed(r.a)) return;
      ensure_grad(va_v);
      const Tensor& vo = nodes_[i].value;
      Tensor& ga = grad_ref(va_v);
      accumulate_pointwise(fresh_dst(r.a), ga, g.size(),
                           [&](std::size_t k) { return g[k] * (1.0 - vo[k] * vo[k]); });
      return;
    }
    case OpCode::kSigmoid: {
      if (!needed(r.a)) return;
      ensure_grad(va_v);
      const Tensor& vo = nodes_[i].value;
      Tensor& ga = grad_ref(va_v);
      accumulate_pointwise(fresh_dst(r.a), ga, g.size(),
                           [&](std::size_t k) { return g[k] * vo[k] * (1.0 - vo[k]); });
      return;
    }
    case OpCode::kAbs: {
      if (!needed(r.a)) return;
      ensure_grad(va_v);
      const Tensor& ta = nodes_[static_cast<std::size_t>(r.a)].value;
      Tensor& ga = grad_ref(va_v);
      accumulate_pointwise(fresh_dst(r.a), ga, g.size(), [&](std::size_t k) {
        const double sgn = ta[k] > 0.0 ? 1.0 : (ta[k] < 0.0 ? -1.0 : 0.0);
        return g[k] * sgn;
      });
      return;
    }
    case OpCode::kSmoothAbs: {
      if (!needed(r.a)) return;
      ensure_grad(va_v);
      const Tensor& ta = nodes_[static_cast<std::size_t>(r.a)].value;
      Tensor& ga = grad_ref(va_v);
      const double delta = r.s0;
      accumulate_pointwise(fresh_dst(r.a), ga, g.size(), [&](std::size_t k) {
        return g[k] * ta[k] / std::sqrt(ta[k] * ta[k] + delta * delta);
      });
      return;
    }
    case OpCode::kSoftplus: {
      if (!needed(r.a)) return;
      ensure_grad(va_v);
      const Tensor& ta = nodes_[static_cast<std::size_t>(r.a)].value;
      Tensor& ga = grad_ref(va_v);
      accumulate_pointwise(fresh_dst(r.a), ga, g.size(),
                           [&](std::size_t k) { return g[k] / (1.0 + std::exp(-ta[k])); });
      return;
    }
    case OpCode::kConcatCols: {
      std::size_t off = 0;
      for (int pid : r.inputs) {
        const Value p{pid};
        const std::size_t pcols = nodes_[static_cast<std::size_t>(pid)].value.cols();
        if (needed(pid)) {
          ensure_grad(p);
          Tensor& gp = grad_ref(p);
          const bool fp = fresh_dst(pid);
          parallel_for(0, gp.rows(), row_grain(pcols), [&](std::size_t lo, std::size_t hi) {
            for (std::size_t row = lo; row < hi; ++row) {
              for (std::size_t c = 0; c < pcols; ++c) {
                gp.at(row, c) = (fp ? 0.0 : gp.at(row, c)) + g.at(row, off + c);
              }
            }
          });
        }
        off += pcols;
      }
      return;
    }
    case OpCode::kGatherRows: {
      if (!needed(r.a)) return;
      ensure_grad(va_v);
      Tensor& ga = grad_ref(va_v);
      const std::vector<int>& idx = r.indices;
      // Scatter with repeats: column-parallel, rows in serial order per
      // column, so each destination accumulates in the same order as the
      // serial code.
      parallel_for(0, g.cols(), 1, [&](std::size_t clo, std::size_t chi) {
        for (std::size_t k = 0; k < idx.size(); ++k) {
          const auto dst = static_cast<std::size_t>(idx[k]);
          for (std::size_t c = clo; c < chi; ++c) ga.at(dst, c) += g.at(k, c);
        }
      });
      return;
    }
    case OpCode::kScatterAddRows: {
      if (!needed(r.a)) return;
      ensure_grad(va_v);
      Tensor& ga = grad_ref(va_v);
      const std::vector<int>& idx = r.indices;
      const bool fa = fresh_dst(r.a);
      // Gather semantics: row-parallel, each output row touched once.
      parallel_for(0, idx.size(), row_grain(g.cols()), [&](std::size_t lo, std::size_t hi) {
        for (std::size_t k = lo; k < hi; ++k) {
          const auto src = static_cast<std::size_t>(idx[k]);
          for (std::size_t c = 0; c < g.cols(); ++c) {
            ga.at(k, c) = (fa ? 0.0 : ga.at(k, c)) + g.at(src, c);
          }
        }
      });
      return;
    }
    case OpCode::kSegmentMax: {
      if (!needed(r.a)) return;
      ensure_grad(va_v);
      Tensor& ga = grad_ref(va_v);
      const std::vector<int>& am = r.argmax;
      // Each argmax row belongs to exactly one segment, so distinct (s, c)
      // write distinct ga cells: segment-row-parallel is race-free.
      parallel_for(0, g.rows(), row_grain(g.cols()), [&](std::size_t lo, std::size_t hi) {
        for (std::size_t s = lo; s < hi; ++s) {
          for (std::size_t c = 0; c < g.cols(); ++c) {
            const int k = am[s * g.cols() + c];
            if (k >= 0) ga.at(static_cast<std::size_t>(k), c) += g.at(s, c);
          }
        }
      });
      return;
    }
    case OpCode::kSumAll: {
      if (!needed(r.a)) return;
      ensure_grad(va_v);
      const double g0 = g[0];
      Tensor& ga = grad_ref(va_v);
      accumulate_pointwise(fresh_dst(r.a), ga, ga.size(), [&](std::size_t) { return g0; });
      return;
    }
    case OpCode::kLogSumExp: {
      if (!needed(r.a)) return;
      ensure_grad(va_v);
      const double g0 = g[0];
      const Tensor& ta = nodes_[static_cast<std::size_t>(r.a)].value;
      Tensor& ga = grad_ref(va_v);
      const double gamma = r.s0, m = r.m, z = r.z;
      accumulate_pointwise(fresh_dst(r.a), ga, ta.size(), [&](std::size_t k) {
        return g0 * std::exp((ta[k] - m) / gamma) / z;  // softmax weights
      });
      return;
    }
    case OpCode::kSoftMin0: {
      if (!needed(r.a)) return;
      ensure_grad(va_v);
      const Tensor& ta = nodes_[static_cast<std::size_t>(r.a)].value;
      Tensor& ga = grad_ref(va_v);
      const double gamma = r.s0;
      accumulate_pointwise(fresh_dst(r.a), ga, g.size(), [&](std::size_t k) {
        const double sig = 1.0 / (1.0 + std::exp(ta[k] / gamma));  // d/dx = sigma(-x/gamma)
        return g[k] * sig;
      });
      return;
    }
    case OpCode::kMse: {
      if (!needed(r.a)) return;
      ensure_grad(va_v);
      const double g0 = g[0];
      const Tensor& ta = nodes_[static_cast<std::size_t>(r.a)].value;
      const Tensor& target = r.constant;
      Tensor& ga = grad_ref(va_v);
      const double k2 = 2.0 / static_cast<double>(ta.size());
      accumulate_pointwise(fresh_dst(r.a), ga, ta.size(),
                           [&](std::size_t k) { return g0 * k2 * (ta[k] - target[k]); });
      return;
    }
  }
}

void Tape::append_inputs(std::size_t i, std::vector<int>& out) const {
  const OpRecord& r = ops_[i];
  if (r.code == OpCode::kLeaf) return;
  if (r.code == OpCode::kConcatCols) {
    out.insert(out.end(), r.inputs.begin(), r.inputs.end());
    return;
  }
  if (r.a >= 0) out.push_back(r.a);
  if (r.b >= 0) out.push_back(r.b);
}

bool Tape::grad_nonzero(std::size_t i) const {
  for (double g : nodes_[i].grad.data()) {
    if (g != 0.0) return true;
  }
  return false;
}

void Tape::reset_grad(std::size_t i) {
  Node& n = nodes_[i];
  if (n.grad.size() != n.value.size()) {
    n.grad = Tensor::zeros(n.value.rows(), n.value.cols());
    ++allocations_;
  } else {
    std::fill(n.grad.data().begin(), n.grad.data().end(), 0.0);
  }
}

void Tape::backward(Value root) {
  Node& r = nodes_[static_cast<std::size_t>(root.id)];
  if (r.value.size() != 1) throw std::runtime_error("backward: root must be scalar");
  for (std::size_t i = 0; i < nodes_.size(); ++i) reset_grad(i);
  grad_ref(root)[0] = 1.0;
  // Node order stays sequential (the tape is a dependency chain); each
  // node's backward kernel parallelizes internally.
  for (int i = root.id; i >= 0; --i) {
    const auto idx = static_cast<std::size_t>(i);
    if (is_leaf(idx)) continue;
    if (grad_nonzero(idx)) run_backward(idx, nullptr);
  }
}

double numeric_gradient(const std::function<double(const Tensor&)>& f, const Tensor& at,
                        std::size_t index, double eps) {
  Tensor plus = at;
  Tensor minus = at;
  plus[index] += eps;
  minus[index] -= eps;
  return (f(plus) - f(minus)) / (2.0 * eps);
}

}  // namespace tsteiner
