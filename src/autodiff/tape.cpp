#include "autodiff/tape.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/parallel.hpp"

namespace tsteiner {

namespace {

// Parallelization policy for the dense kernels. Every loop below writes
// disjoint slots per parallel index (rows for matmul/gather, columns for
// scatter-style accumulation), and within each slot iterates in the same
// order as the serial code — so results are bit-identical for any pool
// width. Scalar whole-tensor folds (sum_all, log_sum_exp, mse) stay serial:
// they are O(n) with a tiny constant and exact parity with the historical
// element order matters more than their share of the runtime.

/// Elements per chunk for pointwise map kernels.
constexpr std::size_t kPointwiseGrain = 4096;

/// Rows per chunk for row-parallel kernels, targeting ~8k inner ops/chunk.
std::size_t row_grain(std::size_t work_per_row) {
  return std::max<std::size_t>(1, 8192 / std::max<std::size_t>(1, work_per_row));
}

template <class Fn>
void pointwise(std::size_t n, Fn&& fn) {
  parallel_for(0, n, kPointwiseGrain, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) fn(i);
  });
}

}  // namespace

Value Tape::leaf(Tensor value, bool requires_grad) {
  Node n;
  n.value = std::move(value);
  n.requires_grad = requires_grad;
  nodes_.push_back(std::move(n));
  return Value{static_cast<int>(nodes_.size()) - 1};
}

Value Tape::make(Tensor value, std::function<void(Tape&)> backward_fn) {
  Node n;
  n.value = std::move(value);
  n.backward_fn = std::move(backward_fn);
  nodes_.push_back(std::move(n));
  return Value{static_cast<int>(nodes_.size()) - 1};
}

const Tensor& Tape::value(Value v) const {
  return nodes_[static_cast<std::size_t>(v.id)].value;
}

const Tensor& Tape::grad(Value v) const {
  const Node& n = nodes_[static_cast<std::size_t>(v.id)];
  static const Tensor kEmpty;
  return n.grad.size() == n.value.size() ? n.grad : kEmpty;
}

void Tape::ensure_grad(Value v) {
  Node& n = nodes_[static_cast<std::size_t>(v.id)];
  if (n.grad.size() != n.value.size()) {
    n.grad = Tensor::zeros(n.value.rows(), n.value.cols());
  }
}

// Helper macros keep the op definitions compact: each op captures its input
// handles and whatever forward data the backward pass needs.

Value Tape::add(Value a, Value b) {
  const Tensor& ta = value(a);
  const Tensor& tb = value(b);
  Tensor out = ta;
  if (tb.same_shape(ta)) {
    pointwise(out.size(), [&](std::size_t i) { out[i] += tb[i]; });
  } else if (tb.rows() == 1 && tb.cols() == ta.cols()) {
    parallel_for(0, ta.rows(), row_grain(ta.cols()), [&](std::size_t lo, std::size_t hi) {
      for (std::size_t r = lo; r < hi; ++r) {
        for (std::size_t c = 0; c < ta.cols(); ++c) out.at(r, c) += tb.at(0, c);
      }
    });
  } else {
    throw std::runtime_error("add: incompatible shapes");
  }
  const bool broadcast = !tb.same_shape(ta);
  Value v = make(std::move(out), nullptr);
  nodes_[static_cast<std::size_t>(v.id)].backward_fn = [a, b, v, broadcast](Tape& t) {
    const Tensor& g = t.grad_ref(v);
    t.ensure_grad(a);
    t.ensure_grad(b);
    Tensor& ga = t.grad_ref(a);
    Tensor& gb = t.grad_ref(b);
    pointwise(g.size(), [&](std::size_t i) { ga[i] += g[i]; });
    if (!broadcast) {
      pointwise(g.size(), [&](std::size_t i) { gb[i] += g[i]; });
    } else {
      // Column-parallel so each gb slot accumulates rows in serial order.
      parallel_for(0, g.cols(), 1, [&](std::size_t clo, std::size_t chi) {
        for (std::size_t c = clo; c < chi; ++c) {
          for (std::size_t r = 0; r < g.rows(); ++r) gb.at(0, c) += g.at(r, c);
        }
      });
    }
  };
  return v;
}

Value Tape::sub(Value a, Value b) {
  const Tensor& ta = value(a);
  const Tensor& tb = value(b);
  if (!ta.same_shape(tb)) throw std::runtime_error("sub: shape mismatch");
  Tensor out = ta;
  pointwise(out.size(), [&](std::size_t i) { out[i] -= tb[i]; });
  Value v = make(std::move(out), nullptr);
  nodes_[static_cast<std::size_t>(v.id)].backward_fn = [a, b, v](Tape& t) {
    const Tensor& g = t.grad_ref(v);
    t.ensure_grad(a);
    t.ensure_grad(b);
    Tensor& ga = t.grad_ref(a);
    Tensor& gb = t.grad_ref(b);
    pointwise(g.size(), [&](std::size_t i) {
      ga[i] += g[i];
      gb[i] -= g[i];
    });
  };
  return v;
}

Value Tape::mul(Value a, Value b) {
  const Tensor& ta = value(a);
  const Tensor& tb = value(b);
  if (!ta.same_shape(tb)) throw std::runtime_error("mul: shape mismatch");
  Tensor out = ta;
  pointwise(out.size(), [&](std::size_t i) { out[i] *= tb[i]; });
  Value v = make(std::move(out), nullptr);
  nodes_[static_cast<std::size_t>(v.id)].backward_fn = [a, b, v](Tape& t) {
    const Tensor& g = t.grad_ref(v);
    t.ensure_grad(a);
    t.ensure_grad(b);
    const Tensor& va = t.value(a);
    const Tensor& vb = t.value(b);
    Tensor& ga = t.grad_ref(a);
    Tensor& gb = t.grad_ref(b);
    pointwise(g.size(), [&](std::size_t i) {
      ga[i] += g[i] * vb[i];
      gb[i] += g[i] * va[i];
    });
  };
  return v;
}

Value Tape::scale(Value a, double s) {
  Tensor out = value(a);
  pointwise(out.size(), [&](std::size_t i) { out[i] *= s; });
  Value v = make(std::move(out), nullptr);
  nodes_[static_cast<std::size_t>(v.id)].backward_fn = [a, v, s](Tape& t) {
    const Tensor& g = t.grad_ref(v);
    t.ensure_grad(a);
    Tensor& ga = t.grad_ref(a);
    pointwise(g.size(), [&](std::size_t i) { ga[i] += g[i] * s; });
  };
  return v;
}

Value Tape::add_scalar(Value a, double s) {
  Tensor out = value(a);
  pointwise(out.size(), [&](std::size_t i) { out[i] += s; });
  Value v = make(std::move(out), nullptr);
  nodes_[static_cast<std::size_t>(v.id)].backward_fn = [a, v](Tape& t) {
    const Tensor& g = t.grad_ref(v);
    t.ensure_grad(a);
    Tensor& ga = t.grad_ref(a);
    pointwise(g.size(), [&](std::size_t i) { ga[i] += g[i]; });
  };
  return v;
}

Value Tape::matmul(Value a, Value b) {
  const Tensor& ta = value(a);
  const Tensor& tb = value(b);
  if (ta.cols() != tb.rows()) throw std::runtime_error("matmul: inner dims differ");
  Tensor out(ta.rows(), tb.cols());
  parallel_for(0, ta.rows(), row_grain(ta.cols() * tb.cols()),
               [&](std::size_t lo, std::size_t hi) {
                 for (std::size_t r = lo; r < hi; ++r) {
                   for (std::size_t k = 0; k < ta.cols(); ++k) {
                     const double av = ta.at(r, k);
                     if (av == 0.0) continue;
                     for (std::size_t c = 0; c < tb.cols(); ++c) {
                       out.at(r, c) += av * tb.at(k, c);
                     }
                   }
                 }
               });
  Value v = make(std::move(out), nullptr);
  nodes_[static_cast<std::size_t>(v.id)].backward_fn = [a, b, v](Tape& t) {
    const Tensor& g = t.grad_ref(v);
    const Tensor& va = t.value(a);
    const Tensor& vb = t.value(b);
    t.ensure_grad(a);
    t.ensure_grad(b);
    Tensor& ga = t.grad_ref(a);
    Tensor& gb = t.grad_ref(b);
    // dA = dOut * B^T, row-parallel over A's rows.
    parallel_for(0, va.rows(), row_grain(va.cols() * vb.cols()),
                 [&](std::size_t lo, std::size_t hi) {
                   for (std::size_t r = lo; r < hi; ++r) {
                     for (std::size_t k = 0; k < va.cols(); ++k) {
                       double s = 0.0;
                       for (std::size_t c = 0; c < vb.cols(); ++c) {
                         s += g.at(r, c) * vb.at(k, c);
                       }
                       ga.at(r, k) += s;
                     }
                   }
                 });
    // dB = A^T * dOut, row-parallel over B's rows.
    parallel_for(0, vb.rows(), row_grain(va.rows() * vb.cols()),
                 [&](std::size_t lo, std::size_t hi) {
                   for (std::size_t k = lo; k < hi; ++k) {
                     for (std::size_t c = 0; c < vb.cols(); ++c) {
                       double s = 0.0;
                       for (std::size_t r = 0; r < va.rows(); ++r) {
                         s += va.at(r, k) * g.at(r, c);
                       }
                       gb.at(k, c) += s;
                     }
                   }
                 });
  };
  return v;
}

Value Tape::relu(Value a) {
  Tensor out = value(a);
  pointwise(out.size(), [&](std::size_t i) { out[i] = std::max(0.0, out[i]); });
  Value v = make(std::move(out), nullptr);
  nodes_[static_cast<std::size_t>(v.id)].backward_fn = [a, v](Tape& t) {
    const Tensor& g = t.grad_ref(v);
    const Tensor& va = t.value(a);
    t.ensure_grad(a);
    Tensor& ga = t.grad_ref(a);
    pointwise(g.size(), [&](std::size_t i) {
      if (va[i] > 0.0) ga[i] += g[i];
    });
  };
  return v;
}

Value Tape::tanh_op(Value a) {
  Tensor out = value(a);
  pointwise(out.size(), [&](std::size_t i) { out[i] = std::tanh(out[i]); });
  Value v = make(std::move(out), nullptr);
  nodes_[static_cast<std::size_t>(v.id)].backward_fn = [a, v](Tape& t) {
    const Tensor& g = t.grad_ref(v);
    const Tensor& vo = t.value(v);
    t.ensure_grad(a);
    Tensor& ga = t.grad_ref(a);
    pointwise(g.size(), [&](std::size_t i) { ga[i] += g[i] * (1.0 - vo[i] * vo[i]); });
  };
  return v;
}

Value Tape::sigmoid(Value a) {
  Tensor out = value(a);
  pointwise(out.size(), [&](std::size_t i) { out[i] = 1.0 / (1.0 + std::exp(-out[i])); });
  Value v = make(std::move(out), nullptr);
  nodes_[static_cast<std::size_t>(v.id)].backward_fn = [a, v](Tape& t) {
    const Tensor& g = t.grad_ref(v);
    const Tensor& vo = t.value(v);
    t.ensure_grad(a);
    Tensor& ga = t.grad_ref(a);
    pointwise(g.size(), [&](std::size_t i) { ga[i] += g[i] * vo[i] * (1.0 - vo[i]); });
  };
  return v;
}

Value Tape::abs_op(Value a) {
  Tensor out = value(a);
  pointwise(out.size(), [&](std::size_t i) { out[i] = std::fabs(out[i]); });
  Value v = make(std::move(out), nullptr);
  nodes_[static_cast<std::size_t>(v.id)].backward_fn = [a, v](Tape& t) {
    const Tensor& g = t.grad_ref(v);
    const Tensor& va = t.value(a);
    t.ensure_grad(a);
    Tensor& ga = t.grad_ref(a);
    pointwise(g.size(), [&](std::size_t i) {
      const double sgn = va[i] > 0.0 ? 1.0 : (va[i] < 0.0 ? -1.0 : 0.0);
      ga[i] += g[i] * sgn;
    });
  };
  return v;
}

Value Tape::smooth_abs(Value a, double delta) {
  if (delta <= 0.0) return abs_op(a);
  Tensor out = value(a);
  pointwise(out.size(), [&](std::size_t i) {
    const double x = out[i];
    out[i] = std::sqrt(x * x + delta * delta) - delta;
  });
  Value v = make(std::move(out), nullptr);
  nodes_[static_cast<std::size_t>(v.id)].backward_fn = [a, v, delta](Tape& t) {
    const Tensor& g = t.grad_ref(v);
    const Tensor& va = t.value(a);
    t.ensure_grad(a);
    Tensor& ga = t.grad_ref(a);
    pointwise(g.size(), [&](std::size_t i) {
      ga[i] += g[i] * va[i] / std::sqrt(va[i] * va[i] + delta * delta);
    });
  };
  return v;
}

Value Tape::softplus(Value a) {
  Tensor out = value(a);
  pointwise(out.size(), [&](std::size_t i) {
    const double x = out[i];
    out[i] = std::log1p(std::exp(-std::fabs(x))) + std::max(x, 0.0);
  });
  Value v = make(std::move(out), nullptr);
  nodes_[static_cast<std::size_t>(v.id)].backward_fn = [a, v](Tape& t) {
    const Tensor& g = t.grad_ref(v);
    const Tensor& va = t.value(a);
    t.ensure_grad(a);
    Tensor& ga = t.grad_ref(a);
    pointwise(g.size(), [&](std::size_t i) { ga[i] += g[i] / (1.0 + std::exp(-va[i])); });
  };
  return v;
}

Value Tape::concat_cols(const std::vector<Value>& parts) {
  if (parts.empty()) throw std::runtime_error("concat_cols: empty");
  const std::size_t rows = value(parts[0]).rows();
  std::size_t cols = 0;
  for (Value p : parts) {
    if (value(p).rows() != rows) throw std::runtime_error("concat_cols: row mismatch");
    cols += value(p).cols();
  }
  Tensor out(rows, cols);
  std::size_t off = 0;
  for (Value p : parts) {
    const Tensor& tp = value(p);
    parallel_for(0, rows, row_grain(tp.cols()), [&](std::size_t lo, std::size_t hi) {
      for (std::size_t r = lo; r < hi; ++r) {
        for (std::size_t c = 0; c < tp.cols(); ++c) out.at(r, off + c) = tp.at(r, c);
      }
    });
    off += tp.cols();
  }
  std::vector<Value> captured = parts;
  Value v = make(std::move(out), nullptr);
  nodes_[static_cast<std::size_t>(v.id)].backward_fn = [captured, v](Tape& t) {
    const Tensor& g = t.grad_ref(v);
    std::size_t off2 = 0;
    for (Value p : captured) {
      t.ensure_grad(p);
      Tensor& gp = t.grad_ref(p);
      parallel_for(0, gp.rows(), row_grain(gp.cols()), [&](std::size_t lo, std::size_t hi) {
        for (std::size_t r = lo; r < hi; ++r) {
          for (std::size_t c = 0; c < gp.cols(); ++c) gp.at(r, c) += g.at(r, off2 + c);
        }
      });
      off2 += gp.cols();
    }
  };
  return v;
}

Value Tape::gather_rows(Value a, std::vector<int> indices) {
  const Tensor& ta = value(a);
  Tensor out(indices.size(), ta.cols());
  parallel_for(0, indices.size(), row_grain(ta.cols()), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      const auto src = static_cast<std::size_t>(indices[i]);
      for (std::size_t c = 0; c < ta.cols(); ++c) out.at(i, c) = ta.at(src, c);
    }
  });
  Value v = make(std::move(out), nullptr);
  nodes_[static_cast<std::size_t>(v.id)].backward_fn = [a, v, idx = std::move(indices)](Tape& t) {
    const Tensor& g = t.grad_ref(v);
    t.ensure_grad(a);
    Tensor& ga = t.grad_ref(a);
    // Scatter with repeats: column-parallel, rows in serial order per column,
    // so each destination accumulates in the same order as the serial code.
    parallel_for(0, g.cols(), 1, [&](std::size_t clo, std::size_t chi) {
      for (std::size_t i = 0; i < idx.size(); ++i) {
        const auto dst = static_cast<std::size_t>(idx[i]);
        for (std::size_t c = clo; c < chi; ++c) ga.at(dst, c) += g.at(i, c);
      }
    });
  };
  return v;
}

Value Tape::scatter_add_rows(Value a, std::vector<int> indices, std::size_t out_rows) {
  const Tensor& ta = value(a);
  if (indices.size() != ta.rows()) throw std::runtime_error("scatter_add: index count");
  Tensor out(out_rows, ta.cols());
  parallel_for(0, ta.cols(), 1, [&](std::size_t clo, std::size_t chi) {
    for (std::size_t i = 0; i < indices.size(); ++i) {
      const auto dst = static_cast<std::size_t>(indices[i]);
      for (std::size_t c = clo; c < chi; ++c) out.at(dst, c) += ta.at(i, c);
    }
  });
  Value v = make(std::move(out), nullptr);
  nodes_[static_cast<std::size_t>(v.id)].backward_fn = [a, v, idx = std::move(indices)](Tape& t) {
    const Tensor& g = t.grad_ref(v);
    t.ensure_grad(a);
    Tensor& ga = t.grad_ref(a);
    // Gather semantics: row-parallel, each output row touched once.
    parallel_for(0, idx.size(), row_grain(g.cols()), [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        const auto src = static_cast<std::size_t>(idx[i]);
        for (std::size_t c = 0; c < g.cols(); ++c) ga.at(i, c) += g.at(src, c);
      }
    });
  };
  return v;
}

Value Tape::segment_max(Value a, std::vector<int> segments, std::size_t num_segments,
                        double empty_fill) {
  const Tensor& ta = value(a);
  if (segments.size() != ta.rows()) throw std::runtime_error("segment_max: index count");
  Tensor out(num_segments, ta.cols(), empty_fill);
  // argmax row per (segment, col) for the backward pass. Column-parallel:
  // each (s, c) cell is owned by exactly one column chunk, and rows are
  // visited in serial order, so ties resolve identically to the serial code.
  std::vector<int> argmax(num_segments * ta.cols(), -1);
  parallel_for(0, ta.cols(), 1, [&](std::size_t clo, std::size_t chi) {
    for (std::size_t i = 0; i < segments.size(); ++i) {
      const auto s = static_cast<std::size_t>(segments[i]);
      for (std::size_t c = clo; c < chi; ++c) {
        const std::size_t k = s * ta.cols() + c;
        if (argmax[k] < 0 || ta.at(i, c) > out.at(s, c)) {
          out.at(s, c) = ta.at(i, c);
          argmax[k] = static_cast<int>(i);
        }
      }
    }
  });
  Value v = make(std::move(out), nullptr);
  nodes_[static_cast<std::size_t>(v.id)].backward_fn =
      [a, v, am = std::move(argmax)](Tape& t) {
        const Tensor& g = t.grad_ref(v);
        t.ensure_grad(a);
        Tensor& ga = t.grad_ref(a);
        // Each argmax row belongs to exactly one segment, so distinct (s, c)
        // write distinct ga cells: segment-row-parallel is race-free.
        parallel_for(0, g.rows(), row_grain(g.cols()), [&](std::size_t lo, std::size_t hi) {
          for (std::size_t s = lo; s < hi; ++s) {
            for (std::size_t c = 0; c < g.cols(); ++c) {
              const int i = am[s * g.cols() + c];
              if (i >= 0) ga.at(static_cast<std::size_t>(i), c) += g.at(s, c);
            }
          }
        });
      };
  return v;
}

Value Tape::segment_sum(Value a, std::vector<int> segments, std::size_t num_segments) {
  return scatter_add_rows(a, std::move(segments), num_segments);
}

Value Tape::sum_all(Value a) {
  const Tensor& ta = value(a);
  double s = 0.0;
  for (double x : ta.data()) s += x;
  Tensor out(1, 1);
  out[0] = s;
  Value v = make(std::move(out), nullptr);
  nodes_[static_cast<std::size_t>(v.id)].backward_fn = [a, v](Tape& t) {
    const double g = t.grad_ref(v)[0];
    t.ensure_grad(a);
    Tensor& ga = t.grad_ref(a);
    pointwise(ga.size(), [&](std::size_t i) { ga[i] += g; });
  };
  return v;
}

Value Tape::mean_all(Value a) {
  const auto n = static_cast<double>(value(a).size());
  return scale(sum_all(a), 1.0 / n);
}

Value Tape::log_sum_exp(Value a, double gamma) {
  if (gamma <= 0.0) throw std::runtime_error("log_sum_exp: gamma must be positive");
  const Tensor& ta = value(a);
  if (ta.size() == 0) throw std::runtime_error("log_sum_exp: empty input");
  double m = ta[0];
  for (double x : ta.data()) m = std::max(m, x);
  double z = 0.0;
  for (double x : ta.data()) z += std::exp((x - m) / gamma);
  Tensor out(1, 1);
  out[0] = m + gamma * std::log(z);
  Value v = make(std::move(out), nullptr);
  nodes_[static_cast<std::size_t>(v.id)].backward_fn = [a, v, gamma, m, z](Tape& t) {
    const double g = t.grad_ref(v)[0];
    const Tensor& va = t.value(a);
    t.ensure_grad(a);
    Tensor& ga = t.grad_ref(a);
    pointwise(va.size(), [&](std::size_t i) {
      ga[i] += g * std::exp((va[i] - m) / gamma) / z;  // softmax weights
    });
  };
  return v;
}

Value Tape::soft_min0(Value a, double gamma) {
  if (gamma <= 0.0) throw std::runtime_error("soft_min0: gamma must be positive");
  const Tensor& ta = value(a);
  Tensor out = ta;
  pointwise(out.size(), [&](std::size_t i) {
    const double t = -out[i] / gamma;
    // -gamma * softplus(-x/gamma), with stable softplus.
    const double sp = std::log1p(std::exp(-std::fabs(t))) + std::max(t, 0.0);
    out[i] = -gamma * sp;
  });
  Value v = make(std::move(out), nullptr);
  nodes_[static_cast<std::size_t>(v.id)].backward_fn = [a, v, gamma](Tape& t) {
    const Tensor& g = t.grad_ref(v);
    const Tensor& va = t.value(a);
    t.ensure_grad(a);
    Tensor& ga = t.grad_ref(a);
    pointwise(g.size(), [&](std::size_t i) {
      const double sig = 1.0 / (1.0 + std::exp(va[i] / gamma));  // d/dx = sigma(-x/gamma)
      ga[i] += g[i] * sig;
    });
  };
  return v;
}

Value Tape::mse(Value prediction, const Tensor& target) {
  const Tensor& tp = value(prediction);
  if (!tp.same_shape(target)) throw std::runtime_error("mse: shape mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < tp.size(); ++i) {
    const double d = tp[i] - target[i];
    s += d * d;
  }
  Tensor out(1, 1);
  out[0] = s / static_cast<double>(tp.size());
  Value v = make(std::move(out), nullptr);
  nodes_[static_cast<std::size_t>(v.id)].backward_fn = [prediction, v, target](Tape& t) {
    const double g = t.grad_ref(v)[0];
    const Tensor& vp = t.value(prediction);
    t.ensure_grad(prediction);
    Tensor& gp = t.grad_ref(prediction);
    const double k = 2.0 / static_cast<double>(vp.size());
    pointwise(vp.size(), [&](std::size_t i) { gp[i] += g * k * (vp[i] - target[i]); });
  };
  return v;
}

void Tape::backward(Value root) {
  Node& r = nodes_[static_cast<std::size_t>(root.id)];
  if (r.value.size() != 1) throw std::runtime_error("backward: root must be scalar");
  for (Node& n : nodes_) {
    if (n.grad.size() != n.value.size()) n.grad = Tensor::zeros(n.value.rows(), n.value.cols());
    else std::fill(n.grad.data().begin(), n.grad.data().end(), 0.0);
  }
  grad_ref(root)[0] = 1.0;
  // Node order stays sequential (the tape is a dependency chain); each
  // node's backward_fn parallelizes internally.
  for (int i = root.id; i >= 0; --i) {
    Node& n = nodes_[static_cast<std::size_t>(i)];
    bool has_grad = false;
    for (double g : n.grad.data()) {
      if (g != 0.0) {
        has_grad = true;
        break;
      }
    }
    if (has_grad && n.backward_fn) n.backward_fn(*this);
  }
}

double numeric_gradient(const std::function<double(const Tensor&)>& f, const Tensor& at,
                        std::size_t index, double eps) {
  Tensor plus = at;
  Tensor minus = at;
  plus[index] += eps;
  minus[index] -= eps;
  return (f(plus) - f(minus)) / (2.0 * eps);
}

}  // namespace tsteiner
