#include "autodiff/program.hpp"

#include <algorithm>
#include <cstring>
#include <limits>
#include <stdexcept>

namespace tsteiner {

void TapeProgram::reset() {
  tape_ = Tape();
  root_ = Value{};
  finalized_ = false;
  mutable_leaf_.clear();
  leaf_group_.clear();
  pending_dirty_ = 0;
  needs_grad_.clear();
  forward_schedule_.clear();
  forward_mask_.clear();
  backward_schedule_.clear();
  src_sched_.clear();
  redirect_.clear();
  bwd_input_offset_.clear();
  bwd_inputs_.clear();
  bwd_fresh_ok_.clear();
  fresh_.clear();
  grad_stamp_.clear();
  epoch_ = 0;
}

void TapeProgram::finalize(Value root, const std::vector<Value>& mutable_leaves,
                           const std::vector<Value>& grad_targets) {
  if (finalized_) throw std::runtime_error("TapeProgram: already finalized");
  const std::size_t n = tape_.nodes_.size();
  if (!root.valid() || static_cast<std::size_t>(root.id) >= n) {
    throw std::runtime_error("TapeProgram: invalid root");
  }
  if (tape_.value(root).size() != 1) {
    throw std::runtime_error("TapeProgram: root must be scalar");
  }
  root_ = root;

  // Dirty groups: one bit per mutable leaf (leaves past 64 share the last
  // bit — conservative, never skips a dirty op).
  mutable_leaf_.assign(n, 0);
  leaf_group_.assign(n, 0);
  std::uint64_t next_group = 0;
  for (Value v : mutable_leaves) {
    if (!v.valid() || static_cast<std::size_t>(v.id) >= n ||
        !tape_.is_leaf(static_cast<std::size_t>(v.id))) {
      throw std::runtime_error("TapeProgram: mutable handle is not a leaf");
    }
    mutable_leaf_[static_cast<std::size_t>(v.id)] = 1;
    leaf_group_[static_cast<std::size_t>(v.id)] |=
        std::uint64_t{1} << std::min<std::uint64_t>(next_group++, 63);
  }

  // Forward schedule: every op reachable from a mutable leaf, in recording
  // (= topological) order, tagged with the groups it depends on. Clean ops
  // keep their record-time values.
  std::vector<std::uint64_t> node_mask(n, 0);
  std::vector<int> ins;
  for (std::size_t i = 0; i < n; ++i) {
    if (tape_.is_leaf(i)) {
      node_mask[i] = leaf_group_[i];
      continue;
    }
    ins.clear();
    tape_.append_inputs(i, ins);
    for (int a : ins) node_mask[i] |= node_mask[static_cast<std::size_t>(a)];
    if (node_mask[i] != 0) {
      forward_schedule_.push_back(static_cast<int>(i));
      forward_mask_.push_back(node_mask[i]);
    }
  }

  // Backward pruning. needs_grad: the node lies on a path *to* a gradient
  // target (bottom-up). An op executes in reverse only when it also lies on
  // a path *from* the root (top-down) — gradient can actually arrive there.
  needs_grad_.assign(n, 0);
  if (grad_targets.empty()) {
    for (std::size_t i = 0; i < n; ++i) {
      if (tape_.is_leaf(i) && tape_.nodes_[i].requires_grad) needs_grad_[i] = 1;
    }
  } else {
    for (Value v : grad_targets) {
      if (!v.valid() || static_cast<std::size_t>(v.id) >= n) {
        throw std::runtime_error("TapeProgram: invalid gradient target");
      }
      needs_grad_[static_cast<std::size_t>(v.id)] = 1;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (tape_.is_leaf(i) || needs_grad_[i]) continue;
    ins.clear();
    tape_.append_inputs(i, ins);
    for (int a : ins) {
      if (needs_grad_[static_cast<std::size_t>(a)]) {
        needs_grad_[i] = 1;
        break;
      }
    }
  }

  std::vector<std::uint8_t> reach(n, 0);
  reach[static_cast<std::size_t>(root.id)] = 1;
  bwd_input_offset_.push_back(0);
  for (int i = root.id; i >= 0; --i) {
    const auto idx = static_cast<std::size_t>(i);
    if (tape_.is_leaf(idx) || !reach[idx] || !needs_grad_[idx]) continue;
    backward_schedule_.push_back(i);
    ins.clear();
    tape_.append_inputs(idx, ins);
    // The operands this op accumulates into (the kernels' `need` filter uses
    // the same needs_grad mask). When the kernel writes the operand's whole
    // gradient tensor, the first accumulation of a replay can assign
    // `0.0 + x` instead of zero-then-accumulate (bit-identical, see
    // run_backward); kernels that touch a subset (relu, gather_rows,
    // segment_max) — or an operand the op uses twice, e.g. mul(x, x) —
    // fall back to an explicit zeroing just before the op runs.
    const auto code = tape_.ops_[idx].code;
    const bool covers_fully = code != Tape::OpCode::kRelu &&
                              code != Tape::OpCode::kGatherRows &&
                              code != Tape::OpCode::kSegmentMax;
    const std::size_t first_j = bwd_inputs_.size();
    for (int a : ins) {
      const auto ai = static_cast<std::size_t>(a);
      if (needs_grad_[ai]) {
        reach[ai] = 1;
        bool dup = false;
        for (std::size_t j = first_j; j < bwd_inputs_.size(); ++j) {
          if (bwd_inputs_[j] == a) {
            dup = true;
            bwd_fresh_ok_[j] = 0;
          }
        }
        bwd_inputs_.push_back(a);
        bwd_fresh_ok_.push_back(covers_fully && !dup ? 1 : 0);
      }
    }
    bwd_input_offset_.push_back(static_cast<int>(bwd_inputs_.size()));
  }
  fresh_.assign(n, 0);

  // Gradient forwarding: where an add/sub/add_scalar/broadcast-add kernel
  // would hand an operand an exact copy of the op's own gradient, and that
  // operand receives no other contribution, the copy is pure memory traffic.
  // Redirect such operands to read the op's (physical) gradient slot
  // directly and suppress the kernel's write — clearing needs_grad_ for the
  // operand is safe precisely because this op was its sole contributor. An
  // op whose needed operands are all forwarded vanishes from the replay
  // schedule entirely; one kept for a genuine multi-contribution sum still
  // skips the copy halves. This is the dominant backward saving in the
  // GNN's add-heavy arrival propagation. Chains collapse because consumers
  // (higher ids) are processed first, so `redirect_` entries are already
  // fully resolved when an operand looks one up.
  {
    std::vector<int> contrib(n, 0);
    for (int a : bwd_inputs_) ++contrib[static_cast<std::size_t>(a)];
    redirect_.assign(n, -1);
    std::vector<int> sched2, inputs2, off2{0};
    std::vector<std::uint8_t> fresh2;
    for (std::size_t k = 0; k < backward_schedule_.size(); ++k) {
      const int idx = backward_schedule_[k];
      const auto& op = tape_.ops_[static_cast<std::size_t>(idx)];
      const Tensor& out = tape_.nodes_[static_cast<std::size_t>(idx)].value;
      const int jb = bwd_input_offset_[k], je = bwd_input_offset_[k + 1];
      const int src =
          redirect_[static_cast<std::size_t>(idx)] >= 0 ? redirect_[static_cast<std::size_t>(idx)] : idx;
      const bool identity_code =
          op.code == Tape::OpCode::kAdd || op.code == Tape::OpCode::kSub ||
          op.code == Tape::OpCode::kAddScalar || op.code == Tape::OpCode::kAddBroadcast;
      std::size_t kept = 0;
      for (int j = jb; j < je; ++j) {
        const auto a = static_cast<std::size_t>(bwd_inputs_[static_cast<std::size_t>(j)]);
        const Tensor& av = tape_.nodes_[a].value;
        // Only the first operand of sub / add_scalar / broadcast-add sees
        // the raw gradient; kAdd passes it to both sides. A duplicated
        // operand (e.g. add(x, x)) has contrib >= 2 and is never forwarded.
        const bool forward = identity_code &&
                             (op.code == Tape::OpCode::kAdd || bwd_inputs_[static_cast<std::size_t>(j)] == op.a) &&
                             contrib[a] == 1 && av.rows() == out.rows() && av.cols() == out.cols();
        if (forward) {
          redirect_[a] = src;
          needs_grad_[a] = 0;  // sole contributor: no kernel may write this slot now
        } else {
          inputs2.push_back(static_cast<int>(a));
          fresh2.push_back(bwd_fresh_ok_[static_cast<std::size_t>(j)]);
          ++kept;
        }
      }
      if (kept == 0) continue;  // fully forwarded: the op itself disappears
      sched2.push_back(idx);
      src_sched_.push_back(src);
      off2.push_back(static_cast<int>(inputs2.size()));
    }
    backward_schedule_.swap(sched2);
    bwd_inputs_.swap(inputs2);
    bwd_input_offset_.swap(off2);
    bwd_fresh_ok_.swap(fresh2);
  }

  grad_stamp_.assign(n, std::numeric_limits<std::uint32_t>::max());
  pending_dirty_ = 0;  // recorded values are current
  tape_.freeze();
  finalized_ = true;
}

void TapeProgram::check_mutable(Value leaf) const {
  if (!finalized_) return;  // pre-finalize writes are plain leaf updates
  if (!leaf.valid() || static_cast<std::size_t>(leaf.id) >= mutable_leaf_.size() ||
      !mutable_leaf_[static_cast<std::size_t>(leaf.id)]) {
    throw std::runtime_error(
        "TapeProgram: leaf was not declared mutable at finalize — re-record");
  }
}

void TapeProgram::mark_dirty(Value leaf, bool changed) {
  if (finalized_ && changed) {
    pending_dirty_ |= leaf_group_[static_cast<std::size_t>(leaf.id)];
  }
}

void TapeProgram::set_leaf(Value leaf, const Tensor& t) {
  check_mutable(leaf);
  mark_dirty(leaf, tape_.set_leaf(leaf, t));
}

void TapeProgram::set_leaf(Value leaf, const std::vector<double>& column) {
  check_mutable(leaf);
  mark_dirty(leaf, tape_.set_leaf(leaf, column));
}

void TapeProgram::set_leaf_scalar(Value leaf, double s) {
  check_mutable(leaf);
  Tensor& v = tape_.nodes_[static_cast<std::size_t>(leaf.id)].value;
  if (v.size() != 1) {
    throw std::runtime_error("TapeProgram: set_leaf_scalar needs a 1x1 leaf");
  }
  mark_dirty(leaf, std::memcmp(&v[0], &s, sizeof(double)) != 0);
  v[0] = s;
}

void TapeProgram::replay_forward() {
  if (!finalized_) throw std::runtime_error("TapeProgram: finalize before replay");
  ++replay_counters_.forward_replays;
  if (pending_dirty_ == 0) {
    ++replay_counters_.full_forward_skips;
    return;
  }
  std::uint64_t executed = 0;
  for (std::size_t k = 0; k < forward_schedule_.size(); ++k) {
    if (forward_mask_[k] & pending_dirty_) {
      tape_.run_forward(static_cast<std::size_t>(forward_schedule_[k]));
      ++executed;
    }
  }
  replay_counters_.ops_executed += executed;
  replay_counters_.ops_skipped += forward_schedule_.size() - executed;
  pending_dirty_ = 0;
}

void TapeProgram::replay_backward() {
  if (!finalized_) throw std::runtime_error("TapeProgram: finalize before replay");
  if (++epoch_ == 0) {  // stamp wrap: invalidate everything once per 2^32 replays
    std::fill(grad_stamp_.begin(), grad_stamp_.end(), std::numeric_limits<std::uint32_t>::max());
    epoch_ = 1;
  }
  const auto root_id = static_cast<std::size_t>(root_.id);
  tape_.reset_grad(root_id);
  tape_.grad_ref(root_)[0] = 1.0;
  grad_stamp_[root_id] = epoch_;
  // Same descending walk and same has-gradient early-out as Tape::backward,
  // restricted to the ops gradient can actually cross. A slot whose stamp is
  // stale has had no contribution this replay — logically zero, exactly the
  // freshly allocated buffer the one-shot backward would see.
  for (std::size_t k = 0; k < backward_schedule_.size(); ++k) {
    const auto idx = static_cast<std::size_t>(backward_schedule_[k]);
    // Where this op's incoming gradient physically lives: its own slot, or a
    // higher op's slot when every copy between them was forwarded away.
    const auto src = static_cast<std::size_t>(src_sched_[k]);
    if (grad_stamp_[src] != epoch_) continue;
    if (!tape_.grad_nonzero(src)) continue;
    const int jb = bwd_input_offset_[k], je = bwd_input_offset_[k + 1];
    bool any_fresh = false;
    for (int j = jb; j < je; ++j) {
      const auto a = static_cast<std::size_t>(bwd_inputs_[static_cast<std::size_t>(j)]);
      if (grad_stamp_[a] != epoch_) {
        grad_stamp_[a] = epoch_;
        if (bwd_fresh_ok_[static_cast<std::size_t>(j)]) {
          fresh_[a] = 1;  // kernel fully writes the slot: no zeroing needed
          any_fresh = true;
        } else {
          tape_.reset_grad(a);
        }
      }
    }
    tape_.run_backward(idx, &needs_grad_, any_fresh ? &fresh_ : nullptr,
                       src == idx ? -1 : static_cast<int>(src));
    if (any_fresh) {
      for (int j = jb; j < je; ++j) {
        fresh_[static_cast<std::size_t>(bwd_inputs_[static_cast<std::size_t>(j)])] = 0;
      }
    }
  }
}

const Tensor& TapeProgram::grad(Value v) {
  if (finalized_ && v.valid() && static_cast<std::size_t>(v.id) < grad_stamp_.size()) {
    const auto id = static_cast<std::size_t>(v.id);
    // A forwarded node's gradient lives in the slot it was redirected to.
    if (redirect_[id] >= 0 && grad_stamp_[static_cast<std::size_t>(redirect_[id])] == epoch_) {
      return tape_.grad(Value{redirect_[id]});
    }
    if (grad_stamp_[id] != epoch_) {  // untouched this replay: reads as zeros
      tape_.reset_grad(id);
      grad_stamp_[id] = epoch_;
    }
  }
  return tape_.grad(v);
}

}  // namespace tsteiner
