// Dense row-major 2-D tensor of doubles; the value type of the autodiff
// tape. Deliberately minimal: the GNN only needs construction, elementwise
// access and a few initializers.
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace tsteiner {

class Tensor {
 public:
  Tensor() = default;
  Tensor(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Tensor zeros(std::size_t rows, std::size_t cols) { return Tensor(rows, cols, 0.0); }

  /// Xavier/Glorot-style normal init used for the GNN weights.
  static Tensor randn(Rng& rng, std::size_t rows, std::size_t cols, double stddev) {
    Tensor t(rows, cols);
    for (double& v : t.data_) v = rng.normal(0.0, stddev);
    return t;
  }

  /// Column vector from raw data.
  static Tensor column(const std::vector<double>& xs) {
    Tensor t(xs.size(), 1);
    t.data_ = xs;
    return t;
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool same_shape(const Tensor& o) const { return rows_ == o.rows_ && cols_ == o.cols_; }

  double& at(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double at(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double& operator[](std::size_t i) {
    assert(i < data_.size());
    return data_[i];
  }
  double operator[](std::size_t i) const {
    assert(i < data_.size());
    return data_[i];
  }

  std::vector<double>& data() { return data_; }
  const std::vector<double>& data() const { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace tsteiner
