// Reverse-mode automatic differentiation on a tape of tensor operations.
//
// This is the substrate the paper gets from PyTorch: the timing evaluator's
// forward pass is recorded as a graph of tensor ops, and Tape::backward
// accumulates gradients into every leaf marked requires_grad — in TSteiner's
// case, the Steiner-point coordinate vectors (X_s, Y_s) and the model
// weights. The op set is exactly what the customized GNN and the smoothed
// WNS/TNS penalty need: dense linear algebra, pointwise nonlinearities,
// gather/scatter for message passing, segment reductions for max-style
// aggregation, and numerically stable Log-Sum-Exp (Eq. 5).
//
// Each recorded op is a compact OpRecord (opcode + operand ids + immediates)
// executed by switch-based forward/backward kernels; the eager builders and
// TapeProgram's replay run the *same* kernels over the same preallocated
// value/grad buffers, which is what makes replayed results bit-identical to
// a freshly recorded tape (see docs/autodiff.md).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "autodiff/tensor.hpp"

namespace tsteiner {

/// Opaque handle to a tape node.
struct Value {
  int id = -1;
  bool valid() const { return id >= 0; }
};

class Tape {
 public:
  /// Create a leaf. Leaves with requires_grad accumulate into grad(v).
  Value leaf(Tensor value, bool requires_grad = false);

  const Tensor& value(Value v) const;
  /// Gradient of the last backward() w.r.t. v (zeros if v was unused).
  const Tensor& grad(Value v) const;

  std::size_t num_nodes() const { return nodes_.size(); }

  /// Pre-size the node/op arenas (e.g. to the node count of a previous
  /// record of the same graph) so recording does not pay vector growth.
  void reserve(std::size_t num_nodes);

  /// Arena accounting, reported by the replay bench and asserted by the
  /// zero-allocation tests. `allocations` counts every tensor/scratch buffer
  /// the tape has allocated (node values, gradient buffers, segment-max
  /// argmax scratch); a steady-state replay must not advance it.
  struct Stats {
    std::size_t num_nodes = 0;
    std::size_t num_leaves = 0;
    std::size_t value_doubles = 0;  ///< forward arena, in doubles
    std::size_t grad_doubles = 0;   ///< gradient arena currently allocated
    std::uint64_t allocations = 0;  ///< cumulative buffer allocations
  };
  Stats stats() const;

  /// Overwrite a leaf's value in place (no allocation). Throws if v is not a
  /// leaf or the shape differs from the recorded one — a shape change means
  /// the graph topology changed and the program must be re-recorded.
  /// Returns whether the stored bytes actually changed (TapeProgram uses
  /// this to skip replaying ops whose inputs are bitwise unchanged).
  bool set_leaf(Value v, const Tensor& t);
  /// Column-vector convenience for coordinate leaves.
  bool set_leaf(Value v, const std::vector<double>& column);

  // --- elementwise / linear ops -------------------------------------------
  Value add(Value a, Value b);        ///< same shape, or b a 1xC row broadcast
  Value sub(Value a, Value b);        ///< same-shape elementwise
  Value mul(Value a, Value b);        ///< same-shape elementwise
  Value scale(Value a, double s);
  Value add_scalar(Value a, double s);
  Value neg(Value a) { return scale(a, -1.0); }
  Value matmul(Value a, Value b);
  Value relu(Value a);
  Value tanh_op(Value a);
  Value sigmoid(Value a);
  Value abs_op(Value a);
  /// Smooth absolute value sqrt(x^2 + delta^2) - delta: zero at the origin,
  /// |x|-like in the tails, gradient x / sqrt(x^2 + delta^2). Used for edge
  /// lengths so WL-optimal Steiner corners are flat basins instead of sharp
  /// V kinks (which would dominate the refinement gradient with
  /// wirelength-slope noise).
  Value smooth_abs(Value a, double delta);
  /// Numerically stable log(1 + e^x); smooth non-negative delay head.
  Value softplus(Value a);

  // --- structure ops --------------------------------------------------------
  Value concat_cols(const std::vector<Value>& parts);
  /// out.row(i) = a.row(indices[i]); rows may repeat.
  Value gather_rows(Value a, std::vector<int> indices);
  /// out has out_rows rows; out.row(indices[i]) += a.row(i).
  Value scatter_add_rows(Value a, std::vector<int> indices, std::size_t out_rows);
  /// out.row(s) = max over rows i with segment[i] == s (per column);
  /// segments with no member yield `empty_fill` and zero gradient.
  Value segment_max(Value a, std::vector<int> segments, std::size_t num_segments,
                    double empty_fill = 0.0);
  /// out.row(s) = sum over rows i with segment[i] == s.
  Value segment_sum(Value a, std::vector<int> segments, std::size_t num_segments);

  // --- reductions -----------------------------------------------------------
  Value sum_all(Value a);  ///< 1x1
  Value mean_all(Value a);
  /// Smoothed maximum, Eq. (5): gamma * log(sum_i exp(a_i / gamma)), over all
  /// elements; numerically stabilized. Result 1x1.
  Value log_sum_exp(Value a, double gamma);
  /// Smooth elementwise min(0, x): -gamma * softplus(-x / gamma). Used for
  /// the TNS term so backward reaches every endpoint (Section III-A).
  Value soft_min0(Value a, double gamma);
  /// Mean squared error against a constant target (no grad to target).
  Value mse(Value prediction, const Tensor& target);

  /// Reverse pass from a 1x1 root with seed gradient 1.
  void backward(Value root);

 private:
  friend class TapeProgram;

  enum class OpCode : std::uint8_t {
    kLeaf,
    kAdd,            // same-shape elementwise
    kAddBroadcast,   // b is a 1xC row broadcast
    kSub,
    kMul,
    kScale,          // s0 = factor
    kAddScalar,      // s0 = addend
    kMatmul,
    kRelu,
    kTanh,
    kSigmoid,
    kAbs,
    kSmoothAbs,      // s0 = delta
    kSoftplus,
    kConcatCols,     // inputs = parts
    kGatherRows,     // indices = source rows
    kScatterAddRows, // indices = destination rows, dim0 = out_rows
    kSegmentMax,     // indices = segments, dim0 = num_segments, s0 = empty_fill
    kSumAll,
    kLogSumExp,      // s0 = gamma; m/z recomputed by every forward
    kSoftMin0,       // s0 = gamma
    kMse,            // constant = target
  };

  struct OpRecord {
    OpCode code = OpCode::kLeaf;
    int a = -1;                 ///< first operand node id
    int b = -1;                 ///< second operand node id (binary ops)
    double s0 = 0.0;            ///< immediate (scale / gamma / delta / fill)
    std::size_t dim0 = 0;       ///< out_rows / num_segments
    std::vector<int> indices;   ///< gather / scatter / segment map
    std::vector<int> inputs;    ///< concat operands
    Tensor constant;            ///< mse target
    // Value-dependent scratch, overwritten by every forward execution and
    // consumed by the matching backward (preallocated at first execution).
    std::vector<int> argmax;    ///< segment_max winner rows
    double m = 0.0;             ///< log_sum_exp max
    double z = 0.0;             ///< log_sum_exp normalizer
  };

  struct Node {
    Tensor value;
    Tensor grad;
    bool requires_grad = false;  // leaves only; interior nodes always get grad
  };

  /// Append a node + record and eagerly execute its forward kernel.
  Value push(std::size_t rows, std::size_t cols, OpRecord op);
  /// Recompute node i's value from its operands (same kernel record + replay).
  void run_forward(std::size_t i);
  /// Accumulate node i's gradient into its operands. `need` restricts
  /// accumulation to operand ids with a nonzero entry (nullptr = all).
  /// `fresh` marks operands whose gradient slot is logically zero but not
  /// materialized: kernels that fully cover the operand write `0.0 + x`
  /// instead of reading a zeroed buffer — bit-identical under IEEE (it
  /// preserves the `0.0 + -0.0 == +0.0` normalization a real accumulation
  /// performs) while skipping the clear pass and the first read of the
  /// destination. Only TapeProgram sets it, and never for kernels that
  /// write a subset of the operand (relu, gather_rows, segment_max).
  /// `grad_from` >= 0 reads the incoming gradient from that node's slot
  /// instead of node i's own — TapeProgram points it at the physical slot
  /// when i's gradient was forwarded through dropped identity ops.
  void run_backward(std::size_t i, const std::vector<std::uint8_t>* need,
                    const std::vector<std::uint8_t>* fresh = nullptr, int grad_from = -1);
  void append_inputs(std::size_t i, std::vector<int>& out) const;
  bool is_leaf(std::size_t i) const { return ops_[i].code == OpCode::kLeaf; }
  bool grad_nonzero(std::size_t i) const;
  /// Allocate-or-zero one node's gradient buffer.
  void reset_grad(std::size_t i);
  void check_recordable() const;
  void freeze() { frozen_ = true; }

  Tensor& grad_ref(Value v) { return nodes_[static_cast<std::size_t>(v.id)].grad; }
  void ensure_grad(Value v);

  std::vector<Node> nodes_;
  std::vector<OpRecord> ops_;
  std::uint64_t allocations_ = 0;
  bool frozen_ = false;
};

/// Numeric-vs-analytic gradient check used by the autodiff tests: rebuilds
/// the graph via `build` after perturbing leaf element (r, c) of the leaf
/// created inside build (the function returns the scalar root and exposes
/// the leaf by pointer).
double numeric_gradient(const std::function<double(const Tensor&)>& f, const Tensor& at,
                        std::size_t index, double eps = 1e-5);

}  // namespace tsteiner
