// Reverse-mode automatic differentiation on a tape of tensor operations.
//
// This is the substrate the paper gets from PyTorch: the timing evaluator's
// forward pass is recorded as a graph of tensor ops, and Tape::backward
// accumulates gradients into every leaf marked requires_grad — in TSteiner's
// case, the Steiner-point coordinate vectors (X_s, Y_s) and the model
// weights. The op set is exactly what the customized GNN and the smoothed
// WNS/TNS penalty need: dense linear algebra, pointwise nonlinearities,
// gather/scatter for message passing, segment reductions for max-style
// aggregation, and numerically stable Log-Sum-Exp (Eq. 5).
#pragma once

#include <functional>
#include <vector>

#include "autodiff/tensor.hpp"

namespace tsteiner {

/// Opaque handle to a tape node.
struct Value {
  int id = -1;
  bool valid() const { return id >= 0; }
};

class Tape {
 public:
  /// Create a leaf. Leaves with requires_grad accumulate into grad(v).
  Value leaf(Tensor value, bool requires_grad = false);

  const Tensor& value(Value v) const;
  /// Gradient of the last backward() w.r.t. v (zeros if v was unused).
  const Tensor& grad(Value v) const;

  std::size_t num_nodes() const { return nodes_.size(); }

  // --- elementwise / linear ops -------------------------------------------
  Value add(Value a, Value b);        ///< same shape, or b a 1xC row broadcast
  Value sub(Value a, Value b);        ///< same-shape elementwise
  Value mul(Value a, Value b);        ///< same-shape elementwise
  Value scale(Value a, double s);
  Value add_scalar(Value a, double s);
  Value neg(Value a) { return scale(a, -1.0); }
  Value matmul(Value a, Value b);
  Value relu(Value a);
  Value tanh_op(Value a);
  Value sigmoid(Value a);
  Value abs_op(Value a);
  /// Smooth absolute value sqrt(x^2 + delta^2) - delta: zero at the origin,
  /// |x|-like in the tails, gradient x / sqrt(x^2 + delta^2). Used for edge
  /// lengths so WL-optimal Steiner corners are flat basins instead of sharp
  /// V kinks (which would dominate the refinement gradient with
  /// wirelength-slope noise).
  Value smooth_abs(Value a, double delta);
  /// Numerically stable log(1 + e^x); smooth non-negative delay head.
  Value softplus(Value a);

  // --- structure ops --------------------------------------------------------
  Value concat_cols(const std::vector<Value>& parts);
  /// out.row(i) = a.row(indices[i]); rows may repeat.
  Value gather_rows(Value a, std::vector<int> indices);
  /// out has out_rows rows; out.row(indices[i]) += a.row(i).
  Value scatter_add_rows(Value a, std::vector<int> indices, std::size_t out_rows);
  /// out.row(s) = max over rows i with segment[i] == s (per column);
  /// segments with no member yield `empty_fill` and zero gradient.
  Value segment_max(Value a, std::vector<int> segments, std::size_t num_segments,
                    double empty_fill = 0.0);
  /// out.row(s) = sum over rows i with segment[i] == s.
  Value segment_sum(Value a, std::vector<int> segments, std::size_t num_segments);

  // --- reductions -----------------------------------------------------------
  Value sum_all(Value a);  ///< 1x1
  Value mean_all(Value a);
  /// Smoothed maximum, Eq. (5): gamma * log(sum_i exp(a_i / gamma)), over all
  /// elements; numerically stabilized. Result 1x1.
  Value log_sum_exp(Value a, double gamma);
  /// Smooth elementwise min(0, x): -gamma * softplus(-x / gamma). Used for
  /// the TNS term so backward reaches every endpoint (Section III-A).
  Value soft_min0(Value a, double gamma);
  /// Mean squared error against a constant target (no grad to target).
  Value mse(Value prediction, const Tensor& target);

  /// Reverse pass from a 1x1 root with seed gradient 1.
  void backward(Value root);

 private:
  struct Node {
    Tensor value;
    Tensor grad;
    bool requires_grad = false;  // leaves only; interior nodes always get grad
    std::function<void(Tape&)> backward_fn;  // null for leaves
  };

  Value make(Tensor value, std::function<void(Tape&)> backward_fn);
  Tensor& grad_ref(Value v) { return nodes_[static_cast<std::size_t>(v.id)].grad; }
  void ensure_grad(Value v);

  std::vector<Node> nodes_;
};

/// Numeric-vs-analytic gradient check used by the autodiff tests: rebuilds
/// the graph via `build` after perturbing leaf element (r, c) of the leaf
/// created inside build (the function returns the scalar root and exposes
/// the leaf by pointer).
double numeric_gradient(const std::function<double(const Tensor&)>& f, const Tensor& at,
                        std::size_t index, double eps = 1e-5);

}  // namespace tsteiner
