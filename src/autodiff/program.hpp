// Retained autodiff execution: record the graph once, replay it in place.
//
// The refinement loop (Algorithm 1) evaluates the same penalty graph dozens
// of times per (design, forest) pair; only the Steiner coordinate leaves and
// the lambda weights change between iterations. TapeProgram wraps a Tape,
// freezes it after recording, and precomputes two schedules:
//
//  * a forward schedule — the ops downstream of the declared mutable leaves
//    (everything else keeps its record-time value). Each mutable leaf gets a
//    dirty-group bit and each scheduled op the OR of the groups it depends
//    on, so a replay re-executes only ops downstream of leaves whose bytes
//    actually changed since the last replay (set_leaf compares before
//    copying). In the refinement loop this makes the gradient call after a
//    keep-best evaluation of the same coordinates skip the whole forward,
//    and a lambda-only change replay just the final penalty combination.
//  * a backward schedule — the ops through which gradient can flow from the
//    root to the declared gradient targets, with a per-node mask so kernels
//    skip operand gradients nobody asked for (e.g. the GNN weight halves of
//    every matmul). Two memory-traffic optimizations keep replayed results
//    bit-identical while avoiding most gradient-arena passes: gradient
//    slots are never cleared wholesale (each slot is epoch-stamped, and the
//    first accumulation of a replay writes `0.0 + x` without reading the
//    destination), and identity pass-through ops — an add whose operands
//    receive no other contribution — are dropped from the schedule
//    entirely, their operands' gradients *forwarded* to the op's own slot
//    instead of copied (the dominant backward cost in the GNN's
//    add-heavy arrival propagation).
//
// replay_forward()/replay_backward() re-execute those schedules with the
// *same* switch kernels the eager recording used, over the same
// preallocated buffers: results are bit-identical to re-recording a fresh
// tape at the new leaf values, at any thread-pool width, with zero
// steady-state heap allocation (see docs/autodiff.md).
#pragma once

#include <vector>

#include "autodiff/tape.hpp"

namespace tsteiner {

class TapeProgram {
 public:
  /// The tape to record into. Recording after finalize() throws.
  Tape& tape() { return tape_; }
  const Tape& tape() const { return tape_; }

  /// Freeze the recording and compile the replay schedules.
  ///  * `root` — the scalar node replay_backward() seeds with gradient 1;
  ///  * `mutable_leaves` — the leaves set_leaf() may overwrite between
  ///    replays (the forward schedule covers exactly their descendants);
  ///  * `grad_targets` — the leaves whose gradients replay_backward() must
  ///    produce; empty means every requires_grad leaf.
  void finalize(Value root, const std::vector<Value>& mutable_leaves,
                const std::vector<Value>& grad_targets = {});
  bool finalized() const { return finalized_; }
  Value root() const { return root_; }

  /// Overwrite a mutable leaf in place. Throws if the leaf was not declared
  /// mutable at finalize() or the shape differs from the recorded one (a
  /// topology change invalidates the program — re-record). Writing bytes
  /// identical to the stored ones leaves the leaf's dirty group clean.
  void set_leaf(Value leaf, const Tensor& t);
  void set_leaf(Value leaf, const std::vector<double>& column);
  void set_leaf_scalar(Value leaf, double s);

  /// Re-execute the ops downstream of the mutable leaves whose values
  /// changed since the last replay, in recording order. Values of untouched
  /// ops are preserved (bitwise-equal inputs produce bitwise-equal outputs,
  /// so skipping clean ops cannot change the result).
  void replay_forward();
  /// Seed the root with gradient 1 and run the pruned reverse schedule,
  /// zeroing each live gradient slot just before its first accumulation.
  /// Gradients of the declared targets match a full Tape::backward() on a
  /// freshly recorded tape bit-for-bit.
  void replay_backward();

  const Tensor& value(Value v) const { return tape_.value(v); }
  /// Gradient after the last replay_backward(); slots no gradient reached
  /// this replay read as zeros (matching a fresh tape's untouched buffers).
  const Tensor& grad(Value v);

  Tape::Stats stats() const { return tape_.stats(); }
  /// Cumulative buffer allocations inside the tape; constant across
  /// steady-state replays (asserted in tests/replay_test.cpp).
  std::uint64_t allocation_count() const { return tape_.stats().allocations; }

  /// Cumulative dirty-group effectiveness of replay_forward(). Raw counters
  /// (no dependency on the obs layer — GradientEvaluator translates deltas
  /// into obs metrics): how many replays ran, how many were skipped outright
  /// because no leaf byte changed, and of the scheduled ops considered, how
  /// many executed vs. were masked off as clean.
  struct ReplayCounters {
    std::uint64_t forward_replays = 0;      ///< replay_forward() calls
    std::uint64_t full_forward_skips = 0;   ///< ... that returned with zero dirty groups
    std::uint64_t ops_executed = 0;         ///< scheduled ops re-run
    std::uint64_t ops_skipped = 0;          ///< scheduled ops masked off as clean
  };
  const ReplayCounters& replay_counters() const { return replay_counters_; }

  /// Discard the recorded graph and schedules and return to a blank,
  /// recordable state — the tape-rebuild entry point for topology edits,
  /// which change the graph's *shape* and therefore cannot be replayed.
  /// Cumulative replay counters survive (they feed obs deltas).
  void reset();

 private:
  void check_mutable(Value leaf) const;
  void mark_dirty(Value leaf, bool changed);

  Tape tape_;
  Value root_{};
  bool finalized_ = false;
  std::vector<std::uint8_t> mutable_leaf_;     // by node id
  std::vector<std::uint64_t> leaf_group_;      // by node id: dirty-group bit
  std::uint64_t pending_dirty_ = 0;            // groups changed since last replay
  std::vector<std::uint8_t> needs_grad_;       // grad reaches a target from here
  std::vector<int> forward_schedule_;          // mutable-dependent ops, ascending
  std::vector<std::uint64_t> forward_mask_;    // per scheduled op: groups it depends on
  std::vector<int> backward_schedule_;         // grad-path ops, descending
  std::vector<int> src_sched_;                 // physical grad slot per scheduled op
  std::vector<int> redirect_;                  // by node id: forwarded grad slot, -1 = own
  std::vector<int> bwd_input_offset_;          // per scheduled op into bwd_inputs_
  std::vector<int> bwd_inputs_;                // needs_grad operands per scheduled op
  std::vector<std::uint8_t> bwd_fresh_ok_;     // op fully writes this operand's grad
  std::vector<std::uint8_t> fresh_;            // by node id: first-touch flag (transient)
  std::vector<std::uint32_t> grad_stamp_;      // slot cleared/written this epoch?
  std::uint32_t epoch_ = 0;
  ReplayCounters replay_counters_;
};

}  // namespace tsteiner
