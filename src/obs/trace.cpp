#include "obs/trace.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

#include "obs/json.hpp"
#include "obs/report.hpp"
#include "util/parallel.hpp"

namespace tsteiner::obs {

namespace {

struct TraceEvent {
  const char* name = nullptr;      // literal name, or
  std::string dynamic_name;        // owned copy (used when name == nullptr)
  const char* cat = "flow";
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint32_t lane = 1;
  std::uint64_t req = 0;           // request-id span arg; 0 = no args block
  std::string tag;                 // client trace tag arg; empty = absent
  bool async = false;              // emit as a "b"/"e" pair instead of "X"
};

/// Per-thread event buffer. Appends are uncontended (each thread owns its
/// buffer); the flush walks all buffers under the registry lock, taking each
/// buffer's own mutex so it can run concurrently with live spans.
struct ThreadBuffer {
  std::mutex mutex;
  std::vector<TraceEvent> events;
  std::uint32_t lane = 1;
};

struct TraceState {
  std::mutex mutex;                       // guards path, buffers registry
  std::string path;
  std::vector<ThreadBuffer*> buffers;     // leaked at exit (threads may outlive us)
  std::atomic<std::uint32_t> next_foreign_lane{100};
  std::atomic<std::size_t> event_count{0};
  std::chrono::steady_clock::time_point epoch = std::chrono::steady_clock::now();
};

/// Leaked singleton: flush runs from atexit, after which thread-local buffer
/// destructors of detached threads could still fire — never destroy it.
TraceState& state() {
  static TraceState* s = new TraceState();
  return *s;
}

std::uint32_t lane_for_this_thread() {
  const int worker = parallel_worker_index();
  if (worker > 0) return static_cast<std::uint32_t>(worker) + 1;
  static thread_local std::uint32_t lane = 0;
  if (lane == 0) {
    static std::atomic<bool> main_taken{false};
    lane = !main_taken.exchange(true) ? 1
                                      : state().next_foreign_lane.fetch_add(
                                            1, std::memory_order_relaxed);
  }
  return lane;
}

ThreadBuffer& buffer_for_this_thread() {
  static thread_local ThreadBuffer* buf = nullptr;
  if (buf == nullptr) {
    buf = new ThreadBuffer();  // leaked: flushed events must survive thread exit
    buf->lane = lane_for_this_thread();
    std::lock_guard<std::mutex> lk(state().mutex);
    state().buffers.push_back(buf);
  }
  return *buf;
}

void flush_at_exit() { flush_trace(); }

void arm_atexit() {
  static std::once_flag once;
  std::call_once(once, [] { std::atexit(flush_at_exit); });
}

const char* lane_name(std::uint32_t lane, char* buf, std::size_t n) {
  if (lane == 1) return "main";
  if (lane < 100) {
    std::snprintf(buf, n, "pool-worker-%u", lane - 1);
  } else {
    std::snprintf(buf, n, "thread-%u", lane - 100);
  }
  return buf;
}

}  // namespace

namespace detail {

std::atomic<bool> g_trace_on{false};

bool trace_init_from_env() {
  // Piggyback the run-report env check: the report's atexit writer must arm
  // even in binaries that never consult run_report_enabled() themselves
  // (e.g. ones that only hit span/counter sites), and the first span
  // constructed anywhere lands here exactly once.
  (void)run_report_enabled();
  if (const char* env = std::getenv("TSTEINER_TRACE")) {
    if (*env != '\0') {
      enable_trace(env);
      return true;
    }
  }
  return false;
}

std::uint64_t trace_now_ns() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now() - state().epoch)
                                        .count());
}

void record_span(const char* name, const std::string* dynamic_name, const char* category,
                 std::uint64_t start_ns, std::uint64_t end_ns, std::uint64_t req,
                 const std::string* tag) {
  ThreadBuffer& buf = buffer_for_this_thread();
  TraceEvent ev;
  ev.name = name;
  if (dynamic_name != nullptr) ev.dynamic_name = *dynamic_name;
  ev.cat = category;
  ev.start_ns = start_ns;
  ev.dur_ns = end_ns >= start_ns ? end_ns - start_ns : 0;
  ev.lane = buf.lane;
  ev.req = req;
  if (tag != nullptr) ev.tag = *tag;
  {
    std::lock_guard<std::mutex> lk(buf.mutex);
    buf.events.push_back(std::move(ev));
  }
  state().event_count.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace detail

std::uint64_t trace_clock_ns() { return detail::trace_now_ns(); }

void emit_span(const char* name, const char* category, std::uint64_t start_ns,
               std::uint64_t end_ns, std::uint64_t req, const std::string* tag) {
  if (!detail::trace_on()) return;
  detail::record_span(name, nullptr, category, start_ns, end_ns, req, tag);
}

void emit_async_span(const char* name, const char* category, std::uint64_t start_ns,
                     std::uint64_t end_ns, std::uint64_t req) {
  if (!detail::trace_on()) return;
  ThreadBuffer& buf = buffer_for_this_thread();
  TraceEvent ev;
  ev.name = name;
  ev.cat = category;
  ev.start_ns = start_ns;
  ev.dur_ns = end_ns >= start_ns ? end_ns - start_ns : 0;
  ev.lane = buf.lane;
  ev.req = req;
  ev.async = true;
  {
    std::lock_guard<std::mutex> lk(buf.mutex);
    buf.events.push_back(std::move(ev));
  }
  state().event_count.fetch_add(1, std::memory_order_relaxed);
}

TraceSpan::TraceSpan(const std::string& name, const char* category) noexcept {
  if (detail::trace_on()) {
    owned_ = new std::string(name);
    cat_ = category;
    start_ns_ = detail::trace_now_ns();
  }
}

void TraceSpan::set_tag(const std::string& tag) {
  if ((name_ == nullptr && owned_ == nullptr) || tag.empty()) return;
  delete owned_tag_;
  owned_tag_ = new std::string(tag);
}

void enable_trace(const std::string& path) {
  {
    std::lock_guard<std::mutex> lk(state().mutex);
    state().path = path;
  }
  arm_atexit();
  detail::g_trace_on.store(true, std::memory_order_relaxed);
}

void disable_trace() {
  detail::g_trace_on.store(false, std::memory_order_relaxed);
  flush_trace();
}

bool flush_trace() {
  TraceState& s = state();
  std::string path;
  std::vector<ThreadBuffer*> buffers;
  {
    std::lock_guard<std::mutex> lk(s.mutex);
    path = s.path;
    buffers = s.buffers;
  }
  if (path.empty()) return false;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;

  std::fputs("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n", f);
  bool first = true;
  std::vector<std::uint32_t> lanes;
  for (ThreadBuffer* buf : buffers) {
    std::lock_guard<std::mutex> lk(buf->mutex);
    if (!buf->events.empty()) lanes.push_back(buf->lane);
    for (const TraceEvent& ev : buf->events) {
      const std::string name = ev.name != nullptr ? json_escape(ev.name)
                                                  : json_escape(ev.dynamic_name);
      std::string args;
      if (ev.req != 0) {
        args = ",\"args\":{\"req\":" + std::to_string(ev.req);
        if (!ev.tag.empty()) args += ",\"tag\":\"" + json_escape(ev.tag) + "\"";
        args += "}";
      }
      if (ev.async) {
        // Async pair: grouped by cat+id in Perfetto, exempt from per-lane
        // nesting (queue waits of pending requests overlap freely).
        std::fprintf(f,
                     "%s{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"b\",\"id\":\"r%llu\","
                     "\"ts\":%.3f,\"pid\":1,\"tid\":%u%s},\n"
                     "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"e\",\"id\":\"r%llu\","
                     "\"ts\":%.3f,\"pid\":1,\"tid\":%u}",
                     first ? "" : ",\n", name.c_str(), json_escape(ev.cat).c_str(),
                     static_cast<unsigned long long>(ev.req),
                     static_cast<double>(ev.start_ns) * 1e-3, ev.lane, args.c_str(),
                     name.c_str(), json_escape(ev.cat).c_str(),
                     static_cast<unsigned long long>(ev.req),
                     static_cast<double>(ev.start_ns + ev.dur_ns) * 1e-3, ev.lane);
      } else {
        std::fprintf(f,
                     "%s{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,"
                     "\"dur\":%.3f,\"pid\":1,\"tid\":%u%s}",
                     first ? "" : ",\n", name.c_str(), json_escape(ev.cat).c_str(),
                     static_cast<double>(ev.start_ns) * 1e-3,
                     static_cast<double>(ev.dur_ns) * 1e-3, ev.lane, args.c_str());
      }
      first = false;
    }
  }
  char namebuf[48];
  for (const std::uint32_t lane : lanes) {
    std::fprintf(f,
                 "%s{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%u,"
                 "\"args\":{\"name\":\"%s\"}}",
                 first ? "" : ",\n", lane, lane_name(lane, namebuf, sizeof(namebuf)));
    first = false;
  }
  std::fputs("\n]}\n", f);
  return std::fclose(f) == 0;
}

std::size_t trace_event_count() {
  return state().event_count.load(std::memory_order_relaxed);
}

void reset_trace() {
  detail::g_trace_on.store(false, std::memory_order_relaxed);
  TraceState& s = state();
  std::lock_guard<std::mutex> lk(s.mutex);
  for (ThreadBuffer* buf : s.buffers) {
    std::lock_guard<std::mutex> blk(buf->mutex);
    buf->events.clear();
  }
  s.path.clear();
  s.event_count.store(0, std::memory_order_relaxed);
}

}  // namespace tsteiner::obs
