#include "obs/report.hpp"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace tsteiner::obs {

namespace {

void fmt_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out += buf;
}

void append_iteration_json(std::string& out, const std::string& design,
                           const RefineIterationRecord& r) {
  out += "{\"design\":\"" + json_escape(design) + "\",\"iter\":";
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%d", r.iter);
  out += buf;
  const auto field = [&out](const char* key, double v) {
    out += ",\"";
    out += key;
    out += "\":";
    fmt_number(out, v);
  };
  field("wns", r.wns);
  field("tns", r.tns);
  field("best_wns", r.best_wns);
  field("best_tns", r.best_tns);
  out += ",\"accept\":";
  out += r.accepted ? "true" : "false";
  field("theta", r.theta);
  field("grad_norm", r.grad_norm);
  field("max_move", r.max_move);
  field("lambda_w", r.lambda_w);
  field("lambda_t", r.lambda_t);
  field("wall_s", r.wall_s);
  if (r.has_signoff) {
    field("signoff_wns", r.signoff_wns);
    field("signoff_tns", r.signoff_tns);
    field("signoff_dirty_frac", r.signoff_dirty_frac);
    out += ",\"signoff_incremental\":";
    out += r.signoff_incremental ? "true" : "false";
  }
  if (r.topology_round) {
    const auto int_field = [&out](const char* key, int v) {
      out += ",\"";
      out += key;
      out += "\":";
      char ibuf[24];
      std::snprintf(ibuf, sizeof(ibuf), "%d", v);
      out += ibuf;
    };
    out += ",\"topology\":true";
    int_field("search_nets", r.search_nets);
    int_field("search_edits_applied", r.search_edits_applied);
    int_field("search_edits_rejected", r.search_edits_rejected);
  }
  out += "}";
}

// --- iteration log state ---------------------------------------------------

struct IterLogState {
  std::mutex mutex;
  std::FILE* file = nullptr;
  bool armed = false;
};

IterLogState& iter_log_state() {
  static IterLogState* s = new IterLogState();
  return *s;
}

std::atomic<bool> g_iter_log_on{false};

bool iter_log_init_from_env() {
  if (const char* env = std::getenv("TSTEINER_REFINE_LOG")) {
    if (*env != '\0') set_iteration_log_path(env);
  }
  return true;
}

void ensure_iter_log_env() {
  static const bool once = iter_log_init_from_env();
  (void)once;
}

// --- run report state ------------------------------------------------------

struct ReportState {
  std::mutex mutex;
  std::string path;
};

ReportState& report_state() {
  static ReportState* s = new ReportState();
  return *s;
}

std::atomic<bool> g_report_on{false};

void report_flush_at_exit() { flush_run_report(); }

void arm_report_atexit() {
  static std::once_flag once;
  std::call_once(once, [] { std::atexit(report_flush_at_exit); });
}

bool report_init_from_env() {
  if (const char* env = std::getenv("TSTEINER_RUN_REPORT")) {
    if (*env != '\0') set_run_report_path(env);
  }
  return true;
}

void ensure_report_env() {
  static const bool once = report_init_from_env();
  (void)once;
}

}  // namespace

// --- JSONL iteration stream ------------------------------------------------

bool iteration_log_enabled() {
  ensure_iter_log_env();
  return g_iter_log_on.load(std::memory_order_relaxed);
}

void set_iteration_log_path(const std::string& path) {
  IterLogState& s = iter_log_state();
  std::lock_guard<std::mutex> lk(s.mutex);
  if (s.file != nullptr) {
    std::fclose(s.file);
    s.file = nullptr;
  }
  if (!path.empty()) s.file = std::fopen(path.c_str(), "w");
  g_iter_log_on.store(s.file != nullptr, std::memory_order_relaxed);
}

void log_refine_iteration(const std::string& design, const RefineIterationRecord& rec) {
  if (!iteration_log_enabled()) return;
  std::string line;
  line.reserve(256);
  append_iteration_json(line, design, rec);
  line += "\n";
  IterLogState& s = iter_log_state();
  std::lock_guard<std::mutex> lk(s.mutex);
  if (s.file == nullptr) return;
  std::fwrite(line.data(), 1, line.size(), s.file);
  std::fflush(s.file);  // per-line flush: a killed run keeps a readable prefix
}

// --- run report ------------------------------------------------------------

void RunReport::add_phase(const std::string& name, const PhaseStat& delta) {
  std::lock_guard<std::mutex> lk(mutex_);
  for (PhaseAgg& p : phases_) {
    if (p.name == name) {
      p.stat.wall_s += delta.wall_s;
      p.stat.busy_s += delta.busy_s;
      ++p.count;
      return;
    }
  }
  phases_.push_back({name, delta, 1});
}

void RunReport::add_refine(RefineRunRecord rec) {
  std::lock_guard<std::mutex> lk(mutex_);
  refines_.push_back(std::move(rec));
}

void RunReport::set_option(const std::string& key, const std::string& value) {
  std::lock_guard<std::mutex> lk(mutex_);
  for (auto& [k, v] : options_) {
    if (k == key) {
      v = value;
      return;
    }
  }
  options_.emplace_back(key, value);
}

std::string RunReport::to_json() const {
  std::vector<PhaseAgg> phases;
  std::vector<RefineRunRecord> refines;
  std::vector<std::pair<std::string, std::string>> options;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    phases = phases_;
    refines = refines_;
    options = options_;
  }

  std::string out;
  out.reserve(4096);
  out += "{\n\"tsteiner_run_report\":1,\n\"schema_version\":1,\n";

  out += "\"options\":{";
  for (std::size_t i = 0; i < options.size(); ++i) {
    if (i != 0) out += ",";
    out += "\"" + json_escape(options[i].first) + "\":\"" +
           json_escape(options[i].second) + "\"";
  }
  out += "},\n";

  out += "\"phases\":[";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const PhaseAgg& p = phases[i];
    if (i != 0) out += ",";
    out += "\n{\"name\":\"" + json_escape(p.name) + "\",\"wall_s\":";
    fmt_number(out, p.stat.wall_s);
    out += ",\"busy_s\":";
    fmt_number(out, p.stat.busy_s);
    out += ",\"utilization\":";
    fmt_number(out, p.stat.utilization());
    out += ",\"count\":";
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(p.count));
    out += buf;
    out += "}";
  }
  out += "\n],\n";

  out += "\"refine\":[";
  for (std::size_t i = 0; i < refines.size(); ++i) {
    const RefineRunRecord& r = refines[i];
    if (i != 0) out += ",";
    out += "\n{\"design\":\"" + json_escape(r.design) + "\",\"iterations\":";
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%d", r.iterations);
    out += buf;
    out += ",\"converged_by_ratio\":";
    out += r.converged_by_ratio ? "true" : "false";
    const auto field = [&out](const char* key, double v) {
      out += ",\"";
      out += key;
      out += "\":";
      fmt_number(out, v);
    };
    field("init_wns", r.init_wns);
    field("init_tns", r.init_tns);
    field("best_wns", r.best_wns);
    field("best_tns", r.best_tns);
    field("theta", r.theta);
    out += ",\"iters\":[";
    for (std::size_t k = 0; k < r.iters.size(); ++k) {
      if (k != 0) out += ",";
      out += "\n";
      append_iteration_json(out, r.design, r.iters[k]);
    }
    out += "]}";
  }
  out += "\n],\n";

  out += "\"metrics\":" + metrics().to_json() + "\n}\n";
  return out;
}

bool RunReport::write(const std::string& path) const {
  const std::string text = to_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return (std::fclose(f) == 0) && ok;
}

void RunReport::reset() {
  std::lock_guard<std::mutex> lk(mutex_);
  phases_.clear();
  refines_.clear();
  options_.clear();
}

RunReport& run_report() {
  static RunReport* r = new RunReport();
  return *r;
}

bool run_report_enabled() {
  ensure_report_env();
  return g_report_on.load(std::memory_order_relaxed);
}

void set_run_report_path(const std::string& path) {
  ReportState& s = report_state();
  {
    std::lock_guard<std::mutex> lk(s.mutex);
    s.path = path;
  }
  if (!path.empty()) arm_report_atexit();
  g_report_on.store(!path.empty(), std::memory_order_relaxed);
}

const std::string& run_report_path() {
  ensure_report_env();
  return report_state().path;
}

bool flush_run_report() {
  ReportState& s = report_state();
  std::string path;
  {
    std::lock_guard<std::mutex> lk(s.mutex);
    path = s.path;
  }
  if (path.empty()) return false;
  return run_report().write(path);
}

}  // namespace tsteiner::obs
