// Machine-readable run artifacts: the per-iteration refine JSONL stream and
// the final run report (tsteiner_run.json).
//
// The JSONL stream (TSTEINER_REFINE_LOG=<path>, or set_iteration_log_path)
// gets one line per refinement iteration, flushed per line so a crashed or
// killed run still leaves a readable prefix:
//
//   {"design":"d1","iter":0,"wns":-1.2,"tns":-40.1,"best_wns":-1.2,
//    "best_tns":-40.1,"accept":true,"theta":0.5,"grad_norm":0.8,
//    "max_move":3.0,"lambda_w":-200.0,"lambda_t":-2.0,"wall_s":0.004}
//
// The run report (TSTEINER_RUN_REPORT=<path>, or set_run_report_path; written
// at process exit and on flush_run_report()) merges everything one run
// produces: accumulated named phases (wall + busy seconds, call counts),
// every RefineResult's summary and iteration telemetry, the metrics registry
// snapshot, and options fingerprints — a single source of truth that
// tools/tsteiner_trace verify/summarize/diff operate on. Schema documented
// in docs/observability.md.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/timer.hpp"

namespace tsteiner::obs {

/// One refinement iteration, as logged by refine_steiner_points. Mirrored
/// into RefineResult::iteration_log so callers can post-process without
/// re-parsing the JSONL.
struct RefineIterationRecord {
  int iter = 0;
  double wns = 0.0, tns = 0.0;            ///< model-evaluated, this iterate
  double best_wns = 0.0, best_tns = 0.0;  ///< keep-best after this iteration
  bool accepted = false;
  double theta = 0.0;      ///< optimizer stepsize entering the iteration
  double grad_norm = 0.0;  ///< L2 of the gradient used this iteration
  double max_move = 0.0;   ///< largest per-point displacement applied (DBU)
  double lambda_w = 0.0, lambda_t = 0.0;
  double wall_s = 0.0;
  /// Optional periodic sign-off probe (RefineOptions::signoff_probe). The
  /// signoff_* fields are emitted in the JSONL line only when the probe ran
  /// this iteration (has_signoff).
  bool has_signoff = false;
  double signoff_wns = 0.0, signoff_tns = 0.0;  ///< sign-off, not model eval
  double signoff_dirty_frac = 0.0;  ///< dirty nets / total nets fed to the probe
  bool signoff_incremental = false;  ///< probe served by the incremental path
  /// Topology-search rounds (RefineOptions::topology): the record describes
  /// one discrete-search round instead of a gradient iteration. The
  /// search_* fields are emitted in the JSONL line only when set, keeping
  /// gradient-only streams byte-identical to pre-search builds.
  bool topology_round = false;
  int search_nets = 0;            ///< nets the MCTS searched this round
  int search_edits_applied = 0;   ///< edits accepted into the working forest
  int search_edits_rejected = 0;  ///< invariant-gate + episodic rejections
};

/// Summary of one refine_steiner_points call for the run report.
struct RefineRunRecord {
  std::string design;
  int iterations = 0;
  bool converged_by_ratio = false;
  double init_wns = 0.0, init_tns = 0.0;
  double best_wns = 0.0, best_tns = 0.0;
  double theta = 0.0;
  std::vector<RefineIterationRecord> iters;
};

// --- JSONL iteration stream ------------------------------------------------

bool iteration_log_enabled();
/// Redirect (or, with "", disable) the stream; truncates the file.
void set_iteration_log_path(const std::string& path);
void log_refine_iteration(const std::string& design, const RefineIterationRecord& rec);

// --- run report ------------------------------------------------------------

class RunReport {
 public:
  /// Accumulate a phase interval under `name` (wall/busy sums + call count).
  void add_phase(const std::string& name, const PhaseStat& delta);
  void add_refine(RefineRunRecord rec);
  /// Options fingerprints and free-form annotations ("suite_options", ...).
  void set_option(const std::string& key, const std::string& value);

  /// Serialize (phases + refines + options + a fresh metrics snapshot).
  std::string to_json() const;
  bool write(const std::string& path) const;
  void reset();

 private:
  struct PhaseAgg {
    std::string name;
    PhaseStat stat;
    std::uint64_t count = 0;
  };
  mutable std::mutex mutex_;
  std::vector<PhaseAgg> phases_;  // insertion order
  std::vector<RefineRunRecord> refines_;
  std::vector<std::pair<std::string, std::string>> options_;
};

RunReport& run_report();

/// True when a report path is configured (TSTEINER_RUN_REPORT or
/// set_run_report_path) — instrumentation feeds the collector only then.
bool run_report_enabled();
void set_run_report_path(const std::string& path);  ///< "" disables
const std::string& run_report_path();
/// Write the report to the configured path now (also runs at process exit).
bool flush_run_report();

}  // namespace tsteiner::obs
