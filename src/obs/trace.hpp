// Scoped span tracer emitting Chrome/Perfetto trace-event JSON.
//
// Every instrumented region constructs a TraceSpan (usually via
// TS_TRACE_SPAN). When tracing is disabled — the default — construction and
// destruction cost one relaxed atomic load each: no allocation, no clock
// read, no syscall (asserted in tests/obs_test.cpp). When enabled (the
// TSTEINER_TRACE=<path> environment variable, or enable_trace()), spans are
// buffered per thread and flushed as complete "X" events into a single JSON
// file that chrome://tracing and https://ui.perfetto.dev open directly.
//
// Thread ids integrate with the deterministic pool (util/parallel): lane 1
// is the calling/main thread, lanes 2..N+1 are pool workers 1..N, and any
// other thread gets a lane from 100 up. Thread-name metadata events label
// the lanes. Spans nest by time containment per lane, which holds by
// construction for scoped spans on one thread.
//
// Span names must outlive the flush; pass string literals (the common case)
// or use the owning std::string overload for dynamic names.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace tsteiner::obs {

namespace detail {
extern std::atomic<bool> g_trace_on;
/// Reads TSTEINER_TRACE once and arms the tracer when set. Returns the
/// enabled flag after initialization.
bool trace_init_from_env();
/// One-time env check folded into the fast path: after the first call the
/// cost is the relaxed load alone.
inline bool trace_on() {
  static const bool env_checked = trace_init_from_env();
  (void)env_checked;
  return g_trace_on.load(std::memory_order_relaxed);
}
void record_span(const char* name, const std::string* dynamic_name, const char* category,
                 std::uint64_t start_ns, std::uint64_t end_ns, std::uint64_t req = 0,
                 const std::string* tag = nullptr);
std::uint64_t trace_now_ns();
}  // namespace detail

/// Whether spans are currently being recorded.
inline bool trace_enabled() { return detail::trace_on(); }

/// Start recording spans; they flush to `path` (overwritten) on
/// disable_trace(), flush_trace(), or process exit. Previously buffered
/// events are kept, so disable/enable cycles accumulate into one file.
void enable_trace(const std::string& path);

/// Stop recording and flush buffered events to the configured path.
void disable_trace();

/// Write all buffered events to the configured path (valid, complete JSON —
/// callable mid-run). Returns false when no path is configured or the file
/// cannot be written.
bool flush_trace();

/// Number of completed spans buffered so far (tests).
std::size_t trace_event_count();

/// Drop all buffered events and the configured path (tests / benches that
/// measure multiple modes in one process).
void reset_trace();

/// Timestamp on the tracer clock (ns since the tracer epoch), for spans
/// manufactured with explicit endpoints. Callers should only take timestamps
/// while trace_enabled() — the disabled fast path must stay clock-free.
std::uint64_t trace_clock_ns();

/// Emit a complete "X" span with explicit endpoints on the calling thread's
/// lane. `req != 0` attaches {"req":N} span args (plus {"tag":...} when a
/// non-empty tag is supplied). No-op while tracing is disabled; `name` must
/// be a literal (or outlive the flush).
void emit_span(const char* name, const char* category, std::uint64_t start_ns,
               std::uint64_t end_ns, std::uint64_t req = 0, const std::string* tag = nullptr);

/// Emit an async ("b"/"e") span pair keyed by `req`. Async events are not
/// thread-scoped, so overlapping intervals — queue waits of concurrently
/// pending requests — do not violate the per-lane nesting contract that
/// applies to "X" spans. No-op while tracing is disabled.
void emit_async_span(const char* name, const char* category, std::uint64_t start_ns,
                     std::uint64_t end_ns, std::uint64_t req);

class TraceSpan {
 public:
  /// `name` must be a string literal (or outlive the flush).
  explicit TraceSpan(const char* name, const char* category = "flow") noexcept {
    if (detail::trace_on()) {
      name_ = name;
      cat_ = category;
      start_ns_ = detail::trace_now_ns();
    }
  }
  /// Request-correlated span: `req` is attached as {"req":N} span args
  /// (req == 0 records no args). Used by the serve layer.
  TraceSpan(const char* name, const char* category, std::uint64_t req) noexcept
      : TraceSpan(name, category) {
    req_ = req;
  }
  /// Owning overload for dynamic names (design names etc.); copies only when
  /// tracing is enabled.
  TraceSpan(const std::string& name, const char* category) noexcept;

  /// Attach/replace the request id after construction (e.g. once a request
  /// has been parsed and assigned one). Cheap no-op when the span is dormant.
  void set_req(std::uint64_t req) noexcept {
    if (name_ != nullptr || owned_ != nullptr) req_ = req;
  }
  /// Attach a client trace tag, copied only when the span is live.
  void set_tag(const std::string& tag);

  ~TraceSpan() {
    // Flushing between construction and destruction can only drop this span,
    // never corrupt the file; the enabled check is deliberately re-taken so
    // a span open across disable_trace() is simply not recorded.
    if ((name_ != nullptr || owned_ != nullptr) && detail::trace_on()) {
      detail::record_span(name_, owned_, cat_, start_ns_, detail::trace_now_ns(), req_,
                          owned_tag_);
    }
    delete owned_;
    delete owned_tag_;
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;
  const std::string* owned_ = nullptr;
  const char* cat_ = nullptr;
  std::uint64_t start_ns_ = 0;
  std::uint64_t req_ = 0;
  const std::string* owned_tag_ = nullptr;
};

}  // namespace tsteiner::obs

#define TS_TRACE_PASTE2(a, b) a##b
#define TS_TRACE_PASTE(a, b) TS_TRACE_PASTE2(a, b)
/// A scoped span for the rest of the enclosing block.
#define TS_TRACE_SPAN(name) ::tsteiner::obs::TraceSpan TS_TRACE_PASTE(ts_span_, __LINE__)(name)
#define TS_TRACE_SPAN_CAT(name, cat) \
  ::tsteiner::obs::TraceSpan TS_TRACE_PASTE(ts_span_, __LINE__)(name, cat)
/// A request-correlated scoped span ({"req":N} span args).
#define TS_TRACE_SPAN_REQ(name, cat, req) \
  ::tsteiner::obs::TraceSpan TS_TRACE_PASTE(ts_span_, __LINE__)(name, cat, req)
