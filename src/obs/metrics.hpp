// Named metrics registry: counters, gauges, and fixed-bucket histograms
// (built on util/stats.hpp's Histogram) for the flow's hot paths.
//
// Usage pattern — register once per call site, then touch the instrument
// directly (no per-call name lookup):
//
//   static obs::Counter& accepted = obs::metrics().counter("refine.iter_accepted");
//   accepted.add();
//
// Collection is gated on TSTEINER_METRICS=1 (or set_metrics_enabled): a
// disabled Counter::add is one relaxed atomic load. Instruments are
// process-global and deterministic — the same run produces the same
// snapshot at any pool width, because every increment site is itself
// deterministic (tests/obs_test.cpp). Snapshots serialize name-sorted so
// two runs can be diffed mechanically (tools/tsteiner_trace diff).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/stats.hpp"

namespace tsteiner::obs {

namespace detail {
extern std::atomic<bool> g_metrics_on;
bool metrics_init_from_env();
inline bool metrics_on() {
  static const bool env_checked = metrics_init_from_env();
  (void)env_checked;
  return g_metrics_on.load(std::memory_order_relaxed);
}
}  // namespace detail

inline bool metrics_enabled() { return detail::metrics_on(); }
void set_metrics_enabled(bool on);

class Counter {
 public:
  void add(std::uint64_t n = 1) {
    if (detail::metrics_on()) value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins double (theta, lambda, overflow). Stored as bit-cast u64
/// so concurrent set/read is tear-free.
class Gauge {
 public:
  void set(double v);
  double value() const;
  void reset();

 private:
  std::atomic<std::uint64_t> bits_{0};
};

/// Fixed-width buckets over [lo, hi]; out-of-range observations clamp into
/// the edge buckets (util/stats.hpp semantics). observe() takes a mutex —
/// keep histograms off per-element inner loops.
class HistogramMetric {
 public:
  HistogramMetric(double lo, double hi, std::size_t bins);
  void observe(double x);
  std::uint64_t count() const;
  double sum() const;
  Histogram snapshot() const;
  /// Rank-interpolated percentile of the current buckets, q in [0, 100]
  /// (Histogram::percentile on a locked snapshot).
  double percentile(double q) const;
  double p50() const { return percentile(50.0); }
  double p90() const { return percentile(90.0); }
  double p99() const { return percentile(99.0); }
  void reset();

 private:
  mutable std::mutex mutex_;
  Histogram hist_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

/// One serialized instrument (snapshot/report/diff view).
struct MetricSample {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  Kind kind = Kind::kCounter;
  double value = 0.0;           ///< counter value / gauge value / histogram sum
  std::uint64_t count = 0;      ///< histogram observation count
  double lo = 0.0, hi = 0.0;    ///< histogram range
  std::vector<std::uint64_t> buckets;
  std::vector<double> edges;    ///< bucket edges, buckets.size() + 1 entries
  double p50 = 0.0, p90 = 0.0, p99 = 0.0;  ///< rank-interpolated percentiles
};

class MetricsRegistry {
 public:
  /// Idempotent by name; the returned reference is stable for the process
  /// lifetime. Registering the same name as a different kind throws.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  HistogramMetric& histogram(const std::string& name, double lo, double hi, std::size_t bins);

  /// Name-sorted values of every registered instrument.
  std::vector<MetricSample> snapshot() const;
  /// The snapshot as a JSON object string: {"counters":{...},"gauges":{...},
  /// "histograms":{...}} — deterministic for a deterministic run.
  std::string to_json() const;
  /// Zero all instrument values (registration survives). Tests / benches.
  void reset_values();

 private:
  struct Entry;
  Entry& find_or_create(const std::string& name, MetricSample::Kind kind, double lo,
                        double hi, std::size_t bins);

  mutable std::mutex mutex_;
  std::vector<Entry*> entries_;  // leaked: instrument refs outlive everything
};

/// Process-global registry.
MetricsRegistry& metrics();

}  // namespace tsteiner::obs
