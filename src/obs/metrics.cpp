#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "obs/json.hpp"
#include "obs/report.hpp"

namespace tsteiner::obs {

namespace detail {

std::atomic<bool> g_metrics_on{false};

bool metrics_init_from_env() {
  // See trace_init_from_env(): the first counter/gauge gate reached anywhere
  // also arms the run-report env check and its atexit writer.
  (void)run_report_enabled();
  if (const char* env = std::getenv("TSTEINER_METRICS")) {
    if (*env != '\0' && std::strcmp(env, "0") != 0) {
      g_metrics_on.store(true, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

}  // namespace detail

void set_metrics_enabled(bool on) {
  (void)detail::metrics_on();  // fold in the env check so it cannot re-arm later
  detail::g_metrics_on.store(on, std::memory_order_relaxed);
}

void Gauge::set(double v) {
  if (!detail::metrics_on()) return;
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  bits_.store(bits, std::memory_order_relaxed);
}

double Gauge::value() const {
  const std::uint64_t bits = bits_.load(std::memory_order_relaxed);
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

void Gauge::reset() { bits_.store(0, std::memory_order_relaxed); }

HistogramMetric::HistogramMetric(double lo, double hi, std::size_t bins)
    : hist_(lo, hi, bins) {}

void HistogramMetric::observe(double x) {
  if (!detail::metrics_on()) return;
  std::lock_guard<std::mutex> lk(mutex_);
  hist_.add(x);
  ++count_;
  sum_ += x;
}

std::uint64_t HistogramMetric::count() const {
  std::lock_guard<std::mutex> lk(mutex_);
  return count_;
}

double HistogramMetric::sum() const {
  std::lock_guard<std::mutex> lk(mutex_);
  return sum_;
}

Histogram HistogramMetric::snapshot() const {
  std::lock_guard<std::mutex> lk(mutex_);
  return hist_;
}

double HistogramMetric::percentile(double q) const {
  std::lock_guard<std::mutex> lk(mutex_);
  return hist_.percentile(q);
}

void HistogramMetric::reset() {
  std::lock_guard<std::mutex> lk(mutex_);
  std::fill(hist_.counts.begin(), hist_.counts.end(), 0);
  count_ = 0;
  sum_ = 0.0;
}

struct MetricsRegistry::Entry {
  std::string name;
  MetricSample::Kind kind;
  Counter counter;
  Gauge gauge;
  HistogramMetric histogram;

  Entry(std::string n, MetricSample::Kind k, double lo, double hi, std::size_t bins)
      : name(std::move(n)), kind(k), histogram(lo, hi, std::max<std::size_t>(1, bins)) {}
};

MetricsRegistry::Entry& MetricsRegistry::find_or_create(const std::string& name,
                                                        MetricSample::Kind kind, double lo,
                                                        double hi, std::size_t bins) {
  std::lock_guard<std::mutex> lk(mutex_);
  for (Entry* e : entries_) {
    if (e->name == name) {
      if (e->kind != kind) {
        throw std::runtime_error("metric '" + name + "' registered with a different kind");
      }
      return *e;
    }
  }
  entries_.push_back(new Entry(name, kind, lo, hi, bins));  // leaked by design
  return *entries_.back();
}

Counter& MetricsRegistry::counter(const std::string& name) {
  return find_or_create(name, MetricSample::Kind::kCounter, 0, 1, 1).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  return find_or_create(name, MetricSample::Kind::kGauge, 0, 1, 1).gauge;
}

HistogramMetric& MetricsRegistry::histogram(const std::string& name, double lo, double hi,
                                            std::size_t bins) {
  return find_or_create(name, MetricSample::Kind::kHistogram, lo, hi, bins).histogram;
}

std::vector<MetricSample> MetricsRegistry::snapshot() const {
  std::vector<Entry*> entries;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    entries = entries_;
  }
  std::vector<MetricSample> out;
  out.reserve(entries.size());
  for (const Entry* e : entries) {
    MetricSample s;
    s.name = e->name;
    s.kind = e->kind;
    switch (e->kind) {
      case MetricSample::Kind::kCounter:
        s.value = static_cast<double>(e->counter.value());
        break;
      case MetricSample::Kind::kGauge:
        s.value = e->gauge.value();
        break;
      case MetricSample::Kind::kHistogram: {
        const Histogram h = e->histogram.snapshot();
        s.value = e->histogram.sum();
        s.count = e->histogram.count();
        s.lo = h.lo;
        s.hi = h.hi;
        s.buckets.assign(h.counts.begin(), h.counts.end());
        s.edges.reserve(h.counts.size() + 1);
        for (std::size_t i = 0; i <= h.counts.size(); ++i) s.edges.push_back(h.bucket_edge(i));
        s.p50 = h.p50();
        s.p90 = h.p90();
        s.p99 = h.p99();
        break;
      }
    }
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) { return a.name < b.name; });
  return out;
}

namespace {

void append_number(std::string& out, double v) {
  char buf[40];
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

}  // namespace

std::string MetricsRegistry::to_json() const {
  const std::vector<MetricSample> samples = snapshot();
  std::string out = "{";
  for (const int kind : {0, 1, 2}) {
    const char* section = kind == 0 ? "counters" : kind == 1 ? "gauges" : "histograms";
    if (kind != 0) out += ",";
    out += "\"";
    out += section;
    out += "\":{";
    bool first = true;
    for (const MetricSample& s : samples) {
      if (static_cast<int>(s.kind) != kind) continue;
      if (!first) out += ",";
      first = false;
      out += "\"" + json_escape(s.name) + "\":";
      if (s.kind == MetricSample::Kind::kCounter) {
        char buf[24];
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(s.value));
        out += buf;
      } else if (s.kind == MetricSample::Kind::kGauge) {
        append_number(out, s.value);
      } else {
        out += "{\"lo\":";
        append_number(out, s.lo);
        out += ",\"hi\":";
        append_number(out, s.hi);
        out += ",\"count\":";
        char buf[24];
        std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(s.count));
        out += buf;
        out += ",\"sum\":";
        append_number(out, s.value);
        out += ",\"p50\":";
        append_number(out, s.p50);
        out += ",\"p90\":";
        append_number(out, s.p90);
        out += ",\"p99\":";
        append_number(out, s.p99);
        out += ",\"buckets\":[";
        for (std::size_t i = 0; i < s.buckets.size(); ++i) {
          if (i != 0) out += ",";
          std::snprintf(buf, sizeof(buf), "%llu",
                        static_cast<unsigned long long>(s.buckets[i]));
          out += buf;
        }
        out += "],\"edges\":[";
        for (std::size_t i = 0; i < s.edges.size(); ++i) {
          if (i != 0) out += ",";
          append_number(out, s.edges[i]);
        }
        out += "]}";
      }
    }
    out += "}";
  }
  out += "}";
  return out;
}

void MetricsRegistry::reset_values() {
  std::vector<Entry*> entries;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    entries = entries_;
  }
  for (Entry* e : entries) {
    e->counter.reset();
    e->gauge.reset();
    e->histogram.reset();
  }
}

MetricsRegistry& metrics() {
  static MetricsRegistry* r = new MetricsRegistry();  // leaked: see Entry lifetime
  return *r;
}

}  // namespace tsteiner::obs
