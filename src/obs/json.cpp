#include "obs/json.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace tsteiner::obs {

namespace {

constexpr int kMaxDepth = 64;

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;

  bool fail(const char* what) {
    char buf[128];
    std::snprintf(buf, sizeof(buf), "%s at byte %zu", what, pos);
    if (error.empty()) error = buf;
    return false;
  }

  void skip_ws() {
    while (pos < text.size()) {
      const char c = text[pos];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos;
    }
  }

  bool consume(char c) {
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool literal(const char* word, std::size_t len) {
    if (text.size() - pos < len || text.compare(pos, len, word) != 0) {
      return fail("invalid literal");
    }
    pos += len;
    return true;
  }

  static void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  bool hex4(unsigned& out) {
    if (text.size() - pos < 4) return fail("truncated \\u escape");
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text[pos + static_cast<std::size_t>(i)];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return fail("invalid \\u escape");
      }
    }
    pos += 4;
    out = v;
    return true;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return fail("expected string");
    out.clear();
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return fail("control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos >= text.size()) return fail("truncated escape");
      const char e = text[pos++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned cp = 0;
          if (!hex4(cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate: pair required
            if (text.size() - pos < 2 || text[pos] != '\\' || text[pos + 1] != 'u') {
              return fail("lone high surrogate");
            }
            pos += 2;
            unsigned lo = 0;
            if (!hex4(lo)) return false;
            if (lo < 0xDC00 || lo > 0xDFFF) return fail("invalid low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return fail("lone low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          return fail("invalid escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos;
    if (pos < text.size() && text[pos] == '-') ++pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) || text[pos] == '.' ||
            text[pos] == 'e' || text[pos] == 'E' || text[pos] == '+' || text[pos] == '-')) {
      ++pos;
    }
    if (pos == start) return fail("expected number");
    // strtod needs a terminated buffer; the slice is short.
    const std::string slice(text.substr(start, pos - start));
    char* end = nullptr;
    const double v = std::strtod(slice.c_str(), &end);
    if (end == slice.c_str() || *end != '\0') {
      pos = start;
      return fail("malformed number");
    }
    out.kind = JsonValue::Kind::kNumber;
    out.number = v;
    return true;
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end of input");
    const char c = text[pos];
    if (c == '{') {
      ++pos;
      out.kind = JsonValue::Kind::kObject;
      skip_ws();
      if (consume('}')) return true;
      for (;;) {
        skip_ws();
        std::string key;
        if (!parse_string(key)) return false;
        skip_ws();
        if (!consume(':')) return fail("expected ':'");
        JsonValue member;
        if (!parse_value(member, depth + 1)) return false;
        out.object.emplace_back(std::move(key), std::move(member));
        skip_ws();
        if (consume(',')) continue;
        if (consume('}')) return true;
        return fail("expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++pos;
      out.kind = JsonValue::Kind::kArray;
      skip_ws();
      if (consume(']')) return true;
      for (;;) {
        JsonValue element;
        if (!parse_value(element, depth + 1)) return false;
        out.array.push_back(std::move(element));
        skip_ws();
        if (consume(',')) continue;
        if (consume(']')) return true;
        return fail("expected ',' or ']'");
      }
    }
    if (c == '"') {
      out.kind = JsonValue::Kind::kString;
      return parse_string(out.str);
    }
    if (c == 't') {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = true;
      return literal("true", 4);
    }
    if (c == 'f') {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = false;
      return literal("false", 5);
    }
    if (c == 'n') {
      out.kind = JsonValue::Kind::kNull;
      return literal("null", 4);
    }
    return parse_number(out);
  }
};

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue* JsonValue::find_number(std::string_view key) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_number() ? v : nullptr;
}

const JsonValue* JsonValue::find_string(std::string_view key) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_string() ? v : nullptr;
}

const JsonValue* JsonValue::find_array(std::string_view key) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_array() ? v : nullptr;
}

const JsonValue* JsonValue::find_object(std::string_view key) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_object() ? v : nullptr;
}

double JsonValue::number_or(std::string_view key, double fallback) const {
  const JsonValue* v = find_number(key);
  return v != nullptr ? v->number : fallback;
}

std::optional<JsonValue> parse_json(std::string_view text, std::string* error) {
  Parser p{text};
  JsonValue root;
  if (!p.parse_value(root, 0)) {
    if (error != nullptr) *error = p.error;
    return std::nullopt;
  }
  p.skip_ws();
  if (p.pos != text.size()) {
    p.fail("trailing content after document");
    if (error != nullptr) *error = p.error;
    return std::nullopt;
  }
  return root;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace tsteiner::obs
