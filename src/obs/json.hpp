// Minimal JSON document model + recursive-descent parser.
//
// Exists so the observability tooling (tools/tsteiner_trace, tests/obs_test)
// can validate the artifacts this repo *writes* — Chrome trace-event files,
// run reports, refine JSONL — without an external dependency. It is a
// strict-enough reader for machine-written JSON: full string escapes
// (incl. \uXXXX), doubles via strtod, a recursion-depth cap, and a
// trailing-garbage check. It is not a general-purpose validator (no
// duplicate-key detection, numbers collapse to double).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tsteiner::obs {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  /// Insertion order preserved (the writers emit deterministic order, and
  /// diff output should follow it).
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;
  /// find() + kind check conveniences for schema validation.
  const JsonValue* find_number(std::string_view key) const;
  const JsonValue* find_string(std::string_view key) const;
  const JsonValue* find_array(std::string_view key) const;
  const JsonValue* find_object(std::string_view key) const;
  double number_or(std::string_view key, double fallback) const;
};

/// Parse one JSON document covering the whole input (trailing whitespace
/// allowed, anything else is an error). On failure returns nullopt and, when
/// `error` is given, a message with the byte offset.
std::optional<JsonValue> parse_json(std::string_view text, std::string* error = nullptr);

/// Escape a string for embedding in a JSON document (no surrounding quotes).
std::string json_escape(std::string_view s);

}  // namespace tsteiner::obs
