// ScopedPhase: the span-era port of util/timer.hpp's ScopedTimer.
//
// One scoped object gives a flow phase all three observability views at
// once, each independently gated:
//   * PhaseStat accumulation (wall + pool-busy seconds) into the caller's
//     struct — always on, exactly what ScopedTimer did (RuntimeBreakdown
//     keeps these fields as its compatibility view);
//   * a trace span named `name` (when TSTEINER_TRACE is armed);
//   * a named phase row in the run report (when TSTEINER_RUN_REPORT is
//     armed), summing wall/busy over every interval with the same name.
//
// `name` must be a string literal (it is retained until trace flush and
// keyed into the report).
#pragma once

#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

namespace tsteiner::obs {

class ScopedPhase {
 public:
  explicit ScopedPhase(const char* name, PhaseStat* stat = nullptr)
      : name_(name), stat_(stat), span_(name, "phase"), busy0_ns_(parallel_busy_ns()) {}

  ~ScopedPhase() {
    PhaseStat delta;
    delta.wall_s = timer_.seconds();
    delta.busy_s =
        delta.wall_s + static_cast<double>(parallel_busy_ns() - busy0_ns_) * 1e-9;
    if (stat_ != nullptr) {
      stat_->wall_s += delta.wall_s;
      stat_->busy_s += delta.busy_s;
    }
    if (run_report_enabled()) run_report().add_phase(name_, delta);
  }

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  const char* name_;
  PhaseStat* stat_;
  TraceSpan span_;  // declared before timer_ so the span closes last
  WallTimer timer_;
  std::uint64_t busy0_ns_;
};

}  // namespace tsteiner::obs
