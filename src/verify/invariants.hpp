// Structural and mathematical invariant checks for the verification
// subsystem. Every check returns an empty string when the invariant holds
// and a human-readable description of the first violation otherwise, so the
// DiffHarness can attach the message to a repro line without exceptions
// crossing the oracle boundary.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "steiner/steiner_tree.hpp"
#include "tsteiner/refine.hpp"

namespace tsteiner::verify {

/// Steiner forest structure: every tree is connected and acyclic, rooted at
/// the net's driver pin, its pin nodes cover the net's driver and sinks
/// exactly, all coordinates are finite and inside the die, and net_to_tree /
/// the movable index are consistent with the trees. With
/// `require_min_degree`, every Steiner node must have degree >= 3 (the RSMT
/// construction guarantee; position-only edits such as random_disturb and
/// refinement preserve it). With `require_integral`, every coordinate must
/// sit on the rectilinear grid (integer DBU) — true of constructed forests
/// and of anything post-processed through the rounding step.
std::string check_forest_invariants(const Design& design, const SteinerForest& forest,
                                    bool require_min_degree, bool require_integral = true);

/// Exact-RSMT optimality for nets with at most 4 pins: the tree's wirelength
/// must equal the brute-force optimum over Hanan-grid Steiner point subsets
/// (Hanan's theorem makes that enumeration exhaustive at this size).
std::string check_small_net_optimality(const SteinerTree& tree);

/// Smoothed-penalty mathematics on an endpoint-slack vector (normalized
/// units, as the penalty graph consumes):
///  * smooth WNS = -LSE_gamma(-s) lies in [min(s) - gamma*ln(n), min(s)];
///  * its gradient is a simplex: per-endpoint weights >= 0 summing to 1;
///  * smooth TNS = sum soft_min0(s) lies in [TNS - n*gamma*ln2, TNS] and its
///    per-endpoint gradient lies in [0, 1].
std::string check_lse_penalty_properties(const std::vector<double>& slack, double gamma);

/// Keep-best contract of the refinement loop: the reported best WNS/TNS
/// never fall below the initial values, and the traces cover every
/// iteration.
std::string check_keep_best_monotone(const RefineResult& result);

}  // namespace tsteiner::verify
