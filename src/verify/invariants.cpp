#include "verify/invariants.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

#include "autodiff/tape.hpp"
#include "steiner/rsmt.hpp"

namespace tsteiner::verify {

namespace {

std::string tree_tag(const SteinerTree& tree) {
  return "tree of net " + std::to_string(tree.net);
}

}  // namespace

std::string check_forest_invariants(const Design& design, const SteinerForest& forest,
                                    bool require_min_degree, bool require_integral) {
  if (forest.net_to_tree.size() != design.nets().size()) {
    return "net_to_tree size " + std::to_string(forest.net_to_tree.size()) +
           " != net count " + std::to_string(design.nets().size());
  }
  for (std::size_t net = 0; net < forest.net_to_tree.size(); ++net) {
    const int t = forest.net_to_tree[net];
    if (t < 0) continue;
    if (static_cast<std::size_t>(t) >= forest.trees.size()) {
      return "net " + std::to_string(net) + " maps to out-of-range tree " + std::to_string(t);
    }
    if (forest.trees[static_cast<std::size_t>(t)].net != static_cast<int>(net)) {
      return "net " + std::to_string(net) + " maps to tree owned by net " +
             std::to_string(forest.trees[static_cast<std::size_t>(t)].net);
    }
  }

  long long steiner_nodes = 0;
  for (const SteinerTree& tree : forest.trees) {
    if (tree.net < 0 || static_cast<std::size_t>(tree.net) >= design.nets().size()) {
      return tree_tag(tree) + ": invalid net id";
    }
    if (!tree.is_valid_tree()) {
      return tree_tag(tree) + ": not a connected acyclic tree rooted at the driver";
    }
    const Net& net = design.net(tree.net);
    // Pin nodes must cover the net's driver and sinks exactly, pinned to
    // their placed positions; Steiner nodes must stay finite and on-die.
    std::multiset<int> tree_pins;
    std::vector<int> degree(tree.nodes.size(), 0);
    for (const SteinerEdge& e : tree.edges) {
      ++degree[static_cast<std::size_t>(e.a)];
      ++degree[static_cast<std::size_t>(e.b)];
    }
    for (std::size_t i = 0; i < tree.nodes.size(); ++i) {
      const SteinerNode& node = tree.nodes[i];
      if (!std::isfinite(node.pos.x) || !std::isfinite(node.pos.y)) {
        return tree_tag(tree) + ": node " + std::to_string(i) + " has non-finite position";
      }
      if (!design.die().contains(node.pos)) {
        std::ostringstream os;
        os << tree_tag(tree) << ": node " << i << " at " << node.pos
           << " outside die " << design.die();
        return os.str();
      }
      if (require_integral &&
          (node.pos.x != std::floor(node.pos.x) || node.pos.y != std::floor(node.pos.y))) {
        std::ostringstream os;
        os << tree_tag(tree) << ": node " << i << " at " << node.pos
           << " off the rectilinear (integer DBU) grid";
        return os.str();
      }
      if (node.is_steiner()) {
        ++steiner_nodes;
        if (require_min_degree && degree[i] < 3) {
          return tree_tag(tree) + ": Steiner node " + std::to_string(i) + " has degree " +
                 std::to_string(degree[i]) + " < 3";
        }
      } else {
        tree_pins.insert(node.pin);
        const PointI placed = design.pin_position(node.pin);
        if (node.pos.x != static_cast<double>(placed.x) ||
            node.pos.y != static_cast<double>(placed.y)) {
          std::ostringstream os;
          os << tree_tag(tree) << ": pin node " << i << " at " << node.pos
             << " detached from placed pin position " << placed;
          return os.str();
        }
      }
    }
    std::multiset<int> net_pins{net.driver_pin};
    net_pins.insert(net.sink_pins.begin(), net.sink_pins.end());
    if (tree_pins != net_pins) {
      return tree_tag(tree) + ": pin nodes do not match the net's driver+sinks";
    }
  }

  if (forest.num_movable() != static_cast<std::size_t>(steiner_nodes)) {
    return "movable index holds " + std::to_string(forest.num_movable()) +
           " entries but the forest has " + std::to_string(steiner_nodes) +
           " Steiner nodes (stale build_movable_index?)";
  }
  for (const MovableRef& ref : forest.movable()) {
    if (ref.tree < 0 || static_cast<std::size_t>(ref.tree) >= forest.trees.size()) {
      return "movable ref with out-of-range tree " + std::to_string(ref.tree);
    }
    const SteinerTree& tree = forest.trees[static_cast<std::size_t>(ref.tree)];
    if (ref.node < 0 || static_cast<std::size_t>(ref.node) >= tree.nodes.size() ||
        !tree.nodes[static_cast<std::size_t>(ref.node)].is_steiner()) {
      return "movable ref (" + std::to_string(ref.tree) + ", " + std::to_string(ref.node) +
             ") does not point at a Steiner node";
    }
  }
  return {};
}

std::string check_small_net_optimality(const SteinerTree& tree) {
  std::vector<PointF> pins;
  for (const SteinerNode& node : tree.nodes) {
    if (!node.is_steiner()) pins.push_back(node.pos);
  }
  if (pins.size() < 2 || pins.size() > 4) return {};  // brute force covers <= 4 pins

  // Hanan's theorem: some optimal RSMT uses only Steiner points from the
  // grid {pin xs} x {pin ys}, and an n-pin optimum needs at most n-2 of
  // them. Enumerate every such subset and take the best spanning length.
  std::vector<double> gx, gy;
  for (const PointF& p : pins) {
    gx.push_back(p.x);
    gy.push_back(p.y);
  }
  std::sort(gx.begin(), gx.end());
  gx.erase(std::unique(gx.begin(), gx.end()), gx.end());
  std::sort(gy.begin(), gy.end());
  gy.erase(std::unique(gy.begin(), gy.end()), gy.end());
  std::vector<PointF> hanan;
  for (double x : gx) {
    for (double y : gy) {
      const PointF p{x, y};
      if (std::find(pins.begin(), pins.end(), p) == pins.end()) hanan.push_back(p);
    }
  }

  double optimum = mst_length(pins);
  const std::size_t extra = pins.size() - 2;  // max useful Steiner points
  std::vector<PointF> points = pins;
  if (extra >= 1) {
    for (std::size_t i = 0; i < hanan.size(); ++i) {
      points.resize(pins.size());
      points.push_back(hanan[i]);
      optimum = std::min(optimum, mst_length(points));
      if (extra >= 2) {
        for (std::size_t j = i + 1; j < hanan.size(); ++j) {
          points.resize(pins.size() + 1);
          points.push_back(hanan[j]);
          optimum = std::min(optimum, mst_length(points));
        }
      }
    }
  }

  const double wl = tree.wirelength();
  constexpr double kEps = 1e-6;
  if (wl < optimum - kEps) {
    return tree_tag(tree) + ": wirelength " + std::to_string(wl) +
           " below the provable optimum " + std::to_string(optimum) +
           " (length accounting is broken)";
  }
  if (wl > optimum + kEps) {
    return tree_tag(tree) + ": wirelength " + std::to_string(wl) + " exceeds the " +
           std::to_string(pins.size()) + "-pin brute-force optimum " + std::to_string(optimum);
  }
  return {};
}

std::string check_lse_penalty_properties(const std::vector<double>& slack, double gamma) {
  if (slack.empty()) return "empty slack vector";
  if (!(gamma > 0.0)) return "non-positive LSE gamma";
  const double n = static_cast<double>(slack.size());
  const double min_s = *std::min_element(slack.begin(), slack.end());
  double hard_tns = 0.0;
  for (double s : slack) hard_tns += std::min(0.0, s);
  const double tol = 1e-9 * std::max(1.0, std::abs(min_s));

  // Smooth WNS: -LSE_gamma(-s), the penalty graph's exact formulation.
  Tape tape;
  const Value s_leaf = tape.leaf(Tensor::column(slack), /*requires_grad=*/true);
  const Value smooth_wns = tape.neg(tape.log_sum_exp(tape.neg(s_leaf), gamma));
  const double w = tape.value(smooth_wns)[0];
  if (w > min_s + tol) {
    return "smooth WNS " + std::to_string(w) + " above hard WNS " + std::to_string(min_s) +
           " (LSE must over-approximate the max)";
  }
  if (w < min_s - gamma * std::log(n) - tol) {
    return "smooth WNS " + std::to_string(w) + " below the LSE lower bound " +
           std::to_string(min_s - gamma * std::log(n));
  }
  tape.backward(smooth_wns);
  const Tensor& gw = tape.grad(s_leaf);
  double weight_sum = 0.0;
  for (std::size_t i = 0; i < gw.size(); ++i) {
    if (gw[i] < -1e-12 || gw[i] > 1.0 + 1e-12) {
      return "smooth-WNS gradient weight " + std::to_string(gw[i]) + " at endpoint " +
             std::to_string(i) + " outside [0, 1]";
    }
    weight_sum += gw[i];
  }
  if (std::abs(weight_sum - 1.0) > 1e-9) {
    return "smooth-WNS gradient weights sum to " + std::to_string(weight_sum) +
           " (softmax simplex requires 1)";
  }

  // Smooth TNS: sum of soft_min0, bounded by the hard TNS from below by
  // n * gamma * ln 2 (the worst per-endpoint smoothing error, at s = 0).
  Tape tape2;
  const Value s_leaf2 = tape2.leaf(Tensor::column(slack), /*requires_grad=*/true);
  const Value smooth_tns = tape2.sum_all(tape2.soft_min0(s_leaf2, gamma));
  const double t = tape2.value(smooth_tns)[0];
  const double tns_tol = 1e-9 * std::max(1.0, std::abs(hard_tns));
  if (t > hard_tns + tns_tol) {
    return "smooth TNS " + std::to_string(t) + " above hard TNS " + std::to_string(hard_tns);
  }
  if (t < hard_tns - n * gamma * std::log(2.0) - tns_tol) {
    return "smooth TNS " + std::to_string(t) + " below its lower bound " +
           std::to_string(hard_tns - n * gamma * std::log(2.0));
  }
  tape2.backward(smooth_tns);
  const Tensor& gt = tape2.grad(s_leaf2);
  for (std::size_t i = 0; i < gt.size(); ++i) {
    if (gt[i] < -1e-12 || gt[i] > 1.0 + 1e-12) {
      return "smooth-TNS gradient " + std::to_string(gt[i]) + " at endpoint " +
             std::to_string(i) + " outside [0, 1]";
    }
  }
  return {};
}

std::string check_keep_best_monotone(const RefineResult& result) {
  constexpr double kTol = 1e-9;
  if (result.best_wns + kTol < result.init_wns) {
    return "keep-best WNS regressed: init " + std::to_string(result.init_wns) + " -> best " +
           std::to_string(result.best_wns);
  }
  if (result.best_tns + kTol < result.init_tns) {
    return "keep-best TNS regressed: init " + std::to_string(result.init_tns) + " -> best " +
           std::to_string(result.best_tns);
  }
  if (static_cast<int>(result.wns_trace.size()) != result.iterations ||
      static_cast<int>(result.tns_trace.size()) != result.iterations) {
    return "trace length " + std::to_string(result.wns_trace.size()) + "/" +
           std::to_string(result.tns_trace.size()) + " does not cover " +
           std::to_string(result.iterations) + " iterations";
  }
  return {};
}

}  // namespace tsteiner::verify
