// Deterministic fuzz-case generation for the verification subsystem.
//
// A FuzzCase — synthetic design, placement, initial Steiner forest, tight
// clock, disturbance radius — is a pure function of one 64-bit seed plus a
// named scale, so any failure the DiffHarness finds is replayed from the
// printed seed alone (no ambient RNG state, no saved inputs required). The
// greedy shrinker exploits the same property: shrinking is just regenerating
// the case at reduced generator parameters and re-checking the predicate,
// which minimizes a failure to a few cells while keeping it a one-line repro.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "netlist/design_generator.hpp"
#include "steiner/steiner_tree.hpp"

namespace tsteiner::verify {

/// Shared cell library every fuzz case is generated against (the default
/// synthetic technology; one instance for the process).
const CellLibrary& fuzz_library();

struct FuzzCase {
  std::uint64_t seed = 0;   ///< the case seed everything below derives from
  std::string scale;        ///< "tiny" or "small"
  GeneratorParams params;   ///< derived from (seed, scale), reduced by shrinking
  double clock_frac = 0.0;  ///< clock = clock_frac * initial STA max_arrival
  double disturb_dist = 0.0;  ///< Steiner disturbance radius oracles use (DBU)
  Design design;
  SteinerForest forest;       ///< initial RSMT forest for `design`

  long long num_cells() const { return static_cast<long long>(design.cells().size()); }
};

/// Generator parameters for (seed, scale) — pure, used by make_case and as
/// the shrinker's starting point. Throws on an unknown scale name.
GeneratorParams derive_params(std::uint64_t seed, const std::string& scale);

/// Build the complete case for (seed, scale): generate, place, build the
/// Steiner forest, and set a clock tight enough that endpoints violate.
FuzzCase make_case(std::uint64_t seed, const std::string& scale);

/// Rebuild a case from explicit (possibly shrunk) parameters. Everything
/// except the structural sizes in `params` is re-derived from the seed, so
/// shrunk cases stay seed-replayable given the same parameter reductions.
FuzzCase make_case_from_params(std::uint64_t seed, const std::string& scale,
                               const GeneratorParams& params);

/// Greedy shrinker: repeatedly halves the structural generator parameters
/// (combinational cells, registers, ports) toward their floors, keeping each
/// reduction only when `still_fails` holds on the regenerated case. Returns
/// the smallest still-failing case found within `max_attempts` regenerations
/// (the input case if nothing smaller fails).
FuzzCase shrink_case(const FuzzCase& failing,
                     const std::function<bool(const FuzzCase&)>& still_fails,
                     int max_attempts = 48);

/// Save a standalone TSteinerDB snapshot of the case (META + LIBR + DSGN +
/// FRST chunks, readable by tools/tsteiner_db info/verify/extract).
bool save_case_snapshot(const FuzzCase& c, const std::string& path);

}  // namespace tsteiner::verify
