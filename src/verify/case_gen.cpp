#include "verify/case_gen.hpp"

#include <algorithm>
#include <stdexcept>

#include "db/bytes.hpp"
#include "db/codecs.hpp"
#include "db/container.hpp"
#include "place/placer.hpp"
#include "sta/sta.hpp"
#include "steiner/rsmt.hpp"

namespace tsteiner::verify {

namespace {

// Structural floors the shrinker may not cross (generate_design's own
// minimums plus enough registers to keep a clocked path).
constexpr int kMinComb = 8;
constexpr int kMinRegs = 2;
constexpr int kMinPorts = 2;

FuzzCase finish_case(std::uint64_t seed, const std::string& scale,
                     const GeneratorParams& params) {
  // Everything except the structural sizes comes from fixed substreams of
  // the case seed, so a shrunk case differs from the original only in size.
  Rng knobs(Rng::mix(seed, 0xC10C));
  const double clock_frac = knobs.uniform(0.55, 0.95);

  FuzzCase c{seed,   scale, params, clock_frac, 0.0,
             generate_design(fuzz_library(), params), SteinerForest{}};
  place_design(c.design);
  c.forest = build_forest(c.design);

  // Clock tight enough that some endpoints violate (the regime refinement
  // and the smoothed penalty are designed for).
  const StaResult sta = run_sta(c.design, c.forest, nullptr);
  c.design.set_clock_period(sta.max_arrival > 0.0 ? clock_frac * sta.max_arrival : 1.0);

  const double die_w = static_cast<double>(c.design.die().width());
  c.disturb_dist = std::max(4.0, knobs.uniform(0.05, 0.20) * die_w);
  return c;
}

}  // namespace

const CellLibrary& fuzz_library() {
  static const CellLibrary lib = CellLibrary::make_default();
  return lib;
}

GeneratorParams derive_params(std::uint64_t seed, const std::string& scale) {
  Rng rng(Rng::mix(seed, 0x5ca1e));
  GeneratorParams p;
  if (scale == "tiny") {
    p.num_comb_cells = static_cast<int>(rng.uniform_int(24, 96));
  } else if (scale == "small") {
    p.num_comb_cells = static_cast<int>(rng.uniform_int(120, 360));
  } else {
    throw std::runtime_error("unknown fuzz scale: " + scale);
  }
  p.num_registers =
      std::max(kMinRegs, p.num_comb_cells / static_cast<int>(rng.uniform_int(6, 10)));
  p.num_primary_inputs = static_cast<int>(rng.uniform_int(2, 6));
  p.num_primary_outputs = static_cast<int>(rng.uniform_int(2, 6));
  p.seed = Rng::mix(seed, 0xde51);
  p.name = "fuzz-" + std::to_string(seed);
  return p;
}

FuzzCase make_case(std::uint64_t seed, const std::string& scale) {
  return finish_case(seed, scale, derive_params(seed, scale));
}

FuzzCase make_case_from_params(std::uint64_t seed, const std::string& scale,
                               const GeneratorParams& params) {
  return finish_case(seed, scale, params);
}

FuzzCase shrink_case(const FuzzCase& failing,
                     const std::function<bool(const FuzzCase&)>& still_fails,
                     int max_attempts) {
  FuzzCase best = failing;
  int attempts = 0;
  bool progressed = true;
  while (progressed && attempts < max_attempts) {
    progressed = false;
    // Candidate reductions, boldest first; each regenerates from the same
    // seed so the shrunk case remains a (seed, params) one-liner.
    const GeneratorParams& b = best.params;
    GeneratorParams candidates[4] = {b, b, b, b};
    candidates[0].num_comb_cells = std::max(kMinComb, b.num_comb_cells / 2);
    candidates[1].num_comb_cells = std::max(kMinComb, (b.num_comb_cells * 3) / 4);
    candidates[2].num_registers = std::max(kMinRegs, b.num_registers / 2);
    candidates[3].num_primary_inputs = std::max(kMinPorts, b.num_primary_inputs / 2);
    candidates[3].num_primary_outputs = std::max(kMinPorts, b.num_primary_outputs / 2);
    for (const GeneratorParams& cand : candidates) {
      if (cand.num_comb_cells == b.num_comb_cells &&
          cand.num_registers == b.num_registers &&
          cand.num_primary_inputs == b.num_primary_inputs &&
          cand.num_primary_outputs == b.num_primary_outputs) {
        continue;  // already at the floor for this reduction
      }
      if (attempts >= max_attempts) break;
      ++attempts;
      FuzzCase smaller = make_case_from_params(best.seed, best.scale, cand);
      if (still_fails(smaller)) {
        best = std::move(smaller);
        progressed = true;
        break;  // restart from the new, smaller case
      }
    }
  }
  return best;
}

bool save_case_snapshot(const FuzzCase& c, const std::string& path) {
  db::DbWriter writer;
  if (!writer.open(path)) return false;

  // META mirrors the layout flow/snapshot writes and tools/tsteiner_db
  // parses: kind, tag, design count, model flag, loss, library fingerprint.
  db::ByteWriter meta;
  meta.str("fuzz-case");
  meta.str("seed=" + std::to_string(c.seed) + " scale=" + c.scale);
  meta.u32(1);
  meta.u8(0);
  meta.f64(0.0);
  meta.u32(db::library_fingerprint(fuzz_library()));
  if (!writer.add_chunk(db::kChunkMeta, meta.bytes())) return false;

  if (!writer.add_chunk(db::kChunkLibrary, db::encode_library(fuzz_library()))) return false;

  BenchmarkSpec spec;
  spec.name = c.params.name;
  spec.target_cells = static_cast<int>(c.num_cells());
  spec.endpoints = static_cast<int>(c.design.endpoint_pins().size());
  spec.seed = c.seed;

  // DSGN/FRST payloads carry the same u32 design-index prefix the suite
  // snapshots use, so tsteiner_db verify/extract decode them unchanged.
  db::ByteWriter design_payload;
  design_payload.u32(0);
  design_payload.raw(db::encode_design(spec, c.design));
  if (!writer.add_chunk(db::kChunkDesign, design_payload.bytes())) return false;

  db::ByteWriter forest_payload;
  forest_payload.u32(0);
  forest_payload.raw(db::encode_forest(c.forest));
  if (!writer.add_chunk(db::kChunkForest, forest_payload.bytes())) return false;

  return writer.finish();
}

}  // namespace tsteiner::verify
