// Differential-testing harness: runs named oracle pairs and invariant
// checks over seeded fuzz cases, shrinks failures, and emits standalone
// repro lines.
//
// Each oracle compares two implementations that promise the same answer
// (IncrementalSta vs full run_sta, retained-program replay vs fresh tape vs
// finite differences, thread width 1 vs N, DB save -> load -> save) or
// checks a structural invariant (forest well-formedness, small-net RSMT
// optimality, LSE penalty mathematics, keep-best monotonicity). Because the
// oracle itself is the safety net, every oracle that can carries a mutation
// mode: a known perturbation (skip a dirty net, nudge one replay coordinate,
// flip a container byte, drop a tree edge) that MUST make it fail — run via
// HarnessOptions::mutate_oracle, asserted by tests/verify_test.cpp and the
// fuzz CI leg, so a silently vacuous oracle cannot survive.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/rng.hpp"
#include "verify/case_gen.hpp"

namespace tsteiner::verify {

struct OracleContext {
  const FuzzCase* fuzz_case = nullptr;
  Rng* rng = nullptr;        ///< per-(case, oracle) stream, derived from the case seed
  bool mutate = false;       ///< inject this oracle's known perturbation
  std::string work_dir;      ///< scratch directory for oracles that touch disk
};

/// Returns empty on pass, a description of the divergence on failure.
using OracleFn = std::function<std::string(OracleContext&)>;

struct Oracle {
  std::string name;
  OracleFn fn;
  /// Run on every stride-th case (1 = every case). Expensive oracles use a
  /// stride so a 200-case sweep stays inside the fuzz time budget while
  /// still exercising them across dozens of distinct designs.
  int stride = 1;
  bool supports_mutation = false;
};

struct OracleFailure {
  std::string oracle;
  std::uint64_t seed = 0;    ///< case seed: replays via --replay <seed>
  std::string scale;
  std::string message;
  long long shrunk_cells = 0;      ///< design size after greedy shrinking
  GeneratorParams shrunk_params;   ///< shrunk generator parameters
  std::string snapshot_path;       ///< saved .tsdb of the shrunk case ("" if unsaved)
  std::string repro;               ///< standalone repro command line
};

struct HarnessOptions {
  int cases = 50;
  std::uint64_t seed = 1;         ///< run seed; case k uses Rng::mix(seed, k)
  std::string scale = "tiny";
  std::vector<std::string> only;  ///< restrict to these oracle names (empty = all)
  std::string mutate_oracle;      ///< enable mutation mode for this oracle
  bool shrink = true;
  std::string work_dir = "tsteiner_fuzz_tmp";
  int max_failures = 3;           ///< stop the sweep after this many failures
  std::uint64_t replay_seed = 0;  ///< when nonzero, run exactly this case seed
  bool replay = false;
  bool verbose = false;           ///< per-case progress on stderr
};

class DiffHarness {
 public:
  void add_oracle(Oracle oracle);
  const std::vector<Oracle>& oracles() const { return oracles_; }

  /// The built-in oracle suite covering STA, autodiff replay, thread-width
  /// determinism, DB round-trips, and the Steiner/penalty invariants.
  static DiffHarness standard();

  /// Run the sweep; prints failures (with repro lines) to stderr and
  /// returns them. An empty vector means every oracle held on every case.
  std::vector<OracleFailure> run(const HarnessOptions& options) const;

 private:
  std::vector<Oracle> oracles_;
};

}  // namespace tsteiner::verify
