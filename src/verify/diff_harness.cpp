#include "verify/diff_harness.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "db/bytes.hpp"
#include "db/codecs.hpp"
#include "db/container.hpp"
#include "flow/flow.hpp"
#include "flow/incremental_signoff.hpp"
#include "gnn/graph_cache.hpp"
#include "gnn/model.hpp"
#include "gnn/steiner_predictor.hpp"
#include "steiner/batch_builder.hpp"
#include "search/topo_edits.hpp"
#include "serve/client.hpp"
#include "serve/ops.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"
#include "sta/incremental.hpp"
#include "tsteiner/gradient.hpp"
#include "tsteiner/penalty.hpp"
#include "tsteiner/random_move.hpp"
#include "tsteiner/refine.hpp"
#include "util/parallel.hpp"
#include "verify/invariants.hpp"

namespace tsteiner::verify {

namespace {

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) h = (h ^ c) * 1099511628211ull;
  return h;
}

bool near(double a, double b, double tol) { return std::abs(a - b) <= tol; }

/// Tolerance for IncrementalSta vs full STA. The incremental path prunes on
/// bit equality, so it is exact; the 1e-9 here only mirrors what the unit
/// tests enforce (the bit-level check lives in the signoff-incremental
/// oracle's compare_signoff).
std::string compare_sta(const StaResult& inc, const StaResult& full) {
  if (inc.arrival.size() != full.arrival.size()) return "arrival vector size mismatch";
  for (std::size_t i = 0; i < inc.arrival.size(); ++i) {
    if (!near(inc.arrival[i], full.arrival[i], 1e-9)) {
      return "arrival diverges at pin " + std::to_string(i) + ": incremental " +
             std::to_string(inc.arrival[i]) + " vs full " + std::to_string(full.arrival[i]);
    }
    if (!near(inc.slew[i], full.slew[i], 1e-9)) {
      return "slew diverges at pin " + std::to_string(i);
    }
  }
  if (!near(inc.wns, full.wns, 1e-9)) return "WNS diverges";
  if (!near(inc.tns, full.tns, 1e-9)) return "TNS diverges";
  if (inc.num_violations != full.num_violations) return "violation count diverges";
  if (inc.num_slew_violations != full.num_slew_violations) return "slew-violation count diverges";
  if (inc.num_cap_violations != full.num_cap_violations) return "cap-violation count diverges";
  return {};
}

std::string bits_compare(const std::vector<double>& a, const std::vector<double>& b,
                         const char* what) {
  if (a.size() != b.size()) return std::string(what) + " size mismatch";
  if (!a.empty() && std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) != 0) {
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (std::memcmp(&a[i], &b[i], sizeof(double)) != 0) {
        return std::string(what) + " not bit-identical at element " + std::to_string(i) +
               ": " + std::to_string(a[i]) + " vs " + std::to_string(b[i]);
      }
    }
  }
  return {};
}

std::string bits_compare_grad(const GradientResult& a, const GradientResult& b) {
  if (std::memcmp(&a.penalty, &b.penalty, sizeof(double)) != 0) {
    return "penalty not bit-identical: " + std::to_string(a.penalty) + " vs " +
           std::to_string(b.penalty);
  }
  if (std::memcmp(&a.eval_wns_ns, &b.eval_wns_ns, sizeof(double)) != 0 ||
      std::memcmp(&a.eval_tns_ns, &b.eval_tns_ns, sizeof(double)) != 0) {
    return "model WNS/TNS not bit-identical";
  }
  std::string msg = bits_compare(a.grad_x, b.grad_x, "grad_x");
  if (msg.empty()) msg = bits_compare(a.grad_y, b.grad_y, "grad_y");
  return msg;
}

/// Restores the ambient pool width on every oracle exit path.
struct ThreadWidthGuard {
  std::size_t prev;
  ThreadWidthGuard() : prev(parallel_threads()) {}
  ~ThreadWidthGuard() { set_parallel_threads(prev); }
};

TimingGnn make_case_model(const FuzzCase& c) {
  GnnConfig cfg;
  cfg.hidden = 6;
  cfg.type_embed = 4;
  cfg.delay_hidden = 8;
  cfg.seed = Rng::mix(c.seed, 0x90de1);
  return TimingGnn(cfg, fuzz_library().num_types());
}

/// Indices of trees with at least one movable Steiner node.
std::vector<int> movable_trees(const SteinerForest& forest) {
  std::vector<int> out;
  for (std::size_t t = 0; t < forest.trees.size(); ++t) {
    if (forest.trees[t].num_steiner_nodes() > 0) out.push_back(static_cast<int>(t));
  }
  return out;
}

/// Move every Steiner node of one tree by a random offset, clamped to the
/// die and rounded to the grid (random_disturb's per-tree equivalent).
void disturb_tree(SteinerTree& tree, const RectI& die, double dist, Rng& rng) {
  for (SteinerNode& node : tree.nodes) {
    if (!node.is_steiner()) continue;
    node.pos.x += rng.uniform(-dist, dist);
    node.pos.y += rng.uniform(-dist, dist);
    node.pos = to_f(round_to_i(clamp_into(node.pos, die)));
  }
}

// --- oracle: IncrementalSta vs full run_sta --------------------------------

std::string oracle_sta_incremental(OracleContext& ctx) {
  const FuzzCase& c = *ctx.fuzz_case;
  Rng& rng = *ctx.rng;
  const std::vector<int> candidates = movable_trees(c.forest);
  if (candidates.empty()) return {};  // no Steiner points to move

  IncrementalSta inc(c.design);
  inc.analyze(c.forest, nullptr);
  SteinerForest cur = c.forest;
  const double die_w = static_cast<double>(c.design.die().width());

  constexpr int kRounds = 3;
  for (int round = 0; round < kRounds; ++round) {
    const bool mutate_now = ctx.mutate && round == kRounds - 1;
    std::vector<int> picks = candidates;
    rng.shuffle(picks);
    const std::size_t k = 1 + rng.index(std::min<std::size_t>(4, picks.size()));
    picks.resize(k);

    std::vector<int> dirty;
    for (std::size_t m = 0; m < picks.size(); ++m) {
      SteinerTree& tree = cur.trees[static_cast<std::size_t>(picks[m])];
      // Mutation needs a move large enough that skipping the net is always
      // visible above the comparison tolerance.
      const double dist = mutate_now && m + 1 == picks.size()
                              ? std::max(c.disturb_dist, die_w / 3.0)
                              : c.disturb_dist;
      disturb_tree(tree, c.design.die(), dist, rng);
      // Dirty lists assembled from per-move records repeat nets; feed the
      // duplicates straight through to exercise update()'s dedup.
      const int copies = 1 + static_cast<int>(rng.index(2));
      for (int r = 0; r < copies; ++r) dirty.push_back(tree.net);
    }
    // An unmoved net in the dirty list must be a no-op.
    if (rng.bernoulli(0.3)) {
      const int extra = candidates[rng.index(candidates.size())];
      dirty.push_back(cur.trees[static_cast<std::size_t>(extra)].net);
    }
    if (mutate_now) {
      // The injected bug: the last moved net never makes it into the dirty
      // list, exactly the class of bookkeeping slip the oracle exists for.
      const int skipped = cur.trees[static_cast<std::size_t>(picks.back())].net;
      std::erase(dirty, skipped);
    }
    rng.shuffle(dirty);

    const StaResult& fast = inc.update(cur, nullptr, dirty);
    const StaResult full = run_sta(c.design, cur, nullptr);
    const std::string msg = compare_sta(fast, full);
    if (!msg.empty()) {
      return "round " + std::to_string(round) + " (" + std::to_string(dirty.size()) +
             " dirty entries): " + msg;
    }
  }
  return {};
}

// --- oracle: IncrementalSignoff vs full Flow::run_signoff ------------------

/// Bit-level comparison of an incremental sign-off against the golden
/// pipeline: metrics, STA arrays, and every routed path. No epsilon — the
/// incremental path's contract is exactness.
std::string compare_signoff(const IncrementalSignoff::Result& inc, const FlowResult& full) {
  const auto bits_eq = [](double a, double b) {
    return std::memcmp(&a, &b, sizeof(double)) == 0;
  };
  if (!bits_eq(inc.metrics.wns_ns, full.metrics.wns_ns)) {
    return "WNS not bit-identical: " + std::to_string(inc.metrics.wns_ns) + " vs " +
           std::to_string(full.metrics.wns_ns);
  }
  if (!bits_eq(inc.metrics.tns_ns, full.metrics.tns_ns)) return "TNS not bit-identical";
  if (inc.metrics.num_vios != full.metrics.num_vios) return "violation count diverges";
  if (!bits_eq(inc.metrics.wirelength_dbu, full.metrics.wirelength_dbu)) {
    return "DR wirelength not bit-identical: " + std::to_string(inc.metrics.wirelength_dbu) +
           " vs " + std::to_string(full.metrics.wirelength_dbu);
  }
  if (inc.metrics.num_vias != full.metrics.num_vias) return "via count diverges";
  if (inc.metrics.num_drvs != full.metrics.num_drvs) return "DRV count diverges";
  if (!bits_eq(inc.gr->wirelength_dbu, full.gr.wirelength_dbu)) {
    return "GR wirelength not bit-identical";
  }
  if (!bits_eq(inc.gr->total_overflow, full.gr.total_overflow)) {
    return "GR overflow not bit-identical";
  }
  if (inc.gr->overflowed_edges != full.gr.overflowed_edges) {
    return "overflowed-edge count diverges";
  }
  if (inc.gr->connections.size() != full.gr.connections.size()) {
    return "connection count diverges";
  }
  for (std::size_t i = 0; i < inc.gr->connections.size(); ++i) {
    const auto& pa = inc.gr->connections[i].path;
    const auto& pb = full.gr.connections[i].path;
    if (pa.size() != pb.size() ||
        (!pa.empty() && std::memcmp(pa.data(), pb.data(), pa.size() * sizeof(GCell)) != 0)) {
      return "routed path diverges at connection " + std::to_string(i);
    }
  }
  std::string msg = bits_compare(inc.sta->arrival, full.sta.arrival, "STA arrival");
  if (msg.empty()) msg = bits_compare(inc.sta->slew, full.sta.slew, "STA slew");
  if (msg.empty()) {
    msg = bits_compare(inc.sta->endpoint_slack, full.sta.endpoint_slack, "endpoint slack");
  }
  return msg;
}

/// Move every Steiner node of one tree toward the die's far side by `dist` —
/// a displacement guaranteed to change gcell endpoints, so an *undeclared*
/// move of this size is always visible in the routed result.
void shove_tree(SteinerTree& tree, const RectI& die, double dist) {
  const double mid = (static_cast<double>(die.lo.x) + static_cast<double>(die.hi.x)) / 2.0;
  for (SteinerNode& node : tree.nodes) {
    if (!node.is_steiner()) continue;
    node.pos.x += node.pos.x < mid ? dist : -dist;
    node.pos = to_f(round_to_i(clamp_into(node.pos, die)));
  }
}

std::string oracle_signoff_incremental(OracleContext& ctx) {
  const FuzzCase& c = *ctx.fuzz_case;
  Rng& rng = *ctx.rng;
  Design design = c.design;  // the Flow constructor recalibrates the clock
  const Flow flow(&design);
  const std::vector<int> candidates = movable_trees(flow.initial_forest());
  if (candidates.empty()) return {};

  IncrementalSignoff inc(&design, flow.options());
  inc.full(flow.initial_forest());
  {
    const FlowResult ref = flow.run_signoff(flow.initial_forest());
    const std::string msg = compare_signoff(inc.result(), ref);
    if (!msg.empty()) return "anchor full sign-off: " + msg;
  }

  SteinerForest cur = flow.initial_forest();
  const double die_w = static_cast<double>(design.die().width());

  constexpr int kRounds = 3;
  for (int round = 0; round < kRounds; ++round) {
    const bool mutate_now = ctx.mutate && round == kRounds - 1;
    std::vector<int> picks = candidates;
    rng.shuffle(picks);
    const std::size_t k = 1 + rng.index(std::min<std::size_t>(4, picks.size()));
    picks.resize(k);

    std::vector<int> dirty;
    for (int pick : picks) {
      SteinerTree& tree = cur.trees[static_cast<std::size_t>(pick)];
      disturb_tree(tree, design.die(), c.disturb_dist, rng);
      // Refine emits one dirty entry per moved point: duplicates are normal.
      const int copies = 1 + static_cast<int>(rng.index(2));
      for (int r = 0; r < copies; ++r) dirty.push_back(tree.net);
    }
    // An unmoved net in the dirty list must be harmless (exactness is about
    // *missing* entries, never extra ones).
    if (rng.bernoulli(0.3)) {
      const int extra = candidates[rng.index(candidates.size())];
      dirty.push_back(cur.trees[static_cast<std::size_t>(extra)].net);
    }
    if (mutate_now) {
      // The injected bug: one more tree moves — far enough to change its
      // gcell endpoints — and its net never enters the dirty list. The
      // dirty-net contract says this must NOT be healed, so the oracle has
      // to flag the divergence.
      std::vector<int> unpicked;
      for (int t : candidates) {
        if (std::find(picks.begin(), picks.end(), t) == picks.end()) unpicked.push_back(t);
      }
      const int victim = unpicked.empty() ? picks.back()
                                          : unpicked[rng.index(unpicked.size())];
      shove_tree(cur.trees[static_cast<std::size_t>(victim)], design.die(),
                 std::max(c.disturb_dist, die_w / 3.0));
      const int skipped = cur.trees[static_cast<std::size_t>(victim)].net;
      std::erase(dirty, skipped);
    }
    rng.shuffle(dirty);

    const IncrementalSignoff::Result& fast = inc.update(cur, dirty);
    const FlowResult ref = flow.run_signoff(cur);
    const std::string msg = compare_signoff(fast, ref);
    if (!msg.empty()) {
      return "round " + std::to_string(round) + " (" + std::to_string(dirty.size()) +
             " dirty entries, " + std::to_string(fast.num_rerouted) + " rerouted): " + msg;
    }
  }
  return {};
}

// --- oracle: retained replay vs fresh tape vs finite differences -----------

std::string oracle_grad_replay(OracleContext& ctx) {
  const FuzzCase& c = *ctx.fuzz_case;
  Rng& rng = *ctx.rng;
  if (c.forest.num_movable() == 0) return {};
  const TimingGnn model = make_case_model(c);
  const auto cache = build_graph_cache(c.design, c.forest);
  PenaltyWeights w;
  std::vector<double> xs = c.forest.gather_x();
  std::vector<double> ys = c.forest.gather_y();

  GradientEvaluator evaluator(model, *cache, c.design, xs, ys, w);
  constexpr int kSteps = 3;
  for (int step = 0; step < kSteps; ++step) {
    if (step > 0) {
      for (std::size_t i = 0; i < xs.size(); ++i) {
        xs[i] += static_cast<double>(rng.uniform_int(-3, 3));
        ys[i] += static_cast<double>(rng.uniform_int(-3, 3));
      }
      w.lambda_w *= 1.01;  // the growth schedule's mutable-lambda replay path
      w.lambda_t *= 1.01;
    }
    const GradientResult fresh = compute_timing_gradients(model, *cache, c.design, xs, ys, w);
    std::vector<double> xs_replay = xs;
    if (ctx.mutate && step == kSteps - 1) {
      // The injected bug: one coordinate leaf is stale on the replay side.
      // Pick a coordinate the penalty actually depends on (nonzero
      // gradient) — Steiner points in timing-dead cones have no influence
      // and would make the perturbation invisible.
      std::vector<std::size_t> live;
      for (std::size_t i = 0; i < fresh.grad_x.size(); ++i) {
        if (fresh.grad_x[i] != 0.0) live.push_back(i);
      }
      const std::size_t idx = live.empty() ? rng.index(xs_replay.size())
                                           : live[rng.index(live.size())];
      xs_replay[idx] += 2.0;
    }
    const GradientResult replayed = evaluator.gradients(xs_replay, ys, w);
    const std::string msg = bits_compare_grad(fresh, replayed);
    if (!msg.empty()) return "step " + std::to_string(step) + ": replay vs fresh tape: " + msg;
  }

  // Central finite differences over a few coordinates ground the analytic
  // gradient in the function the replay actually evaluates.
  const GradientResult g = evaluator.gradients(xs, ys, w);
  const double eps = 1e-4;
  const std::size_t stride = std::max<std::size_t>(1, xs.size() / 2);
  for (std::size_t i = 0; i < xs.size(); i += stride) {
    std::vector<double> xp = xs, xm = xs;
    xp[i] += eps;
    xm[i] -= eps;
    const double fp = evaluator.evaluate(xp, ys, w).penalty;
    const double fm = evaluator.evaluate(xm, ys, w).penalty;
    const double numeric = (fp - fm) / (2.0 * eps);
    if (!near(g.grad_x[i], numeric, 1e-4 + 0.05 * std::abs(numeric))) {
      return "analytic dP/dX[" + std::to_string(i) + "] = " + std::to_string(g.grad_x[i]) +
             " vs central difference " + std::to_string(numeric);
    }
  }
  return {};
}

// --- oracle: thread width 1 vs N bit-identity ------------------------------

std::string oracle_thread_width(OracleContext& ctx) {
  const FuzzCase& c = *ctx.fuzz_case;
  ThreadWidthGuard guard;

  set_parallel_threads(1);
  const StaResult serial = run_sta(c.design, c.forest, nullptr);

  set_parallel_threads(4);
  SteinerForest wide_forest = c.forest;
  StaResult wide;
  if (ctx.mutate) {
    // The injected bug: the wide run sees divergent state. Nudge a Steiner
    // point when one exists; otherwise flip one arrival bit directly.
    const std::vector<int> cand = movable_trees(wide_forest);
    if (!cand.empty()) {
      for (SteinerNode& n : wide_forest.trees[static_cast<std::size_t>(cand[0])].nodes) {
        if (n.is_steiner()) {
          n.pos = to_f(round_to_i(clamp_into({n.pos.x + 4.0, n.pos.y}, c.design.die())));
          break;
        }
      }
      wide = run_sta(c.design, wide_forest, nullptr);
    } else {
      wide = run_sta(c.design, wide_forest, nullptr);
      if (!wide.arrival.empty()) {
        std::uint64_t bits;
        std::memcpy(&bits, &wide.arrival[wide.arrival.size() / 2], sizeof(bits));
        bits ^= 1ull;
        std::memcpy(&wide.arrival[wide.arrival.size() / 2], &bits, sizeof(bits));
      }
    }
  } else {
    wide = run_sta(c.design, wide_forest, nullptr);
  }

  std::string msg = bits_compare(serial.arrival, wide.arrival, "STA arrival (width 1 vs 4)");
  if (msg.empty()) msg = bits_compare(serial.slew, wide.slew, "STA slew (width 1 vs 4)");
  if (msg.empty()) {
    msg = bits_compare(serial.endpoint_slack, wide.endpoint_slack,
                       "endpoint slack (width 1 vs 4)");
  }
  if (msg.empty() && std::memcmp(&serial.wns, &wide.wns, sizeof(double)) != 0) {
    msg = "WNS not bit-identical across widths";
  }
  if (!msg.empty()) return msg;

  // The gradient path (GNN forward + penalty backward) under both widths.
  if (c.forest.num_movable() == 0) return {};
  const TimingGnn model = make_case_model(c);
  const auto cache = build_graph_cache(c.design, c.forest);
  const PenaltyWeights w;
  const std::vector<double> xs = c.forest.gather_x();
  const std::vector<double> ys = c.forest.gather_y();
  set_parallel_threads(1);
  const GradientResult g1 = compute_timing_gradients(model, *cache, c.design, xs, ys, w);
  set_parallel_threads(4);
  const GradientResult g4 = compute_timing_gradients(model, *cache, c.design, xs, ys, w);
  msg = bits_compare_grad(g1, g4);
  if (!msg.empty()) return "gradient width 1 vs 4: " + msg;
  return {};
}

// --- oracle: DB save -> load -> save byte round-trip -----------------------

void write_case_file(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

std::vector<std::uint8_t> read_case_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

std::string oracle_db_roundtrip(OracleContext& ctx) {
  const FuzzCase& c = *ctx.fuzz_case;
  const std::string base =
      ctx.work_dir + "/roundtrip_" + std::to_string(c.seed);
  const std::string path1 = base + ".tsdb";
  const std::string path2 = base + ".again.tsdb";

  if (!save_case_snapshot(c, path1)) return "cannot write snapshot " + path1;
  if (ctx.mutate) {
    // The injected bug: one payload byte flips on disk. Every container
    // layer downstream must refuse the file rather than decode garbage.
    std::vector<std::uint8_t> bytes = read_case_file(path1);
    if (bytes.empty()) return "snapshot unreadable before mutation";
    bytes[bytes.size() / 2] ^= 0x01;
    write_case_file(path1, bytes);
  }

  db::DbReader reader;
  std::string error;
  if (!reader.open(path1, &error)) return "reader rejected snapshot: " + error;

  const db::ChunkInfo* lib_chunk = reader.find(db::kChunkLibrary);
  const db::ChunkInfo* design_chunk = reader.find(db::kChunkDesign);
  const db::ChunkInfo* forest_chunk = reader.find(db::kChunkForest);
  if (lib_chunk == nullptr || design_chunk == nullptr || forest_chunk == nullptr) {
    return "snapshot missing LIBR/DSGN/FRST chunks";
  }

  const auto lib = db::decode_library(reader.payload(*lib_chunk),
                                      static_cast<std::size_t>(lib_chunk->size));
  if (!lib) return "LIBR chunk does not decode";
  const auto design = db::decode_design(reader.payload(*design_chunk) + 4,
                                        static_cast<std::size_t>(design_chunk->size) - 4, *lib);
  if (!design) return "DSGN chunk does not decode";
  const auto forest = db::decode_forest(reader.payload(*forest_chunk) + 4,
                                        static_cast<std::size_t>(forest_chunk->size) - 4);
  if (!forest) return "FRST chunk does not decode";

  // Re-encode the decoded objects: every chunk payload must reproduce the
  // stored bytes exactly (save -> load -> save is the identity).
  const std::vector<std::uint8_t> lib_again = db::encode_library(*lib);
  if (lib_again.size() != lib_chunk->size ||
      std::memcmp(lib_again.data(), reader.payload(*lib_chunk), lib_again.size()) != 0) {
    return "library payload not byte-stable across decode/encode";
  }
  db::ByteWriter design_again;
  design_again.u32(0);
  design_again.raw(db::encode_design(design->spec, design->design));
  if (design_again.bytes().size() != design_chunk->size ||
      std::memcmp(design_again.bytes().data(), reader.payload(*design_chunk),
                  design_again.bytes().size()) != 0) {
    return "design payload not byte-stable across decode/encode";
  }
  db::ByteWriter forest_again;
  forest_again.u32(0);
  forest_again.raw(db::encode_forest(*forest));
  if (forest_again.bytes().size() != forest_chunk->size ||
      std::memcmp(forest_again.bytes().data(), reader.payload(*forest_chunk),
                  forest_again.bytes().size()) != 0) {
    return "forest payload not byte-stable across decode/encode";
  }

  // Whole-file check: a second save built from the decoded state must be
  // byte-identical to the first container.
  FuzzCase reloaded = c;
  reloaded.design = design->design;
  reloaded.forest = *forest;
  if (!save_case_snapshot(reloaded, path2)) return "cannot write second snapshot";
  const std::vector<std::uint8_t> bytes1 = read_case_file(path1);
  const std::vector<std::uint8_t> bytes2 = read_case_file(path2);
  if (bytes1 != bytes2) return "save -> load -> save produced a different file";

  std::filesystem::remove(path1);
  std::filesystem::remove(path2);
  return {};
}

// --- oracle: forest structural invariants ----------------------------------

std::string oracle_forest_invariants(OracleContext& ctx) {
  const FuzzCase& c = *ctx.fuzz_case;
  std::string msg = check_forest_invariants(c.design, c.forest, /*require_min_degree=*/true);
  if (!msg.empty()) return "initial forest: " + msg;

  // Position-only disturbance (seeded overload: part of the case's replay
  // closure) must preserve every structural invariant.
  SteinerForest disturbed = random_disturb(c.forest, c.design.die(), c.disturb_dist,
                                           Rng::mix(c.seed, 0xd157));
  if (ctx.mutate && !disturbed.trees.empty()) {
    // The injected bug: one tree loses an edge (the classic off-by-one in a
    // topology edit), disconnecting it.
    for (SteinerTree& tree : disturbed.trees) {
      if (!tree.edges.empty()) {
        tree.edges.pop_back();
        break;
      }
    }
  }
  msg = check_forest_invariants(c.design, disturbed, /*require_min_degree=*/true);
  if (!msg.empty()) return "disturbed forest: " + msg;
  return {};
}

// --- oracle: exact RSMT optimality for small nets --------------------------

std::string oracle_rsmt_small(OracleContext& ctx) {
  const FuzzCase& c = *ctx.fuzz_case;
  if (ctx.mutate) {
    // The injected bug: a detoured 2-pin connection (driver -> far Steiner
    // point -> sink) that any optimality check worth its name must flag.
    for (const SteinerTree& tree : c.forest.trees) {
      if (tree.nodes.size() != 2 || tree.edges.size() != 1) continue;
      SteinerTree detour = tree;
      const PointF far = clamp_into(
          {detour.nodes[0].pos.x + static_cast<double>(c.design.die().width()) / 2.0 + 8.0,
           detour.nodes[0].pos.y},
          c.design.die());
      if (manhattan(far, detour.nodes[0].pos) + manhattan(far, detour.nodes[1].pos) <=
          manhattan(detour.nodes[0].pos, detour.nodes[1].pos)) {
        continue;  // clamped onto the direct path; try another net
      }
      detour.nodes.push_back({far, -1});
      detour.edges.clear();
      detour.edges.push_back({0, 2});
      detour.edges.push_back({2, 1});
      return check_small_net_optimality(detour);
    }
    return {};  // no 2-pin net to detour in this case
  }
  int checked = 0;
  for (const SteinerTree& tree : c.forest.trees) {
    if (checked >= 60) break;
    int pins = 0;
    for (const SteinerNode& n : tree.nodes) pins += n.is_steiner() ? 0 : 1;
    if (pins < 2 || pins > 4) continue;
    ++checked;
    const std::string msg = check_small_net_optimality(tree);
    if (!msg.empty()) return msg;
  }
  return {};
}

// --- oracle: LSE penalty mathematics ---------------------------------------

std::string oracle_lse_penalty(OracleContext& ctx) {
  const FuzzCase& c = *ctx.fuzz_case;
  const StaResult sta = run_sta(c.design, c.forest, nullptr);
  if (sta.endpoint_slack.empty()) return "case has no endpoints";
  const double clock = c.design.clock_period();
  std::vector<double> slack(sta.endpoint_slack);
  for (double& s : slack) s /= clock;  // the normalized units the penalty graph uses
  const double gamma = penalty_gamma(PenaltyWeights{}, clock);

  const std::string msg = check_lse_penalty_properties(slack, gamma);
  if (!msg.empty()) return msg;

  // Cross-implementation bound: the smoothed WNS over the slack vector the
  // penalty graph would see must under-approximate the sign-off hard WNS.
  // The bound holds for every positive temperature, so the cross-check uses
  // a tight one — at the production gamma (10 ns / clock) the smoothing
  // slack would mask a missing endpoint entirely.
  constexpr double kCrossGamma = 1e-3;
  std::vector<double> graph_slack = slack;
  if (ctx.mutate) {
    // The injected bug: the critical endpoint cluster never entered the
    // penalty graph (a gather_rows indexing slip).
    const double min_s = *std::min_element(slack.begin(), slack.end());
    graph_slack.clear();
    for (double s : slack) {
      if (s > min_s + 0.05) graph_slack.push_back(s);
    }
    if (graph_slack.empty()) return {};  // flat slack profile; nothing to drop
  }
  Tape tape;
  const Value s_leaf = tape.leaf(Tensor::column(graph_slack));
  const double smooth_wns =
      tape.value(tape.neg(tape.log_sum_exp(tape.neg(s_leaf), kCrossGamma)))[0];
  const double hard_wns = sta.wns / clock;
  if (smooth_wns > hard_wns + 1e-9 * std::max(1.0, std::abs(hard_wns))) {
    return "smoothed WNS " + std::to_string(smooth_wns) +
           " above sign-off hard WNS " + std::to_string(hard_wns) +
           " (an endpoint is missing from the penalty graph)";
  }
  return {};
}

// --- oracle: keep-best refinement loop -------------------------------------

std::string oracle_keep_best(OracleContext& ctx) {
  const FuzzCase& c = *ctx.fuzz_case;
  if (c.forest.num_movable() == 0) return {};
  const TimingGnn model = make_case_model(c);
  RefineOptions opts;
  opts.max_iterations = 5;
  const RefineResult r = refine_steiner_points(c.design, c.forest, model, opts);
  std::string msg = check_keep_best_monotone(r);
  if (!msg.empty()) return msg;
  // The refined forest is a position-only edit of the input: structure,
  // degree bounds, die containment and grid rounding must all survive.
  msg = check_forest_invariants(c.design, r.forest, /*require_min_degree=*/true);
  if (!msg.empty()) return "refined forest: " + msg;
  return {};
}

// --- oracle: batched Steiner construction vs lone-net reference -------------

/// Bit-compare two trees built over the same pin set.
std::string compare_trees_bitwise(const SteinerTree& a, const SteinerTree& b) {
  if (a.nodes.size() != b.nodes.size()) {
    return "node count " + std::to_string(a.nodes.size()) + " vs " +
           std::to_string(b.nodes.size());
  }
  if (a.edges.size() != b.edges.size()) {
    return "edge count " + std::to_string(a.edges.size()) + " vs " +
           std::to_string(b.edges.size());
  }
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    if (std::memcmp(&a.nodes[i].pos.x, &b.nodes[i].pos.x, sizeof(double)) != 0 ||
        std::memcmp(&a.nodes[i].pos.y, &b.nodes[i].pos.y, sizeof(double)) != 0 ||
        a.nodes[i].pin != b.nodes[i].pin) {
      return "node " + std::to_string(i) + " differs";
    }
  }
  for (std::size_t i = 0; i < a.edges.size(); ++i) {
    if (a.edges[i].a != b.edges[i].a || a.edges[i].b != b.edges[i].b) {
      return "edge " + std::to_string(i) + " differs";
    }
  }
  return {};
}

std::string oracle_steiner_batch(OracleContext& ctx) {
  const FuzzCase& c = *ctx.fuzz_case;
  const auto predictor = SteinerPredictor::shared_pretrained();
  std::vector<int> net_ids;
  const std::vector<std::vector<PointF>> pin_sets = routable_pin_sets(c.design, &net_ids);
  if (pin_sets.empty()) return {};

  BatchBuildOptions batch;
  batch.mutate_drop_first_candidate = ctx.mutate;
  BatchBuildStats stats;
  std::vector<std::uint8_t> used_fallback;
  const std::vector<SteinerTree> batched =
      build_batched_trees(pin_sets, *predictor, batch, &stats, &used_fallback);
  if (batched.size() != pin_sets.size() || used_fallback.size() != pin_sets.size()) {
    return "batched construction returned wrong tree count";
  }

  // Batch-composition invariance: each net alone, in a serial batch of one
  // and without the mutation hook, must reproduce the full-batch tree bit
  // for bit, including the fallback decision. The mutation self-check rides
  // on exactly this comparison — dropping a predicted candidate in the full
  // batch diverges from the clean lone-net stitch.
  BatchBuildOptions lone_opts = batch;
  lone_opts.mutate_drop_first_candidate = false;
  lone_opts.threads = 1;
  for (std::size_t i = 0; i < pin_sets.size(); ++i) {
    std::vector<std::uint8_t> lone_fb;
    const std::vector<SteinerTree> lone =
        build_batched_trees({pin_sets[i]}, *predictor, lone_opts, nullptr, &lone_fb);
    if ((lone_fb[0] != 0) != (used_fallback[i] != 0)) {
      return "net " + std::to_string(net_ids[i]) +
             ": fallback decision depends on batch composition";
    }
    const std::string msg = compare_trees_bitwise(batched[i], lone[0]);
    if (!msg.empty()) {
      return "net " + std::to_string(net_ids[i]) + " vs lone-net reference: " + msg;
    }
  }

  // Small nets must have taken the exact path, bit for bit, and stay
  // provably optimal (Hanan enumeration).
  for (std::size_t i = 0; i < pin_sets.size(); ++i) {
    if (static_cast<int>(pin_sets[i].size()) > batch.small_net_pin_limit) continue;
    if (used_fallback[i] == 0) {
      return "net " + std::to_string(net_ids[i]) + ": small net skipped the exact path";
    }
    const SteinerTree exact = build_rsmt_points(pin_sets[i], batch.fallback);
    std::string msg = compare_trees_bitwise(batched[i], exact);
    if (!msg.empty()) {
      return "net " + std::to_string(net_ids[i]) + " vs exact small-net path: " + msg;
    }
    if (pin_sets[i].size() <= 4) {
      msg = check_small_net_optimality(batched[i]);
      if (!msg.empty()) return "net " + std::to_string(net_ids[i]) + ": " + msg;
    }
  }

  // Design-level drop-in: the batched forest must satisfy every structural
  // invariant build_forest's output does.
  const SteinerForest forest = build_forest_batched(c.design, *predictor, batch);
  const std::string msg =
      check_forest_invariants(c.design, forest, /*require_min_degree=*/true);
  if (!msg.empty()) return "batched forest: " + msg;
  return {};
}

// --- oracle: serve responses vs direct Flow / IncrementalSignoff -----------

/// Bit-compare a dual-encoded response double against the direct result.
std::string compare_response_double(const obs::JsonValue& body, const std::string& name,
                                    double expected) {
  double got = 0.0;
  if (!serve::read_double_field(body, name, &got)) {
    return "response is missing field '" + name + "'";
  }
  if (std::memcmp(&got, &expected, sizeof(double)) != 0) {
    return "'" + name + "' not bit-identical: server " + serve::double_bits_hex(got) +
           " vs direct " + serve::double_bits_hex(expected);
  }
  return {};
}

// --- oracle: topology edit ops vs rebuilt-from-scratch forests --------------

/// Bit-level tree equality (positions, pins, edges, driver, net).
std::string compare_tree_bits(const SteinerTree& a, const SteinerTree& b) {
  if (a.net != b.net) return "net id differs";
  if (a.driver_node != b.driver_node) return "driver node differs";
  if (a.nodes.size() != b.nodes.size()) return "node count differs";
  if (a.edges.size() != b.edges.size()) return "edge count differs";
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    if (std::memcmp(&a.nodes[i].pos.x, &b.nodes[i].pos.x, sizeof(double)) != 0 ||
        std::memcmp(&a.nodes[i].pos.y, &b.nodes[i].pos.y, sizeof(double)) != 0 ||
        a.nodes[i].pin != b.nodes[i].pin) {
      return "node " + std::to_string(i) + " differs";
    }
  }
  for (std::size_t i = 0; i < a.edges.size(); ++i) {
    if (a.edges[i].a != b.edges[i].a || a.edges[i].b != b.edges[i].b) {
      return "edge " + std::to_string(i) + " differs";
    }
  }
  return {};
}

/// The incrementally-maintained forest (replace_tree patching the movable
/// index in place) against one rebuilt from scratch.
std::string compare_forest_vs_rebuilt(const SteinerForest& incremental) {
  SteinerForest scratch;
  scratch.trees = incremental.trees;
  scratch.net_to_tree = incremental.net_to_tree;
  scratch.build_movable_index();
  if (incremental.num_movable() != scratch.num_movable()) {
    return "movable index size diverges from a from-scratch rebuild";
  }
  for (std::size_t i = 0; i < scratch.movable().size(); ++i) {
    if (incremental.movable()[i].tree != scratch.movable()[i].tree ||
        incremental.movable()[i].node != scratch.movable()[i].node) {
      return "movable ref " + std::to_string(i) + " diverges from a from-scratch rebuild";
    }
  }
  std::string msg = bits_compare(incremental.gather_x(), scratch.gather_x(), "gather_x");
  if (msg.empty()) msg = bits_compare(incremental.gather_y(), scratch.gather_y(), "gather_y");
  return msg;
}

std::string oracle_topology_search(OracleContext& ctx) {
  const FuzzCase& c = *ctx.fuzz_case;
  Rng& rng = *ctx.rng;
  Design design = c.design;  // the Flow constructor recalibrates the clock
  const Flow flow(&design);
  SteinerForest cur = flow.initial_forest();
  cur.build_movable_index();
  const std::vector<int> candidates = movable_trees(cur);
  if (candidates.empty()) return {};
  const RectI die = design.die();

  IncrementalSignoff inc(&design, flow.options());
  inc.full(cur);
  {
    const FlowResult ref = flow.run_signoff(cur);
    const std::string msg = compare_signoff(inc.result(), ref);
    if (!msg.empty()) return "anchor full sign-off: " + msg;
  }

  // Randomized edit sequence through the search layer's ops, with the
  // forest maintained incrementally; replayed from scratch at the end.
  std::vector<std::pair<int, search::TopologyEdit>> applied;
  constexpr int kRounds = 5;
  for (int round = 0; round < kRounds; ++round) {
    const int t = candidates[rng.index(candidates.size())];
    const SteinerTree& tree = cur.trees[static_cast<std::size_t>(t)];
    search::EditOptions eopts;
    eopts.max_candidates = 6;

    if (ctx.mutate && round == kRounds - 1) {
      // The injected bug: a swap that re-attaches the cut edge's far side
      // to itself, applied with the invariant gate skipped. The per-round
      // invariant check below must flag the broken tree — if it passes, the
      // gate is vacuous.
      if (tree.edges.empty()) continue;
      search::TopologyEdit bad;
      bad.kind = search::EditKind::kSwap;
      bad.a = tree.edges[0].a;
      bad.b = tree.edges[0].b;
      bad.c = bad.b;  // self-attachment: disconnects the b side
      search::EditOptions skip = eopts;
      skip.skip_validation = true;
      auto broken = search::apply_edit(tree, die, bad, skip);
      if (!broken.has_value()) return "mutation: skip-validation apply refused the edit";
      cur.replace_tree(t, std::move(*broken));
    } else {
      std::vector<search::TopologyEdit> proposals =
          search::enumerate_edits(tree, die, rng, eopts);
      bool edited = false;
      for (const search::TopologyEdit& edit : proposals) {
        std::string why;
        auto next = search::apply_edit(tree, die, edit, eopts, &why);
        if (!next.has_value()) continue;  // gate rejections are expected
        applied.emplace_back(t, edit);
        cur.replace_tree(t, std::move(*next));
        edited = true;
        break;
      }
      if (!edited) continue;
    }

    // Invariants first: a broken tree must be flagged before sign-off
    // machinery consumes it.
    std::string msg = check_forest_invariants(design, cur, /*require_min_degree=*/true);
    if (!msg.empty()) return "round " + std::to_string(round) + " invariants: " + msg;
    msg = compare_forest_vs_rebuilt(cur);
    if (!msg.empty()) return "round " + std::to_string(round) + ": " + msg;

    // Post-edit sign-off: incremental with the edited net's dirty set vs a
    // full rebuild, bit for bit.
    const int net = cur.trees[static_cast<std::size_t>(t)].net;
    const IncrementalSignoff::Result& fast = inc.update(cur, {net});
    const FlowResult ref = flow.run_signoff(cur);
    msg = compare_signoff(fast, ref);
    if (!msg.empty()) return "round " + std::to_string(round) + " sign-off: " + msg;
  }

  // Replay the accepted sequence on a fresh copy: edit application is a pure
  // function of (tree, edit), so the replayed forest must match bit for bit.
  SteinerForest replay = flow.initial_forest();
  replay.build_movable_index();
  for (const auto& [t, edit] : applied) {
    search::EditOptions eopts;
    auto next = search::apply_edit(replay.trees[static_cast<std::size_t>(t)], die, edit, eopts);
    if (!next.has_value()) return "replay: previously-accepted edit now rejected";
    replay.replace_tree(t, std::move(*next));
  }
  for (std::size_t t = 0; t < cur.trees.size(); ++t) {
    const std::string msg = compare_tree_bits(cur.trees[t], replay.trees[t]);
    if (!msg.empty()) {
      return "replayed tree " + std::to_string(t) + ": " + msg;
    }
  }
  return {};
}

std::string oracle_serve(OracleContext& ctx) {
  const FuzzCase& c = *ctx.fuzz_case;
  Rng& rng = *ctx.rng;

  // Direct reference side: a cold-calibrated Flow plus its own incremental
  // sign-off. The serve side restores a snapshot of this calibration, so
  // bit-identical responses prove snapshot + session + dispatch add nothing.
  Design design = c.design;  // the Flow constructor recalibrates the clock
  const Flow flow(&design);
  const std::vector<int> candidates = movable_trees(flow.initial_forest());
  if (candidates.empty()) return {};

  BenchmarkSpec spec;
  spec.name = c.params.name;
  spec.target_cells = static_cast<int>(c.num_cells());
  spec.endpoints = static_cast<int>(design.endpoint_pins().size());
  spec.seed = c.seed;
  const std::string snap = ctx.work_dir + "/serve_" + std::to_string(c.seed) + ".tsdb";
  const TimingGnn model = make_case_model(c);
  if (!serve::save_session_snapshot(spec, design, flow.calibration(), flow.initial_forest(),
                                    fuzz_library(), &model,
                                    SteinerPredictor::shared_pretrained().get(), snap)) {
    return "cannot write serve snapshot " + snap;
  }

  serve::ServeOptions serve_opts;
  serve_opts.tcp_port = 0;  // ephemeral loopback; unix paths can exceed sun_path
  serve::Server server(serve_opts);
  std::string error;
  if (!server.start(&error)) return "server start failed: " + error;

  serve::ServeClient client;
  if (!client.connect_tcp(server.bound_tcp_port(), &error)) {
    return "client connect failed: " + error;
  }
  const auto opened = client.open(snap);
  if (!opened.ok) return "open failed: " + opened.error;
  const obs::JsonValue* session = opened.body.find_string("session");
  const obs::JsonValue* fingerprint = opened.body.find_string("fingerprint");
  if (session == nullptr || fingerprint == nullptr) return "open response lacks session id";

  // Wirelength round-trip: the serve op must reproduce the in-process
  // batched estimate bit for bit — which also pins the predictor weights
  // through the SMDL snapshot codec, since the server runs the decoded copy.
  {
    std::vector<std::vector<PointF>> pin_sets = routable_pin_sets(design);
    if (pin_sets.size() > 24) pin_sets.resize(24);
    if (!pin_sets.empty()) {
      const auto wl_reply =
          client.wirelength(session->str, fingerprint->str, pin_sets);
      if (!wl_reply.ok) return "wirelength failed: " + wl_reply.error;
      const BatchBuildOptions batch = serve::wirelength_batch_options(flow.options());
      const std::vector<double> direct_wl =
          estimate_wirelengths(pin_sets, *SteinerPredictor::shared_pretrained(), batch);
      const obs::JsonValue* nets = wl_reply.body.find_array("nets");
      if (nets == nullptr || nets->array.size() != pin_sets.size()) {
        return "wirelength response has wrong net count";
      }
      for (std::size_t i = 0; i < pin_sets.size(); ++i) {
        const std::string msg =
            compare_response_double(nets->array[i], "wl", direct_wl[i]);
        if (!msg.empty()) return "wirelength net " + std::to_string(i) + ": " + msg;
      }
    }
  }

  IncrementalSignoff ref(&design, flow.options());
  SteinerForest cur = flow.initial_forest();
  const double die_w = static_cast<double>(design.die().width());

  constexpr int kRounds = 3;
  for (int round = 0; round < kRounds; ++round) {
    // Build a what-if batch over a few random nets.
    std::vector<int> picks = candidates;
    rng.shuffle(picks);
    picks.resize(1 + rng.index(std::min<std::size_t>(3, picks.size())));
    serve::Request whatif;
    whatif.type = serve::RequestType::kWhatIf;
    whatif.session = session->str;
    whatif.fingerprint = fingerprint->str;
    for (int pick : picks) {
      serve::WhatIfMove move;
      move.net = cur.trees[static_cast<std::size_t>(pick)].net;
      move.dx = rng.uniform(-c.disturb_dist, c.disturb_dist);
      move.dy = rng.uniform(-c.disturb_dist, c.disturb_dist);
      whatif.moves.push_back(move);
    }

    const auto reply = client.call(whatif);
    if (!reply.ok) return "whatif failed: " + reply.error;

    // Direct side applies the *same shared op* to its own forest copy.
    std::vector<int> dirty;
    serve::apply_whatif_moves(&cur, design, whatif.moves, &dirty);
    if (ctx.mutate && round == kRounds - 1) {
      // The injected bug: the direct reference moves one extra tree (far
      // enough to change gcell endpoints) that the server never saw. The
      // comparison below must flag the divergence — if it passes anyway the
      // oracle is vacuous.
      serve::WhatIfMove extra;
      extra.net = cur.trees[static_cast<std::size_t>(picks[0])].net;
      extra.dx = std::max(c.disturb_dist, die_w / 3.0);
      extra.dy = 0.0;
      serve::apply_whatif_moves(&cur, design, {extra}, &dirty);
    }
    const IncrementalSignoff::Result& direct = ref.update(cur, dirty);

    std::string msg = compare_response_double(reply.body, "wns_ns", direct.metrics.wns_ns);
    if (msg.empty()) {
      msg = compare_response_double(reply.body, "tns_ns", direct.metrics.tns_ns);
    }
    if (msg.empty()) {
      msg = compare_response_double(reply.body, "wirelength_dbu",
                                    direct.metrics.wirelength_dbu);
    }
    if (msg.empty() &&
        reply.body.number_or("num_vios", -1.0) != static_cast<double>(direct.metrics.num_vios)) {
      msg = "violation count diverges";
    }
    if (!msg.empty()) return "whatif round " + std::to_string(round) + ": " + msg;

    // Pre-routing STA must agree on the same working forest too.
    serve::Request sta;
    sta.type = serve::RequestType::kSta;
    sta.session = session->str;
    sta.fingerprint = fingerprint->str;
    const auto sta_reply = client.call(sta);
    if (!sta_reply.ok) return "sta failed: " + sta_reply.error;
    const StaResult direct_sta = flow.run_preroute_sta(cur);
    msg = compare_response_double(sta_reply.body, "wns_ns", direct_sta.wns);
    if (msg.empty()) msg = compare_response_double(sta_reply.body, "tns_ns", direct_sta.tns);
    if (!msg.empty()) return "sta round " + std::to_string(round) + ": " + msg;
  }

  // Refine through the session (uncommitted, classic then topology-enabled)
  // must reproduce the direct refine loop bit for bit: the server decodes
  // the snapshot's model copy and replays handle_refine's exact option
  // wiring, so any divergence is a codec or dispatch bug.
  for (const bool topology : {false, true}) {
    serve::Request refine;
    refine.type = serve::RequestType::kRefine;
    refine.session = session->str;
    refine.fingerprint = fingerprint->str;
    refine.iterations = 3;
    refine.commit = false;
    refine.topology = topology;
    const auto reply = client.call(refine);
    const char* tag = topology ? "refine (topology)" : "refine";
    if (!reply.ok) return std::string(tag) + " failed: " + reply.error;

    RefineOptions opts;
    opts.gcell_size = flow.options().router.gcell_size;
    opts.max_iterations = refine.iterations;
    IncrementalSignoff episodic(&design, flow.options());
    if (topology) {
      opts.topology.enabled = true;
      opts.topology.episodic_signoff =
          [&](const SteinerForest& forest, const std::vector<int>& dirty) -> SignoffProbeResult {
        const IncrementalSignoff::Result& r = episodic.update(forest, dirty);
        return {r.metrics.wns_ns, r.metrics.tns_ns, r.incremental};
      };
      opts.topology.full_signoff = [&](const SteinerForest& forest) -> SignoffProbeResult {
        const FlowResult r = flow.run_signoff(forest);
        return {r.metrics.wns_ns, r.metrics.tns_ns, false};
      };
    }
    const RefineResult direct = refine_steiner_points(design, cur, model, opts);
    std::string msg = compare_response_double(reply.body, "init_wns_ns", direct.init_wns);
    if (msg.empty()) msg = compare_response_double(reply.body, "init_tns_ns", direct.init_tns);
    if (msg.empty()) msg = compare_response_double(reply.body, "best_wns_ns", direct.best_wns);
    if (msg.empty()) msg = compare_response_double(reply.body, "best_tns_ns", direct.best_tns);
    if (msg.empty() && reply.body.number_or("iterations", -1.0) !=
                           static_cast<double>(direct.iterations)) {
      msg = "iteration count diverges";
    }
    if (!msg.empty()) return std::string(tag) + ": " + msg;
  }

  // Full sign-off through the session must match the golden pipeline.
  serve::Request signoff;
  signoff.type = serve::RequestType::kSignoff;
  signoff.session = session->str;
  signoff.fingerprint = fingerprint->str;
  const auto signoff_reply = client.call(signoff);
  if (!signoff_reply.ok) return "signoff failed: " + signoff_reply.error;
  const FlowResult golden = flow.run_signoff(cur);
  std::string msg =
      compare_response_double(signoff_reply.body, "wns_ns", golden.metrics.wns_ns);
  if (msg.empty()) {
    msg = compare_response_double(signoff_reply.body, "tns_ns", golden.metrics.tns_ns);
  }
  if (msg.empty()) {
    msg = compare_response_double(signoff_reply.body, "wirelength_dbu",
                                  golden.metrics.wirelength_dbu);
  }
  if (!msg.empty()) return "signoff: " + msg;

  client.close();
  server.stop();
  std::filesystem::remove(snap);
  return {};
}

}  // namespace

void DiffHarness::add_oracle(Oracle oracle) { oracles_.push_back(std::move(oracle)); }

DiffHarness DiffHarness::standard() {
  DiffHarness h;
  h.add_oracle({"sta-incremental", oracle_sta_incremental, /*stride=*/1, true});
  h.add_oracle({"signoff-incremental", oracle_signoff_incremental, /*stride=*/1, true});
  h.add_oracle({"grad-replay", oracle_grad_replay, /*stride=*/1, true});
  h.add_oracle({"thread-width", oracle_thread_width, /*stride=*/1, true});
  h.add_oracle({"db-roundtrip", oracle_db_roundtrip, /*stride=*/1, true});
  h.add_oracle({"forest-invariants", oracle_forest_invariants, /*stride=*/1, true});
  h.add_oracle({"rsmt-small", oracle_rsmt_small, /*stride=*/1, true});
  h.add_oracle({"lse-penalty", oracle_lse_penalty, /*stride=*/1, true});
  h.add_oracle({"keep-best", oracle_keep_best, /*stride=*/4, false});
  h.add_oracle({"steiner-batch", oracle_steiner_batch, /*stride=*/2, true});
  h.add_oracle({"topology-search", oracle_topology_search, /*stride=*/1, true});
  h.add_oracle({"serve", oracle_serve, /*stride=*/4, true});
  return h;
}

std::vector<OracleFailure> DiffHarness::run(const HarnessOptions& options) const {
  std::vector<OracleFailure> failures;
  if (!options.work_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options.work_dir, ec);
  }

  const int total = options.replay ? 1 : options.cases;
  for (int i = 0; i < total; ++i) {
    const std::uint64_t case_seed =
        options.replay ? options.replay_seed : Rng::mix(options.seed, static_cast<std::uint64_t>(i));
    const FuzzCase c = make_case(case_seed, options.scale);
    if (options.verbose) {
      std::fprintf(stderr, "case %d/%d seed=%llu cells=%lld movable=%zu\n", i + 1, total,
                   static_cast<unsigned long long>(case_seed), c.num_cells(),
                   c.forest.num_movable());
    }

    for (const Oracle& oracle : oracles_) {
      if (!options.only.empty() &&
          std::find(options.only.begin(), options.only.end(), oracle.name) ==
              options.only.end()) {
        continue;
      }
      const bool mutate = oracle.name == options.mutate_oracle;
      if (mutate && !oracle.supports_mutation) continue;
      if (!mutate && !options.replay && oracle.stride > 1 && i % oracle.stride != 0) continue;

      auto run_oracle = [&](const FuzzCase& target) {
        Rng rng(Rng::mix(target.seed, fnv1a(oracle.name)));
        OracleContext ctx{&target, &rng, mutate, options.work_dir};
        return oracle.fn(ctx);
      };
      const std::string msg = run_oracle(c);
      if (msg.empty()) continue;

      OracleFailure f;
      f.oracle = oracle.name;
      f.seed = case_seed;
      f.scale = options.scale;
      f.message = msg;
      f.repro = "tsteiner_fuzz --oracle " + oracle.name + " --scale " + options.scale +
                " --replay " + std::to_string(case_seed) +
                (mutate ? " --mutate " + oracle.name : "");
      std::fprintf(stderr, "FAIL oracle=%s seed=%llu scale=%s: %s\n", oracle.name.c_str(),
                   static_cast<unsigned long long>(case_seed), options.scale.c_str(),
                   msg.c_str());
      std::fprintf(stderr, "REPRO: %s\n", f.repro.c_str());

      FuzzCase smallest = c;
      if (options.shrink) {
        smallest = shrink_case(
            c, [&](const FuzzCase& cand) { return !run_oracle(cand).empty(); });
      }
      f.shrunk_cells = smallest.num_cells();
      f.shrunk_params = smallest.params;
      if (!options.work_dir.empty()) {
        const std::string snap = options.work_dir + "/fail_" + oracle.name + "_" +
                                 std::to_string(case_seed) + ".tsdb";
        if (save_case_snapshot(smallest, snap)) f.snapshot_path = snap;
      }
      std::fprintf(stderr,
                   "SHRUNK: cells=%lld comb=%d regs=%d pis=%d pos=%d snapshot=%s\n",
                   f.shrunk_cells, smallest.params.num_comb_cells,
                   smallest.params.num_registers, smallest.params.num_primary_inputs,
                   smallest.params.num_primary_outputs,
                   f.snapshot_path.empty() ? "(none)" : f.snapshot_path.c_str());

      failures.push_back(std::move(f));
      if (static_cast<int>(failures.size()) >= options.max_failures) return failures;
    }
  }
  return failures;
}

}  // namespace tsteiner::verify
