#include "flow/snapshot.hpp"

#include <cstdio>

#include "db/bytes.hpp"
#include "db/codecs.hpp"
#include "db/container.hpp"
#include "db/crc32.hpp"
#include "gnn/serialize.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"

namespace tsteiner {

namespace {

constexpr char kSuiteKind[] = "suite";
constexpr char kDesignKind[] = "design";

void encode_flow_options(db::ByteWriter& w, const FlowOptions& f) {
  w.i64(f.router.gcell_size);
  w.f64(f.router.capacity_factor);
  w.f64(f.router.min_capacity);
  w.i32(f.router.rrr_iterations);
  w.f64(f.router.history_increment);
  w.i32(f.router.maze_margin);
  w.f64(f.sta.primary_input_slew);
  w.f64(f.sta.clock_source_slew);
  w.f64(f.sta.max_slew_ns);
  w.f64(f.sta.max_cap_pf);
  w.f64(f.droute.wl_detour_base);
  w.f64(f.droute.wl_detour_per_overflow);
  w.i32(f.droute.repair_rounds_max);
  w.f64(f.droute.pin_density_limit_per_site);
  w.i32(f.rsmt.exact_pin_limit);
  w.i32(f.rsmt.max_steiner_per_net);
  w.u8(f.edge_shifting ? 1 : 0);
  w.f64(f.clock_tightness);
}

std::vector<std::uint8_t> index_prefixed(std::uint32_t index,
                                         const std::vector<std::uint8_t>& payload) {
  db::ByteWriter w;
  w.u32(index);
  w.raw(payload);
  return w.take();
}

std::vector<std::uint8_t> encode_calibration(std::uint32_t index, const FlowCalibration& cal) {
  db::ByteWriter w;
  w.u32(index);
  w.f64(cal.clock_period_ns);
  w.f64(cal.fixed_h_cap);
  w.f64(cal.fixed_v_cap);
  return w.take();
}

std::optional<FlowCalibration> decode_calibration(db::ByteReader& r) {
  FlowCalibration cal;
  cal.clock_period_ns = r.f64();
  cal.fixed_h_cap = r.f64();
  cal.fixed_v_cap = r.f64();
  if (!r.done()) return std::nullopt;
  return cal;
}

std::vector<std::uint8_t> encode_sample(std::uint32_t index, const TrainingSample& s) {
  db::ByteWriter w;
  w.u32(index);
  w.str(s.design_name);
  w.f64_vec(s.xs);
  w.f64_vec(s.ys);
  w.f64_vec(s.arrival_label);
  w.i32_vec(s.endpoint_pins);
  return w.take();
}

std::optional<TrainingSample> decode_sample(db::ByteReader& r) {
  TrainingSample s;
  s.design_name = r.str();
  s.xs = r.f64_vec();
  s.ys = r.f64_vec();
  s.arrival_label = r.f64_vec();
  s.endpoint_pins = r.i32_vec();
  if (!r.done() || s.xs.size() != s.ys.size()) return std::nullopt;
  return s;
}

struct Meta {
  std::string kind;
  std::string tag;
  std::uint32_t design_count = 0;
  bool has_model = false;
  double final_train_loss = 0.0;
  std::uint32_t library_fingerprint = 0;
};

std::vector<std::uint8_t> encode_meta(const Meta& m) {
  db::ByteWriter w;
  w.str(m.kind);
  w.str(m.tag);
  w.u32(m.design_count);
  w.u8(m.has_model ? 1 : 0);
  w.f64(m.final_train_loss);
  w.u32(m.library_fingerprint);
  return w.take();
}

std::optional<Meta> decode_meta(const std::uint8_t* data, std::size_t size) {
  db::ByteReader r(data, size);
  Meta m;
  m.kind = r.str();
  m.tag = r.str();
  m.design_count = r.u32();
  m.has_model = r.u8() != 0;
  m.final_train_loss = r.f64();
  m.library_fingerprint = r.u32();
  if (!r.done()) return std::nullopt;
  return m;
}

/// Per-design chunks keyed by their leading u32 index; returns false when a
/// chunk family does not cover 0..count-1 exactly once.
bool collect_indexed(const db::DbReader& reader, std::uint32_t type, std::uint32_t count,
                     std::vector<std::pair<const std::uint8_t*, std::size_t>>* out) {
  out->assign(count, {nullptr, 0});
  for (const db::ChunkInfo* chunk : reader.find_all(type)) {
    if (chunk->size < 4) return false;
    db::ByteReader r(reader.payload(*chunk), 4);
    const std::uint32_t index = r.u32();
    if (index >= count || (*out)[index].first != nullptr) return false;
    (*out)[index] = {reader.payload(*chunk) + 4, static_cast<std::size_t>(chunk->size) - 4};
  }
  for (const auto& [data, size] : *out) {
    if (data == nullptr) return false;
  }
  return true;
}

}  // namespace

std::string suite_options_tag(const SuiteOptions& options) {
  // CRC over the binary encoding of every influencing option; the scale and
  // seed ride along in clear text for human inspection of `tsteiner_db info`.
  db::ByteWriter w;
  w.f64(options.scale);
  w.i32(options.perturb_per_design);
  w.f64(options.perturb_dist_gcells);
  w.u64(options.seed);
  w.i32(options.gnn.hidden);
  w.i32(options.gnn.type_embed);
  w.i32(options.gnn.delay_hidden);
  w.i32(options.gnn.steiner_iters);
  w.f64(options.gnn.soft_abs_delta);
  w.u8(options.gnn.physics_anchor ? 1 : 0);
  w.u64(options.gnn.seed);
  w.i32(options.train.epochs);
  w.f64(options.train.lr);
  w.f64(options.train.grad_clip);
  w.f64(options.train.endpoint_loss_weight);
  w.u64(options.train.seed);
  encode_flow_options(w, options.flow);
  char tag[96];
  std::snprintf(tag, sizeof(tag), "scale=%.4f seed=%llu epochs=%d opts=%08X", options.scale,
                static_cast<unsigned long long>(options.seed), options.train.epochs,
                db::crc32(w.bytes()));
  return tag;
}

bool save_suite_snapshot(const TrainedSuite& suite, const SuiteOptions& options,
                         const std::string& path) {
  TS_TRACE_SPAN_CAT("db.save_suite_snapshot", "db");
  if (suite.lib == nullptr) return false;
  db::DbWriter writer;
  if (!writer.open(path)) return false;

  Meta meta;
  meta.kind = kSuiteKind;
  meta.tag = suite_options_tag(options);
  meta.design_count = static_cast<std::uint32_t>(suite.designs.size());
  meta.has_model = suite.model != nullptr;
  meta.final_train_loss = suite.final_train_loss;
  meta.library_fingerprint = db::library_fingerprint(*suite.lib);
  bool ok = writer.add_chunk(db::kChunkMeta, encode_meta(meta));
  ok = ok && writer.add_chunk(db::kChunkLibrary, db::encode_library(*suite.lib));

  for (std::size_t i = 0; ok && i < suite.designs.size(); ++i) {
    const PreparedDesign& pd = suite.designs[i];
    const std::uint32_t index = static_cast<std::uint32_t>(i);
    ok = writer.add_chunk(db::kChunkDesign,
                          index_prefixed(index, db::encode_design(pd.spec, *pd.design))) &&
         writer.add_chunk(db::kChunkFlowCal,
                          encode_calibration(index, pd.flow->calibration())) &&
         writer.add_chunk(db::kChunkForest,
                          index_prefixed(index, db::encode_forest(pd.flow->initial_forest())));
    if (ok && i < suite.base_samples.size()) {
      ok = writer.add_chunk(db::kChunkSample, encode_sample(index, suite.base_samples[i]));
    }
  }
  if (ok && suite.model != nullptr) {
    ok = writer.add_chunk(db::kChunkModel, encode_model_payload(*suite.model, meta.tag));
  }
  return writer.finish() && ok;
}

std::optional<TrainedSuite> load_suite_snapshot(const std::string& path,
                                                const SuiteOptions& options) {
  TS_TRACE_SPAN_CAT("db.load_suite_snapshot", "db");
  db::DbReader reader;
  std::string error;
  if (!reader.open(path, &error)) {
    TS_VERBOSE("suite snapshot rejected: %s", error.c_str());
    return std::nullopt;
  }
  const db::ChunkInfo* meta_chunk = reader.find(db::kChunkMeta);
  if (meta_chunk == nullptr) return std::nullopt;
  const auto meta =
      decode_meta(reader.payload(*meta_chunk), static_cast<std::size_t>(meta_chunk->size));
  if (!meta || meta->kind != kSuiteKind) return std::nullopt;
  if (meta->tag != suite_options_tag(options)) {
    TS_VERBOSE("suite snapshot rejected: options tag mismatch (stored \"%s\")",
               meta->tag.c_str());
    return std::nullopt;
  }

  const db::ChunkInfo* lib_chunk = reader.find(db::kChunkLibrary);
  if (lib_chunk == nullptr) return std::nullopt;
  auto lib = db::decode_library(reader.payload(*lib_chunk),
                                static_cast<std::size_t>(lib_chunk->size));
  if (!lib) return std::nullopt;

  TrainedSuite suite;
  suite.lib = std::make_unique<CellLibrary>(std::move(*lib));
  suite.final_train_loss = meta->final_train_loss;

  std::vector<std::pair<const std::uint8_t*, std::size_t>> designs, cals, forests, samples;
  if (!collect_indexed(reader, db::kChunkDesign, meta->design_count, &designs) ||
      !collect_indexed(reader, db::kChunkFlowCal, meta->design_count, &cals) ||
      !collect_indexed(reader, db::kChunkForest, meta->design_count, &forests) ||
      !collect_indexed(reader, db::kChunkSample, meta->design_count, &samples)) {
    return std::nullopt;
  }

  for (std::uint32_t i = 0; i < meta->design_count; ++i) {
    auto decoded = db::decode_design(designs[i].first, designs[i].second, *suite.lib);
    if (!decoded) return std::nullopt;
    db::ByteReader cal_reader(cals[i].first, cals[i].second);
    const auto cal = decode_calibration(cal_reader);
    auto forest = db::decode_forest(forests[i].first, forests[i].second);
    if (!cal || !forest) return std::nullopt;
    if (forest->net_to_tree.size() != decoded->design.nets().size()) return std::nullopt;

    PreparedDesign pd;
    pd.spec = std::move(decoded->spec);
    pd.design = std::make_unique<Design>(std::move(decoded->design));
    pd.flow = std::make_unique<Flow>(
        Flow::from_snapshot(pd.design.get(), options.flow, *cal, std::move(*forest)));
    pd.cache = build_graph_cache(*pd.design, pd.flow->initial_forest());
    suite.designs.push_back(std::move(pd));
  }

  for (std::uint32_t i = 0; i < meta->design_count; ++i) {
    db::ByteReader sample_reader(samples[i].first, samples[i].second);
    auto sample = decode_sample(sample_reader);
    if (!sample) return std::nullopt;
    const PreparedDesign& pd = suite.designs[i];
    if (sample->design_name != pd.spec.name ||
        sample->arrival_label.size() != pd.design->pins().size() ||
        sample->xs.size() != pd.flow->initial_forest().num_movable()) {
      return std::nullopt;
    }
    sample->cache = pd.cache;
    suite.base_samples.push_back(std::move(*sample));
  }

  if (meta->has_model) {
    const db::ChunkInfo* model_chunk = reader.find(db::kChunkModel);
    if (model_chunk == nullptr) return std::nullopt;
    auto model = decode_model_payload(reader.payload(*model_chunk),
                                      static_cast<std::size_t>(model_chunk->size), options.gnn,
                                      suite.lib->num_types(), meta->tag);
    if (!model) return std::nullopt;
    suite.model = std::make_unique<TimingGnn>(std::move(*model));
  }
  return suite;
}

bool save_design_snapshot(const PreparedDesign& pd, const CellLibrary& lib,
                          const std::string& path) {
  TS_TRACE_SPAN_CAT("db.save_design_snapshot", "db");
  db::DbWriter writer;
  if (!writer.open(path)) return false;
  Meta meta;
  meta.kind = kDesignKind;
  meta.design_count = 1;
  meta.library_fingerprint = db::library_fingerprint(lib);
  const bool ok =
      writer.add_chunk(db::kChunkMeta, encode_meta(meta)) &&
      writer.add_chunk(db::kChunkDesign,
                       index_prefixed(0, db::encode_design(pd.spec, *pd.design))) &&
      writer.add_chunk(db::kChunkFlowCal, encode_calibration(0, pd.flow->calibration())) &&
      writer.add_chunk(db::kChunkForest,
                       index_prefixed(0, db::encode_forest(pd.flow->initial_forest())));
  return writer.finish() && ok;
}

std::optional<PreparedDesign> load_design_snapshot(const std::string& path,
                                                   const CellLibrary& lib,
                                                   const FlowOptions& options) {
  TS_TRACE_SPAN_CAT("db.load_design_snapshot", "db");
  db::DbReader reader;
  std::string error;
  if (!reader.open(path, &error)) {
    TS_VERBOSE("design snapshot rejected: %s", error.c_str());
    return std::nullopt;
  }
  const db::ChunkInfo* meta_chunk = reader.find(db::kChunkMeta);
  if (meta_chunk == nullptr) return std::nullopt;
  const auto meta =
      decode_meta(reader.payload(*meta_chunk), static_cast<std::size_t>(meta_chunk->size));
  if (!meta || meta->kind != kDesignKind || meta->design_count != 1) return std::nullopt;
  if (meta->library_fingerprint != db::library_fingerprint(lib)) {
    TS_VERBOSE("design snapshot rejected: library fingerprint mismatch");
    return std::nullopt;
  }

  std::vector<std::pair<const std::uint8_t*, std::size_t>> designs, cals, forests;
  if (!collect_indexed(reader, db::kChunkDesign, 1, &designs) ||
      !collect_indexed(reader, db::kChunkFlowCal, 1, &cals) ||
      !collect_indexed(reader, db::kChunkForest, 1, &forests)) {
    return std::nullopt;
  }
  auto decoded = db::decode_design(designs[0].first, designs[0].second, lib);
  if (!decoded) return std::nullopt;
  db::ByteReader cal_reader(cals[0].first, cals[0].second);
  const auto cal = decode_calibration(cal_reader);
  auto forest = db::decode_forest(forests[0].first, forests[0].second);
  if (!cal || !forest) return std::nullopt;
  if (forest->net_to_tree.size() != decoded->design.nets().size()) return std::nullopt;

  PreparedDesign pd;
  pd.spec = std::move(decoded->spec);
  pd.design = std::make_unique<Design>(std::move(decoded->design));
  pd.flow = std::make_unique<Flow>(
      Flow::from_snapshot(pd.design.get(), options, *cal, std::move(*forest)));
  pd.cache = build_graph_cache(*pd.design, pd.flow->initial_forest());
  return pd;
}

}  // namespace tsteiner
