#include "flow/iterative.hpp"

#include <memory>

#include "flow/incremental_signoff.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"

namespace tsteiner {

IterativeResult iterative_refine(const PreparedDesign& pd, TimingGnn* model,
                                 const IterativeOptions& options) {
  IterativeResult result;
  const FlowResult base = pd.flow->run_signoff(pd.flow->initial_forest());
  result.initial = base.metrics;
  result.best = base.metrics;
  result.forest = pd.flow->initial_forest();

  std::vector<TrainingSample> samples;
  samples.push_back(make_training_sample(pd, pd.flow->initial_forest()));

  Trainer trainer(model, options.finetune);
  RefineOptions ropts = options.refine;
  ropts.gcell_size = pd.flow->options().router.gcell_size;

  // Observational sign-off probes inside refine, served incrementally. The
  // IncrementalSignoff anchors (full sign-off) lazily on the first probe and
  // every later probe re-signs only the nets refine actually moved. Probes
  // are telemetry (JSONL signoff_* fields) — keep-best decisions below stay
  // on the golden full run_signoff.
  std::shared_ptr<IncrementalSignoff> probe_signoff;
  if (options.signoff_probe_every > 0 && !ropts.signoff_probe) {
    ropts.signoff_probe_every = options.signoff_probe_every;
    probe_signoff =
        std::make_shared<IncrementalSignoff>(pd.design.get(), pd.flow->options());
    ropts.signoff_probe = [probe_signoff](const SteinerForest& forest,
                                          const std::vector<int>& dirty) {
      const IncrementalSignoff::Result& r = probe_signoff->update(forest, dirty);
      return SignoffProbeResult{r.metrics.wns_ns, r.metrics.tns_ns, r.incremental};
    };
  }

  static obs::Counter& m_rounds = obs::metrics().counter("iterative.rounds");
  for (int round = 0; round < options.rounds; ++round) {
    TS_TRACE_SPAN_CAT("iterative.round", "flow");
    m_rounds.add();
    const RefineResult refined =
        refine_steiner_points(*pd.design, result.forest, *model, ropts);
    const FlowResult signoff = pd.flow->run_signoff(refined.forest);
    result.wns_per_round.push_back(signoff.metrics.wns_ns);
    ++result.rounds_run;
    TS_VERBOSE("iterative round %d: true WNS %.3f (best %.3f)", round,
               signoff.metrics.wns_ns, result.best.wns_ns);
    if (signoff.metrics.wns_ns > result.best.wns_ns ||
        signoff.metrics.tns_ns > result.best.tns_ns) {
      result.best = signoff.metrics;
      result.forest = refined.forest;
    }
    if (round + 1 == options.rounds) break;
    // Fine-tune on the newly labeled solution (plus the history) so the next
    // round's gradients are accurate around the current iterate.
    TrainingSample s;
    s.design_name = pd.spec.name;
    s.cache = pd.cache;
    s.xs = refined.forest.gather_x();
    s.ys = refined.forest.gather_y();
    s.arrival_label = signoff.sta.arrival;
    s.endpoint_pins = signoff.sta.endpoints;
    samples.push_back(std::move(s));
    for (int e = 0; e < options.finetune_epochs; ++e) trainer.train_epoch(samples);
  }
  return result;
}

}  // namespace tsteiner
