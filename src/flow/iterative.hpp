// Iterative TSteiner (extension, cf. the paper's future-work remark about
// extending refinement deeper into the flow).
//
// Vanilla TSteiner trains once and trusts the evaluator everywhere; its
// accuracy decays far from the training distribution. This extension closes
// the loop: each round refines, runs the *golden* sign-off flow on the
// refined trees (one extra labeled sample — exactly the data the flow
// produces anyway), fine-tunes the evaluator on it, and refines again from
// the best true solution seen. Strictly more sign-off calls than the paper's
// one-shot scheme (rounds x 1 instead of 1), still far fewer than classical
// PnR iteration.
#pragma once

#include "flow/experiment.hpp"
#include "tsteiner/refine.hpp"

namespace tsteiner {

struct IterativeOptions {
  int rounds = 3;
  int finetune_epochs = 8;
  RefineOptions refine;
  TrainOptions finetune;
  /// Cadence (refine iterations) of the observational sign-off probe wired
  /// into each round's refine loop, served by IncrementalSignoff so a probe
  /// costs a small fraction of a full sign-off. 0 disables. Overridden by an
  /// explicit refine.signoff_probe.
  int signoff_probe_every = 4;
};

struct IterativeResult {
  SteinerForest forest;  ///< best true-sign-off forest observed
  SignoffMetrics best;
  SignoffMetrics initial;
  std::vector<double> wns_per_round;  ///< true sign-off WNS after each round
  int rounds_run = 0;
};

/// Runs the closed-loop refinement. `model` is fine-tuned in place (pass a
/// copy if the original must stay untouched).
IterativeResult iterative_refine(const PreparedDesign& pd, TimingGnn* model,
                                 const IterativeOptions& options = {});

}  // namespace tsteiner
