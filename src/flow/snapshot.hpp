// Suite / design snapshot-restore on the TSteinerDB container (src/db).
//
// A suite snapshot captures everything build_and_train_suite() computes —
// cell library, generated + placed designs, calibrated flows (clock period,
// pinned routing capacities), initial Steiner forests, sign-off labeled base
// samples, and the trained evaluator — so a warm second run skips design
// generation, placement, label generation and training entirely and
// reproduces the cold run's sign-off metrics bit-exactly. Restores are
// rejected (nullopt) when the file is corrupted, truncated, or was produced
// under different SuiteOptions (the options fingerprint is stored and
// compared), so a stale snapshot can never silently poison an experiment.
#pragma once

#include <optional>
#include <string>

#include "flow/experiment.hpp"

namespace tsteiner {

/// Deterministic fingerprint of every option that influences suite state:
/// scale, seeds, perturbation setup, training hyperparameters, GNN config
/// and the flow/router/STA knobs. Stored in the snapshot and validated on
/// restore.
std::string suite_options_tag(const SuiteOptions& options);

bool save_suite_snapshot(const TrainedSuite& suite, const SuiteOptions& options,
                         const std::string& path);
std::optional<TrainedSuite> load_suite_snapshot(const std::string& path,
                                                const SuiteOptions& options);

/// Single-design snapshot: spec + design + flow calibration + initial
/// forest. The library itself is not embedded — its fingerprint is, and
/// `lib` must match on load (the caller owns library lifetime).
bool save_design_snapshot(const PreparedDesign& pd, const CellLibrary& lib,
                          const std::string& path);
std::optional<PreparedDesign> load_design_snapshot(const std::string& path,
                                                   const CellLibrary& lib,
                                                   const FlowOptions& options = {});

}  // namespace tsteiner
