// Visualization: renders a placed design with its Steiner forest and,
// optionally, the routing congestion heatmap to an SVG file. Useful for
// inspecting what TSteiner moved and where congestion concentrates.
#pragma once

#include <string>

#include "netlist/netlist.hpp"
#include "route/global_router.hpp"
#include "steiner/steiner_tree.hpp"

namespace tsteiner {

struct VisualizeOptions {
  bool draw_cells = true;
  bool draw_trees = true;
  bool draw_congestion = true;  ///< requires a grid
  /// Highlight Steiner nodes whose position differs from `reference` (the
  /// pre-refinement forest) by more than this distance.
  double moved_highlight_dist = 1.0;
};

/// Render to SVG. `grid` may be null (no heatmap); `reference` may be null
/// (no moved-point highlighting).
bool render_design_svg(const Design& design, const SteinerForest& forest,
                       const GridGraph* grid, const SteinerForest* reference,
                       const std::string& path, const VisualizeOptions& options = {});

}  // namespace tsteiner
