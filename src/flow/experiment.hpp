// Experiment harness shared by the bench binaries and examples.
//
// Builds the ten-design benchmark suite (Table I scale profile), runs the
// label-generation flow (sign-off STA per Steiner-position sample), trains
// the timing evaluator on the six training designs, and hands out prepared
// designs + the trained model for the table/figure benches.
//
// The environment variable TSTEINER_SCALE (default 0.12) shrinks every
// design proportionally so the full pipeline runs in workstation minutes;
// set it to 1.0 to reproduce the paper's design sizes.
#pragma once

#include <memory>
#include <vector>

#include "flow/flow.hpp"
#include "gnn/trainer.hpp"
#include "netlist/design_generator.hpp"
#include "place/placer.hpp"

namespace tsteiner {

struct PreparedDesign {
  BenchmarkSpec spec;
  std::unique_ptr<Design> design;
  std::unique_ptr<Flow> flow;
  std::shared_ptr<const GraphCache> cache;  ///< topology of the initial forest
};

/// Generate, place and flow-prepare one benchmark design. When
/// `snapshot_path` is non-empty, a valid TSteinerDB design snapshot at that
/// path is restored instead (skipping generation, placement and flow
/// calibration), and a fresh preparation is saved there for the next run.
PreparedDesign prepare_design(const CellLibrary& lib, const BenchmarkSpec& spec, double scale,
                              const FlowOptions& flow_options = {},
                              const std::string& snapshot_path = {});

/// Label a forest variant by running the golden sign-off flow on it.
TrainingSample make_training_sample(const PreparedDesign& pd, const SteinerForest& forest);

struct SuiteOptions {
  double scale = 0.12;
  int perturb_per_design = 3;  ///< extra random-position training samples
  double perturb_dist_gcells = 2.0;
  GnnConfig gnn;
  TrainOptions train;
  FlowOptions flow;
  std::uint64_t seed = 2023;
  /// When non-empty, look for / store a trained-model cache file in this
  /// directory (keyed by scale/epochs/config) so bench binaries sharing a
  /// configuration train once. Set TSTEINER_NO_CACHE=1 to disable.
  std::string model_cache_dir = ".";
};

struct TrainedSuite {
  std::unique_ptr<CellLibrary> lib;
  std::vector<PreparedDesign> designs;
  std::unique_ptr<TimingGnn> model;
  /// Unperturbed labeled sample per design (all ten), for Table III.
  std::vector<TrainingSample> base_samples;
  double final_train_loss = 0.0;
};

/// Full pipeline: prepare all ten designs, label, train. Deterministic for a
/// fixed SuiteOptions.
///
/// When the TSTEINER_DB environment variable names a file, the suite is
/// restored from that TSteinerDB snapshot if it exists and matches the
/// options fingerprint (skipping generation, placement, labeling and
/// training, with bit-identical results); otherwise the suite is built cold
/// and the snapshot is written there for the next run.
TrainedSuite build_and_train_suite(const SuiteOptions& options);

/// TSTEINER_SCALE env var (default `fallback`).
double env_scale(double fallback = 0.12);
/// TSTEINER_EPOCHS env var override (default `fallback`).
int env_epochs(int fallback);

}  // namespace tsteiner
