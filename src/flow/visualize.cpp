#include "flow/visualize.hpp"

#include "util/svg.hpp"

namespace tsteiner {

bool render_design_svg(const Design& design, const SteinerForest& forest,
                       const GridGraph* grid, const SteinerForest* reference,
                       const std::string& path, const VisualizeOptions& options) {
  const RectI die = design.die();
  SvgWriter svg(static_cast<double>(die.lo.x) - 2.0, static_cast<double>(die.lo.y) - 2.0,
                static_cast<double>(die.hi.x) + 2.0, static_cast<double>(die.hi.y) + 2.0);
  svg.rect(static_cast<double>(die.lo.x), static_cast<double>(die.lo.y),
           static_cast<double>(die.width()), static_cast<double>(die.height()), "#f8f8f8");

  if (options.draw_congestion && grid != nullptr) {
    const auto g = static_cast<double>(grid->gcell_size());
    for (int y = 0; y < grid->ny(); ++y) {
      for (int x = 0; x + 1 < grid->nx(); ++x) {
        const double util = grid->h_usage(x, y) / grid->h_capacity();
        if (util < 0.25) continue;
        svg.rect(static_cast<double>(die.lo.x) + x * g, static_cast<double>(die.lo.y) + y * g,
                 g, g, SvgWriter::heat_color(util), 0.35);
      }
    }
    for (int y = 0; y + 1 < grid->ny(); ++y) {
      for (int x = 0; x < grid->nx(); ++x) {
        const double util = grid->v_usage(x, y) / grid->v_capacity();
        if (util < 0.25) continue;
        svg.rect(static_cast<double>(die.lo.x) + x * g, static_cast<double>(die.lo.y) + y * g,
                 g, g, SvgWriter::heat_color(util), 0.35);
      }
    }
  }

  if (options.draw_cells) {
    for (const Cell& c : design.cells()) {
      const bool reg = design.is_register_cell(c.id);
      svg.circle(static_cast<double>(c.pos.x), static_cast<double>(c.pos.y), 0.45,
                 reg ? "#7030a0" : "#4472c4");
    }
  }

  if (options.draw_trees) {
    for (std::size_t t = 0; t < forest.trees.size(); ++t) {
      const SteinerTree& tree = forest.trees[t];
      for (const SteinerEdge& e : tree.edges) {
        const PointF& a = tree.nodes[static_cast<std::size_t>(e.a)].pos;
        const PointF& b = tree.nodes[static_cast<std::size_t>(e.b)].pos;
        svg.line(a.x, a.y, b.x, b.y, "#8caadc", 0.18);
      }
      for (std::size_t n = 0; n < tree.nodes.size(); ++n) {
        const SteinerNode& node = tree.nodes[n];
        if (!node.is_steiner()) continue;
        bool moved = false;
        if (reference != nullptr && t < reference->trees.size() &&
            n < reference->trees[t].nodes.size()) {
          moved = manhattan(node.pos, reference->trees[t].nodes[n].pos) >
                  options.moved_highlight_dist;
        }
        svg.circle(node.pos.x, node.pos.y, moved ? 0.8 : 0.4, moved ? "#e03030" : "#ed7d31");
      }
    }
  }

  return svg.write_file(path);
}

}  // namespace tsteiner
