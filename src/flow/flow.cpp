#include "flow/flow.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/phase.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"

namespace tsteiner {

namespace {

/// Congestion cost of an L-route between two points, sampled on the grid;
/// used to drive edge shifting toward less congested regions.
double l_route_congestion(const GridGraph& grid, const PointF& a, const PointF& b) {
  GCell ga = grid.gcell_at(a);
  const GCell gb = grid.gcell_at(b);
  double cost = 0.0;
  // x-first walk; congestion starts costing at 50% utilization, like
  // FastRoute's aggressive congestion-driven shifting.
  while (ga.x != gb.x) {
    const GCell next{ga.x + (gb.x > ga.x ? 1 : -1), ga.y};
    cost += std::max(0.0, grid.congestion_between(ga, next) - 0.3);
    ga = next;
  }
  while (ga.y != gb.y) {
    const GCell next{ga.x, ga.y + (gb.y > ga.y ? 1 : -1)};
    cost += std::max(0.0, grid.congestion_between(ga, next) - 0.3);
    ga = next;
  }
  return cost;
}

/// Content fingerprint of a (design, forest, router options) triple — the
/// complete input set of the probe route. Two independent 64-bit FNV streams
/// over the forest coordinates keep the collision probability negligible.
struct ProbeKey {
  std::string design_name;
  std::size_t num_cells = 0;
  std::size_t num_nets = 0;
  std::size_t num_pins = 0;
  std::size_t num_trees = 0;
  RectI die{};
  std::int64_t gcell_size = 0;
  double capacity_factor = 0.0;
  double min_capacity = 0.0;
  int rrr_iterations = 0;
  double history_increment = 0.0;
  int maze_margin = 0;
  std::uint64_t coord_hash_a = 0;
  std::uint64_t coord_hash_b = 0;

  bool operator==(const ProbeKey& o) const {
    return design_name == o.design_name && num_cells == o.num_cells && num_nets == o.num_nets &&
           num_pins == o.num_pins && num_trees == o.num_trees && die.lo.x == o.die.lo.x &&
           die.lo.y == o.die.lo.y && die.hi.x == o.die.hi.x && die.hi.y == o.die.hi.y &&
           gcell_size == o.gcell_size && capacity_factor == o.capacity_factor &&
           min_capacity == o.min_capacity && rrr_iterations == o.rrr_iterations &&
           history_increment == o.history_increment && maze_margin == o.maze_margin &&
           coord_hash_a == o.coord_hash_a && coord_hash_b == o.coord_hash_b;
  }
};

ProbeKey make_probe_key(const Design& design, const SteinerForest& forest,
                        const RouterOptions& probe) {
  ProbeKey key;
  key.design_name = design.name();
  key.num_cells = design.cells().size();
  key.num_nets = design.nets().size();
  key.num_pins = design.pins().size();
  key.num_trees = forest.trees.size();
  key.die = design.die();
  key.gcell_size = probe.gcell_size;
  key.capacity_factor = probe.capacity_factor;
  key.min_capacity = probe.min_capacity;
  key.rrr_iterations = probe.rrr_iterations;
  key.history_increment = probe.history_increment;
  key.maze_margin = probe.maze_margin;
  // Two FNV-1a streams with different offsets/primes over the exact node
  // bits (doubles bit-cast to u64) plus per-tree structure.
  std::uint64_t ha = 1469598103934665603ull;
  std::uint64_t hb = 0x9e3779b97f4a7c15ull;
  auto mix = [&](std::uint64_t v) {
    ha = (ha ^ v) * 1099511628211ull;
    hb ^= v + 0x9e3779b97f4a7c15ull + (hb << 6) + (hb >> 2);
  };
  for (const SteinerTree& tree : forest.trees) {
    mix(static_cast<std::uint64_t>(tree.net));
    mix(tree.nodes.size());
    mix(tree.edges.size());
    for (const SteinerNode& n : tree.nodes) {
      std::uint64_t bits = 0;
      std::memcpy(&bits, &n.pos.x, sizeof(bits));
      mix(bits);
      std::memcpy(&bits, &n.pos.y, sizeof(bits));
      mix(bits);
    }
  }
  key.coord_hash_a = ha;
  key.coord_hash_b = hb;
  return key;
}

/// Process-wide LRU of probe routes. Benchmarks and tests construct many
/// Flows over the same (design, forest) — the probe global route is the
/// dominant construction cost and is a pure function of the key above, so
/// repeated construction reuses the first result. Entries are shared_ptr so
/// an evicted entry stays alive while a Flow constructor still reads it.
const GlobalRouteResult* probe_route_cached(
    const Design& design, const SteinerForest& forest, const RouterOptions& probe,
    std::shared_ptr<const GlobalRouteResult>& holder) {
  struct Entry {
    ProbeKey key;
    std::shared_ptr<const GlobalRouteResult> route;
  };
  static std::mutex mu;
  static std::vector<Entry> cache;  // front = most recently used
  constexpr std::size_t kMaxEntries = 4;

  static obs::Counter& m_hits = obs::metrics().counter("flow.probe_cache_hits");
  static obs::Counter& m_misses = obs::metrics().counter("flow.probe_cache_misses");

  const ProbeKey key = make_probe_key(design, forest, probe);
  {
    std::lock_guard<std::mutex> lock(mu);
    for (std::size_t i = 0; i < cache.size(); ++i) {
      if (cache[i].key == key) {
        holder = cache[i].route;
        if (i != 0) std::rotate(cache.begin(), cache.begin() + static_cast<long>(i),
                                cache.begin() + static_cast<long>(i) + 1);
        m_hits.add();
        return holder.get();
      }
    }
  }
  m_misses.add();
  holder = std::make_shared<const GlobalRouteResult>(global_route(design, forest, probe));
  {
    std::lock_guard<std::mutex> lock(mu);
    // Double-checked insert: concurrent constructors of the same (design,
    // forest) both compute on a miss (the route is a pure function, so both
    // results are identical); adopt the first inserted entry instead of
    // letting duplicates crowd other keys out of the small LRU.
    for (std::size_t i = 0; i < cache.size(); ++i) {
      if (cache[i].key == key) {
        holder = cache[i].route;
        return holder.get();
      }
    }
    cache.insert(cache.begin(), Entry{key, holder});
    if (cache.size() > kMaxEntries) cache.resize(kMaxEntries);
  }
  return holder.get();
}

}  // namespace

Flow::Flow(Design* design, const FlowOptions& options)
    : design_(design), options_(options) {
  TS_TRACE_SPAN("flow.calibrate");
  // 1. Initial Steiner trees (FLUTE substitute): one batched predictor
  //    forward over the whole design by default, per-net exact on request
  //    (and as the in-batch fallback for small/invariant-failing nets).
  initial_forest_ = build_initial_forest(*design_, options_.steiner, options_.rsmt);

  // 2. Clock calibration from a pre-routing STA so every design starts with
  //    realistic negative slack (the paper's designs all violate timing).
  const StaResult pre = run_sta(*design_, initial_forest_, nullptr, options_.sta);
  design_->set_clock_period(std::max(0.05, options_.clock_tightness * pre.max_arrival));

  // 3. Probe route on the raw forest: calibrates capacities (pinned for all
  //    later runs) and provides the congestion map for edge shifting. The
  //    probe is a pure function of (design, forest, probe options), so
  //    repeated Flow construction on the same inputs (benchmarks, fuzz
  //    cases, snapshot round-trips) reuses a process-wide cached result.
  RouterOptions probe = options_.router;
  probe.fixed_h_cap = 0.0;
  probe.fixed_v_cap = 0.0;
  std::shared_ptr<const GlobalRouteResult> probe_holder;
  const GlobalRouteResult& probe_route =
      *probe_route_cached(*design_, initial_forest_, probe, probe_holder);
  options_.router.fixed_h_cap = probe_route.calibrated_h_cap;
  options_.router.fixed_v_cap = probe_route.calibrated_v_cap;

  // 4. Edge shifting [17] against the probe congestion.
  if (options_.edge_shifting) {
    const GridGraph& grid = probe_route.grid;
    EdgeShiftOptions shift;
    shift.passes = 3;
    // Congestion relief outranks wirelength — FastRoute-style shifting under
    // pressure trades real wirelength (and with it, timing) for routability.
    // This is the timing-blind baseline the paper's TSteiner stage recovers.
    shift.wirelength_slack = 0.30;
    const int moves = edge_shift_forest(
        initial_forest_,
        [&grid](const PointF& a, const PointF& b) { return l_route_congestion(grid, a, b); },
        shift);
    TS_VERBOSE("%s: edge shifting moved %d Steiner points", design_->name().c_str(), moves);
  }
  initial_forest_.build_movable_index();
}

Flow Flow::from_snapshot(Design* design, const FlowOptions& options,
                         const FlowCalibration& cal, SteinerForest initial_forest) {
  FlowOptions opts = options;
  opts.router.fixed_h_cap = cal.fixed_h_cap;
  opts.router.fixed_v_cap = cal.fixed_v_cap;
  design->set_clock_period(cal.clock_period_ns);
  initial_forest.build_movable_index();
  return Flow(design, opts, std::move(initial_forest));
}

FlowResult Flow::run_signoff(const SteinerForest& forest) const {
  FlowResult r;
  {
    obs::ScopedPhase phase("flow.global_route", &r.runtime.global_route);
    r.gr = global_route(*design_, forest, options_.router);
  }
  DetailedRouteResult dr;
  {
    obs::ScopedPhase phase("flow.detailed_route", &r.runtime.detailed_route);
    dr = detailed_route(*design_, forest, r.gr, options_.droute);
  }
  {
    obs::ScopedPhase phase("flow.sta", &r.runtime.sta);
    r.sta = run_sta(*design_, forest, &r.gr, options_.sta);
  }

  r.metrics.wns_ns = r.sta.wns;
  r.metrics.tns_ns = r.sta.tns;
  r.metrics.num_vios = r.sta.num_violations;
  r.metrics.wirelength_dbu = dr.wirelength_dbu;
  r.metrics.num_vias = dr.num_vias;
  r.metrics.num_drvs = dr.num_drvs;
  return r;
}

StaResult Flow::run_preroute_sta(const SteinerForest& forest) const {
  return run_sta(*design_, forest, nullptr, options_.sta);
}

}  // namespace tsteiner
