#include "flow/flow.hpp"

#include <algorithm>
#include <cmath>

#include "obs/phase.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"

namespace tsteiner {

namespace {

/// Congestion cost of an L-route between two points, sampled on the grid;
/// used to drive edge shifting toward less congested regions.
double l_route_congestion(const GridGraph& grid, const PointF& a, const PointF& b) {
  GCell ga = grid.gcell_at(a);
  const GCell gb = grid.gcell_at(b);
  double cost = 0.0;
  // x-first walk; congestion starts costing at 50% utilization, like
  // FastRoute's aggressive congestion-driven shifting.
  while (ga.x != gb.x) {
    const GCell next{ga.x + (gb.x > ga.x ? 1 : -1), ga.y};
    cost += std::max(0.0, grid.congestion_between(ga, next) - 0.3);
    ga = next;
  }
  while (ga.y != gb.y) {
    const GCell next{ga.x, ga.y + (gb.y > ga.y ? 1 : -1)};
    cost += std::max(0.0, grid.congestion_between(ga, next) - 0.3);
    ga = next;
  }
  return cost;
}

}  // namespace

Flow::Flow(Design* design, const FlowOptions& options)
    : design_(design), options_(options) {
  TS_TRACE_SPAN("flow.calibrate");
  // 1. Initial Steiner trees (FLUTE substitute).
  initial_forest_ = build_forest(*design_, options_.rsmt);

  // 2. Clock calibration from a pre-routing STA so every design starts with
  //    realistic negative slack (the paper's designs all violate timing).
  const StaResult pre = run_sta(*design_, initial_forest_, nullptr, options_.sta);
  design_->set_clock_period(std::max(0.05, options_.clock_tightness * pre.max_arrival));

  // 3. Probe route on the raw forest: calibrates capacities (pinned for all
  //    later runs) and provides the congestion map for edge shifting.
  RouterOptions probe = options_.router;
  probe.fixed_h_cap = 0.0;
  probe.fixed_v_cap = 0.0;
  const GlobalRouteResult probe_route = global_route(*design_, initial_forest_, probe);
  options_.router.fixed_h_cap = probe_route.calibrated_h_cap;
  options_.router.fixed_v_cap = probe_route.calibrated_v_cap;

  // 4. Edge shifting [17] against the probe congestion.
  if (options_.edge_shifting) {
    const GridGraph& grid = probe_route.grid;
    EdgeShiftOptions shift;
    shift.passes = 3;
    // Congestion relief outranks wirelength — FastRoute-style shifting under
    // pressure trades real wirelength (and with it, timing) for routability.
    // This is the timing-blind baseline the paper's TSteiner stage recovers.
    shift.wirelength_slack = 0.30;
    const int moves = edge_shift_forest(
        initial_forest_,
        [&grid](const PointF& a, const PointF& b) { return l_route_congestion(grid, a, b); },
        shift);
    TS_VERBOSE("%s: edge shifting moved %d Steiner points", design_->name().c_str(), moves);
  }
  initial_forest_.build_movable_index();
}

Flow Flow::from_snapshot(Design* design, const FlowOptions& options,
                         const FlowCalibration& cal, SteinerForest initial_forest) {
  FlowOptions opts = options;
  opts.router.fixed_h_cap = cal.fixed_h_cap;
  opts.router.fixed_v_cap = cal.fixed_v_cap;
  design->set_clock_period(cal.clock_period_ns);
  initial_forest.build_movable_index();
  return Flow(design, opts, std::move(initial_forest));
}

FlowResult Flow::run_signoff(const SteinerForest& forest) const {
  FlowResult r;
  {
    obs::ScopedPhase phase("flow.global_route", &r.runtime.global_route);
    r.gr = global_route(*design_, forest, options_.router);
  }
  DetailedRouteResult dr;
  {
    obs::ScopedPhase phase("flow.detailed_route", &r.runtime.detailed_route);
    dr = detailed_route(*design_, forest, r.gr, options_.droute);
  }
  {
    obs::ScopedPhase phase("flow.sta", &r.runtime.sta);
    r.sta = run_sta(*design_, forest, &r.gr, options_.sta);
  }

  r.metrics.wns_ns = r.sta.wns;
  r.metrics.tns_ns = r.sta.tns;
  r.metrics.num_vios = r.sta.num_violations;
  r.metrics.wirelength_dbu = dr.wirelength_dbu;
  r.metrics.num_vias = dr.num_vias;
  r.metrics.num_drvs = dr.num_drvs;
  return r;
}

StaResult Flow::run_preroute_sta(const SteinerForest& forest) const {
  return run_sta(*design_, forest, nullptr, options_.sta);
}

}  // namespace tsteiner
