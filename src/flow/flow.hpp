// End-to-end physical flow (Fig. 1):
//   placement -> Steiner construction (+ edge shifting) -> [TSteiner]
//   -> global routing -> detailed routing -> sign-off STA.
//
// A Flow object owns the per-design calibration that must be shared across
// variants for a fair comparison: the clock period (set from an initial
// pre-routing STA) and the routing capacities (calibrated once on the
// baseline forest, then pinned). run_signoff() can then be invoked on any
// forest variant — baseline, random-disturbance, or TSteiner-refined — and
// returns the paper's Table-II metrics plus the Table-IV runtime breakdown.
#pragma once

#include <memory>

#include "droute/detailed_route.hpp"
#include "gnn/steiner_predictor.hpp"
#include "netlist/netlist.hpp"
#include "route/global_router.hpp"
#include "sta/sta.hpp"
#include "steiner/rsmt.hpp"
#include "steiner/edge_shift.hpp"
#include "util/timer.hpp"

namespace tsteiner {

struct FlowOptions {
  RouterOptions router;
  DrouteOptions droute;
  StaOptions sta;
  RsmtOptions rsmt;
  SteinerBuildOptions steiner;     ///< initial construction: batched by default
  bool edge_shifting = true;       ///< FLUTE + edge shifting [16], [17]
  double clock_tightness = 0.62;   ///< clock = tightness * initial max arrival
};

/// The sign-off numbers Table II reports per design.
struct SignoffMetrics {
  double wns_ns = 0.0;
  double tns_ns = 0.0;
  long long num_vios = 0;
  double wirelength_dbu = 0.0;
  long long num_vias = 0;
  long long num_drvs = 0;
};

struct FlowResult {
  SignoffMetrics metrics;
  RuntimeBreakdown runtime;
  StaResult sta;
  GlobalRouteResult gr;
};

/// The per-design state a Flow derives once and pins: restoring it from a
/// snapshot lets run_signoff() reproduce cold-run results bit-exactly while
/// skipping forest construction, the clock-setting STA and the probe route.
struct FlowCalibration {
  double clock_period_ns = 0.0;
  double fixed_h_cap = 0.0;
  double fixed_v_cap = 0.0;
};

class Flow {
 public:
  /// `design` must be placed already; the constructor builds the initial
  /// Steiner forest, calibrates the clock period (mutating the design) and
  /// pins router capacities from a baseline probe route.
  Flow(Design* design, const FlowOptions& options = {});

  /// Reassemble a Flow from snapshot state: the design's clock period is set
  /// from `cal`, router capacities are pinned to the saved values, and the
  /// saved (already edge-shifted) initial forest is adopted as-is. No
  /// calibration work runs.
  static Flow from_snapshot(Design* design, const FlowOptions& options,
                            const FlowCalibration& cal, SteinerForest initial_forest);

  const Design& design() const { return *design_; }
  const FlowOptions& options() const { return options_; }
  const SteinerForest& initial_forest() const { return initial_forest_; }
  FlowCalibration calibration() const {
    return {design_->clock_period(), options_.router.fixed_h_cap, options_.router.fixed_v_cap};
  }

  /// Route + detail-route + sign-off STA a forest variant (same topology or
  /// not; only positions matter to the router). Capacities are pinned.
  FlowResult run_signoff(const SteinerForest& forest) const;

  /// Pre-routing STA (tree geometry, no routing) — the early estimate
  /// traditional optimizers target.
  StaResult run_preroute_sta(const SteinerForest& forest) const;

 private:
  Flow(Design* design, const FlowOptions& options, SteinerForest initial_forest)
      : design_(design), options_(options), initial_forest_(std::move(initial_forest)) {}

  Design* design_;
  FlowOptions options_;
  SteinerForest initial_forest_;
};

}  // namespace tsteiner
