// Incremental sign-off: GR + DR + STA that update in place.
//
// A refinement loop probing sign-off every few iterations moves a handful of
// Steiner points between probes; re-running the whole Flow::run_signoff
// pipeline repeats ~99% of the previous run's work. IncrementalSignoff owns
// the last full sign-off's state across all three stages —
// GlobalRouterState's replay cache, DetailedRouteState's per-row run lists,
// IncrementalSta's cached arrivals/RC — and `update(forest, dirty_nets)`
// redoes only what the declared moves can affect:
//
//   1. global route: memoized honest replay — the full negotiation algorithm
//      re-runs, but maze searches whose windows are provably untouched reuse
//      cached paths (route/global_router.hpp);
//   2. detailed-route surrogate: only connections whose GR path changed are
//      re-decomposed, and only their rows/columns recolored;
//   3. RC + STA: dirty nets plus nets of rerouted connections re-extract, and
//      arrivals re-propagate through their fan-out cones with bit-equality
//      pruning (sta/incremental.hpp).
//
// Contract: results are bit-identical to Flow::run_signoff on the same
// forest — every stage shares the full pipeline's code and float-op order,
// so there is no epsilon, no drift, and keep-best decisions made on
// incremental probes agree exactly with full sign-off. The dirty-net
// contract (docs/incremental.md) is the caller's side of the bargain: every
// net whose tree geometry changed since the previous call must be listed;
// undeclared moves are NOT healed (the `signoff-incremental` differential
// oracle's mutation self-check relies on that).
#pragma once

#include <vector>

#include "droute/detailed_route.hpp"
#include "flow/flow.hpp"
#include "route/global_router.hpp"
#include "sta/incremental.hpp"

namespace tsteiner {

class IncrementalSignoff {
 public:
  /// View of the last sign-off. `sta`/`gr` point into the owning
  /// IncrementalSignoff and stay valid until the next full/update call.
  struct Result {
    SignoffMetrics metrics;
    const StaResult* sta = nullptr;
    const GlobalRouteResult* gr = nullptr;
    RuntimeBreakdown runtime;          ///< this call's stage timings
    bool incremental = false;          ///< last call took the update path
    std::size_t num_dirty_nets = 0;    ///< deduplicated declared-dirty nets
    std::size_t num_rerouted = 0;      ///< connections whose GR path changed
    long long reused_mazes = 0;        ///< maze searches served from cache
    long long total_mazes = 0;         ///< maze searches attempted (reuse denominator)
  };

  /// `design` must outlive this object. `options` should carry pinned router
  /// capacities (as Flow::options() does after construction) so full() is
  /// bit-identical to that Flow's run_signoff.
  IncrementalSignoff(const Design* design, const FlowOptions& options);

  /// Full sign-off; establishes the state every later update diffs against.
  const Result& full(const SteinerForest& forest);

  /// Incremental sign-off after the Steiner points of `dirty_nets` moved
  /// (topology unchanged). Runs full() when no prior sign-off exists or the
  /// forest topology changed. `forest` must stay alive until the next call.
  const Result& update(const SteinerForest& forest, const std::vector<int>& dirty_nets);

  const Result& result() const { return result_; }

 private:
  const Design* design_;
  FlowOptions options_;
  GlobalRouterState router_;
  DetailedRouteState droute_;
  IncrementalSta sta_;
  Result result_;
  bool ran_full_ = false;
};

}  // namespace tsteiner
