#include "flow/incremental_signoff.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/phase.hpp"

namespace tsteiner {

IncrementalSignoff::IncrementalSignoff(const Design* design, const FlowOptions& options)
    : design_(design),
      options_(options),
      router_(design, options.router),
      droute_(design, options.droute),
      sta_(*design, options.sta) {}

const IncrementalSignoff::Result& IncrementalSignoff::full(const SteinerForest& forest) {
  result_ = Result{};
  const GlobalRouteResult* gr = nullptr;
  {
    obs::ScopedPhase phase("signoff.full_gr", &result_.runtime.global_route);
    gr = &router_.route_full(forest);
  }
  const DetailedRouteResult* dr = nullptr;
  {
    obs::ScopedPhase phase("signoff.full_dr", &result_.runtime.detailed_route);
    dr = &droute_.full(*gr);
  }
  const StaResult* sta = nullptr;
  {
    obs::ScopedPhase phase("signoff.full_sta", &result_.runtime.sta);
    sta = &sta_.analyze(forest, gr);
  }
  result_.metrics.wns_ns = sta->wns;
  result_.metrics.tns_ns = sta->tns;
  result_.metrics.num_vios = sta->num_violations;
  result_.metrics.wirelength_dbu = dr->wirelength_dbu;
  result_.metrics.num_vias = dr->num_vias;
  result_.metrics.num_drvs = dr->num_drvs;
  result_.sta = sta;
  result_.gr = gr;
  ran_full_ = true;
  return result_;
}

const IncrementalSignoff::Result& IncrementalSignoff::update(
    const SteinerForest& forest, const std::vector<int>& dirty_nets) {
  // A topology change invalidates every stage's cache at once. The router
  // would also detect it and fall back internally, but then its
  // changed_connections() would be empty while every path potentially moved
  // — DR and STA would go stale. Detect it here and rebuild all three stages
  // coherently through full().
  if (!ran_full_) return full(forest);
  const GlobalRouteResult& prev = router_.result();
  if (forest.trees.size() != prev.conn_of_edge.size()) return full(forest);
  for (std::size_t t = 0; t < forest.trees.size(); ++t) {
    if (forest.trees[t].edges.size() != prev.conn_of_edge[t].size()) return full(forest);
  }

  // Dirty nets -> dirty trees, deduplicated.
  std::vector<char> tree_dirty(forest.trees.size(), 0);
  std::vector<char> net_seen(design_->nets().size(), 0);
  std::size_t unique_dirty = 0;
  for (int net : dirty_nets) {
    if (net < 0 || static_cast<std::size_t>(net) >= forest.net_to_tree.size()) {
      return full(forest);
    }
    if (net_seen[static_cast<std::size_t>(net)]) continue;
    net_seen[static_cast<std::size_t>(net)] = 1;
    ++unique_dirty;
    const int t = forest.net_to_tree[static_cast<std::size_t>(net)];
    if (t >= 0) tree_dirty[static_cast<std::size_t>(t)] = 1;
  }

  static obs::Counter& m_dirty = obs::metrics().counter("signoff.dirty_nets");
  static obs::Counter& m_rerouted = obs::metrics().counter("signoff.rerouted_nets");
  static obs::Counter& m_hits = obs::metrics().counter("signoff.incremental_hit");
  m_dirty.add(static_cast<std::uint64_t>(unique_dirty));

  result_ = Result{};
  result_.incremental = true;
  result_.num_dirty_nets = unique_dirty;

  const GlobalRouteResult* gr = nullptr;
  {
    obs::ScopedPhase phase("signoff.incremental_gr", &result_.runtime.global_route);
    gr = &router_.update(forest, tree_dirty);
  }
  const std::vector<int>& changed = router_.changed_connections();
  result_.num_rerouted = changed.size();
  result_.reused_mazes = router_.last_reused_mazes();
  result_.total_mazes = router_.last_total_mazes();
  if (router_.last_update_was_hit()) m_hits.add();

  const DetailedRouteResult* dr = nullptr;
  {
    obs::ScopedPhase phase("signoff.incremental_dr", &result_.runtime.detailed_route);
    dr = &droute_.update(*gr, changed);
  }

  // STA dirty set = declared dirty nets (geometry moved, RC changed even if
  // the gcell path didn't) ∪ nets of rerouted connections (path changed, RC
  // changed even if the declared set missed them — negotiation can reroute a
  // victim whose own tree never moved). Count each rerouted net once.
  std::vector<int> sta_dirty = dirty_nets;
  std::vector<char> rerouted_seen(design_->nets().size(), 0);
  for (int c : changed) {
    const int t = gr->connections[static_cast<std::size_t>(c)].tree;
    const int net = forest.trees[static_cast<std::size_t>(t)].net;
    if (rerouted_seen[static_cast<std::size_t>(net)]) continue;
    rerouted_seen[static_cast<std::size_t>(net)] = 1;
    if (!net_seen[static_cast<std::size_t>(net)]) sta_dirty.push_back(net);
    m_rerouted.add();
  }

  const StaResult* sta = nullptr;
  {
    obs::ScopedPhase phase("signoff.incremental_sta", &result_.runtime.sta);
    sta = &sta_.update(forest, gr, sta_dirty);
  }

  result_.metrics.wns_ns = sta->wns;
  result_.metrics.tns_ns = sta->tns;
  result_.metrics.num_vios = sta->num_violations;
  result_.metrics.wirelength_dbu = dr->wirelength_dbu;
  result_.metrics.num_vias = dr->num_vias;
  result_.metrics.num_drvs = dr->num_drvs;
  result_.sta = sta;
  result_.gr = gr;
  return result_;
}

}  // namespace tsteiner
