#include "flow/experiment.hpp"

#include <cstdio>
#include <cstdlib>

#include "flow/snapshot.hpp"
#include "gnn/serialize.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "tsteiner/random_move.hpp"
#include "util/log.hpp"

namespace tsteiner {

double env_scale(double fallback) {
  if (const char* env = std::getenv("TSTEINER_SCALE")) {
    const double v = std::atof(env);
    if (v > 0.0 && v <= 1.0) return v;
  }
  return fallback;
}

int env_epochs(int fallback) {
  if (const char* env = std::getenv("TSTEINER_EPOCHS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return fallback;
}

PreparedDesign prepare_design(const CellLibrary& lib, const BenchmarkSpec& spec, double scale,
                              const FlowOptions& flow_options,
                              const std::string& snapshot_path) {
  TS_TRACE_SPAN_CAT("experiment.prepare_design", "flow");
  static obs::Counter& m_snap_hit = obs::metrics().counter("db.design_snapshot_hit");
  static obs::Counter& m_snap_miss = obs::metrics().counter("db.design_snapshot_miss");
  if (!snapshot_path.empty()) {
    if (auto restored = load_design_snapshot(snapshot_path, lib, flow_options)) {
      if (restored->spec.name == spec.name && restored->spec.seed == spec.seed) {
        TS_VERBOSE("restored %s from snapshot %s", spec.name.c_str(), snapshot_path.c_str());
        m_snap_hit.add();
        return std::move(*restored);
      }
    }
    m_snap_miss.add();
  }
  PreparedDesign pd;
  pd.spec = spec;
  const GeneratorParams params = params_for(spec, scale);
  pd.design = std::make_unique<Design>(generate_design(lib, params));
  PlacerOptions popts;
  popts.seed = spec.seed * 17 + 3;
  place_design(*pd.design, popts);
  pd.flow = std::make_unique<Flow>(pd.design.get(), flow_options);
  pd.cache = build_graph_cache(*pd.design, pd.flow->initial_forest());
  TS_VERBOSE("prepared %s: %lld cells, %lld steiner pts, clock %.3f ns",
             spec.name.c_str(), pd.design->stats().num_cells,
             pd.flow->initial_forest().num_steiner_nodes(), pd.design->clock_period());
  if (!snapshot_path.empty()) save_design_snapshot(pd, lib, snapshot_path);
  return pd;
}

TrainingSample make_training_sample(const PreparedDesign& pd, const SteinerForest& forest) {
  TrainingSample s;
  s.design_name = pd.spec.name;
  s.cache = pd.cache;
  s.xs = forest.gather_x();
  s.ys = forest.gather_y();
  const FlowResult fr = pd.flow->run_signoff(forest);
  s.arrival_label = fr.sta.arrival;
  s.endpoint_pins = fr.sta.endpoints;
  return s;
}

TrainedSuite build_and_train_suite(const SuiteOptions& options) {
  TS_TRACE_SPAN_CAT("experiment.build_suite", "flow");
  static obs::Counter& m_suite_hit = obs::metrics().counter("db.suite_snapshot_hit");
  static obs::Counter& m_suite_miss = obs::metrics().counter("db.suite_snapshot_miss");
  static obs::Counter& m_model_hit = obs::metrics().counter("db.model_cache_hit");
  static obs::Counter& m_model_miss = obs::metrics().counter("db.model_cache_miss");
  if (obs::run_report_enabled()) {
    obs::run_report().set_option("suite_options", suite_options_tag(options));
  }
  // Whole-suite snapshot: a warm run restores designs, labels and the trained
  // evaluator from one TSteinerDB container and skips the expensive pipeline.
  std::string db_path;
  if (const char* env = std::getenv("TSTEINER_DB")) db_path = env;
  if (!db_path.empty()) {
    if (auto restored = load_suite_snapshot(db_path, options)) {
      TS_INFO("restored trained suite from %s", db_path.c_str());
      m_suite_hit.add();
      return std::move(*restored);
    }
    m_suite_miss.add();
  }

  TrainedSuite suite;
  suite.lib = std::make_unique<CellLibrary>(CellLibrary::make_default());
  Rng rng(options.seed);

  for (const BenchmarkSpec& spec : benchmark_suite()) {
    suite.designs.push_back(prepare_design(*suite.lib, spec, options.scale, options.flow));
  }

  // Base-sample labels are needed by every bench (baseline metrics and
  // Table III evaluation) regardless of whether training is cached.
  for (PreparedDesign& pd : suite.designs) {
    TS_TRACE_SPAN_CAT("experiment.label_design", "flow");
    TS_INFO("labeling %s ...", pd.spec.name.c_str());
    suite.base_samples.push_back(make_training_sample(pd, pd.flow->initial_forest()));
  }

  // Model cache: bench binaries with identical suite options share one
  // trained evaluator instead of each re-training.
  std::string cache_path;
  std::string cache_tag;
  if (!options.model_cache_dir.empty() && std::getenv("TSTEINER_NO_CACHE") == nullptr) {
    char tag[160];
    std::snprintf(tag, sizeof(tag), "scale=%.4f epochs=%d perturb=%d lr=%g seed=%llu",
                  options.scale, options.train.epochs, options.perturb_per_design,
                  options.train.lr, static_cast<unsigned long long>(options.seed));
    cache_tag = tag;
    cache_path = options.model_cache_dir + "/tsteiner_model_cache.bin";
    if (auto cached =
            load_model(cache_path, options.gnn, suite.lib->num_types(), cache_tag)) {
      TS_INFO("loaded trained evaluator from %s", cache_path.c_str());
      m_model_hit.add();
      suite.model = std::make_unique<TimingGnn>(std::move(*cached));
      if (!db_path.empty()) save_suite_snapshot(suite, options, db_path);
      return suite;
    }
    m_model_miss.add();
  }

  // Perturbed variants (same topology) expose the model to the region
  // Algorithm 1 explores; magnitudes cycle through {1, 1/4, 1/2} radii.
  std::vector<TrainingSample> train_samples;
  for (std::size_t i = 0; i < suite.designs.size(); ++i) {
    PreparedDesign& pd = suite.designs[i];
    if (!pd.spec.is_training) continue;
    train_samples.push_back(suite.base_samples[i]);
    const double base_dist = options.perturb_dist_gcells *
                             static_cast<double>(options.flow.router.gcell_size);
    const double fractions[] = {1.0, 0.25, 0.5};
    for (int k = 0; k < options.perturb_per_design; ++k) {
      Rng child = rng.fork();
      const double dist = base_dist * fractions[k % 3];
      const SteinerForest variant =
          random_disturb(pd.flow->initial_forest(), pd.design->die(), dist, child);
      train_samples.push_back(make_training_sample(pd, variant));
    }
  }

  suite.model = std::make_unique<TimingGnn>(options.gnn, suite.lib->num_types());
  Trainer trainer(suite.model.get(), options.train);
  TS_INFO("training timing evaluator on %zu samples ...", train_samples.size());
  {
    TS_TRACE_SPAN_CAT("experiment.train", "flow");
    suite.final_train_loss = trainer.fit(train_samples);
  }
  TS_INFO("final training loss %.6f", suite.final_train_loss);
  if (!cache_path.empty()) {
    if (save_model(*suite.model, cache_path, cache_tag)) {
      TS_INFO("cached trained evaluator at %s", cache_path.c_str());
    }
  }
  if (!db_path.empty()) {
    if (save_suite_snapshot(suite, options, db_path)) {
      TS_INFO("saved suite snapshot to %s", db_path.c_str());
    }
  }
  return suite;
}

}  // namespace tsteiner
