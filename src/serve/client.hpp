// Blocking client for tsteiner_serve: one connection, synchronous calls.
// call() sends a request frame and reads frames until the matching
// kResponse/kError arrives, collecting interleaved kProgress frames (the
// refine iteration stream) along the way. Used by the `client`/`selftest`
// subcommands, the serve tests, the differential oracle and bench_serve.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "serve/framing.hpp"
#include "serve/protocol.hpp"

namespace tsteiner::serve {

class ServeClient {
 public:
  ServeClient() = default;
  ~ServeClient() { close(); }
  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  bool connect_unix(const std::string& path, std::string* error = nullptr);
  bool connect_tcp(int port, std::string* error = nullptr);
  bool connected() const { return fd_ >= 0; }
  void close();

  struct Reply {
    bool ok = false;     ///< transport succeeded AND the server said ok
    std::string error;   ///< transport or server error message
    obs::JsonValue body; ///< parsed kResponse/kError payload (null if transport failed)
    std::vector<obs::JsonValue> progress;  ///< kProgress payloads, in order
    std::string raw;     ///< response payload bytes (obs-mode bit-identity gate)
    std::vector<std::string> progress_raw;  ///< kProgress payload bytes, in order
  };

  /// Send one request and block for its response. A request id of 0 is
  /// replaced by an auto-incrementing one.
  Reply call(Request request);

  /// Convenience wrappers.
  Reply ping();
  Reply open(const std::string& snapshot_path);
  Reply close_session(const std::string& session);
  Reply stats();
  Reply metrics();
  Reply shutdown_server();
  Reply wirelength(const std::string& session, const std::string& fingerprint,
                   std::vector<std::vector<PointF>> pin_sets);

 private:
  bool read_more(std::string* error);  ///< one read() into the decoder

  int fd_ = -1;
  FrameDecoder decoder_;
  std::vector<Frame> frames_;  ///< decoded, not yet consumed
  std::uint64_t next_id_ = 1;
};

}  // namespace tsteiner::serve
