#include "serve/session.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "db/bytes.hpp"
#include "db/codecs.hpp"
#include "db/container.hpp"
#include "db/crc32.hpp"
#include "gnn/serialize.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"

namespace tsteiner::serve {

namespace {

constexpr char kServeKind[] = "serve";

bool fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

// Same META payload layout as flow/snapshot (str kind, str tag, u32
// design_count, u8 has_model, f64 final_train_loss, u32 library_fingerprint)
// so `tsteiner_db info` prints serve snapshots like any other container.
std::vector<std::uint8_t> encode_serve_meta(bool has_model, std::uint32_t lib_fingerprint) {
  db::ByteWriter w;
  w.str(kServeKind);
  w.str("");  // tag unused: serve snapshots are self-describing
  w.u32(1);   // design_count
  w.u8(has_model ? 1 : 0);
  w.f64(0.0);  // final_train_loss (not applicable)
  w.u32(lib_fingerprint);
  return w.take();
}

struct ServeMeta {
  bool has_model = false;
  std::uint32_t library_fingerprint = 0;
};

std::optional<ServeMeta> decode_serve_meta(const std::uint8_t* data, std::size_t size) {
  db::ByteReader r(data, size);
  const std::string kind = r.str();
  r.str();  // tag
  const std::uint32_t design_count = r.u32();
  ServeMeta m;
  m.has_model = r.u8() != 0;
  r.f64();  // final_train_loss
  m.library_fingerprint = r.u32();
  if (!r.done() || kind != kServeKind || design_count != 1) return std::nullopt;
  return m;
}

std::vector<std::uint8_t> index_prefixed(const std::vector<std::uint8_t>& payload) {
  db::ByteWriter w;
  w.u32(0);
  w.raw(payload);
  return w.take();
}

/// Indexed single chunk (leading u32 index 0, as flow/snapshot writes them).
bool indexed_payload(const db::DbReader& reader, std::uint32_t type, const std::uint8_t** data,
                     std::size_t* size) {
  const db::ChunkInfo* chunk = reader.find(type);
  if (chunk == nullptr || chunk->size < 4) return false;
  db::ByteReader r(reader.payload(*chunk), 4);
  if (r.u32() != 0) return false;
  *data = reader.payload(*chunk) + 4;
  *size = static_cast<std::size_t>(chunk->size) - 4;
  return true;
}

/// Rough resident-size estimate for cache accounting. It only has to rank
/// designs consistently and scale with design size; exactness is not needed.
std::size_t estimate_bytes(const LoadedDesign& d) {
  std::size_t bytes = 1 << 16;  // fixed overhead
  bytes += d.design->cells().size() * 64;
  bytes += d.design->pins().size() * 96;
  bytes += d.design->nets().size() * 80;
  for (const SteinerTree& t : d.flow->initial_forest().trees) {
    bytes += t.nodes.size() * 24 + t.edges.size() * 8 + 64;
  }
  bytes *= 2;  // the session working forest mirrors the initial one
  if (d.model != nullptr) {
    for (const Tensor& p : d.model->parameters()) bytes += p.size() * 8;
  }
  if (d.steiner_model != nullptr) {
    for (const Tensor& p : d.steiner_model->parameters()) bytes += p.size() * 8;
  }
  return bytes;
}

}  // namespace

bool save_session_snapshot(const BenchmarkSpec& spec, const Design& design,
                           const FlowCalibration& cal, const SteinerForest& forest,
                           const CellLibrary& lib, const TimingGnn* model,
                           const SteinerPredictor* steiner_model, const std::string& path) {
  TS_TRACE_SPAN_CAT("serve.save_session_snapshot", "db");
  db::DbWriter writer;
  if (!writer.open(path)) return false;
  db::ByteWriter cal_w;
  cal_w.u32(0);
  cal_w.f64(cal.clock_period_ns);
  cal_w.f64(cal.fixed_h_cap);
  cal_w.f64(cal.fixed_v_cap);
  bool ok =
      writer.add_chunk(db::kChunkMeta,
                       encode_serve_meta(model != nullptr, db::library_fingerprint(lib))) &&
      writer.add_chunk(db::kChunkLibrary, db::encode_library(lib)) &&
      writer.add_chunk(db::kChunkDesign, index_prefixed(db::encode_design(spec, design))) &&
      writer.add_chunk(db::kChunkFlowCal, cal_w.take()) &&
      writer.add_chunk(db::kChunkForest, index_prefixed(db::encode_forest(forest)));
  if (ok && model != nullptr) {
    ok = writer.add_chunk(db::kChunkModel, encode_model_payload(*model, kServeKind));
  }
  if (ok && steiner_model != nullptr) {
    ok = writer.add_chunk(db::kChunkSteinerModel,
                          encode_steiner_predictor_payload(*steiner_model, kServeKind));
  }
  return writer.finish() && ok;
}

std::string snapshot_fingerprint(const std::string& path, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    fail(error, "cannot read snapshot '" + path + "'");
    return {};
  }
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) {
    fail(error, "I/O error reading snapshot '" + path + "'");
    return {};
  }
  char buf[9];
  std::snprintf(buf, sizeof(buf), "%08X",
                db::crc32(reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size()));
  return buf;
}

std::shared_ptr<LoadedDesign> load_session_design(const std::string& path,
                                                  const FlowOptions& flow_options,
                                                  std::string* error) {
  TS_TRACE_SPAN_CAT("serve.load_session_design", "db");
  auto loaded = std::make_shared<LoadedDesign>();
  loaded->path = path;
  loaded->fingerprint = snapshot_fingerprint(path, error);
  if (loaded->fingerprint.empty()) return nullptr;

  db::DbReader reader;
  std::string open_error;
  if (!reader.open(path, &open_error)) {
    fail(error, "snapshot '" + path + "' rejected: " + open_error);
    return nullptr;
  }

  const db::ChunkInfo* meta_chunk = reader.find(db::kChunkMeta);
  const auto meta =
      meta_chunk == nullptr
          ? std::nullopt
          : decode_serve_meta(reader.payload(*meta_chunk),
                              static_cast<std::size_t>(meta_chunk->size));
  if (!meta) {
    fail(error, "snapshot '" + path + "' is not a serve-kind container");
    return nullptr;
  }

  const db::ChunkInfo* lib_chunk = reader.find(db::kChunkLibrary);
  auto lib = lib_chunk == nullptr
                 ? std::nullopt
                 : db::decode_library(reader.payload(*lib_chunk),
                                      static_cast<std::size_t>(lib_chunk->size));
  if (!lib) {
    fail(error, "snapshot '" + path + "' has no valid embedded library");
    return nullptr;
  }
  loaded->lib = std::make_unique<CellLibrary>(std::move(*lib));
  if (db::library_fingerprint(*loaded->lib) != meta->library_fingerprint) {
    fail(error, "snapshot '" + path + "' library fingerprint mismatch");
    return nullptr;
  }

  const std::uint8_t* data = nullptr;
  std::size_t size = 0;
  if (!indexed_payload(reader, db::kChunkDesign, &data, &size)) {
    fail(error, "snapshot '" + path + "' has no design chunk");
    return nullptr;
  }
  auto decoded = db::decode_design(data, size, *loaded->lib);
  if (!decoded) {
    fail(error, "snapshot '" + path + "' design chunk is malformed");
    return nullptr;
  }
  loaded->spec = std::move(decoded->spec);
  loaded->design = std::make_unique<Design>(std::move(decoded->design));

  if (!indexed_payload(reader, db::kChunkFlowCal, &data, &size)) {
    fail(error, "snapshot '" + path + "' has no calibration chunk");
    return nullptr;
  }
  db::ByteReader cal_reader(data, size);
  FlowCalibration cal;
  cal.clock_period_ns = cal_reader.f64();
  cal.fixed_h_cap = cal_reader.f64();
  cal.fixed_v_cap = cal_reader.f64();
  if (!cal_reader.done()) {
    fail(error, "snapshot '" + path + "' calibration chunk is malformed");
    return nullptr;
  }

  if (!indexed_payload(reader, db::kChunkForest, &data, &size)) {
    fail(error, "snapshot '" + path + "' has no forest chunk");
    return nullptr;
  }
  auto forest = db::decode_forest(data, size);
  if (!forest || forest->net_to_tree.size() != loaded->design->nets().size()) {
    fail(error, "snapshot '" + path + "' forest chunk is malformed");
    return nullptr;
  }
  loaded->flow = std::make_unique<Flow>(
      Flow::from_snapshot(loaded->design.get(), flow_options, cal, std::move(*forest)));

  if (meta->has_model) {
    const db::ChunkInfo* model_chunk = reader.find(db::kChunkModel);
    auto model = model_chunk == nullptr
                     ? std::nullopt
                     : decode_model_payload_any(reader.payload(*model_chunk),
                                                static_cast<std::size_t>(model_chunk->size),
                                                loaded->lib->num_types(), nullptr);
    if (!model) {
      fail(error, "snapshot '" + path + "' model chunk is malformed");
      return nullptr;
    }
    loaded->model = std::make_unique<TimingGnn>(std::move(*model));
  }

  // SMDL is self-describing and optional (older serve snapshots simply lack
  // it; the wirelength op then reports a clean error). Present but
  // undecodable is a corruption, rejected like any other chunk.
  if (const db::ChunkInfo* smdl = reader.find(db::kChunkSteinerModel)) {
    auto steiner = decode_steiner_predictor_payload_any(
        reader.payload(*smdl), static_cast<std::size_t>(smdl->size), nullptr);
    if (!steiner) {
      fail(error, "snapshot '" + path + "' steiner-model chunk is malformed");
      return nullptr;
    }
    loaded->steiner_model = std::make_unique<SteinerPredictor>(std::move(*steiner));
  }

  loaded->approx_bytes = estimate_bytes(*loaded);
  return loaded;
}

std::shared_ptr<LoadedDesign> SessionManager::acquire_design(const std::string& path,
                                                             std::string* error) {
  // Fingerprint first: a cache hit requires the *current* file bytes to match
  // the cached entry, so a rewritten snapshot is never served stale.
  const std::string fingerprint = snapshot_fingerprint(path, error);
  if (fingerprint.empty()) return nullptr;

  for (std::size_t i = 0; i < cache_.size(); ++i) {
    if (cache_[i]->path != path) continue;
    if (cache_[i]->fingerprint == fingerprint) {
      auto hit = cache_[i];
      cache_.erase(cache_.begin() + static_cast<long>(i));
      cache_.insert(cache_.begin(), hit);  // move to MRU
      ++stats_.cache_hits;
      static obs::Counter& hits = obs::metrics().counter("serve.cache_hit");
      hits.add();
      return hit;
    }
    // Same path, different bytes: drop the stale entry and reload.
    cache_.erase(cache_.begin() + static_cast<long>(i));
    break;
  }

  // Cold load. Holding mu_ serializes concurrent cold opens; restore cost is
  // bounded and correctness is simpler than per-path load latches.
  auto loaded = load_session_design(path, options_.flow, error);
  if (loaded == nullptr) return nullptr;
  ++stats_.loads;
  static obs::Counter& misses = obs::metrics().counter("serve.cache_miss");
  misses.add();
  cache_.insert(cache_.begin(), loaded);
  evict_over_budget();
  return loaded;
}

void SessionManager::evict_over_budget() {
  std::size_t total = 0;
  for (const auto& d : cache_) total += d->approx_bytes;
  // Never evict the MRU entry (the one the current open needs).
  while (cache_.size() > 1 &&
         (total > options_.budget_bytes || cache_.size() > options_.max_designs)) {
    total -= cache_.back()->approx_bytes;
    TS_VERBOSE("serve: evicting cached design '%s' (%zu bytes)", cache_.back()->path.c_str(),
               cache_.back()->approx_bytes);
    cache_.pop_back();
    ++stats_.evictions;
    static obs::Counter& evictions = obs::metrics().counter("serve.cache_eviction");
    evictions.add();
  }
}

std::shared_ptr<Session> SessionManager::open(const std::string& path, std::string* error) {
  std::lock_guard<std::mutex> lock(mu_);
  auto loaded = acquire_design(path, error);
  if (loaded == nullptr) return nullptr;
  auto session = std::make_shared<Session>();
  session->id = "s" + std::to_string(next_session_++);
  session->loaded = std::move(loaded);
  session->forest = session->loaded->flow->initial_forest();
  ++stats_.opens;
  sessions_.push_back(session);
  return session;
}

std::shared_ptr<Session> SessionManager::find(const std::string& id,
                                              const std::string& fingerprint,
                                              std::string* error) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& session : sessions_) {
    if (session->id != id) continue;
    if (session->loaded->fingerprint != fingerprint) {
      fail(error, "fingerprint mismatch for session '" + id + "': session has " +
                      session->loaded->fingerprint + ", request says " + fingerprint);
      return nullptr;
    }
    return session;
  }
  fail(error, "no such session '" + id + "'");
  return nullptr;
}

std::shared_ptr<Session> SessionManager::peek(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& session : sessions_) {
    if (session->id == id) return session;
  }
  return nullptr;
}

std::vector<SessionManager::SessionTelemetry> SessionManager::session_telemetry() const {
  std::vector<std::shared_ptr<Session>> sessions;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sessions = sessions_;
  }
  std::vector<SessionTelemetry> out;
  out.reserve(sessions.size());
  for (const auto& session : sessions) {
    SessionTelemetry t;
    t.id = session->id;
    std::lock_guard<std::mutex> lk(session->telem.mu);
    t.requests = session->telem.requests;
    t.timed = session->telem.timed;
    t.latency_ms_sum = session->telem.latency_ms_sum;
    t.latency_ms_max = session->telem.latency_ms_max;
    out.push_back(std::move(t));
  }
  return out;
}

bool SessionManager::close(const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < sessions_.size(); ++i) {
    if (sessions_[i]->id == id) {
      sessions_.erase(sessions_.begin() + static_cast<long>(i));
      return true;
    }
  }
  return false;
}

SessionManagerStats SessionManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  SessionManagerStats s = stats_;
  s.cached_designs = cache_.size();
  s.cached_bytes = 0;
  for (const auto& d : cache_) s.cached_bytes += d->approx_bytes;
  s.open_sessions = sessions_.size();
  return s;
}

}  // namespace tsteiner::serve
