#include "serve/client.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace tsteiner::serve {

namespace {

bool fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

bool write_all(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::write(fd, data + sent, size - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

bool ServeClient::connect_unix(const std::string& path, std::string* error) {
  close();
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) return fail(error, "socket(AF_UNIX) failed");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    close();
    return fail(error, "unix socket path too long");
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close();
    return fail(error, "connect('" + path + "') failed: " + std::strerror(errno));
  }
  return true;
}

bool ServeClient::connect_tcp(int port, std::string* error) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return fail(error, "socket(AF_INET) failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close();
    return fail(error, "connect(127.0.0.1:" + std::to_string(port) +
                           ") failed: " + std::strerror(errno));
  }
  return true;
}

void ServeClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  decoder_ = FrameDecoder();
  frames_.clear();
}

bool ServeClient::read_more(std::string* error) {
  std::uint8_t buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) return fail(error, std::string("read failed: ") + std::strerror(errno));
    if (n == 0) return fail(error, "server closed the connection");
    if (!decoder_.feed(buf, static_cast<std::size_t>(n), &frames_)) {
      return fail(error, "malformed frame from server: " + decoder_.error());
    }
    return true;
  }
}

ServeClient::Reply ServeClient::call(Request request) {
  Reply reply;
  if (fd_ < 0) {
    reply.error = "not connected";
    return reply;
  }
  if (request.id == 0) request.id = next_id_++;
  const std::vector<std::uint8_t> bytes =
      encode_frame(Frame{FrameKind::kRequest, encode_request(request)});
  if (!write_all(fd_, bytes.data(), bytes.size())) {
    reply.error = "write failed";
    return reply;
  }
  for (;;) {
    while (frames_.empty()) {
      if (!read_more(&reply.error)) return reply;
    }
    Frame frame = std::move(frames_.front());
    frames_.erase(frames_.begin());
    std::string parse_error;
    auto body = obs::parse_json(frame.payload, &parse_error);
    if (!body) {
      reply.error = "unparsable payload from server: " + parse_error;
      return reply;
    }
    const double id = body->number_or("id", -1.0);
    if (frame.kind == FrameKind::kProgress) {
      if (id == static_cast<double>(request.id)) {
        reply.progress.push_back(std::move(*body));
        reply.progress_raw.emplace_back(frame.payload.begin(), frame.payload.end());
      }
      continue;
    }
    reply.raw.assign(frame.payload.begin(), frame.payload.end());
    if (id != static_cast<double>(request.id) && id != 0.0) {
      // A response for someone else on a shared connection is a protocol
      // violation in this blocking client (one call in flight at a time).
      reply.error = "response id mismatch";
      return reply;
    }
    reply.body = std::move(*body);
    if (frame.kind == FrameKind::kError) {
      const obs::JsonValue* message = reply.body.find_string("error");
      reply.error = message != nullptr ? message->str : "unknown server error";
      return reply;
    }
    reply.ok = true;
    return reply;
  }
}

ServeClient::Reply ServeClient::ping() {
  Request r;
  r.type = RequestType::kPing;
  return call(r);
}

ServeClient::Reply ServeClient::open(const std::string& snapshot_path) {
  Request r;
  r.type = RequestType::kOpen;
  r.snapshot = snapshot_path;
  return call(r);
}

ServeClient::Reply ServeClient::close_session(const std::string& session) {
  Request r;
  r.type = RequestType::kClose;
  r.session = session;
  return call(r);
}

ServeClient::Reply ServeClient::stats() {
  Request r;
  r.type = RequestType::kStats;
  return call(r);
}

ServeClient::Reply ServeClient::metrics() {
  Request r;
  r.type = RequestType::kMetrics;
  return call(r);
}

ServeClient::Reply ServeClient::shutdown_server() {
  Request r;
  r.type = RequestType::kShutdown;
  return call(r);
}

ServeClient::Reply ServeClient::wirelength(const std::string& session,
                                           const std::string& fingerprint,
                                           std::vector<std::vector<PointF>> pin_sets) {
  Request r;
  r.type = RequestType::kWirelength;
  r.session = session;
  r.fingerprint = fingerprint;
  r.pin_sets = std::move(pin_sets);
  return call(r);
}

}  // namespace tsteiner::serve
