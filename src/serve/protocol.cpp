#include "serve/protocol.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>

namespace tsteiner::serve {

namespace {

struct TypeName {
  RequestType type;
  const char* name;
};

constexpr TypeName kTypeNames[] = {
    {RequestType::kPing, "ping"},       {RequestType::kOpen, "open"},
    {RequestType::kClose, "close"},     {RequestType::kStats, "stats"},
    {RequestType::kShutdown, "shutdown"}, {RequestType::kSta, "sta"},
    {RequestType::kSignoff, "signoff"}, {RequestType::kWhatIf, "whatif"},
    {RequestType::kRefine, "refine"},   {RequestType::kWirelength, "wirelength"},
    {RequestType::kMetrics, "metrics"},
};

bool needs_session(RequestType type) {
  return type == RequestType::kClose || type == RequestType::kSta ||
         type == RequestType::kSignoff || type == RequestType::kWhatIf ||
         type == RequestType::kRefine || type == RequestType::kWirelength;
}

bool needs_fingerprint(RequestType type) {
  return type == RequestType::kSta || type == RequestType::kSignoff ||
         type == RequestType::kWhatIf || type == RequestType::kRefine ||
         type == RequestType::kWirelength;
}

bool fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

/// Reads a non-negative integral JSON number; rejects fractions and NaN.
bool read_uint(const obs::JsonValue& object, const char* name, bool required,
               std::uint64_t* out, std::string* error) {
  const obs::JsonValue* v = object.find(name);
  if (v == nullptr) {
    if (!required) return true;
    return fail(error, std::string("missing field '") + name + "'");
  }
  if (!v->is_number() || !std::isfinite(v->number) || v->number < 0.0 ||
      v->number != std::floor(v->number)) {
    return fail(error, std::string("field '") + name + "' must be a non-negative integer");
  }
  *out = static_cast<std::uint64_t>(v->number);
  return true;
}

/// Coordinate field (moves, pins): prefers "<name>_bits" (exact) over the
/// decimal "<name>".
bool read_move_coord(const obs::JsonValue& object, const char* name, double* out,
                     std::string* error) {
  const obs::JsonValue* bits = object.find(std::string(name) + "_bits");
  if (bits != nullptr) {
    if (!bits->is_string() || !double_from_bits_hex(bits->str, out)) {
      return fail(error, std::string("field '") + name + "_bits' must be 16 hex digits");
    }
    return true;
  }
  const obs::JsonValue* v = object.find(name);
  if (v == nullptr || !v->is_number()) {
    return fail(error, std::string("missing numeric field '") + name + "'");
  }
  *out = v->number;
  return true;
}

}  // namespace

const char* request_type_name(RequestType type) {
  for (const TypeName& t : kTypeNames) {
    if (t.type == type) return t.name;
  }
  return "?";
}

std::string double_bits_hex(double value) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llX", static_cast<unsigned long long>(bits));
  return buf;
}

bool double_from_bits_hex(const std::string& hex, double* value) {
  if (hex.size() != 16) return false;
  std::uint64_t bits = 0;
  for (char c : hex) {
    std::uint64_t digit = 0;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'A' && c <= 'F') {
      digit = static_cast<std::uint64_t>(c - 'A') + 10;
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint64_t>(c - 'a') + 10;
    } else {
      return false;
    }
    bits = bits << 4 | digit;
  }
  std::memcpy(value, &bits, sizeof(bits));
  return true;
}

std::optional<Request> parse_request(const std::string& payload, std::string* error) {
  std::string parse_error;
  const auto doc = obs::parse_json(payload, &parse_error);
  if (!doc) {
    fail(error, "invalid JSON: " + parse_error);
    return std::nullopt;
  }
  if (!doc->is_object()) {
    fail(error, "request payload must be a JSON object");
    return std::nullopt;
  }

  std::uint64_t version = 0;
  if (!read_uint(*doc, "v", /*required=*/true, &version, error)) return std::nullopt;
  if (version != static_cast<std::uint64_t>(kSchemaVersion)) {
    fail(error, "unsupported schema version " + std::to_string(version));
    return std::nullopt;
  }

  Request req;
  if (!read_uint(*doc, "id", /*required=*/true, &req.id, error)) return std::nullopt;

  const obs::JsonValue* type = doc->find_string("type");
  if (type == nullptr) {
    fail(error, "missing field 'type'");
    return std::nullopt;
  }
  bool known = false;
  for (const TypeName& t : kTypeNames) {
    if (type->str == t.name) {
      req.type = t.type;
      known = true;
      break;
    }
  }
  if (!known) {
    fail(error, "unknown request type '" + type->str + "'");
    return std::nullopt;
  }

  if (const obs::JsonValue* trace = doc->find("trace")) {
    if (!trace->is_string() || trace->str.empty()) {
      fail(error, "field 'trace' must be a non-empty string");
      return std::nullopt;
    }
    if (trace->str.size() > 128) {
      fail(error, "field 'trace' is capped at 128 characters");
      return std::nullopt;
    }
    req.trace = trace->str;
  }

  if (req.type == RequestType::kOpen) {
    const obs::JsonValue* snapshot = doc->find_string("snapshot");
    if (snapshot == nullptr || snapshot->str.empty()) {
      fail(error, "open requires a non-empty 'snapshot' path");
      return std::nullopt;
    }
    req.snapshot = snapshot->str;
  }

  if (needs_session(req.type)) {
    const obs::JsonValue* session = doc->find_string("session");
    if (session == nullptr || session->str.empty()) {
      fail(error, std::string(request_type_name(req.type)) +
                      " requires a non-empty 'session' id");
      return std::nullopt;
    }
    req.session = session->str;
  }
  if (needs_fingerprint(req.type)) {
    const obs::JsonValue* fp = doc->find_string("fingerprint");
    if (fp == nullptr || fp->str.empty()) {
      fail(error, std::string(request_type_name(req.type)) +
                      " requires the session 'fingerprint'");
      return std::nullopt;
    }
    req.fingerprint = fp->str;
  }

  if (req.type == RequestType::kWhatIf) {
    const obs::JsonValue* moves = doc->find_array("moves");
    if (moves == nullptr) {
      fail(error, "whatif requires a 'moves' array");
      return std::nullopt;
    }
    for (const obs::JsonValue& entry : moves->array) {
      if (!entry.is_object()) {
        fail(error, "every move must be an object");
        return std::nullopt;
      }
      WhatIfMove move;
      std::uint64_t net = 0;
      if (!read_uint(entry, "net", /*required=*/true, &net, error)) return std::nullopt;
      move.net = static_cast<int>(net);
      if (!read_move_coord(entry, "dx", &move.dx, error)) return std::nullopt;
      if (!read_move_coord(entry, "dy", &move.dy, error)) return std::nullopt;
      req.moves.push_back(move);
    }
  }

  if (req.type == RequestType::kRefine) {
    std::uint64_t iterations = 0, probe_every = 0;
    if (!read_uint(*doc, "iterations", /*required=*/false, &iterations, error)) {
      return std::nullopt;
    }
    if (!read_uint(*doc, "probe_every", /*required=*/false, &probe_every, error)) {
      return std::nullopt;
    }
    if (iterations > 100000 || probe_every > 100000) {
      fail(error, "refine iteration counts are capped at 100000");
      return std::nullopt;
    }
    req.iterations = static_cast<int>(iterations);
    req.probe_every = static_cast<int>(probe_every);
    if (const obs::JsonValue* commit = doc->find("commit")) {
      if (!commit->is_bool()) {
        fail(error, "field 'commit' must be a boolean");
        return std::nullopt;
      }
      req.commit = commit->boolean;
    }
    if (const obs::JsonValue* topology = doc->find("topology")) {
      if (!topology->is_bool()) {
        fail(error, "field 'topology' must be a boolean");
        return std::nullopt;
      }
      req.topology = topology->boolean;
    }
  }

  if (req.type == RequestType::kWirelength) {
    const obs::JsonValue* nets = doc->find_array("nets");
    if (nets == nullptr) {
      fail(error, "wirelength requires a 'nets' array");
      return std::nullopt;
    }
    if (nets->array.empty() || nets->array.size() > 100000) {
      fail(error, "wirelength takes between 1 and 100000 nets");
      return std::nullopt;
    }
    std::size_t total_pins = 0;
    for (const obs::JsonValue& entry : nets->array) {
      if (!entry.is_object()) {
        fail(error, "every net must be an object");
        return std::nullopt;
      }
      const obs::JsonValue* pins = entry.find_array("pins");
      if (pins == nullptr) {
        fail(error, "every net needs a 'pins' array");
        return std::nullopt;
      }
      if (pins->array.size() < 2) {
        fail(error, "every net needs at least 2 pins (driver first)");
        return std::nullopt;
      }
      std::vector<PointF> net;
      net.reserve(pins->array.size());
      for (const obs::JsonValue& pin : pins->array) {
        if (!pin.is_object()) {
          fail(error, "every pin must be an object");
          return std::nullopt;
        }
        PointF p;
        if (!read_move_coord(pin, "x", &p.x, error)) return std::nullopt;
        if (!read_move_coord(pin, "y", &p.y, error)) return std::nullopt;
        if (!std::isfinite(p.x) || !std::isfinite(p.y)) {
          fail(error, "pin coordinates must be finite");
          return std::nullopt;
        }
        net.push_back(p);
      }
      total_pins += net.size();
      if (total_pins > 1000000) {
        fail(error, "wirelength requests are capped at 1000000 total pins");
        return std::nullopt;
      }
      req.pin_sets.push_back(std::move(net));
    }
  }
  return req;
}

std::string encode_request(const Request& request) {
  JsonBuilder b;
  b.field_u64("v", static_cast<std::uint64_t>(kSchemaVersion));
  b.field_u64("id", request.id);
  b.field_str("type", request_type_name(request.type));
  if (!request.trace.empty()) b.field_str("trace", request.trace);
  if (!request.snapshot.empty()) b.field_str("snapshot", request.snapshot);
  if (!request.session.empty()) b.field_str("session", request.session);
  if (!request.fingerprint.empty()) b.field_str("fingerprint", request.fingerprint);
  if (request.type == RequestType::kWhatIf) {
    std::string moves = "[";
    for (std::size_t i = 0; i < request.moves.size(); ++i) {
      const WhatIfMove& m = request.moves[i];
      JsonBuilder mb;
      mb.field_i64("net", m.net);
      mb.field_double("dx", m.dx);
      mb.field_double("dy", m.dy);
      if (i != 0) moves += ',';
      moves += mb.take();
    }
    moves += ']';
    b.field_raw("moves", moves);
  }
  if (request.type == RequestType::kRefine) {
    if (request.iterations > 0) b.field_i64("iterations", request.iterations);
    if (request.probe_every > 0) b.field_i64("probe_every", request.probe_every);
    b.field_bool("commit", request.commit);
    if (request.topology) b.field_bool("topology", true);
  }
  if (request.type == RequestType::kWirelength) {
    std::string nets = "[";
    for (std::size_t i = 0; i < request.pin_sets.size(); ++i) {
      std::string pins = "[";
      for (std::size_t j = 0; j < request.pin_sets[i].size(); ++j) {
        const PointF& p = request.pin_sets[i][j];
        JsonBuilder pb;
        pb.field_double("x", p.x);
        pb.field_double("y", p.y);
        if (j != 0) pins += ',';
        pins += pb.take();
      }
      pins += ']';
      JsonBuilder nb;
      nb.field_raw("pins", pins);
      if (i != 0) nets += ',';
      nets += nb.take();
    }
    nets += ']';
    b.field_raw("nets", nets);
  }
  return b.take();
}

std::string encode_error(std::uint64_t id, const std::string& message, std::uint64_t req) {
  JsonBuilder b;
  b.field_u64("v", static_cast<std::uint64_t>(kSchemaVersion));
  b.field_u64("id", id);
  b.field_bool("ok", false);
  if (req != 0) b.field_u64("req", req);
  b.field_str("error", message);
  return b.take();
}

JsonBuilder::JsonBuilder() { out_ = "{"; }

void JsonBuilder::sep(const char* name) {
  if (!first_) out_ += ',';
  first_ = false;
  out_ += '"';
  out_ += name;  // field names are compile-time literals, never escaped
  out_ += "\":";
}

JsonBuilder& JsonBuilder::field_u64(const char* name, std::uint64_t value) {
  sep(name);
  out_ += std::to_string(value);
  return *this;
}

JsonBuilder& JsonBuilder::field_i64(const char* name, long long value) {
  sep(name);
  out_ += std::to_string(value);
  return *this;
}

JsonBuilder& JsonBuilder::field_bool(const char* name, bool value) {
  sep(name);
  out_ += value ? "true" : "false";
  return *this;
}

JsonBuilder& JsonBuilder::field_str(const char* name, const std::string& value) {
  sep(name);
  out_ += '"';
  out_ += obs::json_escape(value);
  out_ += '"';
  return *this;
}

JsonBuilder& JsonBuilder::field_double(const char* name, double value) {
  field_double_approx(name, value);
  sep((std::string(name) + "_bits").c_str());
  out_ += '"';
  out_ += double_bits_hex(value);
  out_ += '"';
  return *this;
}

JsonBuilder& JsonBuilder::field_double_approx(const char* name, double value) {
  sep(name);
  char buf[40];
  if (std::isfinite(value)) {
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    out_ += buf;
  } else {
    // JSON has no literals for non-finite values; the bits field (when the
    // caller used field_double) still carries the exact pattern.
    out_ += "null";
  }
  return *this;
}

JsonBuilder& JsonBuilder::field_raw(const char* name, const std::string& json) {
  sep(name);
  out_ += json;
  return *this;
}

std::string JsonBuilder::take() {
  if (!taken_) {
    out_ += '}';
    taken_ = true;
  }
  return out_;
}

bool read_double_field(const obs::JsonValue& object, const std::string& name, double* value) {
  if (const obs::JsonValue* bits = object.find(name + "_bits")) {
    if (bits->is_string() && double_from_bits_hex(bits->str, value)) return true;
  }
  const obs::JsonValue* v = object.find(name);
  if (v == nullptr || !v->is_number()) return false;
  *value = v->number;
  return true;
}

}  // namespace tsteiner::serve
