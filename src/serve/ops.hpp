// Request semantics shared byte-for-byte between the server's handlers and
// the direct-Flow reference paths (the serve differential oracle, the tests,
// bench_serve's correctness gate). Keeping the forest transformation in one
// function is what makes "bit-identical to a direct call" checkable: both
// sides run this exact code, so any divergence is in the serving layer.
#pragma once

#include <string>
#include <vector>

#include "flow/flow.hpp"
#include "netlist/netlist.hpp"
#include "serve/protocol.hpp"
#include "steiner/steiner_tree.hpp"

namespace tsteiner::serve {

/// Apply what-if moves: every movable Steiner node of each listed net's tree
/// shifts by (dx, dy), clamped to the die. Appends each affected net to
/// `dirty_nets` in move order (the dirty-net contract for incremental
/// sign-off). False + `error` on an out-of-range net or a net with no tree;
/// the forest is left partially modified only on success of earlier moves,
/// so callers must treat failure as fatal for the session's working forest —
/// the server rejects the whole request *before* applying anything by
/// validating first.
bool validate_whatif_moves(const SteinerForest& forest, const Design& design,
                           const std::vector<WhatIfMove>& moves, std::string* error);
void apply_whatif_moves(SteinerForest* forest, const Design& design,
                        const std::vector<WhatIfMove>& moves, std::vector<int>* dirty_nets);

/// The batched-construction options the `wirelength` op runs with, derived
/// from the session's FlowOptions exactly like Flow's own initial
/// construction (fallback and thread policy pinned to the flow's rsmt).
/// Server handler, oracle and tests all call this, so "bit-identical to a
/// direct estimate_wirelengths call" is comparing the same configuration.
BatchBuildOptions wirelength_batch_options(const FlowOptions& flow);

}  // namespace tsteiner::serve
