#include "serve/framing.hpp"

#include <cstring>

#include "db/crc32.hpp"

namespace tsteiner::serve {

namespace {

std::uint32_t load_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 | static_cast<std::uint32_t>(p[3]) << 24;
}

std::uint64_t load_u64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(load_u32(p)) |
         static_cast<std::uint64_t>(load_u32(p + 4)) << 32;
}

void store_u32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

void store_u64(std::uint8_t* p, std::uint64_t v) {
  store_u32(p, static_cast<std::uint32_t>(v));
  store_u32(p + 4, static_cast<std::uint32_t>(v >> 32));
}

bool known_kind(std::uint32_t kind) {
  return kind >= static_cast<std::uint32_t>(FrameKind::kRequest) &&
         kind <= static_cast<std::uint32_t>(FrameKind::kError);
}

}  // namespace

std::vector<std::uint8_t> encode_frame(const Frame& frame) {
  std::vector<std::uint8_t> out(kFrameHeaderBytes + frame.payload.size());
  std::memcpy(out.data(), kFrameMagic, 4);
  store_u32(out.data() + 4, kProtocolVersion);
  store_u32(out.data() + 8, static_cast<std::uint32_t>(frame.kind));
  store_u64(out.data() + 12, frame.payload.size());
  store_u32(out.data() + 20,
            db::crc32(reinterpret_cast<const std::uint8_t*>(frame.payload.data()),
                      frame.payload.size()));
  std::memcpy(out.data() + kFrameHeaderBytes, frame.payload.data(), frame.payload.size());
  return out;
}

bool parse_frame_header(const std::uint8_t header[kFrameHeaderBytes],
                        std::size_t max_payload_bytes, FrameKind* kind,
                        std::uint64_t* payload_len, std::uint32_t* payload_crc,
                        std::string* error) {
  if (std::memcmp(header, kFrameMagic, 4) != 0) {
    if (error != nullptr) *error = "bad frame magic";
    return false;
  }
  const std::uint32_t version = load_u32(header + 4);
  if (version != kProtocolVersion) {
    if (error != nullptr) {
      *error = "unsupported protocol version " + std::to_string(version) + " (expected " +
               std::to_string(kProtocolVersion) + ")";
    }
    return false;
  }
  const std::uint32_t raw_kind = load_u32(header + 8);
  if (!known_kind(raw_kind)) {
    if (error != nullptr) *error = "unknown frame kind " + std::to_string(raw_kind);
    return false;
  }
  const std::uint64_t len = load_u64(header + 12);
  if (len > max_payload_bytes) {
    if (error != nullptr) {
      *error = "frame payload of " + std::to_string(len) + " bytes exceeds the " +
               std::to_string(max_payload_bytes) + "-byte cap";
    }
    return false;
  }
  if (kind != nullptr) *kind = static_cast<FrameKind>(raw_kind);
  if (payload_len != nullptr) *payload_len = len;
  if (payload_crc != nullptr) *payload_crc = load_u32(header + 20);
  return true;
}

bool FrameDecoder::fail(const std::string& message) {
  if (!poisoned_) {
    poisoned_ = true;
    error_ = message;
  }
  return false;
}

bool FrameDecoder::feed(const std::uint8_t* data, std::size_t size, std::vector<Frame>* out) {
  if (poisoned_) return false;
  buffer_.insert(buffer_.end(), data, data + size);
  for (;;) {
    if (buffer_.size() < kFrameHeaderBytes) return true;
    FrameKind kind{};
    std::uint64_t len = 0;
    std::uint32_t crc = 0;
    std::string why;
    if (!parse_frame_header(buffer_.data(), max_payload_, &kind, &len, &crc, &why)) {
      return fail(why);
    }
    if (buffer_.size() < kFrameHeaderBytes + len) return true;  // frame incomplete
    const std::uint8_t* payload = buffer_.data() + kFrameHeaderBytes;
    const std::uint32_t got_crc = db::crc32(payload, static_cast<std::size_t>(len));
    if (got_crc != crc) return fail("frame payload CRC mismatch");
    Frame frame;
    frame.kind = kind;
    frame.payload.assign(reinterpret_cast<const char*>(payload),
                         static_cast<std::size_t>(len));
    out->push_back(std::move(frame));
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<long>(kFrameHeaderBytes + len));
  }
}

}  // namespace tsteiner::serve
