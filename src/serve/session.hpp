// Multi-tenant session state for tsteiner_serve.
//
// Two layers:
//
//  * LoadedDesign — one restored "serve" snapshot (self-contained TSteinerDB
//    file: META + LIBR + DSGN + FCAL + FRST [+ MODL]), immutable after load
//    and shared by every session opened on the same file. SessionManager
//    keeps these in an LRU cache evicted under a byte budget; an entry is
//    keyed by path and fingerprint-checked (CRC32 of the file bytes) so a
//    rewritten snapshot is reloaded rather than served stale.
//
//  * Session — one tenant's mutable view: a private working forest plus the
//    IncrementalSignoff state that makes repeated what-if probes cheap.
//    Sessions pin their LoadedDesign via shared_ptr, so evicting a design
//    from the cache never invalidates a live session — it only means the
//    next open() pays a cold restore.
//
// Exactness: restoring a LoadedDesign uses Flow::from_snapshot, so every
// sign-off served from a session is bit-identical to a direct Flow built
// from the same snapshot (the serve differential oracle checks the bits).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "flow/flow.hpp"
#include "flow/incremental_signoff.hpp"
#include "gnn/model.hpp"
#include "gnn/steiner_predictor.hpp"
#include "netlist/design_generator.hpp"
#include "netlist/liberty.hpp"
#include "steiner/steiner_tree.hpp"

namespace tsteiner::serve {

/// An immutable restored serve snapshot, shared across sessions.
struct LoadedDesign {
  std::string path;
  std::string fingerprint;  ///< 8 uppercase hex digits, CRC32 of file bytes
  std::unique_ptr<CellLibrary> lib;
  BenchmarkSpec spec;
  std::unique_ptr<Design> design;
  std::unique_ptr<Flow> flow;
  std::unique_ptr<TimingGnn> model;  ///< null when the snapshot has no MODL
  /// null when the snapshot has no SMDL; needed by the `wirelength` op.
  std::unique_ptr<SteinerPredictor> steiner_model;
  std::size_t approx_bytes = 0;      ///< cache accounting (heuristic)
};

/// Write a self-contained serve snapshot: library embedded, design + flow
/// calibration + initial forest, optionally the refinement model, and
/// optionally the batched-construction Steiner predictor (SMDL chunk — what
/// the `wirelength` op serves from).
bool save_session_snapshot(const BenchmarkSpec& spec, const Design& design,
                           const FlowCalibration& cal, const SteinerForest& forest,
                           const CellLibrary& lib, const TimingGnn* model,
                           const SteinerPredictor* steiner_model, const std::string& path);

/// CRC32 of the raw file bytes as 8 uppercase hex digits; empty on I/O error.
std::string snapshot_fingerprint(const std::string& path, std::string* error = nullptr);

/// Restore a serve snapshot. Returns null (with `error`) when the file is
/// missing, corrupted, not a "serve"-kind container, or internally
/// inconsistent.
std::shared_ptr<LoadedDesign> load_session_design(const std::string& path,
                                                  const FlowOptions& flow_options,
                                                  std::string* error);

/// One tenant's mutable state.
struct Session {
  std::string id;
  std::shared_ptr<LoadedDesign> loaded;
  SteinerForest forest;  ///< private working copy (starts at the snapshot forest)
  /// Lazily constructed on the first sta/signoff/whatif; reset after a refine
  /// commit so the next probe re-establishes full-sign-off state.
  std::unique_ptr<IncrementalSignoff> signoff;

  /// Per-session serve telemetry, surfaced by the `stats` op. Request counts
  /// update always (no clock cost); latency aggregates accumulate only while
  /// the server is capturing request timing (metrics/trace/slow-log armed),
  /// so a fully disabled server never reads the clock for them.
  struct Telemetry {
    std::mutex mu;
    std::uint64_t requests = 0;
    std::uint64_t timed = 0;  ///< requests with a latency sample
    double latency_ms_sum = 0.0;
    double latency_ms_max = 0.0;
  };
  Telemetry telem;
};

struct SessionManagerStats {
  std::uint64_t loads = 0;       ///< cold snapshot restores
  std::uint64_t cache_hits = 0;  ///< open() served from the design cache
  std::uint64_t evictions = 0;   ///< designs dropped for the byte budget
  std::uint64_t opens = 0;       ///< total sessions ever opened
  std::size_t cached_designs = 0;
  std::size_t cached_bytes = 0;
  std::size_t open_sessions = 0;
};

/// Thread-safe owner of the design cache and the open-session table.
class SessionManager {
 public:
  struct Options {
    std::size_t budget_bytes = 256ull << 20;  ///< design-cache byte budget
    std::size_t max_designs = 64;             ///< hard entry-count cap
    FlowOptions flow;
  };

  explicit SessionManager(const Options& options) : options_(options) {}

  /// Open a session on the snapshot at `path`. Cache hit when the file's
  /// current fingerprint matches a cached entry; otherwise a cold load (and
  /// the stale entry, if any, is dropped). Null + `error` on failure.
  std::shared_ptr<Session> open(const std::string& path, std::string* error);

  /// Look up a session; the caller-supplied fingerprint must match the
  /// snapshot the session was opened on (stale-client rejection).
  std::shared_ptr<Session> find(const std::string& id, const std::string& fingerprint,
                                std::string* error);

  /// Fingerprint-free lookup for telemetry bookkeeping (null when the
  /// session does not exist / was closed). Never use for request dispatch.
  std::shared_ptr<Session> peek(const std::string& id) const;

  /// Per-session telemetry snapshot for the `stats` op, in open order.
  struct SessionTelemetry {
    std::string id;
    std::uint64_t requests = 0;
    std::uint64_t timed = 0;
    double latency_ms_sum = 0.0;
    double latency_ms_max = 0.0;
  };
  std::vector<SessionTelemetry> session_telemetry() const;

  bool close(const std::string& id);
  SessionManagerStats stats() const;

 private:
  std::shared_ptr<LoadedDesign> acquire_design(const std::string& path, std::string* error);
  void evict_over_budget();

  mutable std::mutex mu_;
  Options options_;
  std::vector<std::shared_ptr<LoadedDesign>> cache_;  ///< MRU first
  std::vector<std::shared_ptr<Session>> sessions_;
  std::uint64_t next_session_ = 1;
  SessionManagerStats stats_;
};

}  // namespace tsteiner::serve
