// tsteiner_serve core: a long-running multi-tenant batch server.
//
// Transport: a unix-domain or loopback-TCP listener; each connection speaks
// the length-prefixed frame protocol (serve/framing.hpp) carrying schema-v1
// JSON requests (serve/protocol.hpp). Malformed frames poison and close the
// connection; malformed requests get a clean kError frame and the connection
// stays usable.
//
// Threading model: one reader thread per connection parses and enqueues
// requests; a single dispatcher thread repeatedly takes a head-of-line batch
// (at most one request per session, preserving each session's FIFO order)
// and executes it across the deterministic worker pool via parallel_for.
// Sessions therefore interleave freely while a session's requests never
// reorder, and — because the pool's chunking is width-invariant and nested
// parallelism runs serially — every response is bit-identical to the same
// call made directly on Flow / IncrementalSignoff, at any thread width.
//
// Shutdown: request_shutdown() (or a SIGTERM handler calling the
// async-signal-safe notify_sigterm()) stops the acceptor, drains queued and
// in-flight requests, then closes connections. stop() additionally joins all
// threads; the destructor calls stop().
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/framing.hpp"
#include "serve/protocol.hpp"
#include "serve/session.hpp"

namespace tsteiner::serve {

struct ServeOptions {
  /// When non-empty, listen on this unix-domain socket path; otherwise on
  /// loopback TCP (tcp_port 0 picks an ephemeral port, see bound_tcp_port).
  std::string unix_socket;
  int tcp_port = 0;
  std::size_t cache_budget_bytes = 256ull << 20;
  std::size_t max_cached_designs = 64;
  std::size_t max_frame_bytes = kDefaultMaxPayloadBytes;
  FlowOptions flow;
};

struct ServerStats {
  std::uint64_t connections = 0;  ///< total accepted
  std::uint64_t requests = 0;     ///< well-formed requests executed
  std::uint64_t errors = 0;       ///< kError frames sent (parse + execution)
  std::uint64_t progress_frames = 0;
  std::uint64_t batches = 0;  ///< dispatcher batches executed
};

class Server {
 public:
  explicit Server(const ServeOptions& options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen + start acceptor/dispatcher threads.
  bool start(std::string* error);
  /// Graceful: stop accepting, drain queued and in-flight requests, close
  /// connections, join every thread. Idempotent.
  void stop();
  /// Begin the drain without blocking (the shutdown request handler and the
  /// SIGTERM path use this); stop() still joins.
  void request_shutdown();
  bool draining() const { return draining_.load(); }

  int bound_tcp_port() const { return bound_tcp_port_; }
  SessionManager& sessions() { return sessions_; }
  ServerStats stats() const;

  /// Async-signal-safe (a plain atomic store): SIGTERM handlers call this;
  /// the acceptor and dispatcher poll it and begin a graceful drain.
  static void notify_sigterm();

 private:
  struct Connection {
    int fd = -1;
    std::uint64_t id = 0;
    std::thread reader;
    std::mutex write_mu;
    std::atomic<bool> closed{false};
  };
  struct Pending {
    std::shared_ptr<Connection> conn;
    Request request;
    /// Server-side request id: assigned in arrival order to every well-formed
    /// request, echoed as "req" in responses/progress frames and attached to
    /// the request's serve spans. Deterministic under sequential traffic.
    std::uint64_t uid = 0;
    /// Tracer-clock timestamps, captured only while request timing is armed
    /// (tracing, metrics, or the slow-request log); 0 otherwise so the fully
    /// disabled path never reads the clock.
    std::uint64_t recv_ns = 0;     ///< before the request payload was parsed
    std::uint64_t enqueue_ns = 0;  ///< when the request entered the queue
  };

  void accept_loop();
  void reader_loop(const std::shared_ptr<Connection>& conn);
  void dispatch_loop();
  std::vector<Pending> take_batch();  ///< head-of-line selection under mu_
  void execute(const Pending& pending);
  void send_frame(const std::shared_ptr<Connection>& conn, FrameKind kind,
                  const std::string& payload, std::uint64_t req = 0);
  void send_error(const std::shared_ptr<Connection>& conn, std::uint64_t id,
                  const std::string& message, std::uint64_t req = 0);
  void close_all_connections();

  void handle_ping(const Pending& p);
  void handle_open(const Pending& p);
  void handle_close(const Pending& p);
  void handle_stats(const Pending& p);
  void handle_shutdown(const Pending& p);
  void handle_sta(const Pending& p);
  void handle_signoff(const Pending& p);
  void handle_whatif(const Pending& p);
  void handle_refine(const Pending& p);
  void handle_wirelength(const Pending& p);
  void handle_metrics(const Pending& p);

  ServeOptions options_;
  SessionManager sessions_;
  int listen_fd_ = -1;
  int bound_tcp_port_ = 0;
  std::string unix_path_;  ///< unlinked on stop when non-empty

  std::thread acceptor_;
  std::thread dispatcher_;
  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> stopped_{false};

  mutable std::mutex mu_;  ///< queue + connections + stats
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  std::size_t in_flight_ = 0;
  std::vector<std::shared_ptr<Connection>> connections_;
  std::uint64_t next_connection_ = 1;
  std::uint64_t next_request_ = 1;  ///< request uid allocator (under mu_)
  ServerStats stats_;
};

}  // namespace tsteiner::serve
