#include "serve/ops.hpp"

#include <algorithm>

namespace tsteiner::serve {

bool validate_whatif_moves(const SteinerForest& forest, const Design& design,
                           const std::vector<WhatIfMove>& moves, std::string* error) {
  for (const WhatIfMove& move : moves) {
    if (move.net < 0 || static_cast<std::size_t>(move.net) >= design.nets().size()) {
      if (error != nullptr) *error = "move net " + std::to_string(move.net) + " out of range";
      return false;
    }
    const int tree = forest.net_to_tree[static_cast<std::size_t>(move.net)];
    if (tree < 0) {
      if (error != nullptr) {
        *error = "move net " + std::to_string(move.net) + " has no Steiner tree";
      }
      return false;
    }
  }
  return true;
}

void apply_whatif_moves(SteinerForest* forest, const Design& design,
                        const std::vector<WhatIfMove>& moves, std::vector<int>* dirty_nets) {
  const RectI die = design.die();
  for (const WhatIfMove& move : moves) {
    const int tree = forest->net_to_tree[static_cast<std::size_t>(move.net)];
    for (SteinerNode& node : forest->trees[static_cast<std::size_t>(tree)].nodes) {
      if (!node.is_steiner()) continue;
      node.pos.x = std::clamp(node.pos.x + move.dx, static_cast<double>(die.lo.x),
                              static_cast<double>(die.hi.x));
      node.pos.y = std::clamp(node.pos.y + move.dy, static_cast<double>(die.lo.y),
                              static_cast<double>(die.hi.y));
    }
    if (dirty_nets != nullptr) dirty_nets->push_back(move.net);
  }
}

BatchBuildOptions wirelength_batch_options(const FlowOptions& flow) {
  BatchBuildOptions batch = flow.steiner.batch;
  batch.fallback = flow.rsmt;
  batch.threads = flow.rsmt.threads;
  return batch;
}

}  // namespace tsteiner::serve
