#include "serve/server.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/ops.hpp"
#include "tsteiner/refine.hpp"
#include "util/log.hpp"
#include "util/parallel.hpp"

namespace tsteiner::serve {

namespace {

/// Set by SIGTERM handlers through notify_sigterm(); polled (never waited
/// on) by the acceptor and dispatcher, because nothing heavier than an
/// atomic store is async-signal-safe.
std::atomic<bool> g_sigterm{false};

bool fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

bool write_all(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::write(fd, data + sent, size - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

void encode_signoff_fields(JsonBuilder& b, const SignoffMetrics& m) {
  b.field_double("wns_ns", m.wns_ns);
  b.field_double("tns_ns", m.tns_ns);
  b.field_i64("num_vios", m.num_vios);
  b.field_double("wirelength_dbu", m.wirelength_dbu);
  b.field_i64("num_vias", m.num_vias);
  b.field_i64("num_drvs", m.num_drvs);
}

/// Every response carries the server-side request id ("req") — emitted
/// unconditionally (independent of obs mode) so responses stay bit-identical
/// across obs off / metrics-only / full. The client trace tag is echoed only
/// when supplied, keeping pre-telemetry response bytes unchanged.
JsonBuilder response_builder(std::uint64_t id, RequestType type, std::uint64_t req,
                             const std::string& trace) {
  JsonBuilder b;
  b.field_u64("v", static_cast<std::uint64_t>(kSchemaVersion));
  b.field_u64("id", id);
  b.field_bool("ok", true);
  b.field_str("type", request_type_name(type));
  b.field_u64("req", req);
  if (!trace.empty()) b.field_str("trace", trace);
  return b;
}

const char* handle_span_name(RequestType type) {
  switch (type) {
    case RequestType::kPing: return "serve.handle.ping";
    case RequestType::kOpen: return "serve.handle.open";
    case RequestType::kClose: return "serve.handle.close";
    case RequestType::kStats: return "serve.handle.stats";
    case RequestType::kShutdown: return "serve.handle.shutdown";
    case RequestType::kSta: return "serve.handle.sta";
    case RequestType::kSignoff: return "serve.handle.signoff";
    case RequestType::kWhatIf: return "serve.handle.whatif";
    case RequestType::kRefine: return "serve.handle.refine";
    case RequestType::kWirelength: return "serve.handle.wirelength";
    case RequestType::kMetrics: return "serve.handle.metrics";
  }
  return "serve.handle.?";
}

/// Serve instruments, registered eagerly (Server construction) so the
/// registry's instrument set — and hence the `metrics` op's name-sorted
/// snapshot layout — is independent of traffic order. All updates go through
/// the registry's gated fast paths: zero-cost while metrics are disabled.
struct ServeMetrics {
  std::array<obs::HistogramMetric*, kNumRequestTypes> latency_ms{};
  std::array<obs::HistogramMetric*, kNumRequestTypes> queue_wait_ms{};
  obs::Gauge* batch_size = nullptr;
  obs::Gauge* queue_depth = nullptr;
  obs::Gauge* in_flight = nullptr;
  obs::Counter* bytes_in = nullptr;
  obs::Counter* bytes_out = nullptr;
  obs::Counter* requests = nullptr;
  obs::Counter* errors = nullptr;
  obs::Counter* progress_frames = nullptr;
};

ServeMetrics& serve_metrics() {
  static ServeMetrics* m = [] {
    auto* sm = new ServeMetrics();  // leaked: instrument refs are process-global
    obs::MetricsRegistry& reg = obs::metrics();
    for (std::size_t i = 0; i < kNumRequestTypes; ++i) {
      const char* op = request_type_name(static_cast<RequestType>(i));
      sm->latency_ms[i] =
          &reg.histogram(std::string("serve.latency_ms.") + op, 0.0, 1000.0, 50);
      sm->queue_wait_ms[i] =
          &reg.histogram(std::string("serve.queue_wait_ms.") + op, 0.0, 1000.0, 50);
    }
    sm->batch_size = &reg.gauge("serve.batch_size");
    sm->queue_depth = &reg.gauge("serve.queue_depth");
    sm->in_flight = &reg.gauge("serve.in_flight");
    sm->bytes_in = &reg.counter("serve.bytes_in");
    sm->bytes_out = &reg.counter("serve.bytes_out");
    sm->requests = &reg.counter("serve.requests");
    sm->errors = &reg.counter("serve.errors");
    sm->progress_frames = &reg.counter("serve.progress_frames");
    return sm;
  }();
  return *m;
}

/// Slow-request JSONL log: armed by TSTEINER_SERVE_SLOW_LOG=<path>, with the
/// threshold from TSTEINER_SERVE_SLOW_MS (default 100). One appended line per
/// slow request; opened per line so the file is always complete.
struct SlowLog {
  bool armed = false;
  double threshold_ms = 100.0;
  std::string path;
  std::mutex mu;

  void write(std::uint64_t req, std::uint64_t id, RequestType type,
             const std::string& session, std::uint64_t conn, double e2e_ms, double queue_ms) {
    JsonBuilder b;
    b.field_u64("req", req);
    b.field_u64("id", id);
    b.field_str("type", request_type_name(type));
    if (!session.empty()) b.field_str("session", session);
    b.field_u64("conn", conn);
    b.field_double_approx("e2e_ms", e2e_ms);
    b.field_double_approx("queue_ms", queue_ms);
    const std::string line = b.take();
    std::lock_guard<std::mutex> lock(mu);
    if (std::FILE* f = std::fopen(path.c_str(), "a")) {
      std::fprintf(f, "%s\n", line.c_str());
      std::fclose(f);
    }
  }
};

SlowLog& slow_log() {
  static SlowLog* s = [] {
    auto* sl = new SlowLog();
    if (const char* env = std::getenv("TSTEINER_SERVE_SLOW_LOG")) {
      if (*env != '\0') {
        sl->path = env;
        sl->armed = true;
      }
    }
    if (const char* env = std::getenv("TSTEINER_SERVE_SLOW_MS")) {
      const double ms = std::atof(env);
      if (ms >= 0.0) sl->threshold_ms = ms;
    }
    return sl;
  }();
  return *s;
}

/// Whether per-request timestamps are captured. The fully disabled server —
/// no tracing, no metrics, no slow log — never reads the clock per request.
bool timing_armed() {
  return obs::trace_enabled() || obs::metrics_enabled() || slow_log().armed;
}

}  // namespace

void Server::notify_sigterm() { g_sigterm.store(true); }

Server::Server(const ServeOptions& options)
    : options_(options),
      sessions_(SessionManager::Options{options.cache_budget_bytes, options.max_cached_designs,
                                        options.flow}) {
  (void)serve_metrics();  // register instruments before any traffic
}

Server::~Server() { stop(); }

bool Server::start(std::string* error) {
  if (started_.load()) return fail(error, "server already started");
  if (!options_.unix_socket.empty()) {
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return fail(error, "socket(AF_UNIX) failed");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.unix_socket.size() >= sizeof(addr.sun_path)) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      return fail(error, "unix socket path too long");
    }
    std::strncpy(addr.sun_path, options_.unix_socket.c_str(), sizeof(addr.sun_path) - 1);
    ::unlink(options_.unix_socket.c_str());
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      return fail(error, "bind('" + options_.unix_socket + "') failed: " + std::strerror(errno));
    }
    unix_path_ = options_.unix_socket;
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return fail(error, "socket(AF_INET) failed");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(options_.tcp_port));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      return fail(error, "bind(127.0.0.1:" + std::to_string(options_.tcp_port) +
                             ") failed: " + std::strerror(errno));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
    bound_tcp_port_ = ntohs(bound.sin_port);
  }
  if (::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return fail(error, std::string("listen() failed: ") + std::strerror(errno));
  }
  started_.store(true);
  acceptor_ = std::thread([this] { accept_loop(); });
  dispatcher_ = std::thread([this] { dispatch_loop(); });
  if (!options_.unix_socket.empty()) {
    TS_INFO("serve: listening on unix socket %s", options_.unix_socket.c_str());
  } else {
    TS_INFO("serve: listening on 127.0.0.1:%d", bound_tcp_port_);
  }
  return true;
}

void Server::request_shutdown() {
  if (draining_.exchange(true)) return;
  TS_INFO("serve: draining (no new connections; queued requests finish)");
  cv_.notify_all();
}

void Server::stop() {
  if (!started_.load() || stopped_.exchange(true)) return;
  request_shutdown();
  if (acceptor_.joinable()) acceptor_.join();
  if (dispatcher_.joinable()) dispatcher_.join();
  close_all_connections();
  // Join readers after their fds are closed so blocked read()s return.
  std::vector<std::shared_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(mu_);
    conns = connections_;
    connections_.clear();
  }
  for (auto& conn : conns) {
    if (conn->reader.joinable()) conn->reader.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (!unix_path_.empty()) ::unlink(unix_path_.c_str());
  TS_INFO("serve: stopped");
}

void Server::close_all_connections() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& conn : connections_) {
    if (!conn->closed.exchange(true)) ::shutdown(conn->fd, SHUT_RDWR);
  }
}

void Server::accept_loop() {
  for (;;) {
    if (g_sigterm.load()) request_shutdown();
    if (draining_.load()) return;
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    {
      std::lock_guard<std::mutex> lock(mu_);
      conn->id = next_connection_++;
      ++stats_.connections;
      connections_.push_back(conn);
    }
    conn->reader = std::thread([this, conn] { reader_loop(conn); });
  }
}

void Server::reader_loop(const std::shared_ptr<Connection>& conn) {
  ScopedLogTag tag("c" + std::to_string(conn->id));
  FrameDecoder decoder(options_.max_frame_bytes);
  std::uint8_t buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(conn->fd, buf, sizeof(buf));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    serve_metrics().bytes_in->add(static_cast<std::uint64_t>(n));
    std::vector<Frame> frames;
    if (!decoder.feed(buf, static_cast<std::size_t>(n), &frames)) {
      // Malformed frame: the stream is unrecoverable (framing is lost), so
      // report once and poison the connection.
      TS_VERBOSE("serve: closing connection %llu: %s",
                 static_cast<unsigned long long>(conn->id), decoder.error().c_str());
      send_error(conn, 0, "malformed frame: " + decoder.error());
      break;
    }
    bool drop = false;
    for (const Frame& frame : frames) {
      if (frame.kind != FrameKind::kRequest) {
        send_error(conn, 0, "only request frames are accepted from clients");
        drop = true;
        break;
      }
      const bool timed = timing_armed();
      const std::uint64_t t0 = timed ? obs::trace_clock_ns() : 0;
      std::string parse_error;
      auto request = parse_request(frame.payload, &parse_error);
      if (!request) {
        // Malformed *request*: clean error, connection stays usable.
        send_error(conn, 0, parse_error);
        continue;
      }
      const std::string trace_tag = request->trace;
      std::uint64_t uid = 0;
      std::uint64_t t1 = 0;
      {
        std::lock_guard<std::mutex> lock(mu_);
        Pending pend{conn, std::move(*request)};
        uid = pend.uid = next_request_++;
        pend.recv_ns = t0;
        t1 = timed ? obs::trace_clock_ns() : 0;
        pend.enqueue_ns = t1;
        queue_.push_back(std::move(pend));
        serve_metrics().queue_depth->set(static_cast<double>(queue_.size()));
        cv_.notify_all();
      }
      if (obs::trace_enabled()) {
        obs::emit_span("serve.decode", "serve", t0, t1, uid,
                       trace_tag.empty() ? nullptr : &trace_tag);
      }
    }
    if (drop) break;
  }
  if (!conn->closed.exchange(true)) ::shutdown(conn->fd, SHUT_RDWR);
}

std::vector<Server::Pending> Server::take_batch() {
  // Head-of-line selection: walk the queue in arrival order and take at most
  // one request per session. A session's second queued request stays behind
  // until its first completes (batches are barriers), so per-session order is
  // FIFO while distinct sessions interleave within one pool batch.
  std::vector<Pending> batch;
  std::set<std::string> sessions_in_batch;
  for (auto it = queue_.begin(); it != queue_.end();) {
    const std::string& key = it->request.session;
    if (!key.empty() && !sessions_in_batch.insert(key).second) {
      ++it;
      continue;
    }
    batch.push_back(std::move(*it));
    it = queue_.erase(it);
  }
  return batch;
}

void Server::dispatch_loop() {
  for (;;) {
    std::vector<Pending> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock, std::chrono::milliseconds(100),
                   [this] { return !queue_.empty() || draining_.load(); });
      if (g_sigterm.load() && !draining_.load()) {
        lock.unlock();
        request_shutdown();
        lock.lock();
      }
      if (queue_.empty()) {
        if (draining_.load() && in_flight_ == 0) return;
        continue;
      }
      batch = take_batch();
      in_flight_ += batch.size();
      ++stats_.batches;
      serve_metrics().batch_size->set(static_cast<double>(batch.size()));
      serve_metrics().in_flight->set(static_cast<double>(in_flight_));
      serve_metrics().queue_depth->set(static_cast<double>(queue_.size()));
    }
    // One pool job per batch: nested parallelism inside flow code runs
    // serially, and the pool's determinism contract keeps every response
    // bit-identical to a direct call at any thread width.
    {
      TS_TRACE_SPAN_CAT("serve.dispatch_batch", "serve");
      parallel_for(0, batch.size(), 1, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) execute(batch[i]);
      });
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      in_flight_ -= batch.size();
      serve_metrics().in_flight->set(static_cast<double>(in_flight_));
      cv_.notify_all();
    }
  }
}

void Server::execute(const Pending& p) {
  ScopedLogTag tag(p.request.session.empty() ? "c" + std::to_string(p.conn->id)
                                             : p.request.session);
  const bool timed = p.recv_ns != 0;
  const std::size_t op = static_cast<std::size_t>(p.request.type);
  double queue_ms = 0.0;
  if (timed) {
    const std::uint64_t now = obs::trace_clock_ns();
    queue_ms = static_cast<double>(now - p.enqueue_ns) * 1e-6;
    serve_metrics().queue_wait_ms[op]->observe(queue_ms);
    obs::emit_async_span("serve.queue_wait", "serve", p.enqueue_ns, now, p.uid);
  }
  try {
    obs::TraceSpan span(handle_span_name(p.request.type), "serve", p.uid);
    if (!p.request.trace.empty()) span.set_tag(p.request.trace);
    switch (p.request.type) {
      case RequestType::kPing: handle_ping(p); break;
      case RequestType::kOpen: handle_open(p); break;
      case RequestType::kClose: handle_close(p); break;
      case RequestType::kStats: handle_stats(p); break;
      case RequestType::kShutdown: handle_shutdown(p); break;
      case RequestType::kSta: handle_sta(p); break;
      case RequestType::kSignoff: handle_signoff(p); break;
      case RequestType::kWhatIf: handle_whatif(p); break;
      case RequestType::kRefine: handle_refine(p); break;
      case RequestType::kWirelength: handle_wirelength(p); break;
      case RequestType::kMetrics: handle_metrics(p); break;
    }
    serve_metrics().requests->add();
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.requests;
  } catch (const std::exception& e) {
    // The pool rethrows escaped exceptions at the batch barrier, which would
    // take down every request in the batch; contain the failure here.
    send_error(p.conn, p.request.id, std::string("internal error: ") + e.what(), p.uid);
  }
  double e2e_ms = 0.0;
  if (timed) {
    e2e_ms = static_cast<double>(obs::trace_clock_ns() - p.recv_ns) * 1e-6;
    serve_metrics().latency_ms[op]->observe(e2e_ms);
    SlowLog& sl = slow_log();
    if (sl.armed && e2e_ms >= sl.threshold_ms) {
      sl.write(p.uid, p.request.id, p.request.type, p.request.session, p.conn->id, e2e_ms,
               queue_ms);
    }
  }
  if (!p.request.session.empty()) {
    // Closed sessions drop out of the table before this lookup; their final
    // (close) request is simply not aggregated.
    if (auto session = sessions_.peek(p.request.session)) {
      std::lock_guard<std::mutex> lk(session->telem.mu);
      ++session->telem.requests;
      if (timed) {
        ++session->telem.timed;
        session->telem.latency_ms_sum += e2e_ms;
        if (e2e_ms > session->telem.latency_ms_max) session->telem.latency_ms_max = e2e_ms;
      }
    }
  }
}

void Server::send_frame(const std::shared_ptr<Connection>& conn, FrameKind kind,
                        const std::string& payload, std::uint64_t req) {
  // `req == 0` frames (pre-parse errors) are not attributable to a request
  // and get no serve spans — every emitted serve.encode/serve.write span
  // carries its request id.
  std::vector<std::uint8_t> bytes;
  if (req != 0) {
    TS_TRACE_SPAN_REQ("serve.encode", "serve", req);
    bytes = encode_frame(Frame{kind, payload});
  } else {
    bytes = encode_frame(Frame{kind, payload});
  }
  serve_metrics().bytes_out->add(bytes.size());
  const auto write_locked = [&] {
    std::lock_guard<std::mutex> lock(conn->write_mu);
    if (conn->closed.load()) return;
    if (!write_all(conn->fd, bytes.data(), bytes.size())) {
      conn->closed.store(true);
      ::shutdown(conn->fd, SHUT_RDWR);
    }
  };
  if (req != 0) {
    TS_TRACE_SPAN_REQ("serve.write", "serve", req);
    write_locked();
  } else {
    write_locked();
  }
}

void Server::send_error(const std::shared_ptr<Connection>& conn, std::uint64_t id,
                        const std::string& message, std::uint64_t req) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.errors;
  }
  serve_metrics().errors->add();
  send_frame(conn, FrameKind::kError, encode_error(id, message, req), req);
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

// ---------------------------------------------------------------------------
// Request handlers.

void Server::handle_ping(const Pending& p) {
  JsonBuilder b = response_builder(p.request.id, RequestType::kPing, p.uid, p.request.trace);
  b.field_bool("draining", draining_.load());
  send_frame(p.conn, FrameKind::kResponse, b.take(), p.uid);
}

void Server::handle_open(const Pending& p) {
  std::string error;
  auto session = sessions_.open(p.request.snapshot, &error);
  if (session == nullptr) {
    send_error(p.conn, p.request.id, error, p.uid);
    return;
  }
  TS_VERBOSE("serve: opened %s on '%s' (%s)", session->id.c_str(),
             p.request.snapshot.c_str(), session->loaded->fingerprint.c_str());
  JsonBuilder b = response_builder(p.request.id, RequestType::kOpen, p.uid, p.request.trace);
  b.field_str("session", session->id);
  b.field_str("fingerprint", session->loaded->fingerprint);
  b.field_str("design", session->loaded->design->name());
  b.field_u64("num_cells", session->loaded->design->cells().size());
  b.field_u64("num_nets", session->loaded->design->nets().size());
  b.field_u64("num_pins", session->loaded->design->pins().size());
  b.field_u64("num_movable", session->forest.num_movable());
  b.field_bool("has_model", session->loaded->model != nullptr);
  send_frame(p.conn, FrameKind::kResponse, b.take(), p.uid);
}

void Server::handle_close(const Pending& p) {
  const bool closed = sessions_.close(p.request.session);
  JsonBuilder b = response_builder(p.request.id, RequestType::kClose, p.uid, p.request.trace);
  b.field_str("session", p.request.session);
  b.field_bool("closed", closed);
  send_frame(p.conn, FrameKind::kResponse, b.take(), p.uid);
}

void Server::handle_stats(const Pending& p) {
  const SessionManagerStats s = sessions_.stats();
  const ServerStats sv = stats();
  JsonBuilder b = response_builder(p.request.id, RequestType::kStats, p.uid, p.request.trace);
  b.field_u64("open_sessions", s.open_sessions);
  b.field_u64("cached_designs", s.cached_designs);
  b.field_u64("cached_bytes", s.cached_bytes);
  b.field_u64("loads", s.loads);
  b.field_u64("cache_hits", s.cache_hits);
  b.field_u64("evictions", s.evictions);
  b.field_u64("opens", s.opens);
  b.field_u64("connections", sv.connections);
  b.field_u64("requests", sv.requests);
  b.field_u64("errors", sv.errors);
  b.field_u64("batches", sv.batches);
  b.field_bool("draining", draining_.load());
  // Per-session request/latency aggregates (open order). Latency fields are
  // zero unless request timing is armed (metrics/trace/slow log).
  std::string sessions_json = "[";
  bool first_session = true;
  for (const SessionManager::SessionTelemetry& t : sessions_.session_telemetry()) {
    JsonBuilder sb;
    sb.field_str("session", t.id);
    sb.field_u64("requests", t.requests);
    sb.field_u64("timed", t.timed);
    sb.field_double_approx("latency_ms_sum", t.latency_ms_sum);
    sb.field_double_approx("latency_ms_max", t.latency_ms_max);
    if (!first_session) sessions_json += ',';
    first_session = false;
    sessions_json += sb.take();
  }
  sessions_json += ']';
  b.field_raw("sessions", sessions_json);
  send_frame(p.conn, FrameKind::kResponse, b.take(), p.uid);
}

void Server::handle_shutdown(const Pending& p) {
  JsonBuilder b = response_builder(p.request.id, RequestType::kShutdown, p.uid, p.request.trace);
  b.field_bool("draining", true);
  send_frame(p.conn, FrameKind::kResponse, b.take(), p.uid);
  request_shutdown();
}

void Server::handle_sta(const Pending& p) {
  std::string error;
  auto session = sessions_.find(p.request.session, p.request.fingerprint, &error);
  if (session == nullptr) {
    send_error(p.conn, p.request.id, error, p.uid);
    return;
  }
  const StaResult r = session->loaded->flow->run_preroute_sta(session->forest);
  JsonBuilder b = response_builder(p.request.id, RequestType::kSta, p.uid, p.request.trace);
  b.field_double("wns_ns", r.wns);
  b.field_double("tns_ns", r.tns);
  b.field_i64("num_violations", r.num_violations);
  b.field_double("max_arrival_ns", r.max_arrival);
  b.field_u64("num_endpoints", r.endpoints.size());
  send_frame(p.conn, FrameKind::kResponse, b.take(), p.uid);
}

void Server::handle_signoff(const Pending& p) {
  std::string error;
  auto session = sessions_.find(p.request.session, p.request.fingerprint, &error);
  if (session == nullptr) {
    send_error(p.conn, p.request.id, error, p.uid);
    return;
  }
  if (session->signoff == nullptr) {
    session->signoff = std::make_unique<IncrementalSignoff>(
        session->loaded->design.get(), session->loaded->flow->options());
  }
  const IncrementalSignoff::Result& r = session->signoff->full(session->forest);
  JsonBuilder b = response_builder(p.request.id, RequestType::kSignoff, p.uid, p.request.trace);
  encode_signoff_fields(b, r.metrics);
  b.field_bool("incremental", r.incremental);
  send_frame(p.conn, FrameKind::kResponse, b.take(), p.uid);
}

void Server::handle_whatif(const Pending& p) {
  std::string error;
  auto session = sessions_.find(p.request.session, p.request.fingerprint, &error);
  if (session == nullptr) {
    send_error(p.conn, p.request.id, error, p.uid);
    return;
  }
  if (!validate_whatif_moves(session->forest, *session->loaded->design, p.request.moves,
                             &error)) {
    send_error(p.conn, p.request.id, error, p.uid);
    return;
  }
  std::vector<int> dirty;
  apply_whatif_moves(&session->forest, *session->loaded->design, p.request.moves, &dirty);
  if (session->signoff == nullptr) {
    session->signoff = std::make_unique<IncrementalSignoff>(
        session->loaded->design.get(), session->loaded->flow->options());
  }
  const IncrementalSignoff::Result& r = session->signoff->update(session->forest, dirty);
  JsonBuilder b = response_builder(p.request.id, RequestType::kWhatIf, p.uid, p.request.trace);
  encode_signoff_fields(b, r.metrics);
  b.field_bool("incremental", r.incremental);
  b.field_u64("num_dirty_nets", r.num_dirty_nets);
  b.field_u64("num_rerouted", r.num_rerouted);
  b.field_i64("reused_mazes", r.reused_mazes);
  b.field_i64("total_mazes", r.total_mazes);
  send_frame(p.conn, FrameKind::kResponse, b.take(), p.uid);
}

void Server::handle_refine(const Pending& p) {
  std::string error;
  auto session = sessions_.find(p.request.session, p.request.fingerprint, &error);
  if (session == nullptr) {
    send_error(p.conn, p.request.id, error, p.uid);
    return;
  }
  if (session->loaded->model == nullptr) {
    send_error(p.conn, p.request.id,
               "snapshot '" + session->loaded->path + "' embeds no model; refine unavailable");
    return;
  }
  RefineOptions opts;
  opts.gcell_size = session->loaded->flow->options().router.gcell_size;
  if (p.request.iterations > 0) opts.max_iterations = p.request.iterations;

  // Progress stream: one kProgress frame per refine iteration. Frames echo
  // the server request id (and client trace tag) like responses do.
  const std::uint64_t id = p.request.id;
  opts.iteration_sink = [&](const obs::RefineIterationRecord& rec) {
    JsonBuilder b;
    b.field_u64("v", static_cast<std::uint64_t>(kSchemaVersion));
    b.field_u64("id", id);
    b.field_u64("req", p.uid);
    if (!p.request.trace.empty()) b.field_str("trace", p.request.trace);
    b.field_str("progress", "refine_iteration");
    b.field_i64("iter", rec.iter);
    b.field_double("wns_ns", rec.wns);
    b.field_double("tns_ns", rec.tns);
    b.field_double("best_wns_ns", rec.best_wns);
    b.field_double("best_tns_ns", rec.best_tns);
    b.field_bool("accepted", rec.accepted);
    b.field_double_approx("theta", rec.theta);
    b.field_double_approx("wall_s", rec.wall_s);
    if (rec.has_signoff) {
      b.field_double("signoff_wns_ns", rec.signoff_wns);
      b.field_double("signoff_tns_ns", rec.signoff_tns);
      b.field_bool("signoff_incremental", rec.signoff_incremental);
    }
    send_frame(p.conn, FrameKind::kProgress, b.take(), p.uid);
    serve_metrics().progress_frames->add();
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.progress_frames;
  };

  // Periodic sign-off probes use request-local incremental state (the
  // session's own IncrementalSignoff must keep diffing against the working
  // forest, which refine does not mutate until commit).
  IncrementalSignoff probe(session->loaded->design.get(), session->loaded->flow->options());
  if (p.request.probe_every > 0) {
    opts.signoff_probe_every = p.request.probe_every;
    opts.signoff_probe = [&](const SteinerForest& forest,
                             const std::vector<int>& dirty) -> SignoffProbeResult {
      const IncrementalSignoff::Result& r = probe.update(forest, dirty);
      return {r.metrics.wns_ns, r.metrics.tns_ns, r.incremental};
    };
  }

  // Topology search wires its own request-local incremental state for the
  // episodic reward (its dirty-net stream is independent of the periodic
  // probe's) and the session flow's full sign-off as the keep-best anchor.
  IncrementalSignoff episodic(session->loaded->design.get(), session->loaded->flow->options());
  if (p.request.topology) {
    opts.topology.enabled = true;
    opts.topology.episodic_signoff =
        [&](const SteinerForest& forest, const std::vector<int>& dirty) -> SignoffProbeResult {
      const IncrementalSignoff::Result& r = episodic.update(forest, dirty);
      return {r.metrics.wns_ns, r.metrics.tns_ns, r.incremental};
    };
    opts.topology.full_signoff = [&](const SteinerForest& forest) -> SignoffProbeResult {
      const FlowResult r = session->loaded->flow->run_signoff(forest);
      return {r.metrics.wns_ns, r.metrics.tns_ns, false};
    };
  }

  RefineResult result = refine_steiner_points(*session->loaded->design, session->forest,
                                              *session->loaded->model, opts);
  JsonBuilder b = response_builder(p.request.id, RequestType::kRefine, p.uid, p.request.trace);
  if (p.request.topology) b.field_bool("topology", true);
  b.field_i64("iterations", result.iterations);
  b.field_bool("converged_by_ratio", result.converged_by_ratio);
  b.field_double("init_wns_ns", result.init_wns);
  b.field_double("init_tns_ns", result.init_tns);
  b.field_double("best_wns_ns", result.best_wns);
  b.field_double("best_tns_ns", result.best_tns);
  b.field_bool("committed", p.request.commit);
  if (p.request.commit) {
    session->forest = std::move(result.forest);
    // The working forest may have changed arbitrarily (topology-preserving
    // but every net possibly moved); drop the incremental state so the next
    // sign-off re-establishes it from a full run.
    session->signoff.reset();
  }
  send_frame(p.conn, FrameKind::kResponse, b.take(), p.uid);
}

void Server::handle_wirelength(const Pending& p) {
  std::string error;
  auto session = sessions_.find(p.request.session, p.request.fingerprint, &error);
  if (session == nullptr) {
    send_error(p.conn, p.request.id, error, p.uid);
    return;
  }
  if (session->loaded->steiner_model == nullptr) {
    send_error(p.conn, p.request.id,
               "snapshot '" + session->loaded->path +
                   "' embeds no steiner predictor; wirelength unavailable");
    return;
  }
  const BatchBuildOptions batch = wirelength_batch_options(session->loaded->flow->options());
  BatchBuildStats stats;
  std::vector<std::uint8_t> used_fallback;
  const std::vector<SteinerTree> trees = build_batched_trees(
      p.request.pin_sets, *session->loaded->steiner_model, batch, &stats, &used_fallback);
  std::string nets = "[";
  for (std::size_t i = 0; i < trees.size(); ++i) {
    JsonBuilder nb;
    nb.field_double("wl", trees[i].wirelength());
    nb.field_bool("fallback", used_fallback[i] != 0);
    if (i != 0) nets += ',';
    nets += nb.take();
  }
  nets += ']';
  JsonBuilder b = response_builder(p.request.id, RequestType::kWirelength, p.uid, p.request.trace);
  b.field_u64("num_nets", stats.num_nets);
  b.field_u64("num_fallback", stats.num_fallback());
  b.field_u64("num_inserted_points", stats.num_inserted_points);
  b.field_raw("nets", nets);
  send_frame(p.conn, FrameKind::kResponse, b.take(), p.uid);
}

void Server::handle_metrics(const Pending& p) {
  // A name-sorted registry snapshot (obs::MetricsRegistry::to_json):
  // instrument names, counter values, and histogram total counts are
  // deterministic for deterministic traffic; latency distributions, sums,
  // percentiles, and gauges carry wall-clock values.
  JsonBuilder b = response_builder(p.request.id, RequestType::kMetrics, p.uid, p.request.trace);
  b.field_bool("metrics_enabled", obs::metrics_enabled());
  b.field_raw("metrics", obs::metrics().to_json());
  send_frame(p.conn, FrameKind::kResponse, b.take(), p.uid);
}

}  // namespace tsteiner::serve
