// Versioned request/response schemas for tsteiner_serve (schema v1).
//
// Frame payloads are JSON objects. Every request carries {"v":1,"id":N,
// "type":"..."} plus type-specific fields; every response echoes the id and
// carries {"ok":true,...} (kResponse) or {"ok":false,"error":"..."}
// (kError). Progress frames echo the id and carry {"progress":"..."}.
//
// Exactness contract: every floating-point result field X is emitted twice —
// "X" as a %.17g decimal for humans, and "X_bits" as the 16-hex-digit IEEE
// bit pattern. The differential tests and the serve oracle compare the bits,
// so "bit-identical to the direct Flow API" is checked literally, not up to
// printf round-tripping. Clients sending coordinates (what-if moves) may
// likewise attach _bits fields; the server prefers them when present.
//
// parse_request is strict: wrong version, unknown type, missing or
// mistyped fields all fail with a precise message that the server returns
// as a clean kError frame (the connection stays usable — malformed *frames*
// kill a connection, malformed *requests* only fail the request).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "util/geometry.hpp"

namespace tsteiner::serve {

inline constexpr int kSchemaVersion = 1;

enum class RequestType {
  kPing,
  kOpen,      ///< open/restore a session from a TSteinerDB snapshot
  kClose,     ///< drop one session
  kStats,     ///< server + session-cache statistics
  kShutdown,  ///< begin graceful drain
  kSta,       ///< pre-routing STA on the session's working forest
  kSignoff,   ///< full GR -> DR -> STA sign-off on the working forest
  kWhatIf,    ///< move Steiner trees, incremental sign-off probe
  kRefine,    ///< run the paper's refinement loop on the working forest
  kWirelength,  ///< batched-construction wirelength estimates for raw pin sets
  kMetrics,   ///< live metrics-registry snapshot (name-sorted, deterministic)
};

/// Number of RequestType values (dense 0..N-1, usable as an array index).
inline constexpr std::size_t kNumRequestTypes = 11;

const char* request_type_name(RequestType type);

struct WhatIfMove {
  int net = 0;
  double dx = 0.0;
  double dy = 0.0;
};

struct Request {
  RequestType type = RequestType::kPing;
  std::uint64_t id = 0;
  /// Optional client trace tag: echoed in responses/progress frames and
  /// attached to the request's serve spans. Absent (empty) keeps the wire
  /// bytes byte-identical to pre-telemetry clients.
  std::string trace;
  std::string session;      ///< session ops
  std::string fingerprint;  ///< hex snapshot fingerprint, session ops
  std::string snapshot;     ///< open: path to a .tsdb snapshot
  std::vector<WhatIfMove> moves;
  int iterations = 0;   ///< refine: max iterations (0 = RefineOptions default)
  int probe_every = 0;  ///< refine: sign-off probe cadence (0 = off)
  bool commit = true;   ///< refine: adopt the refined forest as working state
  /// refine: interleave discrete topology search with the gradient loop
  /// (TopologyOptions defaults; the server wires episodic + anchor sign-off
  /// from the session flow). Off keeps the classic fixed-topology loop and
  /// byte-identical responses.
  bool topology = false;
  /// wirelength: one pin set per net, driver first, >= 2 pins each. Encoded
  /// as "nets":[{"pins":[{"x":..,"y":..},...]},...] with the usual _bits
  /// preference on coordinates.
  std::vector<std::vector<PointF>> pin_sets;
};

/// Strict schema-v1 parse. nullopt + `error` on any violation.
std::optional<Request> parse_request(const std::string& payload, std::string* error);

/// Client-side encoder (always emits _bits for move coordinates).
std::string encode_request(const Request& request);

/// {"v":1,"id":N,"ok":false,["req":N,]"error":...} — the kError frame
/// payload. `req` (the server-side request id) is emitted only when non-zero,
/// so pre-parse errors keep the historical bytes.
std::string encode_error(std::uint64_t id, const std::string& message, std::uint64_t req = 0);

/// 16 uppercase hex digits of the IEEE-754 bit pattern.
std::string double_bits_hex(double value);
/// Inverse of double_bits_hex; false on anything but exactly 16 hex digits.
bool double_from_bits_hex(const std::string& hex, double* value);

/// Deterministic JSON object builder used for every server-side payload.
/// Fields appear in insertion order; doubles get the dual decimal+bits
/// encoding via field_double.
class JsonBuilder {
 public:
  JsonBuilder();
  JsonBuilder& field_u64(const char* name, std::uint64_t value);
  JsonBuilder& field_i64(const char* name, long long value);
  JsonBuilder& field_bool(const char* name, bool value);
  JsonBuilder& field_str(const char* name, const std::string& value);
  /// "name": <%.17g>, "name_bits": "<hex16>"
  JsonBuilder& field_double(const char* name, double value);
  /// "name": <%.17g> only (latency/telemetry values with no exactness claim).
  JsonBuilder& field_double_approx(const char* name, double value);
  /// "name": <verbatim json> — caller guarantees validity.
  JsonBuilder& field_raw(const char* name, const std::string& json);
  std::string take();

 private:
  void sep(const char* name);
  std::string out_;
  bool first_ = true;
  bool taken_ = false;
};

/// Shared response-field helpers: read back a dual-encoded double, fall back
/// to the decimal when bits are absent. Used by clients and tests.
bool read_double_field(const obs::JsonValue& object, const std::string& name, double* value);

}  // namespace tsteiner::serve
