// Length-prefixed frame codec for the tsteiner_serve wire protocol.
//
// Every message on a connection — request, response, progress line, error —
// travels as one frame:
//
//   [0..3]   magic "TSRV"
//   [4..7]   u32 protocol version (kProtocolVersion)
//   [8..11]  u32 frame kind (FrameKind)
//   [12..19] u64 payload length in bytes
//   [20..23] u32 crc32(payload)
//   [24..]   payload (UTF-8 JSON, schema in docs/serving.md)
//
// All integers little-endian, same convention as TSteinerDB (src/db). The
// decoder is strict: wrong magic, unsupported version, unknown kind, a
// length above the configured cap, or a CRC mismatch poisons the decoder —
// the connection cannot be resynchronized after garbage and must be closed.
// Truncation (EOF mid-frame) is detected by the blocking readers in
// server/client, which require exactly header+payload bytes per frame.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace tsteiner::serve {

inline constexpr char kFrameMagic[4] = {'T', 'S', 'R', 'V'};
inline constexpr std::uint32_t kProtocolVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 24;
/// Default payload cap. Large enough for the refined-coordinate arrays of
/// any design this repo generates; small enough that a corrupted length
/// field cannot trigger a multi-gigabyte allocation.
inline constexpr std::size_t kDefaultMaxPayloadBytes = 32ull << 20;

enum class FrameKind : std::uint32_t {
  kRequest = 1,   ///< client -> server
  kResponse = 2,  ///< server -> client, terminates one request
  kProgress = 3,  ///< server -> client, 0..N per request, before the response
  kError = 4,     ///< server -> client, terminates one request with a failure
};

struct Frame {
  FrameKind kind = FrameKind::kRequest;
  std::string payload;  ///< JSON document
};

/// Serialize one frame (header + payload).
std::vector<std::uint8_t> encode_frame(const Frame& frame);

/// Incremental strict decoder. Feed bytes as they arrive; completed frames
/// are appended to `out`. After any error the decoder stays poisoned:
/// feed() keeps returning false and error() keeps its first message.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_payload_bytes = kDefaultMaxPayloadBytes)
      : max_payload_(max_payload_bytes) {}

  /// Returns false on a protocol violation (error() explains).
  bool feed(const std::uint8_t* data, std::size_t size, std::vector<Frame>* out);

  bool poisoned() const { return poisoned_; }
  const std::string& error() const { return error_; }
  /// Bytes buffered toward the next (incomplete) frame.
  std::size_t pending_bytes() const { return buffer_.size(); }

 private:
  bool fail(const std::string& message);

  std::size_t max_payload_ = kDefaultMaxPayloadBytes;
  std::vector<std::uint8_t> buffer_;
  bool poisoned_ = false;
  std::string error_;
};

/// Validate a standalone header. Returns the payload length via
/// `payload_len` on success; on failure returns false and describes the
/// violation. Shared by FrameDecoder and the blocking fd readers.
bool parse_frame_header(const std::uint8_t header[kFrameHeaderBytes],
                        std::size_t max_payload_bytes, FrameKind* kind,
                        std::uint64_t* payload_len, std::uint32_t* payload_crc,
                        std::string* error);

}  // namespace tsteiner::serve
