#include "droute/detailed_route.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "droute/track_assign.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace tsteiner {

DetailedRouteResult detailed_route(const Design& design, const SteinerForest& forest,
                                   const GlobalRouteResult& gr, const DrouteOptions& options) {
  TS_TRACE_SPAN_CAT("droute.detailed_route", "route");
  static obs::Counter& m_runs = obs::metrics().counter("droute.runs");
  m_runs.add();
  DetailedRouteResult result;
  const GridGraph& grid = gr.grid;
  const int nx = grid.nx();
  const int ny = grid.ny();

  // --- track assignment: the real conflict source ---------------------------
  const TrackAssignResult ta = assign_tracks(gr);
  std::vector<double> h_viol(ta.h_row_violations.begin(), ta.h_row_violations.end());
  std::vector<double> v_viol(ta.v_col_violations.begin(), ta.v_col_violations.end());

  // Row utilization (wire gcells per row) bounds how much a neighbor row can
  // absorb during repair.
  std::vector<double> h_used(static_cast<std::size_t>(ny), 0.0);
  std::vector<double> v_used(static_cast<std::size_t>(nx), 0.0);
  for (const WireRun& r : ta.runs) {
    const double len = static_cast<double>(r.hi - r.lo + 1);
    if (r.horizontal) {
      h_used[static_cast<std::size_t>(r.row)] += len;
    } else {
      v_used[static_cast<std::size_t>(r.row)] += len;
    }
  }
  const double h_row_capacity = static_cast<double>(ta.h_tracks) * nx;
  const double v_col_capacity = static_cast<double>(ta.v_tracks) * ny;

  auto total = [](const std::vector<double>& v) {
    double s = 0.0;
    for (double x : v) s += x;
    return s;
  };
  const double initial_conflicts = total(h_viol) + total(v_viol);

  // --- iterative repair: spill violated runs into adjacent rows/columns with
  // spare track capacity; work scales with the number of violated rows.
  double conflicts = initial_conflicts;
  for (int round = 0; round < options.repair_rounds_max && conflicts > 0.5; ++round) {
    ++result.repair_rounds_used;
    auto spill = [&](std::vector<double>& viol, std::vector<double>& used, double capacity,
                     double avg_run_len) {
      const int n = static_cast<int>(viol.size());
      for (int r = 0; r < n; ++r) {
        if (viol[static_cast<std::size_t>(r)] <= 0.0) continue;
        ++result.repair_work;
        for (const int dr : {-1, 1}) {
          const int rr = r + dr;
          if (rr < 0 || rr >= n || viol[static_cast<std::size_t>(r)] <= 0.0) continue;
          const double slack = capacity - used[static_cast<std::size_t>(rr)];
          if (slack <= 0.0) continue;
          const double movable =
              std::min(viol[static_cast<std::size_t>(r)],
                       std::floor(slack / std::max(1.0, avg_run_len)) * 0.5);
          if (movable <= 0.0) continue;
          viol[static_cast<std::size_t>(r)] -= movable;
          used[static_cast<std::size_t>(rr)] += movable * avg_run_len;
          used[static_cast<std::size_t>(r)] -= movable * avg_run_len;
        }
      }
    };
    const double avg_run =
        ta.runs.empty() ? 1.0
                        : (total(h_used) + total(v_used)) / static_cast<double>(ta.runs.size());
    spill(h_viol, h_used, h_row_capacity, avg_run);
    spill(v_viol, v_used, v_col_capacity, avg_run);
    conflicts = total(h_viol) + total(v_viol);
  }

  // --- pin-access checking -------------------------------------------------
  std::vector<int> pins_per_gcell(static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny), 0);
  for (const Pin& p : design.pins()) {
    if (p.net < 0) continue;
    const GCell g = grid.gcell_at(design.pin_position(p.id));
    ++pins_per_gcell[static_cast<std::size_t>(g.y) * static_cast<std::size_t>(nx) +
                     static_cast<std::size_t>(g.x)];
  }
  const double sites_per_gcell = static_cast<double>(grid.gcell_size());
  long long pin_access_viol = 0;
  for (int count : pins_per_gcell) {
    const double limit = options.pin_density_limit_per_site * sites_per_gcell;
    if (static_cast<double>(count) > limit) {
      pin_access_viol += static_cast<long long>(std::ceil(static_cast<double>(count) - limit));
    }
  }

  // --- final metrics --------------------------------------------------------
  result.num_drvs = static_cast<long long>(std::llround(conflicts)) + pin_access_viol / 8;

  long long vias = 0;
  for (const RoutedConnection& conn : gr.connections) {
    vias += 2 + conn.num_bends();  // pin-access vias + one via per bend
  }
  result.num_vias = vias;

  const double n_edges = std::max<double>(1.0, static_cast<double>(gr.connections.size()));
  const double detour =
      options.wl_detour_base + options.wl_detour_per_overflow * (initial_conflicts / n_edges);
  result.wirelength_dbu = gr.wirelength_dbu * detour;
  (void)forest;
  return result;
}

}  // namespace tsteiner
