#include "droute/detailed_route.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <tuple>
#include <vector>

#include "droute/track_assign.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"
#include "util/parallel.hpp"

namespace tsteiner {

long long pin_access_violations(const Design& design, const GridGraph& grid,
                                const DrouteOptions& options) {
  const int nx = grid.nx();
  const int ny = grid.ny();
  std::vector<int> pins_per_gcell(static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny), 0);
  for (const Pin& p : design.pins()) {
    if (p.net < 0) continue;
    const GCell g = grid.gcell_at(design.pin_position(p.id));
    ++pins_per_gcell[static_cast<std::size_t>(g.y) * static_cast<std::size_t>(nx) +
                     static_cast<std::size_t>(g.x)];
  }
  const double sites_per_gcell = static_cast<double>(grid.gcell_size());
  long long pin_access_viol = 0;
  for (int count : pins_per_gcell) {
    const double limit = options.pin_density_limit_per_site * sites_per_gcell;
    if (static_cast<double>(count) > limit) {
      pin_access_viol += static_cast<long long>(std::ceil(static_cast<double>(count) - limit));
    }
  }
  return pin_access_viol;
}

DetailedRouteResult finalize_droute(DrouteRepairInputs in, const DrouteOptions& options) {
  DetailedRouteResult result;

  auto total = [](const std::vector<double>& v) {
    double s = 0.0;
    for (double x : v) s += x;
    return s;
  };
  const double initial_conflicts = total(in.h_viol) + total(in.v_viol);

  // --- iterative repair: spill violated runs into adjacent rows/columns with
  // spare track capacity; work scales with the number of violated rows.
  double conflicts = initial_conflicts;
  for (int round = 0; round < options.repair_rounds_max && conflicts > 0.5; ++round) {
    ++result.repair_rounds_used;
    auto spill = [&](std::vector<double>& viol, std::vector<double>& used, double capacity,
                     double avg_run_len) {
      const int n = static_cast<int>(viol.size());
      for (int r = 0; r < n; ++r) {
        if (viol[static_cast<std::size_t>(r)] <= 0.0) continue;
        ++result.repair_work;
        for (const int dr : {-1, 1}) {
          const int rr = r + dr;
          if (rr < 0 || rr >= n || viol[static_cast<std::size_t>(r)] <= 0.0) continue;
          const double slack = capacity - used[static_cast<std::size_t>(rr)];
          if (slack <= 0.0) continue;
          const double movable =
              std::min(viol[static_cast<std::size_t>(r)],
                       std::floor(slack / std::max(1.0, avg_run_len)) * 0.5);
          if (movable <= 0.0) continue;
          viol[static_cast<std::size_t>(r)] -= movable;
          used[static_cast<std::size_t>(rr)] += movable * avg_run_len;
          used[static_cast<std::size_t>(r)] -= movable * avg_run_len;
        }
      }
    };
    const double avg_run =
        in.num_runs == 0
            ? 1.0
            : (total(in.h_used) + total(in.v_used)) / static_cast<double>(in.num_runs);
    spill(in.h_viol, in.h_used, in.h_row_capacity, avg_run);
    spill(in.v_viol, in.v_used, in.v_col_capacity, avg_run);
    conflicts = total(in.h_viol) + total(in.v_viol);
  }

  // --- final metrics --------------------------------------------------------
  result.num_drvs = static_cast<long long>(std::llround(conflicts)) + in.pin_access_viol / 8;
  result.num_vias = in.vias;
  const double n_edges = std::max<double>(1.0, static_cast<double>(in.num_connections));
  const double detour =
      options.wl_detour_base + options.wl_detour_per_overflow * (initial_conflicts / n_edges);
  result.wirelength_dbu = in.gr_wirelength_dbu * detour;
  return result;
}

namespace {

/// Assemble repair inputs from a full track assignment (shared by the
/// one-shot surrogate and DetailedRouteState::full).
DrouteRepairInputs repair_inputs_from(const TrackAssignResult& ta, const GlobalRouteResult& gr,
                                      long long pin_access_viol) {
  const GridGraph& grid = gr.grid;
  const int nx = grid.nx();
  const int ny = grid.ny();
  DrouteRepairInputs in;
  in.h_viol.assign(ta.h_row_violations.begin(), ta.h_row_violations.end());
  in.v_viol.assign(ta.v_col_violations.begin(), ta.v_col_violations.end());

  // Row utilization (wire gcells per row) bounds how much a neighbor row can
  // absorb during repair.
  in.h_used.assign(static_cast<std::size_t>(ny), 0.0);
  in.v_used.assign(static_cast<std::size_t>(nx), 0.0);
  for (const WireRun& r : ta.runs) {
    const double len = static_cast<double>(r.hi - r.lo + 1);
    if (r.horizontal) {
      in.h_used[static_cast<std::size_t>(r.row)] += len;
    } else {
      in.v_used[static_cast<std::size_t>(r.row)] += len;
    }
  }
  in.h_row_capacity = static_cast<double>(ta.h_tracks) * nx;
  in.v_col_capacity = static_cast<double>(ta.v_tracks) * ny;
  in.num_runs = ta.runs.size();
  in.pin_access_viol = pin_access_viol;

  long long vias = 0;
  for (const RoutedConnection& conn : gr.connections) {
    vias += 2 + conn.num_bends();  // pin-access vias + one via per bend
  }
  in.vias = vias;
  in.gr_wirelength_dbu = gr.wirelength_dbu;
  in.num_connections = gr.connections.size();
  return in;
}

}  // namespace

DetailedRouteResult detailed_route(const Design& design, const SteinerForest& forest,
                                   const GlobalRouteResult& gr, const DrouteOptions& options) {
  TS_TRACE_SPAN_CAT("droute.detailed_route", "route");
  static obs::Counter& m_runs = obs::metrics().counter("droute.runs");
  m_runs.add();

  // --- track assignment: the real conflict source ---------------------------
  const TrackAssignResult ta = assign_tracks(gr);
  const long long pin_access = pin_access_violations(design, gr.grid, options);
  (void)forest;
  return finalize_droute(repair_inputs_from(ta, gr, pin_access), options);
}

// --- incremental state -------------------------------------------------------

DetailedRouteState::DetailedRouteState(const Design* design, const DrouteOptions& options)
    : design_(design), options_(options) {}

void DetailedRouteState::rebuild_from(const GlobalRouteResult& gr) {
  const GridGraph& grid = gr.grid;
  const std::size_t n = gr.connections.size();
  const TrackAssignResult ta = assign_tracks(gr);

  conn_runs_.assign(n, {});
  conn_vias_.assign(n, 0);
  h_rows_.assign(static_cast<std::size_t>(grid.ny()), {});
  v_cols_.assign(static_cast<std::size_t>(grid.nx()), {});
  std::vector<int> seq_of(n, 0);
  for (const WireRun& r : ta.runs) {
    const int seq = seq_of[static_cast<std::size_t>(r.connection)]++;
    conn_runs_[static_cast<std::size_t>(r.connection)].push_back(
        StoredRun{r.horizontal, r.row, seq, r.lo, r.hi});
    auto& list = r.horizontal ? h_rows_[static_cast<std::size_t>(r.row)]
                              : v_cols_[static_cast<std::size_t>(r.row)];
    list.push_back(RowRef{r.connection, seq, r.lo, r.hi});
  }
  // ta.runs ascends by (connection, seq); stable-sorting each row by `lo`
  // therefore lands on (lo, conn, seq) — the exact sequence color_row_runs'
  // stable sort feeds the greedy, so incremental recolors can skip sorting.
  const auto by_lo = [](const RowRef& a, const RowRef& b) { return a.lo < b.lo; };
  for (auto& list : h_rows_) std::stable_sort(list.begin(), list.end(), by_lo);
  for (auto& list : v_cols_) std::stable_sort(list.begin(), list.end(), by_lo);
  h_viol_ = ta.h_row_violations;
  v_viol_ = ta.v_col_violations;
  h_used_.assign(static_cast<std::size_t>(grid.ny()), 0.0);
  v_used_.assign(static_cast<std::size_t>(grid.nx()), 0.0);
  for (const WireRun& r : ta.runs) {
    const double len = static_cast<double>(r.hi - r.lo + 1);
    if (r.horizontal) {
      h_used_[static_cast<std::size_t>(r.row)] += len;
    } else {
      v_used_[static_cast<std::size_t>(r.row)] += len;
    }
  }
  num_runs_ = ta.runs.size();
  h_tracks_ = ta.h_tracks;
  v_tracks_ = ta.v_tracks;
  total_vias_ = 0;
  for (std::size_t c = 0; c < n; ++c) {
    conn_vias_[c] = 2 + gr.connections[c].num_bends();
    total_vias_ += conn_vias_[c];
  }
  pin_access_viol_ = pin_access_violations(*design_, grid, options_);
  built_ = true;
}

long long DetailedRouteState::recolor(const std::vector<RowRef>& list, int tracks) const {
  // The maintained (lo, conn, seq) order is exactly what color_row_runs'
  // stable sort would produce from the full construction order, so the
  // (order-sensitive) greedy runs directly on the list — no materialization,
  // no sort — and reproduces the full violation count bit for bit.
  std::priority_queue<int, std::vector<int>, std::greater<>> busy;  // occupied his
  int free_tracks = tracks;
  long long violations = 0;
  for (const RowRef& run : list) {
    while (!busy.empty() && busy.top() < run.lo) {
      ++free_tracks;
      busy.pop();
    }
    if (free_tracks == 0) {
      ++violations;
      continue;
    }
    --free_tracks;
    busy.push(run.hi);
  }
  return violations;
}

DetailedRouteResult DetailedRouteState::finalize(const GlobalRouteResult& gr) const {
  DrouteRepairInputs in;
  in.h_viol.assign(h_viol_.begin(), h_viol_.end());
  in.v_viol.assign(v_viol_.begin(), v_viol_.end());
  in.h_used = h_used_;
  in.v_used = v_used_;
  in.h_row_capacity = static_cast<double>(h_tracks_) * gr.grid.nx();
  in.v_col_capacity = static_cast<double>(v_tracks_) * gr.grid.ny();
  in.num_runs = num_runs_;
  in.pin_access_viol = pin_access_viol_;
  in.vias = total_vias_;
  in.gr_wirelength_dbu = gr.wirelength_dbu;
  in.num_connections = gr.connections.size();
  return finalize_droute(std::move(in), options_);
}

const DetailedRouteResult& DetailedRouteState::full(const GlobalRouteResult& gr) {
  TS_TRACE_SPAN_CAT("droute.detailed_route", "route");
  static obs::Counter& m_runs = obs::metrics().counter("droute.runs");
  m_runs.add();
  rebuild_from(gr);
  last_recolored_ = static_cast<long long>(h_rows_.size() + v_cols_.size());
  result_ = finalize(gr);
  return result_;
}

const DetailedRouteResult& DetailedRouteState::update(const GlobalRouteResult& gr,
                                                      const std::vector<int>& changed_conns) {
  TS_TRACE_SPAN_CAT("droute.incremental_update", "route");
  static obs::Counter& m_updates = obs::metrics().counter("droute.incremental_updates");
  m_updates.add();

  // Track counts derive from the grid capacities; if they moved (possible
  // only with uncalibrated capacities) every row's coloring changes.
  const int h_tracks = std::max(1, static_cast<int>(gr.grid.h_capacity()));
  const int v_tracks = std::max(1, static_cast<int>(gr.grid.v_capacity()));
  if (!built_ || gr.connections.size() != conn_runs_.size() || h_tracks != h_tracks_ ||
      v_tracks != v_tracks_) {
    return full(gr);
  }

  std::vector<char> h_dirty(h_rows_.size(), 0);
  std::vector<char> v_dirty(v_cols_.size(), 0);
  std::vector<WireRun> scratch;
  for (int c : changed_conns) {
    const auto ci = static_cast<std::size_t>(c);
    // Remove the connection's old runs from their row lists.
    for (const StoredRun& r : conn_runs_[ci]) {
      auto& list = r.horizontal ? h_rows_[static_cast<std::size_t>(r.row)]
                                : v_cols_[static_cast<std::size_t>(r.row)];
      const auto it = std::lower_bound(
          list.begin(), list.end(), std::tuple<int, int, int>{r.lo, c, r.seq},
          [](const RowRef& a, const std::tuple<int, int, int>& key) {
            return std::tuple<int, int, int>{a.lo, a.conn, a.seq} < key;
          });
      list.erase(it);
      (r.horizontal ? h_used_ : v_used_)[static_cast<std::size_t>(r.row)] -=
          static_cast<double>(r.hi - r.lo + 1);
      (r.horizontal ? h_dirty : v_dirty)[static_cast<std::size_t>(r.row)] = 1;
      --num_runs_;
    }
    total_vias_ -= conn_vias_[ci];

    // Decompose the new path and splice its runs in, preserving the
    // (lo, connection, seq) order the full construction's stable sort yields.
    scratch.clear();
    decompose_path_runs(gr.connections[ci].path, c, scratch);
    conn_runs_[ci].clear();
    for (std::size_t s = 0; s < scratch.size(); ++s) {
      const WireRun& r = scratch[s];
      const int seq = static_cast<int>(s);
      conn_runs_[ci].push_back(StoredRun{r.horizontal, r.row, seq, r.lo, r.hi});
      auto& list = r.horizontal ? h_rows_[static_cast<std::size_t>(r.row)]
                                : v_cols_[static_cast<std::size_t>(r.row)];
      const auto it = std::lower_bound(
          list.begin(), list.end(), std::tuple<int, int, int>{r.lo, c, seq},
          [](const RowRef& a, const std::tuple<int, int, int>& key) {
            return std::tuple<int, int, int>{a.lo, a.conn, a.seq} < key;
          });
      list.insert(it, RowRef{c, seq, r.lo, r.hi});
      (r.horizontal ? h_used_ : v_used_)[static_cast<std::size_t>(r.row)] +=
          static_cast<double>(r.hi - r.lo + 1);
      (r.horizontal ? h_dirty : v_dirty)[static_cast<std::size_t>(r.row)] = 1;
      ++num_runs_;
    }
    conn_vias_[ci] = 2 + gr.connections[ci].num_bends();
    total_vias_ += conn_vias_[ci];
  }

  // Recolor dirty rows in parallel: rows are independent (recolor reads one
  // row list, the result lands in that row's violation slot), so the
  // deterministic pool reproduces the serial sweep bit for bit.
  std::vector<int> dirty_h, dirty_v;
  for (std::size_t y = 0; y < h_rows_.size(); ++y) {
    if (h_dirty[y]) dirty_h.push_back(static_cast<int>(y));
  }
  for (std::size_t x = 0; x < v_cols_.size(); ++x) {
    if (v_dirty[x]) dirty_v.push_back(static_cast<int>(x));
  }
  parallel_for(0, dirty_h.size(), 4, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      const int y = dirty_h[i];
      h_viol_[static_cast<std::size_t>(y)] =
          static_cast<int>(recolor(h_rows_[static_cast<std::size_t>(y)], h_tracks_));
    }
  });
  parallel_for(0, dirty_v.size(), 4, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      const int x = dirty_v[i];
      v_viol_[static_cast<std::size_t>(x)] =
          static_cast<int>(recolor(v_cols_[static_cast<std::size_t>(x)], v_tracks_));
    }
  });
  last_recolored_ = static_cast<long long>(dirty_h.size() + dirty_v.size());
  result_ = finalize(gr);
  TS_DEBUG("DR update: %zu conns respliced, %lld rows recolored", changed_conns.size(),
           last_recolored_);
  return result_;
}

}  // namespace tsteiner
