#include "droute/track_assign.hpp"

#include <algorithm>
#include <queue>

namespace tsteiner {

/// Greedy interval partitioning of one row's runs over k tracks; returns
/// the number of uncolorable runs and writes track ids.
long long color_row_runs(std::vector<WireRun*>& row_runs, int k) {
  // Stable: runs tied on `lo` keep their presented (connection, seq) order,
  // so the greedy outcome is a well-defined function of the run multiset +
  // presentation order. Incremental recoloring exploits this by maintaining
  // each row pre-sorted by (lo, connection, seq) and skipping the sort.
  std::stable_sort(row_runs.begin(), row_runs.end(),
                   [](const WireRun* a, const WireRun* b) { return a->lo < b->lo; });
  // min-heap of (last occupied hi, track id)
  using Slot = std::pair<int, int>;
  std::priority_queue<Slot, std::vector<Slot>, std::greater<>> busy;
  std::vector<int> free_tracks;
  for (int t = k - 1; t >= 0; --t) free_tracks.push_back(t);
  long long violations = 0;
  for (WireRun* run : row_runs) {
    while (!busy.empty() && busy.top().first < run->lo) {
      free_tracks.push_back(busy.top().second);
      busy.pop();
    }
    if (free_tracks.empty()) {
      run->track = -1;
      ++violations;
      continue;
    }
    run->track = free_tracks.back();
    free_tracks.pop_back();
    busy.push({run->hi, run->track});
  }
  return violations;
}

void decompose_path_runs(const std::vector<GCell>& path, int connection,
                         std::vector<WireRun>& out) {
  std::size_t i = 1;
  while (i < path.size()) {
    const bool horiz = path[i].y == path[i - 1].y;
    std::size_t j = i;
    while (j + 1 < path.size() &&
           ((path[j + 1].y == path[j].y) == horiz) &&
           ((path[j + 1].x == path[j].x) != horiz)) {
      ++j;
    }
    WireRun run;
    run.connection = connection;
    run.horizontal = horiz;
    if (horiz) {
      run.row = path[i - 1].y;
      run.lo = std::min(path[i - 1].x, path[j].x);
      run.hi = std::max(path[i - 1].x, path[j].x);
    } else {
      run.row = path[i - 1].x;
      run.lo = std::min(path[i - 1].y, path[j].y);
      run.hi = std::max(path[i - 1].y, path[j].y);
    }
    out.push_back(run);
    i = j + 1;
  }
}

TrackAssignResult assign_tracks(const GlobalRouteResult& gr, int tracks_per_row) {
  TrackAssignResult result;
  const GridGraph& grid = gr.grid;
  if (tracks_per_row > 0) {
    result.h_tracks = tracks_per_row;
    result.v_tracks = tracks_per_row;
  } else {
    result.h_tracks = std::max(1, static_cast<int>(grid.h_capacity()));
    result.v_tracks = std::max(1, static_cast<int>(grid.v_capacity()));
  }
  result.h_row_violations.assign(static_cast<std::size_t>(grid.ny()), 0);
  result.v_col_violations.assign(static_cast<std::size_t>(grid.nx()), 0);

  // Decompose paths into maximal straight runs.
  for (std::size_t c = 0; c < gr.connections.size(); ++c) {
    decompose_path_runs(gr.connections[c].path, static_cast<int>(c), result.runs);
  }

  // Group and color per row / column.
  std::vector<std::vector<WireRun*>> h_rows(static_cast<std::size_t>(grid.ny()));
  std::vector<std::vector<WireRun*>> v_cols(static_cast<std::size_t>(grid.nx()));
  for (WireRun& r : result.runs) {
    if (r.horizontal) {
      h_rows[static_cast<std::size_t>(r.row)].push_back(&r);
    } else {
      v_cols[static_cast<std::size_t>(r.row)].push_back(&r);
    }
  }
  for (int y = 0; y < grid.ny(); ++y) {
    const long long v = color_row_runs(h_rows[static_cast<std::size_t>(y)], result.h_tracks);
    result.h_row_violations[static_cast<std::size_t>(y)] = static_cast<int>(v);
    result.num_violations += v;
  }
  for (int x = 0; x < grid.nx(); ++x) {
    const long long v = color_row_runs(v_cols[static_cast<std::size_t>(x)], result.v_tracks);
    result.v_col_violations[static_cast<std::size_t>(x)] = static_cast<int>(v);
    result.num_violations += v;
  }
  return result;
}

}  // namespace tsteiner
