// Detailed-routing surrogate (TritonRoute substitute).
//
// Full detailed routing is far outside this reproduction's scope; what the
// paper needs from TritonRoute is (a) routed wirelength, (b) via counts,
// (c) design-rule-violation counts, and (d) a runtime that shrinks when the
// global-routing solution improves (Table IV shows DR 6.6% faster under
// TSteiner). This surrogate performs real work with those properties:
// track-assignment conflict detection on every gcell edge, pin-access
// checking per gcell, and an iterative local-diffusion repair loop whose
// work is proportional to the number of outstanding violations.
#pragma once

#include <vector>

#include "route/global_router.hpp"

namespace tsteiner {

struct DrouteOptions {
  /// Detailed routes detour slightly versus the GR guide.
  double wl_detour_base = 1.02;
  /// Extra detour per unit of average residual congestion overflow.
  double wl_detour_per_overflow = 0.004;
  int repair_rounds_max = 24;
  /// Pins per gcell above which pin-access violations appear.
  double pin_density_limit_per_site = 0.9;
};

struct DetailedRouteResult {
  double wirelength_dbu = 0.0;
  long long num_vias = 0;
  long long num_drvs = 0;
  int repair_rounds_used = 0;
  long long repair_work = 0;  ///< abstract work units (drives runtime)
};

DetailedRouteResult detailed_route(const Design& design, const SteinerForest& forest,
                                   const GlobalRouteResult& gr,
                                   const DrouteOptions& options = {});

/// Pin-access violation count: a pure function of the design's pin placement
/// and the gcell geometry (routes never move pins), so incremental sign-off
/// computes it once per design/grid and reuses it.
long long pin_access_violations(const Design& design, const GridGraph& grid,
                                const DrouteOptions& options);

/// Everything the repair/metrics stage consumes. Both the one-shot surrogate
/// and DetailedRouteState feed this into `finalize_droute`, so the two paths
/// run the identical float-op sequence on identical inputs — the basis of
/// the incremental path's bit-exactness.
struct DrouteRepairInputs {
  std::vector<double> h_viol;  ///< per-row track violations (integer-valued)
  std::vector<double> v_viol;  ///< per-column track violations
  std::vector<double> h_used;  ///< wire gcells per row (integer-valued)
  std::vector<double> v_used;  ///< wire gcells per column
  double h_row_capacity = 0.0;
  double v_col_capacity = 0.0;
  std::size_t num_runs = 0;
  long long pin_access_viol = 0;
  long long vias = 0;
  double gr_wirelength_dbu = 0.0;
  std::size_t num_connections = 0;
};

/// Repair loop + final metrics (mutates its by-value inputs).
DetailedRouteResult finalize_droute(DrouteRepairInputs in, const DrouteOptions& options);

/// Incremental detailed-route surrogate for repeated sign-off on a design
/// whose routes change a few connections at a time.
///
/// `full` runs the surrogate and caches per-connection wire runs, per-row
/// run lists, utilization sums and via counts. `update` replaces the runs of
/// just the changed connections, recolors only the touched rows/columns, and
/// re-runs the (cheap) repair/metrics stage on the maintained aggregates.
/// Results are bit-identical to `detailed_route` on the same inputs: row run
/// lists are maintained in the exact (lo, connection, sequence) order full
/// assignment's stable sort produces — so recoloring a row is a single
/// sort-free greedy sweep over the maintained list — utilization sums are
/// integer-valued (order-independent), and the finalize stage is shared
/// code.
class DetailedRouteState {
 public:
  DetailedRouteState(const Design* design, const DrouteOptions& options);

  const DetailedRouteResult& full(const GlobalRouteResult& gr);
  /// `changed_conns`: ascending indices of connections whose path changed
  /// since the previous full/update. Requires a prior `full`.
  const DetailedRouteResult& update(const GlobalRouteResult& gr,
                                    const std::vector<int>& changed_conns);
  const DetailedRouteResult& result() const { return result_; }
  /// Rows + columns recolored by the last update (instrumentation).
  long long last_recolored_rows() const { return last_recolored_; }

 private:
  struct StoredRun {
    bool horizontal = true;
    int row = 0;
    int seq = 0;  ///< run index within its connection's path decomposition
    int lo = 0;
    int hi = 0;
  };
  struct RowRef {
    int conn = -1;
    int seq = 0;
    int lo = 0;
    int hi = 0;
  };

  void rebuild_from(const GlobalRouteResult& gr);
  /// Violation count of one row list already in (lo, conn, seq) order —
  /// the exact sequence color_row_runs' stable sort would feed the greedy.
  long long recolor(const std::vector<RowRef>& list, int tracks) const;
  DetailedRouteResult finalize(const GlobalRouteResult& gr) const;

  const Design* design_ = nullptr;
  DrouteOptions options_;
  DetailedRouteResult result_;
  std::vector<std::vector<StoredRun>> conn_runs_;
  std::vector<long long> conn_vias_;
  std::vector<std::vector<RowRef>> h_rows_;  ///< per row, (lo, conn, seq)-ordered
  std::vector<std::vector<RowRef>> v_cols_;
  std::vector<int> h_viol_;
  std::vector<int> v_viol_;
  std::vector<double> h_used_;
  std::vector<double> v_used_;
  std::size_t num_runs_ = 0;
  long long total_vias_ = 0;
  int h_tracks_ = 0;
  int v_tracks_ = 0;
  long long pin_access_viol_ = 0;
  long long last_recolored_ = 0;
  bool built_ = false;
};

}  // namespace tsteiner
