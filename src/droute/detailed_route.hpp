// Detailed-routing surrogate (TritonRoute substitute).
//
// Full detailed routing is far outside this reproduction's scope; what the
// paper needs from TritonRoute is (a) routed wirelength, (b) via counts,
// (c) design-rule-violation counts, and (d) a runtime that shrinks when the
// global-routing solution improves (Table IV shows DR 6.6% faster under
// TSteiner). This surrogate performs real work with those properties:
// track-assignment conflict detection on every gcell edge, pin-access
// checking per gcell, and an iterative local-diffusion repair loop whose
// work is proportional to the number of outstanding violations.
#pragma once

#include "route/global_router.hpp"

namespace tsteiner {

struct DrouteOptions {
  /// Detailed routes detour slightly versus the GR guide.
  double wl_detour_base = 1.02;
  /// Extra detour per unit of average residual congestion overflow.
  double wl_detour_per_overflow = 0.004;
  int repair_rounds_max = 24;
  /// Pins per gcell above which pin-access violations appear.
  double pin_density_limit_per_site = 0.9;
};

struct DetailedRouteResult {
  double wirelength_dbu = 0.0;
  long long num_vias = 0;
  long long num_drvs = 0;
  int repair_rounds_used = 0;
  long long repair_work = 0;  ///< abstract work units (drives runtime)
};

DetailedRouteResult detailed_route(const Design& design, const SteinerForest& forest,
                                   const GlobalRouteResult& gr,
                                   const DrouteOptions& options = {});

}  // namespace tsteiner
