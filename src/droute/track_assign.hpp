// Track assignment: distribute the global-route wire runs within each
// routing row/column onto discrete tracks (the paper's refs [8], [9] operate
// at this stage).
//
// Every maximal straight run of a routed connection becomes an interval on
// its row (horizontal) or column (vertical). Within a row, overlapping
// intervals need distinct tracks; with `k` tracks available the greedy
// interval-partitioning algorithm (sort by left end, reuse the earliest-
// finishing track) is optimal. Runs that cannot be colored are track
// violations — the detailed-routing surrogate's primary DRV source.
#pragma once

#include <vector>

#include "route/global_router.hpp"

namespace tsteiner {

struct WireRun {
  int connection = -1;
  bool horizontal = true;
  int row = 0;  ///< gcell y for horizontal runs, x for vertical
  int lo = 0;   ///< inclusive gcell range along the run
  int hi = 0;
  int track = -1;  ///< assigned track, or -1 if the run overflowed
};

struct TrackAssignResult {
  std::vector<WireRun> runs;
  long long num_violations = 0;  ///< runs without a legal track
  /// Violations per row/column, for the repair loop's spill heuristic.
  std::vector<int> h_row_violations;  ///< size ny
  std::vector<int> v_col_violations;  ///< size nx
  int h_tracks = 0;  ///< tracks available per horizontal row
  int v_tracks = 0;  ///< tracks available per vertical column
};

/// `tracks_per_row` <= 0 derives per-direction track counts from the grid's
/// H/V capacities; > 0 forces the same count for both directions.
TrackAssignResult assign_tracks(const GlobalRouteResult& gr, int tracks_per_row = 0);

/// Greedy interval partitioning of one row's runs over `k` tracks
/// (stable-sorts `row_runs` by left end in place); returns the number of
/// uncolorable runs and writes track ids. The violation count can depend on
/// the order of equal-`lo` runs; the stable sort pins it to the presented
/// order, so the result is a well-defined function of (run multiset,
/// presentation order) that incremental recoloring reproduces by maintaining
/// rows pre-sorted in (lo, connection, run-sequence) order.
long long color_row_runs(std::vector<WireRun*>& row_runs, int k);

/// Decompose one connection's gcell path into maximal straight runs — the
/// exact decomposition assign_tracks applies to every connection (shared so
/// incremental recoloring reproduces it run for run).
void decompose_path_runs(const std::vector<GCell>& path, int connection,
                         std::vector<WireRun>& out);

}  // namespace tsteiner
