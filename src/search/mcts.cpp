#include "search/mcts.hpp"

#include <cmath>
#include <memory>
#include <vector>

namespace tsteiner::search {

namespace {

std::uint64_t fnv1a_step(std::uint64_t h, std::uint64_t v) {
  h ^= v;
  return h * 1099511628211ull;
}

std::uint64_t edit_fingerprint(std::uint64_t h, const TopologyEdit& e) {
  h = fnv1a_step(h, static_cast<std::uint64_t>(e.kind));
  h = fnv1a_step(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(e.a)));
  h = fnv1a_step(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(e.b)));
  h = fnv1a_step(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(e.c)));
  h = fnv1a_step(h, static_cast<std::uint64_t>(std::llround(e.pos.x)));
  h = fnv1a_step(h, static_cast<std::uint64_t>(std::llround(e.pos.y)));
  return h;
}

struct Node {
  SteinerTree tree;
  std::vector<TopologyEdit> path;
  std::uint64_t fingerprint = 0;   ///< fnv1a over the edit path (rng key)
  bool shape_changed = false;
  double value = 0.0;              ///< scorer output for `tree`
  int visits = 0;
  double total = 0.0;              ///< backpropagated sum of leaf values
  std::vector<TopologyEdit> candidates;  ///< untried proposals, draw order
  std::size_t next_candidate = 0;
  std::vector<int> children;       ///< indices into the node arena
  bool enumerated = false;
};

}  // namespace

MctsResult search_tree_edits(const SteinerTree& tree, const RectI& die, std::uint64_t round,
                             std::uint64_t net, const TopoScoreFn& score,
                             const MctsOptions& options) {
  MctsResult result;
  result.best_tree = tree;

  std::vector<Node> arena;
  arena.reserve(static_cast<std::size_t>(options.rollouts) + 1);
  arena.push_back(Node{});
  arena[0].tree = tree;
  arena[0].fingerprint = fnv1a_step(14695981039346656037ull, 0);

  // Per-node proposal substream: independent of visitation order, keyed by
  // the node's position in edit space, never by when it was expanded.
  const auto node_rng = [&](const Node& node) {
    return Rng(Rng::mix(Rng::mix(options.seed, round), Rng::mix(net, node.fingerprint)));
  };
  const auto enumerate = [&](Node& node) {
    if (node.enumerated) return;
    node.enumerated = true;
    if (static_cast<int>(node.path.size()) >= options.max_depth) return;
    Rng rng = node_rng(node);
    node.candidates = enumerate_edits(node.tree, die, rng, options.edits);
    result.stats.proposed += static_cast<std::int64_t>(node.candidates.size());
  };

  for (int sim = 0; sim < options.rollouts; ++sim) {
    // Selection: walk down fully-expanded nodes by UCT (ties -> lower child
    // index) until a node with an untried candidate or a terminal.
    std::vector<int> walk{0};
    for (;;) {
      Node& node = arena[static_cast<std::size_t>(walk.back())];
      enumerate(node);
      if (node.next_candidate < node.candidates.size()) break;  // expandable
      if (node.children.empty()) break;                         // terminal leaf
      int pick = node.children[0];
      double pick_uct = -1.0;
      for (int c : node.children) {
        const Node& child = arena[static_cast<std::size_t>(c)];
        const double mean = child.total / static_cast<double>(child.visits);
        const double uct = mean + options.exploration *
                                      std::sqrt(std::log(static_cast<double>(node.visits) + 1.0) /
                                                static_cast<double>(child.visits));
        if (uct > pick_uct) {
          pick_uct = uct;
          pick = c;
        }
      }
      walk.push_back(pick);
    }

    // Expansion: try untried proposals in draw order until one passes the
    // invariant gate; gate rejections are counted, not scored.
    double leaf_value = arena[static_cast<std::size_t>(walk.back())].value;
    {
      Node& node = arena[static_cast<std::size_t>(walk.back())];
      while (node.next_candidate < node.candidates.size()) {
        const TopologyEdit edit = node.candidates[node.next_candidate++];
        std::optional<SteinerTree> edited = apply_edit(node.tree, die, edit, options.edits);
        if (!edited.has_value()) {
          ++result.stats.rejected;
          continue;
        }
        Node child;
        child.tree = std::move(*edited);
        child.path = node.path;
        child.path.push_back(edit);
        child.fingerprint = edit_fingerprint(node.fingerprint, edit);
        child.shape_changed = node.shape_changed || !shape_preserving(edit);
        child.value = score(child.tree, child.shape_changed);
        ++result.stats.evaluated;
        const int child_index = static_cast<int>(arena.size());
        // NOTE: `node` dangles after push_back; re-resolve through the arena.
        const int parent_index = walk.back();
        arena.push_back(std::move(child));
        arena[static_cast<std::size_t>(parent_index)].children.push_back(child_index);
        walk.push_back(child_index);
        leaf_value = arena[static_cast<std::size_t>(child_index)].value;
        if (leaf_value > result.best_score) {
          result.best_score = leaf_value;
          result.best_path = arena[static_cast<std::size_t>(child_index)].path;
          result.best_tree = arena[static_cast<std::size_t>(child_index)].tree;
        }
        break;
      }
    }

    for (int idx : walk) {
      Node& node = arena[static_cast<std::size_t>(idx)];
      ++node.visits;
      node.total += leaf_value;
    }
  }
  return result;
}

}  // namespace tsteiner::search
