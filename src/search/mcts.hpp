// Deterministic MCTS over discrete topology edits of one Steiner tree.
//
// A combopt-zero-style search (ROADMAP item 4): tree-search nodes are edit
// sequences, actions are the TopologyEdit proposals of enumerate_edits, and
// the leaf value is a caller-supplied score (the refine driver plugs in the
// retained-autodiff penalty replay). The scorer is exact and deterministic,
// so the search is a UCT-guided enumeration rather than a noisy-rollout
// estimator: the result is the best-scoring edit sequence visited.
//
// Determinism contract: every random draw comes from a private Rng seeded by
// Rng::mix over (seed, round, net, path-fingerprint) — per search-node
// substreams that do not depend on visitation order, pool width, or any
// global state. Identical inputs produce bit-identical results at any
// thread-pool width and across reruns; ties in selection and best-tracking
// break toward the lower child index / earlier visit.
#pragma once

#include <cstdint>
#include <functional>

#include "search/topo_edits.hpp"

namespace tsteiner::search {

struct MctsOptions {
  int rollouts = 12;        ///< simulations (leaf evaluations) per search
  int max_depth = 2;        ///< longest edit sequence explored
  double exploration = 0.7; ///< UCT constant
  std::uint64_t seed = 0;   ///< mixed with (round, net, path) per node
  EditOptions edits;        ///< proposal enumeration knobs
};

struct MctsStats {
  std::int64_t proposed = 0;   ///< edits enumerated across all nodes
  std::int64_t rejected = 0;   ///< proposals the invariant gate refused
  std::int64_t evaluated = 0;  ///< scorer calls (expanded children)
};

/// Leaf value of a candidate tree; higher is better, the unedited tree
/// scores 0 by convention. `shape_changed` is false only for edit paths the
/// retained tape can replay without a rebuild (all-reshift sequences).
using TopoScoreFn = std::function<double(const SteinerTree& candidate, bool shape_changed)>;

struct MctsResult {
  /// Best strictly-positive-scoring edit sequence; empty = keep the input.
  std::vector<TopologyEdit> best_path;
  SteinerTree best_tree;
  double best_score = 0.0;
  MctsStats stats;
};

MctsResult search_tree_edits(const SteinerTree& tree, const RectI& die, std::uint64_t round,
                             std::uint64_t net, const TopoScoreFn& score,
                             const MctsOptions& options);

}  // namespace tsteiner::search
