#include "search/topo_edits.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "steiner/rsmt.hpp"

namespace tsteiner::search {

namespace {

std::vector<int> node_degrees(const SteinerTree& tree) {
  std::vector<int> degree(tree.nodes.size(), 0);
  for (const SteinerEdge& e : tree.edges) {
    ++degree[static_cast<std::size_t>(e.a)];
    ++degree[static_cast<std::size_t>(e.b)];
  }
  return degree;
}

std::vector<int> neighbors_of(const SteinerTree& tree, int node) {
  std::vector<int> out;
  for (const SteinerEdge& e : tree.edges) {
    if (e.a == node) out.push_back(e.b);
    if (e.b == node) out.push_back(e.a);
  }
  return out;
}

/// Reachability from `start` with edge index `skip` cut.
std::vector<char> component_of(const SteinerTree& tree, int start, int skip) {
  std::vector<std::vector<int>> adj(tree.nodes.size());
  for (std::size_t i = 0; i < tree.edges.size(); ++i) {
    if (static_cast<int>(i) == skip) continue;
    adj[static_cast<std::size_t>(tree.edges[i].a)].push_back(tree.edges[i].b);
    adj[static_cast<std::size_t>(tree.edges[i].b)].push_back(tree.edges[i].a);
  }
  std::vector<char> seen(tree.nodes.size(), 0);
  std::vector<int> stack{start};
  seen[static_cast<std::size_t>(start)] = 1;
  while (!stack.empty()) {
    const int v = stack.back();
    stack.pop_back();
    for (int w : adj[static_cast<std::size_t>(v)]) {
      if (seen[static_cast<std::size_t>(w)]) continue;
      seen[static_cast<std::size_t>(w)] = 1;
      stack.push_back(w);
    }
  }
  return seen;
}

int find_edge(const SteinerTree& tree, int a, int b) {
  for (std::size_t i = 0; i < tree.edges.size(); ++i) {
    const SteinerEdge& e = tree.edges[i];
    if ((e.a == a && e.b == b) || (e.a == b && e.b == a)) return static_cast<int>(i);
  }
  return -1;
}

double median3(double a, double b, double c) {
  return std::max(std::min(a, b), std::min(std::max(a, b), c));
}

bool integral(const PointF& p) {
  return p.x == std::floor(p.x) && p.y == std::floor(p.y);
}

std::optional<SteinerTree> reject(std::string why, std::string* reason) {
  if (reason != nullptr) *reason = std::move(why);
  return std::nullopt;
}

}  // namespace

const char* edit_kind_name(EditKind kind) {
  switch (kind) {
    case EditKind::kInsert: return "insert";
    case EditKind::kDelete: return "delete";
    case EditKind::kReshift: return "reshift";
    case EditKind::kSwap: return "swap";
  }
  return "?";
}

std::string validate_edited_tree(const SteinerTree& reference, const SteinerTree& edited,
                                 const RectI& die) {
  if (edited.net != reference.net) return "net id changed";
  if (!edited.is_valid_tree()) return "not a connected spanning tree rooted at a driver pin";
  // Pin preservation: the edit may renumber nodes but never add, drop, or
  // re-home a pin. Compare the sorted pin-id multisets and the driver pin.
  std::vector<int> ref_pins, ed_pins;
  for (const SteinerNode& n : reference.nodes) {
    if (!n.is_steiner()) ref_pins.push_back(n.pin);
  }
  for (const SteinerNode& n : edited.nodes) {
    if (!n.is_steiner()) ed_pins.push_back(n.pin);
  }
  std::sort(ref_pins.begin(), ref_pins.end());
  std::sort(ed_pins.begin(), ed_pins.end());
  if (ref_pins != ed_pins) return "pin set changed";
  const int ref_driver = reference.nodes[static_cast<std::size_t>(reference.driver_node)].pin;
  if (edited.nodes[static_cast<std::size_t>(edited.driver_node)].pin != ref_driver) {
    return "driver pin changed";
  }
  // Pin positions are placement facts the edit must not touch.
  for (const SteinerNode& n : edited.nodes) {
    if (n.is_steiner()) continue;
    bool found = false;
    for (const SteinerNode& r : reference.nodes) {
      if (r.pin == n.pin && r.pos.x == n.pos.x && r.pos.y == n.pos.y) {
        found = true;
        break;
      }
    }
    if (!found) return "pin position changed";
  }
  const std::vector<int> degree = node_degrees(edited);
  for (std::size_t i = 0; i < edited.nodes.size(); ++i) {
    const SteinerNode& n = edited.nodes[i];
    if (n.is_steiner() && degree[i] < 3) return "steiner node with degree < 3";
    if (!integral(n.pos)) return "non-integral coordinate";
    const PointI p{static_cast<std::int64_t>(std::llround(n.pos.x)),
                   static_cast<std::int64_t>(std::llround(n.pos.y))};
    if (!die.contains(p)) return "node outside the die";
  }
  return {};
}

bool shape_preserving(const TopologyEdit& edit) { return edit.kind == EditKind::kReshift; }

std::optional<SteinerTree> apply_edit(const SteinerTree& tree, const RectI& die,
                                      const TopologyEdit& edit, const EditOptions& options,
                                      std::string* reason) {
  const int n = static_cast<int>(tree.nodes.size());
  if (edit.a < 0 || edit.a >= n) return reject("operand a out of range", reason);

  SteinerTree edited = tree;
  switch (edit.kind) {
    case EditKind::kReshift: {
      if (!tree.nodes[static_cast<std::size_t>(edit.a)].is_steiner()) {
        return reject("reshift target is a pin", reason);
      }
      edited.nodes[static_cast<std::size_t>(edit.a)].pos = edit.pos;
      break;
    }
    case EditKind::kInsert: {
      if (edit.b < 0 || edit.b >= n || edit.c < 0 || edit.c >= n || edit.b == edit.c) {
        return reject("insert neighbors out of range", reason);
      }
      const int eab = find_edge(tree, edit.a, edit.b);
      const int eac = find_edge(tree, edit.a, edit.c);
      if (eab < 0 || eac < 0) return reject("insert operands are not a star", reason);
      // Drop the two star edges (higher index first), join through the new node.
      edited.edges.erase(edited.edges.begin() + std::max(eab, eac));
      edited.edges.erase(edited.edges.begin() + std::min(eab, eac));
      const int s = static_cast<int>(edited.nodes.size());
      edited.nodes.push_back({edit.pos, -1});
      edited.edges.push_back({edit.a, s});
      edited.edges.push_back({edit.b, s});
      edited.edges.push_back({edit.c, s});
      break;
    }
    case EditKind::kDelete: {
      if (!tree.nodes[static_cast<std::size_t>(edit.a)].is_steiner()) {
        return reject("delete target is a pin", reason);
      }
      const std::vector<int> nbrs = neighbors_of(tree, edit.a);
      if (nbrs.size() < 2) return reject("delete target has fewer than two neighbors", reason);
      std::vector<PointF> pts;
      pts.reserve(nbrs.size());
      for (int v : nbrs) pts.push_back(tree.nodes[static_cast<std::size_t>(v)].pos);
      const std::vector<SteinerEdge> joins = mst_edges(pts);
      // Rebuild without node a; remap indices above it down by one.
      edited.nodes.erase(edited.nodes.begin() + edit.a);
      const auto remap = [&](int v) { return v > edit.a ? v - 1 : v; };
      std::vector<SteinerEdge> kept;
      kept.reserve(tree.edges.size());
      for (const SteinerEdge& e : tree.edges) {
        if (e.a == edit.a || e.b == edit.a) continue;
        kept.push_back({remap(e.a), remap(e.b)});
      }
      for (const SteinerEdge& j : joins) {
        kept.push_back({remap(nbrs[static_cast<std::size_t>(j.a)]),
                        remap(nbrs[static_cast<std::size_t>(j.b)])});
      }
      edited.edges = std::move(kept);
      edited.driver_node = remap(edited.driver_node);
      break;
    }
    case EditKind::kSwap: {
      if (edit.b < 0 || edit.b >= n || edit.c < 0 || edit.c >= n) {
        return reject("swap operands out of range", reason);
      }
      if (edit.c == edit.a) return reject("swap re-attaches the cut edge", reason);
      if (edit.c == edit.b && !options.skip_validation) {
        return reject("swap self-attachment", reason);
      }
      const int cut = find_edge(tree, edit.a, edit.b);
      if (cut < 0) return reject("swap edge does not exist", reason);
      if (!options.skip_validation) {
        const std::vector<char> b_side = component_of(tree, edit.b, cut);
        if (b_side[static_cast<std::size_t>(edit.c)]) {
          return reject("swap attaches inside the detached component", reason);
        }
      }
      edited.edges[static_cast<std::size_t>(cut)] = {edit.c, edit.b};
      break;
    }
  }

  if (options.skip_validation) return edited;  // mutation hook: raw, ungated result
  if (edit.kind != EditKind::kReshift) prune_low_degree_steiner(edited);
  std::string why = validate_edited_tree(tree, edited, die);
  if (!why.empty()) return reject(std::move(why), reason);
  return edited;
}

std::vector<TopologyEdit> enumerate_edits(const SteinerTree& tree, const RectI& die, Rng& rng,
                                          const EditOptions& options) {
  std::vector<TopologyEdit> out;
  const int n = static_cast<int>(tree.nodes.size());
  if (n < 3 || tree.edges.empty() || options.max_candidates <= 0) return out;

  const std::vector<int> degree = node_degrees(tree);
  std::vector<int> hubs;       // >= 2 neighbors: insert candidates
  std::vector<int> steiners;   // delete / reshift candidates
  for (int i = 0; i < n; ++i) {
    if (degree[static_cast<std::size_t>(i)] >= 2) hubs.push_back(i);
    if (tree.nodes[static_cast<std::size_t>(i)].is_steiner()) steiners.push_back(i);
  }

  const auto push_unique = [&](const TopologyEdit& e) {
    for (const TopologyEdit& have : out) {
      if (have.kind == e.kind && have.a == e.a && have.b == e.b && have.c == e.c &&
          have.pos.x == e.pos.x && have.pos.y == e.pos.y) {
        return;
      }
    }
    out.push_back(e);
  };

  // Oversample: duplicates and unavailable kinds consume draws.
  const int draws = options.max_candidates * 4;
  for (int k = 0; k < draws && static_cast<int>(out.size()) < options.max_candidates; ++k) {
    const int kind = rng.uniform_int(0, 3);
    if (kind == 0 && !hubs.empty()) {  // insert
      const int a = hubs[rng.index(hubs.size())];
      const std::vector<int> nbrs = neighbors_of(tree, a);
      const std::size_t i = rng.index(nbrs.size());
      std::size_t j = rng.index(nbrs.size() - 1);
      if (j >= i) ++j;
      TopologyEdit e;
      e.kind = EditKind::kInsert;
      e.a = a;
      e.b = nbrs[i];
      e.c = nbrs[j];
      const PointF pa = tree.nodes[static_cast<std::size_t>(e.a)].pos;
      const PointF pb = tree.nodes[static_cast<std::size_t>(e.b)].pos;
      const PointF pc = tree.nodes[static_cast<std::size_t>(e.c)].pos;
      e.pos = clamp_into({median3(pa.x, pb.x, pc.x), median3(pa.y, pb.y, pc.y)}, die);
      push_unique(e);
    } else if (kind == 1 && !steiners.empty()) {  // delete
      TopologyEdit e;
      e.kind = EditKind::kDelete;
      e.a = steiners[rng.index(steiners.size())];
      push_unique(e);
    } else if (kind == 2 && !steiners.empty()) {  // reshift to a neighbor Hanan point
      const int a = steiners[rng.index(steiners.size())];
      const std::vector<int> nbrs = neighbors_of(tree, a);
      if (nbrs.size() < 2) continue;
      const std::size_t i = rng.index(nbrs.size());
      std::size_t j = rng.index(nbrs.size() - 1);
      if (j >= i) ++j;
      const PointF cur = tree.nodes[static_cast<std::size_t>(a)].pos;
      PointF pos = clamp_into({tree.nodes[static_cast<std::size_t>(nbrs[i])].pos.x,
                               tree.nodes[static_cast<std::size_t>(nbrs[j])].pos.y},
                              die);
      if (pos.x == cur.x && pos.y == cur.y) {
        pos = clamp_into({tree.nodes[static_cast<std::size_t>(nbrs[j])].pos.x,
                          tree.nodes[static_cast<std::size_t>(nbrs[i])].pos.y},
                         die);
      }
      if (pos.x == cur.x && pos.y == cur.y) continue;
      TopologyEdit e;
      e.kind = EditKind::kReshift;
      e.a = a;
      e.pos = pos;
      push_unique(e);
    } else if (kind == 3) {  // swap: re-attach the far side of an edge nearby
      const std::size_t ei = rng.index(tree.edges.size());
      TopologyEdit e;
      e.kind = EditKind::kSwap;
      e.a = tree.edges[ei].a;
      e.b = tree.edges[ei].b;
      if (rng.bernoulli(0.5)) std::swap(e.a, e.b);
      const std::vector<char> b_side = component_of(tree, e.b, static_cast<int>(ei));
      // Nearest few a-side nodes to b, deterministic order; one drawn at random.
      const PointF pb = tree.nodes[static_cast<std::size_t>(e.b)].pos;
      std::vector<std::pair<double, int>> near;
      for (int v = 0; v < n; ++v) {
        if (b_side[static_cast<std::size_t>(v)] || v == e.a) continue;
        near.emplace_back(manhattan(tree.nodes[static_cast<std::size_t>(v)].pos, pb), v);
      }
      if (near.empty()) continue;
      std::sort(near.begin(), near.end());
      e.c = near[rng.index(std::min<std::size_t>(3, near.size()))].second;
      push_unique(e);
    }
  }
  return out;
}

}  // namespace tsteiner::search
