#include "opt/buffering.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>

namespace tsteiner {

namespace {

/// Expanded tree: original nodes plus midpoints of long edges (extra buffer
/// candidates). Deterministic for (tree, options) so plan/apply agree.
struct XTree {
  std::vector<PointF> pos;
  std::vector<int> pin;           ///< design pin id; -1 for candidates
  std::vector<int> parent;        ///< parent node (-1 at driver)
  std::vector<std::vector<int>> children;
  std::vector<double> edge_r;     ///< edge into node from parent
  std::vector<double> edge_c;
  std::vector<int> order;         ///< BFS order from driver
  int driver = 0;
};

XTree expand(const Design& design, const SteinerTree& tree, const BufferingOptions& opt) {
  XTree x;
  const CellLibrary& lib = design.library();
  const auto parent = tree.parents_from_driver();
  const std::size_t n = tree.nodes.size();
  x.pos.reserve(n * 2);
  x.pin.reserve(n * 2);
  for (const SteinerNode& node : tree.nodes) {
    x.pos.push_back(node.pos);
    x.pin.push_back(node.pin);
  }
  x.parent.assign(n, -1);
  for (std::size_t v = 0; v < n; ++v) x.parent[v] = parent[v];
  x.driver = tree.driver_node;

  // Split long parent edges with a midpoint candidate.
  for (std::size_t v = 0; v < n; ++v) {
    const int p = x.parent[v];
    if (p < 0) continue;
    const double len = manhattan(x.pos[v], x.pos[static_cast<std::size_t>(p)]);
    if (opt.split_edges_longer_than > 0.0 && len > opt.split_edges_longer_than) {
      const int mid = static_cast<int>(x.pos.size());
      x.pos.push_back({0.5 * (x.pos[v].x + x.pos[static_cast<std::size_t>(p)].x),
                       0.5 * (x.pos[v].y + x.pos[static_cast<std::size_t>(p)].y)});
      x.pin.push_back(-1);
      x.parent.push_back(p);
      x.parent[v] = mid;
    }
  }

  const std::size_t m = x.pos.size();
  x.children.assign(m, {});
  for (std::size_t v = 0; v < m; ++v) {
    if (x.parent[v] >= 0) x.children[static_cast<std::size_t>(x.parent[v])].push_back(
        static_cast<int>(v));
  }
  x.edge_r.assign(m, 0.0);
  x.edge_c.assign(m, 0.0);
  for (std::size_t v = 0; v < m; ++v) {
    if (x.parent[v] < 0) continue;
    const double len = manhattan(x.pos[v], x.pos[static_cast<std::size_t>(x.parent[v])]);
    x.edge_r[v] = lib.wire_res_kohm_per_dbu() * len;
    x.edge_c[v] = lib.wire_cap_pf_per_dbu() * len;
  }
  x.order.clear();
  x.order.push_back(x.driver);
  for (std::size_t i = 0; i < x.order.size(); ++i) {
    for (int c : x.children[static_cast<std::size_t>(x.order[i])]) x.order.push_back(c);
  }
  if (x.order.size() != m) throw std::runtime_error("buffering: disconnected tree");
  return x;
}

/// Persistent trace of buffer insertions below an option.
struct Trace {
  int buffer_node = -1;  ///< -1: pure merge node
  std::shared_ptr<const Trace> a, b;
};

struct Opt {
  double cap = 0.0;
  double delay = 0.0;
  std::shared_ptr<const Trace> trace;
};

/// Prune dominated options: keep the Pareto front (increasing cap must mean
/// strictly decreasing delay).
void prune(std::vector<Opt>& opts, int max_options) {
  std::sort(opts.begin(), opts.end(), [](const Opt& a, const Opt& b) {
    if (a.cap != b.cap) return a.cap < b.cap;
    return a.delay < b.delay;
  });
  std::vector<Opt> kept;
  double best_delay = std::numeric_limits<double>::infinity();
  for (const Opt& o : opts) {
    if (o.delay < best_delay - 1e-15) {
      kept.push_back(o);
      best_delay = o.delay;
    }
  }
  if (static_cast<int>(kept.size()) > max_options) {
    // Thin uniformly, always keeping the extremes.
    std::vector<Opt> thinned;
    const double step =
        static_cast<double>(kept.size() - 1) / static_cast<double>(max_options - 1);
    for (int i = 0; i < max_options; ++i) {
      thinned.push_back(kept[static_cast<std::size_t>(std::llround(i * step))]);
    }
    kept = std::move(thinned);
  }
  opts = std::move(kept);
}

void collect_buffers(const std::shared_ptr<const Trace>& t, std::vector<int>& out) {
  if (!t) return;
  if (t->buffer_node >= 0) out.push_back(t->buffer_node);
  collect_buffers(t->a, out);
  collect_buffers(t->b, out);
}

double driver_delay(const Design& design, const Net& net, double load, double slew) {
  const Pin& drv = design.pin(net.driver_pin);
  if (drv.cell < 0) return 0.5 * load;  // PI: generic pad driver
  const CellType& t = design.cell_type(drv.cell);
  return t.arcs[0].delay.lookup(slew, load);
}

}  // namespace

BufferingPlan plan_buffering(const Design& design, const SteinerTree& tree,
                             const BufferingOptions& options) {
  BufferingPlan plan;
  plan.net = tree.net;
  const Net& net = design.net(tree.net);
  const int buf_type = design.library().find(
      options.buffer_type.empty() ? "BUF_X2" : options.buffer_type);
  if (buf_type < 0) throw std::runtime_error("unknown buffer type");
  const CellType& buf = design.library().type(buf_type);

  const XTree x = expand(design, tree, options);
  const std::size_t m = x.pos.size();

  // Bottom-up DP in reverse BFS order.
  std::vector<std::vector<Opt>> dp(m);
  for (auto it = x.order.rbegin(); it != x.order.rend(); ++it) {
    const auto v = static_cast<std::size_t>(*it);
    // Base: this node's own load contribution.
    double own_cap = 0.0;
    if (x.pin[v] >= 0 && x.pin[v] != net.driver_pin) own_cap = design.pin_cap(x.pin[v]);
    std::vector<Opt> opts{{own_cap, 0.0, nullptr}};
    // Merge children (each child option already includes its edge).
    for (int c : x.children[v]) {
      std::vector<Opt> merged;
      merged.reserve(opts.size() * dp[static_cast<std::size_t>(c)].size());
      for (const Opt& a : opts) {
        for (const Opt& b : dp[static_cast<std::size_t>(c)]) {
          merged.push_back({a.cap + b.cap, std::max(a.delay, b.delay),
                            std::make_shared<Trace>(Trace{-1, a.trace, b.trace})});
        }
      }
      opts = std::move(merged);
      prune(opts, options.max_options);
    }
    // Buffer candidate at this node (not at the driver).
    if (static_cast<int>(v) != x.driver) {
      std::vector<Opt> with_buf = opts;
      for (const Opt& o : opts) {
        const double d = buf.arcs[0].delay.lookup(options.nominal_slew_ns, o.cap);
        with_buf.push_back(
            {buf.input_cap_pf, o.delay + d,
             std::make_shared<Trace>(Trace{static_cast<int>(v), o.trace, nullptr})});
      }
      opts = std::move(with_buf);
      prune(opts, options.max_options);
      // Add the parent edge (pi model: R * (C_down + C_e / 2)).
      for (Opt& o : opts) {
        o.delay += x.edge_r[v] * (o.cap + 0.5 * x.edge_c[v]);
        o.cap += x.edge_c[v];
      }
      prune(opts, options.max_options);
    }
    dp[v] = std::move(opts);
  }

  // Unbuffered reference: plain Elmore worst-sink delay + driver delay.
  {
    std::vector<double> sub_cap(m, 0.0);
    std::vector<double> sub_delay(m, 0.0);  // worst delay node -> sink below
    for (auto it = x.order.rbegin(); it != x.order.rend(); ++it) {
      const auto v = static_cast<std::size_t>(*it);
      double cap = 0.0;
      if (x.pin[v] >= 0 && x.pin[v] != net.driver_pin) cap = design.pin_cap(x.pin[v]);
      double worst = 0.0;
      for (int c : x.children[v]) {
        const auto cc = static_cast<std::size_t>(c);
        const double through =
            x.edge_r[cc] * (sub_cap[cc] + 0.5 * x.edge_c[cc]) + sub_delay[cc];
        worst = std::max(worst, through);
        cap += sub_cap[cc] + x.edge_c[cc];
      }
      sub_cap[v] = cap;
      sub_delay[v] = worst;
    }
    const auto d = static_cast<std::size_t>(x.driver);
    plan.delay_before_ns =
        driver_delay(design, net, sub_cap[d], options.nominal_slew_ns) + sub_delay[d];
  }

  // Driver: pick the option minimizing driver delay + downstream delay.
  const auto& root = dp[static_cast<std::size_t>(x.driver)];
  double best = std::numeric_limits<double>::infinity();
  const Opt* chosen = nullptr;
  for (const Opt& o : root) {
    const double total = driver_delay(design, net, o.cap, options.nominal_slew_ns) + o.delay;
    if (total < best) {
      best = total;
      chosen = &o;
    }
  }
  plan.delay_after_ns = std::min(best, plan.delay_before_ns);
  if (best >= plan.delay_before_ns) return plan;  // buffering does not help
  if (chosen != nullptr) {
    std::vector<int> bufs;
    collect_buffers(chosen->trace, bufs);
    // Record expanded-node ids via positions (apply re-expands identically).
    for (int b : bufs) plan.buffers.push_back({x.pos[static_cast<std::size_t>(b)]});
  }
  return plan;
}

std::vector<int> apply_buffering(Design& design, const BufferingPlan& plan,
                                 const SteinerTree& tree, const BufferingOptions& options) {
  std::vector<int> inserted;
  if (plan.buffers.empty()) return inserted;
  const int buf_type = design.library().find(
      options.buffer_type.empty() ? "BUF_X2" : options.buffer_type);
  if (buf_type < 0) throw std::runtime_error("unknown buffer type");

  const XTree x = expand(design, tree, options);
  // Match planned buffer positions back to expanded nodes.
  std::vector<char> is_buffer(x.pos.size(), 0);
  for (const BufferPlacement& b : plan.buffers) {
    bool found = false;
    for (std::size_t v = 0; v < x.pos.size(); ++v) {
      if (!is_buffer[v] && manhattan(x.pos[v], b.pos) < 1e-9) {
        is_buffer[v] = 1;
        found = true;
        break;
      }
    }
    if (!found) throw std::runtime_error("buffer position does not match the tree");
  }

  const Net& net = design.net(tree.net);
  const int original_net = net.id;
  // Walk the expanded tree from the driver, tracking the current net; at
  // buffer nodes insert the cell and switch to its output net.
  struct Visit {
    int node;
    int net;
  };
  std::vector<Visit> stack{{x.driver, original_net}};
  while (!stack.empty()) {
    const Visit v = stack.back();
    stack.pop_back();
    int current_net = v.net;
    if (is_buffer[static_cast<std::size_t>(v.node)]) {
      const int cell = design.add_cell(buf_type);
      design.cell(cell).pos = round_to_i(x.pos[static_cast<std::size_t>(v.node)]);
      design.connect_sink(current_net, design.cell(cell).input_pins[0]);
      current_net = design.add_net(design.cell(cell).output_pin);
      inserted.push_back(cell);
    }
    const int pin = x.pin[static_cast<std::size_t>(v.node)];
    if (pin >= 0 && pin != net.driver_pin && current_net != original_net) {
      design.disconnect_sink(original_net, pin);
      design.connect_sink(current_net, pin);
    }
    for (int c : x.children[static_cast<std::size_t>(v.node)]) {
      stack.push_back({c, current_net});
    }
  }
  return inserted;
}

}  // namespace tsteiner
