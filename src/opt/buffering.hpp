// Van Ginneken buffer insertion on Steiner trees.
//
// The classical dynamic program: walk the RC tree bottom-up keeping, per
// node, the set of non-dominated (downstream capacitance, worst delay to any
// sink) options; at every candidate location a buffer may be inserted, which
// resets the upstream capacitance to the buffer's input cap at the price of
// the buffer's load-dependent delay. The driver picks the option minimizing
// its own delay plus the downstream worst delay.
//
// Provided both as an analysis (what would buffering buy?) and as a netlist
// transformation (apply_buffering inserts the buffer cells and splits the
// net). Complements TSteiner: buffering changes the netlist, TSteiner only
// moves auxiliary points — bench_ablation_buffering compares and stacks
// them.
#pragma once

#include <memory>
#include <vector>

#include "netlist/netlist.hpp"
#include "steiner/steiner_tree.hpp"

namespace tsteiner {

struct BufferingOptions {
  /// Candidate buffer type (library name); empty picks "BUF_X2".
  std::string buffer_type = "BUF_X2";
  /// Also allow buffers at midpoints of edges longer than this (DBU);
  /// <= 0 restricts candidates to existing tree nodes.
  double split_edges_longer_than = 48.0;
  /// Nominal input slew for buffer delay lookups.
  double nominal_slew_ns = 0.05;
  /// Keep at most this many non-dominated options per node.
  int max_options = 64;
};

/// One planned insertion: on the tree path *into* `node` (i.e. between the
/// node and its parent-side subtree) or at the node itself.
struct BufferPlacement {
  PointF pos;
};

struct BufferingPlan {
  int net = -1;
  std::vector<BufferPlacement> buffers;
  double delay_before_ns = 0.0;  ///< driver-to-worst-sink Elmore + driver delay
  double delay_after_ns = 0.0;   ///< with the planned buffers
};

/// Compute the optimal single-net buffering plan. The tree must belong to
/// `design`'s net `tree.net`. Returns a plan with no buffers when buffering
/// cannot improve the worst-sink delay.
BufferingPlan plan_buffering(const Design& design, const SteinerTree& tree,
                             const BufferingOptions& options = {});

/// Apply a plan: inserts buffer cells into `design` (placed at the rounded
/// buffer positions) and splits the net so that each buffer drives the
/// subtree below its location. Returns the ids of the inserted cells.
/// Invalidates any SteinerForest built for the old netlist — rebuild trees
/// for the touched nets afterwards.
std::vector<int> apply_buffering(Design& design, const BufferingPlan& plan,
                                 const SteinerTree& tree,
                                 const BufferingOptions& options = {});

}  // namespace tsteiner
