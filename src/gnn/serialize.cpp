#include "gnn/serialize.hpp"

#include <fstream>
#include <sstream>

namespace tsteiner {

namespace {

std::string config_line(const GnnConfig& c, int num_cell_types) {
  std::ostringstream os;
  os << "cfg " << c.hidden << ' ' << c.type_embed << ' ' << c.delay_hidden << ' '
     << c.steiner_iters << ' ' << c.soft_abs_delta << ' ' << (c.physics_anchor ? 1 : 0)
     << ' ' << c.seed << ' ' << num_cell_types;
  return os.str();
}

}  // namespace

bool save_model(const TimingGnn& model, const std::string& path, const std::string& tag) {
  std::ofstream out(path);
  if (!out) return false;
  out << "tsteiner-model-v1\n";
  out << "tag " << tag << '\n';
  out << config_line(model.config(), /*num_cell_types=*/-1) << '\n';
  out.precision(17);
  out << model.parameters().size() << '\n';
  for (const Tensor& p : model.parameters()) {
    out << p.rows() << ' ' << p.cols() << '\n';
    for (std::size_t i = 0; i < p.size(); ++i) {
      out << p[i] << (i + 1 == p.size() ? '\n' : ' ');
    }
    if (p.size() == 0) out << '\n';
  }
  return static_cast<bool>(out);
}

std::optional<TimingGnn> load_model(const std::string& path, const GnnConfig& config,
                                    int num_cell_types, const std::string& tag) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::string line;
  if (!std::getline(in, line) || line != "tsteiner-model-v1") return std::nullopt;
  if (!std::getline(in, line) || line != "tag " + tag) return std::nullopt;
  if (!std::getline(in, line) || line != config_line(config, -1)) return std::nullopt;

  TimingGnn model(config, num_cell_types);
  std::size_t count = 0;
  if (!(in >> count) || count != model.parameters().size()) return std::nullopt;
  for (Tensor& p : model.parameters()) {
    std::size_t rows = 0, cols = 0;
    if (!(in >> rows >> cols) || rows != p.rows() || cols != p.cols()) return std::nullopt;
    for (std::size_t i = 0; i < p.size(); ++i) {
      if (!(in >> p[i])) return std::nullopt;
    }
  }
  return model;
}

}  // namespace tsteiner
