#include "gnn/serialize.hpp"

#include <fstream>
#include <sstream>

#include "db/bytes.hpp"
#include "db/container.hpp"

namespace tsteiner {

namespace {

std::string config_line(const GnnConfig& c, int num_cell_types) {
  std::ostringstream os;
  os << "cfg " << c.hidden << ' ' << c.type_embed << ' ' << c.delay_hidden << ' '
     << c.steiner_iters << ' ' << c.soft_abs_delta << ' ' << (c.physics_anchor ? 1 : 0)
     << ' ' << c.seed << ' ' << num_cell_types;
  return os.str();
}

bool config_equal(const GnnConfig& a, const GnnConfig& b) {
  return a.hidden == b.hidden && a.type_embed == b.type_embed &&
         a.delay_hidden == b.delay_hidden && a.steiner_iters == b.steiner_iters &&
         a.soft_abs_delta == b.soft_abs_delta && a.physics_anchor == b.physics_anchor &&
         a.seed == b.seed;
}

std::optional<TimingGnn> load_model_text(const std::string& path, const GnnConfig& config,
                                         int num_cell_types, const std::string& tag) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::string line;
  if (!std::getline(in, line) || line != "tsteiner-model-v1") return std::nullopt;
  if (!std::getline(in, line) || line != "tag " + tag) return std::nullopt;
  if (!std::getline(in, line) || line != config_line(config, -1)) return std::nullopt;

  TimingGnn model(config, num_cell_types);
  std::size_t count = 0;
  if (!(in >> count) || count != model.parameters().size()) return std::nullopt;
  for (Tensor& p : model.parameters()) {
    std::size_t rows = 0, cols = 0;
    if (!(in >> rows >> cols) || rows != p.rows() || cols != p.cols()) return std::nullopt;
    for (std::size_t i = 0; i < p.size(); ++i) {
      if (!(in >> p[i])) return std::nullopt;
    }
  }
  return model;
}

}  // namespace

std::vector<std::uint8_t> encode_model_payload(const TimingGnn& model, const std::string& tag) {
  db::ByteWriter w;
  const GnnConfig& c = model.config();
  w.str(tag);
  w.i32(c.hidden);
  w.i32(c.type_embed);
  w.i32(c.delay_hidden);
  w.i32(c.steiner_iters);
  w.f64(c.soft_abs_delta);
  w.u8(c.physics_anchor ? 1 : 0);
  w.u64(c.seed);
  w.u32(static_cast<std::uint32_t>(model.parameters().size()));
  for (const Tensor& p : model.parameters()) {
    w.u64(p.rows());
    w.u64(p.cols());
    w.f64_vec(p.data());
  }
  return w.take();
}

namespace {

/// Shared body of the two decode entry points: reads tag + stored config,
/// then either validates against `expected` (strict mode) or adopts the
/// stored config as-is (self-describing mode).
std::optional<TimingGnn> decode_model_common(const std::uint8_t* data, std::size_t size,
                                             const GnnConfig* expected, int num_cell_types,
                                             const std::string* expected_tag,
                                             std::string* tag_out) {
  db::ByteReader r(data, size);
  const std::string stored_tag = r.str();
  if (expected_tag != nullptr && stored_tag != *expected_tag) return std::nullopt;
  if (tag_out != nullptr) *tag_out = stored_tag;
  GnnConfig stored;
  stored.hidden = r.i32();
  stored.type_embed = r.i32();
  stored.delay_hidden = r.i32();
  stored.steiner_iters = r.i32();
  stored.soft_abs_delta = r.f64();
  stored.physics_anchor = r.u8() != 0;
  stored.seed = r.u64();
  if (!r.ok()) return std::nullopt;
  if (expected != nullptr && !config_equal(stored, *expected)) return std::nullopt;
  // Structural sanity for the self-describing path: the dims size parameter
  // tensors, so hostile values must not reach the constructor.
  if (stored.hidden <= 0 || stored.hidden > 4096 || stored.type_embed <= 0 ||
      stored.type_embed > 4096 || stored.delay_hidden <= 0 || stored.delay_hidden > 4096 ||
      stored.steiner_iters <= 0 || stored.steiner_iters > 64) {
    return std::nullopt;
  }

  TimingGnn model(stored, num_cell_types);
  const std::uint32_t count = r.u32();
  if (!r.ok() || count != model.parameters().size()) return std::nullopt;
  for (Tensor& p : model.parameters()) {
    const std::uint64_t rows = r.u64();
    const std::uint64_t cols = r.u64();
    std::vector<double> values = r.f64_vec();
    if (!r.ok() || rows != p.rows() || cols != p.cols() || values.size() != p.size()) {
      return std::nullopt;
    }
    p.data() = std::move(values);
  }
  if (!r.done()) return std::nullopt;
  return model;
}

}  // namespace

std::optional<TimingGnn> decode_model_payload(const std::uint8_t* data, std::size_t size,
                                              const GnnConfig& config, int num_cell_types,
                                              const std::string& tag) {
  return decode_model_common(data, size, &config, num_cell_types, &tag, nullptr);
}

std::optional<TimingGnn> decode_model_payload_any(const std::uint8_t* data, std::size_t size,
                                                  int num_cell_types, std::string* tag_out) {
  return decode_model_common(data, size, nullptr, num_cell_types, nullptr, tag_out);
}

bool save_model(const TimingGnn& model, const std::string& path, const std::string& tag) {
  db::DbWriter writer;
  return writer.open(path) &&
         writer.add_chunk(db::kChunkModel, encode_model_payload(model, tag)) &&
         writer.finish();
}

std::optional<TimingGnn> load_model(const std::string& path, const GnnConfig& config,
                                    int num_cell_types, const std::string& tag) {
  db::DbReader reader;
  if (!reader.open(path)) {
    // Not a container (or damaged beyond the header): try the legacy text
    // format so caches written before the binary container still load.
    return load_model_text(path, config, num_cell_types, tag);
  }
  const db::ChunkInfo* chunk = reader.find(db::kChunkModel);
  if (chunk == nullptr) return std::nullopt;
  return decode_model_payload(reader.payload(*chunk), static_cast<std::size_t>(chunk->size),
                              config, num_cell_types, tag);
}

bool save_model_text(const TimingGnn& model, const std::string& path, const std::string& tag) {
  std::ofstream out(path);
  if (!out) return false;
  out << "tsteiner-model-v1\n";
  out << "tag " << tag << '\n';
  out << config_line(model.config(), /*num_cell_types=*/-1) << '\n';
  out.precision(17);
  out << model.parameters().size() << '\n';
  for (const Tensor& p : model.parameters()) {
    out << p.rows() << ' ' << p.cols() << '\n';
    for (std::size_t i = 0; i < p.size(); ++i) {
      out << p[i] << (i + 1 == p.size() ? '\n' : ' ');
    }
    if (p.size() == 0) out << '\n';
  }
  return static_cast<bool>(out);
}

}  // namespace tsteiner
